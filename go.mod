module traceback

go 1.22
