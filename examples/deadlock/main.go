// Hang diagnosis: two threads take two locks in opposite orders and
// deadlock. Nothing crashes — so no exception trigger fires. The
// per-machine TraceBack service process detects the hang through its
// heartbeat (the process stops making progress), snaps it, and the
// fault-directed view shows one line per thread: exactly where each
// one is stuck (paper §3.6.1, §3.7.5, §4.3.3).
//
//	go run ./examples/deadlock
package main

import (
	_ "embed"
	"fmt"
	"log"
	"os"
	"strings"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/recon"
	"traceback/internal/service"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
)

//go:embed bank.mc
var appSrc string

func main() {
	mod, err := minic.Compile("bank", "bank.mc", appSrc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	world := vm.NewWorld(4)
	mach := world.NewMachine("prod-host", 0)
	proc, rt, err := tbrt.NewProcess(mach, "bank", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := proc.Load(res.Module); err != nil {
		log.Fatal(err)
	}

	// The machine's service process, with the runtime registered.
	svc := service.New(mach, 100_000)
	svc.Register(rt)

	if _, err := proc.StartMain(0); err != nil {
		log.Fatal(err)
	}
	// Run; the process deadlocks and stops making progress.
	world.Run(200_000, func() bool { return proc.Exited })
	fmt.Printf("process exited: %v (it is hung)\n", proc.Exited)

	// The service heartbeat sweep notices and snaps.
	mach.SetClock(mach.Clock() + 200_000) // time passes with no progress
	hung := svc.CheckStatus()
	fmt.Printf("service detected hung processes: %v (%d snap)\n\n", hung, len(svc.Snaps))
	if len(svc.Snaps) == 0 {
		log.Fatal("hang not detected")
	}

	pt, err := recon.Reconstruct(svc.Snaps[0], recon.NewMapSet(res.Map))
	if err != nil {
		log.Fatal(err)
	}
	srcLines := strings.Split(appSrc, "\n")
	recon.Render(os.Stdout, pt, recon.RenderOptions{
		Source:    func(string) []string { return srcLines },
		MaxEvents: 12,
	})
	fmt.Println("\nThe hang view shows thread 2 stopped at the lock_audit acquire")
	fmt.Println("and thread 3 at the lock_accounts acquire: a lock-order inversion.")
}
