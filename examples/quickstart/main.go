// Quickstart: the minimal first-fault-diagnosis loop.
//
// A MiniC program with a latent bug is compiled, statically
// instrumented, and run. It crashes; the TraceBack runtime snaps at
// the first-chance exception; reconstruction turns the snap plus the
// instrumentation mapfile back into a line-by-line source trace
// ending at the exact faulting line — without re-running anything.
//
//	go run ./examples/quickstart
package main

import (
	_ "embed"
	"fmt"
	"log"
	"os"
	"strings"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/recon"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
)

//go:embed app.mc
var appSrc string

func main() {
	// 1. Compile the application (the stand-in for a production
	// binary: code + line tables, no source needed afterwards).
	mod, err := minic.Compile("app", "app.mc", appSrc)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Instrument it: DAG tiling, probe insertion, mapfile.
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instrumented %q: %d DAGs, %d heavy + %d light probes, text +%.0f%%\n\n",
		mod.Name, res.Map.DAGCount, res.Stats.HeavyProbes, res.Stats.LightProbes,
		res.Stats.CodeGrowth()*100)

	// 3. Run it in production (mode=1 triggers the latent bug).
	world := vm.NewWorld(1)
	machine := world.NewMachine("prod-host", 0)
	proc, rt, err := tbrt.NewProcess(machine, "app", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := proc.Load(res.Module); err != nil {
		log.Fatal(err)
	}
	if _, err := proc.StartMain(1); err != nil {
		log.Fatal(err)
	}
	vm.RunProcess(proc, 1_000_000)
	fmt.Printf("process exited: signal=%s\n", vm.SignalName(proc.FatalSignal))

	// 4. The runtime snapped at the exception. Reconstruct.
	snaps := rt.Snaps()
	if len(snaps) == 0 {
		log.Fatal("no snap was taken")
	}
	pt, err := recon.Reconstruct(snaps[0], recon.NewMapSet(res.Map))
	if err != nil {
		log.Fatal(err)
	}

	// 5. Render with source context — the fault-directed view — and
	// the variable values captured by the snap's memory dump.
	srcLines := strings.Split(appSrc, "\n")
	fmt.Println()
	recon.Render(os.Stdout, pt, recon.RenderOptions{
		Source: func(file string) []string { return srcLines },
	})
	fmt.Println()
	recon.RenderVariables(os.Stdout, snaps[0], recon.NewMapSet(res.Map))
	fmt.Println("\nThe '>' marker is the faulting line; stepping back shows")
	fmt.Println("load_config taking the mode==1 arm that zeroed the divisor —")
	fmt.Println("and the globals view confirms denom == 0 at the moment of the snap.")
}
