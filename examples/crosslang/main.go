// Cross-language trace (the paper's Figure 5): a managed program
// passes a long string across the JNI-style boundary to a native C
// function that allocated only a tiny buffer — "we only get short
// strings". The memcpy smashes the native stack; the wild return
// would defeat a stack-walking debugger, but the TraceBack flight
// recorder shows the control flow from the managed call site into
// NativeString.c right up to the overrun.
//
// Both sides are compiled from MiniC source: the native backend for
// NativeString.c, the managed backend (the paper's MSIL/Java path)
// for NativeString.java.
//
//	go run ./examples/crosslang
package main

import (
	_ "embed"
	"fmt"
	"log"
	"os"
	"strings"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/mvm"
	"traceback/internal/recon"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
)

// The managed side declares the native method extern and calls it —
// the comment in the paper's figure says it all.
const managedSrcTemplate = `extern "NativeString.c" int copy_string(int src, int n);
int main(int straddr) {
	int n = %d;
	copy_string(straddr, n);
	return 0;
}`

//go:embed NativeString.mc
var nativeSrc string

func main() {
	// Native side: compile + instrument.
	nat, err := minic.Compile("NativeString.c", "NativeString.c", nativeSrc)
	if err != nil {
		log.Fatal(err)
	}
	natRes, err := core.Instrument(nat, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	world := vm.NewWorld(3)
	mach := world.NewMachine("solaris-box", 0)
	proc, natRT, err := tbrt.NewProcess(mach, "java", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := proc.Load(natRes.Module); err != nil {
		log.Fatal(err)
	}

	// The "long string" in native memory; the managed side gets its
	// address through JNI.
	long := "definitely not a short string at all, sorry"
	strAddr := proc.AllocRegion(256)
	proc.WriteBytes(uint64(strAddr), []byte(long))

	// Managed side: compile with the managed backend + instrument.
	managedSrc := fmt.Sprintf(managedSrcTemplate, len(long))
	jsrc, err := minic.CompileManaged("NativeString.java", "NativeString.java", managedSrc)
	if err != nil {
		log.Fatal(err)
	}
	jmod, jmap, err := mvm.Instrument(jsrc, 0)
	if err != nil {
		log.Fatal(err)
	}

	jvm := mvm.New(mach, proc, "java", mvm.RuntimeConfig{})
	if _, err := jvm.Load(jmod); err != nil {
		log.Fatal(err)
	}
	th, err := jvm.Start("main", int64(strAddr))
	if err != nil {
		log.Fatal(err)
	}
	jvm.Run(1_000_000, nil)

	fmt.Printf("native process: %s; managed thread: %s\n\n",
		vm.SignalName(proc.FatalSignal), mvm.ExcName(th.Uncaught))

	// Reconstruct one snap per runtime and stitch the logical thread.
	maps := recon.NewMapSet(natRes.Map, jmap)
	natPT, err := recon.Reconstruct(natRT.Snaps()[0], maps)
	if err != nil {
		log.Fatal(err)
	}
	jvmPT, err := recon.Reconstruct(jvm.Runtime().Snaps()[0], maps)
	if err != nil {
		log.Fatal(err)
	}
	mt := recon.Stitch([]*recon.ProcessTrace{jvmPT, natPT})

	sources := map[string][]string{
		"NativeString.java": strings.Split(managedSrc, "\n"),
		"NativeString.c":    strings.Split(nativeSrc, "\n"),
	}
	for _, lt := range mt.Logical {
		recon.RenderLogical(os.Stdout, lt, recon.RenderOptions{
			Source: func(f string) []string { return sources[f] },
		})
	}
	fmt.Println("\nThe trace crosses the JNI boundary: the managed call site, then")
	fmt.Println("the native path into memcpy — where a 43-byte string lands in an 8-byte")
	fmt.Println("buffer, smashing the return address. A stack backtrace here shows")
	fmt.Println("garbage; the flight-recorder history does not need the stack at all.")
}
