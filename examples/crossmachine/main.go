// Cross-machine trace (the paper's Figure 6): a C++-style client on
// one machine calls a pet-store server on another over DCOM-style
// RPC. The server's SetPetName writes through a pointer that was
// never allocated (the paper's "const WCHAR* instead of WCHAR[32]"),
// faulting inside a string-library module. The server's handler
// converts the fault into an RPC_E_SERVERFAULT status; the client
// fails to check it and happily calls GetPetName, which "succeeds"
// with a wrong name.
//
// TraceBack instruments both sides; the SYNC records written around
// the RPCs stitch the client and server physical threads into one
// logical thread, so the reconstructed trace walks from the client's
// call, across the network, into the library code that faulted.
//
//	go run ./examples/crossmachine
package main

import (
	_ "embed"
	"fmt"
	"log"
	"os"
	"strings"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/module"
	"traceback/internal/recon"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
)

// strlib.c: the msvcr70d.dll analog — a separately built library
// module the server links against.

// server.c: the pet-store COM server.

// client.c: sets the name, ignores the returned HRESULT, reads it
// back — the Figure 6 bug. The COM proxy stubs are real functions,
// so the RPC boundary breaks DAGs exactly as a marshaled call would.

func build(name, file, src string) (*module.Module, *core.Result) {
	mod, err := minic.Compile(name, file, src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return mod, res
}

//go:embed strlib.mc
var strlibSrc string

//go:embed server.mc
var serverSrc string

//go:embed client.mc
var clientSrc string

func main() {
	_, strlibRes := build("strlib", "strlib.c", strlibSrc)
	_, serverRes := build("server", "server.c", serverSrc)
	_, clientRes := build("client", "client.c", clientSrc)

	world := vm.NewWorld(6)
	clientBox := world.NewMachine("client-box", 0)
	serverBox := world.NewMachine("server-box", 7500) // skewed clock

	serverProc, serverRT, err := tbrt.NewProcess(serverBox, "petstore", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := serverProc.Load(strlibRes.Module); err != nil {
		log.Fatal(err)
	}
	if _, err := serverProc.Load(serverRes.Module); err != nil {
		log.Fatal(err)
	}
	clientProc, clientRT, err := tbrt.NewProcess(clientBox, "petclient", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := clientProc.Load(clientRes.Module); err != nil {
		log.Fatal(err)
	}
	world.RegisterEndpoint(9, serverProc)

	if _, err := serverProc.StartMain(0); err != nil {
		log.Fatal(err)
	}
	if _, err := clientProc.StartMain(0); err != nil {
		log.Fatal(err)
	}
	world.Run(5_000_000, func() bool { return clientProc.Exited && serverProc.Exited })
	fmt.Printf("client: %s, server: %s\n",
		vm.SignalName(clientProc.FatalSignal), vm.SignalName(serverProc.FatalSignal))
	fmt.Printf("server snaps: %d (first-chance SIGSEGV in wcscpy)\n\n", len(serverRT.Snaps()))

	// Gather both sides' snaps and stitch.
	maps := recon.NewMapSet(strlibRes.Map, serverRes.Map, clientRes.Map)
	var pts []*recon.ProcessTrace
	for _, rt := range []*tbrt.Runtime{clientRT, serverRT} {
		s := rt.PostMortemSnap()
		pt, err := recon.Reconstruct(s, maps)
		if err != nil {
			log.Fatal(err)
		}
		pts = append(pts, pt)
	}
	mt := recon.Stitch(pts)
	fmt.Printf("logical threads: %d, skew estimates: %v\n\n", len(mt.Logical), mt.SkewEstimates)

	sources := map[string][]string{
		"strlib.c": strings.Split(strlibSrc, "\n"),
		"server.c": strings.Split(serverSrc, "\n"),
		"client.c": strings.Split(clientSrc, "\n"),
	}
	for _, lt := range mt.Logical {
		recon.RenderLogical(os.Stdout, lt, recon.RenderOptions{
			Source: func(f string) []string { return sources[f] },
		})
		fmt.Println()
	}
	fmt.Println("The stitched trace crosses machines: the client's call, the")
	fmt.Println("server dispatch, and the fault inside the library module —")
	fmt.Println("with sequence numbers ordering the segments despite clock skew.")
}
