# TraceBack reproduction — convenience targets.
#
#   make build       compile + vet everything
#   make test        full test suite
#   make vet         static analysis only
#   make check       tbcheck over the examples + seeded-broken corpus
#   make ci          what the gate runs: vet + check + race-detector tests
#   make tables      regenerate the paper tables (tbbench)

GO ?= go

.PHONY: all build test test-short test-race vet check ci fuzz bench examples tables verify clean store-check collect-check fault-check triage-check shard-check replay-check gensnaps genregress recon-bench shard-bench replay-bench

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# Instrumentation-invariant verification: every example program must
# instrument to a module tbcheck finds clean, and every seeded-broken
# module in the verifier's corpus must be flagged (-broken inverts the
# exit status, so a silently-passing verifier fails the gate). The
# fleet lines do the same cross-module: all examples together must
# form a clean fleet (no unserved RPC endpoints, no reply-less recv
# paths, no mining-ambiguous probe words), and every seeded-broken
# fleet under corpus/fleet/ must be flagged by its pass.
check:
	$(GO) run ./cmd/tbcheck examples/*/*.mc
	$(GO) run ./cmd/tbcheck -broken internal/verify/testdata/corpus/ambiguous-encoding.tbm \
		internal/verify/testdata/corpus/clobbering-probe.tbm \
		internal/verify/testdata/corpus/dangling-dag-edge.tbm \
		internal/verify/testdata/corpus/misaligned-map-block.tbm \
		internal/verify/testdata/corpus/missing-bit.tbm \
		internal/verify/testdata/corpus/missing-probe.tbm
	$(GO) run ./cmd/tbcheck internal/verify/testdata/corpus/clean.tbm
	$(GO) run ./cmd/tbcheck -fleet examples/*/*.mc
	$(GO) run ./cmd/tbcheck -fleet internal/verify/testdata/corpus/fleet/fleet-clean
	$(GO) run ./cmd/tbcheck -fleet -broken internal/verify/testdata/corpus/fleet/ambiguous-trailer \
		internal/verify/testdata/corpus/fleet/missing-sync \
		internal/verify/testdata/corpus/fleet/unserved-endpoint

# The CI gate: static analysis, instrumentation verification, the
# race-detector pass (which subsumes plain `go test`), the snap
# warehouse + collection plane end-to-end checks, the bounded
# fault-injection campaign, the fleet triage loopback gate, the
# sharded-warehouse gate, and the record-and-replay gate; keep this
# green before merging.
ci: vet check test-race store-check collect-check fault-check triage-check shard-check replay-check

# Warehouse end-to-end gate: ingest the committed snaps/ fleet plus a
# fresh re-run of the example scenarios, assert full deduplication and
# bucket accounting, and verify the index rebuilt from the journal
# alone is byte-identical to the live index. Fails if snaps/ is stale
# relative to the scenarios (fix: make gensnaps, commit the result).
store-check:
	$(GO) run ./tools/storecheck

# Collection plane end-to-end gate: push the committed fleet through
# tbagent→tbcollectd over loopback TCP at ingest concurrency 1/4/16
# and assert index byte-parity with a direct local ingest, full dedup
# of replays via the HEAD precheck, journal-rebuild identity, and a
# graceful daemon drain.
collect-check:
	$(GO) run ./tools/collectcheck

# Fault-injection gate: bounded multi-seed campaigns over every fault
# kind (kill -9, signal storms, RPC drop/delay/dup, module unload,
# tiny-buffer wrap stress, managed interrupts, and a mid-ingest
# collector kill in the wire phase), each asserting the reconstruction
# invariants; then replay of the committed regression corpus, whose
# seeded-known-bad case must stay detected. Fixed seeds: the whole
# gate is deterministic. On failure, evidence bundles (snaps + maps +
# repro line) land under fault_evidence/.
fault-check:
	$(GO) run ./cmd/tbfault run -seed 1 -kinds all -regress fault_evidence
	$(GO) run ./cmd/tbfault run -seed 2 -kinds kill,signal,rpc,unload,wrap -regress fault_evidence
	$(GO) run ./cmd/tbfault replay -dir snaps/regressions

# Fleet triage gate: stage a seeded two-phase campaign through a live
# tbcollectd over loopback — the example scenarios as a steady
# background across ten rate windows, one seeded tbfault kill trial
# injected into the newest window only — and assert /v1/regressions
# flags exactly the injected signatures, local (tbstore-path) triage
# agrees with the wire, and the journal rebuilds the index (rate
# windows included) bit-for-bit.
triage-check:
	$(GO) run ./tools/triagecheck

# Record-and-replay gate: re-record every example scenario and hold
# the fresh harvest to the committed snaps/ fleet byte for byte, then
# replay each recording — and every committed regression-corpus case's
# embedded recording — asserting byte-identical reconstruction; seeded
# divergent logs (corrupted checkpoint, torn tail) must be rejected
# with machine-readable divergence reports. Fully deterministic.
replay-check:
	$(GO) run ./tools/replaycheck

# Sharded warehouse gate: boot a three-shard loopback fleet plus a
# fan-out gate and a single-node reference daemon, push the same
# campaign through both, and assert the union of shard journals is
# byte-identical to the single-node index, the gate's wire responses
# match the single daemon byte for byte, a seeded tbfault campaign
# through the gate flags exactly the injected signatures, and a
# kill/restart of one shard mid-campaign redirects uploads (counted
# in coll_agent_failover_total) without losing a snap.
shard-check:
	$(GO) run ./tools/shardcheck

# Regenerate the committed example snap fleet (deterministic; only
# needed when the examples or the instrumentation change).
gensnaps:
	$(GO) run ./tools/gensnaps

# Regenerate the committed fault regression corpus under
# snaps/regressions/ (deterministic; only needed when the scenarios,
# instrumentation, or fault planner change).
genregress:
	$(GO) run ./tools/genregress

# Reconstruction-throughput trajectory: snaps/sec, ns/record, and
# allocs/record over the committed fleet at jobs 1/4/16. Wall-clock
# numbers — compare shapes across commits, not absolute values.
recon-bench:
	$(GO) run ./cmd/tbbench -recon

# Gate fan-out trajectory: ns per fan-out round trip and per triage
# query over loopback fleets of 1/2/4 shards. Wall-clock numbers —
# compare the cost growth across shard counts, not absolute values.
shard-bench:
	$(GO) run ./cmd/tbbench -shard

# Record-and-replay trajectory: recording overhead (%) and replay
# speed relative to a plain run, per example scenario. Wall-clock
# numbers — compare shapes across commits, not absolute values.
replay-bench:
	$(GO) run ./cmd/tbbench -replay

# Race-detector pass over everything, including the pipeline-vs-oracle
# stress test (jobs 1/4/16 against one shared MapCache).
test-race:
	$(GO) test -race ./...

# Bounded fuzz smoke over the trace and snap decoders; the committed
# seed corpora live under <pkg>/testdata/fuzz/.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzTraceRecordDecode -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzNondetRecordDecode -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzSnapReader -fuzztime $(FUZZTIME) ./internal/snap
	$(GO) test -run '^$$' -fuzz FuzzMapFileVerify -fuzztime $(FUZZTIME) ./internal/verify
	$(GO) test -run '^$$' -fuzz FuzzFleetVerify -fuzztime $(FUZZTIME) ./internal/verify/fleet
	$(GO) test -run '^$$' -fuzz FuzzArchiveIndex -fuzztime $(FUZZTIME) ./internal/archive

# One benchmark per paper table/figure; results land in bench_output.txt.
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

tables:
	$(GO) run ./cmd/tbbench -table all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/crosslang
	$(GO) run ./examples/crossmachine
	$(GO) run ./examples/deadlock

bin:
	mkdir -p bin
	$(GO) build -o bin ./cmd/...

verify: build test
	$(GO) test ./... 2>&1 | tee test_output.txt

# snaps/ is committed (the deterministic example fleet the warehouse
# gate ingests) — clean must not remove it.
clean:
	rm -rf bin test_output.txt bench_output.txt fault_evidence
