# TraceBack reproduction — convenience targets.

GO ?= go

.PHONY: all build test test-short bench examples tables verify clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One benchmark per paper table/figure; results land in bench_output.txt.
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

tables:
	$(GO) run ./cmd/tbbench -table all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/crosslang
	$(GO) run ./examples/crossmachine
	$(GO) run ./examples/deadlock

bin:
	mkdir -p bin
	$(GO) build -o bin ./cmd/...

verify: build test
	$(GO) test ./... 2>&1 | tee test_output.txt

clean:
	rm -rf bin snaps test_output.txt bench_output.txt
