// Package traceback's root benchmark harness regenerates every table
// and figure of the paper's evaluation (§6). Each benchmark prints
// the measured rows next to the paper's rows; absolute numbers are VM
// cycle ratios, and the SHAPE (who wins, by what factor) is the
// reproduction target. See EXPERIMENTS.md for the recorded outputs.
//
//	go test -bench=. -benchmem
package traceback_test

import (
	"fmt"
	"strings"
	"testing"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/recon"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
	"traceback/internal/workload"
)

// BenchmarkTable1SPECint regenerates Table 1: per-program Normal vs
// TraceBack cycles and the geometric-mean ratio.
func BenchmarkTable1SPECint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, geo, paperGeo, err := workload.RunSpecSuite(1.0)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		b.Logf("Table 1 — SPECint2000 (cycles; ratio = TraceBack/Normal)")
		b.Logf("%-9s %12s %12s %7s %7s", "Test", "Normal", "TraceBack", "Ratio", "Paper")
		for _, r := range rs {
			b.Logf("%-9s %12d %12d %7.2f %7.2f", r.Name, r.Normal, r.TraceBack, r.Ratio, r.PaperRatio)
		}
		b.Logf("%-9s %12s %12s %7.2f %7.2f", "GeoMean", "", "", geo, paperGeo)
	}
}

// BenchmarkTable2SPECweb regenerates Table 2: response time, ops/sec,
// Kbits/sec for the web server, normal vs instrumented.
func BenchmarkTable2SPECweb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := workload.RunWeb(40)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		b.Logf("Table 2 — SPECweb99 (paper ratio 1.049-1.051)")
		b.Logf("%-14s %10s %10s %7s", "Metric", "Normal", "TraceBack", "Ratio")
		b.Logf("%-14s %10.1f %10.1f %7.3f", "Response(ms)", r.ResponseNormal, r.ResponseTB, r.ResponseTB/r.ResponseNormal)
		b.Logf("%-14s %10.1f %10.1f %7.3f", "ops/sec", r.OpsNormal, r.OpsTB, r.OpsNormal/r.OpsTB)
		b.Logf("%-14s %10.0f %10.0f %7.3f", "Kbits/sec", r.KbitsNormal, r.KbitsTB, r.KbitsNormal/r.KbitsTB)
	}
}

// BenchmarkTable3SPECjbb regenerates Table 3: warehouse throughput on
// the three systems, 1 and 5 warehouses.
func BenchmarkTable3SPECjbb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i > 0 {
			for _, sys := range workload.JbbSystems {
				if _, err := workload.RunJbb(sys, 1, 4000); err != nil {
					b.Fatal(err)
				}
			}
			continue
		}
		b.Logf("Table 3 — SPECjbb (throughput; ratio = Normal/TraceBack)")
		b.Logf("%-8s %10s %10s %7s %7s", "System", "Normal", "TraceBack", "Ratio", "Paper")
		for _, sys := range workload.JbbSystems {
			for _, wh := range []int{1, 5} {
				r, err := workload.RunJbb(sys, wh, 4000)
				if err != nil {
					b.Fatal(err)
				}
				b.Logf("%-8s %10.1f %10.1f %7.3f %7.3f",
					fmt.Sprintf("%s %dW", r.System, r.Warehouses), r.Normal, r.TraceBack, r.Ratio, r.PaperRatio)
			}
		}
	}
}

// BenchmarkPetShop regenerates the .NET PetShop paragraph (§6):
// ~1% throughput reduction under instrumentation.
func BenchmarkPetShop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := workload.RunPetShop(6, 500)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		b.Logf("PetShop (paper: 1,649 -> 1,633 req/s, ~1%% drop)")
		b.Logf("req/sec: %.0f -> %.0f (drop %.2f%%)", r.ReqPerSecNormal, r.ReqPerSecTB, r.Drop*100)
	}
}

// BenchmarkAblationSpill isolates register scavenging vs forced
// probe spills (the paper's gzip longest_match analysis, §6).
func BenchmarkAblationSpill(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, _ := workload.SpecByName("gzip")
		base, err := workload.RunSpec(p, 1.0, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		spill, err := workload.RunSpec(p, 1.0, core.Options{ForceSpill: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("gzip probe spills: scavenged %.2f vs forced-spill %.2f (spills: %d probes)",
				base.Ratio, spill.Ratio, spill.Spills)
		}
	}
}

// BenchmarkAblationCallBreaks measures the cost of the §2.2
// requirement that DAGs break at call return points.
func BenchmarkAblationCallBreaks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, _ := workload.SpecByName("perlbmk")
		base, err := workload.RunSpec(p, 1.0, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		no, err := workload.RunSpec(p, 1.0, core.Options{NoBreakAtCalls: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("perlbmk call-return probes: with %.2f vs without %.2f (without is UNSOUND; cost only)",
				base.Ratio, no.Ratio)
		}
	}
}

// BenchmarkAblationPathBits sweeps the DAG record's path-bit budget.
func BenchmarkAblationPathBits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, _ := workload.SpecByName("gcc")
		if i > 0 {
			if _, err := workload.RunSpec(p, 1.0, core.Options{}); err != nil {
				b.Fatal(err)
			}
			continue
		}
		for _, bits := range []int{10, 6, 4, 2} {
			r, err := workload.RunSpec(p, 1.0, core.Options{MaxPathBits: bits})
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("gcc with %2d path bits: ratio %.2f (growth %.0f%%)", bits, r.Ratio, r.CodeGrowth*100)
		}
	}
}

// BenchmarkAblationSubBuffering measures §3.2's sub-buffering cost.
func BenchmarkAblationSubBuffering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		off, on, err := workload.SubBufferOverhead(1.0, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("sub-buffering: off %d cycles, 4 sub-buffers %d cycles (+%.1f%%)",
				off, on, (float64(on)/float64(off)-1)*100)
		}
	}
}

// BenchmarkReconstruction measures the offline reconstruction speed
// over a full buffer (not a paper table; sanity for the tooling).
func BenchmarkReconstruction(b *testing.B) {
	src := `int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i = i + 1) {
		if (i % 3 == 0) s = s + i;
		else s = s - 1;
	}
	return s;
}
int main() { f(20000); exit(0); }`
	mod, err := minic.Compile("bench", "bench.mc", src)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	w := vm.NewWorld(1)
	mach := w.NewMachine("m", 0)
	p, rt, err := tbrt.NewProcess(mach, "bench", tbrt.Config{})
	if err != nil {
		b.Fatal(err)
	}
	p.Load(res.Module)
	p.StartMain(0)
	if err := vm.RunProcess(p, 1<<31); err != nil {
		b.Fatal(err)
	}
	s := rt.PostMortemSnap()
	maps := recon.NewMapSet(res.Map)
	b.ResetTimer()
	events := 0
	for i := 0; i < b.N; i++ {
		pt, err := recon.Reconstruct(s, maps)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range pt.Threads {
			events += len(t.Events)
		}
	}
	if events == 0 {
		b.Fatal("no events reconstructed")
	}
}

// BenchmarkInstrumentation measures instrumenter throughput.
func BenchmarkInstrumentation(b *testing.B) {
	var srcs []string
	for _, p := range workload.SpecInt {
		srcs = append(srcs, p.Src)
	}
	var mods []*struct {
		name string
		src  string
	}
	for i, s := range srcs {
		mods = append(mods, &struct {
			name string
			src  string
		}{workload.SpecInt[i].Name, s})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mods[i%len(mods)]
		mod, err := minic.Compile(m.name, m.name+".c", m.src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Instrument(mod, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Pipeline runs the end-to-end crash->snap->
// reconstruct pipeline (Figures 2/4).
func BenchmarkFigure4Pipeline(b *testing.B) {
	src := `int denom;
int setup(int mode) { if (mode == 1) { denom = 0; } else { denom = 4; } return 0; }
int main() { setup(getarg()); exit(12 / denom); }`
	mod, err := minic.Compile("app", "app.mc", src)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	maps := recon.NewMapSet(res.Map)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := vm.NewWorld(1)
		mach := w.NewMachine("m", 0)
		p, rt, err := tbrt.NewProcess(mach, "app", tbrt.Config{Policy: tbrt.DefaultPolicy()})
		if err != nil {
			b.Fatal(err)
		}
		p.Load(res.Module)
		p.StartMain(1)
		vm.RunProcess(p, 1_000_000)
		if len(rt.Snaps()) == 0 {
			b.Fatal("no snap")
		}
		pt, err := recon.Reconstruct(rt.Snaps()[0], maps)
		if err != nil {
			b.Fatal(err)
		}
		var sb strings.Builder
		recon.Render(&sb, pt, recon.RenderOptions{})
		if !strings.Contains(sb.String(), "SIGFPE") {
			b.Fatal("fault missing from render")
		}
	}
}
