// storecheck is the warehouse CI gate (`make store-check`): it
// ingests the committed example snaps under snaps/, then re-runs the
// scenarios and ingests the freshly generated snaps into the same
// store, and asserts the warehouse's core guarantees end to end:
//
//   - the committed snaps all store (no dups on first contact) under
//     strong (reconstructed) signatures;
//   - the fresh re-run deduplicates completely onto the committed
//     blobs (the fleet is deterministic — nothing new is stored);
//   - every bucket's occurrence count is exactly twice its blob
//     count, one per ingest round;
//   - the index rebuilt from the journal alone is byte-identical to
//     the live index, and to the flushed index.json.
//
// Any violation exits nonzero with a diagnosis.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"traceback/internal/archive"
	"traceback/internal/recon"
	"traceback/internal/scenario"
)

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "storecheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	snapsDir := flag.String("snaps", "snaps", "committed snap directory (mapfiles in <snaps>/maps)")
	storeDir := flag.String("store", "", "warehouse directory (default: a temp dir, removed on success)")
	flag.Parse()

	committed, err := listSnaps(*snapsDir)
	if err != nil {
		die("%v (run `go run ./tools/gensnaps` to regenerate the committed fleet)", err)
	}

	if *storeDir == "" {
		tmp, err := os.MkdirTemp("", "storecheck-*")
		if err != nil {
			die("%v", err)
		}
		defer os.RemoveAll(tmp)
		*storeDir = filepath.Join(tmp, "wh")
	}

	loader, err := recon.NewDirLoader(filepath.Join(*snapsDir, "maps"))
	if err != nil {
		die("%v", err)
	}
	pipe := recon.NewPipeline(recon.NewMapCache(loader.Load), 0)
	arch, err := archive.OpenWith(*storeDir, archive.Options{Telemetry: pipe.Registry()})
	if err != nil {
		die("%v", err)
	}

	// Round 1: the committed fleet. Everything stores, nothing dups,
	// every signature is strong.
	stored, dups := ingest(pipe, arch, committed)
	if dups != 0 {
		die("committed fleet self-duplicates: %d dup(s) among %d snaps", dups, len(committed))
	}
	fmt.Printf("committed: %d snap(s) stored in %d bucket(s)\n", stored, len(arch.Buckets()))

	// Round 2: regenerate the fleet from source and ingest the fresh
	// snaps. Determinism means every one dedupes onto a committed blob.
	freshDir, err := os.MkdirTemp("", "storecheck-fresh-*")
	if err != nil {
		die("%v", err)
	}
	defer os.RemoveAll(freshDir)
	builts, err := scenario.All()
	if err != nil {
		die("regenerating fleet: %v", err)
	}
	var fresh []string
	for _, b := range builts {
		paths, err := b.Write(freshDir)
		if err != nil {
			die("%v", err)
		}
		fresh = append(fresh, paths...)
	}
	if len(fresh) != len(committed) {
		die("fleet drift: %d committed snap(s) but scenarios now produce %d — rerun tools/gensnaps and commit",
			len(committed), len(fresh))
	}
	freshStored, freshDups := ingest(pipe, arch, fresh)
	if freshStored != 0 {
		die("fresh re-run stored %d new blob(s); committed snaps/ is stale — rerun tools/gensnaps and commit", freshStored)
	}
	fmt.Printf("fresh rerun: %d snap(s), all deduplicated onto committed blobs\n", freshDups)

	// Bucket accounting: two ingest rounds, so each bucket counts twice
	// its blobs.
	for _, b := range arch.Buckets() {
		if b.Weak {
			die("bucket %s (%s) is weak: committed mapfiles failed to reconstruct", b.Sig, b.Title)
		}
		if b.Count != 2*uint64(len(b.Snaps)) {
			die("bucket %s counts %d occurrences over %d blob(s), want exactly 2x", b.Sig, b.Count, len(b.Snaps))
		}
	}

	// Durability: journal reduction must reproduce the live index byte
	// for byte, and Flush must have persisted exactly those bytes.
	live, err := arch.IndexBytes()
	if err != nil {
		die("%v", err)
	}
	rebuilt, err := arch.RebuildIndexBytes()
	if err != nil {
		die("%v", err)
	}
	if !bytes.Equal(live, rebuilt) {
		die("index rebuilt from journal differs from live index")
	}
	if err := arch.Flush(); err != nil {
		die("%v", err)
	}
	onDisk, err := os.ReadFile(filepath.Join(*storeDir, "index.json"))
	if err != nil {
		die("%v", err)
	}
	if !bytes.Equal(onDisk, live) {
		die("flushed index.json differs from live index")
	}
	if err := arch.Close(); err != nil {
		die("closing store: %v", err)
	}

	fmt.Printf("store-check ok: %d bucket(s), %d blob(s), %d bytes; journal rebuild byte-identical\n",
		len(arch.Buckets()), arch.NumBlobs(), arch.StoredBytes())
}

// ingest runs the paths through the reconstruction pipeline and
// archives each result, dying on any per-snap failure.
func ingest(pipe *recon.Pipeline, arch *archive.Archive, paths []string) (stored, dups int) {
	sources := make([]recon.Source, len(paths))
	for i, p := range paths {
		sources[i] = recon.FileSource(p)
	}
	for i, res := range pipe.Run(sources) {
		if res.Err != nil {
			die("%s: %v", paths[i], res.Err)
		}
		r, err := arch.Ingest(res.Trace.Snap, archive.FromTrace(res.Trace))
		if err != nil {
			die("%s: %v", paths[i], err)
		}
		if r.Dup {
			dups++
		} else {
			stored++
		}
	}
	return stored, dups
}

func listSnaps(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".snap.json") || strings.HasSuffix(e.Name(), ".snap.json.gz") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no committed snaps in %s", dir)
	}
	sort.Strings(out)
	return out, nil
}
