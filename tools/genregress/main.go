// genregress regenerates the committed fault-campaign regression
// corpus under snaps/regressions/: a handful of seed-1 campaign
// trials committed as snap+mapfile bundles with their expected
// diagnosis, plus one seeded-known-bad case whose module table is
// deliberately corrupted so reconstruction must fail. The VM is
// deterministic, so the output is byte-identical on every run;
// `tbfault replay -dir snaps/regressions` holds every case to its
// manifest and is wired into `make fault-check`.
//
//	go run ./tools/genregress            # writes into snaps/regressions/
//	go run ./tools/genregress -out d     # writes into d/
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"traceback/internal/fault"
	"traceback/internal/module"
	"traceback/internal/snap"
)

func main() {
	out := flag.String("out", filepath.Join("snaps", "regressions"), "corpus directory (maps go in <out>/maps)")
	flag.Parse()
	if err := generate(*out); err != nil {
		fmt.Fprintln(os.Stderr, "genregress:", err)
		os.Exit(1)
	}
}

const seed = 1

func generate(out string) error {
	if err := os.MkdirAll(filepath.Join(out, "maps"), 0o755); err != nil {
		return err
	}
	// Record: the committed snaps carry their nondeterminism recording
	// as an embedded section, so every corpus case (except the seeded
	// known-bad one) replays standalone — `make replay-check` holds
	// each to byte-identical re-execution.
	c, err := fault.New(fault.Config{Seed: seed, Record: true})
	if err != nil {
		return err
	}

	specs := []struct{ name, kind, scen string }{
		{"kill-crossmachine", fault.KindKill, "crossmachine"},
		{"signal-quickstart", fault.KindSignal, "quickstart"},
		{"wrap-crossmachine", fault.KindWrap, "crossmachine"},
		{"managed-interrupt", fault.KindManaged, "petshop"},
	}
	man := fault.Corpus{V: 1}
	written := map[string]bool{}
	var badSource *snap.Snap // clone source for the known-bad case
	var badMaps []string

	for _, sp := range specs {
		tr, snaps, maps, err := c.Trial(sp.kind, sp.scen)
		if err != nil {
			return fmt.Errorf("case %s: %w", sp.name, err)
		}
		// Committed ground truth must be clean and diagnosable.
		if len(tr.Violations) > 0 {
			return fmt.Errorf("case %s: trial violates its own invariants: %+v", sp.name, tr.Violations)
		}
		if len(tr.FaultLines) == 0 {
			return fmt.Errorf("case %s: no fault line resolved; nothing to regress against", sp.name)
		}
		if !tr.Replayed {
			return fmt.Errorf("case %s: recording did not replay-verify (%s)", sp.name, tr.ReplayDivergence)
		}
		cc := fault.CorpusCase{
			Name: sp.name, Kind: sp.kind, Scenario: sp.scen, Seed: seed,
			Repro: tr.Repro, Expect: fault.ExpectFaultLine, FaultLines: tr.FaultLines,
		}
		for i, s := range snaps {
			fn := fmt.Sprintf("%s-%d.snap.json.gz", sp.name, i+1)
			if err := writeSnap(filepath.Join(out, fn), s); err != nil {
				return err
			}
			cc.Snaps = append(cc.Snaps, fn)
		}
		for _, mf := range maps {
			fn := mf.ModuleName + ".map.json"
			if !written[fn] {
				if err := writeMap(filepath.Join(out, "maps", fn), mf); err != nil {
					return err
				}
				written[fn] = true
			}
			cc.Maps = append(cc.Maps, fn)
		}
		if sp.name == "kill-crossmachine" {
			if badSource, err = cloneSnap(snaps[0]); err != nil {
				return err
			}
			badMaps = cc.Maps
		}
		man.Cases = append(man.Cases, cc)
	}

	// The seeded-known-bad case: a real snap whose module table is
	// deterministically corrupted. Replay requires reconstruction to
	// FAIL — if it ever passes, the checker has lost its teeth and
	// the gate goes red.
	fault.CorruptModuleTable(badSource)
	bad := fault.CorpusCase{
		Name: "torn-module-table", Kind: fault.KindKill, Scenario: "crossmachine", Seed: seed,
		Repro:  fault.Repro(seed, []string{fault.KindKill}, []string{"crossmachine"}),
		Snaps:  []string{"torn-module-table-1.snap.json.gz"},
		Maps:   badMaps,
		Expect: fault.ExpectViolation,
		Detail: "module table checksum deliberately corrupted by genregress; reconstruction must fail",
	}
	if err := writeSnap(filepath.Join(out, bad.Snaps[0]), badSource); err != nil {
		return err
	}
	man.Cases = append(man.Cases, bad)

	if err := writeManifest(out, &man); err != nil {
		return err
	}
	// Sanity: every case must behave as its manifest advertises
	// before being committed as ground truth.
	for i := range man.Cases {
		if err := man.Cases[i].Verify(out); err != nil {
			return fmt.Errorf("self-check: %w", err)
		}
	}
	fmt.Printf("wrote %d case(s) (%d known-bad) into %s\n", len(man.Cases), 1, out)
	return nil
}

func writeManifest(out string, man *fault.Corpus) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(man); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(out, fault.ManifestName), buf.Bytes(), 0o644)
}

func writeSnap(path string, s *snap.Snap) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.SaveCompressed(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeMap(path string, mf *module.MapFile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := mf.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cloneSnap(s *snap.Snap) (*snap.Snap, error) {
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return nil, err
	}
	return snap.Load(&buf)
}
