package main

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"traceback/internal/snap"
	"traceback/internal/trace"
)

func write(dir, name string, data []byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		panic(err)
	}
	fmt.Println(filepath.Join(dir, name))
}

func wordsToBytes(ws []uint32) []byte {
	out := make([]byte, len(ws)*4)
	for i, w := range ws {
		binary.LittleEndian.PutUint32(out[i*4:], w)
	}
	return out
}

func main() {
	root := os.Args[1]

	tdir := filepath.Join(root, "internal/trace/testdata/fuzz/FuzzTraceRecordDecode")
	var ws []uint32
	ws = append(ws, trace.DAGWord(7, 0b1011))
	ws = trace.AppendTimestamp(ws, 0x1122334455667788)
	ws = append(ws, trace.DAGWord(9, 0))
	ws = trace.AppendSync(ws, trace.Sync{Point: trace.SyncCallSend, RuntimeID: 0xdead, LogicalThread: 3, Seq: 1, TS: 42})
	ws = trace.AppendThreadStart(ws, 1, 100)
	write(tdir, "wellformed-stream", wordsToBytes(ws))
	write(tdir, "torn-stream", wordsToBytes(ws[3:]))
	write(tdir, "sentinels", wordsToBytes([]uint32{trace.Invalid, trace.Sentinel, trace.DAGWord(1, 1), trace.Sentinel}))
	write(tdir, "kind-zero-trailer", wordsToBytes([]uint32{0x00020000, 0x7F020000}))
	write(tdir, "kind-7f-trailer", wordsToBytes([]uint32{0x7F020000, 0x7F02007F}))
	var exc []uint32
	exc = trace.AppendException(exc, trace.Exception{Code: 8, Addr: 0x401000, TS: 999})
	write(tdir, "exception", wordsToBytes(exc))
	write(tdir, "unaligned", []byte{0x7f, 0x02, 0x00})
	write(tdir, "bad-dag", wordsToBytes([]uint32{trace.DAGWord(trace.BadDAGID, 0x3FF)}))

	sdir := filepath.Join(root, "internal/snap/testdata/fuzz/FuzzSnapReader")
	valid := &snap.Snap{
		Host: "h", Process: "p", PID: 7, RuntimeID: 0xabcdef, Reason: "api",
		Time: 123456,
		Modules: []snap.ModuleInfo{{
			Name: "m", Checksum: "00ff", ActualDAGBase: 1, DAGCount: 2,
			CodeBase: 0x1000, CodeLen: 64, DataBase: 0x2000, DataDump: []byte{1, 2, 3},
		}},
		Buffers: []snap.BufferDump{{
			Kind: snap.BufMain, OwnerTID: 1, LastPtr: 3, LastKnown: true,
			SubWords: 4, Raw: []byte{0xAA, 0, 0, 0x80, 0xFF, 0xFF, 0xFF, 0xFF},
		}},
		Partners: []uint64{9},
	}
	var plain bytes.Buffer
	if err := valid.Save(&plain); err != nil {
		panic(err)
	}
	write(sdir, "valid-json", plain.Bytes())
	var zipped bytes.Buffer
	if err := valid.SaveCompressed(&zipped); err != nil {
		panic(err)
	}
	write(sdir, "valid-gzip", zipped.Bytes())
	write(sdir, "truncated-gzip", zipped.Bytes()[:len(zipped.Bytes())/2])
	write(sdir, "bare-gzip-magic", []byte{0x1f, 0x8b})
	var junkz bytes.Buffer
	zw := gzip.NewWriter(&junkz)
	zw.Write([]byte("not json"))
	zw.Close()
	write(sdir, "gzip-non-json", junkz.Bytes())
	write(sdir, "open-brace", []byte("{"))
	write(sdir, "empty-object", []byte("{}"))
	write(sdir, "raw-buffer", []byte(`{"buffers":[{"raw":"AAAA"}]}`))
	write(sdir, "empty", []byte{})
	// Fuzzer-found: case-insensitive JSON field matching can populate
	// an omitempty slice with a present-but-empty value, a form Save
	// never emits (canonicalized on first save).
	write(sdir, "case-insensitive-empty-partners", []byte(`{"pArtners":[]}`))
}
