// replaycheck is the record-and-replay gate (`make replay-check`):
//
//  1. Every example scenario is re-run with recording on; the fresh
//     harvest must match the committed snaps/ fleet byte for byte
//     (staleness — fix: make gensnaps), and the recording must replay
//     to a byte-identical harvest with zero divergence.
//  2. Every committed regression-corpus case (snaps/regressions/)
//     except the seeded-known-bad ones must carry a recording that
//     replays its snaps byte for byte — a snap in the corpus is not
//     just evidence, it is a re-executable program.
//  3. Seeded divergent logs — a corrupted checkpoint and a truncated
//     tail — must be rejected with machine-readable divergence
//     reports of the right kind. If corruption replays cleanly, the
//     conformance checker has lost its teeth.
//
// The VM is deterministic, so the whole gate is deterministic.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"traceback/internal/fault"
	"traceback/internal/replay"
	"traceback/internal/scenario"
	"traceback/internal/snap"
	"traceback/internal/trace"
)

func main() {
	snapsDir := flag.String("snaps", "snaps", "committed example snap fleet")
	regressDir := flag.String("regress", filepath.Join("snaps", "regressions"), "committed regression corpus")
	flag.Parse()
	failed := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "replaycheck: FAIL "+format+"\n", args...)
		failed++
	}

	checkScenarios(*snapsDir, fail)
	checkCorpus(*regressDir, fail)
	checkDivergenceGate(fail)

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "replaycheck: %d failure(s)\n", failed)
		os.Exit(1)
	}
	fmt.Println("replaycheck: every snap replays byte-identically; divergence gate holds")
}

// checkScenarios records each example scenario fresh, holds the
// harvest to the committed fleet (staleness), and replay-verifies the
// recording.
func checkScenarios(dir string, fail func(string, ...any)) {
	for _, b := range scenario.Builders {
		l, res, err := replay.Record(b.Name, false, false)
		if err != nil {
			fail("%s: record: %v", b.Name, err)
			continue
		}
		committed, names, err := committedSnaps(dir, b.Name)
		if err != nil {
			fail("%s: %v", b.Name, err)
			continue
		}
		if len(committed) != len(res.Snaps) {
			fail("%s: %d committed snap(s), fresh run produced %d (stale snaps/? fix: make gensnaps)",
				b.Name, len(committed), len(res.Snaps))
			continue
		}
		for i := range committed {
			want, err := replay.StrippedBytes(committed[i])
			if err != nil {
				fail("%s: %v", names[i], err)
				continue
			}
			got, err := replay.StrippedBytes(res.Snaps[i])
			if err != nil {
				fail("%s: %v", b.Name, err)
				continue
			}
			if string(want) != string(got) {
				fail("%s: differs from the fresh run (stale snaps/? fix: make gensnaps)", names[i])
			}
		}
		v, err := replay.Verify(l, res.Snaps)
		if err != nil {
			fail("%s: replay: %v", b.Name, err)
			continue
		}
		if v.Divergence != nil {
			fail("%s: replay diverged: %v", b.Name, v.Divergence)
			continue
		}
		if !v.Identical {
			fail("%s: replay not byte-identical", b.Name)
			continue
		}
		fmt.Printf("ok   scenario %-14s %d snap(s) replay byte-identically (%d recorded event(s))\n",
			b.Name, len(res.Snaps), len(l.Events))
	}
}

// committedSnaps loads the committed fleet of one scenario in harvest
// order (the trailing index in the file name).
func committedSnaps(dir, name string) ([]*snap.Snap, []string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, name+"-*.snap.json.gz"))
	if err != nil {
		return nil, nil, err
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("no committed snaps match %s-*", name)
	}
	idx := func(p string) int {
		base := strings.TrimSuffix(filepath.Base(p), ".snap.json.gz")
		var n int
		fmt.Sscanf(base[strings.LastIndex(base, "-")+1:], "%d", &n)
		return n
	}
	sort.Slice(paths, func(i, j int) bool { return idx(paths[i]) < idx(paths[j]) })
	var snaps []*snap.Snap
	for _, p := range paths {
		s, err := loadSnap(p)
		if err != nil {
			return nil, nil, err
		}
		snaps = append(snaps, s)
	}
	return snaps, paths, nil
}

// checkCorpus replays every committed regression case from its
// embedded recording. Seeded-known-bad cases (ExpectViolation) are
// skipped: their snaps are post-hoc corrupted evidence, not faithful
// recordings of an execution.
func checkCorpus(dir string, fail func(string, ...any)) {
	corpus, err := fault.LoadCorpus(dir)
	if err != nil {
		fail("corpus: %v", err)
		return
	}
	for i := range corpus.Cases {
		cc := &corpus.Cases[i]
		if cc.Expect == fault.ExpectViolation {
			fmt.Printf("skip corpus   %-14s seeded-known-bad (not a faithful recording)\n", cc.Name)
			continue
		}
		var snaps []*snap.Snap
		bad := false
		for _, name := range cc.Snaps {
			s, err := loadSnap(filepath.Join(dir, name))
			if err != nil {
				fail("corpus %s: %v", cc.Name, err)
				bad = true
				break
			}
			snaps = append(snaps, s)
		}
		if bad {
			continue
		}
		l, err := replay.FromSnap(snaps[0])
		if err != nil {
			fail("corpus %s: %v (regenerate: make genregress)", cc.Name, err)
			continue
		}
		v, err := replay.Verify(l, snaps)
		if err != nil {
			fail("corpus %s: replay: %v", cc.Name, err)
			continue
		}
		if v.Divergence != nil {
			fail("corpus %s: replay diverged: %v", cc.Name, v.Divergence)
			continue
		}
		if !v.Identical {
			fail("corpus %s: replay not byte-identical", cc.Name)
			continue
		}
		fmt.Printf("ok   corpus   %-14s %d snap(s) replay byte-identically\n", cc.Name, len(snaps))
	}
}

// checkDivergenceGate seeds corrupt logs and requires machine-readable
// rejection.
func checkDivergenceGate(fail func(string, ...any)) {
	l, _, err := replay.Record("quickstart", false, false)
	if err != nil {
		fail("divergence gate: record: %v", err)
		return
	}

	// A checkpoint clock the original run never saw.
	bad := &replay.Log{Scenario: l.Scenario, Interval: l.Interval}
	bad.Events = append([]trace.NondetRecord(nil), l.Events...)
	corrupted := false
	for i := range bad.Events {
		if bad.Events[i].Kind == trace.NDQuantum {
			bad.Events[i].Clock++
			corrupted = true
			break
		}
	}
	if !corrupted {
		fail("divergence gate: recording has no checkpoint to corrupt")
		return
	}
	expectDivergence(bad, "event-mismatch", fail)

	// A torn log: the tail event never arrives.
	short := &replay.Log{Scenario: l.Scenario, Interval: l.Interval}
	short.Events = append([]trace.NondetRecord(nil), l.Events[:len(l.Events)-1]...)
	expectDivergence(short, "log-exhausted", fail)
}

func expectDivergence(l *replay.Log, kind string, fail func(string, ...any)) {
	res, err := replay.Run(l)
	if err != nil {
		fail("divergence gate (%s): %v", kind, err)
		return
	}
	if res.Divergence == nil {
		fail("divergence gate: seeded %s corruption replayed CLEANLY — conformance checking lost its teeth", kind)
		return
	}
	if res.Divergence.Kind != kind {
		fail("divergence gate: kind %q, want %q", res.Divergence.Kind, kind)
		return
	}
	// Machine-readable: the error message must embed parseable JSON.
	msg := res.Divergence.Error()
	i := strings.Index(msg, "{")
	var parsed replay.Divergence
	if i < 0 || json.Unmarshal([]byte(msg[i:]), &parsed) != nil || parsed.Kind != kind {
		fail("divergence gate: report %q is not machine-readable", msg)
		return
	}
	fmt.Printf("ok   divergence %-12s rejected with machine-readable report\n", kind)
}

func loadSnap(path string) (*snap.Snap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := snap.LoadAuto(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return s, nil
}
