// shardcheck is the sharded-warehouse CI gate (`make shard-check`):
// it boots an in-process 3-shard fleet (three tbcollectd servers over
// loopback TCP), a fan-out gate over them, and a shard-aware agent,
// and asserts the three properties the multi-node design stands on:
//
//  1. Byte-equivalence under healthy placement: a fleet of snaps
//     uploaded through the shard-aware agent lands so that the union
//     of the three shard journals reduces to index bytes identical to
//     a single node ingesting the same fleet, and the gate's merged
//     /v1/buckets matches the single node's byte for byte.
//  2. Kill/restart loses nothing: with one shard down mid-campaign,
//     uploads redirect to the next live shard (counted in
//     coll_agent_failover_total and flight-recorded); after the shard
//     restarts on the same address, every uploaded snap is resident
//     somewhere, every signature is present in the gate's merged
//     view, and the spool is empty. Byte-equivalence is deliberately
//     NOT asserted here: a failover may journal the same content on
//     two shards, which inflates occurrence counts — the design trade
//     documented in internal/shard.
//  3. Fleet triage through the gate: a steady background staged
//     across the ten newest rate windows plus one seeded tbfault
//     campaign in the newest window must make GET /v1/regressions on
//     the gate flag exactly the campaign-only signatures.
//
// Everything is seeded and snap times are synthetic, so the whole
// gate is deterministic. Any violation exits nonzero with a diagnosis.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"traceback/internal/archive"
	"traceback/internal/collect"
	"traceback/internal/fault"
	"traceback/internal/recon"
	"traceback/internal/scenario"
	"traceback/internal/shard"
	"traceback/internal/shard/gate"
	"traceback/internal/snap"
	"traceback/internal/telemetry"
	"traceback/internal/triage"
)

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "shardcheck: "+format+"\n", args...)
	os.Exit(1)
}

const (
	shards       = 3
	campaignSeed = 3
	horizon      = 10 // windows of steady background
)

// shardNode is one in-process tbcollectd shard the check can kill and
// restart on a stable address.
type shardNode struct {
	arch *archive.Archive
	maps *recon.MapSet
	addr string
	srv  *collect.Server
	errc chan error
}

func (n *shardNode) url() string { return "http://" + n.addr }

func (n *shardNode) start(l net.Listener) {
	n.srv = collect.NewServer(n.arch, collect.ServerOptions{Maps: n.maps, MaxInflight: 8})
	n.errc = make(chan error, 1)
	srv, errc := n.srv, n.errc
	go func() { errc <- srv.Serve(l) }()
}

func (n *shardNode) kill() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := n.srv.Shutdown(ctx); err != nil {
		die("killing shard %s: %v", n.addr, err)
	}
	if err := <-n.errc; err != nil && err != http.ErrServerClosed {
		die("shard %s serve: %v", n.addr, err)
	}
}

func (n *shardNode) restart() {
	l, err := net.Listen("tcp", n.addr)
	if err != nil {
		die("restarting shard on %s: %v", n.addr, err)
	}
	n.start(l)
}

func main() {
	builts, err := scenario.All()
	if err != nil {
		die("building scenarios: %v", err)
	}
	maps := scenario.MapSet(builts...)

	camp, err := fault.New(fault.Config{
		Seed: campaignSeed, Kinds: []string{fault.KindKill}, Scenarios: []string{"quickstart"},
	})
	if err != nil {
		die("building campaign: %v", err)
	}
	_, faultSnaps, faultMaps, err := camp.Trial(fault.KindKill, "quickstart")
	if err != nil {
		die("campaign trial: %v", err)
	}
	if len(faultSnaps) == 0 {
		die("campaign trial produced no snaps")
	}
	for _, mf := range faultMaps {
		maps.Add(mf)
	}

	root, err := os.MkdirTemp("", "shardcheck-*")
	if err != nil {
		die("%v", err)
	}
	defer os.RemoveAll(root)

	// Boot the fleet: three shards and a single-node reference over
	// the same map set.
	ring, err := shard.NewRing(shards)
	if err != nil {
		die("%v", err)
	}
	nodes := make([]*shardNode, shards)
	urls := make([]string, shards)
	for i := range nodes {
		arch, err := archive.Open(filepath.Join(root, fmt.Sprintf("shard%d", i)))
		if err != nil {
			die("opening shard %d store: %v", i, err)
		}
		defer arch.Close()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			die("listen: %v", err)
		}
		nodes[i] = &shardNode{arch: arch, maps: maps, addr: l.Addr().String()}
		nodes[i].start(l)
		urls[i] = nodes[i].url()
	}
	single, err := archive.Open(filepath.Join(root, "single"))
	if err != nil {
		die("opening single-node store: %v", err)
	}
	defer single.Close()
	singleSrv := collect.NewServer(single, collect.ServerOptions{Maps: maps, MaxInflight: 8})
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		die("listen: %v", err)
	}
	singleBase := "http://" + sl.Addr().String()
	serrc := make(chan error, 1)
	go func() { serrc <- singleSrv.Serve(sl) }()

	gw, err := gate.New(urls, gate.Options{Maps: maps})
	if err != nil {
		die("building gate: %v", err)
	}
	gl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		die("listen: %v", err)
	}
	gateBase := "http://" + gl.Addr().String()
	gerrc := make(chan error, 1)
	go func() { gerrc <- gw.Serve(gl) }()

	// The shard-aware agent: one spool, the fleet's URL list in ring
	// order, quick retries (loopback failures are cheap).
	spool := filepath.Join(root, "spool")
	reg := telemetry.New()
	ag, err := collect.NewFleetAgent(spool, urls, collect.AgentOptions{
		BackoffBase: 10 * time.Millisecond, BackoffMax: 250 * time.Millisecond,
		Seed: 1, Telemetry: reg,
	})
	if err != nil {
		die("building fleet agent: %v", err)
	}
	drain := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := ag.Drain(ctx); err != nil {
			die("drain: %v", err)
		}
	}

	W := archive.WindowWidth

	// ---- Phase 1: healthy placement, byte-equivalence. ----
	// Steady background: every scenario snap in every one of the
	// horizon newest windows, plus the campaign in the newest window —
	// spooled through the agent AND mirrored into the single node.
	steady := map[string]bool{}
	injected := map[string]bool{}
	mirror := func(s *snap.Snap) {
		if _, err := Spool(spool, s); err != nil {
			die("spool: %v", err)
		}
		if _, err := single.IngestUnique(s, archive.SignSnap(s, maps)); err != nil {
			die("single-node ingest: %v", err)
		}
	}
	for win := uint64(0); win < horizon; win++ {
		for _, b := range builts {
			for _, s := range b.Snaps {
				cp := *s
				cp.Time = win*W + W/4
				steady[archive.SignSnap(&cp, maps).ID] = true
				mirror(&cp)
			}
		}
	}
	for _, s := range faultSnaps {
		cp := *s
		cp.Time = (horizon-1)*W + W/2
		if id := archive.SignSnap(&cp, maps).ID; !steady[id] {
			injected[id] = true
		}
		mirror(&cp)
	}
	if len(injected) == 0 {
		die("seed %d campaign signatures all collide with the baseline", campaignSeed)
	}
	drain()

	if got := metricValue(reg, "coll_agent_failover_total"); got != 0 {
		die("healthy fleet recorded %d failover(s)", got)
	}
	// Placement respected: every blob is resident on its ring home.
	for i, n := range nodes {
		for _, b := range n.arch.Buckets() {
			for _, ref := range b.Snaps {
				home, err := ring.Place(ref.Sum)
				if err != nil {
					die("%v", err)
				}
				if home != i {
					die("blob %s resident on shard %d, ring homes it on %d", ref.Sum[:12], i, home)
				}
			}
		}
	}
	// Union of the shard journals reduces to the single node's exact
	// index bytes.
	var union []archive.JournalRecord
	for i, n := range nodes {
		if err := n.arch.Flush(); err != nil {
			die("flushing shard %d: %v", i, err)
		}
		f, err := os.Open(n.arch.JournalPath())
		if err != nil {
			die("%v", err)
		}
		recs, err := archive.DecodeJournal(f)
		f.Close()
		if err != nil {
			die("shard %d journal: %v", i, err)
		}
		union = append(union, recs...)
	}
	unionBytes, err := archive.IndexBytesOf(union)
	if err != nil {
		die("%v", err)
	}
	singleBytes, err := single.IndexBytes()
	if err != nil {
		die("%v", err)
	}
	if !bytes.Equal(unionBytes, singleBytes) {
		die("union of shard journals does not reduce to the single-node index bytes")
	}
	// And the gate's merged view matches the single daemon on the wire.
	for _, route := range []string{collect.PathBuckets, collect.PathTop + "?n=5", collect.PathRegressions} {
		gateBody := fetch(gateBase + route)
		singleBody := fetch(singleBase + route)
		if !bytes.Equal(gateBody, singleBody) {
			die("gate %s differs from single node:\ngate:\n%s\nsingle:\n%s", route, gateBody, singleBody)
		}
	}

	// ---- Phase 2: fleet triage through the gate. ----
	flagged := fetchFlagged(gateBase)
	for sig := range injected {
		if !flagged[sig] {
			die("gate /v1/regressions did not flag injected campaign signature %s", sig)
		}
	}
	for sig := range flagged {
		if !injected[sig] {
			die("gate /v1/regressions flagged %s, which was not injected", sig)
		}
	}

	// ---- Phase 3: kill/restart mid-campaign loses nothing. ----
	victim := 1
	var sums []string
	spoolLate := func(s *snap.Snap) {
		sum, _, err := archive.ChecksumSnap(s)
		if err != nil {
			die("%v", err)
		}
		sums = append(sums, sum)
		if _, err := Spool(spool, s); err != nil {
			die("spool: %v", err)
		}
	}
	homes := 0
	for i, b := range builts {
		for j, s := range b.Snaps {
			cp := *s
			cp.Time = horizon*W + uint64(i*16+j) // unique content, newest window
			spoolLate(&cp)
			home, err := ring.Place(sums[len(sums)-1])
			if err != nil {
				die("%v", err)
			}
			if home == victim {
				homes++
			}
		}
	}
	if homes == 0 {
		die("no late snap homes on shard %d; the kill/restart phase needs one", victim)
	}
	nodes[victim].kill()
	drain() // failover carries shard 1's snaps to the next live shard
	if got := metricValue(reg, "coll_agent_failover_total"); got < homes {
		die("coll_agent_failover_total = %d after kill, want at least %d", got, homes)
	}
	if !hasFlightEvent(reg, "coll-agent-failover") {
		die("no coll-agent-failover flight event recorded")
	}
	nodes[victim].restart()

	// A second late batch lands after the restart — the fleet is whole
	// again, so placement must hold for it.
	before := len(sums)
	for i, b := range builts {
		for j, s := range b.Snaps {
			cp := *s
			cp.Time = horizon*W + W/2 + uint64(i*16+j)
			spoolLate(&cp)
		}
	}
	if before == len(sums) {
		die("no snaps in the post-restart batch")
	}
	drain()

	// Nothing lost: every uploaded sum is resident on some shard, and
	// the gate still merges every signature.
	for _, sum := range sums {
		found := false
		for _, n := range nodes {
			if n.arch.Has(sum) {
				found = true
				break
			}
		}
		if !found {
			die("blob %s lost across kill/restart", sum[:12])
		}
	}
	var tr collect.TopResponse
	if err := json.Unmarshal(fetch(gateBase+collect.PathBuckets), &tr); err != nil {
		die("gate buckets: %v", err)
	}
	merged := map[string]bool{}
	for _, b := range tr.Buckets {
		merged[b.Sig] = true
	}
	for sig := range steady {
		if !merged[sig] {
			die("steady signature %s missing from the gate after kill/restart", sig)
		}
	}
	for sig := range injected {
		if !merged[sig] {
			die("injected signature %s missing from the gate after kill/restart", sig)
		}
	}

	// Shut the fleet down cleanly.
	for _, n := range nodes {
		n.kill()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		die("gate shutdown: %v", err)
	}
	if err := <-gerrc; err != nil && err != http.ErrServerClosed {
		die("gate serve: %v", err)
	}
	if err := singleSrv.Shutdown(ctx); err != nil {
		die("single-node shutdown: %v", err)
	}
	if err := <-serrc; err != nil && err != http.ErrServerClosed {
		die("single-node serve: %v", err)
	}

	fmt.Printf("shardcheck: OK — %d shard(s): union byte-identical to single node, gate flagged %d/%d injected, kill/restart redirected %d upload(s) and lost nothing\n",
		shards, len(injected), len(injected), metricValue(reg, "coll_agent_failover_total"))
}

// Spool mirrors collect.Spool (kept local so the check reads like the
// agent deployment it simulates).
func Spool(dir string, s *snap.Snap) (string, error) {
	return collect.Spool(dir, s)
}

func fetch(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		die("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		die("GET %s: status %s", url, resp.Status)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		die("GET %s: %v", url, err)
	}
	return buf.Bytes()
}

// fetchFlagged pulls /v1/regressions and returns the flagged set.
func fetchFlagged(base string) map[string]bool {
	var rep triage.Report
	if err := json.Unmarshal(fetch(base+collect.PathRegressions), &rep); err != nil {
		die("regressions: %v", err)
	}
	out := map[string]bool{}
	for _, a := range rep.Flagged() {
		out[a.Sig] = true
	}
	return out
}

// metricValue reads one counter out of a registry's Prometheus dump.
func metricValue(reg *telemetry.Registry, name string) int {
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		die("metrics: %v", err)
	}
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		var v int
		if _, err := fmt.Sscanf(string(line), name+" %d", &v); err == nil {
			return v
		}
	}
	die("metric %s not registered", name)
	return 0
}

func hasFlightEvent(reg *telemetry.Registry, kind string) bool {
	for _, e := range reg.FlightRecorder().Events() {
		if e.Kind == kind {
			return true
		}
	}
	return false
}
