// collectcheck is the fleet collection plane's CI gate
// (`make collect-check`): it pushes the committed snaps/ fleet over a
// real loopback TCP connection through the tbagent→tbcollectd
// protocol and asserts the wire path is indistinguishable from a
// local ingest:
//
//   - at every ingest concurrency bound (-inflight 1, 4, 16, with
//     racing agents so uploads interleave arbitrarily), the daemon's
//     index comes out byte-identical to a direct in-process ingest of
//     the same snaps under the same mapfiles;
//   - a second upload round of the identical fleet is fully absorbed
//     by the dedup precheck — zero uploads, zero new journal
//     records, one HEAD round trip per snap;
//   - a fresh re-run of the example scenarios also dedups completely
//     (the fleet is deterministic; wire transport must not change
//     that);
//   - the index rebuilt from the daemon's journal alone is
//     byte-identical to its live index;
//   - the daemon drains gracefully and flushes its index at
//     shutdown.
//
// Any violation exits nonzero with a diagnosis.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"traceback/internal/archive"
	"traceback/internal/collect"
	"traceback/internal/recon"
	"traceback/internal/scenario"
	"traceback/internal/snap"
)

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "collectcheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	snapsDir := flag.String("snaps", "snaps", "committed snap directory (mapfiles in <snaps>/maps)")
	flag.Parse()

	committed, err := listSnaps(*snapsDir)
	if err != nil {
		die("%v (run `go run ./tools/gensnaps` to regenerate the committed fleet)", err)
	}
	loader, err := recon.NewDirLoader(filepath.Join(*snapsDir, "maps"))
	if err != nil {
		die("%v", err)
	}

	tmp, err := os.MkdirTemp("", "collectcheck-*")
	if err != nil {
		die("%v", err)
	}
	defer os.RemoveAll(tmp)

	// The baseline: a direct in-process ingest of the committed fleet
	// under the same map resolver the daemon will use.
	want := directIndex(tmp, committed, loader)

	// Fresh scenario re-run, spooled once up front (shared by every
	// round's dedup check).
	freshDir := filepath.Join(tmp, "fresh")
	builts, err := scenario.All()
	if err != nil {
		die("regenerating fleet: %v", err)
	}
	var fresh []string
	for _, b := range builts {
		paths, err := b.Write(freshDir)
		if err != nil {
			die("%v", err)
		}
		fresh = append(fresh, paths...)
	}

	for _, inflight := range []int{1, 4, 16} {
		wireRound(tmp, committed, fresh, loader, inflight, want)
	}
	fmt.Printf("collectcheck: %d snap(s) over loopback at inflight 1/4/16: index parity, full precheck dedup, journal identity\n",
		len(committed))
}

// directIndex ingests every snap locally and returns the flushed
// index bytes — what the wire path must reproduce exactly.
func directIndex(tmp string, paths []string, loader *recon.DirLoader) []byte {
	arch, err := archive.Open(filepath.Join(tmp, "direct"))
	if err != nil {
		die("%v", err)
	}
	maps := recon.NewMapCache(loader.Load)
	for _, p := range paths {
		s := loadSnap(p)
		if _, err := arch.Ingest(s, archive.SignSnap(s, maps)); err != nil {
			die("direct ingest %s: %v", p, err)
		}
	}
	idx, err := arch.IndexBytes()
	if err != nil {
		die("%v", err)
	}
	if err := arch.Close(); err != nil {
		die("%v", err)
	}
	return idx
}

// wireRound runs one full daemon lifecycle at the given ingest bound:
// two racing agents upload the committed fleet, a third replays it
// (pure precheck dedup), a fourth pushes the fresh scenario re-run,
// and the daemon then drains gracefully.
func wireRound(tmp string, committed, fresh []string, loader *recon.DirLoader, inflight int, want []byte) {
	storeDir := filepath.Join(tmp, fmt.Sprintf("wire-%d", inflight))
	arch, err := archive.Open(storeDir)
	if err != nil {
		die("%v", err)
	}
	srv := collect.NewServer(arch, collect.ServerOptions{
		Maps:        recon.NewMapCache(loader.Load),
		MaxInflight: inflight,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		die("%v", err)
	}
	base := "http://" + l.Addr().String()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	// Round 1: two agents race the committed fleet up the wire.
	spoolA := filepath.Join(storeDir, "spool-a")
	spoolB := filepath.Join(storeDir, "spool-b")
	for i, p := range committed {
		dst := spoolA
		if i%2 == 1 {
			dst = spoolB
		}
		spoolFile(dst, p)
	}
	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); errA = mkAgent(spoolA, base).Drain(context.Background()) }()
	go func() { defer wg.Done(); errB = mkAgent(spoolB, base).Drain(context.Background()) }()
	wg.Wait()
	if errA != nil || errB != nil {
		die("inflight %d: drain failed: %v / %v", inflight, errA, errB)
	}

	got, err := arch.IndexBytes()
	if err != nil {
		die("%v", err)
	}
	if !bytes.Equal(got, want) {
		die("inflight %d: index after agent→daemon upload differs from direct ingest:\n--- wire ---\n%s\n--- direct ---\n%s",
			inflight, got, want)
	}
	rebuilt, err := arch.RebuildIndexBytes()
	if err != nil {
		die("%v", err)
	}
	if !bytes.Equal(rebuilt, got) {
		die("inflight %d: journal-rebuilt index differs from the live index", inflight)
	}

	// Round 2: the identical fleet again. The precheck must absorb
	// every snap — no uploads, no journal growth.
	journalBefore := journalSize(storeDir)
	spoolC := filepath.Join(storeDir, "spool-c")
	for _, p := range committed {
		spoolFile(spoolC, p)
	}
	replayer := mkAgent(spoolC, base)
	if err := replayer.Drain(context.Background()); err != nil {
		die("inflight %d: replay drain: %v", inflight, err)
	}
	assertCounter(replayer, "coll_agent_dedup_skips_total", uint64(len(committed)), inflight)
	assertCounter(replayer, "coll_agent_uploads_total", 0, inflight)
	if after := journalSize(storeDir); after != journalBefore {
		die("inflight %d: replay grew the journal from %d to %d bytes", inflight, journalBefore, after)
	}

	// Round 3: the freshly regenerated fleet. Determinism survives the
	// wire: everything dedups onto the committed blobs.
	spoolD := filepath.Join(storeDir, "spool-d")
	for _, p := range fresh {
		spoolFile(spoolD, p)
	}
	regen := mkAgent(spoolD, base)
	if err := regen.Drain(context.Background()); err != nil {
		die("inflight %d: fresh drain: %v", inflight, err)
	}
	assertCounter(regen, "coll_agent_uploads_total", 0, inflight)
	if after := journalSize(storeDir); after != journalBefore {
		die("inflight %d: fresh scenario re-run stored new content over the wire; snaps/ is stale — rerun tools/gensnaps and commit", inflight)
	}

	// Graceful drain: Serve returns ErrServerClosed and the flushed
	// index.json matches the live bytes.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		die("inflight %d: shutdown: %v", inflight, err)
	}
	if err := <-serveDone; err != nil && err != http.ErrServerClosed {
		die("inflight %d: serve: %v", inflight, err)
	}
	if err := arch.Close(); err != nil {
		die("%v", err)
	}
	flushed, err := os.ReadFile(filepath.Join(storeDir, "index.json"))
	if err != nil {
		die("%v", err)
	}
	if !bytes.Equal(flushed, got) {
		die("inflight %d: flushed index.json differs from the live index", inflight)
	}
}

func mkAgent(spool, base string) *collect.Agent {
	return collect.NewAgent(spool, base, collect.AgentOptions{
		Client:      &http.Client{Timeout: 30 * time.Second},
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
		Seed:        1,
	})
}

// spoolFile copies a committed snap file into an agent spool under
// its original name (the agent content-addresses on its own).
func spoolFile(spool, src string) {
	if err := os.MkdirAll(spool, 0o755); err != nil {
		die("%v", err)
	}
	b, err := os.ReadFile(src)
	if err != nil {
		die("%v", err)
	}
	if err := os.WriteFile(filepath.Join(spool, filepath.Base(src)), b, 0o644); err != nil {
		die("%v", err)
	}
}

func loadSnap(path string) *snap.Snap {
	f, err := os.Open(path)
	if err != nil {
		die("%v", err)
	}
	defer f.Close()
	s, err := snap.LoadAuto(f)
	if err != nil {
		die("%s: %v", path, err)
	}
	return s
}

func journalSize(storeDir string) int64 {
	st, err := os.Stat(filepath.Join(storeDir, "journal.jsonl"))
	if err != nil {
		die("%v", err)
	}
	return st.Size()
}

func assertCounter(ag *collect.Agent, name string, want uint64, inflight int) {
	var sb strings.Builder
	if err := ag.Metrics().WritePrometheus(&sb); err != nil {
		die("%v", err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var got uint64
			if _, err := fmt.Sscanf(line, name+" %d", &got); err != nil {
				die("parsing %q: %v", line, err)
			}
			if got != want {
				die("inflight %d: %s = %d, want %d", inflight, name, got, want)
			}
			return
		}
	}
	die("inflight %d: %s not exposed", inflight, name)
}

// listSnaps mirrors storecheck's committed-fleet discovery.
func listSnaps(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || (!strings.HasSuffix(name, ".snap.json") && !strings.HasSuffix(name, ".snap.json.gz")) {
			continue
		}
		paths = append(paths, filepath.Join(dir, name))
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("%s: no committed snaps", dir)
	}
	sort.Strings(paths)
	return paths, nil
}
