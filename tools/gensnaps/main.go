// gensnaps regenerates the committed example snap fleet under snaps/
// (and its mapfiles under snaps/maps). The VM is deterministic, so
// the output is byte-identical on every run — which is exactly what
// lets the snaps be committed: `tools/storecheck` re-runs the
// scenarios and requires the fresh snaps to deduplicate onto the
// committed blobs.
//
//	go run ./tools/gensnaps          # writes into snaps/
//	go run ./tools/gensnaps -out d   # writes into d/
package main

import (
	"flag"
	"fmt"
	"os"

	"traceback/internal/scenario"
)

func main() {
	out := flag.String("out", "snaps", "directory to write snaps (mapfiles go in <out>/maps)")
	flag.Parse()

	builts, err := scenario.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gensnaps:", err)
		os.Exit(1)
	}
	total := 0
	for _, b := range builts {
		paths, err := b.Write(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gensnaps:", err)
			os.Exit(1)
		}
		for _, p := range paths {
			fmt.Println(p)
		}
		total += len(paths)
	}
	fmt.Printf("wrote %d snap(s) from %d scenario(s) into %s\n", total, len(builts), *out)
}
