// genbroken regenerates the verifier's committed negative corpus from
// internal/verify/seed: one .tbm/.map.json pair per defect class under
// internal/verify/testdata/corpus, a manifest.json mapping each case
// to the pass that must flag it, and go-fuzz seed files for
// FuzzMapFileVerify — plus the cross-module fleet corpus (one module
// set per defect class under corpus/fleet, with seeds for
// FuzzFleetVerify). Run it after changing the seed mutations or the
// module/mapfile formats:
//
//	go run ./tools/genbroken
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"traceback/internal/verify"
	"traceback/internal/verify/fleet"
	"traceback/internal/verify/seed"
)

func main() {
	if err := generate(); err != nil {
		fmt.Fprintln(os.Stderr, "genbroken:", err)
		os.Exit(1)
	}
}

type manifestEntry struct {
	Name string `json:"name"`
	Pass string `json:"pass"` // pass expected to flag it; "" = clean
	Desc string `json:"desc"`
}

func generate() error {
	cases, err := seed.Cases()
	if err != nil {
		return err
	}
	corpusDir := filepath.Join("internal", "verify", "testdata", "corpus")
	fuzzDir := filepath.Join("internal", "verify", "testdata", "fuzz", "FuzzMapFileVerify")
	for _, dir := range []string{corpusDir, fuzzDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}

	var manifest []manifestEntry
	for _, c := range cases {
		// Sanity: each case must behave as advertised before being
		// committed as ground truth.
		res := verify.Verify(c.Module, c.Map, verify.Options{})
		if c.Pass == "" && !res.Ok() {
			return fmt.Errorf("case %s: baseline not clean (%d errors)", c.Name, res.NumError)
		}
		if c.Pass != "" && !res.HasError(c.Pass) {
			return fmt.Errorf("case %s: pass %s did not flag it", c.Name, c.Pass)
		}

		modPath := filepath.Join(corpusDir, c.Name+".tbm")
		f, err := os.Create(modPath)
		if err != nil {
			return err
		}
		if _, err := c.Module.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		f.Close()
		mapPath := filepath.Join(corpusDir, c.Name+".map.json")
		f, err = os.Create(mapPath)
		if err != nil {
			return err
		}
		if err := c.Map.Save(f); err != nil {
			f.Close()
			return err
		}
		f.Close()
		manifest = append(manifest, manifestEntry{Name: c.Name, Pass: c.Pass, Desc: c.Desc})

		// Each case's mapfile JSON doubles as a fuzz seed: the fuzzer
		// mutates structurally interesting real mapfiles rather than
		// starting from noise.
		raw, err := json.Marshal(c.Map)
		if err != nil {
			return err
		}
		seedFile := filepath.Join(fuzzDir, "seed-"+c.Name)
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", raw)
		if err := os.WriteFile(seedFile, []byte(body), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (+map, +fuzz seed)\n", modPath)
	}

	raw, err := json.MarshalIndent(manifest, "", " ")
	if err != nil {
		return err
	}
	manifestPath := filepath.Join(corpusDir, "manifest.json")
	if err := os.WriteFile(manifestPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cases)\n", manifestPath, len(manifest))
	return generateFleet()
}

type fleetManifestEntry struct {
	Name    string   `json:"name"`
	Pass    string   `json:"pass"` // fleet pass expected to flag it; "" = clean
	Desc    string   `json:"desc"`
	Modules []string `json:"modules"` // .tbm basenames inside the case dir
}

// generateFleet writes the cross-module corpus: one directory of .tbm
// files per case under internal/verify/testdata/corpus/fleet (tbcheck
// -fleet -broken runs over these in make check), a manifest, and fuzz
// seeds for FuzzFleetVerify.
func generateFleet() error {
	cases, err := seed.FleetCases()
	if err != nil {
		return err
	}
	fleetDir := filepath.Join("internal", "verify", "testdata", "corpus", "fleet")
	fuzzDir := filepath.Join("internal", "verify", "fleet", "testdata", "fuzz", "FuzzFleetVerify")
	if err := os.MkdirAll(fuzzDir, 0o755); err != nil {
		return err
	}

	var manifest []fleetManifestEntry
	for _, c := range cases {
		var inputs []fleet.Input
		for _, fm := range c.Modules {
			inputs = append(inputs, fleet.Input{Module: fm.Module, Path: fm.Name})
		}
		res := fleet.Verify(inputs, fleet.Options{})
		if c.Pass == "" && !res.Ok() {
			return fmt.Errorf("fleet case %s: baseline not clean (%d errors)", c.Name, res.NumError)
		}
		if c.Pass != "" && !res.HasError(c.Pass) {
			return fmt.Errorf("fleet case %s: pass %s did not flag it", c.Name, c.Pass)
		}

		caseDir := filepath.Join(fleetDir, c.Name)
		if err := os.MkdirAll(caseDir, 0o755); err != nil {
			return err
		}
		entry := fleetManifestEntry{Name: c.Name, Pass: c.Pass, Desc: c.Desc}
		for _, fm := range c.Modules {
			var buf bytes.Buffer
			if _, err := fm.Module.WriteTo(&buf); err != nil {
				return err
			}
			modPath := filepath.Join(caseDir, fm.Name+".tbm")
			if err := os.WriteFile(modPath, buf.Bytes(), 0o644); err != nil {
				return err
			}
			entry.Modules = append(entry.Modules, fm.Name+".tbm")

			// Each mutated module doubles as a fuzz seed: the fuzzer
			// starts from structurally valid serialized modules.
			seedFile := filepath.Join(fuzzDir, "seed-"+c.Name+"-"+fm.Name)
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", buf.Bytes())
			if err := os.WriteFile(seedFile, []byte(body), 0o644); err != nil {
				return err
			}
		}
		manifest = append(manifest, entry)
		fmt.Printf("wrote %s (%d modules, +fuzz seeds)\n", caseDir, len(entry.Modules))
	}

	raw, err := json.MarshalIndent(manifest, "", " ")
	if err != nil {
		return err
	}
	manifestPath := filepath.Join(fleetDir, "manifest.json")
	if err := os.WriteFile(manifestPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d fleet cases)\n", manifestPath, len(manifest))
	return nil
}
