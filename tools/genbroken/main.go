// genbroken regenerates the verifier's committed negative corpus from
// internal/verify/seed: one .tbm/.map.json pair per defect class under
// internal/verify/testdata/corpus, a manifest.json mapping each case
// to the pass that must flag it, and go-fuzz seed files for
// FuzzMapFileVerify. Run it after changing the seed mutations or the
// module/mapfile formats:
//
//	go run ./tools/genbroken
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"traceback/internal/verify"
	"traceback/internal/verify/seed"
)

func main() {
	if err := generate(); err != nil {
		fmt.Fprintln(os.Stderr, "genbroken:", err)
		os.Exit(1)
	}
}

type manifestEntry struct {
	Name string `json:"name"`
	Pass string `json:"pass"` // pass expected to flag it; "" = clean
	Desc string `json:"desc"`
}

func generate() error {
	cases, err := seed.Cases()
	if err != nil {
		return err
	}
	corpusDir := filepath.Join("internal", "verify", "testdata", "corpus")
	fuzzDir := filepath.Join("internal", "verify", "testdata", "fuzz", "FuzzMapFileVerify")
	for _, dir := range []string{corpusDir, fuzzDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}

	var manifest []manifestEntry
	for _, c := range cases {
		// Sanity: each case must behave as advertised before being
		// committed as ground truth.
		res := verify.Verify(c.Module, c.Map, verify.Options{})
		if c.Pass == "" && !res.Ok() {
			return fmt.Errorf("case %s: baseline not clean (%d errors)", c.Name, res.NumError)
		}
		if c.Pass != "" && !res.HasError(c.Pass) {
			return fmt.Errorf("case %s: pass %s did not flag it", c.Name, c.Pass)
		}

		modPath := filepath.Join(corpusDir, c.Name+".tbm")
		f, err := os.Create(modPath)
		if err != nil {
			return err
		}
		if _, err := c.Module.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		f.Close()
		mapPath := filepath.Join(corpusDir, c.Name+".map.json")
		f, err = os.Create(mapPath)
		if err != nil {
			return err
		}
		if err := c.Map.Save(f); err != nil {
			f.Close()
			return err
		}
		f.Close()
		manifest = append(manifest, manifestEntry{Name: c.Name, Pass: c.Pass, Desc: c.Desc})

		// Each case's mapfile JSON doubles as a fuzz seed: the fuzzer
		// mutates structurally interesting real mapfiles rather than
		// starting from noise.
		raw, err := json.Marshal(c.Map)
		if err != nil {
			return err
		}
		seedFile := filepath.Join(fuzzDir, "seed-"+c.Name)
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", raw)
		if err := os.WriteFile(seedFile, []byte(body), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (+map, +fuzz seed)\n", modPath)
	}

	raw, err := json.MarshalIndent(manifest, "", " ")
	if err != nil {
		return err
	}
	manifestPath := filepath.Join(corpusDir, "manifest.json")
	if err := os.WriteFile(manifestPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cases)\n", manifestPath, len(manifest))
	return nil
}
