// triagecheck is the fleet triage CI gate (`make triage-check`): it
// stages a seeded two-phase crash campaign through a live tbcollectd
// daemon over loopback TCP and asserts the regression detector sees
// exactly what was staged:
//
//   - phase 1 uploads the committed example scenarios' snaps into
//     every one of the ten newest rate windows (snap times are the
//     only clock; each copy is a distinct content address, so every
//     upload journals a fresh occurrence) — the steady background;
//   - phase 2 uploads the snaps of one seeded tbfault campaign trial
//     (kill -9 of the quickstart app, fixed seed) into the newest
//     window only — the injected regression;
//   - GET /v1/regressions must flag every campaign-only signature as
//     new/spiking and must not flag any steady signature;
//   - after a graceful drain, the same classification computed from
//     the store directory (the `tbstore regressions` path) must flag
//     the identical signature set — wire and local triage agree;
//   - the index rebuilt from the journal alone must be byte-identical
//     to the live index, rate windows included.
//
// The campaign is seeded and snap times are synthetic, so the whole
// gate is deterministic. Any violation exits nonzero with a diagnosis.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"traceback/internal/archive"
	"traceback/internal/collect"
	"traceback/internal/fault"
	"traceback/internal/scenario"
	"traceback/internal/snap"
	"traceback/internal/triage"
)

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "triagecheck: "+format+"\n", args...)
	os.Exit(1)
}

const (
	campaignSeed = 3
	horizon      = 10 // windows of steady background
)

func main() {
	builts, err := scenario.All()
	if err != nil {
		die("building scenarios: %v", err)
	}
	maps := scenario.MapSet(builts...)

	camp, err := fault.New(fault.Config{
		Seed: campaignSeed, Kinds: []string{fault.KindKill}, Scenarios: []string{"quickstart"},
	})
	if err != nil {
		die("building campaign: %v", err)
	}
	_, faultSnaps, faultMaps, err := camp.Trial(fault.KindKill, "quickstart")
	if err != nil {
		die("campaign trial: %v", err)
	}
	if len(faultSnaps) == 0 {
		die("campaign trial produced no snaps")
	}
	for _, mf := range faultMaps {
		maps.Add(mf)
	}

	store, err := os.MkdirTemp("", "triagecheck-*")
	if err != nil {
		die("%v", err)
	}
	defer os.RemoveAll(store)
	arch, err := archive.Open(store)
	if err != nil {
		die("opening store: %v", err)
	}
	srv := collect.NewServer(arch, collect.ServerOptions{Maps: maps, MaxInflight: 8})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		die("listen: %v", err)
	}
	base := "http://" + l.Addr().String()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	W := archive.WindowWidth

	// Phase 1: steady background — every scenario snap, every window.
	steady := map[string]bool{}
	for win := uint64(0); win < horizon; win++ {
		for _, b := range builts {
			for _, s := range b.Snaps {
				cp := *s
				cp.Time = win*W + W/4
				steady[archive.SignSnap(&cp, maps).ID] = true
				upload(base, &cp)
			}
		}
	}
	// Phase 2: the seeded campaign's snaps, newest window only.
	injected := map[string]bool{}
	for _, s := range faultSnaps {
		cp := *s
		cp.Time = (horizon-1)*W + W/2
		if id := archive.SignSnap(&cp, maps).ID; !steady[id] {
			injected[id] = true
		}
		upload(base, &cp)
	}
	if len(injected) == 0 {
		die("seed %d campaign signatures all collide with the baseline; the gate needs a campaign-only signature", campaignSeed)
	}

	// The wire verdict.
	wireFlagged := fetchFlagged(base)
	for sig := range injected {
		if !wireFlagged[sig] {
			die("/v1/regressions did not flag injected campaign signature %s", sig)
		}
	}
	for sig := range steady {
		if wireFlagged[sig] {
			die("/v1/regressions flagged steady baseline signature %s", sig)
		}
	}

	// Drain and flush.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		die("drain: %v", err)
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		die("serve: %v", err)
	}
	if err := arch.Close(); err != nil {
		die("closing store: %v", err)
	}

	// Local triage over the reopened store (the tbstore path) must
	// flag the identical set, and the journal must reproduce the index
	// bit-for-bit, rate windows included.
	arch2, err := archive.Open(store)
	if err != nil {
		die("reopening store: %v", err)
	}
	rep := triage.Classify(arch2.Buckets(), arch2.NewestTime(), triage.Defaults())
	localFlagged := map[string]bool{}
	for _, a := range rep.Flagged() {
		localFlagged[a.Sig] = true
	}
	for sig := range wireFlagged {
		if !localFlagged[sig] {
			die("wire flagged %s but local triage did not", sig)
		}
	}
	for sig := range localFlagged {
		if !wireFlagged[sig] {
			die("local triage flagged %s but the wire did not", sig)
		}
	}
	live, err := arch2.IndexBytes()
	if err != nil {
		die("%v", err)
	}
	rebuilt, err := arch2.RebuildIndexBytes()
	if err != nil {
		die("%v", err)
	}
	if !bytes.Equal(live, rebuilt) {
		die("journal-rebuilt index differs from live index")
	}
	if err := arch2.Close(); err != nil {
		die("%v", err)
	}

	fmt.Printf("triagecheck: OK — %d steady signature(s) over %d windows, %d injected flagged on wire and locally, journal-rebuild identical\n",
		len(steady), horizon, len(injected))
}

// upload POSTs one snap the way tbagent does (gzip body + claimed
// content address) and dies on anything but a 2xx with a matching
// hash echo.
func upload(base string, s *snap.Snap) {
	sum, _, err := archive.ChecksumSnap(s)
	if err != nil {
		die("checksum: %v", err)
	}
	var body bytes.Buffer
	if err := s.SaveCompressed(&body); err != nil {
		die("encoding snap: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, base+collect.PathSnap, &body)
	if err != nil {
		die("%v", err)
	}
	req.Header.Set("Content-Type", "application/gzip")
	req.Header.Set(collect.HeaderSum, sum)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		die("upload: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		die("upload: status %s", resp.Status)
	}
	var ur collect.UploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		die("upload response: %v", err)
	}
	if ur.Sum != sum {
		die("hash echo %q does not match %q", ur.Sum, sum)
	}
}

// fetchFlagged pulls /v1/regressions and returns the flagged set.
func fetchFlagged(base string) map[string]bool {
	resp, err := http.Get(base + collect.PathRegressions)
	if err != nil {
		die("regressions: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		die("regressions: status %s", resp.Status)
	}
	var rep triage.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		die("regressions: %v", err)
	}
	out := map[string]bool{}
	for _, a := range rep.Flagged() {
		out[a.Sig] = true
	}
	return out
}
