package mvm

import "fmt"

// Builder assembles managed modules programmatically (the stand-in
// for javac: workloads set line numbers explicitly, so traces show
// meaningful "source" positions).
type Builder struct {
	mod *Module
	err error
}

// NewBuilder starts a module.
func NewBuilder(name, file string) *Builder {
	return &Builder{mod: &Module{Name: name, File: file}}
}

// Native registers a native binding and returns its CALLNAT index.
func (b *Builder) Native(module, name string, arity int) int {
	b.mod.Natives = append(b.mod.Natives, NativeBinding{Module: module, Name: name, Arity: arity})
	return len(b.mod.Natives) - 1
}

// Str interns a string constant and returns its index.
func (b *Builder) Str(s string) int {
	for i, c := range b.mod.Consts {
		if c == s {
			return i
		}
	}
	b.mod.Consts = append(b.mod.Consts, s)
	return len(b.mod.Consts) - 1
}

// MethodBuilder assembles one method.
type MethodBuilder struct {
	b       *Builder
	m       *Method
	labels  map[string]uint32
	fixups  map[string][]int
	curLine uint32

	pendingCatch [][3]string
	pendingCode  []int32
}

// Method starts a method with nargs arguments and nlocals total
// local slots.
func (b *Builder) Method(name string, nargs, nlocals int) *MethodBuilder {
	m := &Method{Name: name, NArgs: nargs, NLocals: nlocals}
	b.mod.Methods = append(b.mod.Methods, m)
	return &MethodBuilder{b: b, m: m, labels: map[string]uint32{}, fixups: map[string][]int{}}
}

// Line sets the source line for subsequent instructions.
func (mb *MethodBuilder) Line(n int) *MethodBuilder {
	if uint32(n) != mb.curLine {
		mb.curLine = uint32(n)
		mb.m.Lines = append(mb.m.Lines, LineEntry{Index: uint32(len(mb.m.Code)), Line: uint32(n)})
	}
	return mb
}

// I appends an instruction.
func (mb *MethodBuilder) I(op Op, args ...int32) *MethodBuilder {
	in := Instr{Op: op}
	switch len(args) {
	case 0:
	case 1:
		in.Imm = args[0]
	case 2:
		in.A = uint16(args[0])
		in.Imm = args[1]
	}
	mb.m.Code = append(mb.m.Code, in)
	return mb
}

// Label defines a branch target here.
func (mb *MethodBuilder) Label(name string) *MethodBuilder {
	mb.labels[name] = uint32(len(mb.m.Code))
	return mb
}

// Br appends a branch to a (possibly forward) label.
func (mb *MethodBuilder) Br(op Op, label string) *MethodBuilder {
	mb.fixups[label] = append(mb.fixups[label], len(mb.m.Code))
	mb.m.Code = append(mb.m.Code, Instr{Op: op})
	return mb
}

// Catch appends an exception-table row over [fromLabel, toLabel)
// transferring to handlerLabel; code 0 catches all.
func (mb *MethodBuilder) Catch(fromLabel, toLabel, handlerLabel string, code int32) *MethodBuilder {
	// Resolved in Done (labels may be forward).
	mb.pendingCatch = append(mb.pendingCatch, [3]string{fromLabel, toLabel, handlerLabel})
	mb.pendingCode = append(mb.pendingCode, code)
	return mb
}

// Done resolves labels.
func (mb *MethodBuilder) Done() {
	for label, sites := range mb.fixups {
		target, ok := mb.labels[label]
		if !ok {
			mb.b.err = fmt.Errorf("mvm builder: %s: undefined label %q", mb.m.Name, label)
			return
		}
		for _, at := range sites {
			mb.m.Code[at].Imm = int32(target)
		}
	}
	for i, pc := range mb.pendingCatch {
		from, ok1 := mb.labels[pc[0]]
		to, ok2 := mb.labels[pc[1]]
		h, ok3 := mb.labels[pc[2]]
		if !ok1 || !ok2 || !ok3 {
			mb.b.err = fmt.Errorf("mvm builder: %s: undefined catch label", mb.m.Name)
			return
		}
		mb.m.Exc = append(mb.m.Exc, ExcEntry{From: from, To: to, Handler: h, Code: mb.pendingCode[i]})
	}
}

// SetStatics declares the module's static-field slots (must be
// called before Build so validation sees them).
func (b *Builder) SetStatics(names []string) {
	b.mod.NStatics = len(names)
	b.mod.StaticNames = append([]string(nil), names...)
}

// Build finishes the module.
func (b *Builder) Build() (*Module, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.mod.Validate(); err != nil {
		return nil, err
	}
	return b.mod, nil
}

// MustBuild panics on error.
func (b *Builder) MustBuild() *Module {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}
