package mvm

import (
	"fmt"
	"hash/fnv"

	"traceback/internal/vm"
)

// VM is one managed runtime instance hosted inside (or alongside) a
// native process — the JVM/.NET analog. It executes bytecode, owns
// its own trace buffers (paper §3.3: managed and native code share a
// process but trace as distinct runtimes), and bridges CALLNAT calls
// to the native process's code, fusing the managed caller and the
// native callee into one logical thread via SYNC records.
type VM struct {
	Machine *vm.Machine
	// Proc is the associated native process: the JNI bridge runs
	// native functions in it, and managed snaps report its identity.
	Proc *vm.Process
	Name string
	ID   uint64

	rt *ManagedRuntime

	modules []*LoadedMod
	threads map[int]*MThread
	nextTID int

	Out []byte

	// Exited/UncaughtExc report termination of the main thread;
	// Halted is set by the HALT bytecode (System.exit) and stops all
	// scheduling.
	Exited      bool
	Halted      bool
	HaltCode    int64
	UncaughtExc int

	// Cycle model: interpreting one bytecode costs more than one
	// native instruction (the interpretation overhead is why managed
	// probe overhead is relatively smaller — Table 3's 16–25% vs
	// SPECint's 60%).
	Cycles uint64

	// OnQuantum, when set, fires at the top of every Run quantum —
	// the managed VM's preemption point, where fault-injection
	// harnesses kill the VM (Halted) or raise async exceptions
	// (Interrupt). Nil in normal operation.
	OnQuantum func(v *VM)

	// pending holds asynchronous exceptions to deliver at the next
	// quantum, keyed by TID (Interrupt).
	pending map[int]int
}

// LoadedMod is one managed module load.
type LoadedMod struct {
	Mod      *Module
	CodeBase uint32 // managed code-address-space base
	DAGBase  uint32
	// statics is the module's static-field storage.
	statics []int64
}

// Static reads a static field by slot (snap/variables support).
func (lm *LoadedMod) Static(i int) int64 { return lm.statics[i] }

// MThreadState is a managed thread state.
type MThreadState uint8

const (
	MRunnable MThreadState = iota
	MSleeping
	MDone
)

// MThread is a managed thread.
type MThread struct {
	TID    int
	State  MThreadState
	frames []*mframe
	wakeAt uint64
	Result int64
	// Uncaught is the exception code that killed the thread (0 ok).
	Uncaught int
}

type mframe struct {
	lm     *LoadedMod
	method int
	pc     uint32
	locals []int64
	stack  []int64
}

// New creates a managed VM attached to a machine and (optionally) a
// native process for JNI calls.
func New(mach *vm.Machine, proc *vm.Process, name string, cfg RuntimeConfig) *VM {
	v := &VM{
		Machine: mach,
		Proc:    proc,
		Name:    name,
		threads: map[int]*MThread{},
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "mvm/%s/%s", mach.Name, name)
	v.ID = h.Sum64()
	v.rt = newManagedRuntime(v, cfg)
	return v
}

// Runtime returns the managed trace runtime.
func (v *VM) Runtime() *ManagedRuntime { return v.rt }

// Load maps a managed module; instrumented modules get a DAG range
// (managed runtimes rebase exactly like native ones).
func (v *VM) Load(m *Module) (*LoadedMod, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	var base uint32
	for _, lm := range v.modules {
		base += lm.Mod.CodeLen()
	}
	lm := &LoadedMod{Mod: m, CodeBase: base, statics: make([]int64, m.NStatics)}
	if m.Instrumented {
		lm.DAGBase = v.rt.assignRange(m)
	}
	v.modules = append(v.modules, lm)
	return lm, nil
}

// Start spawns a managed thread at a method of the most recently
// loaded module (or any module exporting it).
func (v *VM) Start(method string, args ...int64) (*MThread, error) {
	for i := len(v.modules) - 1; i >= 0; i-- {
		lm := v.modules[i]
		me, mi, ok := lm.Mod.MethodByName(method)
		if !ok {
			continue
		}
		if len(args) != me.NArgs {
			return nil, fmt.Errorf("mvm: %s takes %d args, got %d", method, me.NArgs, len(args))
		}
		v.nextTID++
		t := &MThread{TID: v.nextTID}
		f := &mframe{lm: lm, method: mi, locals: make([]int64, me.NLocals)}
		copy(f.locals, args)
		t.frames = []*mframe{f}
		v.threads[t.TID] = t
		v.rt.onThreadStart(t)
		return t, nil
	}
	return nil, fmt.Errorf("mvm: no method %s", method)
}

func (f *mframe) push(x int64) { f.stack = append(f.stack, x) }
func (f *mframe) pop() int64 {
	x := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return x
}

// codeAddr is the flattened managed code address of a frame position
// (used in exception records and mapfile line spans).
func (v *VM) codeAddr(f *mframe) uint64 {
	return uint64(f.lm.CodeBase + f.lm.Mod.MethodOffset(f.method) + f.pc)
}

// heap of arrays; index+1 is the reference (0 is null).
type heap struct {
	arrays [][]int64
}

func (h *heap) alloc(n int64) (int64, bool) {
	if n < 0 {
		return 0, false
	}
	h.arrays = append(h.arrays, make([]int64, n))
	return int64(len(h.arrays)), true
}

func (h *heap) get(ref int64) ([]int64, bool) {
	if ref <= 0 || int(ref) > len(h.arrays) {
		return nil, false
	}
	return h.arrays[ref-1], true
}

// Step executes up to n bytecodes of thread t. It returns false when
// the thread can no longer run.
func (v *VM) Step(t *MThread, n int) bool {
	if t.State == MSleeping {
		if v.Machine.Clock() >= t.wakeAt {
			t.State = MRunnable
		} else {
			return false
		}
	}
	if t.State != MRunnable {
		return false
	}
	for i := 0; i < n && t.State == MRunnable; i++ {
		v.step1(t)
	}
	return true
}

func (v *VM) charge(c uint64) {
	v.Machine.AddCycles(c)
	v.Cycles += c
}

// step1 executes one bytecode.
func (v *VM) step1(t *MThread) {
	f := t.frames[len(t.frames)-1]
	me := f.lm.Mod.Methods[f.method]
	if f.pc >= uint32(len(me.Code)) {
		// Fell off the method end: implicit return 0.
		v.ret(t, 0)
		return
	}
	in := me.Code[f.pc]
	v.charge(v.cost(in.Op))
	next := f.pc + 1

	switch in.Op {
	case NOP:
	case CONST:
		f.push(int64(in.Imm))
	case LOADL:
		f.push(f.locals[in.A])
	case STOREL:
		f.locals[in.A] = f.pop()
	case DUP:
		x := f.pop()
		f.push(x)
		f.push(x)
	case POP:
		f.pop()
	case ADD, SUB, MUL, AND, OR, XOR, SHL, SHR, CMPEQ, CMPNE, CMPLT, CMPLE:
		b := f.pop()
		a := f.pop()
		f.push(binop(in.Op, a, b))
	case DIV, MOD:
		b := f.pop()
		a := f.pop()
		if b == 0 {
			v.throw(t, ExcArith)
			return
		}
		if in.Op == DIV {
			f.push(a / b)
		} else {
			f.push(a % b)
		}
	case NEG:
		f.push(-f.pop())
	case GOTO:
		next = uint32(in.Imm)
	case IFZ:
		if f.pop() == 0 {
			next = uint32(in.Imm)
		}
	case IFNZ:
		if f.pop() != 0 {
			next = uint32(in.Imm)
		}
	case CALL:
		callee := f.lm.Mod.Methods[in.Imm]
		nf := &mframe{lm: f.lm, method: int(in.Imm), locals: make([]int64, callee.NLocals)}
		for i := callee.NArgs - 1; i >= 0; i-- {
			nf.locals[i] = f.pop()
		}
		f.pc = next
		t.frames = append(t.frames, nf)
		return
	case RET:
		v.ret(t, f.pop())
		return
	case NEWARR:
		n := f.pop()
		ref, ok := v.rt.heap.alloc(n)
		if !ok {
			v.throw(t, ExcNegSize)
			return
		}
		f.push(ref)
	case ALOAD:
		idx := f.pop()
		ref := f.pop()
		arr, ok := v.rt.heap.get(ref)
		if !ok {
			v.throw(t, ExcNull)
			return
		}
		if idx < 0 || idx >= int64(len(arr)) {
			v.throw(t, ExcBounds)
			return
		}
		f.push(arr[idx])
	case ASTORE:
		val := f.pop()
		idx := f.pop()
		ref := f.pop()
		arr, ok := v.rt.heap.get(ref)
		if !ok {
			v.throw(t, ExcNull)
			return
		}
		if idx < 0 || idx >= int64(len(arr)) {
			v.throw(t, ExcBounds)
			return
		}
		arr[idx] = val
	case ARRLEN:
		ref := f.pop()
		arr, ok := v.rt.heap.get(ref)
		if !ok {
			v.throw(t, ExcNull)
			return
		}
		f.push(int64(len(arr)))
	case THROW:
		v.throw(t, int(f.pop()))
		return
	case CALLNAT:
		f.pc = next
		v.callNative(t, f, f.lm.Mod.Natives[in.Imm])
		return
	case PRINT:
		v.Out = append(v.Out, []byte(fmt.Sprintf("%d\n", f.pop()))...)
	case PRINTS:
		v.Out = append(v.Out, f.lm.Mod.Consts[in.Imm]...)
	case CLOCKB:
		f.push(int64(v.Machine.Timestamp()))
	case RANDB:
		f.push(v.Machine.Rand().Int63())
	case SLEEPB:
		d := f.pop()
		if d < 0 {
			// The Oracle story (paper §6.1): sleep with a negative
			// argument throws.
			v.throw(t, ExcIllegalArg)
			return
		}
		t.State = MSleeping
		t.wakeAt = v.Machine.Clock() + uint64(d)
		v.rt.timestamp(t)
	case IOREAD:
		v.charge(vm.CostDiskBase + uint64(f.pop())*vm.CostDiskPerKB/1024)
		f.push(0)
	case NETSENDB:
		v.charge(vm.CostNetBase + uint64(f.pop())*vm.CostNetPerKB/1024)
		f.push(0)
	case SLOAD:
		f.push(f.lm.statics[in.A])
	case SSTORE:
		f.lm.statics[in.A] = f.pop()
	case SWAP:
		b := f.pop()
		a := f.pop()
		f.push(b)
		f.push(a)
	case HALT:
		code := f.pop()
		t.Result = code
		t.State = MDone
		v.rt.onThreadEnd(t)
		v.Exited = true
		v.Halted = true
		v.HaltCode = code
		return
	case PROBEH:
		v.rt.probeHeavy(t, uint32(in.Imm))
	case PROBEL:
		v.rt.probeLight(t, uint32(in.Imm))
	default:
		v.throw(t, ExcArith)
		return
	}
	f.pc = next
}

func binop(op Op, a, b int64) int64 {
	switch op {
	case ADD:
		return a + b
	case SUB:
		return a - b
	case MUL:
		return a * b
	case AND:
		return a & b
	case OR:
		return a | b
	case XOR:
		return a ^ b
	case SHL:
		return a << (uint64(b) & 63)
	case SHR:
		return a >> (uint64(b) & 63)
	case CMPEQ:
		return b2i(a == b)
	case CMPNE:
		return b2i(a != b)
	case CMPLT:
		return b2i(a < b)
	case CMPLE:
		return b2i(a <= b)
	}
	return 0
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (v *VM) cost(op Op) uint64 {
	switch op {
	case PROBEL:
		return v.rt.cfg.ProbeLCost
	case PROBEH:
		c := v.rt.cfg.ProbeHCost
		if v.rt.cfg.MTProbePenalty > 0 && v.liveThreads() > 1 {
			c += v.rt.cfg.MTProbePenalty
		}
		return c
	case CALL, CALLNAT, RET:
		return 5
	case ALOAD, ASTORE, NEWARR:
		return 4
	}
	return 3
}

func (v *VM) liveThreads() int {
	n := 0
	for _, t := range v.threads {
		if t.State != MDone {
			n++
		}
	}
	return n
}

// ret pops a frame.
func (v *VM) ret(t *MThread, val int64) {
	t.frames = t.frames[:len(t.frames)-1]
	if len(t.frames) == 0 {
		t.Result = val
		t.State = MDone
		v.rt.onThreadEnd(t)
		if t.TID == 1 {
			v.Exited = true
		}
		return
	}
	t.frames[len(t.frames)-1].push(val)
}

// throw dispatches a managed exception: the runtime sees it
// first-chance (writing the exception record with the faulting code
// address and snapping under policy — paper §2.4/§3.7.2), then the
// nearest matching handler up the stack takes it, or the thread dies.
func (v *VM) throw(t *MThread, code int) {
	f := t.frames[len(t.frames)-1]
	v.rt.onException(t, code, v.codeAddr(f))
	for len(t.frames) > 0 {
		f = t.frames[len(t.frames)-1]
		me := f.lm.Mod.Methods[f.method]
		for _, e := range me.Exc {
			if f.pc >= e.From && f.pc < e.To && (e.Code == 0 || int(e.Code) == code) {
				f.pc = e.Handler
				f.stack = f.stack[:0]
				f.push(int64(code))
				return
			}
		}
		t.frames = t.frames[:len(t.frames)-1]
	}
	// Uncaught: the thread dies; the main thread takes the VM down.
	t.Uncaught = code
	t.State = MDone
	v.rt.onUncaught(t, code)
	if t.TID == 1 {
		v.Exited = true
		v.UncaughtExc = code
	}
}

// Run drives managed threads round-robin until done returns true, no
// thread can make progress, or maxSteps quanta pass. Like a JVM, the
// first thread's exit sets Exited but live threads keep running.
func (v *VM) Run(maxSteps int, done func() bool) {
	for i := 0; i < maxSteps; i++ {
		if v.OnQuantum != nil {
			v.OnQuantum(v)
		}
		v.deliverInterrupts()
		if v.Halted || (done != nil && done()) {
			return
		}
		progress := false
		var minWake uint64
		sleepers := false
		for tid := 1; tid <= v.nextTID; tid++ {
			t := v.threads[tid]
			if t == nil {
				continue
			}
			if v.Step(t, 32) {
				progress = true
			} else if t.State == MSleeping {
				if !sleepers || t.wakeAt < minWake {
					minWake, sleepers = t.wakeAt, true
				}
			}
		}
		if !progress {
			if sleepers {
				v.Machine.SetClock(minWake)
				continue
			}
			return
		}
	}
}

// Interrupt schedules exception code to be thrown asynchronously on
// thread tid at the next scheduling quantum — the managed analog of
// vm.Machine.InjectSignal. Delivery goes through the normal throw
// path: the runtime sees it first-chance (exception record + snap
// policy), then handlers or thread death.
func (v *VM) Interrupt(tid, code int) {
	if v.pending == nil {
		v.pending = map[int]int{}
	}
	v.pending[tid] = code
}

// deliverInterrupts throws pending async exceptions on their target
// threads (ascending TID for determinism) at the quantum boundary,
// where no bytecode is mid-flight.
func (v *VM) deliverInterrupts() {
	if len(v.pending) == 0 {
		return
	}
	for tid := 1; tid <= v.nextTID; tid++ {
		code, ok := v.pending[tid]
		if !ok {
			continue
		}
		delete(v.pending, tid)
		t := v.threads[tid]
		if t == nil || t.State == MDone || len(t.frames) == 0 {
			continue
		}
		if t.State == MSleeping {
			t.State = MRunnable
		}
		v.throw(t, code)
	}
}

// Join waits (by running the VM) for a thread to finish.
func (v *VM) Join(t *MThread, maxSteps int) (int64, error) {
	v.Run(maxSteps, func() bool { return t.State == MDone })
	if t.State != MDone {
		return 0, fmt.Errorf("mvm: thread %d did not finish", t.TID)
	}
	return t.Result, nil
}
