// Package mvm is the managed-language substrate: a stack-machine
// bytecode VM standing in for the paper's JVM/.NET runtimes. Managed
// code is instrumented at the intermediate-code level (paper §2.4):
// DAG records as in native code, plus lightweight probes at source
// line boundaries so exception reports are line-accurate even though
// the "JIT artifact" exception context cannot be mapped to a
// bytecode. Managed and native code in one process are traced as a
// simple form of distributed tracing (paper §3.3): the managed
// runtime keeps its own trace buffers and runtime ID, and JNI-style
// native calls are fused into logical threads via SYNC records
// exactly like RPCs.
package mvm

import (
	"crypto/md5"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Op is a managed bytecode opcode.
type Op uint8

const (
	NOP Op = iota
	// Stack/locals. A is the local index or constant-pool index.
	CONST  // push Imm
	LOADL  // push locals[A]
	STOREL // locals[A] = pop
	DUP
	POP

	// Arithmetic. Pops two, pushes one. DIV/MOD throw ExcArith.
	ADD
	SUB
	MUL
	DIV
	MOD
	AND
	OR
	XOR
	SHL
	SHR
	NEG
	CMPEQ
	CMPNE
	CMPLT
	CMPLE

	// Control flow. Imm is a method-relative bytecode index.
	GOTO
	IFZ  // pop; branch if zero
	IFNZ // pop; branch if nonzero

	// Calls. Imm is a method index; arguments are popped (arity from
	// the callee), result pushed.
	CALL
	RET // pop return value

	// Arrays. NEWARR pops length (throws ExcNegSize if < 0); ALOAD
	// pops (ref, idx) and pushes the element, throwing ExcNull /
	// ExcBounds; ASTORE pops (ref, idx, val).
	NEWARR
	ALOAD
	ASTORE
	ARRLEN

	// THROW pops an exception code.
	THROW

	// CALLNAT calls a native (ISA) function through the JNI bridge;
	// Imm indexes the module's native-binding table. Arguments are
	// popped per the binding's arity; the native return value is
	// pushed.
	CALLNAT

	// Builtins.
	PRINT    // pop; print decimal
	PRINTS   // print constant-pool string Imm
	CLOCKB   // push machine clock
	RANDB    // push PRNG value
	SLEEPB   // pop; sleep n cycles; throws ExcIllegalArg if negative
	IOREAD   // pop size; charge disk-read cycles
	NETSENDB // pop size; charge network cycles

	// Statics: per-module static fields (the managed analog of
	// globals). A is the static slot index.
	SLOAD  // push statics[A]
	SSTORE // statics[A] = pop

	// SWAP exchanges the two top stack slots.
	SWAP

	// HALT pops a value and terminates the whole managed VM with it
	// (System.exit).
	HALT

	// Probes, inserted by the instrumenter only.
	PROBEH // Imm = pre-shifted DAG record word
	PROBEL // Imm = bit mask ORed into the current record

	numOps
)

// Managed exception codes.
const (
	ExcArith       = 101 // ArithmeticException
	ExcNull        = 102 // NullPointerException
	ExcBounds      = 103 // ArrayIndexOutOfBoundsException
	ExcNegSize     = 104 // NegativeArraySizeException
	ExcIllegalArg  = 105 // IllegalArgumentException (negative sleep)
	ExcNativeDied  = 106 // native callee crashed under a JNI call
	ExcInterrupted = 107 // asynchronous interrupt (VM.Interrupt)
)

// ExcName names a managed exception code.
func ExcName(code int) string {
	switch code {
	case ExcArith:
		return "ArithmeticException"
	case ExcNull:
		return "NullPointerException"
	case ExcBounds:
		return "ArrayIndexOutOfBoundsException"
	case ExcNegSize:
		return "NegativeArraySizeException"
	case ExcIllegalArg:
		return "IllegalArgumentException"
	case ExcNativeDied:
		return "NativeCrashError"
	case ExcInterrupted:
		return "InterruptedException"
	}
	return fmt.Sprintf("ManagedException(%d)", code)
}

// Instr is one bytecode instruction.
type Instr struct {
	Op  Op
	A   uint16
	Imm int32
}

// LineEntry maps bytecode index ranges to source lines.
type LineEntry struct {
	Index uint32
	Line  uint32
}

// ExcEntry is one exception-table row: exceptions raised in
// [From, To) transfer to Handler. Code 0 catches everything.
type ExcEntry struct {
	From, To uint32
	Handler  uint32
	Code     int32
}

// NativeBinding names a native function a managed module may call via
// CALLNAT.
type NativeBinding struct {
	Module string // native module name ("" = any)
	Name   string
	Arity  int
}

// Method is one managed method.
type Method struct {
	Name    string
	NArgs   int
	NLocals int // including args
	Code    []Instr
	Lines   []LineEntry
	Exc     []ExcEntry
}

// Module is a managed "class file".
type Module struct {
	Name    string
	File    string
	Methods []*Method
	Consts  []string
	Natives []NativeBinding
	// NStatics is the number of static field slots; StaticNames (same
	// length, optional) names them for the variables view.
	NStatics    int
	StaticNames []string

	Instrumented bool
	DAGCount     uint32
}

// MethodByName finds a method.
func (m *Module) MethodByName(name string) (*Method, int, bool) {
	for i, me := range m.Methods {
		if me.Name == name {
			return me, i, true
		}
	}
	return nil, 0, false
}

// Checksum hashes the module's stable content (code + method table).
func (m *Module) Checksum() string {
	h := md5.New()
	var b [8]byte
	for _, me := range m.Methods {
		fmt.Fprintf(h, "%s/%d/%d;", me.Name, me.NArgs, me.NLocals)
		for _, in := range me.Code {
			b[0] = byte(in.Op)
			binary.LittleEndian.PutUint16(b[1:], in.A)
			binary.LittleEndian.PutUint32(b[3:], uint32(in.Imm))
			h.Write(b[:])
		}
	}
	for _, c := range m.Consts {
		fmt.Fprintf(h, "%q", c)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CodeLen is the total bytecode length (methods concatenated), the
// module's span in the managed code-address space.
func (m *Module) CodeLen() uint32 {
	var n uint32
	for _, me := range m.Methods {
		n += uint32(len(me.Code))
	}
	return n
}

// MethodOffset returns the flattened code offset of method i.
func (m *Module) MethodOffset(i int) uint32 {
	var n uint32
	for j := 0; j < i; j++ {
		n += uint32(len(m.Methods[j].Code))
	}
	return n
}

// LineFor maps a method-relative bytecode index to a line.
func (me *Method) LineFor(idx uint32) (uint32, bool) {
	line := uint32(0)
	ok := false
	for _, e := range me.Lines {
		if e.Index > idx {
			break
		}
		line, ok = e.Line, true
	}
	return line, ok
}

// Validate checks structural invariants.
func (m *Module) Validate() error {
	for _, me := range m.Methods {
		n := uint32(len(me.Code))
		if me.NArgs > me.NLocals {
			return fmt.Errorf("mvm: %s.%s: %d args > %d locals", m.Name, me.Name, me.NArgs, me.NLocals)
		}
		for i, in := range me.Code {
			switch in.Op {
			case GOTO, IFZ, IFNZ:
				if in.Imm < 0 || uint32(in.Imm) >= n {
					return fmt.Errorf("mvm: %s.%s: branch at %d targets %d/%d", m.Name, me.Name, i, in.Imm, n)
				}
			case CALL:
				if in.Imm < 0 || int(in.Imm) >= len(m.Methods) {
					return fmt.Errorf("mvm: %s.%s: call at %d to method %d/%d", m.Name, me.Name, i, in.Imm, len(m.Methods))
				}
			case CALLNAT:
				if in.Imm < 0 || int(in.Imm) >= len(m.Natives) {
					return fmt.Errorf("mvm: %s.%s: native call at %d to binding %d/%d", m.Name, me.Name, i, in.Imm, len(m.Natives))
				}
			case LOADL, STOREL:
				if int(in.A) >= me.NLocals {
					return fmt.Errorf("mvm: %s.%s: local %d/%d at %d", m.Name, me.Name, in.A, me.NLocals, i)
				}
			case SLOAD, SSTORE:
				if int(in.A) >= m.NStatics {
					return fmt.Errorf("mvm: %s.%s: static %d/%d at %d", m.Name, me.Name, in.A, m.NStatics, i)
				}
			case PRINTS:
				if in.Imm < 0 || int(in.Imm) >= len(m.Consts) {
					return fmt.Errorf("mvm: %s.%s: string const %d/%d", m.Name, me.Name, in.Imm, len(m.Consts))
				}
			}
		}
		for _, e := range me.Exc {
			if e.From >= e.To || e.To > n || e.Handler >= n {
				return fmt.Errorf("mvm: %s.%s: bad exception entry %+v", m.Name, me.Name, e)
			}
		}
	}
	return nil
}
