package mvm

import (
	"testing"

	"traceback/internal/recon"
	"traceback/internal/trace"
	"traceback/internal/vm"
)

func newVM(t *testing.T) *VM {
	t.Helper()
	w := vm.NewWorld(9)
	mach := w.NewMachine("jhost", 0)
	return New(mach, nil, "jvm", RuntimeConfig{})
}

// sumMod builds: int sum(n) { s=0; for i in 1..n: s+=i; return s }
// main(n) { return sum(n); }
func sumMod() *Module {
	b := NewBuilder("App", "App.java")
	mb := b.Method("sum", 1, 3) // locals: n, s, i
	mb.Line(10).I(CONST, 0).I(STOREL, 1, 0)
	mb.Line(11).I(CONST, 1).I(STOREL, 2, 0)
	mb.Label("loop")
	mb.Line(12).I(LOADL, 2, 0).I(LOADL, 0, 0).I(CMPLE).Br(IFZ, "end")
	mb.Line(13).I(LOADL, 1, 0).I(LOADL, 2, 0).I(ADD).I(STOREL, 1, 0)
	mb.Line(14).I(LOADL, 2, 0).I(CONST, 1).I(ADD).I(STOREL, 2, 0).Br(GOTO, "loop")
	mb.Label("end")
	mb.Line(15).I(LOADL, 1, 0).I(RET)
	mb.Done()

	mm := b.Method("main", 1, 1)
	mm.Line(20).I(LOADL, 0, 0).I(CALL, 0).I(RET)
	mm.Done()
	return b.MustBuild()
}

func TestInterpreterSum(t *testing.T) {
	v := newVM(t)
	if _, err := v.Load(sumMod()); err != nil {
		t.Fatal(err)
	}
	th, err := v.Start("main", 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Join(th, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res != 5050 {
		t.Errorf("sum(100) = %d, want 5050", res)
	}
}

func TestArithmeticExceptionCaught(t *testing.T) {
	b := NewBuilder("Exc", "Exc.java")
	mb := b.Method("main", 1, 1)
	mb.Label("try")
	mb.Line(5).I(CONST, 10).I(LOADL, 0, 0).I(DIV).I(RET)
	mb.Label("tryEnd")
	mb.Label("handler")
	mb.Line(8).I(POP).I(CONST, -1).I(RET)
	mb.Catch("try", "tryEnd", "handler", ExcArith)
	mb.Done()
	m := b.MustBuild()

	v := newVM(t)
	v.Load(m)
	th, _ := v.Start("main", 0)
	res, err := v.Join(th, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if res != -1 || th.Uncaught != 0 {
		t.Errorf("res=%d uncaught=%d, want handler result -1", res, th.Uncaught)
	}

	// Division by a nonzero value takes the normal path.
	v2 := newVM(t)
	v2.Load(m)
	th2, _ := v2.Start("main", 2)
	res2, _ := v2.Join(th2, 100000)
	if res2 != 5 {
		t.Errorf("10/2 = %d", res2)
	}
}

func TestUncaughtExceptionKillsThread(t *testing.T) {
	b := NewBuilder("Boom", "Boom.java")
	mb := b.Method("main", 0, 0)
	mb.Line(3).I(CONST, 1).I(CONST, 0).I(DIV).I(RET)
	mb.Done()
	v := newVM(t)
	v.Load(b.MustBuild())
	th, _ := v.Start("main")
	v.Run(100000, nil)
	if th.Uncaught != ExcArith || !v.Exited || v.UncaughtExc != ExcArith {
		t.Errorf("uncaught=%d exited=%v", th.Uncaught, v.Exited)
	}
}

func TestArrayBoundsException(t *testing.T) {
	b := NewBuilder("Arr", "Arr.java")
	mb := b.Method("main", 1, 2)
	mb.Line(2).I(CONST, 4).I(NEWARR).I(STOREL, 1, 0)
	mb.Line(3).I(LOADL, 1, 0).I(LOADL, 0, 0).I(CONST, 7).I(ASTORE)
	mb.Line(4).I(LOADL, 1, 0).I(LOADL, 0, 0).I(ALOAD).I(RET)
	mb.Done()
	m := b.MustBuild()

	v := newVM(t)
	v.Load(m)
	th, _ := v.Start("main", 2)
	if res, err := v.Join(th, 100000); err != nil || res != 7 {
		t.Fatalf("in-bounds: res=%d err=%v", res, err)
	}
	v2 := newVM(t)
	v2.Load(m)
	th2, _ := v2.Start("main", 9)
	v2.Run(100000, nil)
	if th2.Uncaught != ExcBounds {
		t.Errorf("uncaught = %d, want ArrayIndexOutOfBounds", th2.Uncaught)
	}
}

func TestNullAndNegSize(t *testing.T) {
	b := NewBuilder("N", "N.java")
	mb := b.Method("nullref", 0, 0)
	mb.Line(2).I(CONST, 0).I(CONST, 0).I(ALOAD).I(RET)
	mb.Done()
	mb2 := b.Method("negsize", 0, 0)
	mb2.Line(5).I(CONST, -3).I(NEWARR).I(RET)
	mb2.Done()
	m := b.MustBuild()
	for name, want := range map[string]int{"nullref": ExcNull, "negsize": ExcNegSize} {
		v := newVM(t)
		v.Load(m)
		th, err := v.Start(name)
		if err != nil {
			t.Fatal(err)
		}
		v.Run(100000, nil)
		if th.Uncaught != want {
			t.Errorf("%s: uncaught = %d, want %d", name, th.Uncaught, want)
		}
	}
}

func TestNegativeSleepThrows(t *testing.T) {
	b := NewBuilder("S", "S.java")
	mb := b.Method("main", 0, 0)
	mb.Line(2).I(RANDB).I(CONST, 100).I(MOD).I(CONST, 200).I(SUB).I(SLEEPB).I(CONST, 0).I(RET)
	mb.Done()
	v := newVM(t)
	v.Load(b.MustBuild())
	th, _ := v.Start("main")
	v.Run(100000, nil)
	if th.Uncaught != ExcIllegalArg {
		t.Errorf("uncaught = %d, want IllegalArgumentException", th.Uncaught)
	}
}

func TestInstrumentedTraceReconstructs(t *testing.T) {
	inst, mf, err := Instrument(sumMod(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !mf.Managed {
		t.Error("managed mapfile not marked")
	}
	v := newVM(t)
	if _, err := v.Load(inst); err != nil {
		t.Fatal(err)
	}
	th, _ := v.Start("main", 5)
	res, err := v.Join(th, 1_000_000)
	if err != nil || res != 15 {
		t.Fatalf("instrumented sum(5) = %d, err=%v", res, err)
	}
	s := v.Runtime().TakeSnap("api test")
	pt, err := recon.Reconstruct(s, recon.NewMapSet(mf))
	if err != nil {
		t.Fatal(err)
	}
	tt, ok := pt.ThreadByTID(1)
	if !ok {
		t.Fatal("no managed thread trace")
	}
	// Lines 10..15 (sum body) and 20 (main) all appear; the loop
	// lines repeat.
	seen := map[uint32]int{}
	for _, e := range tt.Events {
		if e.Kind == recon.EvLine {
			seen[e.Line] += e.Repeat + 1
		}
	}
	for _, line := range []uint32{10, 11, 12, 13, 14, 15, 20} {
		if seen[line] == 0 {
			t.Errorf("line %d missing from managed trace (have %v)", line, seen)
		}
	}
	if seen[13] < 5 {
		t.Errorf("loop body line executed %d times in trace, want >= 5", seen[13])
	}
}

func TestManagedExceptionLineAccuracy(t *testing.T) {
	// Two divisions on different lines in one block: the exception
	// record must name the right line (the whole point of
	// line-boundary probes, paper §2.4).
	b := NewBuilder("L", "L.java")
	mb := b.Method("main", 1, 2)
	mb.Line(3).I(CONST, 100).I(CONST, 2).I(DIV).I(STOREL, 1, 0)
	mb.Line(4).I(CONST, 100).I(LOADL, 0, 0).I(DIV).I(STOREL, 1, 0)
	mb.Line(5).I(LOADL, 1, 0).I(RET)
	mb.Done()
	inst, mf, err := Instrument(b.MustBuild(), 0)
	if err != nil {
		t.Fatal(err)
	}
	v := newVM(t)
	v.Load(inst)
	th, _ := v.Start("main", 0) // faults on line 4
	v.Run(100000, nil)
	if th.Uncaught != ExcArith {
		t.Fatal("expected fault")
	}
	s := v.Runtime().TakeSnap("post")
	pt, err := recon.Reconstruct(s, recon.NewMapSet(mf))
	if err != nil {
		t.Fatal(err)
	}
	tt, _ := pt.ThreadByTID(1)
	var fault *recon.Event
	for i := range tt.Events {
		if tt.Events[i].Fault {
			fault = &tt.Events[i]
		}
	}
	if fault == nil || fault.Line != 4 {
		t.Errorf("fault = %+v, want line 4", fault)
	}
}

func TestManagedBufferWraps(t *testing.T) {
	inst, mf, err := Instrument(sumMod(), 0)
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(9)
	mach := w.NewMachine("jhost", 0)
	v := New(mach, nil, "jvm", RuntimeConfig{BufferWords: 64})
	v.Load(inst)
	th, _ := v.Start("main", 500)
	if _, err := v.Join(th, 5_000_000); err != nil {
		t.Fatal(err)
	}
	s := v.Runtime().TakeSnap("post")
	pt, err := recon.Reconstruct(s, recon.NewMapSet(mf))
	if err != nil {
		t.Fatal(err)
	}
	tt, _ := pt.ThreadByTID(1)
	if !tt.Truncated {
		t.Error("wrapped managed buffer not marked truncated")
	}
	if len(tt.Events) == 0 {
		t.Error("no events from wrapped managed buffer")
	}
}

func TestSnapOnUncaught(t *testing.T) {
	b := NewBuilder("U", "U.java")
	mb := b.Method("main", 0, 0)
	mb.Line(7).I(CONST, 1).I(CONST, 0).I(DIV).I(RET)
	mb.Done()
	inst, _, err := Instrument(b.MustBuild(), 0)
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(9)
	mach := w.NewMachine("jhost", 0)
	v := New(mach, nil, "jvm", RuntimeConfig{SnapOnUncaught: true})
	v.Load(inst)
	v.Start("main")
	v.Run(100000, nil)
	if len(v.Runtime().Snaps()) != 1 {
		t.Fatalf("%d snaps, want 1", len(v.Runtime().Snaps()))
	}
}

func TestInstrumentationOverheadModest(t *testing.T) {
	run := func(m *Module) uint64 {
		w := vm.NewWorld(9)
		mach := w.NewMachine("jhost", 0)
		v := New(mach, nil, "jvm", RuntimeConfig{})
		v.Load(m)
		th, _ := v.Start("main", 2000)
		if _, err := v.Join(th, 10_000_000); err != nil {
			t.Fatal(err)
		}
		return v.Cycles
	}
	base := run(sumMod())
	inst, _, err := Instrument(sumMod(), 0)
	if err != nil {
		t.Fatal(err)
	}
	instc := run(inst)
	ratio := float64(instc) / float64(base)
	// Paper Table 3: managed overhead sits in the 1.16-1.25 band —
	// allow a generous envelope.
	if ratio < 1.02 || ratio > 1.6 {
		t.Errorf("managed overhead = %.3f, want within [1.02, 1.6]", ratio)
	}
	t.Logf("managed overhead: %.3f", ratio)
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder("Bad", "Bad.java")
	mb := b.Method("main", 0, 0)
	mb.Br(GOTO, "nowhere")
	mb.Done()
	if _, err := b.Build(); err == nil {
		t.Error("undefined label accepted")
	}
	b2 := NewBuilder("Bad2", "Bad2.java")
	mb2 := b2.Method("main", 0, 0)
	mb2.I(LOADL, 5, 0).I(RET)
	mb2.Done()
	if _, err := b2.Build(); err == nil {
		t.Error("out-of-range local accepted")
	}
}

func TestProbeRecordsWellFormed(t *testing.T) {
	inst, _, err := Instrument(sumMod(), 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, me := range inst.Methods {
		if me.Code[0].Op != PROBEH {
			t.Errorf("%s does not start with a heavyweight probe", me.Name)
		}
		for _, in := range me.Code {
			if in.Op == PROBEH {
				w := uint32(in.Imm)
				if !trace.IsDAG(w) {
					t.Errorf("PROBEH immediate %#x is not a DAG word", w)
				}
			}
			if in.Op == PROBEL && uint32(in.Imm)&^uint32(trace.PathMask) != 0 {
				t.Errorf("PROBEL bit %#x outside path mask", in.Imm)
			}
		}
	}
}
