package mvm_test

import (
	"strings"
	"testing"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/recon"
	"traceback/internal/tbrt"
	"traceback/internal/vm"

	mvm "traceback/internal/mvm"
)

// TestFigure5CrossLanguage reproduces the paper's Figure 5 scenario:
// a managed ("Java") program passes a long string to a native C
// function that has only allocated a 4-character buffer. The memcpy
// smashes the native stack, the return goes wild, and a standard
// debugger would see garbage — but the TraceBack traces from the two
// runtimes show the managed call site and the native path to the
// overrun, stitched into one logical thread.
func TestFigure5CrossLanguage(t *testing.T) {
	// NativeString.c: copy_string copies n bytes into a 4-byte local
	// buffer ("we only get short strings").
	nativeSrc := `int copy_string(int src, int n) {
	int result[1];
	memcpy(&result, src, n);
	return result[0];
}`
	nat, err := minic.Compile("NativeString.c", "NativeString.c", nativeSrc)
	if err != nil {
		t.Fatal(err)
	}
	natRes, err := core.Instrument(nat, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	w := vm.NewWorld(13)
	mach := w.NewMachine("sunbox", 0)
	proc, nrt, err := tbrt.NewProcess(mach, "java", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Load(natRes.Module); err != nil {
		t.Fatal(err)
	}
	// The "long string" lives in native memory; the managed side
	// passes its address and length across JNI.
	strAddr := proc.AllocRegion(256)
	long := "a much longer string than four characters"
	proc.WriteBytes(uint64(strAddr), []byte(long))

	// NativeString.java: getString() builds the string, main calls
	// native copy_string with it.
	b := mvm.NewBuilder("NativeString.java", "NativeString.java")
	natIdx := b.Native("NativeString.c", "copy_string", 2)
	mb := b.Method("main", 0, 1)
	mb.Line(5).I(mvm.CONST, int32(strAddr)).I(mvm.STOREL, 0, 0)
	mb.Line(6).I(mvm.LOADL, 0, 0).I(mvm.CONST, int32(len(long))).I(mvm.CALLNAT, int32(natIdx)).I(mvm.POP)
	mb.Line(7).I(mvm.CONST, 0).I(mvm.RET)
	mb.Done()
	jmod, jmf, err := mvm.Instrument(b.MustBuild(), 0)
	if err != nil {
		t.Fatal(err)
	}

	jvm := mvm.New(mach, proc, "java", mvm.RuntimeConfig{})
	if _, err := jvm.Load(jmod); err != nil {
		t.Fatal(err)
	}
	th, err := jvm.Start("main")
	if err != nil {
		t.Fatal(err)
	}
	jvm.Run(1_000_000, nil)

	// The native side died of the stack smash.
	if proc.FatalSignal != vm.SigSegv {
		t.Fatalf("native signal = %s, want SIGSEGV (wild return)", vm.SignalName(proc.FatalSignal))
	}
	if th.Uncaught != mvm.ExcNativeDied {
		t.Errorf("managed thread uncaught = %d, want NativeCrashError", th.Uncaught)
	}

	// Both runtimes snapped; reconstruct and stitch.
	if len(nrt.Snaps()) == 0 || len(jvm.Runtime().Snaps()) == 0 {
		t.Fatalf("snaps: native=%d managed=%d", len(nrt.Snaps()), len(jvm.Runtime().Snaps()))
	}
	maps := recon.NewMapSet(natRes.Map, jmf)
	npt, err := recon.Reconstruct(nrt.Snaps()[0], maps)
	if err != nil {
		t.Fatal(err)
	}
	jpt, err := recon.Reconstruct(jvm.Runtime().Snaps()[0], maps)
	if err != nil {
		t.Fatal(err)
	}
	mt := recon.Stitch([]*recon.ProcessTrace{jpt, npt})
	if len(mt.Logical) != 1 {
		t.Fatalf("%d logical threads, want 1", len(mt.Logical))
	}
	lt := mt.Logical[0]

	var sb strings.Builder
	recon.RenderLogical(&sb, lt, recon.RenderOptions{})
	out := sb.String()
	// The stitched trace shows the managed call line and the native
	// source lines up to the memcpy.
	for _, want := range []string{"NativeString.java:6", "NativeString.c:3"} {
		if !strings.Contains(out, want) {
			t.Errorf("stitched trace missing %q:\n%s", want, out)
		}
	}
	// The managed segment comes first (the caller), then the native.
	if lt.Segments[0].Process != "java" {
		t.Errorf("first segment = %q, want the managed caller", lt.Segments[0].Process)
	}
	foundNative := false
	for _, seg := range lt.Segments[1:] {
		for _, e := range seg.Events {
			if e.Kind == recon.EvLine && e.File == "NativeString.c" {
				foundNative = true
			}
		}
	}
	if !foundNative {
		t.Error("native callee's lines missing from the logical thread")
	}
}

// TestJNIHappyPath: a successful native call returns its value to
// managed code and produces four SYNC records across the runtimes.
func TestJNIHappyPath(t *testing.T) {
	nativeSrc := `int add_native(int a, int b) { return a + b; }`
	nat, err := minic.Compile("lib.c", "lib.c", nativeSrc)
	if err != nil {
		t.Fatal(err)
	}
	natRes, err := core.Instrument(nat, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(13)
	mach := w.NewMachine("box", 0)
	proc, nrt, err := tbrt.NewProcess(mach, "app", tbrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	proc.Load(natRes.Module)

	b := mvm.NewBuilder("App.java", "App.java")
	ni := b.Native("lib.c", "add_native", 2)
	mb := b.Method("main", 0, 0)
	mb.Line(3).I(mvm.CONST, 19).I(mvm.CONST, 23).I(mvm.CALLNAT, int32(ni)).I(mvm.RET)
	mb.Done()
	jmod, jmf, err := mvm.Instrument(b.MustBuild(), 0)
	if err != nil {
		t.Fatal(err)
	}
	jvm := mvm.New(mach, proc, "app-jvm", mvm.RuntimeConfig{})
	jvm.Load(jmod)
	th, _ := jvm.Start("main")
	res, err := jvm.Join(th, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res != 42 {
		t.Errorf("native add = %d, want 42", res)
	}

	maps := recon.NewMapSet(natRes.Map, jmf)
	jpt, err := recon.Reconstruct(jvm.Runtime().TakeSnap("post"), maps)
	if err != nil {
		t.Fatal(err)
	}
	npt, err := recon.Reconstruct(nrt.PostMortemSnap(), maps)
	if err != nil {
		t.Fatal(err)
	}
	syncs := 0
	for _, pt := range []*recon.ProcessTrace{jpt, npt} {
		for _, tt := range pt.Threads {
			for _, e := range tt.Events {
				if e.Kind == recon.EvSync {
					syncs++
				}
			}
		}
	}
	if syncs != 4 {
		t.Errorf("%d SYNC records, want 4 (paper §5.1)", syncs)
	}
	mt := recon.Stitch([]*recon.ProcessTrace{jpt, npt})
	if len(mt.Logical) != 1 {
		t.Errorf("%d logical threads, want 1", len(mt.Logical))
	}
}
