package mvm

import (
	"encoding/binary"
	"fmt"

	"traceback/internal/snap"
	"traceback/internal/trace"
	"traceback/internal/vm"
)

// RuntimeConfig sizes the managed trace runtime.
type RuntimeConfig struct {
	// BufferWords per managed thread buffer (default 8192).
	BufferWords int
	// SnapOnUncaught snaps when an exception kills a thread.
	SnapOnUncaught bool
	// SnapOnException snaps first-chance on every managed exception
	// (paper: a snap trigger "like an ArrayIndexOutOfBounds exception
	// in Java"), subject to suppression.
	SnapOnException bool
	// ProbeHCost / ProbeLCost are the cycle costs of managed probes.
	// They are platform-dependent (TLS and memory-system speed differ
	// across the paper's Win/Lin/Sun systems); defaults 6 and 2.
	ProbeHCost uint64
	ProbeLCost uint64
	// MTProbePenalty adds cycles per heavyweight probe when more
	// than one managed thread is live — the cache-contention effect
	// that makes Table 3's 5-warehouse ratios slightly worse than
	// 1-warehouse.
	MTProbePenalty uint64
}

func (c RuntimeConfig) withDefaults() RuntimeConfig {
	if c.BufferWords == 0 {
		c.BufferWords = 8192
	}
	if c.ProbeHCost == 0 {
		c.ProbeHCost = 6
	}
	if c.ProbeLCost == 0 {
		c.ProbeLCost = 2
	}
	return c
}

// ManagedRuntime is the managed-side TraceBack runtime: its own trace
// buffers and runtime ID, distinct from the native runtime in the
// same process (paper §3.3 treats Java+native as distributed tracing
// within one process).
type ManagedRuntime struct {
	v   *VM
	cfg RuntimeConfig

	heap heap

	bufs     map[int]*mbuf
	nextDAG  uint32
	bindings map[int]*mbinding
	nextLT   uint32
	partners map[uint64]bool

	suppress map[string]int
	snaps    []*snap.Snap
}

type mbuf struct {
	tid   int
	words []trace.Word
	// cur is the index of the last written record (-1 when empty).
	cur     int
	wrapped bool
}

type mbinding struct {
	originRT uint64
	ltid     uint32
	seq      uint32
}

func newManagedRuntime(v *VM, cfg RuntimeConfig) *ManagedRuntime {
	return &ManagedRuntime{
		v:        v,
		cfg:      cfg.withDefaults(),
		bufs:     map[int]*mbuf{},
		bindings: map[int]*mbinding{},
		partners: map[uint64]bool{},
		suppress: map[string]int{},
	}
}

// Snaps returns snaps taken by the managed runtime.
func (rt *ManagedRuntime) Snaps() []*snap.Snap { return rt.snaps }

// assignRange allocates a DAG ID range for an instrumented module.
func (rt *ManagedRuntime) assignRange(m *Module) uint32 {
	base := rt.nextDAG
	rt.nextDAG += m.DAGCount
	return base
}

func (rt *ManagedRuntime) buf(t *MThread) *mbuf {
	b := rt.bufs[t.TID]
	if b == nil {
		b = &mbuf{tid: t.TID, words: make([]trace.Word, 0, rt.cfg.BufferWords), cur: -1}
		rt.bufs[t.TID] = b
	}
	return b
}

func (b *mbuf) append(w trace.Word, limit int) {
	if len(b.words) < limit {
		b.words = append(b.words, w)
		b.cur = len(b.words) - 1
		return
	}
	b.cur = (b.cur + 1) % limit
	b.words[b.cur] = w
	b.wrapped = true
}

func (rt *ManagedRuntime) appendWords(t *MThread, words []trace.Word) {
	b := rt.buf(t)
	for _, w := range words {
		b.append(w, rt.cfg.BufferWords)
	}
}

// probeHeavy begins a new DAG record (the rebased record word is
// pre-computed into the probe's immediate at instrumentation time,
// with the runtime's range applied at load).
func (rt *ManagedRuntime) probeHeavy(t *MThread, word uint32) {
	// Apply the module's load-time base: the probe word carries the
	// instrumentation-time ID, already module-relative, and the
	// loaded module knows its assigned base.
	f := t.frames[len(t.frames)-1]
	id := trace.DAGID(word) + f.lm.DAGBase
	rt.appendWords(t, []trace.Word{trace.DAGWord(id, 0)})
}

// probeLight ORs a line-boundary bit into the current record.
func (rt *ManagedRuntime) probeLight(t *MThread, bits uint32) {
	b := rt.buf(t)
	if b.cur >= 0 && trace.IsDAG(b.words[b.cur]) {
		b.words[b.cur] |= trace.Word(bits) & trace.PathMask
	}
}

func (rt *ManagedRuntime) now() uint64 { return rt.v.Machine.Timestamp() }

func (rt *ManagedRuntime) timestamp(t *MThread) {
	rt.appendEvent(t, trace.AppendTimestamp(nil, rt.now()))
}

// appendEvent writes extended records, re-issuing any in-progress DAG
// record just as the native runtime does.
func (rt *ManagedRuntime) appendEvent(t *MThread, words []trace.Word) {
	b := rt.buf(t)
	var cur trace.Word
	haveCur := b.cur >= 0 && trace.IsDAG(b.words[b.cur])
	if haveCur {
		cur = b.words[b.cur]
	}
	rt.appendWords(t, words)
	if haveCur {
		rt.appendWords(t, trace.AppendReissueMark(nil))
		rt.appendWords(t, []trace.Word{cur})
	}
}

func (rt *ManagedRuntime) onThreadStart(t *MThread) {
	rt.appendWords(t, trace.AppendThreadStart(nil, uint32(t.TID), rt.now()))
}

func (rt *ManagedRuntime) onThreadEnd(t *MThread) {
	rt.appendWords(t, trace.AppendThreadEnd(nil, uint32(t.TID), rt.now()))
}

// onException records a first-chance managed exception with its
// managed code address; line-boundary probes make the report
// line-accurate (paper §2.4).
func (rt *ManagedRuntime) onException(t *MThread, code int, addr uint64) {
	rt.appendEvent(t, trace.AppendException(nil, trace.Exception{
		Code: uint16(code), Addr: addr, TS: rt.now(),
	}))
	if rt.cfg.SnapOnException {
		key := fmt.Sprintf("exc/%d/%d", code, addr)
		rt.suppress[key]++
		if rt.suppress[key] <= 1 {
			rt.takeSnap("exception "+ExcName(code), t, code, addr)
		}
	}
}

func (rt *ManagedRuntime) onUncaught(t *MThread, code int) {
	if rt.cfg.SnapOnUncaught {
		key := fmt.Sprintf("uncaught/%d", code)
		rt.suppress[key]++
		if rt.suppress[key] <= 1 {
			rt.takeSnap("exception uncaught "+ExcName(code), t, code, 0)
		}
	}
}

// TakeSnap snapshots the managed runtime's buffers.
func (rt *ManagedRuntime) TakeSnap(reason string) *snap.Snap {
	return rt.takeSnap(reason, nil, 0, 0)
}

func (rt *ManagedRuntime) takeSnap(reason string, t *MThread, code int, addr uint64) *snap.Snap {
	host := rt.v.Machine.Name
	proc := rt.v.Name
	s := &snap.Snap{
		Host:      host,
		Process:   proc,
		RuntimeID: rt.v.ID,
		Reason:    reason,
		Signal:    code,
		FaultAddr: addr,
		Time:      rt.now(),
	}
	if t != nil {
		s.TriggerTID = uint32(t.TID)
	}
	for _, lm := range rt.v.modules {
		mi := snap.ModuleInfo{
			Name:          lm.Mod.Name,
			Checksum:      lm.Mod.Checksum(),
			ActualDAGBase: lm.DAGBase,
			DAGCount:      lm.Mod.DAGCount,
			CodeBase:      lm.CodeBase,
			CodeLen:       lm.Mod.CodeLen(),
		}
		// Static fields dump (the managed object-dump analog).
		if len(lm.statics) > 0 {
			mi.DataDump = make([]byte, len(lm.statics)*8)
			for i, v := range lm.statics {
				binary.LittleEndian.PutUint64(mi.DataDump[i*8:], uint64(v))
			}
		}
		s.Modules = append(s.Modules, mi)
	}
	for tid := 1; tid <= rt.v.nextTID; tid++ {
		b := rt.bufs[tid]
		if b == nil || len(b.words) == 0 {
			continue
		}
		d := snap.BufferDump{
			Kind:      snap.BufMain,
			OwnerTID:  uint32(tid),
			LastPtr:   uint32(b.cur),
			LastKnown: true,
			SubWords:  0, // plain ring: the managed runtime always knows its pointer
		}
		d.SetWords(b.words)
		s.Buffers = append(s.Buffers, d)
	}
	for id := range rt.partners {
		s.Partners = append(s.Partners, id)
	}
	rt.snaps = append(rt.snaps, s)
	return s
}

// JNI bridge (paper §3.3/§5.1): a native call from managed code is
// traced as an RPC between the managed and native runtimes.

func encodeExt(rtid uint64, ltid, seq uint32) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, rtid)
	binary.LittleEndian.PutUint32(b[8:], ltid)
	binary.LittleEndian.PutUint32(b[12:], seq)
	return b
}

func decodeExt(b []byte) (rtid uint64, ltid, seq uint32, ok bool) {
	if len(b) != 16 {
		return 0, 0, 0, false
	}
	return binary.LittleEndian.Uint64(b),
		binary.LittleEndian.Uint32(b[8:]),
		binary.LittleEndian.Uint32(b[12:]), true
}

func (rt *ManagedRuntime) syncSend(t *MThread, reply bool) []byte {
	bind := rt.bindings[t.TID]
	if bind == nil {
		rt.nextLT++
		bind = &mbinding{originRT: rt.v.ID, ltid: rt.nextLT}
		rt.bindings[t.TID] = bind
	} else {
		bind.seq++
	}
	point := trace.SyncCallSend
	if reply {
		point = trace.SyncReplySend
	}
	rt.appendEvent(t, trace.AppendSync(nil, trace.Sync{
		Point: point, RuntimeID: bind.originRT,
		LogicalThread: bind.ltid, Seq: bind.seq, TS: rt.now(),
	}))
	return encodeExt(bind.originRT, bind.ltid, bind.seq)
}

func (rt *ManagedRuntime) syncRecv(t *MThread, ext []byte, reply bool) {
	rtid, ltid, seq, ok := decodeExt(ext)
	if !ok {
		return
	}
	if rtid != rt.v.ID {
		rt.partners[rtid] = true
	}
	bind := &mbinding{originRT: rtid, ltid: ltid, seq: seq + 1}
	rt.bindings[t.TID] = bind
	point := trace.SyncCallRecv
	if reply {
		point = trace.SyncReplyRecv
	}
	rt.appendEvent(t, trace.AppendSync(nil, trace.Sync{
		Point: point, RuntimeID: rtid,
		LogicalThread: ltid, Seq: bind.seq, TS: rt.now(),
	}))
}

// jniBridge is implemented by the native TraceBack runtime; when the
// process has no (or an uninstrumented) runtime attached, the bridge
// degrades gracefully and only the managed side is traced.
type jniBridge interface {
	BindJNI(t *vm.Thread, ext []byte)
	TakeJNIReply(tid int) []byte
}

// callNative executes a native function synchronously on behalf of a
// managed thread: a native thread is spawned in the associated
// process, the machine is pumped until it exits, and the result is
// pushed on the managed stack. SYNC records on both sides fuse the
// two physical threads into one logical thread, so reconstruction
// shows the Java-to-C control flow of Figure 5.
func (v *VM) callNative(t *MThread, f *mframe, nb NativeBinding) {
	if v.Proc == nil {
		v.throw(t, ExcNativeDied)
		return
	}
	args := make([]int64, nb.Arity)
	for i := nb.Arity - 1; i >= 0; i-- {
		args[i] = f.pop()
	}
	entry, ok := v.findNative(nb)
	if !ok {
		v.throw(t, ExcNativeDied)
		return
	}
	ext := v.rt.syncSend(t, false)
	nt, err := v.Proc.StartThread(entry, 0)
	if err != nil {
		v.throw(t, ExcNativeDied)
		return
	}
	// Arguments go in the native argument registers.
	for i, a := range args {
		if i < 4 {
			nt.Regs[1+i] = uint64(a)
		}
	}
	bridge, haveBridge := v.Proc.Hooks.(jniBridge)
	if haveBridge {
		bridge.BindJNI(nt, ext)
	}

	// Pump the machine until the native thread finishes or the
	// process dies under us (the Figure 5 crash path).
	v.Machine.World.Run(10_000_000, func() bool {
		return nt.State == vm.Exited || v.Proc.Exited
	})
	if v.Proc.Exited {
		// The native side crashed; the managed runtime snaps so the
		// cross-language trace survives on both sides.
		v.rt.takeSnap("exception native process died", t, ExcNativeDied, v.codeAddr(f))
		v.throw(t, ExcNativeDied)
		return
	}
	if haveBridge {
		if ext2 := bridge.TakeJNIReply(nt.TID); ext2 != nil {
			v.rt.syncRecv(t, ext2, true)
		}
	}
	f.push(int64(nt.ExitValue))
}

func (v *VM) findNative(nb NativeBinding) (uint64, bool) {
	for _, lm := range v.Proc.Modules {
		if lm.Unloaded {
			continue
		}
		if nb.Module != "" && lm.Mod.Name != nb.Module {
			continue
		}
		if fn, ok := lm.Mod.FuncByName(nb.Name); ok && fn.Exported {
			return uint64(lm.CodeBase + fn.Entry), true
		}
	}
	return 0, false
}
