package mvm

import (
	"fmt"

	"traceback/internal/module"
	"traceback/internal/trace"
)

// Instrument rewrites a managed module with TraceBack probes (paper
// §2.4's intermediate-code path):
//
//   - heavyweight probes (PROBEH) at method entries, exception
//     handler entries (each catch is "just another procedure entry
//     point"), backward-branch targets (loops), and call return
//     points;
//   - lightweight probes (PROBEL) at every source line boundary
//     within a DAG, so the exception report can name the exact line
//     even though the faulting bytecode cannot be recovered from the
//     exception context;
//   - a fresh DAG whenever the line-probe bit budget runs out.
//
// The emitted mapfile is marked Managed: path expansion takes every
// marked line in order rather than walking CFG successors.
func Instrument(m *Module, dagBase uint32) (*Module, *module.MapFile, error) {
	if m.Instrumented {
		return nil, nil, fmt.Errorf("mvm: module %s already instrumented", m.Name)
	}
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	out := &Module{
		Name:         m.Name,
		File:         m.File,
		Consts:       append([]string(nil), m.Consts...),
		Natives:      append([]NativeBinding(nil), m.Natives...),
		NStatics:     m.NStatics,
		StaticNames:  append([]string(nil), m.StaticNames...),
		Instrumented: true,
	}
	mf := &module.MapFile{ModuleName: m.Name, DAGBase: dagBase, Managed: true}
	for i, name := range m.StaticNames {
		mf.Globals = append(mf.Globals, module.Global{Name: name, Off: uint32(i) * 8, Size: 1})
	}
	nextDAG := uint32(0)

	for mi, me := range m.Methods {
		nm, dags, err := instrumentMethod(m, me, dagBase, &nextDAG)
		if err != nil {
			return nil, nil, err
		}
		// Rebase the mapfile block offsets by the method's flattened
		// offset in the OUTPUT module.
		off := out.CodeLen()
		for di := range dags {
			for bi := range dags[di].Blocks {
				dags[di].Blocks[bi].Start += off
				dags[di].Blocks[bi].End += off
				for li := range dags[di].Blocks[bi].Lines {
					dags[di].Blocks[bi].Lines[li].Start += off
					dags[di].Blocks[bi].Lines[li].End += off
				}
			}
			mf.DAGs = append(mf.DAGs, dags[di])
		}
		out.Methods = append(out.Methods, nm)
		_ = mi
	}
	out.DAGCount = nextDAG
	mf.DAGCount = nextDAG
	mf.Checksum = out.Checksum()
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("mvm: instrumented module invalid: %w", err)
	}
	return out, mf, mf.Validate()
}

// instrumentMethod rewrites one method.
func instrumentMethod(m *Module, me *Method, dagBase uint32, nextDAG *uint32) (*Method, []module.MapDAG, error) {
	// Heavyweight probe sites: entry, handlers, backward-branch
	// targets, call return points.
	heavy := map[uint32]bool{0: true}
	for _, e := range me.Exc {
		heavy[e.Handler] = true
	}
	for i, in := range me.Code {
		switch in.Op {
		case GOTO, IFZ, IFNZ:
			if uint32(in.Imm) <= uint32(i) {
				heavy[uint32(in.Imm)] = true
			}
		case CALL, CALLNAT:
			if i+1 < len(me.Code) {
				heavy[uint32(i+1)] = true
			}
		}
	}

	nm := &Method{Name: me.Name, NArgs: me.NArgs, NLocals: me.NLocals}
	var dags []module.MapDAG
	oldToNew := make([]uint32, len(me.Code)+1)

	type dagState struct {
		id      uint32
		mapDAG  *module.MapDAG
		nextBit int8
	}
	var cur *dagState
	curLine := uint32(0)
	firstDAG := true

	openDAG := func() {
		id := *nextDAG
		*nextDAG++
		dags = append(dags, module.MapDAG{ID: id})
		cur = &dagState{id: id, mapDAG: &dags[len(dags)-1]}
		nm.Code = append(nm.Code, Instr{Op: PROBEH, Imm: int32(trace.DAGWord(dagBase+id, 0))})
		// The header "block" covers code from here until the first
		// line probe.
		entry := ""
		if firstDAG {
			entry = me.Name
			firstDAG = false
		}
		cur.mapDAG.Blocks = append(cur.mapDAG.Blocks, module.MapBlock{
			Start: uint32(len(nm.Code) - 1), End: uint32(len(nm.Code)),
			Bit:       -1,
			FuncEntry: entry,
		})
	}
	closeBlock := func() {
		if cur == nil || len(cur.mapDAG.Blocks) == 0 {
			return
		}
		b := &cur.mapDAG.Blocks[len(cur.mapDAG.Blocks)-1]
		b.End = uint32(len(nm.Code))
		if curLine != 0 {
			b.Lines = []module.LineSpan{{
				File: m.File, Line: curLine, Start: b.Start, End: b.End,
			}}
		}
	}
	lineProbe := func(line uint32) {
		if cur.nextBit >= trace.NumPathBits {
			closeBlock()
			openDAG()
		}
		closeBlock()
		bit := cur.nextBit
		cur.nextBit++
		nm.Code = append(nm.Code, Instr{Op: PROBEL, Imm: 1 << uint(bit)})
		cur.mapDAG.Blocks = append(cur.mapDAG.Blocks, module.MapBlock{
			Start: uint32(len(nm.Code) - 1), End: uint32(len(nm.Code)),
			Bit: bit,
		})
		curLine = line
	}

	lineAt := func(idx uint32) (uint32, bool) { return me.LineFor(idx) }

	openDAG()
	if l, ok := lineAt(0); ok {
		curLine = l
	}
	for i, in := range me.Code {
		oldToNew[i] = uint32(len(nm.Code))
		if uint32(i) != 0 && heavy[uint32(i)] {
			closeBlock()
			openDAG()
			if l, ok := lineAt(uint32(i)); ok {
				curLine = l
			}
		} else if l, ok := lineAt(uint32(i)); ok && l != curLine {
			// Source line boundary: lightweight probe (paper §2.4).
			lineProbe(l)
		}
		// Annotate calls on the current block.
		if in.Op == CALL || in.Op == CALLNAT {
			b := &cur.mapDAG.Blocks[len(cur.mapDAG.Blocks)-1]
			b.Call = module.CallDirect
			if in.Op == CALLNAT {
				b.Call = module.CallImport
				nb := m.Natives[in.Imm]
				b.CallTarget = nb.Module + "!" + nb.Name
			} else {
				b.CallTarget = m.Methods[in.Imm].Name
			}
		}
		if in.Op == RET {
			b := &cur.mapDAG.Blocks[len(cur.mapDAG.Blocks)-1]
			b.FuncExit = true
		}
		nm.Code = append(nm.Code, in)
		nm.Lines = appendLine(nm.Lines, uint32(len(nm.Code)-1), me, uint32(i))
	}
	oldToNew[len(me.Code)] = uint32(len(nm.Code))
	closeBlock()

	// Fix branch targets and exception table.
	for i := range nm.Code {
		switch nm.Code[i].Op {
		case GOTO, IFZ, IFNZ:
			nm.Code[i].Imm = int32(oldToNew[nm.Code[i].Imm])
		}
	}
	for _, e := range me.Exc {
		nm.Exc = append(nm.Exc, ExcEntry{
			From:    oldToNew[e.From],
			To:      oldToNew[e.To],
			Handler: oldToNew[e.Handler],
			Code:    e.Code,
		})
	}
	// The runtime's outermost catch-all (paper §3.7.2's Java
	// fallback) is implicit: the interpreter is the runtime, so it
	// sees every throw first-chance. The mapfile still records the
	// method's handlers as entry points (done above).
	return nm, dags, nil
}

func appendLine(lines []LineEntry, at uint32, me *Method, oldIdx uint32) []LineEntry {
	l, ok := me.LineFor(oldIdx)
	if !ok {
		return lines
	}
	if n := len(lines); n > 0 && lines[n-1].Line == l {
		return lines
	}
	return append(lines, LineEntry{Index: at, Line: l})
}
