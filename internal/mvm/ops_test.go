package mvm

import (
	"strings"
	"testing"

	"traceback/internal/vm"
)

func runMain(t *testing.T, m *Module, args ...int64) (*VM, *MThread) {
	t.Helper()
	v := newVM(t)
	if _, err := v.Load(m); err != nil {
		t.Fatal(err)
	}
	th, err := v.Start("main", args...)
	if err != nil {
		t.Fatal(err)
	}
	v.Run(1_000_000, nil)
	return v, th
}

func TestStackOps(t *testing.T) {
	b := NewBuilder("S", "S.java")
	mb := b.Method("main", 0, 0)
	// dup: 5 -> 5 5 -> 25; pop removes a pushed junk value.
	mb.Line(1).I(CONST, 5).I(DUP).I(MUL).I(CONST, 99).I(POP).I(RET)
	mb.Done()
	_, th := runMain(t, b.MustBuild())
	if th.Result != 25 {
		t.Errorf("result = %d, want 25", th.Result)
	}
}

func TestArrLenAndNeg(t *testing.T) {
	b := NewBuilder("A", "A.java")
	mb := b.Method("main", 0, 1)
	mb.Line(1).I(CONST, 7).I(NEWARR).I(STOREL, 0, 0)
	mb.Line(2).I(LOADL, 0, 0).I(ARRLEN).I(NEG).I(RET)
	mb.Done()
	_, th := runMain(t, b.MustBuild())
	if th.Result != -7 {
		t.Errorf("result = %d, want -7", th.Result)
	}
}

func TestPrintOps(t *testing.T) {
	b := NewBuilder("P", "P.java")
	s := b.Str("hello from managed\n")
	mb := b.Method("main", 0, 0)
	mb.Line(1).I(PRINTS, int32(s))
	mb.Line(2).I(CONST, 7).I(PRINT)
	mb.Line(3).I(CONST, 0).I(RET)
	mb.Done()
	v, _ := runMain(t, b.MustBuild())
	out := string(v.Out)
	if !strings.Contains(out, "hello from managed") || !strings.Contains(out, "7") {
		t.Errorf("out = %q", out)
	}
}

func TestThrowExplicit(t *testing.T) {
	b := NewBuilder("T", "T.java")
	mb := b.Method("main", 0, 0)
	mb.Label("try")
	mb.Line(1).I(CONST, 500).I(THROW)
	mb.Label("tryEnd")
	mb.Label("h")
	mb.Line(3).I(RET) // handler returns the exception code
	mb.Catch("try", "tryEnd", "h", 500)
	mb.Done()
	_, th := runMain(t, b.MustBuild())
	if th.Result != 500 || th.Uncaught != 0 {
		t.Errorf("result=%d uncaught=%d", th.Result, th.Uncaught)
	}
}

func TestCatchFilterByCode(t *testing.T) {
	// Handler catches only code 7; code 9 propagates and kills.
	build := func(code int32) *Module {
		b := NewBuilder("F", "F.java")
		mb := b.Method("main", 0, 0)
		mb.Label("try")
		mb.Line(1).I(CONST, code).I(THROW)
		mb.Label("tryEnd")
		mb.Label("h")
		mb.Line(3).I(POP).I(CONST, -5).I(RET)
		mb.Catch("try", "tryEnd", "h", 7)
		mb.Done()
		return b.MustBuild()
	}
	_, th := runMain(t, build(7))
	if th.Result != -5 {
		t.Errorf("caught: result = %d", th.Result)
	}
	_, th2 := runMain(t, build(9))
	if th2.Uncaught != 9 {
		t.Errorf("uncaught = %d, want 9", th2.Uncaught)
	}
}

func TestNestedCatchUnwinding(t *testing.T) {
	// inner() throws; its caller's handler catches.
	b := NewBuilder("N", "N.java")
	inner := b.Method("inner", 0, 0)
	inner.Line(10).I(CONST, 77).I(THROW)
	inner.Done()
	mb := b.Method("main", 0, 0)
	mb.Label("try")
	mb.Line(1).I(CALL, 0).I(RET)
	mb.Label("tryEnd")
	mb.Label("h")
	mb.Line(3).I(RET)
	mb.Catch("try", "tryEnd", "h", 0)
	mb.Done()
	_, th := runMain(t, b.MustBuild())
	if th.Result != 77 || th.Uncaught != 0 {
		t.Errorf("result=%d uncaught=%d, want caught 77", th.Result, th.Uncaught)
	}
}

func TestCallNativeWithoutProcess(t *testing.T) {
	b := NewBuilder("J", "J.java")
	ni := b.Native("lib", "fn", 0)
	mb := b.Method("main", 0, 0)
	mb.Label("try")
	mb.Line(1).I(CALLNAT, int32(ni)).I(RET)
	mb.Label("tryEnd")
	mb.Label("h")
	mb.Line(3).I(RET)
	mb.Catch("try", "tryEnd", "h", ExcNativeDied)
	mb.Done()
	_, th := runMain(t, b.MustBuild()) // VM has no native process
	if th.Result != ExcNativeDied {
		t.Errorf("result = %d, want NativeCrashError caught", th.Result)
	}
}

func TestManagedThreadsIndependent(t *testing.T) {
	inst, _, err := Instrument(sumMod(), 0)
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(9)
	mach := w.NewMachine("jhost", 0)
	v := New(mach, nil, "jvm", RuntimeConfig{})
	v.Load(inst)
	t1, _ := v.Start("main", 10)
	t2, _ := v.Start("main", 20)
	v.Run(1_000_000, func() bool { return t1.State == MDone && t2.State == MDone })
	if t1.Result != 55 || t2.Result != 210 {
		t.Errorf("results = %d, %d; want 55, 210", t1.Result, t2.Result)
	}
	// Each thread has its own trace buffer in the snap.
	s := v.Runtime().TakeSnap("post")
	if len(s.Buffers) != 2 {
		t.Errorf("%d buffers, want 2", len(s.Buffers))
	}
}

func TestMethodFallsOffEnd(t *testing.T) {
	// A method with no RET returns 0 implicitly.
	b := NewBuilder("E", "E.java")
	mb := b.Method("main", 0, 0)
	mb.Line(1).I(CONST, 3).I(POP)
	mb.Done()
	_, th := runMain(t, b.MustBuild())
	if th.State != MDone || th.Result != 0 {
		t.Errorf("state=%v result=%d", th.State, th.Result)
	}
}
