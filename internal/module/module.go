// Package module defines the binary module format of the synthetic
// platform (the analog of a PE/ELF image with debug info) and the
// TraceBack mapfile emitted by instrumentation.
//
// A module carries code, initialized data, a function table, a source
// line table, an import table, and — once instrumented — the fixup
// tables that let the TraceBack runtime rebase DAG IDs and the TLS
// index at load time, plus an MD5 checksum over the stable content
// that ties trace data to the matching mapfile.
package module

import (
	"bytes"
	"crypto/md5"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"traceback/internal/isa"
)

// Func describes one function: a contiguous half-open instruction
// range [Entry, End).
type Func struct {
	Name     string
	Entry    uint32
	End      uint32
	Exported bool
}

// Import names a function provided by another module. CALX
// instructions index this table; the loader resolves each entry to an
// absolute code address.
type Import struct {
	Module string // "" means any module exporting Name
	Name   string
}

// LineEntry maps the instructions in [Index, next entry's Index) to a
// source position. Entries are sorted by Index.
type LineEntry struct {
	Index uint32
	File  uint16 // index into Files
	Line  uint32
}

// Global names a data-segment symbol (for the snap variables view).
type Global struct {
	Name string
	Off  uint32 // data-segment offset
	Size uint32 // element count (1 for scalars)
}

// Module is a loadable binary image.
type Module struct {
	Name    string
	Code    []isa.Instr
	Data    []byte
	BSS     uint32 // extra zeroed data appended after Data
	Funcs   []Func
	Imports []Import
	Globals []Global
	Files   []string
	Lines   []LineEntry

	// Instrumentation products.
	Instrumented bool
	DAGBase      uint32   // default (instrumentation-time) DAG ID base
	DAGCount     uint32   // number of DAG IDs the module uses
	DAGFixups    []uint32 // instruction indexes whose Imm embeds a pre-shifted DAG record
	TLSFixups    []uint32 // instruction indexes of probe TLSLD/TLSST to re-slot
}

// Checksum returns the MD5 of the module's stable content (code,
// data, function table) — the analog of the paper's module checksum
// that omits timestamps and other volatile fields.
func (m *Module) Checksum() [16]byte {
	h := md5.New()
	var buf [8]byte
	for _, in := range m.Code {
		h.Write(isa.Encode(buf[:0], in))
	}
	h.Write(m.Data)
	binary.Write(h, binary.LittleEndian, m.BSS)
	for _, f := range m.Funcs {
		io.WriteString(h, f.Name)
		binary.Write(h, binary.LittleEndian, f.Entry)
		binary.Write(h, binary.LittleEndian, f.End)
	}
	var sum [16]byte
	h.Sum(sum[:0])
	return sum
}

// ChecksumHex returns the checksum as a hex string (the mapfile key).
func (m *Module) ChecksumHex() string {
	s := m.Checksum()
	return hex.EncodeToString(s[:])
}

// FindFunc returns the function containing instruction index idx.
func (m *Module) FindFunc(idx uint32) (Func, bool) {
	for _, f := range m.Funcs {
		if idx >= f.Entry && idx < f.End {
			return f, true
		}
	}
	return Func{}, false
}

// FuncByName returns the named function.
func (m *Module) FuncByName(name string) (Func, bool) {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return Func{}, false
}

// LineFor returns the source position of instruction idx.
func (m *Module) LineFor(idx uint32) (file string, line uint32, ok bool) {
	i := sort.Search(len(m.Lines), func(i int) bool { return m.Lines[i].Index > idx })
	if i == 0 {
		return "", 0, false
	}
	e := m.Lines[i-1]
	if int(e.File) >= len(m.Files) {
		return "", 0, false
	}
	return m.Files[e.File], e.Line, true
}

// Validate checks structural invariants.
func (m *Module) Validate() error {
	n := uint32(len(m.Code))
	for _, f := range m.Funcs {
		if f.Entry >= f.End || f.End > n {
			return fmt.Errorf("module %s: function %s has bad range [%d,%d) of %d",
				m.Name, f.Name, f.Entry, f.End, n)
		}
	}
	for i := 1; i < len(m.Lines); i++ {
		if m.Lines[i].Index < m.Lines[i-1].Index {
			return fmt.Errorf("module %s: line table not sorted at %d", m.Name, i)
		}
	}
	for _, e := range m.Lines {
		if int(e.File) >= len(m.Files) {
			return fmt.Errorf("module %s: line entry references file %d of %d",
				m.Name, e.File, len(m.Files))
		}
	}
	for i, in := range m.Code {
		if in.Op.HasCodeTarget() {
			if in.Imm < 0 || uint32(in.Imm) >= n {
				return fmt.Errorf("module %s: instruction %d (%v) targets %d outside code",
					m.Name, i, in.Op, in.Imm)
			}
		}
		if in.Op == isa.CALX {
			if in.Imm < 0 || int(in.Imm) >= len(m.Imports) {
				return fmt.Errorf("module %s: instruction %d imports entry %d of %d",
					m.Name, i, in.Imm, len(m.Imports))
			}
		}
		if in.Op == isa.LDFN {
			if in.Imm < 0 || int(in.Imm) >= len(m.Funcs) {
				return fmt.Errorf("module %s: instruction %d references function %d of %d",
					m.Name, i, in.Imm, len(m.Funcs))
			}
		}
	}
	for _, fx := range m.DAGFixups {
		if fx >= n || m.Code[fx].Op != isa.STI4 {
			return fmt.Errorf("module %s: DAG fixup %d does not point at STI4", m.Name, fx)
		}
	}
	for _, fx := range m.TLSFixups {
		if fx >= n || (m.Code[fx].Op != isa.TLSLD && m.Code[fx].Op != isa.TLSST) {
			return fmt.Errorf("module %s: TLS fixup %d does not point at a TLS op", m.Name, fx)
		}
	}
	return nil
}

const magic = "TBMOD1\x00\x00"

// WriteTo serializes the module.
func (m *Module) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	ws := func(s string) {
		binary.Write(&buf, binary.LittleEndian, uint32(len(s)))
		buf.WriteString(s)
	}
	w32 := func(v uint32) { binary.Write(&buf, binary.LittleEndian, v) }
	ws(m.Name)
	w32(uint32(len(m.Code)))
	for _, in := range m.Code {
		b := isa.Encode(nil, in)
		buf.Write(b)
	}
	w32(uint32(len(m.Data)))
	buf.Write(m.Data)
	w32(m.BSS)
	w32(uint32(len(m.Funcs)))
	for _, f := range m.Funcs {
		ws(f.Name)
		w32(f.Entry)
		w32(f.End)
		if f.Exported {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	}
	w32(uint32(len(m.Imports)))
	for _, im := range m.Imports {
		ws(im.Module)
		ws(im.Name)
	}
	w32(uint32(len(m.Globals)))
	for _, gl := range m.Globals {
		ws(gl.Name)
		w32(gl.Off)
		w32(gl.Size)
	}
	w32(uint32(len(m.Files)))
	for _, f := range m.Files {
		ws(f)
	}
	w32(uint32(len(m.Lines)))
	for _, e := range m.Lines {
		w32(e.Index)
		w32(uint32(e.File))
		w32(e.Line)
	}
	if m.Instrumented {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	w32(m.DAGBase)
	w32(m.DAGCount)
	w32(uint32(len(m.DAGFixups)))
	for _, fx := range m.DAGFixups {
		w32(fx)
	}
	w32(uint32(len(m.TLSFixups)))
	for _, fx := range m.TLSFixups {
		w32(fx)
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// Read deserializes a module.
func Read(r io.Reader) (*Module, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("module: bad magic")
	}
	p := data[len(magic):]
	fail := func() (*Module, error) { return nil, fmt.Errorf("module: truncated") }
	r32 := func() (uint32, bool) {
		if len(p) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return v, true
	}
	rs := func() (string, bool) {
		n, ok := r32()
		if !ok || uint32(len(p)) < n {
			return "", false
		}
		s := string(p[:n])
		p = p[n:]
		return s, true
	}
	m := &Module{}
	var ok bool
	if m.Name, ok = rs(); !ok {
		return fail()
	}
	ncode, ok := r32()
	if !ok || uint64(len(p)) < uint64(ncode)*isa.Size {
		return fail()
	}
	m.Code, err = isa.DecodeAll(p[:ncode*isa.Size])
	if err != nil {
		return nil, err
	}
	p = p[ncode*isa.Size:]
	ndata, ok := r32()
	if !ok || uint32(len(p)) < ndata {
		return fail()
	}
	m.Data = append([]byte(nil), p[:ndata]...)
	p = p[ndata:]
	if m.BSS, ok = r32(); !ok {
		return fail()
	}
	nf, ok := r32()
	if !ok {
		return fail()
	}
	for i := uint32(0); i < nf; i++ {
		var f Func
		if f.Name, ok = rs(); !ok {
			return fail()
		}
		if f.Entry, ok = r32(); !ok {
			return fail()
		}
		if f.End, ok = r32(); !ok {
			return fail()
		}
		if len(p) < 1 {
			return fail()
		}
		f.Exported = p[0] != 0
		p = p[1:]
		m.Funcs = append(m.Funcs, f)
	}
	ni, ok := r32()
	if !ok {
		return fail()
	}
	for i := uint32(0); i < ni; i++ {
		var im Import
		if im.Module, ok = rs(); !ok {
			return fail()
		}
		if im.Name, ok = rs(); !ok {
			return fail()
		}
		m.Imports = append(m.Imports, im)
	}
	ng, ok := r32()
	if !ok {
		return fail()
	}
	for i := uint32(0); i < ng; i++ {
		var gl Global
		if gl.Name, ok = rs(); !ok {
			return fail()
		}
		if gl.Off, ok = r32(); !ok {
			return fail()
		}
		if gl.Size, ok = r32(); !ok {
			return fail()
		}
		m.Globals = append(m.Globals, gl)
	}
	nfl, ok := r32()
	if !ok {
		return fail()
	}
	for i := uint32(0); i < nfl; i++ {
		s, ok := rs()
		if !ok {
			return fail()
		}
		m.Files = append(m.Files, s)
	}
	nl, ok := r32()
	if !ok {
		return fail()
	}
	for i := uint32(0); i < nl; i++ {
		var e LineEntry
		if e.Index, ok = r32(); !ok {
			return fail()
		}
		f, ok := r32()
		if !ok {
			return fail()
		}
		e.File = uint16(f)
		if e.Line, ok = r32(); !ok {
			return fail()
		}
		m.Lines = append(m.Lines, e)
	}
	if len(p) < 1 {
		return fail()
	}
	m.Instrumented = p[0] != 0
	p = p[1:]
	if m.DAGBase, ok = r32(); !ok {
		return fail()
	}
	if m.DAGCount, ok = r32(); !ok {
		return fail()
	}
	nfx, ok := r32()
	if !ok {
		return fail()
	}
	for i := uint32(0); i < nfx; i++ {
		v, ok := r32()
		if !ok {
			return fail()
		}
		m.DAGFixups = append(m.DAGFixups, v)
	}
	ntx, ok := r32()
	if !ok {
		return fail()
	}
	for i := uint32(0); i < ntx; i++ {
		v, ok := r32()
		if !ok {
			return fail()
		}
		m.TLSFixups = append(m.TLSFixups, v)
	}
	return m, m.Validate()
}
