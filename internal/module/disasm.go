package module

import (
	"fmt"
	"io"

	"traceback/internal/isa"
)

// Disasm writes a human-readable listing of the module: headers,
// function boundaries, source line annotations, and one instruction
// per line. Probe sequences in instrumented modules are visible as
// the tlsld/orm4 and call/sti4 idioms.
func Disasm(w io.Writer, m *Module) {
	fmt.Fprintf(w, "module %s  (%d instructions, %d data bytes, %d bss", m.Name, len(m.Code), len(m.Data), m.BSS)
	if m.Instrumented {
		fmt.Fprintf(w, "; instrumented: %d DAGs base %d", m.DAGCount, m.DAGBase)
	}
	fmt.Fprintf(w, ")\nchecksum %s\n", m.ChecksumHex())
	if len(m.Imports) > 0 {
		fmt.Fprintf(w, "imports:\n")
		for i, im := range m.Imports {
			fmt.Fprintf(w, "  [%d] %s!%s\n", i, im.Module, im.Name)
		}
	}

	fnAt := map[uint32]Func{}
	for _, f := range m.Funcs {
		fnAt[f.Entry] = f
	}
	dagFix := map[uint32]bool{}
	for _, fx := range m.DAGFixups {
		dagFix[fx] = true
	}
	tlsFix := map[uint32]bool{}
	for _, fx := range m.TLSFixups {
		tlsFix[fx] = true
	}

	lastLine := uint32(0)
	lastFile := ""
	for i, in := range m.Code {
		if f, ok := fnAt[uint32(i)]; ok {
			exp := ""
			if f.Exported {
				exp = " (exported)"
			}
			fmt.Fprintf(w, "\n%s:%s\n", f.Name, exp)
		}
		if file, line, ok := m.LineFor(uint32(i)); ok && (line != lastLine || file != lastFile) {
			fmt.Fprintf(w, "  ; %s:%d\n", file, line)
			lastLine, lastFile = line, file
		}
		tag := ""
		if dagFix[uint32(i)] {
			tag = "   ; DAG fixup"
		} else if tlsFix[uint32(i)] {
			tag = "   ; TLS fixup"
		}
		fmt.Fprintf(w, "  %5d: %s%s\n", i, in, tag)
	}
}

// DisasmFunc writes a single function's listing.
func DisasmFunc(w io.Writer, m *Module, name string) error {
	f, ok := m.FuncByName(name)
	if !ok {
		return fmt.Errorf("module %s has no function %s", m.Name, name)
	}
	fmt.Fprintf(w, "%s: [%d,%d)\n", f.Name, f.Entry, f.End)
	for i := f.Entry; i < f.End; i++ {
		fmt.Fprintf(w, "  %5d: %s\n", i, m.Code[i])
	}
	return nil
}

var _ = isa.NOP // keep the isa import for the Instr String method
