package module

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"traceback/internal/isa"
)

func sample() *Module {
	return &Module{
		Name: "app",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 1, Imm: 7},
			{Op: isa.CALL, Imm: 3},
			{Op: isa.SYS, Imm: 1},
			{Op: isa.ADDI, A: 0, B: 1, Imm: 1},
			{Op: isa.RET},
		},
		Data:    []byte{1, 2, 3, 4},
		BSS:     16,
		Funcs:   []Func{{Name: "main", Entry: 0, End: 3, Exported: true}, {Name: "inc", Entry: 3, End: 5}},
		Imports: []Import{{Module: "lib", Name: "helper"}},
		Files:   []string{"app.mc"},
		Lines: []LineEntry{
			{Index: 0, File: 0, Line: 1},
			{Index: 1, File: 0, Line: 2},
			{Index: 3, File: 0, Line: 5},
		},
	}
}

func TestModuleRoundTrip(t *testing.T) {
	m := sample()
	m.Instrumented = true
	m.DAGBase = 100
	m.DAGCount = 2
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || len(got.Code) != len(m.Code) || got.BSS != m.BSS {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range m.Code {
		if got.Code[i] != m.Code[i] {
			t.Errorf("code[%d] = %v, want %v", i, got.Code[i], m.Code[i])
		}
	}
	if !bytes.Equal(got.Data, m.Data) {
		t.Error("data mismatch")
	}
	if len(got.Funcs) != 2 || got.Funcs[0].Name != "main" || !got.Funcs[0].Exported {
		t.Errorf("funcs = %+v", got.Funcs)
	}
	if len(got.Imports) != 1 || got.Imports[0].Name != "helper" {
		t.Errorf("imports = %+v", got.Imports)
	}
	if got.Checksum() != m.Checksum() {
		t.Error("checksum changed across serialization")
	}
	if !got.Instrumented || got.DAGBase != 100 || got.DAGCount != 2 {
		t.Errorf("instrumentation fields lost: %+v", got)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("not a module")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := sample().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must be rejected, never panic.
	for n := 0; n < len(full); n += 7 {
		if _, err := Read(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("prefix of %d bytes accepted", n)
		}
	}
}

func TestChecksumIgnoresDebugInfo(t *testing.T) {
	a, b := sample(), sample()
	b.Lines = nil
	b.Files = nil
	if a.Checksum() != b.Checksum() {
		t.Error("checksum should cover only stable content, not debug info")
	}
	b = sample()
	b.Code[0].Imm = 8
	if a.Checksum() == b.Checksum() {
		t.Error("checksum must change when code changes")
	}
}

func TestLineFor(t *testing.T) {
	m := sample()
	cases := []struct {
		idx  uint32
		line uint32
		ok   bool
	}{
		{0, 1, true},
		{1, 2, true},
		{2, 2, true},
		{3, 5, true},
		{4, 5, true},
	}
	for _, c := range cases {
		_, line, ok := m.LineFor(c.idx)
		if ok != c.ok || line != c.line {
			t.Errorf("LineFor(%d) = %d,%v want %d,%v", c.idx, line, ok, c.line, c.ok)
		}
	}
}

func TestFindFunc(t *testing.T) {
	m := sample()
	if f, ok := m.FindFunc(4); !ok || f.Name != "inc" {
		t.Errorf("FindFunc(4) = %+v, %v", f, ok)
	}
	if _, ok := m.FindFunc(99); ok {
		t.Error("FindFunc out of range succeeded")
	}
	if f, ok := m.FuncByName("main"); !ok || f.Entry != 0 {
		t.Errorf("FuncByName(main) = %+v, %v", f, ok)
	}
}

func TestValidateCatchesBadFuncRange(t *testing.T) {
	m := sample()
	m.Funcs[0].End = 99
	if err := m.Validate(); err == nil {
		t.Error("bad function range passed validation")
	}
}

func TestValidateCatchesBadBranchTarget(t *testing.T) {
	m := sample()
	m.Code[1].Imm = 1000
	if err := m.Validate(); err == nil {
		t.Error("out-of-range call target passed validation")
	}
}

func TestValidateCatchesUnsortedLines(t *testing.T) {
	m := sample()
	m.Lines[0].Index = 2
	if err := m.Validate(); err == nil {
		t.Error("unsorted line table passed validation")
	}
}

func TestMapFileRoundTrip(t *testing.T) {
	mf := &MapFile{
		ModuleName: "app",
		Checksum:   "00112233445566778899aabbccddeeff",
		DAGBase:    100,
		DAGCount:   1,
		DAGs: []MapDAG{{
			ID: 0,
			Blocks: []MapBlock{
				{Start: 0, End: 4, Bit: -1, Succs: []int{1, 2},
					Lines:     []LineSpan{{File: "a.mc", Line: 1, Start: 0, End: 4}},
					FuncEntry: "main"},
				{Start: 4, End: 6, Bit: 0, Succs: []int{2},
					Lines: []LineSpan{{File: "a.mc", Line: 2, Start: 4, End: 6}}},
				{Start: 6, End: 8, Bit: 1, FuncExit: true,
					Lines: []LineSpan{{File: "a.mc", Line: 3, Start: 6, End: 8}}},
			},
		}},
	}
	var buf bytes.Buffer
	if err := mf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMapFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ModuleName != "app" || got.DAGCount != 1 || len(got.DAGs) != 1 {
		t.Fatalf("got %+v", got)
	}
	d, ok := got.DAGByID(0)
	if !ok || len(d.Blocks) != 3 {
		t.Fatalf("DAGByID(0) = %+v, %v", d, ok)
	}
	if d.Blocks[0].FuncEntry != "main" || !d.Blocks[2].FuncExit {
		t.Error("annotations lost")
	}
}

func TestMapFileValidateRejectsDuplicateBits(t *testing.T) {
	mf := &MapFile{
		ModuleName: "x", DAGCount: 1,
		DAGs: []MapDAG{{Blocks: []MapBlock{
			{Start: 0, End: 1, Bit: 0},
			{Start: 1, End: 2, Bit: 0},
		}}},
	}
	if err := mf.Validate(); err == nil {
		t.Error("duplicate bit assignment passed validation")
	}
}

func TestMapFileValidateRejectsBadSuccessor(t *testing.T) {
	mf := &MapFile{
		ModuleName: "x", DAGCount: 1,
		DAGs: []MapDAG{{Blocks: []MapBlock{
			{Start: 0, End: 1, Bit: -1, Succs: []int{5}},
		}}},
	}
	if err := mf.Validate(); err == nil {
		t.Error("dangling successor passed validation")
	}
}

// validMap builds a minimal mapfile that passes Validate, for the
// rejection tests to mutate.
func validMap() *MapFile {
	return &MapFile{
		ModuleName: "x", DAGCount: 2,
		DAGs: []MapDAG{
			{ID: 0, Blocks: []MapBlock{
				{Start: 0, End: 2, Bit: -1, Succs: []int{1}},
				{Start: 2, End: 4, Bit: 0},
			}},
			{ID: 1, Blocks: []MapBlock{
				{Start: 4, End: 6, Bit: -1},
			}},
		},
	}
}

func TestMapFileValidateRejectsDuplicateDAGIDs(t *testing.T) {
	mf := validMap()
	if err := mf.Validate(); err != nil {
		t.Fatalf("base map invalid: %v", err)
	}
	mf.DAGs[1].ID = 0
	if err := mf.Validate(); err == nil {
		t.Error("duplicate DAG IDs passed validation")
	}
}

func TestMapFileValidateRejectsOutOfRangeDAGID(t *testing.T) {
	mf := validMap()
	mf.DAGs[1].ID = 7 // >= DAGCount
	if err := mf.Validate(); err == nil {
		t.Error("DAG ID beyond DAGCount passed validation")
	}
}

func TestMapFileValidateRejectsSelfSuccessor(t *testing.T) {
	mf := validMap()
	mf.DAGs[0].Blocks[1].Succs = []int{1}
	if err := mf.Validate(); err == nil {
		t.Error("self-edge successor passed validation")
	}
}

func TestMapFileValidateRejectsDuplicateSuccessor(t *testing.T) {
	mf := validMap()
	mf.DAGs[0].Blocks[0].Succs = []int{1, 1}
	if err := mf.Validate(); err == nil {
		t.Error("duplicate successor passed validation")
	}
}

func TestMapFileValidateRejectsOversizedBit(t *testing.T) {
	mf := validMap()
	mf.DAGs[0].Blocks[1].Bit = 10 // == trace.NumPathBits, one past the last slot
	if err := mf.Validate(); err == nil {
		t.Error("bit beyond the record's path-bit capacity passed validation")
	}
}

func TestMapFileValidateRejectsEscapingLineSpan(t *testing.T) {
	mf := validMap()
	mf.DAGs[0].Blocks[0].Lines = []LineSpan{{File: "a.mc", Line: 1, Start: 1, End: 3}}
	if err := mf.Validate(); err == nil {
		t.Error("line span extending past its block passed validation")
	}
	mf.DAGs[0].Blocks[0].Lines = []LineSpan{{File: "a.mc", Line: 1, Start: 1, End: 1}}
	if err := mf.Validate(); err == nil {
		t.Error("empty line span passed validation")
	}
}

func TestDAGBaseFileRoundTrip(t *testing.T) {
	d := &DAGBaseFile{Bases: map[string]uint32{"app": 0, "lib": 4096}}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDAGBases(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bases["lib"] != 4096 {
		t.Errorf("bases = %v", got.Bases)
	}
}

// Property: serialization round-trips arbitrary (valid) modules.
func TestModuleRoundTripQuick(t *testing.T) {
	f := func(name string, data []byte, bss uint32, nops uint8) bool {
		m := &Module{Name: name, Data: data, BSS: bss % 4096}
		for i := 0; i < int(nops%32)+1; i++ {
			m.Code = append(m.Code, isa.Instr{Op: isa.NOP})
		}
		m.Funcs = []Func{{Name: "f", Entry: 0, End: uint32(len(m.Code))}}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return got.Name == m.Name && bytes.Equal(got.Data, m.Data) &&
			got.BSS == m.BSS && len(got.Code) == len(m.Code) &&
			got.Checksum() == m.Checksum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalsRoundTrip(t *testing.T) {
	m := sample()
	m.Globals = []Global{{Name: "counter", Off: 0, Size: 1}, {Name: "table", Off: 8, Size: 16}}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Globals) != 2 || got.Globals[1].Name != "table" || got.Globals[1].Size != 16 {
		t.Errorf("globals = %+v", got.Globals)
	}
}

func TestDisasmOutput(t *testing.T) {
	m := sample()
	var buf bytes.Buffer
	Disasm(&buf, m)
	out := buf.String()
	for _, want := range []string{"module app", "main:", "inc:", "app.mc:1", "call @3"} {
		if !strings.Contains(out, want) {
			t.Errorf("disasm missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := DisasmFunc(&buf, m, "inc"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "addi") {
		t.Errorf("func disasm: %s", buf.String())
	}
	if err := DisasmFunc(&buf, m, "nope"); err == nil {
		t.Error("missing function accepted")
	}
}
