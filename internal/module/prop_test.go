package module

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"traceback/internal/isa"
)

// genModule builds a random module that satisfies Validate: code from
// target-free ops plus valid CALX/LDFN/STI4/TLS uses, sorted line
// table, in-range functions and fixups.
func genModule(rng *rand.Rand) *Module {
	m := &Module{Name: fmt.Sprintf("m%d", rng.Intn(1000))}
	n := 4 + rng.Intn(60)
	var sti4s, tlsOps []uint32
	for i := 0; i < n; i++ {
		var in isa.Instr
		switch rng.Intn(8) {
		case 0:
			in = isa.Instr{Op: isa.NOP}
		case 1:
			in = isa.Instr{Op: isa.MOVI, A: uint8(rng.Intn(16)), Imm: int32(rng.Uint32())}
		case 2:
			in = isa.Instr{Op: isa.ADD, A: uint8(rng.Intn(16)), B: uint8(rng.Intn(16)), C: uint8(rng.Intn(16))}
		case 3:
			in = isa.Instr{Op: isa.ADDI, A: uint8(rng.Intn(16)), B: uint8(rng.Intn(16)), Imm: int32(rng.Int31()) - 1<<30}
		case 4:
			in = isa.Instr{Op: isa.LD, A: uint8(rng.Intn(16)), B: uint8(rng.Intn(16))}
		case 5:
			in = isa.Instr{Op: isa.ST, A: uint8(rng.Intn(16)), B: uint8(rng.Intn(16))}
		case 6:
			in = isa.Instr{Op: isa.STI4, A: uint8(rng.Intn(16)), Imm: int32(rng.Uint32())}
			sti4s = append(sti4s, uint32(i))
		case 7:
			in = isa.Instr{Op: isa.TLSLD, A: uint8(rng.Intn(16)), C: uint8(rng.Intn(isa.NumTLSSlots))}
			tlsOps = append(tlsOps, uint32(i))
		}
		m.Code = append(m.Code, in)
	}
	m.Data = make([]byte, rng.Intn(64))
	rng.Read(m.Data)
	m.BSS = uint32(rng.Intn(1024))
	for i, nf := 0, rng.Intn(5); i < nf; i++ {
		entry := uint32(rng.Intn(n))
		end := entry + 1 + uint32(rng.Intn(n-int(entry)))
		m.Funcs = append(m.Funcs, Func{
			Name: fmt.Sprintf("f%d", i), Entry: entry, End: end,
			Exported: rng.Intn(2) == 0,
		})
	}
	for i, ni := 0, rng.Intn(4); i < ni; i++ {
		m.Imports = append(m.Imports, Import{Module: "", Name: fmt.Sprintf("imp%d", i)})
	}
	for i, ng := 0, rng.Intn(4); i < ng; i++ {
		m.Globals = append(m.Globals, Global{
			Name: fmt.Sprintf("g%d", i), Off: rng.Uint32() % 256, Size: 1 + rng.Uint32()%8,
		})
	}
	for i, nfl := 0, 1+rng.Intn(3); i < nfl; i++ {
		m.Files = append(m.Files, fmt.Sprintf("src%d.mc", i))
	}
	idx := uint32(0)
	for idx < uint32(n) && rng.Intn(4) != 0 {
		m.Lines = append(m.Lines, LineEntry{
			Index: idx, File: uint16(rng.Intn(len(m.Files))), Line: 1 + rng.Uint32()%500,
		})
		idx += 1 + uint32(rng.Intn(4))
	}
	m.Instrumented = rng.Intn(2) == 0
	m.DAGBase = rng.Uint32() % (1 << 20)
	m.DAGCount = rng.Uint32() % 128
	for _, fx := range sti4s {
		if rng.Intn(2) == 0 {
			m.DAGFixups = append(m.DAGFixups, fx)
		}
	}
	for _, fx := range tlsOps {
		if rng.Intn(2) == 0 {
			m.TLSFixups = append(m.TLSFixups, fx)
		}
	}
	return m
}

// TestModuleSerializeRoundTripProperty: for randomized modules,
// serialize→deserialize→checksum is a fixed point — the reloaded
// module re-serializes to the identical byte stream and carries the
// identical checksum. The checksum is the key that ties snaps to
// mapfiles (paper §2.3), so any serialization drift would silently
// orphan archived traces from their instrumentation output.
func TestModuleSerializeRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		m := genModule(rng)
		if err := m.Validate(); err != nil {
			t.Fatalf("iter %d: generated module invalid: %v", iter, err)
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatalf("iter %d: write: %v", iter, err)
		}
		first := append([]byte(nil), buf.Bytes()...)

		m2, err := Read(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("iter %d: read back: %v", iter, err)
		}
		if m.ChecksumHex() != m2.ChecksumHex() {
			t.Fatalf("iter %d: checksum drift: %s vs %s", iter, m.ChecksumHex(), m2.ChecksumHex())
		}
		var buf2 bytes.Buffer
		if _, err := m2.WriteTo(&buf2); err != nil {
			t.Fatalf("iter %d: rewrite: %v", iter, err)
		}
		if !bytes.Equal(first, buf2.Bytes()) {
			t.Fatalf("iter %d: serialization not a fixed point (%d vs %d bytes)",
				iter, len(first), len(buf2.Bytes()))
		}
		// Field-level equality, modulo nil-vs-empty slices that the
		// byte comparison above already proves equivalent.
		m.Data = append([]byte(nil), m.Data...)
		if len(m.Data) == 0 {
			m.Data = m2.Data
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("iter %d: reloaded module differs:\n%+v\nvs\n%+v", iter, m, m2)
		}
	}
}
