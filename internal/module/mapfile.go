package module

import (
	"encoding/json"
	"fmt"
	"io"

	"traceback/internal/trace"
)

// CallKind classifies the call ending a mapfile block.
type CallKind uint8

const (
	CallNone     CallKind = iota
	CallDirect            // CALL: intra-module direct call
	CallImport            // CALX: cross-module call through the import table
	CallIndirect          // CALR: call through a register
)

func (k CallKind) String() string {
	switch k {
	case CallNone:
		return "none"
	case CallDirect:
		return "direct"
	case CallImport:
		return "import"
	case CallIndirect:
		return "indirect"
	}
	return fmt.Sprintf("callkind(%d)", uint8(k))
}

// LineSpan maps the instrumented-code instruction range [Start, End)
// within a block to one source line. Exception addresses are trimmed
// against these spans during reconstruction.
type LineSpan struct {
	File  string `json:"file"`
	Line  uint32 `json:"line"`
	Start uint32 `json:"start"`
	End   uint32 `json:"end"`
}

// MapBlock describes one basic block of an instrumented module as the
// reconstruction phase needs to see it.
type MapBlock struct {
	Start uint32 `json:"start"` // instrumented-code instruction index
	End   uint32 `json:"end"`   // exclusive
	// Bit is the lightweight-probe bit assigned to this block within
	// its DAG record, or -1 if the block needs no probe (its execution
	// is implied by a predecessor's).
	Bit int8 `json:"bit"`
	// Succs lists in-DAG successors as indexes into the DAG's Blocks.
	Succs []int `json:"succs,omitempty"`
	// Lines are the source lines the block covers, in execution order.
	Lines []LineSpan `json:"lines,omitempty"`

	// Annotations used by the call-hierarchy display (paper §4.3.1).
	Call       CallKind `json:"call,omitempty"`
	CallTarget string   `json:"callTarget,omitempty"`
	FuncEntry  string   `json:"funcEntry,omitempty"`  // function name if this block is its entry
	FuncExit   bool     `json:"funcExit,omitempty"`   // block ends in RET
	CallReturn bool     `json:"callReturn,omitempty"` // block is a call's return point
}

// MapDAG is one DAG of the tiling: Blocks[0] is the header (the block
// holding the heavyweight probe).
type MapDAG struct {
	ID     uint32     `json:"id"` // module-relative DAG ID
	Blocks []MapBlock `json:"blocks"`
}

// MapFile is the instrumentation-time sidecar that reconstruction
// combines with trace data. It carries the module checksum so traces
// and mapfiles can be matched reliably (paper §2.3).
type MapFile struct {
	ModuleName string   `json:"module"`
	Checksum   string   `json:"checksum"` // hex MD5
	DAGBase    uint32   `json:"dagBase"`  // default base at instrumentation time
	DAGCount   uint32   `json:"dagCount"`
	DAGs       []MapDAG `json:"dags"`
	// Managed marks intermediate-code (bytecode) instrumentation
	// (paper §2.4): lightweight probes sit at source line boundaries
	// rather than on CFG blocks, so path expansion takes every marked
	// block in bit order instead of walking successor edges.
	Managed bool `json:"managed,omitempty"`
	// Globals lets the snap variables view resolve data-segment
	// symbols (the paper's memory/object dump display, §3.6).
	Globals []Global `json:"globals,omitempty"`
}

// DAGByID returns the DAG with module-relative id.
func (mf *MapFile) DAGByID(id uint32) (*MapDAG, bool) {
	if id < uint32(len(mf.DAGs)) && mf.DAGs[id].ID == id {
		return &mf.DAGs[id], true
	}
	for i := range mf.DAGs {
		if mf.DAGs[i].ID == id {
			return &mf.DAGs[i], true
		}
	}
	return nil, false
}

// Validate checks mapfile invariants: DAGCount matches the DAG list,
// DAG IDs are unique and in-range for the module, path bits fit the
// record format and are unique per DAG, successor references resolve
// to real blocks without self edges or duplicates, and line spans stay
// inside their block's instruction range. Deeper semantic checks (map
// edges vs the real CFG, probe placement) belong to internal/verify.
func (mf *MapFile) Validate() error {
	if uint32(len(mf.DAGs)) != mf.DAGCount {
		return fmt.Errorf("mapfile %s: %d DAGs but DAGCount=%d",
			mf.ModuleName, len(mf.DAGs), mf.DAGCount)
	}
	byID := make(map[uint32]int, len(mf.DAGs))
	for i, d := range mf.DAGs {
		if d.ID >= mf.DAGCount {
			return fmt.Errorf("mapfile %s: DAG %d has ID %d out of range [0,%d)",
				mf.ModuleName, i, d.ID, mf.DAGCount)
		}
		if prev, dup := byID[d.ID]; dup {
			return fmt.Errorf("mapfile %s: DAGs %d and %d share ID %d",
				mf.ModuleName, prev, i, d.ID)
		}
		byID[d.ID] = i
		if len(d.Blocks) == 0 {
			return fmt.Errorf("mapfile %s: DAG %d has no blocks", mf.ModuleName, i)
		}
		seen := map[int8]int{}
		for bi, b := range d.Blocks {
			if b.Start >= b.End {
				return fmt.Errorf("mapfile %s: DAG %d block %d empty range [%d,%d)",
					mf.ModuleName, i, bi, b.Start, b.End)
			}
			if b.Bit >= trace.NumPathBits {
				return fmt.Errorf("mapfile %s: DAG %d block %d bit %d exceeds record capacity (%d path bits)",
					mf.ModuleName, i, bi, b.Bit, trace.NumPathBits)
			}
			if b.Bit >= 0 {
				if prev, dup := seen[b.Bit]; dup {
					return fmt.Errorf("mapfile %s: DAG %d: blocks %d and %d share bit %d",
						mf.ModuleName, i, prev, bi, b.Bit)
				}
				seen[b.Bit] = bi
			}
			succSeen := map[int]bool{}
			for _, s := range b.Succs {
				if s < 0 || s >= len(d.Blocks) {
					return fmt.Errorf("mapfile %s: DAG %d block %d bad successor %d",
						mf.ModuleName, i, bi, s)
				}
				if s == bi {
					return fmt.Errorf("mapfile %s: DAG %d block %d lists itself as successor",
						mf.ModuleName, i, bi)
				}
				if succSeen[s] {
					return fmt.Errorf("mapfile %s: DAG %d block %d lists successor %d twice",
						mf.ModuleName, i, bi, s)
				}
				succSeen[s] = true
			}
			for si, sp := range b.Lines {
				if sp.Start >= sp.End || sp.Start < b.Start || sp.End > b.End {
					return fmt.Errorf("mapfile %s: DAG %d block %d line span %d [%d,%d) outside block [%d,%d)",
						mf.ModuleName, i, bi, si, sp.Start, sp.End, b.Start, b.End)
				}
			}
		}
	}
	return nil
}

// Save writes the mapfile as JSON.
func (mf *MapFile) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(mf)
}

// LoadMapFile reads a JSON mapfile.
func LoadMapFile(r io.Reader) (*MapFile, error) {
	var mf MapFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("mapfile: %w", err)
	}
	return &mf, mf.Validate()
}

// DAGBaseFile assigns fixed DAG ID bases to module names so that
// modules built from the same source tree never collide and never
// need load-time rebasing (paper §2.3).
type DAGBaseFile struct {
	Bases map[string]uint32 `json:"bases"`
}

// SaveDAGBases writes the base file as JSON.
func (d *DAGBaseFile) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// LoadDAGBases reads a DAG base file.
func LoadDAGBases(r io.Reader) (*DAGBaseFile, error) {
	var d DAGBaseFile
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("dag base file: %w", err)
	}
	return &d, nil
}
