// Shard-aware upload routing: the agent side of the multi-node
// warehouse. Placement needs no coordination — the agent already
// computed the snap's SHA-256 for the spool name and the wire
// protocol, and the first 32 bits of that sum index the shard ring
// (internal/shard). The failover policy is deliberately minimal:
// probe every shard's /healthz once per pass, send each snap to the
// first live shard in ring order from its home, and when nothing is
// live fall back to the spool-and-retry behavior the agent already
// has for a single unreachable daemon. A draining shard (503) counts
// as down so restarts and planned drains redirect rather than bounce.
//
// Failover can land content off its home shard; the warehouse merge
// (internal/shard) dedups by content address, so the fleet view loses
// nothing — the redirect just costs the byte-placement invariant
// until the blob is re-homed, which is why it is counted
// (coll_agent_failover_total) and flight-recorded.
package collect

import (
	"context"
	"fmt"
	"net/http"
)

// targetFor picks the daemon base URL for one snap: its ring home
// when that shard is live, otherwise the next live shard in ring
// order (counted and flight-recorded as a failover). With every shard
// down it errors, and the caller leaves the snap spooled.
func (a *Agent) targetFor(sum string) (string, error) {
	if a.ring == nil {
		return a.servers[0], nil
	}
	home, err := a.ring.Place(sum)
	if err != nil {
		return "", err
	}
	up := a.healthSnapshot()
	n := len(a.servers)
	for i := 0; i < n; i++ {
		s := (home + i) % n
		if s < len(up) && up[s] {
			if s != home {
				a.met.failovers.Inc()
				a.rec.Record(0, "coll-agent-failover",
					fmt.Sprintf("%s: shard %d -> %d", sum[:12], home, s))
			}
			return a.servers[s], nil
		}
	}
	return "", fmt.Errorf("collect: no live shard for %s (home %d of %d)", sum[:12], home, n)
}

// refreshHealth probes every shard's /healthz once, caching liveness
// for the pass. Single-server agents skip this — their liveness check
// is the upload attempt itself, and probing would double every test's
// request count for nothing.
func (a *Agent) refreshHealth(ctx context.Context) {
	if a.ring == nil {
		return
	}
	up := make([]bool, len(a.servers))
	for i, base := range a.servers {
		up[i] = a.probeHealth(ctx, base)
	}
	a.healthMu.Lock()
	a.health = up
	a.healthMu.Unlock()
}

func (a *Agent) healthSnapshot() []bool {
	a.healthMu.Lock()
	defer a.healthMu.Unlock()
	return a.health
}

// probeHealth reports whether a shard should receive uploads: only a
// 200 /healthz counts. Draining daemons answer 503 — alive, but
// telling the fleet to go elsewhere.
func (a *Agent) probeHealth(ctx context.Context, base string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+PathHealth, nil)
	if err != nil {
		return false
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
