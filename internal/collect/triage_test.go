package collect

import (
	"encoding/json"
	"net/http"
	"testing"

	"traceback/internal/archive"
	"traceback/internal/triage"
)

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestHealthzTotals: /healthz carries uptime and the warehouse totals
// alongside the drain state.
func TestHealthzTotals(t *testing.T) {
	srv, ts, _ := newTestDaemon(t, ServerOptions{})
	for i := 0; i < 3; i++ {
		if code, _ := upload(t, ts.URL, mkSnap("h", i)); code != http.StatusCreated {
			t.Fatalf("upload %d: status %d", i, code)
		}
	}
	var hr HealthResponse
	if code := getJSON(t, ts.URL+PathHealth, &hr); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if hr.State != HealthOK {
		t.Errorf("state = %q, want ok", hr.State)
	}
	if hr.Blobs != 3 || hr.Buckets != 3 {
		t.Errorf("totals = %d buckets / %d blobs, want 3 / 3", hr.Buckets, hr.Blobs)
	}
	if hr.StoredBytes <= 0 {
		t.Errorf("storedBytes = %d, want > 0", hr.StoredBytes)
	}
	if hr.UptimeSec < 0 {
		t.Errorf("uptimeSec = %d, want >= 0", hr.UptimeSec)
	}
	_ = srv
}

// TestRegressionsEndpointTwoPhase: the acceptance property on the
// wire path — a signature uploaded only in the newest rate window is
// flagged by GET /v1/regressions while a signature present in every
// window stays steady.
func TestRegressionsEndpointTwoPhase(t *testing.T) {
	_, ts, _ := newTestDaemon(t, ServerOptions{})
	W := archive.WindowWidth

	// Steady traffic: one signature, one distinct snap per window 0..9
	// (Time participates in the content address but not the weak
	// signature, so each upload journals a fresh occurrence of the
	// same bucket).
	steady := mkSnap("h", 1)
	steadySig := archive.SignSnap(steady, nil).ID
	for win := uint64(0); win < 10; win++ {
		s := mkSnap("h", 1)
		s.Time = win*W + 10
		if code, _ := upload(t, ts.URL, s); code != http.StatusCreated {
			t.Fatalf("steady upload at window %d: status %d", win, code)
		}
	}
	// The regression: a different signature, newest window only.
	inj := mkSnap("h", 2)
	inj.Time = 9*W + 20
	injSig := archive.SignSnap(inj, nil).ID
	if code, _ := upload(t, ts.URL, inj); code != http.StatusCreated {
		t.Fatalf("injected upload: status %d", code)
	}

	var rep triage.Report
	if code := getJSON(t, ts.URL+PathRegressions, &rep); code != http.StatusOK {
		t.Fatalf("regressions status %d", code)
	}
	classes := map[string]triage.Class{}
	for _, a := range rep.Assessments {
		classes[a.Sig] = a.Class
	}
	if got := classes[injSig]; got != triage.ClassNew {
		t.Errorf("injected signature %s = %q, want new", injSig, got)
	}
	if got := classes[steadySig]; got.Flagged() {
		t.Errorf("steady signature %s flagged %q", steadySig, got)
	}

	// The rates view resolves a prefix and returns the full histogram.
	var rr triage.RateReport
	if code := getJSON(t, ts.URL+PathRates+"?sig="+steadySig[:6], &rr); code != http.StatusOK {
		t.Fatalf("rates status %d", code)
	}
	if len(rr.Windows) != 10 || rr.Assessment.Sig != steadySig {
		t.Errorf("rates = %d windows for %s, want 10 for %s", len(rr.Windows), rr.Assessment.Sig, steadySig)
	}
	if code := getJSON(t, ts.URL+PathRates+"?sig=ffffffffffffffff", &rr); code != http.StatusNotFound {
		t.Errorf("unknown sig: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+PathRates, &rr); code != http.StatusBadRequest {
		t.Errorf("missing sig param: status %d, want 400", code)
	}

	// Clusters: weak buckets (no maps on this daemon) come back as
	// unclustered singletons rather than disappearing.
	var cr triage.ClusterReport
	if code := getJSON(t, ts.URL+PathClusters, &cr); code != http.StatusOK {
		t.Fatalf("clusters status %d", code)
	}
	if len(cr.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2 singletons", len(cr.Clusters))
	}
	for _, c := range cr.Clusters {
		if !c.Unclustered {
			t.Errorf("weak bucket %s not marked unclustered", c.Lead)
		}
	}
}
