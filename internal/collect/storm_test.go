package collect

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"traceback/internal/archive"
)

// TestUploadStormSameSnap: N agents on N machines race to upload the
// same crash (the fleet-wide-outage shape). Exactly one blob and one
// journal entry land, and the bucket counts the content once — the
// warehouse's idempotency holds under the wire protocol, not just the
// local API.
func TestUploadStormSameSnap(t *testing.T) {
	const agents = 8
	// A small inflight bound so the storm also exercises 429 + retry.
	_, ts, arch := newTestDaemon(t, ServerOptions{MaxInflight: 2})

	var wg sync.WaitGroup
	errs := make([]error, agents)
	for i := 0; i < agents; i++ {
		spool := t.TempDir()
		mustSpool(t, spool, 7) // every machine saw the same crash
		ag := fastAgent(spool, ts.URL)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = ag.Drain(t.Context())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}

	if got := arch.NumBlobs(); got != 1 {
		t.Errorf("storm stored %d blob(s), want exactly 1", got)
	}
	if got := journalLen(t, arch); got != 1 {
		t.Errorf("storm journaled %d record(s), want exactly 1", got)
	}
	buckets := arch.Buckets()
	if len(buckets) != 1 || buckets[0].Count != 1 {
		t.Errorf("storm buckets = %+v, want one bucket counting the content once", buckets)
	}
}

// TestLoopbackIndexParity: a fleet of distinct snaps pushed through
// the full agent→daemon path must produce an index byte-identical to
// a direct local ingest of the same snaps — at every ingest
// concurrency bound, with uploads arriving in arbitrary order from
// racing agents, and with the journal reduction agreeing too.
func TestLoopbackIndexParity(t *testing.T) {
	const fleet = 24

	// The baseline: one direct local ingest per snap, in order.
	direct, err := archive.Open(filepath.Join(t.TempDir(), "direct"))
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	for i := 0; i < fleet; i++ {
		s := mkSnap(fmt.Sprintf("m%02d", i%4), i)
		if _, err := direct.Ingest(s, archive.SignSnap(s, nil)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := direct.IndexBytes()
	if err != nil {
		t.Fatal(err)
	}

	for _, inflight := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("inflight=%d", inflight), func(t *testing.T) {
			_, ts, arch := newTestDaemon(t, ServerOptions{MaxInflight: inflight})

			// Four racing agents split the fleet, so uploads interleave
			// in an order no local ingest would produce.
			var wg sync.WaitGroup
			errs := make([]error, 4)
			for a := 0; a < 4; a++ {
				spool := t.TempDir()
				for i := a; i < fleet; i += 4 {
					if _, err := Spool(spool, mkSnap(fmt.Sprintf("m%02d", i%4), i)); err != nil {
						t.Fatal(err)
					}
				}
				ag := fastAgent(spool, ts.URL)
				wg.Add(1)
				go func(a int) {
					defer wg.Done()
					errs[a] = ag.Drain(t.Context())
				}(a)
			}
			wg.Wait()
			for a, err := range errs {
				if err != nil {
					t.Fatalf("agent %d: %v", a, err)
				}
			}

			got, err := arch.IndexBytes()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("index after agent→daemon upload differs from direct ingest\n got: %s\nwant: %s", got, want)
			}
			rebuilt, err := arch.RebuildIndexBytes()
			if err != nil {
				t.Fatal(err)
			}
			if string(rebuilt) != string(got) {
				t.Error("journal-rebuilt index differs from the live index")
			}
			if arch.NumBlobs() != fleet || journalLen(t, arch) != fleet {
				t.Errorf("store holds %d blob(s), %d record(s), want %d/%d",
					arch.NumBlobs(), journalLen(t, arch), fleet, fleet)
			}
		})
	}
}
