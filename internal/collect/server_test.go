package collect

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"traceback/internal/archive"
	"traceback/internal/snap"
)

// mkSnap builds a distinct synthetic snap; the same (host, n) always
// yields byte-identical content, so dedup is testable end to end.
func mkSnap(host string, n int) *snap.Snap {
	return &snap.Snap{
		Host: host, Process: "app", PID: 100 + n, RuntimeID: uint64(n),
		Reason: "exception SIGSEGV", Signal: 11, Time: uint64(1000 * (n + 1)),
		Modules: []snap.ModuleInfo{{Name: "app", Checksum: fmt.Sprintf("c%02d", n), DAGCount: 1}},
		Buffers: []snap.BufferDump{{Kind: snap.BufMain, OwnerTID: 1, LastKnown: true,
			SubWords: 4, Raw: []byte{byte(n), 0, 0, 0}}},
	}
}

// newTestDaemon opens a fresh archive and fronts it with a Server
// behind httptest; Close the returned ts, the archive closes with the
// test's cleanup.
func newTestDaemon(t *testing.T, opts ServerOptions) (*Server, *httptest.Server, *archive.Archive) {
	t.Helper()
	arch, err := archive.Open(filepath.Join(t.TempDir(), "wh"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { arch.Close() })
	srv := NewServer(arch, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, arch
}

// upload POSTs a snap the way the agent does (gzip body + claimed
// sum) and returns the status and decoded response.
func upload(t *testing.T, base string, s *snap.Snap) (int, UploadResponse) {
	t.Helper()
	sum, _, err := archive.ChecksumSnap(s)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := s.SaveCompressed(&body); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+PathSnap, &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderSum, sum)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ur UploadResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
			t.Fatalf("decoding upload response: %v", err)
		}
	}
	return resp.StatusCode, ur
}

func journalLen(t *testing.T, arch *archive.Archive) int {
	t.Helper()
	f, err := os.Open(filepath.Join(arch.Root(), "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := archive.DecodeJournal(f)
	if err != nil {
		t.Fatal(err)
	}
	return len(recs)
}

func metricValue(t *testing.T, base, name string) int {
	t.Helper()
	resp, err := http.Get(base + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v int
			if _, err := fmt.Sscanf(line, name+" %d", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed on /metrics:\n%s", name, b)
	return 0
}

func TestUploadPrecheckLifecycle(t *testing.T) {
	_, ts, arch := newTestDaemon(t, ServerOptions{})
	s := mkSnap("h1", 1)
	sum, _, err := archive.ChecksumSnap(s)
	if err != nil {
		t.Fatal(err)
	}

	// Precheck before upload: not stored.
	resp, err := http.Head(ts.URL + PathBlobPrefix + sum)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("precheck before upload: %s, want 404", resp.Status)
	}

	// First upload stores and echoes the hash.
	status, ur := upload(t, ts.URL, s)
	if status != http.StatusCreated {
		t.Fatalf("first upload: status %d, want 201", status)
	}
	if ur.Sum != sum || ur.Dup || !ur.NewBucket || ur.Sig == "" {
		t.Fatalf("first upload response: %+v", ur)
	}

	// Precheck after upload: stored.
	resp, err = http.Head(ts.URL + PathBlobPrefix + sum)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("precheck after upload: %s, want 200", resp.Status)
	}

	// Replay is an idempotent no-op: 200, Dup, no second journal entry.
	status, ur = upload(t, ts.URL, s)
	if status != http.StatusOK || !ur.Dup || ur.Sum != sum {
		t.Fatalf("replay: status %d, response %+v", status, ur)
	}
	if n := journalLen(t, arch); n != 1 {
		t.Errorf("journal holds %d record(s) after replay, want 1", n)
	}

	// Triage queries see the bucket.
	var top TopResponse
	r2, err := http.Get(ts.URL + PathTop + "?n=5")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r2.Body).Decode(&top); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if len(top.Buckets) != 1 || top.Buckets[0].Count != 1 {
		t.Errorf("top = %+v, want one bucket with count 1", top.Buckets)
	}

	// coll_* telemetry is live on /metrics.
	if v := metricValue(t, ts.URL, "coll_uploads_total"); v != 1 {
		t.Errorf("coll_uploads_total = %d, want 1", v)
	}
	if v := metricValue(t, ts.URL, "coll_upload_dups_total"); v != 1 {
		t.Errorf("coll_upload_dups_total = %d, want 1", v)
	}
	if v := metricValue(t, ts.URL, "coll_precheck_misses_total"); v != 1 {
		t.Errorf("coll_precheck_misses_total = %d, want 1", v)
	}
	if v := metricValue(t, ts.URL, "coll_precheck_hits_total"); v != 1 {
		t.Errorf("coll_precheck_hits_total = %d, want 1", v)
	}

	// healthz answers while serving.
	hr, err := http.Get(ts.URL + PathHealth)
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz: %s", hr.Status)
	}
}

func TestUploadHashMismatchRejected(t *testing.T) {
	_, ts, arch := newTestDaemon(t, ServerOptions{})
	s := mkSnap("h1", 1)
	var body bytes.Buffer
	if err := s.SaveCompressed(&body); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+PathSnap, &body)
	req.Header.Set(HeaderSum, strings.Repeat("ab", 32))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	if arch.NumBlobs() != 0 || journalLen(t, arch) != 0 {
		t.Error("mismatched upload reached the archive")
	}
	if v := metricValue(t, ts.URL, "coll_upload_errors_total"); v != 1 {
		t.Errorf("coll_upload_errors_total = %d, want 1", v)
	}
}

func TestUploadGarbageRejected(t *testing.T) {
	_, ts, arch := newTestDaemon(t, ServerOptions{})
	resp, err := http.Post(ts.URL+PathSnap, "application/gzip", strings.NewReader("not a snap"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if arch.NumBlobs() != 0 {
		t.Error("garbage reached the archive")
	}
}

func TestPrecheckBadSumRejected(t *testing.T) {
	_, ts, _ := newTestDaemon(t, ServerOptions{})
	for _, sum := range []string{"zz", strings.Repeat("g", 64), strings.Repeat("AB", 32)} {
		resp, err := http.Head(ts.URL + PathBlobPrefix + sum)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("precheck %q: status %d, want 400", sum, resp.StatusCode)
		}
	}
}

// TestBackpressure429: with one ingest slot held, a concurrent upload
// is rejected 429 with a Retry-After hint instead of queueing.
func TestBackpressure429(t *testing.T) {
	srv, ts, _ := newTestDaemon(t, ServerOptions{MaxInflight: 1})
	hold := make(chan struct{})
	entered := make(chan struct{}, 8)
	srv.ingestGate = func() {
		entered <- struct{}{}
		<-hold
	}

	done := make(chan int, 1)
	go func() {
		status, _ := upload(t, ts.URL, mkSnap("h1", 1))
		done <- status
	}()
	<-entered // the slot is now held mid-ingest

	srv.ingestGate = nil // the rejected path never reaches the gate; keep later calls unguarded
	status, _ := upload(t, ts.URL, mkSnap("h2", 2))
	if status != http.StatusTooManyRequests {
		t.Fatalf("concurrent upload: status %d, want 429", status)
	}
	close(hold)
	if s := <-done; s != http.StatusCreated {
		t.Fatalf("held upload: status %d, want 201", s)
	}
	if v := metricValue(t, ts.URL, "coll_backpressure_total"); v != 1 {
		t.Errorf("coll_backpressure_total = %d, want 1", v)
	}

	// The rejected snap goes through fine once capacity frees up.
	if status, _ := upload(t, ts.URL, mkSnap("h2", 2)); status != http.StatusCreated {
		t.Fatalf("retry after backpressure: status %d, want 201", status)
	}
}

// TestGracefulDrain: Shutdown lets the in-flight ingest finish (its
// journal entry lands) and only then stops the listener.
func TestGracefulDrain(t *testing.T) {
	arch, err := archive.Open(filepath.Join(t.TempDir(), "wh"))
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	srv := NewServer(arch, ServerOptions{})
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.ingestGate = func() {
		entered <- struct{}{}
		<-hold
	}

	l, err := newLoopback()
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l.Listener) }()

	var wg sync.WaitGroup
	wg.Add(1)
	var status int
	go func() {
		defer wg.Done()
		status, _ = upload(t, l.URL(), mkSnap("h1", 1))
	}()
	<-entered

	shutDone := make(chan error, 1)
	go func() { shutDone <- srv.Shutdown(t.Context()) }()
	close(hold)
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v", err)
	}
	wg.Wait()
	if status != http.StatusCreated {
		t.Fatalf("in-flight upload during drain: status %d, want 201", status)
	}
	if n := journalLen(t, arch); n != 1 {
		t.Errorf("journal holds %d record(s), want the drained ingest", n)
	}
	// The listener is gone: new uploads cannot connect.
	if _, err := http.Get(l.URL() + PathHealth); err == nil {
		t.Error("daemon still accepting connections after drain")
	}
}

// TestHealthzDraining: /healthz reports a distinct draining state —
// BeginDrain flips it to 503 {"state":"draining"} while the listener
// still accepts and in-flight ingests finish, so a load balancer
// polling health stops routing before the listener disappears.
func TestHealthzDraining(t *testing.T) {
	srv, ts, _ := newTestDaemon(t, ServerOptions{})
	getHealth := func() (int, HealthResponse) {
		resp, err := http.Get(ts.URL + PathHealth)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatalf("healthz body: %v", err)
		}
		return resp.StatusCode, h
	}

	if code, h := getHealth(); code != http.StatusOK || h.State != HealthOK {
		t.Fatalf("healthz before drain: %d %+v, want 200 %q", code, h, HealthOK)
	}

	// Pin an ingest in flight, then begin the drain: health must show
	// the draining state and the in-flight count while the upload is
	// still being served.
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.ingestGate = func() {
		entered <- struct{}{}
		<-hold
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var status int
	go func() {
		defer wg.Done()
		status, _ = upload(t, ts.URL, mkSnap("hd", 1))
	}()
	<-entered

	srv.BeginDrain()
	if !srv.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	code, h := getHealth()
	if code != http.StatusServiceUnavailable || h.State != HealthDraining {
		t.Errorf("healthz mid-drain: %d %+v, want 503 %q", code, h, HealthDraining)
	}
	if h.Inflight != 1 {
		t.Errorf("healthz mid-drain inflight = %d, want 1", h.Inflight)
	}

	close(hold)
	wg.Wait()
	if status != http.StatusCreated {
		t.Errorf("upload during drain: status %d, want 201", status)
	}
	if _, h := getHealth(); h.Inflight != 0 {
		t.Errorf("healthz after drain settled: inflight %d, want 0", h.Inflight)
	}
}

// TestMetricsJSONFormat: ?format=json serves the JSON exposition with
// the flight recorder included.
func TestMetricsJSONFormat(t *testing.T) {
	_, ts, _ := newTestDaemon(t, ServerOptions{})
	if status, _ := upload(t, ts.URL, mkSnap("h1", 1)); status != http.StatusCreated {
		t.Fatalf("upload status %d", status)
	}
	resp, err := http.Get(ts.URL + PathMetrics + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
		Events   *struct {
			Events []struct {
				Kind string `json:"kind"`
			} `json:"events"`
		} `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["coll_uploads_total"] != 1 {
		t.Errorf("coll_uploads_total = %d, want 1", doc.Counters["coll_uploads_total"])
	}
	found := false
	if doc.Events != nil {
		for _, e := range doc.Events.Events {
			if e.Kind == "coll-upload" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no coll-upload flight event in the JSON exposition")
	}
}
