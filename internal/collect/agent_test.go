package collect

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"traceback/internal/archive"
)

// loopback is a real TCP listener on a kernel-assigned port — unlike
// httptest it exposes the address, so a test can kill a daemon and
// re-listen on the same port (the restart scenario).
type loopback struct {
	Listener net.Listener
}

func newLoopback() (*loopback, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &loopback{Listener: l}, nil
}

func (lb *loopback) Addr() string { return lb.Listener.Addr().String() }
func (lb *loopback) URL() string  { return "http://" + lb.Addr() }

// fastAgent builds an agent whose retries cost (almost) no wall
// clock: instant sleep, tiny backoff, pinned jitter seed.
func fastAgent(spool, base string) *Agent {
	return NewAgent(spool, base, AgentOptions{
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Seed:        1,
		Sleep:       func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	})
}

func mustSpool(t *testing.T, dir string, n int) string {
	t.Helper()
	p, err := Spool(dir, mkSnap("h1", n))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func spoolLen(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() {
			n++
		}
	}
	return n
}

func TestSpoolContentAddressed(t *testing.T) {
	dir := t.TempDir()
	p1 := mustSpool(t, dir, 1)
	p2 := mustSpool(t, dir, 1)
	if p1 != p2 {
		t.Errorf("re-spooling the same snap produced %s and %s", p1, p2)
	}
	if n := spoolLen(t, dir); n != 1 {
		t.Errorf("spool holds %d file(s), want 1", n)
	}
	if p3 := mustSpool(t, dir, 2); p3 == p1 {
		t.Error("distinct snaps spooled to the same path")
	}
}

func TestAgentDrainAndDedupSkip(t *testing.T) {
	_, ts, arch := newTestDaemon(t, ServerOptions{})

	spool1 := t.TempDir()
	mustSpool(t, spool1, 1)
	mustSpool(t, spool1, 2)
	a1 := fastAgent(spool1, ts.URL)
	if err := a1.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	if n := spoolLen(t, spool1); n != 0 {
		t.Fatalf("spool still holds %d file(s) after drain", n)
	}
	if arch.NumBlobs() != 2 || journalLen(t, arch) != 2 {
		t.Fatalf("archive: %d blob(s), %d journal record(s), want 2/2",
			arch.NumBlobs(), journalLen(t, arch))
	}
	if got := a1.met.uploads.Load(); got != 2 {
		t.Errorf("coll_agent_uploads_total = %d, want 2", got)
	}

	// A second machine crashing the same way skips the upload entirely
	// after the precheck — and the journal records nothing new.
	spool2 := t.TempDir()
	mustSpool(t, spool2, 1)
	a2 := fastAgent(spool2, ts.URL)
	if err := a2.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	if got := a2.met.dedupSkips.Load(); got != 1 {
		t.Errorf("coll_agent_dedup_skips_total = %d, want 1", got)
	}
	if got := a2.met.uploads.Load(); got != 0 {
		t.Errorf("second agent uploaded %d snap(s), want 0", got)
	}
	if journalLen(t, arch) != 2 {
		t.Errorf("journal grew on a dedup skip")
	}
}

// TestAgentRetriesThroughErrorStorm: the daemon answers the first
// several requests with 500s and connection-level failures; the agent
// keeps the snap spooled and lands it when the storm passes.
func TestAgentRetriesThroughErrorStorm(t *testing.T) {
	srv, _, arch := newTestDaemon(t, ServerOptions{})
	var mu sync.Mutex
	failures := 6
	storm := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n := failures
		if failures > 0 {
			failures--
		}
		mu.Unlock()
		switch {
		case n > 3: // connection reset: no HTTP response at all
			c, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				c.Close()
			}
		case n > 0:
			http.Error(w, "injected daemon error", http.StatusInternalServerError)
		default:
			srv.Handler().ServeHTTP(w, r)
		}
	}))
	defer storm.Close()

	spool := t.TempDir()
	mustSpool(t, spool, 1)
	ag := fastAgent(spool, storm.URL)
	if err := ag.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	if n := spoolLen(t, spool); n != 0 {
		t.Fatalf("spool still holds %d file(s)", n)
	}
	if arch.NumBlobs() != 1 || journalLen(t, arch) != 1 {
		t.Fatalf("archive: %d blob(s), %d record(s), want exactly 1/1",
			arch.NumBlobs(), journalLen(t, arch))
	}
	if got := ag.met.retries.Load(); got == 0 {
		t.Error("storm produced no retries")
	}
}

// TestAgentHonors429RetryAfter: backpressure responses carry a
// Retry-After hint and the agent waits at least that long.
func TestAgentHonors429RetryAfter(t *testing.T) {
	srv, _, arch := newTestDaemon(t, ServerOptions{})
	var mu sync.Mutex
	rejections := 2
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		reject := r.Method == http.MethodPost && rejections > 0
		if reject {
			rejections--
		}
		mu.Unlock()
		if reject {
			w.Header().Set("Retry-After", "7")
			http.Error(w, "ingest at capacity", http.StatusTooManyRequests)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer gate.Close()

	var slept []time.Duration
	ag := NewAgent(t.TempDir(), gate.URL, AgentOptions{
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Seed:        1,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return ctx.Err()
		},
	})
	mustSpool(t, ag.spool, 1)
	if err := ag.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	if got := ag.met.backpressure.Load(); got != 2 {
		t.Errorf("coll_agent_backpressure_total = %d, want 2", got)
	}
	hinted := false
	for _, d := range slept {
		if d >= 7*time.Second {
			hinted = true
		}
	}
	if !hinted {
		t.Errorf("no sleep honored the 7s Retry-After hint; slept %v", slept)
	}
	if journalLen(t, arch) != 1 {
		t.Errorf("journal holds %d record(s), want 1", journalLen(t, arch))
	}
}

// TestAgentTruncatedResponseRetriesIdempotently: the daemon commits
// the snap but its response is cut off mid-body. The agent cannot
// prove the handoff, so it retries — and the precheck turns the retry
// into a skip. Nothing is lost, nothing is double-counted.
func TestAgentTruncatedResponseRetriesIdempotently(t *testing.T) {
	srv, _, arch := newTestDaemon(t, ServerOptions{})
	var mu sync.Mutex
	truncateNext := true
	trunc := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		doTrunc := r.Method == http.MethodPost && truncateNext
		if doTrunc {
			truncateNext = false
		}
		mu.Unlock()
		if !doTrunc {
			srv.Handler().ServeHTTP(w, r)
			return
		}
		// Let the real daemon commit the upload, then cut the reply off
		// mid-JSON — the worst-timed daemon death the agent can see.
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, r)
		c, _, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		fmt.Fprintf(c, "HTTP/1.1 %d OK\r\nContent-Type: application/json\r\nContent-Length: 4096\r\n\r\n{\"v\":", rec.Code)
		c.Close()
	}))
	defer trunc.Close()

	spool := t.TempDir()
	mustSpool(t, spool, 1)
	ag := fastAgent(spool, trunc.URL)
	if err := ag.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	if n := spoolLen(t, spool); n != 0 {
		t.Fatalf("spool still holds %d file(s)", n)
	}
	if journalLen(t, arch) != 1 {
		t.Fatalf("journal holds %d record(s), want exactly 1", journalLen(t, arch))
	}
	if ag.met.retries.Load() == 0 {
		t.Error("truncated response did not register as a retry")
	}
	if ag.met.dedupSkips.Load() != 1 {
		t.Errorf("coll_agent_dedup_skips_total = %d, want 1 (retry resolved by precheck)", ag.met.dedupSkips.Load())
	}
}

// TestAgentSurvivesDaemonKillRestart kills the daemon mid-upload
// (hard close, no drain), reopens the store as a restarted daemon on
// the same address, and checks the agent loses nothing and the index
// comes out identical to a direct local ingest.
func TestAgentSurvivesDaemonKillRestart(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "wh")
	arch1, err := archive.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewServer(arch1, ServerOptions{})
	entered := make(chan struct{}, 1)
	hold := make(chan struct{})
	srv1.ingestGate = func() {
		select {
		case entered <- struct{}{}:
			<-hold
		default: // only the first upload is pinned
		}
	}
	lb, err := newLoopback()
	if err != nil {
		t.Fatal(err)
	}
	serve1 := make(chan error, 1)
	go func() { serve1 <- srv1.Serve(lb.Listener) }()

	spool := t.TempDir()
	mustSpool(t, spool, 1)
	mustSpool(t, spool, 2)
	ag := fastAgent(spool, lb.URL())
	drained := make(chan error, 1)
	go func() { drained <- ag.Drain(t.Context()) }()

	// First upload is in flight inside the daemon: kill it. No drain,
	// no goodbye — connections die under the handler.
	<-entered
	if err := srv1.hs.Close(); err != nil {
		t.Fatalf("hard close: %v", err)
	}
	close(hold)
	<-serve1
	// Wait for the interrupted handler to release its ingest slot
	// before the store closes under it.
	for len(srv1.sem) != 0 {
		time.Sleep(time.Millisecond)
	}
	if err := arch1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: same store directory (crash recovery path), same
	// address. The agent has been retrying the whole time.
	arch2, err := archive.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	defer arch2.Close()
	srv2 := NewServer(arch2, ServerOptions{})
	var l2 net.Listener
	for i := 0; ; i++ {
		l2, err = net.Listen("tcp", lb.Addr())
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("re-listen on %s: %v", lb.Addr(), err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	serve2 := make(chan error, 1)
	go func() { serve2 <- srv2.Serve(l2) }()
	t.Cleanup(func() { srv2.Shutdown(context.Background()); <-serve2 })

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := spoolLen(t, spool); n != 0 {
		t.Fatalf("spool still holds %d file(s)", n)
	}
	if arch2.NumBlobs() != 2 || journalLen(t, arch2) != 2 {
		t.Fatalf("restarted store: %d blob(s), %d record(s), want 2/2",
			arch2.NumBlobs(), journalLen(t, arch2))
	}

	// Byte-for-byte parity with a direct local ingest of the same two
	// snaps — the kill/restart left no trace in the index.
	direct, err := archive.Open(filepath.Join(t.TempDir(), "direct"))
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	for _, n := range []int{1, 2} {
		s := mkSnap("h1", n)
		if _, err := direct.Ingest(s, archive.SignSnap(s, nil)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := direct.IndexBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := arch2.IndexBytes()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("index after kill/restart differs from direct ingest:\n%s\nvs\n%s", got, want)
	}
}

func TestAgentQuarantinesUnreadableSnap(t *testing.T) {
	_, ts, arch := newTestDaemon(t, ServerOptions{})
	spool := t.TempDir()
	bad := filepath.Join(spool, "deadbeef.snap.json.gz")
	if err := os.WriteFile(bad, []byte("not gzip, not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustSpool(t, spool, 1)

	ag := fastAgent(spool, ts.URL)
	if err := ag.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	if got := ag.met.quarantined.Load(); got != 1 {
		t.Errorf("coll_agent_quarantined_total = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(spool, quarantineDir, "deadbeef.snap.json.gz")); err != nil {
		t.Errorf("quarantined file not preserved: %v", err)
	}
	if n := spoolLen(t, spool); n != 0 {
		t.Errorf("spool still holds %d file(s)", n)
	}
	if journalLen(t, arch) != 1 {
		t.Errorf("good snap did not land: journal holds %d record(s)", journalLen(t, arch))
	}
}

// TestAgentQuarantinesDefinitiveRejection: a 4xx verdict from the
// daemon means retrying identical bytes cannot succeed; the agent
// parks the snap instead of spinning on it, and sidecars the daemon's
// verdict (status + response snippet) next to the evidence.
func TestAgentQuarantinesDefinitiveRejection(t *testing.T) {
	reject := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			http.Error(w, "signature policy: snap class forbidden", http.StatusForbidden)
			return
		}
		w.WriteHeader(http.StatusNotFound) // precheck: not stored
	}))
	defer reject.Close()

	spool := t.TempDir()
	mustSpool(t, spool, 1)
	ag := fastAgent(spool, reject.URL)
	if err := ag.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	if got := ag.met.quarantined.Load(); got != 1 {
		t.Errorf("coll_agent_quarantined_total = %d, want 1", got)
	}
	if n := spoolLen(t, spool); n != 0 {
		t.Errorf("spool still holds %d file(s)", n)
	}

	// Exactly one quarantined snap plus its .reason sidecar, holding
	// the HTTP status and the daemon's explanation.
	qdir := filepath.Join(spool, quarantineDir)
	entries, err := os.ReadDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	var reasonFile, snapFile string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".reason") {
			reasonFile = e.Name()
		} else {
			snapFile = e.Name()
		}
	}
	if snapFile == "" || reasonFile != snapFile+".reason" {
		t.Fatalf("quarantine holds %v, want <snap> and <snap>.reason", entries)
	}
	reason, err := os.ReadFile(filepath.Join(qdir, reasonFile))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"403", "signature policy: snap class forbidden"} {
		if !strings.Contains(string(reason), want) {
			t.Errorf("reason %q missing %q", reason, want)
		}
	}
}

// TestAgentDrainCancelKeepsSpool: cancellation mid-storm leaves the
// snap spooled — a new agent (process restart) resumes it.
func TestAgentDrainCancelKeepsSpool(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer down.Close()

	spool := t.TempDir()
	mustSpool(t, spool, 1)
	ctx, cancel := context.WithCancel(t.Context())
	ag := NewAgent(spool, down.URL, AgentOptions{
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Seed:        1,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // give up during the first retry wait
			return ctx.Err()
		},
	})
	if err := ag.Drain(ctx); err == nil {
		t.Fatal("cancelled drain reported success")
	}
	if n := spoolLen(t, spool); n != 1 {
		t.Fatalf("spool holds %d file(s) after cancel, want the undelivered snap", n)
	}

	// Process restart: a fresh agent against a healthy daemon resumes
	// from the spool alone.
	_, ts, arch := newTestDaemon(t, ServerOptions{})
	if err := fastAgent(spool, ts.URL).Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	if n := spoolLen(t, spool); n != 0 || journalLen(t, arch) != 1 {
		t.Fatalf("resume after restart: %d spooled, %d journaled", n, journalLen(t, arch))
	}
}
