// Package collect is the fleet collection plane: the network layer
// that moves crash snaps from instrumented machines into the snap
// warehouse (internal/archive). The paper's deployment model is a
// support organization triaging faults across a fleet; after the
// warehouse PR, snaps could only reach it through a local CLI. This
// package adds the missing wire: tbcollectd (Server) fronts an
// archive with a small versioned HTTP API, and tbagent (Agent)
// watches a spool directory on each machine and uploads with dedup
// precheck, jittered exponential backoff, and a durable commit rule —
// a snap leaves the spool only after a 2xx whose hash echo matches.
//
// The protocol is built for lossy fleets: every upload is idempotent
// (content-addressed; the warehouse journals one entry per unique
// snap no matter how many times it arrives), so an agent that loses a
// response, hits a 5xx storm, or watches the daemon die mid-upload
// simply retries. The dedup precheck (HEAD /v1/blob/{sum}) lets
// agents skip the body entirely for crashes the warehouse already
// holds — duplicate faults are the common case at fleet scale, so
// the steady-state cost of a known crash is one round trip.
package collect

import "traceback/internal/archive"

// APIVersion prefixes every collection route; a breaking protocol
// change bumps it and daemons serve both during transition.
const APIVersion = "v1"

// Wire routes (server side; the agent builds them via joinURL).
const (
	// PathBlobPrefix + <sha256 hex> answers the dedup precheck:
	// HEAD → 200 when the blob is resident, 404 when not.
	PathBlobPrefix = "/" + APIVersion + "/blob/"
	// PathSnap accepts POST uploads: body is one snap in plain-JSON or
	// gzip archival form; response is an UploadResponse.
	PathSnap = "/" + APIVersion + "/snap"
	// PathBuckets and PathTop are the fleet triage queries, JSON
	// mirrors of `tbstore ls` / `tbstore top`.
	PathBuckets = "/" + APIVersion + "/buckets"
	PathTop     = "/" + APIVersion + "/top"
	// PathRegressions, PathRates, and PathClusters are the fleet-health
	// views (internal/triage): the regression classification of every
	// bucket, one signature's crash-rate windows (?sig=<prefix>), and
	// the similarity clustering of near-duplicate signatures.
	PathRegressions = "/" + APIVersion + "/regressions"
	PathRates       = "/" + APIVersion + "/rates"
	PathClusters    = "/" + APIVersion + "/clusters"
	// PathMetrics and PathHealth are unversioned operational routes.
	PathMetrics = "/metrics"
	PathHealth  = "/healthz"
)

// HeaderSum carries the agent's claimed content address on an upload.
// The daemon recomputes the sum from the body and rejects a mismatch
// (422), so a snap corrupted between spool and wire can never be
// archived under the wrong address.
const HeaderSum = "X-Traceback-Sum"

// UploadResponse is the daemon's answer to POST /v1/snap. Sum is the
// hash echo: the content address the daemon computed and committed.
// The agent deletes its spool copy only when Sum matches what it
// claimed — that echo is the durable handoff point of the protocol.
type UploadResponse struct {
	V     int    `json:"v"`
	Sum   string `json:"sum"`
	Sig   string `json:"sig"`
	Title string `json:"title"`
	Weak  bool   `json:"weak,omitempty"`
	// Dup reports an idempotent replay: the warehouse already held
	// this content and journaled nothing new.
	Dup       bool `json:"dup,omitempty"`
	NewBucket bool `json:"newBucket,omitempty"`
}

// TopResponse is the daemon's answer to GET /v1/top and /v1/buckets.
type TopResponse struct {
	V       int              `json:"v"`
	Buckets []archive.Bucket `json:"buckets"`
}

// Health states reported by GET /healthz.
const (
	// HealthOK: serving normally (HTTP 200).
	HealthOK = "ok"
	// HealthDraining: the daemon is shutting down gracefully —
	// in-flight ingests run to completion but new work should go
	// elsewhere (HTTP 503, so load balancers eject it).
	HealthDraining = "draining"
)

// HealthResponse is the daemon's answer to GET /healthz. State
// distinguishes a live daemon from one mid-drain; Inflight counts
// ingests currently holding a semaphore slot (drain watchers poll it
// toward zero). The warehouse totals give fleet dashboards a one-call
// growth view without walking /v1/buckets.
type HealthResponse struct {
	V        int    `json:"v"`
	State    string `json:"state"`
	Inflight int    `json:"inflight"`
	// UptimeSec is whole seconds since the daemon was built.
	UptimeSec int64 `json:"uptimeSec"`
	// Buckets / Blobs / StoredBytes are the warehouse totals: distinct
	// crash signatures, resident content-addressed snaps, and their
	// on-disk bytes.
	Buckets     int   `json:"buckets"`
	Blobs       int   `json:"blobs"`
	StoredBytes int64 `json:"storedBytes"`
}
