package collect

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"traceback/internal/archive"
	"traceback/internal/shard"
	"traceback/internal/snap"
	"traceback/internal/telemetry"
)

// fastFleetAgent builds a shard-aware agent with no-wall-clock
// retries against the given daemon base URLs.
func fastFleetAgent(t *testing.T, spool string, bases ...string) *Agent {
	t.Helper()
	a, err := NewFleetAgent(spool, bases, AgentOptions{
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Seed:        1,
		Sleep:       func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func flightKinds(reg *telemetry.Registry) []string {
	var kinds []string
	for _, e := range reg.FlightRecorder().Events() {
		kinds = append(kinds, e.Kind)
	}
	return kinds
}

func hasKind(kinds []string, want string) bool {
	for _, k := range kinds {
		if k == want {
			return true
		}
	}
	return false
}

// TestFleetAgentRespectsPlacement: with every shard healthy, each
// snap lands on exactly the shard its content hash places it on, and
// nothing counts as a failover.
func TestFleetAgentRespectsPlacement(t *testing.T) {
	const n = 3
	bases := make([]string, n)
	archs := make([]*archive.Archive, n)
	for i := 0; i < n; i++ {
		_, ts, arch := newTestDaemon(t, ServerOptions{})
		bases[i], archs[i] = ts.URL, arch
	}
	ring, err := shard.NewRing(n)
	if err != nil {
		t.Fatal(err)
	}

	spool := t.TempDir()
	const snaps = 12
	for i := 0; i < snaps; i++ {
		mustSpool(t, spool, i)
	}
	ag := fastFleetAgent(t, spool, bases...)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ag.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := spoolLen(t, spool); got != 0 {
		t.Fatalf("%d snap(s) left spooled", got)
	}

	total := 0
	for s, arch := range archs {
		for _, b := range arch.Buckets() {
			for _, ref := range b.Snaps {
				home, err := ring.Place(ref.Sum)
				if err != nil {
					t.Fatal(err)
				}
				if home != s {
					t.Errorf("blob %s resident on shard %d, ring homes it on %d", ref.Sum[:8], s, home)
				}
				total++
			}
		}
	}
	if total != snaps {
		t.Errorf("fleet holds %d blobs, want %d", total, snaps)
	}
	if got := ag.met.failovers.Load(); got != 0 {
		t.Errorf("healthy fleet recorded %d failover(s)", got)
	}
}

// TestFleetAgentFailoverOnDeadShard: killing one shard redirects its
// snaps to the next live shard — counted in coll_agent_failover_total,
// flight-recorded, and nothing is lost.
func TestFleetAgentFailoverOnDeadShard(t *testing.T) {
	_, ts0, arch0 := newTestDaemon(t, ServerOptions{})
	_, ts1, arch1 := newTestDaemon(t, ServerOptions{})
	ring, err := shard.NewRing(2)
	if err != nil {
		t.Fatal(err)
	}

	spool := t.TempDir()
	var sums []string
	homes := make(map[int]int) // shard -> count
	for i := 0; i < 8; i++ {
		s := mkSnap("h1", i)
		sum, _, err := archive.ChecksumSnap(s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Spool(spool, s); err != nil {
			t.Fatal(err)
		}
		home, err := ring.Place(sum)
		if err != nil {
			t.Fatal(err)
		}
		homes[home]++
		sums = append(sums, sum)
	}
	if homes[1] == 0 {
		t.Fatal("test fleet homes nothing on shard 1; need a bigger sample")
	}

	ts1.Close() // shard 1 dies before the agent ever runs

	ag := fastFleetAgent(t, spool, ts0.URL, ts1.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ag.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	if got, want := ag.met.failovers.Load(), uint64(homes[1]); got != want {
		t.Errorf("coll_agent_failover_total = %d, want %d (snaps homed on the dead shard)", got, want)
	}
	if !hasKind(flightKinds(ag.Metrics()), "coll-agent-failover") {
		t.Error("no coll-agent-failover flight event recorded")
	}
	for _, sum := range sums {
		if !arch0.Has(sum) {
			t.Errorf("blob %s lost: not on the surviving shard", sum[:8])
		}
	}
	if arch1.NumBlobs() != 0 {
		t.Errorf("dead shard received %d blob(s)", arch1.NumBlobs())
	}
}

// TestFleetAgentDrainingShardRedirects: a draining shard answers 503
// on /healthz while still serving, and the agent routes around it
// exactly as if it were down.
func TestFleetAgentDrainingShardRedirects(t *testing.T) {
	_, ts0, arch0 := newTestDaemon(t, ServerOptions{})
	srv1, ts1, arch1 := newTestDaemon(t, ServerOptions{})
	srv1.BeginDrain()

	spool := t.TempDir()
	for i := 0; i < 8; i++ {
		mustSpool(t, spool, i)
	}
	ag := fastFleetAgent(t, spool, ts0.URL, ts1.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ag.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if arch1.NumBlobs() != 0 {
		t.Errorf("draining shard received %d blob(s)", arch1.NumBlobs())
	}
	if got := arch0.NumBlobs(); got != 8 {
		t.Errorf("live shard holds %d blob(s), want all 8", got)
	}
	if ag.met.failovers.Load() == 0 {
		t.Error("redirects off a draining shard were not counted as failovers")
	}
}

// TestFleetAgentAllShardsDownSpools: with no live shard anywhere the
// agent keeps everything spooled and retries — the single-daemon
// unreachable behavior, fleet-wide.
func TestFleetAgentAllShardsDownSpools(t *testing.T) {
	_, ts0, _ := newTestDaemon(t, ServerOptions{})
	_, ts1, _ := newTestDaemon(t, ServerOptions{})
	ts0.Close()
	ts1.Close()

	spool := t.TempDir()
	for i := 0; i < 3; i++ {
		mustSpool(t, spool, i)
	}
	ag := fastFleetAgent(t, spool, ts0.URL, ts1.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := ag.Drain(ctx); err == nil {
		t.Fatal("Drain succeeded with every shard down")
	}
	if got := spoolLen(t, spool); got != 3 {
		t.Errorf("%d snap(s) spooled, want all 3 kept", got)
	}
}

// TestBlobGetRoundTrip: GET /v1/blob streams the stored gzip blob
// with its content address echoed, 404s non-resident sums, and 400s
// malformed ones.
func TestBlobGetRoundTrip(t *testing.T) {
	_, ts, _ := newTestDaemon(t, ServerOptions{})
	s := mkSnap("h1", 1)
	status, ur := upload(t, ts.URL, s)
	if status != http.StatusCreated {
		t.Fatalf("upload: %d", status)
	}

	resp, err := http.Get(ts.URL + PathBlobPrefix + ur.Sum)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET blob: %s", resp.Status)
	}
	if got := resp.Header.Get(HeaderSum); got != ur.Sum {
		t.Errorf("blob response echoes sum %q, want %q", got, ur.Sum)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("blob body is not gzip: %v", err)
	}
	got, err := snap.LoadAuto(zr)
	if err != nil {
		t.Fatalf("blob body does not decode: %v", err)
	}
	sum, _, err := archive.ChecksumSnap(got)
	if err != nil {
		t.Fatal(err)
	}
	if sum != ur.Sum {
		t.Errorf("fetched blob re-checksums to %s, want %s", sum[:8], ur.Sum[:8])
	}

	if resp, err := http.Get(ts.URL + PathBlobPrefix + strings.Repeat("0", 64)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET unknown blob: %s, want 404", resp.Status)
		}
	}
	if resp, err := http.Get(ts.URL + PathBlobPrefix + "xyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET malformed sum: %s, want 400", resp.Status)
		}
	}
}
