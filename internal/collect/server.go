package collect

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"traceback/internal/archive"
	"traceback/internal/recon"
	"traceback/internal/snap"
	"traceback/internal/telemetry"
	"traceback/internal/triage"
)

// ServerOptions configures a collection daemon.
type ServerOptions struct {
	// Maps resolves mapfiles for strong crash signatures; nil archives
	// every upload under weak metadata signatures.
	Maps recon.MapResolver
	// MaxInflight bounds concurrent ingests; uploads beyond it are
	// rejected 429 with Retry-After (default 4).
	MaxInflight int
	// MaxBodyBytes bounds one upload body (default 64 MiB).
	MaxBodyBytes int64
	// RetryAfter is the backpressure hint sent with 429 (default 1s).
	RetryAfter time.Duration
	// Telemetry is the registry coll_ metrics land in (nil: private).
	Telemetry *telemetry.Registry
	// Triage overrides the fleet-health thresholds for /v1/regressions
	// and /v1/clusters (zero value: triage defaults).
	Triage triage.Config
}

// Server fronts an archive.Archive with the collection protocol. It
// is safe for concurrent use; ingest concurrency is bounded by a
// semaphore and overload turns into explicit 429 backpressure rather
// than queueing without bound.
type Server struct {
	arch *archive.Archive
	maps recon.MapResolver

	sem        chan struct{}
	maxBody    int64
	retryAfter time.Duration

	mux      *http.ServeMux
	hs       *http.Server
	draining atomic.Bool
	started  time.Time
	triage   *triage.Analyzer

	reg *telemetry.Registry
	rec *telemetry.Recorder
	met serverMetrics

	// ingestGate, when set (tests only), runs while an upload holds
	// its semaphore slot — the hook backpressure and drain tests use
	// to pin an ingest in flight.
	ingestGate func()
}

type serverMetrics struct {
	uploads      *telemetry.Counter
	uploadDups   *telemetry.Counter
	precheckHit  *telemetry.Counter
	precheckMiss *telemetry.Counter
	backpressure *telemetry.Counter
	uploadErrors *telemetry.Counter
	bytesIn      *telemetry.Counter
	uploadNanos  *telemetry.Histogram
}

// NewServer builds a daemon over an open archive.
func NewServer(arch *archive.Archive, opts ServerOptions) *Server {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 4
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 64 << 20
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	s := &Server{
		arch:       arch,
		maps:       opts.Maps,
		sem:        make(chan struct{}, opts.MaxInflight),
		maxBody:    opts.MaxBodyBytes,
		retryAfter: opts.RetryAfter,
		reg:        reg,
		rec:        reg.Recorder(256),
		started:    time.Now(),
	}
	s.triage = triage.New(arch, opts.Maps, opts.Triage, reg)
	s.met = serverMetrics{
		uploads:      reg.Counter("coll_uploads_total", "snaps ingested over the wire"),
		uploadDups:   reg.Counter("coll_upload_dups_total", "uploads replaying content already resident (idempotent no-ops)"),
		precheckHit:  reg.Counter("coll_precheck_hits_total", "dedup prechecks answered 'already stored' (upload skipped)"),
		precheckMiss: reg.Counter("coll_precheck_misses_total", "dedup prechecks answered 'not stored'"),
		backpressure: reg.Counter("coll_backpressure_total", "uploads rejected 429 at ingest capacity"),
		uploadErrors: reg.Counter("coll_upload_errors_total", "uploads rejected (malformed, hash mismatch, or ingest failure)"),
		bytesIn:      reg.Counter("coll_bytes_received_total", "upload body bytes received"),
		uploadNanos:  reg.Histogram("coll_upload_nanos", "per-upload handling latency (ns)", telemetry.DurationBuckets()),
	}
	reg.GaugeFunc("coll_inflight", "ingests currently holding a semaphore slot", func() int64 {
		return int64(len(s.sem))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("HEAD "+PathBlobPrefix+"{sum}", s.handlePrecheck)
	mux.HandleFunc("GET "+PathBlobPrefix+"{sum}", s.handleBlob)
	mux.HandleFunc("POST "+PathSnap, s.handleUpload)
	mux.HandleFunc("GET "+PathBuckets, s.handleBuckets)
	mux.HandleFunc("GET "+PathTop, s.handleTop)
	mux.HandleFunc("GET "+PathRegressions, s.handleRegressions)
	mux.HandleFunc("GET "+PathRates, s.handleRates)
	mux.HandleFunc("GET "+PathClusters, s.handleClusters)
	mux.HandleFunc("GET "+PathMetrics, s.handleMetrics)
	mux.HandleFunc("GET "+PathHealth, s.handleHealth)
	s.mux = mux
	return s
}

// Handler exposes the daemon's routes (httptest-friendly).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the daemon's registry.
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Serve accepts connections on l until Shutdown. The error mirrors
// http.Server.Serve: http.ErrServerClosed after a clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.hs = &http.Server{Handler: s.mux}
	return s.hs.Serve(l)
}

// BeginDrain flips the daemon into the draining state without
// closing the listener: /healthz answers 503 {"state":"draining"}
// while uploads still complete, so a load balancer polling health
// stops routing new work before the listener disappears. Shutdown
// implies it; calling BeginDrain first makes the drain observable.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) {
		s.rec.Record(0, "coll-drain-begin", "")
	}
}

// Draining reports whether the daemon has entered its drain.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains gracefully: the listener stops accepting, /healthz
// flips to 503, and every in-flight ingest runs to completion (and
// its journal append lands) before Serve returns. The archive itself
// is the caller's to close — the daemon never owns it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	if s.hs == nil {
		return nil
	}
	return s.hs.Shutdown(ctx)
}

// handlePrecheck answers the dedup precheck: 200 when the blob is
// resident, 404 when the fleet should upload.
func (s *Server) handlePrecheck(w http.ResponseWriter, r *http.Request) {
	sum := r.PathValue("sum")
	if !validSum(sum) {
		http.Error(w, "bad content address", http.StatusBadRequest)
		return
	}
	if s.arch.Has(sum) {
		s.met.precheckHit.Inc()
		w.WriteHeader(http.StatusOK)
		return
	}
	s.met.precheckMiss.Inc()
	w.WriteHeader(http.StatusNotFound)
}

// handleBlob streams a resident blob back as stored (gzip of the
// canonical snap JSON). The read complement of the upload path; the
// fan-out gate uses it to pull cluster exemplars off their shard.
func (s *Server) handleBlob(w http.ResponseWriter, r *http.Request) {
	sum := r.PathValue("sum")
	if !validSum(sum) {
		http.Error(w, "bad content address", http.StatusBadRequest)
		return
	}
	rc, size, err := s.arch.OpenBlob(sum)
	if err != nil {
		http.Error(w, "blob not resident", http.StatusNotFound)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.Header().Set(HeaderSum, sum)
	io.Copy(w, rc)
}

// handleUpload is the ingest path: bounded by the semaphore, verified
// against the claimed content address, committed idempotently.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() { s.met.uploadNanos.Observe(uint64(time.Since(t0))) }()

	select {
	case s.sem <- struct{}{}:
	default:
		s.met.backpressure.Inc()
		s.rec.Record(0, "coll-backpressure", r.RemoteAddr)
		w.Header().Set("Retry-After", strconv.Itoa(int((s.retryAfter+time.Second-1)/time.Second)))
		http.Error(w, "ingest at capacity", http.StatusTooManyRequests)
		return
	}
	defer func() { <-s.sem }()
	if s.ingestGate != nil {
		s.ingestGate()
	}

	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	sn, err := snap.LoadAuto(&countingReader{r: body, n: s.met.bytesIn})
	if err != nil {
		s.uploadError(w, fmt.Sprintf("unreadable snap: %v", err), http.StatusBadRequest)
		return
	}
	sum, _, err := archive.ChecksumSnap(sn)
	if err != nil {
		s.uploadError(w, err.Error(), http.StatusBadRequest)
		return
	}
	if claimed := r.Header.Get(HeaderSum); claimed != "" && claimed != sum {
		s.uploadError(w, fmt.Sprintf("content hash mismatch: body is %s, claimed %s", sum, claimed),
			http.StatusUnprocessableEntity)
		return
	}

	sig := archive.SignSnap(sn, s.maps)
	res, err := s.arch.IngestUnique(sn, sig)
	if err != nil {
		s.uploadError(w, err.Error(), http.StatusInternalServerError)
		return
	}
	status := http.StatusCreated
	if res.Dup {
		status = http.StatusOK
		s.met.uploadDups.Inc()
	} else {
		s.met.uploads.Inc()
		s.rec.Record(sn.Time, "coll-upload", res.Sum[:12]+" -> "+res.Sig.ID)
		if res.NewBucket {
			s.rec.Record(sn.Time, "coll-bucket-new", res.Sig.ID+" "+res.Sig.Title)
		}
	}
	writeJSON(w, status, UploadResponse{
		V: 1, Sum: res.Sum, Sig: res.Sig.ID, Title: res.Sig.Title,
		Weak: res.Sig.Weak, Dup: res.Dup, NewBucket: res.NewBucket,
	})
}

func (s *Server) uploadError(w http.ResponseWriter, msg string, status int) {
	s.met.uploadErrors.Inc()
	s.rec.Record(0, "coll-upload-error", msg)
	http.Error(w, msg, status)
}

func (s *Server) handleBuckets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, TopResponse{V: 1, Buckets: s.arch.Buckets()})
}

// handleTop returns the first n buckets in triage order (count desc).
func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	n := 10
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	buckets := s.arch.Buckets()
	if n > 0 && len(buckets) > n {
		buckets = buckets[:n]
	}
	writeJSON(w, http.StatusOK, TopResponse{V: 1, Buckets: buckets})
}

// handleRegressions serves the regression classification of every
// bucket — deterministic given the warehouse index, so a fleet
// queried over the wire triages identically to `tbstore regressions`
// on the archive directory.
func (s *Server) handleRegressions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.triage.Regressions())
}

// handleRates serves one signature's crash-rate windows;
// ?sig=<prefix> resolves like `tbstore show`.
func (s *Server) handleRates(w http.ResponseWriter, r *http.Request) {
	sig := r.URL.Query().Get("sig")
	if sig == "" {
		http.Error(w, "missing sig parameter", http.StatusBadRequest)
		return
	}
	rep, err := s.triage.Rates(sig)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleClusters serves the similarity clustering of the warehouse's
// signatures.
func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	rep, err := s.triage.Clusters()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleMetrics serves the shared registry: Prometheus text by
// default, JSON (with the flight-recorder dump) for ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := s.reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	state, code := HealthOK, http.StatusOK
	if s.draining.Load() {
		state, code = HealthDraining, http.StatusServiceUnavailable
	}
	writeJSON(w, code, HealthResponse{
		V: 1, State: state, Inflight: len(s.sem),
		UptimeSec:   int64(time.Since(s.started) / time.Second),
		Buckets:     s.arch.NumBuckets(),
		Blobs:       s.arch.NumBlobs(),
		StoredBytes: s.arch.StoredBytes(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// validSum accepts exactly a lowercase SHA-256 hex string — anything
// else cannot be a content address this archive produced.
func validSum(sum string) bool {
	if len(sum) != 64 {
		return false
	}
	for i := 0; i < len(sum); i++ {
		c := sum[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// countingReader feeds received body bytes into a counter as they
// stream through the snap decoder.
type countingReader struct {
	r io.Reader
	n *telemetry.Counter
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.n.Add(uint64(n))
	}
	return n, err
}
