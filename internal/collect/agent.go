package collect

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"traceback/internal/archive"
	"traceback/internal/shard"
	"traceback/internal/snap"
	"traceback/internal/telemetry"
)

// quarantineDir is where the agent parks spool entries it must never
// upload (unreadable, or rejected outright by the daemon). Evidence
// is never deleted — a human decides what a quarantined snap was.
const quarantineDir = "quarantine"

// Spool writes a snap into a spool directory under its content
// address (tmp file + rename, so a crash never leaves a partial snap
// where the agent would pick it up). Identical snaps spool once —
// the name is the content hash — which makes local re-spooling as
// idempotent as the wire protocol above it.
func Spool(dir string, s *snap.Snap) (string, error) {
	sum, canonical, err := archive.ChecksumSnap(s)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("collect: %w", err)
	}
	path := filepath.Join(dir, sum+".snap.json.gz")
	if _, err := os.Stat(path); err == nil {
		return path, nil
	}
	tmp, err := os.CreateTemp(dir, ".spool-*")
	if err != nil {
		return "", fmt.Errorf("collect: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := compressTo(tmp, canonical); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("collect: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", fmt.Errorf("collect: %w", err)
	}
	return path, nil
}

// SpoolForwarder adapts a spool directory to the service's forward
// hook: every service-triggered snap (hang, external, group) lands in
// the spool and rides the agent to the warehouse.
func SpoolForwarder(dir string) func(*snap.Snap) error {
	return func(s *snap.Snap) error {
		_, err := Spool(dir, s)
		return err
	}
}

// compressTo gzips the exact canonical bytes the content address was
// computed over, mirroring the warehouse's blob form.
func compressTo(f *os.File, canonical []byte) error {
	zw, err := gzip.NewWriterLevel(f, gzip.BestCompression)
	if err != nil {
		return fmt.Errorf("collect: %w", err)
	}
	if _, err := zw.Write(canonical); err != nil {
		zw.Close()
		return fmt.Errorf("collect: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("collect: %w", err)
	}
	return nil
}

// AgentOptions configures an uploader.
type AgentOptions struct {
	// Client is the HTTP client (default: 30s-timeout client).
	Client *http.Client
	// BackoffBase/BackoffMax bound the jittered exponential retry
	// delay (defaults 200ms / 30s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed seeds the backoff jitter; 0 derives one from the clock so
	// a fleet of agents does not retry in lockstep. Tests pin it.
	Seed int64
	// Sleep replaces the inter-retry wait (tests compress time). It
	// must respect ctx like the default does.
	Sleep func(ctx context.Context, d time.Duration) error
	// Telemetry is the registry coll_agent_ metrics land in.
	Telemetry *telemetry.Registry
}

// Agent watches a spool directory and uploads every snap to a
// collection daemon. Durability contract: a snap leaves the spool
// only after a 2xx response whose hash echo matches the agent's own
// content address — anything less (lost response, truncated reply,
// 5xx, daemon death mid-upload) leaves the file spooled and the next
// pass retries. The warehouse's content-addressed idempotency makes
// those retries safe: re-uploading committed content is a no-op.
type Agent struct {
	spool string
	// servers holds the daemon base URLs in shard-ring order. A single
	// entry is the classic one-daemon deployment; more make the agent
	// shard-aware (fleet.go): snaps place by content hash, with
	// failover to the next live shard when the home shard is down or
	// draining.
	servers []string
	ring    *shard.Ring // nil when len(servers) == 1

	client      *http.Client
	backoffBase time.Duration
	backoffMax  time.Duration
	sleep       func(ctx context.Context, d time.Duration) error

	rngMu sync.Mutex
	rng   *rand.Rand

	healthMu sync.Mutex
	health   []bool // per-server liveness, refreshed each pass (fleet mode)

	reg *telemetry.Registry
	rec *telemetry.Recorder
	met agentMetrics
}

type agentMetrics struct {
	uploads      *telemetry.Counter
	dedupSkips   *telemetry.Counter
	retries      *telemetry.Counter
	backpressure *telemetry.Counter
	quarantined  *telemetry.Counter
	failovers    *telemetry.Counter
}

// NewAgent builds an uploader for one spool directory against a
// daemon base URL (e.g. "http://collector:7321").
func NewAgent(spool, baseURL string, opts AgentOptions) *Agent {
	a, err := NewFleetAgent(spool, []string{baseURL}, opts)
	if err != nil {
		// Unreachable: a one-server fleet is always constructible.
		panic(err)
	}
	return a
}

// NewFleetAgent builds a shard-aware uploader over the fleet's daemon
// base URLs, listed in shard-ring order (every agent and the gate must
// agree on the order — it is the placement function). One URL behaves
// exactly like NewAgent.
func NewFleetAgent(spool string, servers []string, opts AgentOptions) (*Agent, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("collect: fleet agent needs at least one server")
	}
	var ring *shard.Ring
	if len(servers) > 1 {
		r, err := shard.NewRing(len(servers))
		if err != nil {
			return nil, err
		}
		ring = r
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 200 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 30 * time.Second
	}
	if opts.Seed == 0 {
		opts.Seed = time.Now().UnixNano()
	}
	if opts.Sleep == nil {
		opts.Sleep = sleepCtx
	}
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	bases := make([]string, len(servers))
	for i, s := range servers {
		bases[i] = strings.TrimRight(s, "/")
	}
	a := &Agent{
		spool:       spool,
		servers:     bases,
		ring:        ring,
		client:      opts.Client,
		backoffBase: opts.BackoffBase,
		backoffMax:  opts.BackoffMax,
		sleep:       opts.Sleep,
		rng:         rand.New(rand.NewSource(opts.Seed)),
		reg:         reg,
		rec:         reg.Recorder(256),
	}
	a.met = agentMetrics{
		uploads:      reg.Counter("coll_agent_uploads_total", "snaps uploaded and committed (hash echo matched)"),
		dedupSkips:   reg.Counter("coll_agent_dedup_skips_total", "spooled snaps skipped entirely after a dedup-precheck hit"),
		retries:      reg.Counter("coll_agent_retries_total", "retryable upload failures (retried with backoff)"),
		backpressure: reg.Counter("coll_agent_backpressure_total", "429 backpressure responses honored"),
		quarantined:  reg.Counter("coll_agent_quarantined_total", "spool entries quarantined (unreadable or rejected)"),
		failovers:    reg.Counter("coll_agent_failover_total", "uploads redirected off their home shard (down or draining)"),
	}
	reg.GaugeFunc("coll_agent_spooled", "snaps waiting in the spool", func() int64 {
		paths, err := a.scan()
		if err != nil {
			return -1
		}
		return int64(len(paths))
	})
	return a, nil
}

// Metrics returns the agent's registry.
func (a *Agent) Metrics() *telemetry.Registry { return a.reg }

// scan lists the spool's snap files in sorted (deterministic) order,
// ignoring quarantine, tmp files, and anything that is not a snap.
func (a *Agent) scan() ([]string, error) {
	entries, err := os.ReadDir(a.spool)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("collect: %w", err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || (!strings.HasSuffix(name, ".snap.json") && !strings.HasSuffix(name, ".snap.json.gz")) {
			continue
		}
		out = append(out, filepath.Join(a.spool, name))
	}
	sort.Strings(out)
	return out, nil
}

// outcome classifies one per-file attempt.
type outcome int

const (
	outCommitted outcome = iota // left the spool (uploaded or dedup-skipped)
	outRetry                    // transient failure, file stays spooled
	outQuarantined              // moved aside, never retried
)

// Drain uploads until the spool is empty, retrying failed snaps with
// jittered exponential backoff (and honoring 429 Retry-After hints),
// until ctx is cancelled. On cancellation the remaining snaps stay
// spooled — the next Drain, even in a new process, resumes them.
func (a *Agent) Drain(ctx context.Context) error {
	attempt := 0
	for {
		done, remaining, hint, lastErr := a.pass(ctx)
		if remaining == 0 {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("collect: drain interrupted with %d snap(s) spooled (last error: %v): %w",
				remaining, lastErr, err)
		}
		if done > 0 {
			attempt = 0 // progress: the daemon is back, restart the ramp
		}
		attempt++
		d := a.backoff(attempt)
		if hint > d {
			d = hint
		}
		if err := a.sleep(ctx, d); err != nil {
			return fmt.Errorf("collect: drain interrupted with %d snap(s) spooled (last error: %v): %w",
				remaining, lastErr, err)
		}
	}
}

// Run watches the spool until ctx is cancelled: drain what is there,
// then poll for new snaps. Transient failures back off exactly as in
// Drain; an idle spool costs one directory scan per poll interval.
func (a *Agent) Run(ctx context.Context, poll time.Duration) error {
	if poll <= 0 {
		poll = 2 * time.Second
	}
	attempt := 0
	for {
		done, remaining, hint, _ := a.pass(ctx)
		if err := ctx.Err(); err != nil {
			return err
		}
		var d time.Duration
		switch {
		case remaining == 0:
			attempt = 0
			d = poll
		default:
			if done > 0 {
				attempt = 0
			}
			attempt++
			d = a.backoff(attempt)
			if hint > d {
				d = hint
			}
		}
		if err := a.sleep(ctx, d); err != nil {
			return err
		}
	}
}

// pass tries every spooled snap once. done counts snaps that left the
// spool, remaining what is still waiting (retryables), hint the
// largest Retry-After the daemon sent, lastErr the most recent
// retryable failure (for diagnostics).
func (a *Agent) pass(ctx context.Context) (done, remaining int, hint time.Duration, lastErr error) {
	paths, err := a.scan()
	if err != nil {
		return 0, 0, 0, err
	}
	if len(paths) > 0 {
		a.refreshHealth(ctx)
	}
	for _, p := range paths {
		if ctx.Err() != nil {
			remaining++
			continue
		}
		out, h, err := a.processFile(ctx, p)
		switch out {
		case outCommitted, outQuarantined:
			done++
		case outRetry:
			remaining++
			a.met.retries.Inc()
			if err != nil {
				lastErr = err
				a.rec.Record(0, "coll-agent-retry", filepath.Base(p)+": "+err.Error())
			}
			if h > hint {
				hint = h
			}
		}
	}
	return done, remaining, hint, lastErr
}

// processFile pushes one spool entry through the protocol state
// machine: load → precheck → upload → hash-echo commit.
func (a *Agent) processFile(ctx context.Context, path string) (outcome, time.Duration, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return outCommitted, 0, nil // another drain already took it
		}
		return outRetry, 0, err
	}
	sn, lerr := snap.LoadAuto(f)
	f.Close()
	if lerr != nil {
		// Not evidence the wire can carry; park it where a human will
		// find it instead of spinning on it forever.
		return a.quarantine(path, fmt.Errorf("unreadable snap: %w", lerr))
	}
	sum, _, err := archive.ChecksumSnap(sn)
	if err != nil {
		return a.quarantine(path, err)
	}
	base, err := a.targetFor(sum)
	if err != nil {
		// Every shard down or draining: spool-and-retry, like a single
		// daemon being unreachable.
		return outRetry, 0, err
	}

	// Dedup precheck: a HEAD round trip instead of the whole body for
	// crashes the warehouse already holds.
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, base+PathBlobPrefix+sum, nil)
	if err != nil {
		return outRetry, 0, err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return outRetry, 0, err
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		a.met.dedupSkips.Inc()
		return a.commit(path)
	case http.StatusNotFound:
		// fall through to upload
	case http.StatusTooManyRequests:
		a.met.backpressure.Inc()
		return outRetry, retryAfter(resp), fmt.Errorf("precheck backpressure (429)")
	default:
		return outRetry, 0, fmt.Errorf("precheck: unexpected status %s", resp.Status)
	}

	var body bytes.Buffer
	if err := sn.SaveCompressed(&body); err != nil {
		return a.quarantine(path, err)
	}
	req, err = http.NewRequestWithContext(ctx, http.MethodPost, base+PathSnap, &body)
	if err != nil {
		return outRetry, 0, err
	}
	req.Header.Set("Content-Type", "application/gzip")
	req.Header.Set(HeaderSum, sum)
	resp, err = a.client.Do(req)
	if err != nil {
		return outRetry, 0, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated:
		var ur UploadResponse
		if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
			// Truncated or garbled response: the daemon may or may not
			// have committed. Idempotency makes retrying the right move.
			return outRetry, 0, fmt.Errorf("unreadable upload response: %w", err)
		}
		if ur.Sum != sum {
			return outRetry, 0, fmt.Errorf("hash echo %q does not match %q", ur.Sum, sum)
		}
		a.met.uploads.Inc()
		a.rec.Record(sn.Time, "coll-agent-upload", sum[:12]+" -> "+ur.Sig)
		return a.commit(path)
	case resp.StatusCode == http.StatusTooManyRequests:
		a.met.backpressure.Inc()
		return outRetry, retryAfter(resp), fmt.Errorf("upload backpressure (429)")
	case resp.StatusCode >= 500:
		return outRetry, 0, fmt.Errorf("upload: daemon error %s", resp.Status)
	default:
		// A definitive 4xx: the daemon examined this snap and refused.
		// Retrying identical bytes cannot succeed; keep the evidence,
		// and keep the daemon's explanation next to it — by the time a
		// human opens the quarantine, the daemon's logs may be gone.
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		cause := fmt.Errorf("upload rejected: %s", resp.Status)
		if t := strings.TrimSpace(string(snippet)); t != "" {
			cause = fmt.Errorf("upload rejected: %s: %s", resp.Status, t)
		}
		return a.quarantine(path, cause)
	}
}

// commit removes a spool entry — only ever called after the dedup
// precheck or the hash echo proved the warehouse holds the content.
func (a *Agent) commit(path string) (outcome, time.Duration, error) {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return outRetry, 0, err
	}
	return outCommitted, 0, nil
}

func (a *Agent) quarantine(path string, cause error) (outcome, time.Duration, error) {
	dir := filepath.Join(a.spool, quarantineDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return outRetry, 0, err
	}
	if err := os.Rename(path, filepath.Join(dir, filepath.Base(path))); err != nil {
		return outRetry, 0, err
	}
	// Sidecar the cause next to the evidence. Best effort: the snap is
	// already safely parked, and a failed note must not resurrect it.
	reason := filepath.Join(dir, filepath.Base(path)+".reason")
	_ = os.WriteFile(reason, []byte(cause.Error()+"\n"), 0o644)
	a.met.quarantined.Inc()
	a.rec.Record(0, "coll-agent-quarantine", filepath.Base(path)+": "+cause.Error())
	return outQuarantined, 0, nil
}

// backoff computes the jittered exponential delay for the given
// consecutive-failure count: base·2^(n-1) capped at max, then
// uniformly jittered into [d/2, d] so a fleet's retries decorrelate.
func (a *Agent) backoff(attempt int) time.Duration {
	d := a.backoffBase
	for i := 1; i < attempt && d < a.backoffMax; i++ {
		d *= 2
	}
	if d > a.backoffMax {
		d = a.backoffMax
	}
	a.rngMu.Lock()
	j := time.Duration(a.rng.Int63n(int64(d/2) + 1))
	a.rngMu.Unlock()
	return d/2 + j
}

// retryAfter parses a Retry-After seconds hint (0 when absent/bad).
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
