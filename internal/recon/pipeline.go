package recon

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"traceback/internal/snap"
	"traceback/internal/telemetry"
)

// Pipeline is the parallel reconstruction engine: it fans snap
// sources out to a bounded worker pool and, within one snap, mines
// and expands per-thread record streams concurrently. Record mining,
// DAG resolution, and block/line expansion are independent per
// buffer/segment; only the final join that assembles the ProcessTrace
// is ordered. Results are byte-identical to the sequential
// Reconstruct path, which remains the oracle.
//
// All workers share the pipeline's MapResolver; pass a *MapCache so
// that N snaps from the same binary parse the mapfile once (the
// decode-side mirror of the paper's §3.4 instrumentation cache).
type Pipeline struct {
	maps MapResolver
	jobs int
	// sem holds the extra-goroutine budget (jobs-1: the calling
	// goroutine is itself a worker). Tasks that cannot get a slot run
	// inline, which bounds concurrency at jobs and cannot deadlock
	// even when batch and per-snap stages nest.
	sem chan struct{}

	reg *telemetry.Registry
	met pipeMetrics
}

// pipeMetrics holds the pipeline's registry-backed handles. Stage
// times accumulate as nanosecond counters, summed across workers
// (≈ CPU time when workers saturate cores); snapNanos records the
// per-snap end-to-end latency distribution.
type pipeMetrics struct {
	snaps      *telemetry.Counter
	snapErrors *telemetry.Counter
	buffers    *telemetry.Counter
	records    *telemetry.Counter
	segments   *telemetry.Counter
	events     *telemetry.Counter

	loadNanos   *telemetry.Counter // snap read + parse
	mineNanos   *telemetry.Counter // logical-span recovery + record mining
	expandNanos *telemetry.Counter // DAG resolution + block/line expansion
	joinNanos   *telemetry.Counter // ordered assembly of the ProcessTrace
	wallNanos   *telemetry.Counter // Run() wall-clock, cumulative

	snapNanos *telemetry.Histogram
}

// NewPipeline creates a pipeline over maps with the given worker
// budget. jobs <= 0 selects GOMAXPROCS.
func NewPipeline(maps MapResolver, jobs int) *Pipeline {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	p := &Pipeline{maps: maps, jobs: jobs, sem: make(chan struct{}, jobs-1)}
	reg := telemetry.New()
	p.reg = reg
	p.met = pipeMetrics{
		snaps:       reg.Counter("recon_snaps_total", "snaps fully reconstructed"),
		snapErrors:  reg.Counter("recon_snap_errors_total", "sources that failed to load or expand"),
		buffers:     reg.Counter("recon_buffers_mined_total", "trace buffers mined for records"),
		records:     reg.Counter("recon_records_mined_total", "trace records recovered"),
		segments:    reg.Counter("recon_segments_expanded_total", "thread segments expanded to events"),
		events:      reg.Counter("recon_events_emitted_total", "trace events emitted"),
		loadNanos:   reg.Counter("recon_load_nanos_total", "snap read + parse time (ns, summed across workers)"),
		mineNanos:   reg.Counter("recon_mine_nanos_total", "record mining time (ns, summed across workers)"),
		expandNanos: reg.Counter("recon_expand_nanos_total", "segment expansion time (ns, summed across workers)"),
		joinNanos:   reg.Counter("recon_join_nanos_total", "ordered trace assembly time (ns)"),
		wallNanos:   reg.Counter("recon_wall_nanos_total", "batch Run() wall-clock (ns, cumulative)"),
		snapNanos:   reg.Histogram("recon_snap_nanos", "per-snap end-to-end reconstruction latency (ns)", telemetry.DurationBuckets()),
	}
	if c, ok := maps.(*MapCache); ok {
		reg.GaugeFunc("recon_mapcache_hits", "mapfile cache hits", c.Hits)
		reg.GaugeFunc("recon_mapcache_misses", "mapfile cache misses (parses)", c.Misses)
		reg.GaugeFunc("recon_mapcache_entries", "mapfiles resident in the cache", func() int64 { return int64(c.Len()) })
	}
	return p
}

// Jobs reports the worker budget.
func (p *Pipeline) Jobs() int { return p.jobs }

// Registry exposes the pipeline's metrics registry for exposition
// (tbrecon -metrics) or for sharing with other layers.
func (p *Pipeline) Registry() *telemetry.Registry { return p.reg }

// StatsSnapshot is a plain-value copy of the counters for scraping.
type StatsSnapshot struct {
	SnapsProcessed   int64
	SnapErrors       int64
	BuffersMined     int64
	RecordsMined     int64
	SegmentsExpanded int64
	EventsEmitted    int64
	CacheHits        int64
	CacheMisses      int64

	Load, Mine, Expand, Join, Wall time.Duration
}

// Snapshot copies the counters, merging cache hit/miss counts when
// the pipeline's resolver is a *MapCache. It is a derived view over
// the metrics registry; the registry is the single system of record.
func (p *Pipeline) Snapshot() StatsSnapshot {
	s := StatsSnapshot{
		SnapsProcessed:   int64(p.met.snaps.Load()),
		SnapErrors:       int64(p.met.snapErrors.Load()),
		BuffersMined:     int64(p.met.buffers.Load()),
		RecordsMined:     int64(p.met.records.Load()),
		SegmentsExpanded: int64(p.met.segments.Load()),
		EventsEmitted:    int64(p.met.events.Load()),
		Load:             time.Duration(p.met.loadNanos.Load()),
		Mine:             time.Duration(p.met.mineNanos.Load()),
		Expand:           time.Duration(p.met.expandNanos.Load()),
		Join:             time.Duration(p.met.joinNanos.Load()),
		Wall:             time.Duration(p.met.wallNanos.Load()),
	}
	if c, ok := p.maps.(*MapCache); ok {
		s.CacheHits = c.Hits()
		s.CacheMisses = c.Misses()
	}
	return s
}

func (s StatsSnapshot) String() string {
	return fmt.Sprintf(
		"snaps %d (errors %d) · buffers %d · records %d · segments %d · events %d · map cache %d hit / %d miss · load %v mine %v expand %v join %v · wall %v",
		s.SnapsProcessed, s.SnapErrors, s.BuffersMined, s.RecordsMined,
		s.SegmentsExpanded, s.EventsEmitted, s.CacheHits, s.CacheMisses,
		s.Load, s.Mine, s.Expand, s.Join, s.Wall)
}

// Source is one snap input to a batch run.
type Source struct {
	Name string
	Load func() (*snap.Snap, error)
}

// FileSource reads a snap file (plain or gzipped JSON).
func FileSource(path string) Source {
	return Source{Name: path, Load: func() (*snap.Snap, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return snap.LoadAuto(f)
	}}
}

// SnapSource wraps an already-loaded snap.
func SnapSource(name string, s *snap.Snap) Source {
	return Source{Name: name, Load: func() (*snap.Snap, error) { return s, nil }}
}

// Result is one source's reconstruction.
type Result struct {
	Name  string
	Trace *ProcessTrace
	Err   error
}

// Run reconstructs a batch of snaps on the worker pool, returning
// results in source order.
func (p *Pipeline) Run(sources []Source) []Result {
	start := time.Now()
	out := make([]Result, len(sources))
	p.parallelDo(len(sources), func(i int) {
		out[i] = p.runOne(sources[i])
	})
	p.met.wallNanos.Add(uint64(time.Since(start).Nanoseconds()))
	return out
}

func (p *Pipeline) runOne(src Source) Result {
	t0 := time.Now()
	defer func() { p.met.snapNanos.Observe(uint64(time.Since(t0))) }()
	s, err := src.Load()
	p.met.loadNanos.Add(uint64(time.Since(t0).Nanoseconds()))
	if err != nil {
		p.met.snapErrors.Inc()
		return Result{Name: src.Name, Err: fmt.Errorf("%s: %w", src.Name, err)}
	}
	pt, err := p.ReconstructSnap(s)
	if err != nil {
		p.met.snapErrors.Inc()
		return Result{Name: src.Name, Err: fmt.Errorf("%s: %w", src.Name, err)}
	}
	p.met.snaps.Inc()
	return Result{Name: src.Name, Trace: pt}
}

// ReconstructSnap rebuilds one snap with per-buffer mining and
// per-segment expansion running concurrently. The result — including
// the error, should one occur — is identical to Reconstruct's.
func (p *Pipeline) ReconstructSnap(s *snap.Snap) (*ProcessTrace, error) {
	// Stage 1: mine every buffer (pure, independent).
	t0 := time.Now()
	plans := make([]bufferPlan, len(s.Buffers))
	p.parallelDo(len(s.Buffers), func(bi int) {
		plans[bi] = mineBuffer(&s.Buffers[bi])
	})
	p.met.mineNanos.Add(uint64(time.Since(t0).Nanoseconds()))
	p.met.buffers.Add(uint64(len(s.Buffers)))

	// Stage 2: expand every thread segment (independent per segment;
	// the resolver is shared and read-only or internally locked).
	type segJob struct{ bi, si int }
	var jobs []segJob
	for bi := range plans {
		p.met.records.Add(uint64(plans[bi].recordsMined))
		for si := range plans[bi].segs {
			jobs = append(jobs, segJob{bi, si})
		}
	}
	t0 = time.Now()
	threads := make([]*ThreadTrace, len(jobs))
	errs := make([]error, len(jobs))
	p.parallelDo(len(jobs), func(k int) {
		j := jobs[k]
		threads[k], errs[k] = expandSegment(s, p.maps, plans[j.bi].segs[j.si])
	})
	p.met.expandNanos.Add(uint64(time.Since(t0).Nanoseconds()))

	// Join: assemble in buffer/segment order so the output is
	// byte-identical to the sequential oracle, including which error
	// wins when several segments fail.
	t0 = time.Now()
	defer func() { p.met.joinNanos.Add(uint64(time.Since(t0).Nanoseconds())) }()
	pt := &ProcessTrace{Snap: s}
	for k, j := range jobs {
		if errs[k] != nil {
			return nil, errs[k]
		}
		tt := threads[k]
		tt.Truncated = tt.Truncated || plans[j.bi].truncated
		p.met.events.Add(uint64(len(tt.Events)))
		pt.Threads = append(pt.Threads, tt)
	}
	p.met.segments.Add(uint64(len(jobs)))
	for bi := range plans {
		pt.Unrecoverable += plans[bi].unrecoverable
	}
	return pt, nil
}

// parallelDo runs fn(0..n-1) using at most the pipeline's job budget
// of concurrent workers. The calling goroutine participates; extra
// goroutines are spawned only while semaphore slots are free, so
// nested calls (batch → per-snap stages) stay bounded and can never
// deadlock — a task that finds no free slot simply runs inline.
func (p *Pipeline) parallelDo(n int, fn func(int)) {
	if n == 0 {
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer func() {
					<-p.sem
					wg.Done()
				}()
				fn(i)
			}(i)
		default:
			fn(i)
		}
	}
	wg.Wait()
}
