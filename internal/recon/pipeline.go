package recon

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"traceback/internal/snap"
)

// Pipeline is the parallel reconstruction engine: it fans snap
// sources out to a bounded worker pool and, within one snap, mines
// and expands per-thread record streams concurrently. Record mining,
// DAG resolution, and block/line expansion are independent per
// buffer/segment; only the final join that assembles the ProcessTrace
// is ordered. Results are byte-identical to the sequential
// Reconstruct path, which remains the oracle.
//
// All workers share the pipeline's MapResolver; pass a *MapCache so
// that N snaps from the same binary parse the mapfile once (the
// decode-side mirror of the paper's §3.4 instrumentation cache).
type Pipeline struct {
	maps MapResolver
	jobs int
	// sem holds the extra-goroutine budget (jobs-1: the calling
	// goroutine is itself a worker). Tasks that cannot get a slot run
	// inline, which bounds concurrency at jobs and cannot deadlock
	// even when batch and per-snap stages nest.
	sem chan struct{}

	Stats Stats
}

// NewPipeline creates a pipeline over maps with the given worker
// budget. jobs <= 0 selects GOMAXPROCS.
func NewPipeline(maps MapResolver, jobs int) *Pipeline {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &Pipeline{maps: maps, jobs: jobs, sem: make(chan struct{}, jobs-1)}
}

// Jobs reports the worker budget.
func (p *Pipeline) Jobs() int { return p.jobs }

// Stats holds the pipeline's per-stage counters, updated atomically
// by workers; scrape them live or via Snapshot. Cache hit/miss counts
// live on the MapCache and are merged into StatsSnapshot.
type Stats struct {
	SnapsProcessed   atomic.Int64 // snaps fully reconstructed
	SnapErrors       atomic.Int64 // sources that failed to load or expand
	BuffersMined     atomic.Int64
	RecordsMined     atomic.Int64
	SegmentsExpanded atomic.Int64
	EventsEmitted    atomic.Int64

	// Per-stage time, summed across workers (≈ CPU time when workers
	// saturate cores), plus batch wall-clock.
	LoadNanos   atomic.Int64 // snap read + parse
	MineNanos   atomic.Int64 // logical-span recovery + record mining
	ExpandNanos atomic.Int64 // DAG resolution + block/line expansion
	JoinNanos   atomic.Int64 // ordered assembly of the ProcessTrace
	WallNanos   atomic.Int64 // Run() wall-clock, cumulative
}

// StatsSnapshot is a plain-value copy of the counters for scraping.
type StatsSnapshot struct {
	SnapsProcessed   int64
	SnapErrors       int64
	BuffersMined     int64
	RecordsMined     int64
	SegmentsExpanded int64
	EventsEmitted    int64
	CacheHits        int64
	CacheMisses      int64

	Load, Mine, Expand, Join, Wall time.Duration
}

// Snapshot copies the counters, merging cache hit/miss counts when
// the pipeline's resolver is a *MapCache.
func (p *Pipeline) Snapshot() StatsSnapshot {
	s := StatsSnapshot{
		SnapsProcessed:   p.Stats.SnapsProcessed.Load(),
		SnapErrors:       p.Stats.SnapErrors.Load(),
		BuffersMined:     p.Stats.BuffersMined.Load(),
		RecordsMined:     p.Stats.RecordsMined.Load(),
		SegmentsExpanded: p.Stats.SegmentsExpanded.Load(),
		EventsEmitted:    p.Stats.EventsEmitted.Load(),
		Load:             time.Duration(p.Stats.LoadNanos.Load()),
		Mine:             time.Duration(p.Stats.MineNanos.Load()),
		Expand:           time.Duration(p.Stats.ExpandNanos.Load()),
		Join:             time.Duration(p.Stats.JoinNanos.Load()),
		Wall:             time.Duration(p.Stats.WallNanos.Load()),
	}
	if c, ok := p.maps.(*MapCache); ok {
		s.CacheHits = c.Hits()
		s.CacheMisses = c.Misses()
	}
	return s
}

func (s StatsSnapshot) String() string {
	return fmt.Sprintf(
		"snaps %d (errors %d) · buffers %d · records %d · segments %d · events %d · map cache %d hit / %d miss · load %v mine %v expand %v join %v · wall %v",
		s.SnapsProcessed, s.SnapErrors, s.BuffersMined, s.RecordsMined,
		s.SegmentsExpanded, s.EventsEmitted, s.CacheHits, s.CacheMisses,
		s.Load, s.Mine, s.Expand, s.Join, s.Wall)
}

// Source is one snap input to a batch run.
type Source struct {
	Name string
	Load func() (*snap.Snap, error)
}

// FileSource reads a snap file (plain or gzipped JSON).
func FileSource(path string) Source {
	return Source{Name: path, Load: func() (*snap.Snap, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return snap.LoadAuto(f)
	}}
}

// SnapSource wraps an already-loaded snap.
func SnapSource(name string, s *snap.Snap) Source {
	return Source{Name: name, Load: func() (*snap.Snap, error) { return s, nil }}
}

// Result is one source's reconstruction.
type Result struct {
	Name  string
	Trace *ProcessTrace
	Err   error
}

// Run reconstructs a batch of snaps on the worker pool, returning
// results in source order.
func (p *Pipeline) Run(sources []Source) []Result {
	start := time.Now()
	out := make([]Result, len(sources))
	p.parallelDo(len(sources), func(i int) {
		out[i] = p.runOne(sources[i])
	})
	p.Stats.WallNanos.Add(time.Since(start).Nanoseconds())
	return out
}

func (p *Pipeline) runOne(src Source) Result {
	t0 := time.Now()
	s, err := src.Load()
	p.Stats.LoadNanos.Add(time.Since(t0).Nanoseconds())
	if err != nil {
		p.Stats.SnapErrors.Add(1)
		return Result{Name: src.Name, Err: fmt.Errorf("%s: %w", src.Name, err)}
	}
	pt, err := p.ReconstructSnap(s)
	if err != nil {
		p.Stats.SnapErrors.Add(1)
		return Result{Name: src.Name, Err: fmt.Errorf("%s: %w", src.Name, err)}
	}
	p.Stats.SnapsProcessed.Add(1)
	return Result{Name: src.Name, Trace: pt}
}

// ReconstructSnap rebuilds one snap with per-buffer mining and
// per-segment expansion running concurrently. The result — including
// the error, should one occur — is identical to Reconstruct's.
func (p *Pipeline) ReconstructSnap(s *snap.Snap) (*ProcessTrace, error) {
	// Stage 1: mine every buffer (pure, independent).
	t0 := time.Now()
	plans := make([]bufferPlan, len(s.Buffers))
	p.parallelDo(len(s.Buffers), func(bi int) {
		plans[bi] = mineBuffer(&s.Buffers[bi])
	})
	p.Stats.MineNanos.Add(time.Since(t0).Nanoseconds())
	p.Stats.BuffersMined.Add(int64(len(s.Buffers)))

	// Stage 2: expand every thread segment (independent per segment;
	// the resolver is shared and read-only or internally locked).
	type segJob struct{ bi, si int }
	var jobs []segJob
	for bi := range plans {
		p.Stats.RecordsMined.Add(int64(plans[bi].recordsMined))
		for si := range plans[bi].segs {
			jobs = append(jobs, segJob{bi, si})
		}
	}
	t0 = time.Now()
	threads := make([]*ThreadTrace, len(jobs))
	errs := make([]error, len(jobs))
	p.parallelDo(len(jobs), func(k int) {
		j := jobs[k]
		threads[k], errs[k] = expandSegment(s, p.maps, plans[j.bi].segs[j.si])
	})
	p.Stats.ExpandNanos.Add(time.Since(t0).Nanoseconds())

	// Join: assemble in buffer/segment order so the output is
	// byte-identical to the sequential oracle, including which error
	// wins when several segments fail.
	t0 = time.Now()
	defer func() { p.Stats.JoinNanos.Add(time.Since(t0).Nanoseconds()) }()
	pt := &ProcessTrace{Snap: s}
	for k, j := range jobs {
		if errs[k] != nil {
			return nil, errs[k]
		}
		tt := threads[k]
		tt.Truncated = tt.Truncated || plans[j.bi].truncated
		p.Stats.EventsEmitted.Add(int64(len(tt.Events)))
		pt.Threads = append(pt.Threads, tt)
	}
	p.Stats.SegmentsExpanded.Add(int64(len(jobs)))
	for bi := range plans {
		pt.Unrecoverable += plans[bi].unrecoverable
	}
	return pt, nil
}

// parallelDo runs fn(0..n-1) using at most the pipeline's job budget
// of concurrent workers. The calling goroutine participates; extra
// goroutines are spawned only while semaphore slots are free, so
// nested calls (batch → per-snap stages) stay bounded and can never
// deadlock — a task that finds no free slot simply runs inline.
func (p *Pipeline) parallelDo(n int, fn func(int)) {
	if n == 0 {
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer func() {
					<-p.sem
					wg.Done()
				}()
				fn(i)
			}(i)
		default:
			fn(i)
		}
	}
	wg.Wait()
}
