// Package recon implements trace reconstruction (paper §4): turning a
// snap's raw trace buffers plus the instrumentation mapfiles back
// into line-by-line, per-thread execution histories, with call
// hierarchy, exception trimming, cross-thread interleaving, and
// (in distrib.go) cross-runtime/cross-machine logical-thread
// stitching.
package recon

import (
	"fmt"

	"traceback/internal/module"
	"traceback/internal/snap"
	"traceback/internal/trace"
)

// MapSet indexes mapfiles by module checksum, the key that ties trace
// metadata to instrumentation output (paper §2.3). A MapSet is not
// synchronized: build it fully (NewMapSet / Add) before sharing it
// across goroutines, after which concurrent ForChecksum calls are
// safe. For lazy, concurrent loading use MapCache instead.
type MapSet struct {
	byChecksum map[string]*module.MapFile
}

// NewMapSet builds a MapSet.
func NewMapSet(maps ...*module.MapFile) *MapSet {
	s := &MapSet{byChecksum: map[string]*module.MapFile{}}
	for _, m := range maps {
		s.Add(m)
	}
	return s
}

// Add registers a mapfile.
func (s *MapSet) Add(m *module.MapFile) { s.byChecksum[m.Checksum] = m }

// ForChecksum returns the mapfile for a module checksum.
func (s *MapSet) ForChecksum(sum string) (*module.MapFile, bool) {
	m, ok := s.byChecksum[sum]
	return m, ok
}

// EventKind classifies reconstructed events.
type EventKind uint8

const (
	EvLine EventKind = iota
	EvException
	EvExceptionEnd
	EvSync
	EvSnapMark
	EvThreadStart
	EvThreadEnd
	EvBadDAG
	EvSyscall   // synchronization-point marker with resolved position
	EvTruncated // history older than this point was overwritten
)

func (k EventKind) String() string {
	switch k {
	case EvLine:
		return "line"
	case EvException:
		return "exception"
	case EvExceptionEnd:
		return "exception-end"
	case EvSync:
		return "sync"
	case EvSnapMark:
		return "snap"
	case EvThreadStart:
		return "thread-start"
	case EvThreadEnd:
		return "thread-end"
	case EvBadDAG:
		return "bad-dag"
	case EvSyscall:
		return "syscall"
	case EvTruncated:
		return "truncated"
	}
	return "?"
}

// Event is one entry of a reconstructed history.
type Event struct {
	Kind   EventKind
	Module string
	File   string
	Line   uint32
	Func   string
	Depth  int
	// Repeat counts consecutive re-executions of the same line
	// collapsed into this event (loops).
	Repeat int
	// Note carries human-oriented detail: call targets, signal names,
	// sync descriptions.
	Note string
	// TS is the last ordering anchor at or before this event (0 if
	// none); AnchorSeq disambiguates events sharing an anchor.
	TS        uint64
	AnchorSeq int
	// Sync is set for EvSync events.
	Sync *trace.Sync
	// Fault marks the line an exception record trimmed the trace at.
	Fault bool
	// CallTo is set on the line event that performs a call.
	CallTo string

	// runID identifies which DAG-record expansion produced a line
	// event, distinguishing real re-executions (loops, which bump
	// Repeat) from instrumentation redundancy within one expansion
	// (collapsed silently, paper §4.2).
	runID int
}

// ThreadTrace is one thread's reconstructed history, oldest first.
type ThreadTrace struct {
	TID    uint32
	Events []Event
	// Truncated is true when older history was overwritten (the
	// buffer wrapped) or lost to abrupt termination.
	Truncated bool
	// Faulted is true when the history ends in an exception record.
	Faulted bool
}

// ProcessTrace is a whole process's reconstruction.
type ProcessTrace struct {
	Snap    *snap.Snap
	Threads []*ThreadTrace
	// Unrecoverable counts buffers whose data could not be mined
	// (desperation sharing, no known write pointer on a plain ring).
	Unrecoverable int
}

// ThreadByTID finds a thread's trace.
func (pt *ProcessTrace) ThreadByTID(tid uint32) (*ThreadTrace, bool) {
	for _, t := range pt.Threads {
		if t.TID == tid {
			return t, true
		}
	}
	return nil, false
}

// Reconstruct rebuilds per-thread histories from a snap and its
// mapfiles. This is the sequential path — the oracle the parallel
// Pipeline must match byte for byte.
func Reconstruct(s *snap.Snap, maps MapResolver) (*ProcessTrace, error) {
	pt := &ProcessTrace{Snap: s}
	for bi := range s.Buffers {
		plan := mineBuffer(&s.Buffers[bi])
		pt.Unrecoverable += plan.unrecoverable
		for _, seg := range plan.segs {
			tt, err := expandSegment(s, maps, seg)
			if err != nil {
				return nil, err
			}
			tt.Truncated = tt.Truncated || plan.truncated
			pt.Threads = append(pt.Threads, tt)
		}
	}
	return pt, nil
}

// bufferPlan is the mined, thread-split content of one buffer — the
// output of the mining stage, ready for per-segment expansion.
type bufferPlan struct {
	segs          []segment
	truncated     bool
	unrecoverable int
	recordsMined  int
}

// mineBuffer recovers one buffer's record stream and splits it by
// thread. It is a pure function of the buffer dump (no shared state),
// which is what lets the pipeline mine buffers concurrently.
func mineBuffer(b *snap.BufferDump) bufferPlan {
	var plan bufferPlan
	// Decode the raw words once; every helper below works on the
	// shared read-only slice.
	words := b.Words()
	switch b.Kind {
	case snap.BufProbation:
		return plan
	case snap.BufDesperation:
		if !b.LastKnown {
			// Shared unsynchronized writes are unrecoverable —
			// but an untouched desperation buffer is just empty.
			if b.OwnerTID != 0 || hasData(words) {
				plan.unrecoverable++
			}
			return plan
		}
	}
	span, truncated, ok := logicalSpan(b, words)
	if !ok {
		if b.OwnerTID != 0 {
			plan.unrecoverable++
		}
		return plan
	}
	recs := trace.MineBackward(span)
	if len(recs) == 0 {
		return plan
	}
	plan.truncated = truncated
	plan.recordsMined = len(recs)
	trace.Reverse(recs) // oldest first
	plan.segs = splitByThread(recs, b.OwnerTID)
	return plan
}

// lineForAddr resolves an absolute code address to (module, file,
// line) via the snap's module table and the mapfiles' line spans.
func lineForAddr(s *snap.Snap, maps MapResolver, addr uint64) (mod, file string, line uint32, ok bool) {
	mi, ok := s.ModuleForAddr(addr)
	if !ok {
		return "", "", 0, false
	}
	mf, ok := maps.ForChecksum(mi.Checksum)
	if !ok {
		return mi.Name, "", 0, false
	}
	rel := uint32(addr - uint64(mi.CodeBase))
	for di := range mf.DAGs {
		for bi := range mf.DAGs[di].Blocks {
			b := &mf.DAGs[di].Blocks[bi]
			if rel < b.Start || rel >= b.End {
				continue
			}
			for _, ls := range b.Lines {
				if rel >= ls.Start && rel < ls.End {
					return mi.Name, ls.File, ls.Line, true
				}
			}
		}
	}
	return mi.Name, "", 0, false
}

// hasData reports whether any non-sentinel word was ever written.
func hasData(words []trace.Word) bool {
	for _, w := range words {
		if w != trace.Invalid && w != trace.Sentinel {
			return true
		}
	}
	return false
}

// logicalSpan rotates a buffer into oldest-to-newest order with the
// sub-buffer boundary sentinels removed BY POSITION (paper §4.1:
// boundaries are removed to produce a contiguous span; stripping by
// value would destroy payload words that happen to equal the sentinel
// pattern, e.g. the high half of a large timestamp). For a known
// write pointer the newest record is at LastPtr; otherwise the
// committed-sub-buffer header plus the zeroed-frontier scan recovers
// the dead thread's progress (paper §3.2).
func logicalSpan(b *snap.BufferDump, words []trace.Word) (span []trace.Word, truncated bool, ok bool) {
	if len(words) == 0 {
		return nil, false, false
	}
	newest := -1
	if b.LastKnown {
		newest = int(b.LastPtr)
		if newest >= len(words) {
			return nil, false, false
		}
	} else {
		if b.SubWords == 0 || int(b.SubWords) >= len(words) {
			// Plain ring with no commit points and no pointer:
			// unrecoverable.
			return nil, false, false
		}
		subs := len(words) / int(b.SubWords)
		next := (int(b.CommittedSub) + 1) % subs
		lo := next * int(b.SubWords)
		hi := lo + int(b.SubWords) - 1 // exclude the sentinel slot
		for i := lo; i < hi && i < len(words); i++ {
			if words[i] != trace.Invalid && words[i] != trace.Sentinel {
				newest = i
			}
		}
		if newest == -1 {
			// Nothing in the open sub-buffer: newest is the end of
			// the committed one.
			newest = lo - 1
			if newest < 0 {
				newest = len(words) - 1
			}
		}
	}

	isBoundary := func(i int) bool {
		return b.SubWords > 0 && (i+1)%int(b.SubWords) == 0
	}
	stripped := make([]trace.Word, 0, len(words))
	newestStripped := -1
	for i, w := range words {
		if isBoundary(i) {
			continue
		}
		if i <= newest {
			newestStripped = len(stripped)
		}
		stripped = append(stripped, w)
	}
	if newestStripped < 0 {
		return nil, false, false
	}
	span = append(span, stripped[newestStripped+1:]...)
	span = append(span, stripped[:newestStripped+1]...)
	// The buffer wrapped (and thus lost history) if anything nonzero
	// precedes the newest position's logical start.
	for _, w := range stripped[newestStripped+1:] {
		if w != trace.Invalid {
			truncated = true
			break
		}
	}
	return span, truncated, true
}

// segment is a run of records belonging to one thread.
type segment struct {
	tid  uint32
	recs []trace.Record
}

// splitByThread partitions a buffer's record stream at thread
// start/end records (buffers house several thread lifetimes in
// sequence, paper §3.1.2).
func splitByThread(recs []trace.Record, ownerTID uint32) []segment {
	var segs []segment
	cur := segment{tid: 0}
	flush := func() {
		if len(cur.recs) > 0 {
			segs = append(segs, cur)
		}
	}
	for _, r := range recs {
		switch r.Kind {
		case trace.KindThreadStart:
			flush()
			ev, err := trace.DecodeThreadEvent(r)
			cur = segment{recs: []trace.Record{r}}
			if err == nil {
				cur.tid = ev.TID
			}
		case trace.KindThreadEnd:
			// A wrapped buffer may have lost its ThreadStart; the
			// termination record still identifies the owner.
			if cur.tid == 0 {
				if ev, err := trace.DecodeThreadEvent(r); err == nil {
					cur.tid = ev.TID
				}
			}
			cur.recs = append(cur.recs, r)
			flush()
			cur = segment{tid: 0}
		default:
			cur.recs = append(cur.recs, r)
		}
	}
	flush()
	// Records before the first ThreadStart belong to an earlier,
	// partially overwritten lifetime; if there is exactly one
	// headless segment and we know the owner, attribute it.
	if len(segs) > 0 && segs[0].tid == 0 && ownerTID != 0 {
		headless := true
		for _, r := range segs[0].recs {
			if r.Kind == trace.KindThreadStart {
				headless = false
			}
		}
		if headless && len(segs) == 1 {
			segs[0].tid = ownerTID
		}
	}
	return segs
}

// resolveDAG maps a rebased DAG ID to (module info, mapfile DAG,
// managed flag).
func resolveDAG(s *snap.Snap, maps MapResolver, id uint32) (snap.ModuleInfo, *module.MapDAG, bool, error) {
	mi, rel, ok := s.ModuleForDAG(id)
	if !ok {
		return mi, nil, false, fmt.Errorf("recon: DAG ID %d matches no module range", id)
	}
	mf, ok := maps.ForChecksum(mi.Checksum)
	if !ok {
		return mi, nil, false, fmt.Errorf("recon: no mapfile for module %s (checksum %s)", mi.Name, mi.Checksum)
	}
	d, ok := mf.DAGByID(rel)
	if !ok {
		return mi, nil, false, fmt.Errorf("recon: module %s has no DAG %d", mi.Name, rel)
	}
	return mi, d, mf.Managed, nil
}
