package recon

// View provides the debugger-like stepping operations of the paper's
// GUI (§4.3.1): forward and backward stepping, plus step-over /
// step-out and their backward mirrors, driven by the call-hierarchy
// depth recorded on each event.
type View struct {
	t   *ThreadTrace
	pos int
}

// NewView opens a stepping view over a thread's history, positioned
// at the newest event (where a fault-directed display starts).
func NewView(t *ThreadTrace) *View {
	return &View{t: t, pos: len(t.Events) - 1}
}

// Pos returns the current event index.
func (v *View) Pos() int { return v.pos }

// Current returns the current event (nil when the history is empty).
func (v *View) Current() *Event {
	if v.pos < 0 || v.pos >= len(v.t.Events) {
		return nil
	}
	return &v.t.Events[v.pos]
}

// SeekOldest positions at the start of the recovered history.
func (v *View) SeekOldest() { v.pos = 0 }

// SeekNewest positions at the newest event.
func (v *View) SeekNewest() { v.pos = len(v.t.Events) - 1 }

// Step moves one event forward in time. Returns false at the end.
func (v *View) Step() bool {
	if v.pos+1 >= len(v.t.Events) {
		return false
	}
	v.pos++
	return true
}

// StepBack moves one event backward in time.
func (v *View) StepBack() bool {
	if v.pos <= 0 {
		return false
	}
	v.pos--
	return true
}

// StepOver advances to the next event at the current depth or
// shallower, skipping callee events.
func (v *View) StepOver() bool {
	cur := v.Current()
	if cur == nil {
		return false
	}
	d := cur.Depth
	for i := v.pos + 1; i < len(v.t.Events); i++ {
		if v.t.Events[i].Depth <= d {
			v.pos = i
			return true
		}
	}
	return false
}

// StepOut advances to the next event strictly shallower than the
// current depth (back in the caller).
func (v *View) StepOut() bool {
	cur := v.Current()
	if cur == nil {
		return false
	}
	d := cur.Depth
	for i := v.pos + 1; i < len(v.t.Events); i++ {
		if v.t.Events[i].Depth < d {
			v.pos = i
			return true
		}
	}
	return false
}

// StepBackOver moves backward to the previous event at the current
// depth or shallower ("step back over", paper §4.3.1).
func (v *View) StepBackOver() bool {
	cur := v.Current()
	if cur == nil {
		return false
	}
	d := cur.Depth
	for i := v.pos - 1; i >= 0; i-- {
		if v.t.Events[i].Depth <= d {
			v.pos = i
			return true
		}
	}
	return false
}

// StepBackOut moves backward to the event in the caller that led
// here ("step back out").
func (v *View) StepBackOut() bool {
	cur := v.Current()
	if cur == nil {
		return false
	}
	d := cur.Depth
	for i := v.pos - 1; i >= 0; i-- {
		if v.t.Events[i].Depth < d {
			v.pos = i
			return true
		}
	}
	return false
}
