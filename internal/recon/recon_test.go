package recon

import (
	"strings"
	"testing"

	"traceback/internal/core"
	"traceback/internal/isa"
	"traceback/internal/module"
	"traceback/internal/snap"
	"traceback/internal/tbrt"
	"traceback/internal/trace"
	"traceback/internal/vm"
)

// fig2 is the paper's Figure 2 program (diamond + RPC-style call).
func fig2() *module.Module {
	return &module.Module{
		Name: "fig2",
		Code: []isa.Instr{
			{Op: isa.BEQ, A: 1, B: 2, Imm: 3}, // 0  line 1
			{Op: isa.MOVI, A: 3, Imm: 1},      // 1  line 2
			{Op: isa.JMP, Imm: 4},             // 2  line 2
			{Op: isa.MOVI, A: 3, Imm: 2},      // 3  line 3
			{Op: isa.CALL, Imm: 8},            // 4  line 4
			{Op: isa.ADD, A: 4, B: 0, C: 3},   // 5  line 5
			{Op: isa.MOVI, A: 1, Imm: 0},      // 6  line 6
			{Op: isa.SYS, Imm: isa.SysExit},   // 7  line 6
			{Op: isa.MOVI, A: 0, Imm: 7},      // 8  line 10 (rpc)
			{Op: isa.RET},                     // 9  line 11
		},
		Funcs: []module.Func{
			{Name: "main", Entry: 0, End: 8, Exported: true},
			{Name: "rpc", Entry: 8, End: 10},
		},
		Files: []string{"fig2.mc"},
		Lines: []module.LineEntry{
			{Index: 0, File: 0, Line: 1}, {Index: 1, File: 0, Line: 2},
			{Index: 3, File: 0, Line: 3}, {Index: 4, File: 0, Line: 4},
			{Index: 5, File: 0, Line: 5}, {Index: 6, File: 0, Line: 6},
			{Index: 8, File: 0, Line: 10}, {Index: 9, File: 0, Line: 11},
		},
	}
}

// runSnap instruments m, runs it to completion (or fault), and
// returns the reconstruction inputs.
func runSnap(t *testing.T, m *module.Module, cfg tbrt.Config, arg uint64) (*snap.Snap, *MapSet, *vm.Process) {
	t.Helper()
	res, err := core.Instrument(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(3)
	mach := w.NewMachine("host", 0)
	p, rt, err := tbrt.NewProcess(mach, m.Name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Load(res.Module); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartMain(arg); err != nil {
		t.Fatal(err)
	}
	vm.RunProcess(p, 2_000_000)
	var s *snap.Snap
	if snaps := rt.Snaps(); len(snaps) > 0 {
		s = snaps[0]
	} else {
		s = rt.PostMortemSnap()
	}
	return s, NewMapSet(res.Map), p
}

func lineSeq(tt *ThreadTrace) []uint32 {
	var out []uint32
	for _, e := range tt.Events {
		if e.Kind == EvLine {
			out = append(out, e.Line)
		}
	}
	return out
}

func eqU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFigure4Reconstruction is the paper's Figure 4: the Figure 2
// program's trace buffer reconstructs to the source-line history
// line1, line3 (else arm), line4 (call), rpc body, line5, line6.
func TestFigure4Reconstruction(t *testing.T) {
	s, maps, _ := runSnap(t, fig2(), tbrt.Config{}, 0)
	pt, err := Reconstruct(s, maps)
	if err != nil {
		t.Fatal(err)
	}
	tt, ok := pt.ThreadByTID(1)
	if !ok {
		t.Fatalf("no thread 1 in %d threads", len(pt.Threads))
	}
	want := []uint32{1, 3, 4, 10, 11, 5, 6}
	if got := lineSeq(tt); !eqU32(got, want) {
		t.Fatalf("line sequence = %v, want %v", got, want)
	}
	// The call line must be annotated with its target.
	var callEv, rpcEv *Event
	for i := range tt.Events {
		e := &tt.Events[i]
		if e.Kind == EvLine && e.Line == 4 {
			callEv = e
		}
		if e.Kind == EvLine && e.Line == 10 {
			rpcEv = e
		}
	}
	if callEv == nil || callEv.CallTo != "rpc" {
		t.Errorf("call annotation = %+v", callEv)
	}
	// Call hierarchy: rpc body is one level deeper than main.
	if rpcEv == nil || callEv == nil || rpcEv.Depth != callEv.Depth+1 {
		t.Errorf("depths: call=%d rpc=%d", callEv.Depth, rpcEv.Depth)
	}
	if rpcEv.Func != "rpc" || callEv.Func != "main" {
		t.Errorf("functions: call in %q, body in %q", callEv.Func, rpcEv.Func)
	}
	if tt.Truncated {
		t.Error("short trace wrongly marked truncated")
	}
}

func TestExpandPathDiamond(t *testing.T) {
	d := &module.MapDAG{Blocks: []module.MapBlock{
		{Start: 0, End: 1, Bit: -1, Succs: []int{1, 2}}, // header
		{Start: 1, End: 2, Bit: 0, Succs: []int{3}},     // then-arm
		{Start: 2, End: 3, Bit: 1, Succs: []int{3}},     // else-arm
		{Start: 3, End: 4, Bit: -1},                     // join (implied)
	}}
	if got := ExpandPath(d, 1<<0); !eqInts(got, []int{0, 1, 3}) {
		t.Errorf("then path = %v", got)
	}
	if got := ExpandPath(d, 1<<1); !eqInts(got, []int{0, 2, 3}) {
		t.Errorf("else path = %v", got)
	}
	// No bits: run ended at the header (left the DAG immediately).
	if got := ExpandPath(d, 0); !eqInts(got, []int{0}) {
		t.Errorf("empty path = %v", got)
	}
}

func TestExpandPathNestedJoin(t *testing.T) {
	// header -> {A, B}; A -> {C, D}; B -> C; C and D exit.
	d := &module.MapDAG{Blocks: []module.MapBlock{
		{Start: 0, End: 1, Bit: -1, Succs: []int{1, 2}},
		{Start: 1, End: 2, Bit: 0, Succs: []int{3, 4}}, // A
		{Start: 2, End: 3, Bit: 1, Succs: []int{3}},    // B
		{Start: 3, End: 4, Bit: 2},                     // C
		{Start: 4, End: 5, Bit: 3},                     // D
	}}
	if got := ExpandPath(d, 1<<0|1<<3); !eqInts(got, []int{0, 1, 4}) {
		t.Errorf("A,D path = %v", got)
	}
	if got := ExpandPath(d, 1<<1|1<<2); !eqInts(got, []int{0, 2, 3}) {
		t.Errorf("B,C path = %v", got)
	}
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestExceptionTrimming: the trace must end at the exact faulting
// source line, not at the end of the faulting basic block (paper
// §4.2).
func TestExceptionTrimming(t *testing.T) {
	m := &module.Module{
		Name: "trim",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 1, Imm: 4},    // 0 line 1
			{Op: isa.MOVI, A: 2, Imm: 0},    // 1 line 2
			{Op: isa.DIV, A: 3, B: 1, C: 2}, // 2 line 3  <- faults
			{Op: isa.MOVI, A: 4, Imm: 5},    // 3 line 4  (same block, never runs)
			{Op: isa.MOVI, A: 1, Imm: 0},    // 4 line 5
			{Op: isa.SYS, Imm: isa.SysExit}, // 5 line 5
		},
		Funcs: []module.Func{{Name: "main", Entry: 0, End: 6, Exported: true}},
		Files: []string{"trim.mc"},
		Lines: []module.LineEntry{
			{Index: 0, File: 0, Line: 1}, {Index: 1, File: 0, Line: 2},
			{Index: 2, File: 0, Line: 3}, {Index: 3, File: 0, Line: 4},
			{Index: 4, File: 0, Line: 5},
		},
	}
	s, maps, p := runSnap(t, m, tbrt.Config{Policy: tbrt.DefaultPolicy()}, 0)
	if p.FatalSignal != vm.SigFpe {
		t.Fatalf("signal = %s", vm.SignalName(p.FatalSignal))
	}
	pt, err := Reconstruct(s, maps)
	if err != nil {
		t.Fatal(err)
	}
	tt, ok := pt.ThreadByTID(1)
	if !ok {
		t.Fatal("no thread")
	}
	if !tt.Faulted {
		t.Error("thread not marked faulted")
	}
	want := []uint32{1, 2, 3} // trimmed: lines 4 and 5 never ran
	if got := lineSeq(tt); !eqU32(got, want) {
		t.Fatalf("lines = %v, want %v", got, want)
	}
	// The history ends with the exception record (a snap marker may
	// follow it — the snap itself is part of the trace).
	sawExc := false
	for _, e := range tt.Events {
		if e.Kind == EvException {
			sawExc = true
		}
		if e.Kind == EvLine && sawExc {
			t.Errorf("line event after the exception: %+v", e)
		}
	}
	if !sawExc {
		t.Error("no exception event")
	}
	var fault *Event
	for i := range tt.Events {
		if tt.Events[i].Fault {
			fault = &tt.Events[i]
		}
	}
	if fault == nil || fault.Line != 3 {
		t.Errorf("fault marker = %+v, want line 3", fault)
	}
}

// TestRepeatCollapsing: a loop shows up as a repeated line, not as
// thousands of events.
func TestRepeatCollapsing(t *testing.T) {
	m := &module.Module{
		Name: "loop",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 1, Imm: 50},       // 0 line 1
			{Op: isa.ADDI, A: 1, B: 1, Imm: -1}, // 1 line 2 (loop)
			{Op: isa.BGT, A: 1, B: 0, Imm: 1},   // 2 line 2
			{Op: isa.MOVI, A: 1, Imm: 0},        // 3 line 3
			{Op: isa.SYS, Imm: isa.SysExit},     // 4 line 3
		},
		Funcs: []module.Func{{Name: "main", Entry: 0, End: 5, Exported: true}},
		Files: []string{"loop.mc"},
		Lines: []module.LineEntry{
			{Index: 0, File: 0, Line: 1}, {Index: 1, File: 0, Line: 2},
			{Index: 3, File: 0, Line: 3},
		},
	}
	s, maps, _ := runSnap(t, m, tbrt.Config{}, 0)
	pt, err := Reconstruct(s, maps)
	if err != nil {
		t.Fatal(err)
	}
	tt, _ := pt.ThreadByTID(1)
	var loopEv *Event
	n := 0
	for i := range tt.Events {
		if tt.Events[i].Kind == EvLine && tt.Events[i].Line == 2 {
			loopEv = &tt.Events[i]
			n++
		}
	}
	if n != 1 {
		t.Fatalf("loop line appears in %d events, want 1 collapsed", n)
	}
	if loopEv.Repeat != 49 {
		t.Errorf("repeat = %d, want 49 (50 iterations)", loopEv.Repeat)
	}
}

// TestWrappedBufferTruncation: a long run in a small buffer loses its
// oldest history but reconstructs the newest records cleanly.
func TestWrappedBufferTruncation(t *testing.T) {
	m := &module.Module{
		Name: "long",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 1, Imm: 3000},
			{Op: isa.ADDI, A: 1, B: 1, Imm: -1},
			{Op: isa.BGT, A: 1, B: 0, Imm: 1},
			{Op: isa.MOVI, A: 1, Imm: 0},
			{Op: isa.SYS, Imm: isa.SysExit},
		},
		Funcs: []module.Func{{Name: "main", Entry: 0, End: 5, Exported: true}},
		Files: []string{"l.mc"},
		Lines: []module.LineEntry{{Index: 0, File: 0, Line: 1}},
	}
	s, maps, _ := runSnap(t, m, tbrt.Config{BufferWords: 128, SubBuffers: 4}, 0)
	pt, err := Reconstruct(s, maps)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Threads) == 0 {
		t.Fatal("no threads recovered")
	}
	found := false
	for _, tt := range pt.Threads {
		if tt.Truncated {
			found = true
		}
	}
	if !found {
		t.Error("wrapped buffer not marked truncated")
	}
}

// TestKill9Reconstruction: after kill -9, the committed sub-buffers
// still reconstruct (paper §3.2's whole point).
func TestKill9Reconstruction(t *testing.T) {
	m := fig2()
	// Make main spin forever after the call so we can kill it.
	m.Code[5] = isa.Instr{Op: isa.MOVI, A: 5, Imm: 1 << 30} // line 5
	m.Code[6] = isa.Instr{Op: isa.ADDI, A: 5, B: 5, Imm: -1}
	m.Code[7] = isa.Instr{Op: isa.JMP, Imm: 6}
	res, err := core.Instrument(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(3)
	mach := w.NewMachine("host", 0)
	p, rt, err := tbrt.NewProcess(mach, "victim", tbrt.Config{BufferWords: 256, SubBuffers: 4})
	if err != nil {
		t.Fatal(err)
	}
	p.Load(res.Module)
	p.StartMain(0)
	mach.World.Run(20000, nil)
	mach.KillProcess(p)

	s := rt.PostMortemSnap()
	pt, err := Reconstruct(s, NewMapSet(res.Map))
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Threads) == 0 {
		t.Fatal("nothing reconstructed after kill -9")
	}
	lines := 0
	for _, tt := range pt.Threads {
		for _, e := range tt.Events {
			if e.Kind == EvLine {
				lines++
			}
		}
	}
	if lines == 0 {
		t.Error("no source lines recovered from committed sub-buffers")
	}
}

func TestRenderOutput(t *testing.T) {
	s, maps, _ := runSnap(t, fig2(), tbrt.Config{}, 0)
	pt, err := Reconstruct(s, maps)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	src := map[string][]string{"fig2.mc": {
		"if (a == b)", "x = 1;", "x = 2;", "r = rpc();", "y = r + x;", "exit(0);",
	}}
	Render(&buf, pt, RenderOptions{Source: func(f string) []string { return src[f] }})
	out := buf.String()
	for _, want := range []string{"fig2.mc:1", "fig2.mc:4", "call rpc", "x = 2;", "thread 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestViewStepping(t *testing.T) {
	s, maps, _ := runSnap(t, fig2(), tbrt.Config{}, 0)
	pt, err := Reconstruct(s, maps)
	if err != nil {
		t.Fatal(err)
	}
	tt, _ := pt.ThreadByTID(1)
	v := NewView(tt)
	v.SeekOldest()
	// Walk forward to the call line (line 4).
	for v.Current() != nil && !(v.Current().Kind == EvLine && v.Current().Line == 4) {
		if !v.Step() {
			t.Fatal("never reached the call line")
		}
	}
	// Step over the call: should land past the rpc body (line 5),
	// skipping line 10/11.
	if !v.StepOver() {
		t.Fatal("step over failed")
	}
	if e := v.Current(); e.Kind != EvLine || e.Line != 5 {
		t.Errorf("after step-over: %+v, want line 5", e)
	}
	// Step back into: plain StepBack lands on rpc's last event.
	if !v.StepBack() {
		t.Fatal("step back failed")
	}
	if e := v.Current(); e.Line != 11 || e.Func != "rpc" {
		t.Errorf("after step-back: line %d in %q, want 11 in rpc", e.Line, e.Func)
	}
	// Step back out: back to the caller's call line.
	if !v.StepBackOut() {
		t.Fatal("step back out failed")
	}
	if e := v.Current(); e.Line != 4 {
		t.Errorf("after step-back-out: line %d, want 4", e.Line)
	}
}

func TestReconstructMissingMapfile(t *testing.T) {
	s, _, _ := runSnap(t, fig2(), tbrt.Config{}, 0)
	_, err := Reconstruct(s, NewMapSet())
	if err == nil || !strings.Contains(err.Error(), "no mapfile") {
		t.Errorf("err = %v, want missing-mapfile error", err)
	}
}

// A snap with a bad-DAG module reconstructs other modules and flags
// the untraceable one.
func TestBadDAGRecordEvent(t *testing.T) {
	recs := []trace.Record{
		{Kind: trace.KindThreadStart, Payload: []trace.Word{1, 0, 0}},
		{Kind: trace.KindNone, DAGID: trace.BadDAGID},
	}
	seg := segment{tid: 1, recs: recs}
	tt, err := expandSegment(&snap.Snap{}, NewMapSet(), seg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range tt.Events {
		if e.Kind == EvBadDAG {
			found = true
		}
	}
	if !found {
		t.Error("bad-DAG record produced no event")
	}
}
