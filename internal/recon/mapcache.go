package recon

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"traceback/internal/module"
)

// MapResolver resolves a module checksum to its mapfile — the lookup
// every reconstruction step performs to tie trace records back to
// instrumentation output (paper §2.3). *MapSet is the eager,
// immutable implementation; *MapCache adds shared, lazy, counted
// resolution for the parallel pipeline.
type MapResolver interface {
	ForChecksum(sum string) (*module.MapFile, bool)
}

var (
	_ MapResolver = (*MapSet)(nil)
	_ MapResolver = (*MapCache)(nil)
)

// MapLoader fetches (typically: parses) the mapfile for a module
// checksum. It is called at most once per checksum by a MapCache.
type MapLoader func(checksum string) (*module.MapFile, error)

// MapCache is a concurrency-safe, checksum-keyed mapfile resolution
// cache shared across pipeline workers, mirroring the §3.4
// instrumentation cache (internal/core.Cache) on the decode side: N
// snaps from the same binary parse the mapfile once. Entries are
// immutable once loaded; concurrent requests for the same checksum
// coalesce onto a single loader call.
type MapCache struct {
	load MapLoader

	mu      sync.Mutex
	entries map[string]*mapEntry

	hits   atomic.Int64
	misses atomic.Int64
}

// mapEntry is a single-flight slot: the first requester closes ready
// after the loader returns; later requesters block on it.
type mapEntry struct {
	ready chan struct{}
	mf    *module.MapFile
	err   error
}

// NewMapCache creates a cache over the given loader.
func NewMapCache(load MapLoader) *MapCache {
	return &MapCache{load: load, entries: map[string]*mapEntry{}}
}

// ForChecksum resolves a checksum through the cache, loading on first
// sight. A loader error is cached (negative caching) and reported as
// a miss of the mapfile, matching MapSet semantics.
func (c *MapCache) ForChecksum(sum string) (*module.MapFile, bool) {
	c.mu.Lock()
	e, ok := c.entries[sum]
	if ok {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.ready
		return e.mf, e.err == nil && e.mf != nil
	}
	e = &mapEntry{ready: make(chan struct{})}
	c.entries[sum] = e
	c.mu.Unlock()

	c.misses.Add(1)
	e.mf, e.err = c.load(sum)
	close(e.ready)
	return e.mf, e.err == nil && e.mf != nil
}

// Hits reports how many lookups were served from the cache.
func (c *MapCache) Hits() int64 { return c.hits.Load() }

// Misses reports how many lookups invoked the loader.
func (c *MapCache) Misses() int64 { return c.misses.Load() }

// Len reports the number of cached checksums (including negative
// entries).
func (c *MapCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// DirLoader lazily resolves checksums against a directory of
// *.map.json mapfiles: files are parsed one at a time, on demand,
// until the requested checksum is found, and each file is parsed at
// most once. Safe for concurrent use.
type DirLoader struct {
	mu sync.Mutex
	// pending lists files not yet parsed, in sorted order for
	// deterministic resolution when checksums collide.
	pending    []string
	byChecksum map[string]*module.MapFile
}

// NewDirLoader indexes dir without parsing anything yet.
func NewDirLoader(dir string) (*DirLoader, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.map.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return &DirLoader{pending: paths, byChecksum: map[string]*module.MapFile{}}, nil
}

// NumFiles reports how many mapfiles the loader found in the
// directory.
func (l *DirLoader) NumFiles() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending) + len(l.byChecksum)
}

// Load parses mapfiles until one with the requested checksum appears.
func (l *DirLoader) Load(sum string) (*module.MapFile, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if mf, ok := l.byChecksum[sum]; ok {
		return mf, nil
	}
	for len(l.pending) > 0 {
		p := l.pending[0]
		l.pending = l.pending[1:]
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		mf, err := module.LoadMapFile(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if _, dup := l.byChecksum[mf.Checksum]; !dup {
			l.byChecksum[mf.Checksum] = mf
		}
		if mf.Checksum == sum {
			return mf, nil
		}
	}
	return nil, fmt.Errorf("no mapfile with checksum %s", sum)
}

// SourceCache memoizes source-file line splits for rendering. It is
// safe for concurrent use, unlike the ad-hoc closure-captured map it
// replaces in cmd/tbrecon (a lazily-built lookup table the parallel
// pipeline would otherwise race on).
type SourceCache struct {
	mu    sync.Mutex
	read  func(file string) []string
	lines map[string][]string
}

// NewSourceCache wraps a file reader in a memoizing cache.
func NewSourceCache(read func(file string) []string) *SourceCache {
	return &SourceCache{read: read, lines: map[string][]string{}}
}

// Lines returns the (cached) lines of file.
func (c *SourceCache) Lines(file string) []string {
	c.mu.Lock()
	lines, ok := c.lines[file]
	if !ok {
		// Drop the lock during the read: file reads may be slow and
		// the small risk of a duplicate read beats serializing on I/O.
		c.mu.Unlock()
		lines = c.read(file)
		c.mu.Lock()
		if prev, again := c.lines[file]; again {
			lines = prev
		} else {
			c.lines[file] = lines
		}
	}
	c.mu.Unlock()
	return lines
}
