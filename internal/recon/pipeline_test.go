package recon

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"traceback/internal/core"
	"traceback/internal/isa"
	"traceback/internal/module"
	"traceback/internal/snap"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
)

// snapAndMap instruments m, runs it to completion (or fault), and
// returns the snap plus the raw mapfile. Benchmark-friendly twin of
// runSnap.
func snapAndMap(tb testing.TB, m *module.Module, cfg tbrt.Config) (*snap.Snap, *module.MapFile) {
	tb.Helper()
	res, err := core.Instrument(m, core.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	w := vm.NewWorld(3)
	mach := w.NewMachine("host", 0)
	p, rt, err := tbrt.NewProcess(mach, m.Name, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := p.Load(res.Module); err != nil {
		tb.Fatal(err)
	}
	if _, err := p.StartMain(0); err != nil {
		tb.Fatal(err)
	}
	vm.RunProcess(p, 2_000_000)
	var s *snap.Snap
	if snaps := rt.Snaps(); len(snaps) > 0 {
		s = snaps[0]
	} else {
		s = rt.PostMortemSnap()
	}
	return s, res.Map
}

// memLoader serves mapfiles from memory, for caches in tests.
func memLoader(mfs ...*module.MapFile) MapLoader {
	bySum := map[string]*module.MapFile{}
	for _, mf := range mfs {
		bySum[mf.Checksum] = mf
	}
	return func(sum string) (*module.MapFile, error) {
		if mf, ok := bySum[sum]; ok {
			return mf, nil
		}
		return nil, fmt.Errorf("no mapfile with checksum %s", sum)
	}
}

// renderResults renders a batch the way cmd/tbrecon does, giving a
// single byte-comparable string per run.
func renderResults(results []Result) string {
	var sb strings.Builder
	for _, r := range results {
		fmt.Fprintf(&sb, "== %s ==\n", r.Name)
		if r.Err != nil {
			fmt.Fprintf(&sb, "error: %v\n", r.Err)
			continue
		}
		Render(&sb, r.Trace, RenderOptions{})
	}
	return sb.String()
}

// stressFixtures builds a diverse snap set: straight-line control flow
// with a call (fig2), a collapsed loop, a wrapped buffer that lost
// history, and a divide fault with trimming.
func stressFixtures(tb testing.TB) ([]Source, []*module.MapFile) {
	loop := &module.Module{
		Name: "loop",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 1, Imm: 50},
			{Op: isa.ADDI, A: 1, B: 1, Imm: -1},
			{Op: isa.BGT, A: 1, B: 0, Imm: 1},
			{Op: isa.MOVI, A: 1, Imm: 0},
			{Op: isa.SYS, Imm: isa.SysExit},
		},
		Funcs: []module.Func{{Name: "main", Entry: 0, End: 5, Exported: true}},
		Files: []string{"loop.mc"},
		Lines: []module.LineEntry{
			{Index: 0, File: 0, Line: 1}, {Index: 1, File: 0, Line: 2},
			{Index: 3, File: 0, Line: 3},
		},
	}
	long := &module.Module{
		Name: "long",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 1, Imm: 3000},
			{Op: isa.ADDI, A: 1, B: 1, Imm: -1},
			{Op: isa.BGT, A: 1, B: 0, Imm: 1},
			{Op: isa.MOVI, A: 1, Imm: 0},
			{Op: isa.SYS, Imm: isa.SysExit},
		},
		Funcs: []module.Func{{Name: "main", Entry: 0, End: 5, Exported: true}},
		Files: []string{"l.mc"},
		Lines: []module.LineEntry{{Index: 0, File: 0, Line: 1}},
	}
	trim := &module.Module{
		Name: "trim",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 1, Imm: 4},
			{Op: isa.MOVI, A: 2, Imm: 0},
			{Op: isa.DIV, A: 3, B: 1, C: 2},
			{Op: isa.MOVI, A: 4, Imm: 5},
			{Op: isa.MOVI, A: 1, Imm: 0},
			{Op: isa.SYS, Imm: isa.SysExit},
		},
		Funcs: []module.Func{{Name: "main", Entry: 0, End: 6, Exported: true}},
		Files: []string{"trim.mc"},
		Lines: []module.LineEntry{
			{Index: 0, File: 0, Line: 1}, {Index: 1, File: 0, Line: 2},
			{Index: 2, File: 0, Line: 3}, {Index: 3, File: 0, Line: 4},
			{Index: 4, File: 0, Line: 5},
		},
	}
	type fixture struct {
		m   *module.Module
		cfg tbrt.Config
	}
	fixtures := []fixture{
		{fig2(), tbrt.Config{}},
		{loop, tbrt.Config{}},
		{long, tbrt.Config{BufferWords: 128, SubBuffers: 4}},
		{trim, tbrt.Config{Policy: tbrt.DefaultPolicy()}},
	}
	var sources []Source
	var mfs []*module.MapFile
	for _, fx := range fixtures {
		s, mf := snapAndMap(tb, fx.m, fx.cfg)
		sources = append(sources, SnapSource(fx.m.Name, s))
		mfs = append(mfs, mf)
	}
	return sources, mfs
}

// TestPipelineMatchesOracleStress renders a diverse snap batch through
// the parallel pipeline at several job counts and demands the output
// be byte-identical to the sequential Reconstruct oracle. Run under
// -race (make test-race) this doubles as the shared-state stress test:
// all workers hit one MapCache concurrently.
func TestPipelineMatchesOracleStress(t *testing.T) {
	sources, mfs := stressFixtures(t)

	// Sequential oracle over the eager, immutable MapSet.
	oracleMaps := NewMapSet(mfs...)
	var oracle []Result
	for _, src := range sources {
		s, err := src.Load()
		if err != nil {
			t.Fatal(err)
		}
		pt, err := Reconstruct(s, oracleMaps)
		oracle = append(oracle, Result{Name: src.Name, Trace: pt, Err: err})
	}
	want := renderResults(oracle)

	for _, jobs := range []int{1, 4, 16} {
		for rep := 0; rep < 4; rep++ {
			pipe := NewPipeline(NewMapCache(memLoader(mfs...)), jobs)
			got := renderResults(pipe.Run(sources))
			if got != want {
				t.Fatalf("jobs=%d rep=%d: pipeline output diverges from oracle\n--- pipeline ---\n%s\n--- oracle ---\n%s",
					jobs, rep, got, want)
			}
			snap := pipe.Snapshot()
			if snap.SnapsProcessed != int64(len(sources)) || snap.SnapErrors != 0 {
				t.Fatalf("jobs=%d: stats = %s", jobs, snap)
			}
		}
	}
}

// TestPipelineDeterminismFigure4: the paper's Figure 4 reconstruction,
// rendered twice through the parallel pipeline, must be byte-identical
// across runs and identical to the sequential render.
func TestPipelineDeterminismFigure4(t *testing.T) {
	s, maps, _ := runSnap(t, fig2(), tbrt.Config{}, 0)

	pt, err := Reconstruct(s, maps)
	if err != nil {
		t.Fatal(err)
	}
	var seq strings.Builder
	Render(&seq, pt, RenderOptions{})

	var outs []string
	for run := 0; run < 2; run++ {
		pipe := NewPipeline(maps, 8)
		results := pipe.Run([]Source{SnapSource("fig4", s)})
		if results[0].Err != nil {
			t.Fatal(results[0].Err)
		}
		var buf strings.Builder
		Render(&buf, results[0].Trace, RenderOptions{})
		outs = append(outs, buf.String())
	}
	if outs[0] != outs[1] {
		t.Fatalf("figure-4 render differs between identical pipeline runs:\n%s\nvs\n%s", outs[0], outs[1])
	}
	if outs[0] != seq.String() {
		t.Fatalf("figure-4 pipeline render differs from sequential:\n%s\nvs\n%s", outs[0], seq.String())
	}
}

// distributedSnaps runs the Figure 6 client/server RPC pair on two
// skewed machines and returns the raw snaps (runDistributed's twin
// that stops before reconstruction).
func distributedSnaps(t *testing.T, skew int64) (*snap.Snap, *snap.Snap, []*module.MapFile) {
	t.Helper()
	resC, err := core.Instrument(clientMod(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resS, err := core.Instrument(serverMod(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(5)
	mc := w.NewMachine("client-box", 0)
	ms := w.NewMachine("server-box", skew)
	pc, rtc, err := tbrt.NewProcess(mc, "client", tbrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ps, rts, err := tbrt.NewProcess(ms, "server", tbrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []struct {
		p *vm.Process
		m *module.Module
	}{{pc, resC.Module}, {ps, resS.Module}} {
		if _, err := x.p.Load(x.m); err != nil {
			t.Fatal(err)
		}
		x.p.AllocRegion(16384)
		if _, err := x.p.StartMain(0); err != nil {
			t.Fatal(err)
		}
	}
	w.RegisterEndpoint(7, ps)
	w.Run(2_000_000, func() bool { return pc.Exited && ps.Exited })
	if !pc.Exited || !ps.Exited {
		t.Fatalf("client exited=%v server exited=%v", pc.Exited, ps.Exited)
	}
	return rtc.PostMortemSnap(), rts.PostMortemSnap(), []*module.MapFile{resC.Map, resS.Map}
}

// TestPipelineDeterminismFigure6: the Figure 6 distributed
// reconstruction — both snaps through the pipeline, stitched into one
// logical thread, rendered — must be byte-identical across runs and
// match the sequential path.
func TestPipelineDeterminismFigure6(t *testing.T) {
	sc, ss, mfs := distributedSnaps(t, -1_000_000)
	sources := []Source{SnapSource("client", sc), SnapSource("server", ss)}

	renderStitched := func(pts []*ProcessTrace) string {
		mt := Stitch(pts)
		if len(mt.Logical) != 1 {
			t.Fatalf("%d logical threads, want 1", len(mt.Logical))
		}
		var buf strings.Builder
		RenderLogical(&buf, mt.Logical[0], RenderOptions{})
		return buf.String()
	}

	maps := NewMapSet(mfs...)
	ptc, err := Reconstruct(sc, maps)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := Reconstruct(ss, maps)
	if err != nil {
		t.Fatal(err)
	}
	seq := renderStitched([]*ProcessTrace{ptc, pts})

	var outs []string
	for run := 0; run < 2; run++ {
		pipe := NewPipeline(NewMapCache(memLoader(mfs...)), 8)
		results := pipe.Run(sources)
		traces := make([]*ProcessTrace, len(results))
		for i, r := range results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			traces[i] = r.Trace
		}
		outs = append(outs, renderStitched(traces))
	}
	if outs[0] != outs[1] {
		t.Fatalf("figure-6 logical render differs between identical pipeline runs:\n%s\nvs\n%s", outs[0], outs[1])
	}
	if outs[0] != seq {
		t.Fatalf("figure-6 pipeline render differs from sequential:\n%s\nvs\n%s", outs[0], seq)
	}
}

// TestPipelineCacheSharing: a batch of snaps from the same binary must
// parse the mapfile once (misses == distinct checksums) and serve
// every further lookup from the cache.
func TestPipelineCacheSharing(t *testing.T) {
	s, mf := snapAndMap(t, fig2(), tbrt.Config{})
	var sources []Source
	for i := 0; i < 8; i++ {
		sources = append(sources, SnapSource(fmt.Sprintf("snap%d", i), s))
	}
	loads := 0
	inner := memLoader(mf)
	cache := NewMapCache(func(sum string) (*module.MapFile, error) {
		loads++ // single-flight: only ever called under one entry's miss
		return inner(sum)
	})
	pipe := NewPipeline(cache, 4)
	for _, r := range pipe.Run(sources) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	snap := pipe.Snapshot()
	if snap.CacheMisses != 1 {
		t.Errorf("cache misses = %d, want 1 (one distinct checksum)", snap.CacheMisses)
	}
	if snap.CacheHits == 0 {
		t.Error("cache hits = 0, want > 0 (shared-binary batch must hit)")
	}
	if loads != 1 {
		t.Errorf("loader invoked %d times, want 1", loads)
	}
	if snap.SnapsProcessed != int64(len(sources)) {
		t.Errorf("snaps processed = %d, want %d", snap.SnapsProcessed, len(sources))
	}
}

// TestPipelineErrorMatchesOracle: when reconstruction fails (missing
// mapfile), the pipeline must surface the same error the sequential
// path does — the ordered join decides which segment's error wins.
func TestPipelineErrorMatchesOracle(t *testing.T) {
	s, _ := snapAndMap(t, fig2(), tbrt.Config{})
	_, seqErr := Reconstruct(s, NewMapSet())
	if seqErr == nil {
		t.Fatal("oracle unexpectedly succeeded without mapfiles")
	}
	for _, jobs := range []int{1, 8} {
		pipe := NewPipeline(NewMapCache(memLoader()), jobs)
		results := pipe.Run([]Source{SnapSource("fig2", s)})
		if results[0].Err == nil {
			t.Fatalf("jobs=%d: pipeline succeeded where oracle failed", jobs)
		}
		want := "fig2: " + seqErr.Error()
		if results[0].Err.Error() != want {
			t.Errorf("jobs=%d: err = %q, want %q", jobs, results[0].Err, want)
		}
		if pipe.Snapshot().SnapErrors != 1 {
			t.Errorf("jobs=%d: snap errors = %d, want 1", jobs, pipe.Snapshot().SnapErrors)
		}
	}
}

// TestPipelineBatchLoadError: a source that fails to load reports its
// error in position without disturbing the rest of the batch.
func TestPipelineBatchLoadError(t *testing.T) {
	s, mf := snapAndMap(t, fig2(), tbrt.Config{})
	sources := []Source{
		SnapSource("ok1", s),
		{Name: "broken", Load: func() (*snap.Snap, error) { return nil, fmt.Errorf("disk gone") }},
		SnapSource("ok2", s),
	}
	pipe := NewPipeline(NewMapCache(memLoader(mf)), 4)
	results := pipe.Run(sources)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy sources failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "disk gone") {
		t.Fatalf("broken source err = %v", results[1].Err)
	}
	snap := pipe.Snapshot()
	if snap.SnapsProcessed != 2 || snap.SnapErrors != 1 {
		t.Fatalf("stats = %s", snap)
	}
}

// bigModule builds a module with n leaf functions, each called once
// from main, with a full line table — its mapfile is large, which is
// what makes per-snap re-parsing (the pre-pipeline tbrecon behavior)
// expensive.
func bigModule(n int) *module.Module {
	m := &module.Module{Name: "big", Files: []string{"big.mc"}}
	entry := func(i int) int32 { return int32(n + 2 + i*3) }
	for i := 0; i < n; i++ {
		m.Code = append(m.Code, isa.Instr{Op: isa.CALL, Imm: entry(i)})
	}
	m.Code = append(m.Code,
		isa.Instr{Op: isa.MOVI, A: 1, Imm: 0},
		isa.Instr{Op: isa.SYS, Imm: isa.SysExit},
	)
	for i := 0; i < n; i++ {
		m.Code = append(m.Code,
			isa.Instr{Op: isa.MOVI, A: 3, Imm: int32(i)},
			isa.Instr{Op: isa.ADD, A: 4, B: 4, C: 3},
			isa.Instr{Op: isa.RET},
		)
	}
	m.Funcs = append(m.Funcs, module.Func{Name: "main", Entry: 0, End: uint32(n + 2), Exported: true})
	for i := 0; i < n; i++ {
		m.Funcs = append(m.Funcs, module.Func{
			Name: fmt.Sprintf("leaf%d", i), Entry: uint32(entry(i)), End: uint32(entry(i)) + 3,
		})
	}
	for i := range m.Code {
		m.Lines = append(m.Lines, module.LineEntry{Index: uint32(i), File: 0, Line: uint32(i + 1)})
	}
	return m
}

// benchCorpus writes nSnaps copies of a big-module snap plus its
// mapfile into a fresh directory tree, returning the snap paths and
// the mapfile path.
func benchCorpus(tb testing.TB, nSnaps int) (snapPaths []string, mapsDir, mapPath string) {
	tb.Helper()
	s, mf := snapAndMap(tb, bigModule(512), tbrt.Config{BufferWords: 512, SubBuffers: 4})
	root := tb.TempDir()
	mapsDir = filepath.Join(root, "maps")
	if err := os.MkdirAll(mapsDir, 0o755); err != nil {
		tb.Fatal(err)
	}
	mapPath = filepath.Join(mapsDir, "big.map.json")
	mw, err := os.Create(mapPath)
	if err != nil {
		tb.Fatal(err)
	}
	if err := mf.Save(mw); err != nil {
		tb.Fatal(err)
	}
	mw.Close()
	for i := 0; i < nSnaps; i++ {
		p := filepath.Join(root, fmt.Sprintf("run%02d.snap.json", i))
		f, err := os.Create(p)
		if err != nil {
			tb.Fatal(err)
		}
		if err := s.Save(f); err != nil {
			tb.Fatal(err)
		}
		f.Close()
		snapPaths = append(snapPaths, p)
	}
	return snapPaths, mapsDir, mapPath
}

// BenchmarkPipelineRecon compares batch reconstruction of 16 snaps
// sharing one binary: the sequential baseline re-parses the mapfile
// for every snap (one tbrecon invocation per snap, the pre-pipeline
// workflow), the pipeline parses it once into the shared MapCache.
func BenchmarkPipelineRecon(b *testing.B) {
	const nSnaps = 16
	snapPaths, mapsDir, mapPath := benchCorpus(b, nSnaps)

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range snapPaths {
				f, err := os.Open(p)
				if err != nil {
					b.Fatal(err)
				}
				s, err := snap.LoadAuto(f)
				f.Close()
				if err != nil {
					b.Fatal(err)
				}
				mr, err := os.Open(mapPath)
				if err != nil {
					b.Fatal(err)
				}
				mf, err := module.LoadMapFile(mr)
				mr.Close()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Reconstruct(s, NewMapSet(mf)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("jobs8", func(b *testing.B) {
		sources := make([]Source, len(snapPaths))
		for i, p := range snapPaths {
			sources[i] = FileSource(p)
		}
		for i := 0; i < b.N; i++ {
			loader, err := NewDirLoader(mapsDir)
			if err != nil {
				b.Fatal(err)
			}
			pipe := NewPipeline(NewMapCache(loader.Load), 8)
			for _, r := range pipe.Run(sources) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
			if snap := pipe.Snapshot(); snap.CacheHits == 0 {
				b.Fatalf("no cache hits in a shared-binary batch: %s", snap)
			}
		}
	})
}
