package recon

import (
	"traceback/internal/isa"
	"traceback/internal/module"
	"traceback/internal/snap"
	"traceback/internal/trace"
	"traceback/internal/vm"
)

// ExpandPath decodes a DAG record's path bits into the executed block
// sequence (indexes into d.Blocks), paper §4.2. Blocks are stored in
// topological order, so walking greedily to the topologically
// earliest marked successor recovers the unique simple path the run
// took; a single bit-less successor is implied (its predecessors all
// branch unconditionally).
func ExpandPath(d *module.MapDAG, bits trace.Word) []int {
	path := []int{0}
	cur := 0
	for {
		b := &d.Blocks[cur]
		next := -1
		if len(b.Succs) == 1 && d.Blocks[b.Succs[0]].Bit < 0 {
			next = b.Succs[0]
		} else {
			for _, s := range b.Succs { // ascending topological order
				sb := &d.Blocks[s]
				if sb.Bit >= 0 && bits&(1<<uint(sb.Bit)) != 0 {
					next = s
					break
				}
			}
		}
		if next < 0 || next <= cur {
			break
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// ExpandManaged decodes a managed (bytecode-instrumented) DAG record:
// the header block always executed; every block whose line-boundary
// bit is set executed, in code order (paper §2.4 — line accuracy is
// all Java reconstruction needs).
func ExpandManaged(d *module.MapDAG, bits trace.Word) []int {
	path := []int{0}
	for i := 1; i < len(d.Blocks); i++ {
		b := &d.Blocks[i]
		if b.Bit >= 0 && bits&(1<<uint(b.Bit)) != 0 {
			path = append(path, i)
		}
	}
	return path
}

// expander turns one thread segment's records into events. All its
// state is per-segment; the snap and resolver are only read, so
// segments expand safely in parallel.
type expander struct {
	s    *snap.Snap
	maps MapResolver
	tt   *ThreadTrace

	depth     int
	funcStack []string

	// In-progress DAG state for re-issue merging.
	lastDAGID   uint32
	lastBits    trace.Word
	lastDAG     *module.MapDAG
	lastManaged bool
	lastMI      snap.ModuleInfo
	lastEmitted int // blocks of lastDAG already emitted
	havePending bool
	sawReissue  bool
	runID       int

	ts        uint64
	anchorSeq int
}

func expandSegment(s *snap.Snap, maps MapResolver, seg segment) (*ThreadTrace, error) {
	ex := &expander{s: s, maps: maps, tt: &ThreadTrace{TID: seg.tid}}
	for _, r := range seg.recs {
		if err := ex.record(r); err != nil {
			return nil, err
		}
	}
	return ex.tt, nil
}

func (ex *expander) anchor(ts uint64) {
	if ts != 0 {
		ex.ts = ts
		ex.anchorSeq = 0
	}
}

func (ex *expander) emit(e Event) {
	e.TS = ex.ts
	e.AnchorSeq = ex.anchorSeq
	ex.anchorSeq++
	e.Depth = ex.depth
	if len(ex.funcStack) > 0 && e.Func == "" {
		e.Func = ex.funcStack[len(ex.funcStack)-1]
	}
	ex.tt.Events = append(ex.tt.Events, e)
}

func (ex *expander) record(r trace.Record) error {
	switch r.Kind {
	case trace.KindNone:
		if r.BadDAG() {
			ex.emit(Event{Kind: EvBadDAG, Note: "module untraceable: DAG ID space exhausted"})
			ex.havePending = false
			return nil
		}
		if ex.sawReissue && ex.havePending && r.DAGID == ex.lastDAGID {
			// Mid-run re-issue: merge bits and continue the same run.
			ex.sawReissue = false
			ex.lastBits |= r.Bits
			ex.emitPending()
			return nil
		}
		ex.sawReissue = false
		mi, d, managed, err := resolveDAG(ex.s, ex.maps, r.DAGID)
		if err != nil {
			return err
		}
		ex.lastDAGID, ex.lastBits, ex.lastDAG, ex.lastMI = r.DAGID, r.Bits, d, mi
		ex.lastManaged = managed
		ex.lastEmitted = 0
		ex.havePending = true
		ex.runID++
		ex.emitPending()
	case trace.KindReissue:
		ex.sawReissue = true
	case trace.KindTimestamp:
		if ts, err := trace.DecodeTS(r); err == nil {
			ex.anchor(ts)
		}
	case trace.KindSyscallMark:
		m, err := trace.DecodeSyscallMark(r)
		if err != nil {
			return err
		}
		ex.anchor(m.TS)
		e := Event{Kind: EvSyscall, Note: isa.SysName(int(m.Num))}
		if mod, file, line, ok := lineForAddr(ex.s, ex.maps, m.Addr); ok {
			e.Module, e.File, e.Line = mod, file, line
		}
		ex.emit(e)
	case trace.KindSync:
		sy, err := trace.DecodeSync(r)
		if err != nil {
			return err
		}
		ex.anchor(sy.TS)
		cp := sy
		ex.emit(Event{Kind: EvSync, Sync: &cp,
			Note: sy.Point.String()})
	case trace.KindException:
		e, err := trace.DecodeException(r)
		if err != nil {
			return err
		}
		ex.anchor(e.TS)
		ex.trimAt(e.Addr)
		ex.emit(Event{Kind: EvException, Note: "exception " + signame(int(e.Code))})
		ex.tt.Faulted = true
	case trace.KindExceptionEnd:
		if ts, err := trace.DecodeTS(r); err == nil {
			ex.anchor(ts)
		}
		ex.emit(Event{Kind: EvExceptionEnd, Note: "control resumed after exception"})
	case trace.KindSnapMark:
		if ts, err := trace.DecodeTS(r); err == nil {
			ex.anchor(ts)
		}
		ex.emit(Event{Kind: EvSnapMark, Note: "snap taken"})
	case trace.KindThreadStart:
		ev, err := trace.DecodeThreadEvent(r)
		if err == nil {
			ex.anchor(ev.TS)
			ex.emit(Event{Kind: EvThreadStart})
		}
	case trace.KindThreadEnd:
		ev, err := trace.DecodeThreadEvent(r)
		if err == nil {
			ex.anchor(ev.TS)
			ex.emit(Event{Kind: EvThreadEnd})
		}
	}
	return nil
}

// emitPending expands the current DAG record's path and emits the
// blocks not yet emitted (a re-issued record extends the previously
// emitted prefix).
func (ex *expander) emitPending() {
	path := ex.expand()
	for _, bi := range path[ex.lastEmitted:] {
		ex.emitBlock(&ex.lastDAG.Blocks[bi])
	}
	ex.lastEmitted = len(path)
}

func (ex *expander) expand() []int {
	if ex.lastManaged {
		return ExpandManaged(ex.lastDAG, ex.lastBits)
	}
	return ExpandPath(ex.lastDAG, ex.lastBits)
}

// emitBlock expands one block into line events with call-hierarchy
// bookkeeping (paper §4.2, §4.3.1).
func (ex *expander) emitBlock(b *module.MapBlock) {
	if b.FuncEntry != "" {
		ex.funcStack = append(ex.funcStack, b.FuncEntry)
		ex.depth++
	}
	for i, ls := range b.Lines {
		e := Event{
			Kind:   EvLine,
			Module: ex.lastMI.Name,
			File:   ls.File,
			Line:   ls.Line,
		}
		if b.Call != module.CallNone && i == len(b.Lines)-1 {
			e.CallTo = b.CallTarget
			e.Note = "call " + b.CallTarget
		}
		ex.emitLine(e)
	}
	if b.FuncExit {
		if len(ex.funcStack) > 0 {
			ex.funcStack = ex.funcStack[:len(ex.funcStack)-1]
		}
		if ex.depth > 0 {
			ex.depth--
		}
	}
}

// emitLine merges consecutive duplicates (paper §4.2): a repetition
// within one record expansion is redundancy from instrumentation
// splitting an expression across blocks and is collapsed silently; a
// repetition across records is a real re-execution and bumps Repeat.
func (ex *expander) emitLine(e Event) {
	e.runID = ex.runID
	evs := ex.tt.Events
	if n := len(evs); n > 0 {
		last := &evs[n-1]
		if last.Kind == EvLine && last.Module == e.Module &&
			last.File == e.File && last.Line == e.Line && last.Depth == ex.depth {
			if e.CallTo != "" && last.CallTo == "" {
				last.CallTo = e.CallTo
				last.Note = e.Note
			}
			if last.runID == e.runID {
				return // redundancy within one expansion: collapse
			}
			last.runID = e.runID
			last.Repeat++
			return
		}
	}
	ex.emit(e)
}

// trimAt cuts the most recent block's lines back to the exception
// address (paper §4.2): events past the faulting line are removed and
// the faulting line is marked. An address outside the current module
// (an uninstrumented callee) leaves the trace at the call line.
func (ex *expander) trimAt(addr uint64) {
	if !ex.havePending || ex.lastDAG == nil {
		return
	}
	mi, ok := ex.s.ModuleForAddr(addr)
	if !ok || mi.Checksum != ex.lastMI.Checksum {
		// Fault in an uninstrumented callee: the last emitted line is
		// the call that led there (paper §2.2's return-point probes
		// guarantee this attribution).
		ex.markLastLineFault()
		return
	}
	rel := uint32(addr - uint64(mi.CodeBase))
	// Find the faulting line in the current run's blocks and drop any
	// events the expansion optimistically emitted past it.
	path := ex.expand()
	var cut *module.LineSpan
	for _, bi := range path {
		b := &ex.lastDAG.Blocks[bi]
		if rel < b.Start || rel >= b.End {
			continue
		}
		for i := range b.Lines {
			ls := &b.Lines[i]
			if rel >= ls.Start && rel < ls.End {
				cut = ls
				break
			}
		}
	}
	if cut == nil {
		ex.markLastLineFault()
		return
	}
	// Remove line events after the faulting line. Non-line events
	// (sync and syscall markers) are real and stay put.
	evs := ex.tt.Events
	cutAt := -1
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].Kind != EvLine {
			continue
		}
		if evs[i].File == cut.File && evs[i].Line == cut.Line {
			break
		}
		cutAt = i
	}
	if cutAt >= 0 {
		kept := evs[:cutAt]
		for _, e := range evs[cutAt:] {
			if e.Kind != EvLine {
				kept = append(kept, e)
			}
		}
		ex.tt.Events = kept
	}
	ex.markLastLineFault()
}

func (ex *expander) markLastLineFault() {
	for i := len(ex.tt.Events) - 1; i >= 0; i-- {
		if ex.tt.Events[i].Kind == EvLine {
			ex.tt.Events[i].Fault = true
			return
		}
	}
}

func signame(sig int) string { return vm.SignalName(sig) }
