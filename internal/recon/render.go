package recon

import (
	"fmt"
	"io"
	"strings"
)

// RenderOptions controls trace rendering.
type RenderOptions struct {
	// Source optionally maps file names to their lines so the trace
	// can show source text next to file:line.
	Source func(file string) []string
	// MaxEvents caps output per thread (0: unlimited).
	MaxEvents int
	// Flat disables call-hierarchy indentation.
	Flat bool
}

// Render writes a human-readable trace. View selection is
// fault-directed (paper §4.3.3): a faulting snap leads with the
// faulting thread's full history and highlights the faulting line; a
// hang snap leads with a one-line-per-thread summary of what each
// thread was last doing.
func Render(w io.Writer, pt *ProcessTrace, opts RenderOptions) {
	s := pt.Snap
	fmt.Fprintf(w, "snap: process %q on %s (pid %d), reason: %s\n",
		s.Process, s.Host, s.PID, s.Reason)
	if pt.Unrecoverable > 0 {
		fmt.Fprintf(w, "note: %d buffer(s) unrecoverable\n", pt.Unrecoverable)
	}

	hang := strings.Contains(s.Reason, "hang")
	if hang {
		fmt.Fprintf(w, "-- hang view: last activity per thread --\n")
		for _, t := range pt.Threads {
			fmt.Fprintf(w, "thread %d: %s\n", t.TID, lastActivity(t))
		}
		fmt.Fprintln(w)
	}

	order := make([]*ThreadTrace, len(pt.Threads))
	copy(order, pt.Threads)
	// Faulting thread first.
	for i, t := range order {
		if t.TID == s.TriggerTID || t.Faulted {
			order[0], order[i] = order[i], order[0]
			break
		}
	}
	for _, t := range order {
		RenderThread(w, t, opts)
	}
}

// lastActivity summarizes a thread's newest event (hang view). A
// trailing synchronization marker wins over line events: a blocked
// thread's newest record is the syscall it never returned from.
func lastActivity(t *ThreadTrace) string {
	for i := len(t.Events) - 1; i >= 0; i-- {
		e := &t.Events[i]
		switch e.Kind {
		case EvSyscall:
			return fmt.Sprintf("blocked in %s at %s %s:%d", e.Note, e.Module, e.File, e.Line)
		case EvLine:
			return fmt.Sprintf("%s %s:%d in %s%s", e.Module, e.File, e.Line, e.Func, noteSuffix(e))
		case EvSync:
			return "awaiting RPC (" + e.Note + ")"
		case EvThreadEnd:
			return "exited"
		}
	}
	return "(no recovered history)"
}

func noteSuffix(e *Event) string {
	if e.Note == "" {
		return ""
	}
	return " [" + e.Note + "]"
}

// RenderThread writes one thread's line-by-line history.
func RenderThread(w io.Writer, t *ThreadTrace, opts RenderOptions) {
	fmt.Fprintf(w, "== thread %d ==\n", t.TID)
	if t.Truncated {
		fmt.Fprintf(w, "  ... older history overwritten ...\n")
	}
	evs := t.Events
	if opts.MaxEvents > 0 && len(evs) > opts.MaxEvents {
		evs = evs[len(evs)-opts.MaxEvents:]
		fmt.Fprintf(w, "  ... (%d earlier events elided) ...\n", len(t.Events)-len(evs))
	}
	for i := range evs {
		e := &evs[i]
		indent := "  "
		if !opts.Flat && e.Depth > 0 {
			indent += strings.Repeat("| ", e.Depth)
		}
		switch e.Kind {
		case EvLine:
			mark := " "
			if e.Fault {
				mark = ">"
			}
			rep := ""
			if e.Repeat > 0 {
				rep = fmt.Sprintf(" (x%d)", e.Repeat+1)
			}
			src := ""
			if opts.Source != nil {
				if lines := opts.Source(e.File); int(e.Line-1) < len(lines) && e.Line >= 1 {
					src = "\t" + strings.TrimSpace(lines[e.Line-1])
				}
			}
			fmt.Fprintf(w, "%s%s%s %s:%d%s%s%s\n",
				indent, mark, e.Module, e.File, e.Line, rep, noteSuffix(e), src)
		case EvException:
			fmt.Fprintf(w, "%s!! %s\n", indent, e.Note)
		case EvExceptionEnd:
			fmt.Fprintf(w, "%s.. %s\n", indent, e.Note)
		case EvSync:
			fmt.Fprintf(w, "%s~~ sync %s (logical thread %d seq %d)\n",
				indent, e.Note, e.Sync.LogicalThread, e.Sync.Seq)
		case EvSnapMark:
			fmt.Fprintf(w, "%s** %s\n", indent, e.Note)
		case EvThreadStart:
			fmt.Fprintf(w, "%s-- thread start --\n", indent)
		case EvThreadEnd:
			fmt.Fprintf(w, "%s-- thread end --\n", indent)
		case EvBadDAG:
			fmt.Fprintf(w, "%s?? %s\n", indent, e.Note)
		case EvSyscall:
			if e.File != "" {
				fmt.Fprintf(w, "%s~  %s (%s:%d)\n", indent, e.Note, e.File, e.Line)
			} else {
				fmt.Fprintf(w, "%s~  %s\n", indent, e.Note)
			}
		}
	}
}

// RenderInterleaved writes the merged multi-thread view.
func RenderInterleaved(w io.Writer, pt *ProcessTrace) {
	for _, me := range Interleave(pt.Threads) {
		e := me.Ev
		switch e.Kind {
		case EvLine:
			fmt.Fprintf(w, "[t%d] %s %s:%d%s\n", me.TID, e.Module, e.File, e.Line, noteSuffix(e))
		default:
			fmt.Fprintf(w, "[t%d] <%s> %s\n", me.TID, e.Kind, e.Note)
		}
	}
}
