package recon

import "sort"

// MergedEvent tags an event with its thread for interleaved display.
type MergedEvent struct {
	TID uint32
	Ev  *Event
}

// Interleave produces a plausible cross-thread ordering (paper
// §4.3.2): events are ordered by their timestamp anchors; events
// sharing an anchor keep their within-thread order; threads tie-break
// by TID. The result is a total order consistent with the partial
// order the timestamp probes establish.
func Interleave(threads []*ThreadTrace) []MergedEvent {
	var out []MergedEvent
	for _, t := range threads {
		for i := range t.Events {
			out = append(out, MergedEvent{TID: t.TID, Ev: &t.Events[i]})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Ev.TS != b.Ev.TS {
			return a.Ev.TS < b.Ev.TS
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Ev.AnchorSeq < b.Ev.AnchorSeq
	})
	return out
}

// Order is the result of comparing two events in the reconstructed
// partial order (paper §3.5: A clearly before B, B clearly before A,
// or no apparent constraint).
type Order int

const (
	Before Order = iota - 1
	Unordered
	After
)

func (o Order) String() string {
	switch o {
	case Before:
		return "before"
	case After:
		return "after"
	}
	return "unordered"
}

// HappensBefore compares two events from different threads using
// their timestamp anchors. Events within one anchor epoch of
// different threads are unordered.
func HappensBefore(a, b *Event) Order {
	switch {
	case a.TS == 0 || b.TS == 0:
		return Unordered
	case a.TS < b.TS:
		return Before
	case a.TS > b.TS:
		return After
	}
	return Unordered
}

// ConcurrentWith returns the events of other threads whose anchor
// epoch overlaps e's — the "what were other threads doing at this
// line" display (paper §4.3.2).
func ConcurrentWith(e *Event, threads []*ThreadTrace, ownTID uint32) []MergedEvent {
	var out []MergedEvent
	for _, t := range threads {
		if t.TID == ownTID {
			continue
		}
		for i := range t.Events {
			if HappensBefore(e, &t.Events[i]) == Unordered {
				out = append(out, MergedEvent{TID: t.TID, Ev: &t.Events[i]})
			}
		}
	}
	return out
}
