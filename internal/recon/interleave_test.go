package recon

import (
	"strings"
	"testing"

	"traceback/internal/trace"
)

func twoThreads() []*ThreadTrace {
	t1 := &ThreadTrace{TID: 1, Events: []Event{
		{Kind: EvLine, Module: "m", File: "a.mc", Line: 1, TS: 10},
		{Kind: EvLine, Module: "m", File: "a.mc", Line: 2, TS: 10, AnchorSeq: 1},
		{Kind: EvLine, Module: "m", File: "a.mc", Line: 3, TS: 50},
	}}
	t2 := &ThreadTrace{TID: 2, Events: []Event{
		{Kind: EvLine, Module: "m", File: "a.mc", Line: 9, TS: 30},
		{Kind: EvSync, Note: "call-send", TS: 60, Sync: &dummySync},
	}}
	return []*ThreadTrace{t1, t2}
}

func TestConcurrentWith(t *testing.T) {
	threads := twoThreads()
	// Event at TS 10 of thread 1: thread 2's TS-30 event is ordered
	// after (30 > 10), so nothing is concurrent.
	e := &threads[0].Events[0]
	if c := ConcurrentWith(e, threads, 1); len(c) != 0 {
		t.Errorf("concurrent = %v, want none", c)
	}
	// An event with no anchor is unordered with everything.
	free := &Event{Kind: EvLine, TS: 0}
	if c := ConcurrentWith(free, threads, 3); len(c) != len(threads[0].Events)+len(threads[1].Events) {
		t.Errorf("unanchored event concurrent with %d events", len(c))
	}
	// Same-anchor events across threads are "potentially concurrent"
	// (paper §4.3.2's highlight set).
	same := &Event{Kind: EvLine, TS: 30}
	c := ConcurrentWith(same, threads, 1)
	if len(c) != 1 || c[0].Ev.Line != 9 {
		t.Errorf("concurrent = %+v, want thread 2's line 9", c)
	}
}

func TestRenderInterleavedOutput(t *testing.T) {
	pt := &ProcessTrace{Threads: twoThreads()}
	var sb strings.Builder
	RenderInterleaved(&sb, pt)
	out := sb.String()
	// Ordered by anchors: t1 lines at 10, t2 line at 30, t1 line at
	// 50, t2 sync at 60.
	i1 := strings.Index(out, "a.mc:1")
	i9 := strings.Index(out, "a.mc:9")
	i3 := strings.Index(out, "a.mc:3")
	isync := strings.Index(out, "call-send")
	if !(i1 < i9 && i9 < i3 && i3 < isync) {
		t.Errorf("interleaved order wrong:\n%s", out)
	}
	if !strings.Contains(out, "[t1]") || !strings.Contains(out, "[t2]") {
		t.Errorf("thread tags missing:\n%s", out)
	}
}

func TestViewEmptyTrace(t *testing.T) {
	v := NewView(&ThreadTrace{TID: 1})
	if v.Current() != nil {
		t.Error("empty view has a current event")
	}
	if v.Step() || v.StepBack() || v.StepOver() || v.StepOut() ||
		v.StepBackOver() || v.StepBackOut() {
		t.Error("stepping succeeded on an empty trace")
	}
}

func TestViewBoundaries(t *testing.T) {
	tt := &ThreadTrace{TID: 1, Events: []Event{
		{Kind: EvLine, Line: 1, Depth: 1},
		{Kind: EvLine, Line: 2, Depth: 2},
		{Kind: EvLine, Line: 3, Depth: 1},
	}}
	v := NewView(tt)
	if v.Current().Line != 3 {
		t.Error("view does not start at the newest event")
	}
	if v.Step() {
		t.Error("stepped past the end")
	}
	v.SeekOldest()
	if v.StepBack() {
		t.Error("stepped before the beginning")
	}
	// StepOut from depth 2 reaches depth 1 at line 3.
	v.SeekOldest()
	v.Step() // line 2, depth 2
	if !v.StepOut() || v.Current().Line != 3 {
		t.Errorf("step-out landed at %+v", v.Current())
	}
	// StepBackOut from depth 2 reaches line 1.
	v.SeekOldest()
	v.Step()
	if !v.StepBackOut() || v.Current().Line != 1 {
		t.Errorf("step-back-out landed at %+v", v.Current())
	}
}

var dummySync = trace.Sync{Point: trace.SyncCallSend, RuntimeID: 1, LogicalThread: 1, TS: 60}
