package recon

import (
	"encoding/binary"
	"fmt"
	"io"

	"traceback/internal/snap"
)

// VarValue is one global variable's value at snap time, decoded from
// the snap's data-segment dump via the mapfile's symbol table (the
// paper's §3.6 "display the values of variables or objects at the
// point of the snap").
type VarValue struct {
	Module string
	Name   string
	// Values holds the scalar value (len 1) or array elements.
	Values []int64
}

// Variables decodes every resolvable global in the snap.
func Variables(s *snap.Snap, maps MapResolver) []VarValue {
	var out []VarValue
	for _, mi := range s.Modules {
		if len(mi.DataDump) == 0 {
			continue
		}
		mf, ok := maps.ForChecksum(mi.Checksum)
		if !ok {
			continue
		}
		for _, g := range mf.Globals {
			v := VarValue{Module: mi.Name, Name: g.Name}
			for i := uint32(0); i < g.Size; i++ {
				off := g.Off + i*8
				if int(off)+8 > len(mi.DataDump) {
					break
				}
				v.Values = append(v.Values,
					int64(binary.LittleEndian.Uint64(mi.DataDump[off:])))
			}
			if len(v.Values) > 0 {
				out = append(out, v)
			}
		}
	}
	return out
}

// RenderVariables writes the variables view.
func RenderVariables(w io.Writer, s *snap.Snap, maps MapResolver) {
	vars := Variables(s, maps)
	if len(vars) == 0 {
		fmt.Fprintln(w, "(no variable values in this snap)")
		return
	}
	fmt.Fprintln(w, "-- globals at snap time --")
	for _, v := range vars {
		if len(v.Values) == 1 {
			fmt.Fprintf(w, "%s!%s = %d\n", v.Module, v.Name, v.Values[0])
			continue
		}
		max := len(v.Values)
		ell := ""
		if max > 8 {
			max = 8
			ell = ", ..."
		}
		fmt.Fprintf(w, "%s!%s = [", v.Module, v.Name)
		for i := 0; i < max; i++ {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%d", v.Values[i])
		}
		fmt.Fprintf(w, "%s] (%d elements)\n", ell, len(v.Values))
	}
}
