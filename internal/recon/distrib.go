package recon

import (
	"fmt"
	"io"
	"sort"
)

// Distributed reconstruction (paper §5): SYNC records written on both
// sides of every RPC fuse the participating physical threads into
// logical threads, ordered by sequence number, and let reconstruction
// compensate for clock skew between runtimes (§5.2).

// LogicalKey identifies a logical thread across runtimes.
type LogicalKey struct {
	RuntimeID     uint64
	LogicalThread uint32
}

// LogicalSegment is a contiguous slice of one physical thread's
// events bounded by SYNC records, placed in the logical thread's
// global order by sequence number.
type LogicalSegment struct {
	Host    string
	Process string
	TID     uint32
	// Seq is the sequence number of the SYNC that opens the segment
	// (the first segment of the originating thread uses Seq of its
	// first call-send, minus a half step so it sorts first).
	Seq    float64
	Events []*Event
}

// LogicalThreadTrace is the stitched cross-runtime history.
type LogicalThreadTrace struct {
	Key      LogicalKey
	Segments []LogicalSegment
}

// MasterTrace is the distributed reconstruction result.
type MasterTrace struct {
	Processes []*ProcessTrace
	Logical   []*LogicalThreadTrace
	// SkewEstimates maps runtime-ID pairs to the estimated clock
	// offset (B - A) derived from SYNC timestamps (paper §5.2).
	SkewEstimates map[[2]uint64]int64
}

// Stitch merges several processes' reconstructions into logical
// threads. Each physical thread's event stream is cut at its SYNC
// events; segments from all threads sharing a logical thread are
// ordered by SYNC sequence number (causal RPC order), independent of
// clock skew.
func Stitch(procs []*ProcessTrace) *MasterTrace {
	mt := &MasterTrace{Processes: procs, SkewEstimates: map[[2]uint64]int64{}}
	byKey := map[LogicalKey]*LogicalThreadTrace{}

	type syncObs struct {
		rt uint64
		ts uint64
		in bool // receive side
	}
	syncTimes := map[LogicalKey]map[uint32][]syncObs{}

	for _, pt := range procs {
		for _, th := range pt.Threads {
			cuts := []int{}
			keys := []LogicalKey{}
			seqs := []uint32{}
			for i := range th.Events {
				e := &th.Events[i]
				if e.Kind != EvSync || e.Sync == nil {
					continue
				}
				k := LogicalKey{e.Sync.RuntimeID, e.Sync.LogicalThread}
				cuts = append(cuts, i)
				keys = append(keys, k)
				seqs = append(seqs, e.Sync.Seq)
				if syncTimes[k] == nil {
					syncTimes[k] = map[uint32][]syncObs{}
				}
				in := e.Sync.Point == 1 || e.Sync.Point == 3 // recv points
				syncTimes[k][e.Sync.Seq] = append(syncTimes[k][e.Sync.Seq],
					syncObs{rt: pt.Snap.RuntimeID, ts: e.Sync.TS, in: in})
			}
			if len(cuts) == 0 {
				continue
			}
			// Segment [0, first cut] belongs before the first SYNC;
			// subsequent segments open at each SYNC.
			addSeg := func(k LogicalKey, seq float64, lo, hi int) {
				lt := byKey[k]
				if lt == nil {
					lt = &LogicalThreadTrace{Key: k}
					byKey[k] = lt
				}
				seg := LogicalSegment{
					Host: pt.Snap.Host, Process: pt.Snap.Process,
					TID: th.TID, Seq: seq,
				}
				for i := lo; i < hi; i++ {
					seg.Events = append(seg.Events, &th.Events[i])
				}
				lt.Segments = append(lt.Segments, seg)
			}
			addSeg(keys[0], float64(seqs[0])-0.5, 0, cuts[0]+1)
			for ci := 0; ci < len(cuts); ci++ {
				lo := cuts[ci] + 1
				hi := len(th.Events)
				if ci+1 < len(cuts) {
					hi = cuts[ci+1] + 1
				}
				addSeg(keys[ci], float64(seqs[ci]), lo, hi)
			}
		}
	}
	for _, lt := range byKey {
		sort.SliceStable(lt.Segments, func(i, j int) bool {
			return lt.Segments[i].Seq < lt.Segments[j].Seq
		})
		mt.Logical = append(mt.Logical, lt)
	}
	sort.Slice(mt.Logical, func(i, j int) bool {
		a, b := mt.Logical[i].Key, mt.Logical[j].Key
		if a.RuntimeID != b.RuntimeID {
			return a.RuntimeID < b.RuntimeID
		}
		return a.LogicalThread < b.LogicalThread
	})

	// Clock-skew estimation (paper §5.2): each SYNC seq observed by
	// both sides gives an ordering constraint; the send side wrote
	// seq s at ts1 on runtime A and the matching recv (s+1) happened
	// at ts2 on runtime B with ts2 "just after" ts1 in real time, so
	// ts2-ts1 approximates B-A plus latency. We take the minimum over
	// pairs as the skew estimate.
	for k, bySeq := range syncTimes {
		_ = k
		for seq, obs := range bySeq {
			next := bySeq[seq+1]
			for _, a := range obs {
				for _, b := range next {
					if a.rt == b.rt || a.in || !b.in {
						continue
					}
					key := [2]uint64{a.rt, b.rt}
					d := int64(b.ts) - int64(a.ts)
					if old, ok := mt.SkewEstimates[key]; !ok || d < old {
						mt.SkewEstimates[key] = d
					}
				}
			}
		}
	}
	return mt
}

// RenderLogical writes a stitched logical-thread trace: the
// cross-machine view of Figure 6.
func RenderLogical(w io.Writer, lt *LogicalThreadTrace, opts RenderOptions) {
	fmt.Fprintf(w, "== logical thread %d (origin runtime %x) ==\n",
		lt.Key.LogicalThread, lt.Key.RuntimeID)
	for _, seg := range lt.Segments {
		fmt.Fprintf(w, " -- on %s/%s thread %d --\n", seg.Host, seg.Process, seg.TID)
		for _, e := range seg.Events {
			switch e.Kind {
			case EvLine:
				mark := "  "
				if e.Fault {
					mark = " >"
				}
				src := ""
				if opts.Source != nil {
					if lines := opts.Source(e.File); e.Line >= 1 && int(e.Line-1) < len(lines) {
						src = "\t" + lines[e.Line-1]
					}
				}
				fmt.Fprintf(w, " %s%s %s:%d%s%s\n", mark, e.Module, e.File, e.Line, noteSuffix(e), src)
			case EvException:
				fmt.Fprintf(w, "  !! %s\n", e.Note)
			case EvSync:
				fmt.Fprintf(w, "  ~~ %s seq %d\n", e.Note, e.Sync.Seq)
			}
		}
	}
}
