package recon

import (
	"strings"
	"testing"

	"traceback/internal/core"
	"traceback/internal/isa"
	"traceback/internal/module"
	"traceback/internal/tbrt"
	"traceback/internal/trace"
	"traceback/internal/vm"
)

// clientMod makes an RPC to endpoint 7 and exits.
func clientMod() *module.Module {
	return &module.Module{
		Name: "client",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 5, Imm: 8192},    // 0 line 1: build request
			{Op: isa.MOVI, A: 6, Imm: 99},      // 1 line 1
			{Op: isa.ST, A: 5, B: 6},           // 2 line 1
			{Op: isa.MOVI, A: 1, Imm: 7},       // 3 line 2: call server
			{Op: isa.MOVI, A: 2, Imm: 8192},    // 4 line 2
			{Op: isa.MOVI, A: 3, Imm: 8},       // 5 line 2
			{Op: isa.MOVI, A: 4, Imm: 8256},    // 6 line 2
			{Op: isa.SYS, Imm: isa.SysRPCCall}, // 7 line 2
			{Op: isa.MOVI, A: 1, Imm: 0},       // 8 line 3
			{Op: isa.SYS, Imm: isa.SysExit},    // 9 line 3
		},
		Funcs: []module.Func{{Name: "main", Entry: 0, End: 10, Exported: true}},
		Files: []string{"client.mc"},
		Lines: []module.LineEntry{
			{Index: 0, File: 0, Line: 1}, {Index: 3, File: 0, Line: 2},
			{Index: 8, File: 0, Line: 3},
		},
	}
}

// serverMod serves one request on endpoint 7 and exits.
func serverMod() *module.Module {
	return &module.Module{
		Name: "server",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 1, Imm: 7},        // 0 line 1: recv
			{Op: isa.MOVI, A: 2, Imm: 8192},     // 1 line 1
			{Op: isa.MOVI, A: 3, Imm: 64},       // 2 line 1
			{Op: isa.SYS, Imm: isa.SysRPCRecv},  // 3 line 1
			{Op: isa.MOVI, A: 5, Imm: 8192},     // 4 line 2: work
			{Op: isa.LD, A: 6, B: 5},            // 5 line 2
			{Op: isa.ADDI, A: 6, B: 6, Imm: 1},  // 6 line 2
			{Op: isa.ST, A: 5, B: 6},            // 7 line 2
			{Op: isa.MOVI, A: 1, Imm: 7},        // 8 line 3: reply
			{Op: isa.MOVI, A: 2, Imm: 0},        // 9 line 3
			{Op: isa.MOVI, A: 3, Imm: 8192},     // 10 line 3
			{Op: isa.MOVI, A: 4, Imm: 8},        // 11 line 3
			{Op: isa.SYS, Imm: isa.SysRPCReply}, // 12 line 3
			{Op: isa.MOVI, A: 1, Imm: 0},        // 13 line 4
			{Op: isa.SYS, Imm: isa.SysExit},     // 14 line 4
		},
		Funcs: []module.Func{{Name: "main", Entry: 0, End: 15, Exported: true}},
		Files: []string{"server.mc"},
		Lines: []module.LineEntry{
			{Index: 0, File: 0, Line: 1}, {Index: 4, File: 0, Line: 2},
			{Index: 8, File: 0, Line: 3}, {Index: 13, File: 0, Line: 4},
		},
	}
}

// runDistributed runs client and server on two skewed machines and
// returns both reconstructions.
func runDistributed(t *testing.T, skew int64) (*ProcessTrace, *ProcessTrace, *MapSet) {
	t.Helper()
	resC, err := core.Instrument(clientMod(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resS, err := core.Instrument(serverMod(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(5)
	mc := w.NewMachine("client-box", 0)
	ms := w.NewMachine("server-box", skew)
	pc, rtc, err := tbrt.NewProcess(mc, "client", tbrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ps, rts, err := tbrt.NewProcess(ms, "server", tbrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []struct {
		p *vm.Process
		m *module.Module
	}{{pc, resC.Module}, {ps, resS.Module}} {
		if _, err := x.p.Load(x.m); err != nil {
			t.Fatal(err)
		}
		x.p.AllocRegion(16384)
		if _, err := x.p.StartMain(0); err != nil {
			t.Fatal(err)
		}
	}
	w.RegisterEndpoint(7, ps)
	w.Run(2_000_000, func() bool { return pc.Exited && ps.Exited })
	if !pc.Exited || !ps.Exited {
		t.Fatalf("client exited=%v server exited=%v", pc.Exited, ps.Exited)
	}
	maps := NewMapSet(resC.Map, resS.Map)
	ptc, err := Reconstruct(rtc.PostMortemSnap(), maps)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := Reconstruct(rts.PostMortemSnap(), maps)
	if err != nil {
		t.Fatal(err)
	}
	return ptc, pts, maps
}

func TestStitchLogicalThread(t *testing.T) {
	ptc, pts, _ := runDistributed(t, 0)
	mt := Stitch([]*ProcessTrace{ptc, pts})
	if len(mt.Logical) != 1 {
		t.Fatalf("%d logical threads, want 1", len(mt.Logical))
	}
	lt := mt.Logical[0]
	// Expect at least 3 segments: client pre-call, server body,
	// client post-reply — ordered by sequence number.
	if len(lt.Segments) < 3 {
		t.Fatalf("%d segments, want >= 3", len(lt.Segments))
	}
	for i := 1; i < len(lt.Segments); i++ {
		if lt.Segments[i].Seq < lt.Segments[i-1].Seq {
			t.Errorf("segments out of order: %f before %f", lt.Segments[i-1].Seq, lt.Segments[i].Seq)
		}
	}
	if lt.Segments[0].Process != "client" {
		t.Errorf("first segment on %s, want client", lt.Segments[0].Process)
	}
	// The server body segment sits between client segments.
	var procsInOrder []string
	for _, seg := range lt.Segments {
		if len(procsInOrder) == 0 || procsInOrder[len(procsInOrder)-1] != seg.Process {
			procsInOrder = append(procsInOrder, seg.Process)
		}
	}
	want := []string{"client", "server", "client"}
	if len(procsInOrder) != 3 || procsInOrder[0] != want[0] ||
		procsInOrder[1] != want[1] || procsInOrder[2] != want[2] {
		t.Errorf("segment machines = %v, want %v", procsInOrder, want)
	}
	// Server's work line (line 2 of server.mc) appears inside the
	// logical thread.
	found := false
	for _, seg := range lt.Segments {
		for _, e := range seg.Events {
			if e.Kind == EvLine && e.File == "server.mc" && e.Line == 2 {
				found = true
			}
		}
	}
	if !found {
		t.Error("server work line missing from the stitched trace")
	}
}

func TestStitchOrderSurvivesClockSkew(t *testing.T) {
	// Massive negative skew: the server's timestamps precede the
	// client's even though the server's work happens after the call.
	// Sequence-number stitching must still give the causal order.
	ptc, pts, _ := runDistributed(t, -1_000_000)
	mt := Stitch([]*ProcessTrace{ptc, pts})
	if len(mt.Logical) != 1 {
		t.Fatalf("%d logical threads", len(mt.Logical))
	}
	lt := mt.Logical[0]
	if lt.Segments[0].Process != "client" {
		t.Errorf("causal order broken under skew: first segment on %s", lt.Segments[0].Process)
	}
	// A skew estimate between the two runtimes must be recorded.
	if len(mt.SkewEstimates) == 0 {
		t.Error("no skew estimates")
	}
}

func TestSyncRecordsOnBothSides(t *testing.T) {
	ptc, pts, _ := runDistributed(t, 0)
	countSyncs := func(pt *ProcessTrace, points ...trace.SyncPoint) int {
		n := 0
		for _, th := range pt.Threads {
			for _, e := range th.Events {
				if e.Kind != EvSync {
					continue
				}
				for _, p := range points {
					if e.Sync.Point == p {
						n++
					}
				}
			}
		}
		return n
	}
	// Paper §5.1: four SYNCs per RPC, two in each runtime's buffers.
	if n := countSyncs(ptc, trace.SyncCallSend, trace.SyncReplyRecv); n != 2 {
		t.Errorf("client syncs = %d, want 2 (call-send + reply-recv)", n)
	}
	if n := countSyncs(pts, trace.SyncCallRecv, trace.SyncReplySend); n != 2 {
		t.Errorf("server syncs = %d, want 2 (call-recv + reply-send)", n)
	}
}

func TestRenderLogicalOutput(t *testing.T) {
	ptc, pts, _ := runDistributed(t, 0)
	mt := Stitch([]*ProcessTrace{ptc, pts})
	var buf strings.Builder
	RenderLogical(&buf, mt.Logical[0], RenderOptions{})
	out := buf.String()
	for _, want := range []string{"client-box/client", "server-box/server", "server.mc:2"} {
		if !strings.Contains(out, want) {
			t.Errorf("logical render missing %q:\n%s", want, out)
		}
	}
}

func TestInterleaveTwoThreads(t *testing.T) {
	// Build two synthetic threads with interleaved anchors.
	t1 := &ThreadTrace{TID: 1, Events: []Event{
		{Kind: EvLine, Line: 1, TS: 10, AnchorSeq: 0},
		{Kind: EvLine, Line: 2, TS: 30, AnchorSeq: 0},
	}}
	t2 := &ThreadTrace{TID: 2, Events: []Event{
		{Kind: EvLine, Line: 9, TS: 20, AnchorSeq: 0},
		{Kind: EvLine, Line: 8, TS: 40, AnchorSeq: 0},
	}}
	m := Interleave([]*ThreadTrace{t1, t2})
	var got []uint32
	for _, me := range m {
		got = append(got, me.Ev.Line)
	}
	want := []uint32{1, 9, 2, 8}
	if !eqU32(got, want) {
		t.Errorf("interleaved = %v, want %v", got, want)
	}
	if HappensBefore(&t1.Events[0], &t2.Events[0]) != Before {
		t.Error("10 should happen before 20")
	}
	if HappensBefore(&t2.Events[0], &t1.Events[0]) != After {
		t.Error("20 should happen after 10")
	}
	same := Event{Kind: EvLine, TS: 20}
	if HappensBefore(&t2.Events[0], &same) != Unordered {
		t.Error("equal anchors should be unordered")
	}
}
