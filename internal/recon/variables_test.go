package recon

import (
	"strings"
	"testing"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
)

// TestVariablesView: the snap's data-segment dump plus the mapfile's
// symbol table reproduce variable values at the point of the snap
// (paper §3.6).
func TestVariablesView(t *testing.T) {
	src := `int counter;
int table[4];
int main() {
	counter = 42;
	table[0] = 10;
	table[1] = 11;
	table[2] = 12;
	table[3] = 13;
	int z = 0;
	exit(1 / z);
}`
	mod, err := minic.Compile("app", "app.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(8)
	mach := w.NewMachine("h", 0)
	p, rt, err := tbrt.NewProcess(mach, "app", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	p.Load(res.Module)
	p.StartMain(0)
	vm.RunProcess(p, 100000)
	if len(rt.Snaps()) == 0 {
		t.Fatal("no snap")
	}
	s := rt.Snaps()[0]
	maps := NewMapSet(res.Map)
	vars := Variables(s, maps)
	byName := map[string][]int64{}
	for _, v := range vars {
		byName[v.Name] = v.Values
	}
	if got := byName["counter"]; len(got) != 1 || got[0] != 42 {
		t.Errorf("counter = %v, want [42]", got)
	}
	if got := byName["table"]; len(got) != 4 || got[0] != 10 || got[3] != 13 {
		t.Errorf("table = %v, want [10 11 12 13]", got)
	}
	var sb strings.Builder
	RenderVariables(&sb, s, maps)
	out := sb.String()
	if !strings.Contains(out, "counter = 42") || !strings.Contains(out, "table = [10, 11, 12, 13]") {
		t.Errorf("render output:\n%s", out)
	}
}

// TestVariablesViewNoDump: with memory dumps disabled, the view
// degrades gracefully.
func TestVariablesViewNoDump(t *testing.T) {
	src := `int g;
int main() { g = 7; exit(0); }`
	mod, err := minic.Compile("app", "app.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(8)
	mach := w.NewMachine("h", 0)
	p, rt, err := tbrt.NewProcess(mach, "app", tbrt.Config{NoMemoryDump: true})
	if err != nil {
		t.Fatal(err)
	}
	p.Load(res.Module)
	p.StartMain(0)
	vm.RunProcess(p, 100000)
	s := rt.PostMortemSnap()
	if vars := Variables(s, NewMapSet(res.Map)); len(vars) != 0 {
		t.Errorf("vars = %v without a memory dump", vars)
	}
	var sb strings.Builder
	RenderVariables(&sb, s, NewMapSet(res.Map))
	if !strings.Contains(sb.String(), "no variable values") {
		t.Error("missing graceful no-dump message")
	}
}
