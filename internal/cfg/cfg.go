// Package cfg lifts decoded machine code to a control-flow graph and
// provides the analyses TraceBack instrumentation needs: basic-block
// construction (including jump tables and indirect calls), register
// liveness (so probes can scavenge dead registers instead of
// spilling), and cycle detection (so DAG tiling can guarantee every
// loop contains a heavyweight probe).
package cfg

import (
	"fmt"
	"sort"

	"traceback/internal/isa"
	"traceback/internal/module"
)

// Block is a basic block of a function-level CFG. Start/End are
// module-relative instruction indexes, [Start, End).
type Block struct {
	ID    int
	Start uint32
	End   uint32
	Succs []int
	Preds []int

	// EndsInCall marks blocks whose last instruction is a call; the
	// fallthrough successor is the call's return point, which DAG
	// tiling must head with a heavyweight probe (paper §2.2, §2.4).
	EndsInCall bool
	CallKind   module.CallKind
	CallImm    int32 // call target / import index for direct & import calls

	// IsMultiwayTarget marks successors of a JTAB dispatch; they must
	// become DAG headers (paper §2.1: "force all multiway branch
	// targets to hold heavyweight probes").
	IsMultiwayTarget bool

	// IsJTABSlot marks a single-JMP trampoline block that is one of a
	// jump table's slots. Slots must stay contiguous after the JTAB,
	// so instrumentation never inserts probes into them; their
	// execution is recovered from the following DAG header record.
	IsJTABSlot bool

	HasRet bool // block ends in RET
}

// LastOp returns the opcode of the block's final instruction.
func (b *Block) LastOp(code []isa.Instr) isa.Op { return code[b.End-1].Op }

// Graph is a function-level CFG over a module's code.
type Graph struct {
	Fn     module.Func
	Code   []isa.Instr // entire module code; blocks index into it
	Blocks []*Block
	// Entry is Blocks[Entry], the function entry block (always 0).
	Entry int
	// byStart maps a block's Start index to its ID.
	byStart map[uint32]int
}

// BlockAt returns the block starting at instruction index start.
func (g *Graph) BlockAt(start uint32) (*Block, bool) {
	id, ok := g.byStart[start]
	if !ok {
		return nil, false
	}
	return g.Blocks[id], true
}

// BlockContaining returns the block containing instruction index idx.
func (g *Graph) BlockContaining(idx uint32) (*Block, bool) {
	i := sort.Search(len(g.Blocks), func(i int) bool { return g.Blocks[i].Start > idx })
	if i == 0 {
		return nil, false
	}
	b := g.Blocks[i-1]
	if idx >= b.End {
		return nil, false
	}
	return b, true
}

// BuildErrKind classifies why Build rejected a function, so callers
// (notably the static verifier in internal/verify) can map structural
// failures to specific diagnoses instead of string-matching.
type BuildErrKind uint8

const (
	// ErrBadFuncRange: the function's [Entry, End) range is empty or
	// escapes the module's code section.
	ErrBadFuncRange BuildErrKind = iota + 1
	// ErrEscapingBranch: a branch targets an index outside the function.
	ErrEscapingBranch
	// ErrEscapingCall: a call targets an index outside the module.
	ErrEscapingCall
	// ErrBadJumpTable: a JTAB's slot list is empty, overruns the
	// function, or holds a non-JMP instruction.
	ErrBadJumpTable
	// ErrFallthroughEnd: control falls through the function's last
	// instruction into a nonexistent block (no RET/JMP/HLT/exit
	// terminator).
	ErrFallthroughEnd
	// ErrBadEdge: an intra-function edge lands on a non-leader index
	// (internal inconsistency; should be unreachable).
	ErrBadEdge
)

func (k BuildErrKind) String() string {
	switch k {
	case ErrBadFuncRange:
		return "bad-func-range"
	case ErrEscapingBranch:
		return "escaping-branch"
	case ErrEscapingCall:
		return "escaping-call"
	case ErrBadJumpTable:
		return "bad-jump-table"
	case ErrFallthroughEnd:
		return "fallthrough-off-end"
	case ErrBadEdge:
		return "bad-edge"
	}
	return fmt.Sprintf("builderr(%d)", uint8(k))
}

// BuildError is the typed error Build returns. Instr is the
// module-relative index of the offending instruction.
type BuildError struct {
	Fn    string
	Kind  BuildErrKind
	Instr uint32
	msg   string
}

func (e *BuildError) Error() string { return e.msg }

func buildErr(fn module.Func, kind BuildErrKind, instr uint32, format string, args ...any) error {
	return &BuildError{Fn: fn.Name, Kind: kind, Instr: instr, msg: fmt.Sprintf(format, args...)}
}

// Build constructs the CFG for fn over code.
//
// Control may leave the function only through RET, HLT, or a raised
// exception; branch targets outside [fn.Entry, fn.End) are rejected.
// Calls do not end the intraprocedural path: the call's return point
// continues the block sequence as the call block's successor, and the
// block is annotated so instrumentation can treat the return point as
// a fresh entry.
//
// All rejections are *BuildError values classified by BuildErrKind.
func Build(code []isa.Instr, fn module.Func) (*Graph, error) {
	if fn.Entry >= fn.End || fn.End > uint32(len(code)) {
		return nil, buildErr(fn, ErrBadFuncRange, fn.Entry,
			"cfg: function %s range [%d,%d) invalid", fn.Name, fn.Entry, fn.End)
	}

	// Pass 1: find leaders.
	leader := map[uint32]bool{fn.Entry: true}
	multiway := map[uint32]bool{}
	slots := map[uint32]bool{}
	for i := fn.Entry; i < fn.End; i++ {
		in := code[i]
		op := in.Op
		if op.HasCodeTarget() && op != isa.CALL {
			// Branch targets must stay inside the function; CALL
			// targets name other functions and do not create leaders.
			t := uint32(in.Imm)
			if t < fn.Entry || t >= fn.End {
				return nil, buildErr(fn, ErrEscapingBranch, i,
					"cfg: %s: instruction %d (%v) targets %d outside function [%d,%d)",
					fn.Name, i, in, t, fn.Entry, fn.End)
			}
			leader[t] = true
		}
		if op == isa.CALL {
			if t := uint32(in.Imm); t >= uint32(len(code)) {
				return nil, buildErr(fn, ErrEscapingCall, i,
					"cfg: %s: call at %d targets %d outside module", fn.Name, i, t)
			}
		}
		if op == isa.JTAB {
			n := uint32(in.C)
			if n == 0 || i+1+n > fn.End {
				return nil, buildErr(fn, ErrBadJumpTable, i,
					"cfg: %s: jump table at %d with %d slots overruns function", fn.Name, i, n)
			}
			for s := uint32(1); s <= n; s++ {
				if code[i+s].Op != isa.JMP {
					return nil, buildErr(fn, ErrBadJumpTable, i+s,
						"cfg: %s: jump-table slot at %d is %v, want jmp", fn.Name, i+s, code[i+s].Op)
				}
				leader[i+s] = true
				slots[i+s] = true
				multiway[uint32(code[i+s].Imm)] = true
			}
		}
		if (op.IsBlockEnd() || in.NoReturn()) && i+1 < fn.End {
			leader[i+1] = true
		}
	}

	// Pass 2: materialize blocks in address order.
	starts := make([]uint32, 0, len(leader))
	for s := range leader {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	g := &Graph{Fn: fn, Code: code, byStart: make(map[uint32]int, len(starts))}
	for i, s := range starts {
		end := fn.End
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		b := &Block{ID: i, Start: s, End: end}
		g.Blocks = append(g.Blocks, b)
		g.byStart[s] = i
	}

	// Pass 3: wire successors.
	addEdge := func(from *Block, to uint32) error {
		id, ok := g.byStart[to]
		if !ok {
			return buildErr(fn, ErrBadEdge, from.End-1,
				"cfg: %s: edge from block %d to non-leader %d", fn.Name, from.ID, to)
		}
		from.Succs = append(from.Succs, id)
		g.Blocks[id].Preds = append(g.Blocks[id].Preds, from.ID)
		return nil
	}
	for _, b := range g.Blocks {
		last := code[b.End-1]
		switch {
		case last.Op.IsCondBranch():
			if err := addEdge(b, uint32(last.Imm)); err != nil {
				return nil, err
			}
			if b.End < fn.End {
				if err := addEdge(b, b.End); err != nil {
					return nil, err
				}
			} else {
				return nil, buildErr(fn, ErrFallthroughEnd, b.End-1,
					"cfg: %s: conditional branch falls off function end", fn.Name)
			}
		case last.Op == isa.JMP:
			if err := addEdge(b, uint32(last.Imm)); err != nil {
				return nil, err
			}
		case last.Op == isa.JTAB:
			for s := uint32(1); s <= uint32(last.C); s++ {
				if err := addEdge(b, b.End-1+s); err != nil {
					return nil, err
				}
			}
		case last.Op == isa.RET, last.Op == isa.HLT:
			b.HasRet = last.Op == isa.RET
		case last.NoReturn():
			// Process exit: no successors.
		case last.Op.IsCall():
			b.EndsInCall = true
			b.CallImm = last.Imm
			switch last.Op {
			case isa.CALL:
				b.CallKind = module.CallDirect
			case isa.CALX:
				b.CallKind = module.CallImport
			case isa.CALR:
				b.CallKind = module.CallIndirect
				b.CallImm = int32(last.A)
			}
			if b.End < fn.End {
				if err := addEdge(b, b.End); err != nil {
					return nil, err
				}
			}
			// A call as the function's final instruction never
			// returns into this function; no successor.
		default:
			// Plain fallthrough into the next block.
			if b.End < fn.End {
				if err := addEdge(b, b.End); err != nil {
					return nil, err
				}
			} else {
				return nil, buildErr(fn, ErrFallthroughEnd, b.End-1,
					"cfg: %s: control falls off function end", fn.Name)
			}
		}
	}
	for t := range multiway {
		if id, ok := g.byStart[t]; ok {
			g.Blocks[id].IsMultiwayTarget = true
		}
	}
	for s := range slots {
		if id, ok := g.byStart[s]; ok {
			g.Blocks[id].IsJTABSlot = true
		}
	}
	return g, nil
}

// RegSet is a bitmask over the 16 architectural registers.
type RegSet uint32

// Has reports whether r is in the set.
func (s RegSet) Has(r uint8) bool { return s&(1<<r) != 0 }

// Add returns the set with r added.
func (s RegSet) Add(r uint8) RegSet { return s | 1<<r }

// callerSaved is the set of registers a call clobbers.
var callerSaved RegSet

func init() {
	for r := 0; r < isa.NumRegs; r++ {
		if !isa.CalleeSaved(r) {
			callerSaved |= 1 << r
		}
	}
}

// InstrEffect returns (uses, defs) for one instruction, with calls
// treated conservatively: a call reads the argument registers and SP
// and clobbers every caller-saved register; RET reads the return
// value, SP, and all callee-saved registers (the caller expects them
// restored). It is the default effect function for Liveness; analyses
// that know more about specific call targets (the probe-safety
// verifier models the instrumentation helper's exact footprint) pass
// their own effect to LivenessFunc.
func InstrEffect(in isa.Instr) (uses, defs RegSet) {
	var tmp [6]uint8
	for _, r := range in.Reads(tmp[:0]) {
		uses = uses.Add(r)
	}
	for _, r := range in.Writes(tmp[:0]) {
		defs = defs.Add(r)
	}
	if in.Op.IsCall() {
		uses = uses.Add(isa.A1).Add(isa.A2).Add(isa.A3).Add(isa.A4)
		defs |= callerSaved
	}
	if in.Op == isa.RET {
		uses = uses.Add(isa.RV).Add(isa.SP)
		for r := 0; r < isa.NumRegs; r++ {
			if isa.CalleeSaved(r) {
				uses = uses.Add(uint8(r))
			}
		}
	}
	return uses, defs
}

// Liveness computes per-block live-in and live-out register sets with
// a standard backward dataflow fixpoint. Instrumentation consults
// live-in to pick scratch registers for probes at block entry; when no
// dead register exists the probe must spill (the paper's gzip
// longest_match case).
func (g *Graph) Liveness() (liveIn, liveOut []RegSet) {
	return g.LivenessFunc(InstrEffect)
}

// LivenessFunc is Liveness with a caller-supplied per-instruction
// effect function, letting analyses refine the conservative call
// model (e.g. treat a CALL to the probe helper as clobbering only the
// registers the helper actually writes).
func (g *Graph) LivenessFunc(effect func(isa.Instr) (uses, defs RegSet)) (liveIn, liveOut []RegSet) {
	n := len(g.Blocks)
	liveIn = make([]RegSet, n)
	liveOut = make([]RegSet, n)
	use := make([]RegSet, n) // upward-exposed uses
	def := make([]RegSet, n)
	for i, b := range g.Blocks {
		for idx := b.Start; idx < b.End; idx++ {
			u, d := effect(g.Code[idx])
			use[i] |= u &^ def[i]
			def[i] |= d
		}
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := g.Blocks[i]
			var out RegSet
			for _, s := range b.Succs {
				out |= liveIn[s]
			}
			in := use[i] | (out &^ def[i])
			if out != liveOut[i] || in != liveIn[i] {
				liveOut[i] = out
				liveIn[i] = in
				changed = true
			}
		}
	}
	return liveIn, liveOut
}

// NontrivialSCCs returns the strongly connected components with more
// than one node (or a self-loop) in the subgraph that excludes every
// edge entering a block for which cut returns true. DAG tiling calls
// this repeatedly: marking one block per SCC as a DAG header (cutting
// its incoming edges) until no cycles remain.
func (g *Graph) NontrivialSCCs(cut func(id int) bool) [][]int {
	n := len(g.Blocks)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var next int
	var out [][]int

	type frame struct {
		v, si int
	}
	var dfs func(root int)
	dfs = func(root int) {
		frames := []frame{{root, 0}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.si < len(g.Blocks[v].Succs) {
				w := g.Blocks[v].Succs[f.si]
				f.si++
				if cut(w) {
					continue
				}
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				if len(comp) > 1 {
					out = append(out, comp)
				} else if hasSelfLoop(g, comp[0], cut) {
					out = append(out, comp)
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 && !cut(v) {
			dfs(v)
		}
	}
	return out
}

func hasSelfLoop(g *Graph, v int, cut func(int) bool) bool {
	if cut(v) {
		return false
	}
	for _, s := range g.Blocks[v].Succs {
		if s == v {
			return true
		}
	}
	return false
}
