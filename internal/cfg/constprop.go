package cfg

import "traceback/internal/isa"

// Intra-procedural constant propagation, built on the Forward solver.
// Its job is modest but specific: resolve the endpoint-id argument of
// RPC syscalls at their call sites. MiniC marshals syscall arguments
// through the operand stack (evaluate, PUSH, then POP into r1..r4
// before SYS), so a register-only analysis sees nothing — the state
// therefore includes a bounded abstract stack of values relative to
// the current SP. The model assumes every SP adjustment goes through
// PUSH/POP/CALL/RET and that callees do not write the caller's live
// stack slots; stores through SP or FP conservatively smash tracked
// stack values. See DESIGN.md §13 for the soundness discussion.

// ConstVal is a flat constant lattice value: unknown or one int64.
type ConstVal struct {
	Known bool
	V     int64
}

func known(v int64) ConstVal { return ConstVal{Known: true, V: v} }

// maxTrackedStack bounds the abstract operand stack so the lattice
// stays finite; deeper stacks degrade to unknown.
const maxTrackedStack = 64

type cpState struct {
	regs [isa.NumRegs]ConstVal
	// stack holds the values at [SP], [SP+8], ... (stack[len-1] is the
	// top of stack) pushed since function entry; valid only if stackOK.
	stack   []ConstVal
	stackOK bool
	// bottom marks the pre-first-visit state (identity of meet).
	bottom bool
}

func (s cpState) clone() cpState {
	s.stack = append([]ConstVal(nil), s.stack...)
	return s
}

// smashStack forgets tracked stack values but keeps the height, so
// PUSH/POP alignment survives a store that may alias the stack.
func (s *cpState) smashStack() {
	for i := range s.stack {
		s.stack[i] = ConstVal{}
	}
}

type constProblem struct {
	g      *Graph
	helper map[uint32]bool
}

func (p *constProblem) Entry() cpState   { return cpState{stackOK: true} }
func (p *constProblem) Unknown() cpState { return cpState{bottom: true} }

func (p *constProblem) Meet(a, b cpState) cpState {
	if a.bottom {
		return b.clone()
	}
	if b.bottom {
		return a.clone()
	}
	var out cpState
	for i := range out.regs {
		if a.regs[i].Known && b.regs[i].Known && a.regs[i].V == b.regs[i].V {
			out.regs[i] = a.regs[i]
		}
	}
	if a.stackOK && b.stackOK && len(a.stack) == len(b.stack) {
		out.stackOK = true
		out.stack = make([]ConstVal, len(a.stack))
		for i := range out.stack {
			if a.stack[i].Known && b.stack[i].Known && a.stack[i].V == b.stack[i].V {
				out.stack[i] = a.stack[i]
			}
		}
	}
	return out
}

func (p *constProblem) Equal(a, b cpState) bool {
	if a.bottom != b.bottom || a.stackOK != b.stackOK ||
		a.regs != b.regs || len(a.stack) != len(b.stack) {
		return false
	}
	for i := range a.stack {
		if a.stack[i] != b.stack[i] {
			return false
		}
	}
	return true
}

func (p *constProblem) Transfer(b *Block, in cpState) cpState {
	st := in.clone()
	st.bottom = false
	for idx := b.Start; idx < b.End; idx++ {
		p.step(&st, p.g.Code[idx])
	}
	return st
}

// step applies one instruction to st in place.
func (p *constProblem) step(st *cpState, in isa.Instr) {
	set := func(r uint8, v ConstVal) { st.regs[r] = v }
	reg := func(r uint8) ConstVal { return st.regs[r] }

	switch in.Op {
	case isa.MOVI:
		set(in.A, known(int64(in.Imm)))
	case isa.MOV:
		set(in.A, reg(in.B))
	case isa.ADDI:
		if v := reg(in.B); v.Known {
			set(in.A, known(v.V+int64(in.Imm)))
		} else {
			set(in.A, ConstVal{})
		}
	case isa.NEG:
		set(in.A, fold1(reg(in.B), func(v int64) int64 { return -v }))
	case isa.NOT:
		set(in.A, fold1(reg(in.B), func(v int64) int64 { return ^v }))
	case isa.ADD:
		set(in.A, fold2(reg(in.B), reg(in.C), func(x, y int64) int64 { return x + y }))
	case isa.SUB:
		set(in.A, fold2(reg(in.B), reg(in.C), func(x, y int64) int64 { return x - y }))
	case isa.AND:
		set(in.A, fold2(reg(in.B), reg(in.C), func(x, y int64) int64 { return x & y }))
	case isa.OR:
		set(in.A, fold2(reg(in.B), reg(in.C), func(x, y int64) int64 { return x | y }))
	case isa.XOR:
		set(in.A, fold2(reg(in.B), reg(in.C), func(x, y int64) int64 { return x ^ y }))
	case isa.CMPEQ:
		set(in.A, foldCmp(reg(in.B), reg(in.C), func(x, y int64) bool { return x == y }))
	case isa.CMPNE:
		set(in.A, foldCmp(reg(in.B), reg(in.C), func(x, y int64) bool { return x != y }))
	case isa.CMPLT:
		set(in.A, foldCmp(reg(in.B), reg(in.C), func(x, y int64) bool { return x < y }))
	case isa.CMPLE:
		set(in.A, foldCmp(reg(in.B), reg(in.C), func(x, y int64) bool { return x <= y }))
	case isa.MUL, isa.DIV, isa.MOD, isa.SHL, isa.SHR:
		// Not needed for endpoint resolution; folding them would tie
		// this analysis to the VM's exact overflow/shift semantics.
		set(in.A, ConstVal{})
	case isa.LD, isa.LD4, isa.GADDR, isa.LDFN, isa.TLSLD:
		set(in.A, ConstVal{})
	case isa.PUSH:
		if st.stackOK {
			if len(st.stack) >= maxTrackedStack {
				st.stackOK = false
				st.stack = nil
			} else {
				st.stack = append(st.stack, reg(in.A))
			}
		}
	case isa.POP:
		if st.stackOK && len(st.stack) > 0 {
			set(in.A, st.stack[len(st.stack)-1])
			st.stack = st.stack[:len(st.stack)-1]
		} else {
			// Popping below function entry reads the caller's frame;
			// the value is unknown but relative alignment survives.
			set(in.A, ConstVal{})
		}
	case isa.ST, isa.ST4:
		if in.A == isa.SP || in.A == isa.FP || !reg(in.A).Known {
			// May alias tracked stack slots (FP-relative locals live on
			// the same stack). Unknown bases get the same treatment.
			st.smashStack()
		}
	case isa.STI4, isa.ORM4:
		if in.A == isa.SP || in.A == isa.FP {
			st.smashStack()
		}
	case isa.SYS:
		set(isa.RV, ConstVal{})
	case isa.CALL:
		if p.helper[uint32(in.Imm)] {
			// The probe helper preserves everything except RV (the
			// trace-buffer pointer it returns).
			set(isa.RV, ConstVal{})
			break
		}
		p.call(st)
	case isa.CALX, isa.CALR:
		p.call(st)
	}
}

// call applies the calling convention: caller-saved registers are
// clobbered, callee-saved ones survive, and stack slots at or above
// the caller's SP are assumed untouched.
func (p *constProblem) call(st *cpState) {
	for r := 0; r < isa.NumRegs; r++ {
		if !isa.CalleeSaved(r) {
			st.regs[r] = ConstVal{}
		}
	}
}

func fold1(v ConstVal, f func(int64) int64) ConstVal {
	if !v.Known {
		return ConstVal{}
	}
	return known(f(v.V))
}

func fold2(x, y ConstVal, f func(int64, int64) int64) ConstVal {
	if !x.Known || !y.Known {
		return ConstVal{}
	}
	return known(f(x.V, y.V))
}

func foldCmp(x, y ConstVal, f func(int64, int64) bool) ConstVal {
	if !x.Known || !y.Known {
		return ConstVal{}
	}
	if f(x.V, y.V) {
		return known(1)
	}
	return known(0)
}

// ConstProp holds the solved per-block constant states for one
// function and answers point queries by re-simulating within a block.
type ConstProp struct {
	g  *Graph
	p  *constProblem
	in []cpState
}

// NewConstProp runs constant propagation over g. helperEntries names
// CALL targets (module-relative entry indexes) modeled as the probe
// helper — clobbering only RV — instead of a full caller-saved smash.
func NewConstProp(g *Graph, helperEntries map[uint32]bool) *ConstProp {
	p := &constProblem{g: g, helper: helperEntries}
	in, _ := Forward[cpState](g, p)
	return &ConstProp{g: g, p: p, in: in}
}

// RegBefore returns the constant value of register reg immediately
// before executing the instruction at module-relative index idx, if
// the analysis can prove one.
func (cp *ConstProp) RegBefore(idx uint32, reg uint8) (int64, bool) {
	b, ok := cp.g.BlockContaining(idx)
	if !ok {
		return 0, false
	}
	st := cp.in[b.ID]
	if st.bottom {
		// Block unreachable from the entry: no constraint to report.
		return 0, false
	}
	st = st.clone()
	for i := b.Start; i < idx; i++ {
		cp.p.step(&st, cp.g.Code[i])
	}
	v := st.regs[reg]
	return v.V, v.Known
}
