package cfg

// Dominator tree construction (Cooper-Harvey-Kennedy "A Simple, Fast
// Dominance Algorithm"). The fleet verifier uses dominance to pair
// RPC replies with the receives that bind their requests: a reply
// that is not dominated by a receive can execute with no pending
// request on some path, so its SYNC record has nothing to stitch to.

// DomTree is the dominator tree of a Graph. Blocks unreachable from
// the entry have Idom == -1 and are dominated by nothing (not even
// themselves, as far as Dominates is concerned — they never execute).
type DomTree struct {
	// Idom[b] is the immediate dominator of block b; Idom[entry] is
	// the entry itself, and -1 marks unreachable blocks.
	Idom []int
	// depth[b] is the distance from the entry along the tree, used to
	// answer Dominates without parent-pointer chasing past the root.
	depth []int
}

// Dominators builds the dominator tree rooted at g.Entry.
func (g *Graph) Dominators() *DomTree {
	n := len(g.Blocks)
	dt := &DomTree{Idom: make([]int, n), depth: make([]int, n)}
	for i := range dt.Idom {
		dt.Idom[i] = -1
	}
	if n == 0 {
		return dt
	}

	rpo := g.ReversePostorder()
	// rpoNum[b] = position of b in rpo; -1 for unreachable blocks.
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range rpo {
		rpoNum[b] = i
	}

	dt.Idom[g.Entry] = g.Entry
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = dt.Idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = dt.Idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if dt.Idom[p] == -1 {
					continue // predecessor not yet processed or unreachable
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && dt.Idom[b] != newIdom {
				dt.Idom[b] = newIdom
				changed = true
			}
		}
	}

	for _, b := range rpo {
		if b == g.Entry {
			dt.depth[b] = 0
		} else if dt.Idom[b] != -1 {
			dt.depth[b] = dt.depth[dt.Idom[b]] + 1
		}
	}
	return dt
}

// Dominates reports whether block a dominates block b: every path
// from the entry to b passes through a. A block dominates itself.
// Unreachable blocks dominate nothing and are dominated by nothing.
func (dt *DomTree) Dominates(a, b int) bool {
	if dt.Idom[a] == -1 || dt.Idom[b] == -1 {
		return false
	}
	for dt.depth[b] > dt.depth[a] {
		b = dt.Idom[b]
	}
	return a == b
}

// Reachable reports whether block b is reachable from the entry.
func (dt *DomTree) Reachable(b int) bool { return dt.Idom[b] != -1 }

// ReversePostorder returns the IDs of the blocks reachable from the
// entry in reverse postorder of a DFS — the canonical iteration order
// for forward dataflow problems.
func (g *Graph) ReversePostorder() []int {
	n := len(g.Blocks)
	if n == 0 {
		return nil
	}
	seen := make([]bool, n)
	post := make([]int, 0, n)
	type frame struct{ v, si int }
	stack := []frame{{g.Entry, 0}}
	seen[g.Entry] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.si < len(g.Blocks[f.v].Succs) {
			w := g.Blocks[f.v].Succs[f.si]
			f.si++
			if !seen[w] {
				seen[w] = true
				stack = append(stack, frame{w, 0})
			}
			continue
		}
		post = append(post, f.v)
		stack = stack[:len(stack)-1]
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
