package cfg

import (
	"testing"

	"traceback/internal/isa"
	"traceback/internal/module"
)

func wantConst(t *testing.T, cp *ConstProp, idx uint32, reg uint8, want int64) {
	t.Helper()
	v, ok := cp.RegBefore(idx, reg)
	if !ok || v != want {
		t.Errorf("reg r%d before instr %d = (%d, %v), want (%d, true)", reg, idx, v, ok, want)
	}
}

func wantUnknown(t *testing.T, cp *ConstProp, idx uint32, reg uint8) {
	t.Helper()
	if v, ok := cp.RegBefore(idx, reg); ok {
		t.Errorf("reg r%d before instr %d = %d, want unknown", reg, idx, v)
	}
}

func TestConstPropStackMarshaledSyscallArgs(t *testing.T) {
	// The MiniC lowering: literals are pushed, then popped into the
	// argument registers in reverse, then SYS. The endpoint id (77)
	// must be resolvable at the SYS site in r1.
	code := []isa.Instr{
		{Op: isa.MOVI, A: 5, Imm: 77},
		{Op: isa.PUSH, A: 5},
		{Op: isa.MOVI, A: 6, Imm: 100},
		{Op: isa.PUSH, A: 6},
		{Op: isa.POP, A: isa.A2},
		{Op: isa.POP, A: isa.A1},
		{Op: isa.SYS, Imm: isa.SysRPCCall},
		{Op: isa.RET},
	}
	g := mustBuild(t, code, fn("marshal", len(code)))
	cp := NewConstProp(g, nil)
	wantConst(t, cp, 6, isa.A1, 77)
	wantConst(t, cp, 6, isa.A2, 100)
	// The SYS clobbers r0.
	wantUnknown(t, cp, 7, isa.RV)
}

func TestConstPropBranchMeet(t *testing.T) {
	// Both arms assign the same value: stays constant at the join.
	same := []isa.Instr{
		{Op: isa.BEQ, A: 1, B: 2, Imm: 3},
		{Op: isa.MOVI, A: 4, Imm: 9},
		{Op: isa.JMP, Imm: 4},
		{Op: isa.MOVI, A: 4, Imm: 9},
		{Op: isa.RET},
	}
	g := mustBuild(t, same, fn("same", len(same)))
	wantConst(t, NewConstProp(g, nil), 4, 4, 9)

	// Differing values: unknown at the join.
	diff := []isa.Instr{
		{Op: isa.BEQ, A: 1, B: 2, Imm: 3},
		{Op: isa.MOVI, A: 4, Imm: 9},
		{Op: isa.JMP, Imm: 4},
		{Op: isa.MOVI, A: 4, Imm: 10},
		{Op: isa.RET},
	}
	g = mustBuild(t, diff, fn("diff", len(diff)))
	wantUnknown(t, NewConstProp(g, nil), 4, 4)
}

func TestConstPropCallClobbers(t *testing.T) {
	// 0: movi r1,5; 1: movi r8,6; 2: call @5; 3: ret | 4: hlt 5: ret
	code := []isa.Instr{
		{Op: isa.MOVI, A: 1, Imm: 5},
		{Op: isa.MOVI, A: 8, Imm: 6},
		{Op: isa.CALL, Imm: 5},
		{Op: isa.RET},
		{Op: isa.HLT},
		{Op: isa.RET},
	}
	f := module.Func{Name: "caller", Entry: 0, End: 4}
	g := mustBuild(t, code, f)

	// Plain call: caller-saved r1 dies, callee-saved r8 survives.
	cp := NewConstProp(g, nil)
	wantUnknown(t, cp, 3, 1)
	wantConst(t, cp, 3, 8, 6)

	// Probe-helper call: only RV is clobbered.
	cp = NewConstProp(g, map[uint32]bool{5: true})
	wantConst(t, cp, 3, 1, 5)
	wantConst(t, cp, 3, 8, 6)
	wantUnknown(t, cp, 3, isa.RV)
}

func TestConstPropLoopFixpoint(t *testing.T) {
	// r1 is loop-invariant (7); r2 changes each iteration.
	code := []isa.Instr{
		{Op: isa.MOVI, A: 1, Imm: 7},
		{Op: isa.ADDI, A: 2, B: 2, Imm: 1},
		{Op: isa.BNE, A: 2, B: 3, Imm: 1},
		{Op: isa.RET},
	}
	g := mustBuild(t, code, fn("loop", len(code)))
	cp := NewConstProp(g, nil)
	wantConst(t, cp, 3, 1, 7)
	wantUnknown(t, cp, 3, 2)
}

func TestConstPropStackSmashOnFrameStore(t *testing.T) {
	// An FP-relative store between PUSH and POP must forget the pushed
	// value (it may alias the slot) but keep the alignment.
	code := []isa.Instr{
		{Op: isa.MOVI, A: 5, Imm: 77},
		{Op: isa.PUSH, A: 5},
		{Op: isa.ST, A: isa.FP, B: 6, Imm: -8},
		{Op: isa.POP, A: isa.A1},
		{Op: isa.RET},
	}
	g := mustBuild(t, code, fn("smash", len(code)))
	cp := NewConstProp(g, nil)
	wantUnknown(t, cp, 4, isa.A1)
}

func TestConstPropUnbalancedStackMeet(t *testing.T) {
	// One arm pushes, the other does not: stack heights differ at the
	// join, so a later POP must not claim a constant.
	code := []isa.Instr{
		{Op: isa.MOVI, A: 5, Imm: 42},
		{Op: isa.BEQ, A: 1, B: 2, Imm: 4},
		{Op: isa.PUSH, A: 5},
		{Op: isa.JMP, Imm: 4},
		{Op: isa.POP, A: 6},
		{Op: isa.RET},
	}
	g := mustBuild(t, code, fn("unbal", len(code)))
	cp := NewConstProp(g, nil)
	wantUnknown(t, cp, 5, 6)
	// Registers still meet normally.
	wantConst(t, cp, 5, 5, 42)
}
