package cfg

// Generic forward dataflow solving. A ForwardProblem supplies the
// lattice (Meet/Equal), the boundary state (Entry/Unknown), and the
// per-block transfer function; Forward runs the standard worklist
// fixpoint in reverse postorder. Liveness (backward, bitset-specific)
// predates this framework and keeps its bespoke loop; new forward
// analyses — constant propagation today — plug in here.

// ForwardProblem describes one forward dataflow problem with abstract
// state S.
type ForwardProblem[S any] interface {
	// Entry is the state on entry to the function's entry block.
	Entry() S
	// Unknown is the state assumed for a block none of whose
	// predecessors has been processed yet (and for blocks unreachable
	// from the entry). It must be the identity of Meet.
	Unknown() S
	// Meet combines two predecessor out-states. It must be monotone
	// and may not mutate its arguments.
	Meet(a, b S) S
	// Transfer flows state in through block b. It may not mutate in.
	Transfer(b *Block, in S) S
	// Equal reports state equality; the fixpoint stops when every
	// block's out-state is Equal to the previous iteration's.
	Equal(a, b S) bool
}

// Forward solves p over g, returning per-block in and out states.
func Forward[S any](g *Graph, p ForwardProblem[S]) (in, out []S) {
	n := len(g.Blocks)
	in = make([]S, n)
	out = make([]S, n)
	visited := make([]bool, n)
	for i := range in {
		in[i] = p.Unknown()
		out[i] = p.Unknown()
	}

	rpo := g.ReversePostorder()
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, b := range rpo {
		pos[b] = i
	}

	inList := make([]bool, n)
	var work []int
	push := func(b int) {
		if !inList[b] {
			inList[b] = true
			work = append(work, b)
		}
	}
	for _, b := range rpo {
		push(b)
	}

	for len(work) > 0 {
		// Pop the block earliest in RPO for near-linear convergence on
		// reducible graphs.
		best := 0
		for i := 1; i < len(work); i++ {
			if pos[work[i]] < pos[work[best]] {
				best = i
			}
		}
		b := work[best]
		work[best] = work[len(work)-1]
		work = work[:len(work)-1]
		inList[b] = false

		st := p.Unknown()
		merged := false
		if b == g.Entry {
			st = p.Entry()
			merged = true
		}
		for _, pr := range g.Blocks[b].Preds {
			if !visited[pr] {
				continue
			}
			if !merged {
				st = out[pr]
				merged = true
			} else {
				st = p.Meet(st, out[pr])
			}
		}
		in[b] = st
		newOut := p.Transfer(g.Blocks[b], st)
		if !visited[b] || !p.Equal(newOut, out[b]) {
			visited[b] = true
			out[b] = newOut
			for _, s := range g.Blocks[b].Succs {
				push(s)
			}
		}
	}
	return in, out
}
