package cfg

import (
	"testing"

	"traceback/internal/isa"
	"traceback/internal/module"
)

// TestLivenessSelfLoop exercises the fixpoint on a block that is its
// own successor: a register read inside the loop must stay live around
// the back edge, and the loop's live-in must include its own
// upward-exposed uses even after the first iteration defines them.
func TestLivenessSelfLoop(t *testing.T) {
	// 0: movi r1, 10
	// 1: add r2, r2, r1    (loop block: instrs 1..2, its own successor)
	// 2: bne r2, r3, @1
	// 3: mov r0, r2
	// 4: ret
	code := []isa.Instr{
		{Op: isa.MOVI, A: 1, Imm: 10},
		{Op: isa.ADD, A: 2, B: 2, C: 1},
		{Op: isa.BNE, A: 2, B: 3, Imm: 1},
		{Op: isa.MOV, A: 0, B: 2},
		{Op: isa.RET},
	}
	g, err := Build(code, fn("self", len(code)))
	if err != nil {
		t.Fatal(err)
	}
	loop, ok := g.BlockAt(1)
	if !ok {
		t.Fatal("no loop block at instr 1")
	}
	self := false
	for _, s := range loop.Succs {
		if s == loop.ID {
			self = true
		}
	}
	if !self {
		t.Fatalf("block %d is not a self loop: succs %v", loop.ID, loop.Succs)
	}
	liveIn, liveOut := g.Liveness()
	// r2 is read-before-written in the loop, so it is live around the
	// back edge: live-in AND live-out of the loop block.
	if !liveIn[loop.ID].Has(2) || !liveOut[loop.ID].Has(2) {
		t.Errorf("r2 should be live in (%v) and out (%v) of the self loop",
			liveIn[loop.ID].Has(2), liveOut[loop.ID].Has(2))
	}
	// r1 is defined before the loop and read inside it; because the
	// back edge re-enters before any def of r1, it is live around the
	// loop too.
	if !liveOut[loop.ID].Has(1) {
		t.Error("r1 should be live out of the self loop (read on next iteration)")
	}
	// r3 (the loop bound) likewise.
	if !liveIn[loop.ID].Has(3) {
		t.Error("r3 should be live into the self loop")
	}
}

// TestLivenessIndirectCall checks blocks ending in CALR: the indirect
// call reads its target register in addition to the argument
// registers, and clobbers all caller-saved registers.
func TestLivenessIndirectCall(t *testing.T) {
	// 0: movi r9, 2     (callee-saved, survives the call)
	// 1: movi r5, 7     (caller-saved, clobbered)
	// 2: calr r8        (indirect call through r8)
	// 3: add r0, r9, r9
	// 4: ret
	code := []isa.Instr{
		{Op: isa.MOVI, A: 9, Imm: 2},
		{Op: isa.MOVI, A: 5, Imm: 7},
		{Op: isa.CALR, A: 8},
		{Op: isa.ADD, A: 0, B: 9, C: 9},
		{Op: isa.RET},
	}
	g, err := Build(code, fn("ind", len(code)))
	if err != nil {
		t.Fatal(err)
	}
	callBlock := g.Blocks[0]
	if !callBlock.EndsInCall || callBlock.CallKind != module.CallIndirect {
		t.Fatalf("call block not annotated as indirect: %+v", callBlock)
	}
	if callBlock.CallImm != 8 {
		t.Errorf("CallImm = %d, want the target register 8", callBlock.CallImm)
	}
	liveIn, _ := g.Liveness()
	// The call target register is an upward-exposed use of the block.
	if !liveIn[0].Has(8) {
		t.Error("r8 (indirect call target) should be live at entry")
	}
	// r9 is defined in-block, dead at entry; r5 is defined but its
	// value dies at the call, so nothing makes it live-in either.
	if liveIn[0].Has(9) || liveIn[0].Has(5) {
		t.Error("r9/r5 should be dead at entry (defined before use)")
	}
	ret, ok := g.BlockAt(3)
	if !ok {
		t.Fatal("no return-point block")
	}
	if !liveIn[ret.ID].Has(9) {
		t.Error("callee-saved r9 should be live at the call return point")
	}
}

// TestLivenessEmptyFunction: a zero-length range cannot form a CFG and
// must be rejected with a typed bad-range error, not a panic or a
// graph with no blocks.
func TestLivenessEmptyFunction(t *testing.T) {
	code := diamond()
	_, err := Build(code, module.Func{Name: "empty", Entry: 1, End: 1})
	if err == nil {
		t.Fatal("empty function accepted")
	}
	wantBuildErr(t, err, ErrBadFuncRange)
}

// TestLivenessSingleRet: the minimal legal function. RET reads RV, SP
// and the callee-saved set; nothing else is live.
func TestLivenessSingleRet(t *testing.T) {
	code := []isa.Instr{{Op: isa.RET}}
	g, err := Build(code, fn("ret", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	liveIn, liveOut := g.Liveness()
	if !liveIn[0].Has(isa.RV) || !liveIn[0].Has(isa.SP) {
		t.Error("RV and SP should be live into a bare RET")
	}
	if liveIn[0].Has(isa.A1) {
		t.Error("argument registers should be dead at a bare RET")
	}
	if liveOut[0] != 0 {
		t.Errorf("liveOut of an exit block = %b, want empty", liveOut[0])
	}
}

// TestLivenessFuncCustomEffect: LivenessFunc with a refined call model
// must change the result vs the conservative default. With the default
// effect a CALL kills caller-saved r5; with a helper-aware effect that
// says the call writes only RV, r5 stays live across the call.
func TestLivenessFuncCustomEffect(t *testing.T) {
	// 0: movi r5, 1
	// 1: call @5
	// 2: add r0, r5, r5   (reads r5 after the call)
	// 3: ret
	code := []isa.Instr{
		{Op: isa.MOVI, A: 5, Imm: 1},
		{Op: isa.CALL, Imm: 5},
		{Op: isa.ADD, A: 0, B: 5, C: 5},
		{Op: isa.RET},
		{Op: isa.NOP},
		{Op: isa.RET},
	}
	g, err := Build(code, module.Func{Name: "c", Entry: 0, End: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Conservative default: the call clobbers r5, so at function entry
	// r5 is dead (its pre-call value never reaches a use).
	liveInDefault, _ := g.Liveness()
	if liveInDefault[0].Has(5) {
		t.Error("default effect: r5 should be dead at entry (call clobbers it)")
	}

	// Helper-aware effect: the specific callee writes only RV and
	// reads only SP, like the probe helper. Now r5 flows through the
	// call, and with nothing defining it the use at instr 2 surfaces
	// as live-in at function entry... except instr 0 defines it. So
	// instead check liveOut of the entry block: r5 must be live across
	// the call boundary.
	helperEffect := func(in isa.Instr) (uses, defs RegSet) {
		if in.Op == isa.CALL {
			return RegSet(0).Add(isa.SP), RegSet(0).Add(isa.RV).Add(isa.SP)
		}
		return InstrEffect(in)
	}
	liveIn, liveOut := g.LivenessFunc(helperEffect)
	entry := g.Blocks[0] // ends in the CALL
	if !entry.EndsInCall {
		t.Fatalf("entry block should end in the call: %+v", entry)
	}
	if !liveOut[entry.ID].Has(5) {
		t.Error("helper effect: r5 should be live out of the call block")
	}
	ret, _ := g.BlockAt(2)
	if !liveIn[ret.ID].Has(5) {
		t.Error("helper effect: r5 should be live into the return point")
	}
}
