package cfg

import (
	"testing"

	"traceback/internal/isa"
	"traceback/internal/module"
)

func mustBuild(t *testing.T, code []isa.Instr, f module.Func) *Graph {
	t.Helper()
	g, err := Build(code, f)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func noCut(int) bool { return false }

func TestDominatorsSingleBlock(t *testing.T) {
	code := []isa.Instr{{Op: isa.RET}}
	g := mustBuild(t, code, fn("one", len(code)))
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	dt := g.Dominators()
	if dt.Idom[0] != 0 {
		t.Errorf("Idom[entry] = %d, want 0", dt.Idom[0])
	}
	if !dt.Dominates(0, 0) {
		t.Error("entry should dominate itself")
	}
	if !dt.Reachable(0) {
		t.Error("entry should be reachable")
	}
	if sccs := g.NontrivialSCCs(noCut); len(sccs) != 0 {
		t.Errorf("single acyclic block: SCCs = %v, want none", sccs)
	}
	if rpo := g.ReversePostorder(); len(rpo) != 1 || rpo[0] != 0 {
		t.Errorf("rpo = %v, want [0]", rpo)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g := mustBuild(t, diamond(), fn("d", 5))
	dt := g.Dominators()
	// Blocks: 0 = entry branch, 1 & 2 = arms, 3 = join/exit.
	for b := 1; b < 4; b++ {
		if dt.Idom[b] != 0 {
			t.Errorf("Idom[%d] = %d, want 0 (entry)", b, dt.Idom[b])
		}
		if !dt.Dominates(0, b) {
			t.Errorf("entry should dominate block %d", b)
		}
	}
	join, ok := g.BlockAt(4)
	if !ok {
		t.Fatal("no block at instruction 4")
	}
	for _, arm := range join.Preds {
		if dt.Dominates(arm, join.ID) {
			t.Errorf("arm %d must not dominate the join", arm)
		}
	}
}

func TestDominatorsSelfLoop(t *testing.T) {
	// 0: beq r1,r2,@0   (block 0 loops on itself or falls through)
	// 1: ret
	code := []isa.Instr{
		{Op: isa.BEQ, A: 1, B: 2, Imm: 0},
		{Op: isa.RET},
	}
	g := mustBuild(t, code, fn("self", len(code)))
	dt := g.Dominators()
	if dt.Idom[0] != 0 || !dt.Dominates(0, 0) {
		t.Errorf("self-loop entry: Idom = %d", dt.Idom[0])
	}
	exit, _ := g.BlockAt(1)
	if !dt.Dominates(0, exit.ID) || dt.Dominates(exit.ID, 0) {
		t.Error("dominance wrong across the self-loop exit edge")
	}

	sccs := g.NontrivialSCCs(noCut)
	if len(sccs) != 1 || len(sccs[0]) != 1 || sccs[0][0] != 0 {
		t.Errorf("self-loop SCCs = %v, want [[0]]", sccs)
	}
	// Cutting the looping block (a probe-cut header) dissolves it.
	if sccs := g.NontrivialSCCs(func(id int) bool { return id == 0 }); len(sccs) != 0 {
		t.Errorf("cut self-loop: SCCs = %v, want none", sccs)
	}
}

func TestDominatorsUnreachableBlock(t *testing.T) {
	// 0: jmp @2
	// 1: ret        (unreachable leader)
	// 2: ret
	code := []isa.Instr{
		{Op: isa.JMP, Imm: 2},
		{Op: isa.RET},
		{Op: isa.RET},
	}
	g := mustBuild(t, code, fn("dead", len(code)))
	dt := g.Dominators()
	dead, ok := g.BlockAt(1)
	if !ok {
		t.Fatal("no block at instruction 1")
	}
	if dt.Reachable(dead.ID) {
		t.Error("block 1 should be unreachable")
	}
	if dt.Dominates(0, dead.ID) || dt.Dominates(dead.ID, dead.ID) {
		t.Error("unreachable blocks dominate nothing and are dominated by nothing")
	}
	live, _ := g.BlockAt(2)
	if !dt.Dominates(0, live.ID) {
		t.Error("entry should dominate the reachable exit")
	}
	for _, b := range g.ReversePostorder() {
		if b == dead.ID {
			t.Error("unreachable block appeared in reverse postorder")
		}
	}
}

func TestNontrivialSCCsMultiBlockAndCut(t *testing.T) {
	// 0: beq r1,r2,@3   b0 -> b1, b3
	// 1: movi r3,1      b1 (1,2) -> b0
	// 2: jmp @0
	// 3: ret            b3
	code := []isa.Instr{
		{Op: isa.BEQ, A: 1, B: 2, Imm: 3},
		{Op: isa.MOVI, A: 3, Imm: 1},
		{Op: isa.JMP, Imm: 0},
		{Op: isa.RET},
	}
	g := mustBuild(t, code, fn("loop2", len(code)))
	sccs := g.NontrivialSCCs(noCut)
	if len(sccs) != 1 || len(sccs[0]) != 2 {
		t.Fatalf("SCCs = %v, want one two-block component", sccs)
	}
	// Cutting either member (as DAG tiling does when it places a
	// header probe) must break the cycle.
	for _, member := range sccs[0] {
		m := member
		if got := g.NontrivialSCCs(func(id int) bool { return id == m }); len(got) != 0 {
			t.Errorf("cut block %d: SCCs = %v, want none", m, got)
		}
	}

	dt := g.Dominators()
	b1, _ := g.BlockAt(1)
	if dt.Idom[b1.ID] != 0 {
		t.Errorf("loop body idom = %d, want entry", dt.Idom[b1.ID])
	}
	if dt.Dominates(b1.ID, 0) {
		t.Error("loop body must not dominate the loop header")
	}
}

func TestDominatorsEmptyGraphSafe(t *testing.T) {
	g := &Graph{}
	dt := g.Dominators()
	if len(dt.Idom) != 0 {
		t.Errorf("empty graph Idom = %v", dt.Idom)
	}
	if rpo := g.ReversePostorder(); rpo != nil {
		t.Errorf("empty graph rpo = %v", rpo)
	}
}
