package cfg

import (
	"errors"
	"testing"

	"traceback/internal/isa"
	"traceback/internal/module"
)

// wantBuildErr asserts err is a *BuildError of the given kind.
func wantBuildErr(t *testing.T, err error, kind BuildErrKind) *BuildError {
	t.Helper()
	var be *BuildError
	if !errors.As(err, &be) {
		t.Fatalf("got %T (%v), want *BuildError", err, err)
	}
	if be.Kind != kind {
		t.Fatalf("kind = %v, want %v (err: %v)", be.Kind, kind, err)
	}
	return be
}

func fn(name string, n int) module.Func {
	return module.Func{Name: name, Entry: 0, End: uint32(n)}
}

// A diamond: entry branches, two arms join, exit.
//
//	0: beq r1,r2,@3
//	1: movi r3,1
//	2: jmp @4
//	3: movi r3,2
//	4: ret
func diamond() []isa.Instr {
	return []isa.Instr{
		{Op: isa.BEQ, A: 1, B: 2, Imm: 3},
		{Op: isa.MOVI, A: 3, Imm: 1},
		{Op: isa.JMP, Imm: 4},
		{Op: isa.MOVI, A: 3, Imm: 2},
		{Op: isa.RET},
	}
}

func TestBuildDiamond(t *testing.T) {
	code := diamond()
	g, err := Build(code, fn("d", len(code)))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4", len(g.Blocks))
	}
	b0 := g.Blocks[0]
	if len(b0.Succs) != 2 {
		t.Fatalf("entry succs = %v", b0.Succs)
	}
	exit, ok := g.BlockAt(4)
	if !ok || !exit.HasRet {
		t.Fatalf("exit block: %+v, %v", exit, ok)
	}
	if len(exit.Preds) != 2 {
		t.Errorf("exit preds = %v, want 2", exit.Preds)
	}
}

func TestBuildLoop(t *testing.T) {
	// 0: movi r1,10
	// 1: addi r1,r1,-1
	// 2: bgt r1,r0,@1
	// 3: ret
	code := []isa.Instr{
		{Op: isa.MOVI, A: 1, Imm: 10},
		{Op: isa.ADDI, A: 1, B: 1, Imm: -1},
		{Op: isa.BGT, A: 1, B: 0, Imm: 1},
		{Op: isa.RET},
	}
	g, err := Build(code, fn("loop", len(code)))
	if err != nil {
		t.Fatal(err)
	}
	sccs := g.NontrivialSCCs(func(int) bool { return false })
	if len(sccs) != 1 {
		t.Fatalf("SCCs = %v, want one loop", sccs)
	}
	// Cutting the loop body block breaks the cycle.
	body, _ := g.BlockAt(1)
	sccs = g.NontrivialSCCs(func(id int) bool { return id == body.ID })
	if len(sccs) != 0 {
		t.Errorf("SCCs after cut = %v, want none", sccs)
	}
}

func TestBuildCallAnnotations(t *testing.T) {
	// 0: call @3
	// 1: mov r5,r0
	// 2: ret
	// 3: movi r0,9
	// 4: ret
	code := []isa.Instr{
		{Op: isa.CALL, Imm: 3},
		{Op: isa.MOV, A: 5, B: 0},
		{Op: isa.RET},
		{Op: isa.MOVI, A: 0, Imm: 9},
		{Op: isa.RET},
	}
	g, err := Build(code, module.Func{Name: "caller", Entry: 0, End: 3})
	if err != nil {
		t.Fatal(err)
	}
	b0 := g.Blocks[0]
	if !b0.EndsInCall || b0.CallKind != module.CallDirect || b0.CallImm != 3 {
		t.Errorf("call block = %+v", b0)
	}
	if len(b0.Succs) != 1 {
		t.Errorf("call block succs = %v, want the return point", b0.Succs)
	}
	ret, ok := g.BlockAt(1)
	if !ok {
		t.Fatal("no block at the call return point")
	}
	if ret.Start != 1 {
		t.Errorf("return-point block starts at %d", ret.Start)
	}
}

func TestBuildJumpTable(t *testing.T) {
	// 0: jtab r1, 2
	// 1: jmp @3
	// 2: jmp @4
	// 3: movi r2,1   (multiway target)
	// 4: ret         (multiway target)
	code := []isa.Instr{
		{Op: isa.JTAB, A: 1, C: 2},
		{Op: isa.JMP, Imm: 3},
		{Op: isa.JMP, Imm: 4},
		{Op: isa.MOVI, A: 2, Imm: 1},
		{Op: isa.RET},
	}
	g, err := Build(code, fn("sw", len(code)))
	if err != nil {
		t.Fatal(err)
	}
	jt := g.Blocks[0]
	if len(jt.Succs) != 2 {
		t.Fatalf("jtab succs = %v", jt.Succs)
	}
	for _, start := range []uint32{3, 4} {
		b, ok := g.BlockAt(start)
		if !ok || !b.IsMultiwayTarget {
			t.Errorf("block at %d: multiway target not marked (%+v)", start, b)
		}
	}
}

func TestBuildRejectsEscapingBranch(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.JMP, Imm: 5},
		{Op: isa.RET},
	}
	_, err := Build(code, fn("bad", 2))
	if err == nil {
		t.Fatal("branch outside function accepted")
	}
	be := wantBuildErr(t, err, ErrEscapingBranch)
	if be.Fn != "bad" || be.Instr != 0 {
		t.Errorf("BuildError = %+v, want Fn=bad Instr=0", be)
	}
}

func TestBuildRejectsFallOffEnd(t *testing.T) {
	code := []isa.Instr{{Op: isa.MOVI, A: 1, Imm: 1}}
	_, err := Build(code, fn("bad", 1))
	if err == nil {
		t.Fatal("fallthrough off function end accepted")
	}
	wantBuildErr(t, err, ErrFallthroughEnd)
}

func TestBuildRejectsCondFallOffEnd(t *testing.T) {
	// A conditional branch as the last instruction has a fallthrough
	// successor that does not exist.
	code := []isa.Instr{
		{Op: isa.MOVI, A: 1, Imm: 1},
		{Op: isa.BEQ, A: 1, B: 2, Imm: 0},
	}
	_, err := Build(code, fn("bad", len(code)))
	if err == nil {
		t.Fatal("conditional fallthrough off function end accepted")
	}
	be := wantBuildErr(t, err, ErrFallthroughEnd)
	if be.Instr != 1 {
		t.Errorf("Instr = %d, want 1 (the branch)", be.Instr)
	}
}

func TestBuildRejectsBadFuncRange(t *testing.T) {
	code := diamond()
	for _, f := range []module.Func{
		{Name: "empty", Entry: 2, End: 2},
		{Name: "inverted", Entry: 3, End: 1},
		{Name: "overrun", Entry: 0, End: uint32(len(code)) + 4},
	} {
		_, err := Build(code, f)
		if err == nil {
			t.Fatalf("%s range accepted", f.Name)
		}
		wantBuildErr(t, err, ErrBadFuncRange)
	}
}

func TestBuildRejectsEscapingCall(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.CALL, Imm: 99},
		{Op: isa.RET},
	}
	_, err := Build(code, fn("bad", len(code)))
	if err == nil {
		t.Fatal("call outside module accepted")
	}
	wantBuildErr(t, err, ErrEscapingCall)
}

func TestBuildRejectsBadJumpTable(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.JTAB, A: 1, C: 2},
		{Op: isa.JMP, Imm: 3},
		{Op: isa.NOP}, // slot must be a jmp
		{Op: isa.RET},
	}
	_, err := Build(code, fn("bad", len(code)))
	if err == nil {
		t.Fatal("malformed jump table accepted")
	}
	be := wantBuildErr(t, err, ErrBadJumpTable)
	if be.Instr != 2 {
		t.Errorf("Instr = %d, want 2 (the non-jmp slot)", be.Instr)
	}
}

func TestBlockContaining(t *testing.T) {
	code := diamond()
	g, err := Build(code, fn("d", len(code)))
	if err != nil {
		t.Fatal(err)
	}
	b, ok := g.BlockContaining(2)
	if !ok || b.Start != 1 || b.End != 3 {
		t.Errorf("BlockContaining(2) = %+v, %v", b, ok)
	}
	if _, ok := g.BlockContaining(99); ok {
		t.Error("BlockContaining out of range succeeded")
	}
}

func TestLivenessStraightLine(t *testing.T) {
	// r1 is read before written: live-in. r2 written then read: dead-in.
	// 0: add r3, r1, r1
	// 1: movi r2, 5
	// 2: add r0, r2, r3
	// 3: ret
	code := []isa.Instr{
		{Op: isa.ADD, A: 3, B: 1, C: 1},
		{Op: isa.MOVI, A: 2, Imm: 5},
		{Op: isa.ADD, A: 0, B: 2, C: 3},
		{Op: isa.RET},
	}
	g, err := Build(code, fn("s", len(code)))
	if err != nil {
		t.Fatal(err)
	}
	liveIn, _ := g.Liveness()
	in := liveIn[0]
	if !in.Has(1) {
		t.Error("r1 should be live-in")
	}
	if in.Has(2) {
		t.Error("r2 should be dead at entry")
	}
	if in.Has(5) || in.Has(6) || in.Has(7) {
		t.Error("unused temporaries should be dead at entry")
	}
}

func TestLivenessAcrossBranch(t *testing.T) {
	// r4 used only on one arm: still live-in at the branch.
	// 0: beq r1,r2,@3
	// 1: mov r0,r4
	// 2: ret
	// 3: movi r0,0
	// 4: ret
	code := []isa.Instr{
		{Op: isa.BEQ, A: 1, B: 2, Imm: 3},
		{Op: isa.MOV, A: 0, B: 4},
		{Op: isa.RET},
		{Op: isa.MOVI, A: 0, Imm: 0},
		{Op: isa.RET},
	}
	g, err := Build(code, fn("br", len(code)))
	if err != nil {
		t.Fatal(err)
	}
	liveIn, liveOut := g.Liveness()
	if !liveIn[0].Has(4) {
		t.Error("r4 should be live into the branch block")
	}
	if !liveOut[0].Has(4) {
		t.Error("r4 should be live out of the branch block")
	}
	arm2, _ := g.BlockAt(3)
	if liveIn[arm2.ID].Has(4) {
		t.Error("r4 should be dead on the arm that never reads it")
	}
}

func TestLivenessCallClobbers(t *testing.T) {
	// r5 (caller-saved) defined before a call and read after it: the
	// call clobbers it, so r5 is NOT live across the call from the
	// reader's perspective — but it *is* live into the return-point
	// block. r9 (callee-saved) survives.
	// 0: movi r5, 1
	// 1: movi r9, 2
	// 2: call @6
	// 3: add r0, r5, r9
	// 4: ret
	// (function range just 0..5)
	code := []isa.Instr{
		{Op: isa.MOVI, A: 5, Imm: 1},
		{Op: isa.MOVI, A: 9, Imm: 2},
		{Op: isa.CALL, Imm: 6},
		{Op: isa.ADD, A: 0, B: 5, C: 9},
		{Op: isa.RET},
		{Op: isa.NOP},
		{Op: isa.RET},
	}
	g, err := Build(code, module.Func{Name: "c", Entry: 0, End: 5})
	if err != nil {
		t.Fatal(err)
	}
	liveIn, _ := g.Liveness()
	retPoint, ok := g.BlockAt(3)
	if !ok {
		t.Fatal("no return-point block")
	}
	if !liveIn[retPoint.ID].Has(5) || !liveIn[retPoint.ID].Has(9) {
		t.Error("r5 and r9 should be live at the call return point")
	}
	// At function entry neither is live (both defined first).
	if liveIn[0].Has(5) || liveIn[0].Has(9) {
		t.Error("r5/r9 should be dead at function entry")
	}
}

func TestSCCNested(t *testing.T) {
	// Nested loops: outer 0->1->2->0 with inner 1->1.
	// 0: addi r1,r1,1
	// 1: bne r1,r2,@1      (self loop)
	// 2: blt r1,r3,@0      (outer back edge)
	// 3: ret
	code := []isa.Instr{
		{Op: isa.ADDI, A: 1, B: 1, Imm: 1},
		{Op: isa.BNE, A: 1, B: 2, Imm: 1},
		{Op: isa.BLT, A: 1, B: 3, Imm: 0},
		{Op: isa.RET},
	}
	g, err := Build(code, fn("nest", len(code)))
	if err != nil {
		t.Fatal(err)
	}
	sccs := g.NontrivialSCCs(func(int) bool { return false })
	if len(sccs) != 1 {
		t.Fatalf("SCCs = %v", sccs)
	}
	// Cutting the self-loop block still leaves the outer cycle? No:
	// cutting block at instr 1 removes edges into it, breaking both
	// the self loop and the 0->1->2->0 cycle path through it.
	b1, _ := g.BlockAt(1)
	if rem := g.NontrivialSCCs(func(id int) bool { return id == b1.ID }); len(rem) != 0 {
		t.Errorf("cutting the shared block should break all cycles, got %v", rem)
	}
	// Cutting only block 0 leaves the self loop at 1.
	b0, _ := g.BlockAt(0)
	if rem := g.NontrivialSCCs(func(id int) bool { return id == b0.ID }); len(rem) != 1 {
		t.Errorf("self loop should survive cutting block 0, got %v", rem)
	}
}

func TestRegSet(t *testing.T) {
	var s RegSet
	s = s.Add(3).Add(15)
	if !s.Has(3) || !s.Has(15) || s.Has(0) {
		t.Errorf("RegSet ops broken: %b", s)
	}
}
