package verify_test

import (
	"bytes"
	"testing"

	"traceback/internal/verify"
	"traceback/internal/verify/seed"
)

// TestCorpusRecall is the verifier's recall guarantee: every seeded
// defect class is flagged by the pass designed to catch it, and the
// unmutated baseline stays clean. A mutation that stops firing means a
// pass regressed, not that the module got better.
func TestCorpusRecall(t *testing.T) {
	cases, err := seed.Cases()
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < 7 {
		t.Fatalf("corpus has %d cases, want at least 7", len(cases))
	}
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			res := verify.Verify(c.Module, c.Map, verify.Options{})
			var b bytes.Buffer
			res.WriteText(&b)
			if c.Pass == "" {
				if !res.Ok() {
					t.Fatalf("baseline must verify clean, got %d errors:\n%s", res.NumError, b.String())
				}
				return
			}
			if res.Ok() {
				t.Fatalf("seeded defect (%s) not flagged at all:\n%s", c.Desc, b.String())
			}
			if !res.HasError(c.Pass) {
				t.Fatalf("seeded defect (%s) missed by pass %q; diagnostics:\n%s", c.Desc, c.Pass, b.String())
			}
		})
	}
}

// TestCorpusModuleOnly: the module-level defects must be caught even
// without a mapfile (tbcheck over a bare .tbm).
func TestCorpusModuleOnly(t *testing.T) {
	cases, err := seed.Cases()
	if err != nil {
		t.Fatal(err)
	}
	// missing-probe is deliberately absent: only the mapfile says a
	// block was assigned a path bit, so a NOPed lightweight probe is
	// invisible to module-only verification.
	moduleLevel := map[string]bool{
		"clobbering-probe":   true,
		"ambiguous-encoding": true,
	}
	for _, c := range cases {
		if !moduleLevel[c.Name] {
			continue
		}
		t.Run(c.Name, func(t *testing.T) {
			res := verify.Verify(c.Module, nil, verify.Options{})
			if !res.HasError(c.Pass) {
				var b bytes.Buffer
				res.WriteText(&b)
				t.Fatalf("module-only verification missed the %s defect:\n%s", c.Name, b.String())
			}
		})
	}
}
