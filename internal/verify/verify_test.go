// Package verify_test checks the pass suite from the outside: real
// MiniC programs run through the real instrumenter must verify clean
// (no false positives), and the basic input-shape contracts (no
// mapfile, wrong mapfile, uninstrumented module, managed maps) hold.
// Recall — that seeded defects are caught — lives in corpus_test.go.
package verify_test

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/module"
	"traceback/internal/telemetry"
	"traceback/internal/verify"
)

// richSrc exercises every control-flow shape the tiler handles:
// if/else diamonds, a loop (SCC cutting), calls (return-point
// headers), a switch dense enough to become a jump table, and early
// returns.
const richSrc = `int acc;
int classify(int x) {
	switch (x) {
	case 0: return 10;
	case 1: return 11;
	case 2: return 12;
	case 3: return 13;
	case 4: return 14;
	default: return 0;
	}
}
int step(int v) {
	if (v > 100) {
		return v - 100;
	} else {
		return v + 1;
	}
}
int main() {
	int i = 0;
	while (i < 8) {
		acc = acc + classify(i % 5);
		acc = step(acc);
		i = i + 1;
	}
	if (acc > 50) {
		print_int(acc);
	}
	exit(0);
}`

// build compiles and instruments src, returning the instrumented
// module and its mapfile.
func build(t *testing.T, src string) (*module.Module, *module.MapFile) {
	t.Helper()
	mod, err := minic.Compile("app", "app.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Module, res.Map
}

// mustClean verifies and fails the test with the full diagnostic
// listing if anything error-level came back.
func mustClean(t *testing.T, m *module.Module, mf *module.MapFile) *verify.Result {
	t.Helper()
	res := verify.Verify(m, mf, verify.Options{})
	if !res.Ok() {
		var b bytes.Buffer
		res.WriteText(&b)
		t.Fatalf("expected clean verification, got %d errors:\n%s", res.NumError, b.String())
	}
	return res
}

func TestVerifyCleanRichProgram(t *testing.T) {
	m, mf := build(t, richSrc)
	res := mustClean(t, m, mf)
	if res.NumWarn != 0 {
		var b bytes.Buffer
		res.WriteText(&b)
		t.Errorf("expected zero warnings on instrumenter output, got %d:\n%s", res.NumWarn, b.String())
	}
}

func TestVerifyCleanTinyProgram(t *testing.T) {
	m, mf := build(t, `int main() { exit(0); }`)
	mustClean(t, m, mf)
}

func TestVerifyCleanNonzeroDAGBase(t *testing.T) {
	mod, err := minic.Compile("app", "app.mc", richSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Instrument(mod, core.Options{DAGBase: 4096})
	if err != nil {
		t.Fatal(err)
	}
	mustClean(t, res.Module, res.Map)
}

func TestVerifyModuleOnly(t *testing.T) {
	m, _ := build(t, richSrc)
	res := verify.Verify(m, nil, verify.Options{})
	if !res.Ok() {
		var b bytes.Buffer
		res.WriteText(&b)
		t.Fatalf("module-only verification should pass:\n%s", b.String())
	}
	found := false
	for _, d := range res.Diags {
		if d.Severity == verify.SevInfo && strings.Contains(d.Msg, "no mapfile") {
			found = true
		}
	}
	if !found {
		t.Error("module-only run should note that map-driven checks were skipped")
	}
}

func TestVerifyUninstrumentedModule(t *testing.T) {
	mod, err := minic.Compile("app", "app.mc", richSrc)
	if err != nil {
		t.Fatal(err)
	}
	res := verify.Verify(mod, nil, verify.Options{})
	if res.Ok() {
		t.Fatal("uninstrumented module must fail verification")
	}
	if !res.HasError(verify.PassStructure) {
		t.Error("want a structure-pass error for the uninstrumented module")
	}
}

func TestVerifyMapfileDrift(t *testing.T) {
	m, _ := build(t, richSrc)
	_, otherMap := build(t, `int main() { print_int(1); exit(0); }`)
	res := verify.Verify(m, otherMap, verify.Options{})
	if res.Ok() {
		t.Fatal("module paired with another program's mapfile must fail")
	}
	if !res.HasError(verify.PassMap) {
		var b bytes.Buffer
		res.WriteText(&b)
		t.Errorf("want a map-consistency error for mapfile drift, got:\n%s", b.String())
	}
}

func TestVerifyManagedMapSkipsNativePasses(t *testing.T) {
	m, mf := build(t, `int main() { exit(0); }`)
	managed := cloneMap(t, mf)
	managed.Managed = true
	res := verify.Verify(m, managed, verify.Options{})
	if !res.Ok() {
		var b bytes.Buffer
		res.WriteText(&b)
		t.Fatalf("managed map should short-circuit clean:\n%s", b.String())
	}
	found := false
	for _, d := range res.Diags {
		if strings.Contains(d.Msg, "managed mapfile") {
			found = true
		}
	}
	if !found {
		t.Error("managed run should note that native probe passes were skipped")
	}
}

func TestVerifyPassSelection(t *testing.T) {
	m, mf := build(t, richSrc)
	res := verify.Verify(m, mf, verify.Options{Passes: []string{verify.PassCoverage}})
	if !res.Ok() {
		t.Fatal("restricted pass run should still be clean")
	}
	for _, d := range res.Diags {
		if d.Pass != verify.PassStructure && d.Pass != verify.PassCoverage {
			t.Errorf("pass %q ran despite not being selected: %v", d.Pass, d)
		}
	}
}

func TestVerifyWriteJSON(t *testing.T) {
	m, mf := build(t, richSrc)
	res := verify.Verify(m, mf, verify.Options{})
	var b bytes.Buffer
	if err := res.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back struct {
		Module string              `json:"module"`
		Diags  []verify.Diagnostic `json:"diags"`
		Errors int                 `json:"errors"`
	}
	if err := json.Unmarshal(b.Bytes(), &back); err != nil {
		t.Fatalf("JSON output does not round-trip: %v", err)
	}
	if back.Module != "app" || back.Errors != 0 {
		t.Errorf("JSON result = %+v", back)
	}
}

func TestVerifyMetrics(t *testing.T) {
	reg := telemetry.New()
	mt := verify.NewMetrics(reg)
	m, mf := build(t, richSrc)
	mt.Observe(verify.Verify(m, mf, verify.Options{}))
	uninstr, err := minic.Compile("app", "app.mc", richSrc)
	if err != nil {
		t.Fatal(err)
	}
	mt.Observe(verify.Verify(uninstr, nil, verify.Options{}))
	if got := mt.Runs.Load(); got != 2 {
		t.Errorf("runs = %d, want 2", got)
	}
	if got := mt.Clean.Load(); got != 1 {
		t.Errorf("clean = %d, want 1", got)
	}
	if got := mt.Failed.Load(); got != 1 {
		t.Errorf("failed = %d, want 1", got)
	}
	if mt.DiagErrors.Load() == 0 {
		t.Error("expected error diagnostics counted")
	}
}

func TestAllPassesSorted(t *testing.T) {
	passes := verify.AllPasses()
	if !sort.StringsAreSorted(passes) {
		t.Errorf("AllPasses() = %v, want sorted order", passes)
	}
	want := map[string]bool{
		verify.PassStructure: true, verify.PassCoverage: true, verify.PassSafety: true,
		verify.PassMap: true, verify.PassEncoding: true,
	}
	if len(passes) != len(want) {
		t.Fatalf("AllPasses() = %v, want %d passes", passes, len(want))
	}
	for _, p := range passes {
		if !want[p] {
			t.Errorf("unexpected pass %q", p)
		}
	}
	// Stable across calls.
	again := verify.AllPasses()
	for i := range passes {
		if passes[i] != again[i] {
			t.Fatalf("AllPasses() unstable: %v vs %v", passes, again)
		}
	}
}

func TestDiagnosticModuleAttribution(t *testing.T) {
	base := verify.Diagnostic{
		Pass: verify.PassCoverage, Severity: verify.SevError,
		Func: "main", DAG: -1, Instr: 7, Msg: "boom",
	}
	// Empty module: rendering is byte-identical to the pre-fleet form.
	if got, want := base.String(), "error: [probe-coverage] boom (func main, instr 7)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "module") {
		t.Errorf("empty module field must be omitted from JSON: %s", raw)
	}

	withMod := base
	withMod.Module = "client"
	if got, want := withMod.String(), "error: [probe-coverage] boom (module client, func main, instr 7)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	raw, err = json.Marshal(withMod)
	if err != nil {
		t.Fatal(err)
	}
	var back verify.Diagnostic
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Module != "client" {
		t.Errorf("module did not round-trip: %+v", back)
	}

	modOnly := verify.Diagnostic{
		Pass: "rpc-endpoints", Severity: verify.SevWarn,
		Module: "server", DAG: -1, Instr: -1, Msg: "m",
	}
	if got, want := modOnly.String(), "warning: [rpc-endpoints] m (module server)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// cloneMap deep-copies a mapfile through its JSON encoding.
func cloneMap(t *testing.T, mf *module.MapFile) *module.MapFile {
	t.Helper()
	raw, err := json.Marshal(mf)
	if err != nil {
		t.Fatal(err)
	}
	out := &module.MapFile{}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatal(err)
	}
	return out
}
