package verify

import (
	"traceback/internal/cfg"
	"traceback/internal/isa"
	"traceback/internal/module"
)

// probeKind classifies a parsed probe sequence.
type probeKind uint8

const (
	probeHeavy probeKind = iota + 1
	probeLight
)

func (k probeKind) String() string {
	if k == probeHeavy {
		return "heavyweight"
	}
	return "lightweight"
}

// probeInfo is one parsed probe sequence at the head of a block.
// start/end are module instruction indexes, [start, end).
type probeInfo struct {
	kind  probeKind
	start uint32
	end   uint32
	save  bool  // PUSH/POP wrapped (live RV for heavy, spill for light)
	reg   uint8 // RV for heavy; the scratch/spill register for light
	word  uint32
	mask  uint32 // light: the ORM4 immediate
	sti   uint32 // heavy: index of the STI4
	tls   uint32 // light: index of the TLSLD
}

// parseProbes scans every block head of fi for a probe sequence,
// mirroring core's emit(): probes are injected before the original
// block-start instruction, and branches enter through them, so a
// probe can only legally sit at a block Start.
//
//	heavyweight:  [push r0]  call helper ; sti4 [r0], word  [pop r0]
//	lightweight:  tlsld rS, tls[60] ; orm4 [rS], 1<<bit
//	spill form:   push r5 ; tlsld r5 ; orm4 [r5] ; pop r5
//
// The parse is shape-driven (opcodes and register agreement); field
// validity (TLS slot, mask width, live-register safety, fixups) is
// judged by the safety and decodability passes so that a malformed
// field is diagnosed precisely instead of failing the parse.
func (ctx *context) parseProbes(fi *fnInfo) {
	fi.probes = make(map[uint32]*probeInfo)
	for _, b := range fi.g.Blocks {
		if p, ok := ctx.parseProbeAt(b.Start, b.End, fi.fn.End); ok {
			fi.probes[b.Start] = p
		}
	}
}

// parseProbeAt tries to parse one probe sequence at instruction index
// i. blockEnd bounds the block the probe heads; a heavyweight probe's
// helper CALL is itself a block terminator (the return point starts a
// new block), so its STI4/POP tail legally continues past blockEnd and
// is bounded by fnEnd instead.
func (ctx *context) parseProbeAt(i, blockEnd, fnEnd uint32) (*probeInfo, bool) {
	code := ctx.m.Code
	j := i
	save := false
	var saveReg uint8
	if j < blockEnd && code[j].Op == isa.PUSH {
		save = true
		saveReg = code[j].A
		j++
	}
	if j >= blockEnd {
		return nil, false
	}
	switch code[j].Op {
	case isa.CALL:
		if uint32(code[j].Imm) != ctx.helper.Entry {
			return nil, false
		}
		if save && saveReg != isa.RV {
			// push rX; call helper — not an emitted shape; the call
			// will be caught as an unprobed helper call by coverage.
			return nil, false
		}
		if j != blockEnd-1 {
			// A mid-block helper call means block construction and the
			// probe disagree; let the stray scan flag it.
			return nil, false
		}
		j++
		if j >= fnEnd || code[j].Op != isa.STI4 || code[j].A != isa.RV {
			return nil, false
		}
		p := &probeInfo{kind: probeHeavy, start: i, save: save, reg: isa.RV,
			sti: j, word: uint32(code[j].Imm)}
		j++
		if save {
			if j >= fnEnd || code[j].Op != isa.POP || code[j].A != isa.RV {
				return nil, false
			}
			j++
		}
		p.end = j
		return p, true
	case isa.TLSLD:
		reg := code[j].A
		if save && saveReg != reg {
			return nil, false
		}
		p := &probeInfo{kind: probeLight, start: i, save: save, reg: reg, tls: j}
		j++
		if j >= blockEnd || code[j].Op != isa.ORM4 || code[j].A != reg {
			return nil, false
		}
		p.mask = uint32(code[j].Imm)
		j++
		if save {
			if j >= blockEnd || code[j].Op != isa.POP || code[j].A != reg {
				return nil, false
			}
			j++
		}
		p.end = j
		return p, true
	}
	return nil, false
}

// isProbeOp reports whether op is one of the opcodes only probes (and
// the probe helper) may use in instrumented code. MiniC codegen never
// emits them, so any occurrence outside a parsed probe or the helper
// body is instrumentation damage.
func isProbeOp(op isa.Op) bool {
	switch op {
	case isa.STI4, isa.ORM4, isa.TLSLD, isa.TLSST:
		return true
	}
	return false
}

// isHelperCallBlock reports whether b ends in the direct call to the
// probe helper — the split a heavyweight probe introduces into its own
// block, not a real call site.
func (ctx *context) isHelperCallBlock(b *cfg.Block) bool {
	return b.EndsInCall && b.CallKind == module.CallDirect &&
		ctx.hasHelper && uint32(b.CallImm) == ctx.helper.Entry
}

// regionFor resolves the instrumentation region starting at start: the
// chain of CFG blocks a single pre-instrumentation block became. A
// heavyweight probe's helper CALL terminates its block, so the region
// is that block plus the fallthrough continuation holding the STI4
// tail and the original code; otherwise it is one block. first heads
// the region (and holds any probe); last carries the region's real
// terminator and successor edges.
func (ctx *context) regionFor(fi *fnInfo, start uint32) (first, last *cfg.Block, ok bool) {
	first, ok = fi.g.BlockAt(start)
	if !ok {
		return nil, nil, false
	}
	last = first
	for ctx.isHelperCallBlock(last) {
		nxt, ok := fi.g.BlockAt(last.End)
		if !ok {
			break
		}
		last = nxt
	}
	return first, last, true
}

// isContinuation reports whether the block starting at start is the
// tail half of a heavyweight probe's split (it starts strictly inside
// a parsed probe span), rather than a region head.
func (ctx *context) isContinuation(start uint32) bool {
	p, ok := ctx.probeSpanContaining(start)
	return ok && start != p.start
}

// inHelper reports whether instruction index idx is inside the probe
// helper's range.
func (ctx *context) inHelper(idx uint32) bool {
	return ctx.hasHelper && idx >= ctx.helper.Entry && idx < ctx.helper.End
}

// probeSpanContaining returns the parsed probe whose [start, end)
// span contains idx, searching the function that contains idx.
func (ctx *context) probeSpanContaining(idx uint32) (*probeInfo, bool) {
	fi, ok := ctx.funcContaining(idx)
	if !ok {
		return nil, false
	}
	for _, p := range fi.probes {
		if idx >= p.start && idx < p.end {
			return p, true
		}
	}
	return nil, false
}
