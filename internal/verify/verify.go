// Package verify statically checks the invariants that TraceBack
// reconstruction assumes an instrumented module satisfies. The paper's
// pitch — first-fault diagnosis from a single snap, no re-run —
// silently collapses when instrumentation and mapfile disagree, so the
// contract between internal/core (which emits probes) and
// internal/recon (which decodes them) is proved here at instrument
// time rather than discovered as garbage traces in production.
//
// The suite is a go/analysis-style pass runner over the repository's
// own IR (module, cfg, trace — stdlib only). Passes:
//
//   - structure: module/mapfile structural validation, CFG
//     construction (classifying typed cfg.BuildError kinds), probe
//     parsing, reachability, and helper-aware liveness. All later
//     passes consume its results.
//   - probe-coverage: exactly one probe per control-flow block that
//     needs one (DAG headers heavyweight, bit-carrying blocks
//     lightweight), none in unreachable code or jump-table slots, and
//     the mandatory header placements (function entry, call return
//     points, multiway targets, one per cycle) hold.
//   - probe-safety: probes never clobber a register that is live at
//     the probe's resume point, scavenged scratch registers are dead,
//     TLS-slot discipline holds (slot 60, TLSST only inside the
//     helper) and the DAG/TLS fixup tables are total over the probe
//     instructions, so load-time rebasing cannot miss one.
//   - map-consistency: every MapDAG block corresponds to exactly one
//     CFG block, DAG edges equal the in-DAG CFG successor edges, the
//     DAG ID table is total, and the checksum/base/count header ties
//     the mapfile to this exact module (the PR-1 "mapfile drift"
//     class).
//   - decodability: no two distinct block paths through a DAG emit
//     the same record word — probe words are well-formed DAG records
//     with in-range IDs (catching sentinel/bad-DAG collisions, the
//     0x00/0x7F trailer-ambiguity class at the encoding level,
//     including across buffer wrap points), path bits are single-bit
//     and match the mapfile, and maximal path enumeration proves
//     bitset injectivity.
package verify

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"traceback/internal/cfg"
	"traceback/internal/core"
	"traceback/internal/isa"
	"traceback/internal/module"
)

// Severity grades a diagnostic. Error-level findings mean
// reconstruction can produce wrong output; warnings mean degraded or
// suspicious-but-decodable output; info is provenance.
type Severity uint8

const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warning"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses a severity name, so tbcheck's JSON output can
// be consumed by other tooling round-trip.
func (s *Severity) UnmarshalJSON(raw []byte) error {
	var name string
	if err := json.Unmarshal(raw, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = SevInfo
	case "warning":
		*s = SevWarn
	case "error":
		*s = SevError
	default:
		return fmt.Errorf("verify: unknown severity %q", name)
	}
	return nil
}

// Pass names, usable in Options.Passes.
const (
	PassStructure = "structure"
	PassCoverage  = "probe-coverage"
	PassSafety    = "probe-safety"
	PassMap       = "map-consistency"
	PassEncoding  = "decodability"
)

// AllPasses lists every pass name in sorted order, for stable -passes
// usage text and JSON output. Execution order is fixed by Verify
// itself (structure always first), not by this list.
func AllPasses() []string {
	names := []string{PassStructure, PassCoverage, PassSafety, PassMap, PassEncoding}
	sort.Strings(names)
	return names
}

// Diagnostic is one finding. Instr and DAG are -1 when the finding is
// not tied to an instruction or DAG; File/Line are the source position
// of Instr when the module's line table covers it. Module is set only
// by fleet-mode verification, where diagnostics from several modules
// mix in one result and need attribution; single-module output leaves
// it empty and renders byte-identically to before the field existed.
type Diagnostic struct {
	Pass     string   `json:"pass"`
	Severity Severity `json:"severity"`
	Module   string   `json:"module,omitempty"`
	Func     string   `json:"func,omitempty"`
	DAG      int      `json:"dag"`
	Instr    int      `json:"instr"`
	File     string   `json:"file,omitempty"`
	Line     uint32   `json:"line,omitempty"`
	Msg      string   `json:"msg"`
}

// String renders the diagnostic in file:line form.
func (d Diagnostic) String() string {
	pos := ""
	if d.File != "" {
		pos = fmt.Sprintf("%s:%d: ", d.File, d.Line)
	}
	var parts []string
	if d.Module != "" {
		parts = append(parts, "module "+d.Module)
	}
	if d.Func != "" {
		parts = append(parts, "func "+d.Func)
	}
	if d.Instr >= 0 {
		parts = append(parts, fmt.Sprintf("instr %d", d.Instr))
	}
	loc := ""
	if len(parts) > 0 {
		loc = " (" + strings.Join(parts, ", ") + ")"
	}
	return fmt.Sprintf("%s%s: [%s] %s%s", pos, d.Severity, d.Pass, d.Msg, loc)
}

// Result is the outcome of one Verify run.
type Result struct {
	Module   string       `json:"module"`
	Diags    []Diagnostic `json:"diags"`
	NumError int          `json:"errors"`
	NumWarn  int          `json:"warnings"`
	NumInfo  int          `json:"infos"`
}

func (r *Result) add(d Diagnostic) {
	r.Diags = append(r.Diags, d)
	switch d.Severity {
	case SevError:
		r.NumError++
	case SevWarn:
		r.NumWarn++
	default:
		r.NumInfo++
	}
}

// Ok reports whether the run produced no error-level diagnostics.
func (r *Result) Ok() bool { return r.NumError == 0 }

// HasError reports whether the named pass produced an error.
func (r *Result) HasError(pass string) bool {
	for _, d := range r.Diags {
		if d.Pass == pass && d.Severity == SevError {
			return true
		}
	}
	return false
}

// WriteText prints one diagnostic per line.
func (r *Result) WriteText(w io.Writer) error {
	for _, d := range r.Diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON prints the whole result as one JSON object.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// DefaultMaxPaths bounds the decodability pass's per-DAG maximal-path
// enumeration. DAGs are small by construction (at most NumPathBits
// probe-carrying blocks), so real modules stay far below this.
const DefaultMaxPaths = 4096

// Options tune a Verify run.
type Options struct {
	// MaxPaths caps the decodability pass's path enumeration per DAG;
	// 0 means DefaultMaxPaths. Exceeding the cap degrades the pass to
	// a warning, never a false error.
	MaxPaths int
	// Passes selects which passes run (structure always runs); nil
	// means all.
	Passes []string
}

func (o Options) enabled(pass string) bool {
	if len(o.Passes) == 0 {
		return true
	}
	for _, p := range o.Passes {
		if p == pass {
			return true
		}
	}
	return false
}

// Verify runs the pass suite over an instrumented module and its
// mapfile. mf may be nil: the map-consistency pass and the map-driven
// halves of coverage/decodability are skipped (noted at info level).
// Verify never panics on structurally valid inputs; malformed inputs
// produce error diagnostics instead.
func Verify(m *module.Module, mf *module.MapFile, opts Options) *Result {
	if opts.MaxPaths <= 0 {
		opts.MaxPaths = DefaultMaxPaths
	}
	res := &Result{Module: m.Name}
	ctx := &context{m: m, mf: mf, opts: opts, res: res}
	if !ctx.structure() {
		return res
	}
	if mf != nil && mf.Managed {
		// Bytecode instrumentation (paper §2.4): probes live in the
		// managed VM's code stream, not in this module's native code,
		// so the native-probe passes do not apply. Structural mapfile
		// validation already ran.
		ctx.report(Diagnostic{Pass: PassStructure, Severity: SevInfo, DAG: -1, Instr: -1,
			Msg: "managed mapfile: native probe passes skipped"})
		return res
	}
	if opts.enabled(PassCoverage) {
		ctx.coverage()
	}
	if opts.enabled(PassSafety) {
		ctx.safety()
	}
	if ctx.mf != nil && opts.enabled(PassMap) {
		ctx.mapConsistency()
	}
	if opts.enabled(PassEncoding) {
		ctx.encoding()
	}
	return res
}

// blockRef locates a mapfile block: DAG index (into mf.DAGs) and
// block index within that DAG.
type blockRef struct {
	dag, idx int
}

// fnInfo is the per-function analysis state the passes share.
type fnInfo struct {
	fn    module.Func
	g     *cfg.Graph
	reach []bool // block ID -> reachable from function entry
	// liveIn/liveOut use the helper-aware effect: a CALL to the probe
	// helper clobbers only RV (+SP transiently), not the full
	// caller-saved set, so probe safety is judged against what the
	// helper really does.
	liveIn, liveOut []cfg.RegSet
	// probes maps block Start -> the probe parsed at that block's
	// head (blocks without probes are absent).
	probes map[uint32]*probeInfo
}

// context carries one Verify run.
type context struct {
	m    *module.Module
	mf   *module.MapFile // nil when absent or structurally invalid
	opts Options
	res  *Result

	helper    module.Func
	hasHelper bool
	effect    func(isa.Instr) (uses, defs cfg.RegSet)
	funcs     []*fnInfo
	// place maps an instrumented-code block Start to its mapfile
	// location. Occupancy conflicts are diagnosed by map-consistency.
	place map[uint32]blockRef
}

func (ctx *context) report(d Diagnostic) {
	if d.Instr >= 0 {
		idx := uint32(d.Instr)
		if d.File == "" {
			if file, line, ok := ctx.m.LineFor(idx); ok {
				d.File, d.Line = file, line
			}
		}
		if d.Func == "" {
			if f, ok := ctx.m.FindFunc(idx); ok {
				d.Func = f.Name
			}
		}
	}
	ctx.res.add(d)
}

func (ctx *context) errorf(pass string, dag, instr int, format string, a ...any) {
	ctx.report(Diagnostic{Pass: pass, Severity: SevError, DAG: dag, Instr: instr,
		Msg: fmt.Sprintf(format, a...)})
}

func (ctx *context) warnf(pass string, dag, instr int, format string, a ...any) {
	ctx.report(Diagnostic{Pass: pass, Severity: SevWarn, DAG: dag, Instr: instr,
		Msg: fmt.Sprintf(format, a...)})
}

func (ctx *context) infof(pass string, format string, a ...any) {
	ctx.report(Diagnostic{Pass: pass, Severity: SevInfo, DAG: -1, Instr: -1,
		Msg: fmt.Sprintf(format, a...)})
}

// structure validates the raw inputs and builds the shared analysis
// state. It returns false when the module is too broken for any later
// pass to say something meaningful.
func (ctx *context) structure() bool {
	m := ctx.m
	if err := m.Validate(); err != nil {
		ctx.errorf(PassStructure, -1, -1, "module invalid: %v", err)
		return false
	}
	if !m.Instrumented {
		ctx.errorf(PassStructure, -1, -1, "module is not instrumented")
		return false
	}
	if ctx.mf != nil {
		if err := ctx.mf.Validate(); err != nil {
			ctx.errorf(PassMap, -1, -1, "mapfile invalid: %v", err)
			// Keep going in module-only mode: the probe-level passes
			// do not need the map.
			ctx.mf = nil
		}
	} else {
		ctx.infof(PassStructure, "no mapfile: map-consistency and map-driven checks skipped")
	}
	if ctx.mf != nil && ctx.mf.Managed {
		return true
	}

	ctx.helper, ctx.hasHelper = m.FuncByName(core.HelperName)
	if !ctx.hasHelper {
		ctx.errorf(PassStructure, -1, -1,
			"probe helper %s missing from the function table", core.HelperName)
		return false
	}

	ctx.effect = ctx.helperAwareEffect()
	for _, fn := range m.Funcs {
		if fn.Name == core.HelperName && fn.Entry == ctx.helper.Entry {
			continue
		}
		g, err := cfg.Build(m.Code, fn)
		if err != nil {
			ctx.reportBuildError(fn, err)
			continue
		}
		fi := &fnInfo{fn: fn, g: g}
		fi.reach = reachable(g)
		fi.liveIn, fi.liveOut = g.LivenessFunc(ctx.effect)
		ctx.parseProbes(fi)
		ctx.funcs = append(ctx.funcs, fi)
	}

	if ctx.mf != nil {
		ctx.place = make(map[uint32]blockRef)
		for di := range ctx.mf.DAGs {
			d := &ctx.mf.DAGs[di]
			for bi := range d.Blocks {
				s := d.Blocks[bi].Start
				if _, dup := ctx.place[s]; !dup {
					ctx.place[s] = blockRef{dag: di, idx: bi}
				}
			}
		}
	}
	return true
}

// reportBuildError classifies a cfg.Build failure so downstream
// tooling can distinguish, say, fallthrough-off-end (a codegen or
// relayout bug) from an escaping branch (corrupt fixups).
func (ctx *context) reportBuildError(fn module.Func, err error) {
	if be, ok := err.(*cfg.BuildError); ok {
		ctx.report(Diagnostic{Pass: PassStructure, Severity: SevError,
			Func: fn.Name, DAG: -1, Instr: int(be.Instr),
			Msg: fmt.Sprintf("CFG construction failed (%s): %v", be.Kind, err)})
		return
	}
	ctx.report(Diagnostic{Pass: PassStructure, Severity: SevError,
		Func: fn.Name, DAG: -1, Instr: -1,
		Msg: fmt.Sprintf("CFG construction failed: %v", err)})
}

// helperAwareEffect is cfg.InstrEffect refined with the probe
// helper's real register footprint: it preserves everything except RV
// (the buffer pointer it returns) and SP (transiently, restored).
func (ctx *context) helperAwareEffect() func(isa.Instr) (uses, defs cfg.RegSet) {
	entry := ctx.helper.Entry
	return func(in isa.Instr) (uses, defs cfg.RegSet) {
		if in.Op == isa.CALL && uint32(in.Imm) == entry {
			var u, d cfg.RegSet
			return u.Add(isa.SP), d.Add(isa.RV).Add(isa.SP)
		}
		return cfg.InstrEffect(in)
	}
}

// reachable marks blocks reachable from the function entry.
func reachable(g *cfg.Graph) []bool {
	seen := make([]bool, len(g.Blocks))
	stack := []int{g.Entry}
	seen[g.Entry] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[v].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// funcContaining returns the analyzed function covering instruction
// index idx.
func (ctx *context) funcContaining(idx uint32) (*fnInfo, bool) {
	for _, fi := range ctx.funcs {
		if idx >= fi.fn.Entry && idx < fi.fn.End {
			return fi, true
		}
	}
	return nil, false
}

// sortedProbeStarts returns fi's probe block starts in address order,
// for deterministic diagnostics.
func sortedProbeStarts(fi *fnInfo) []uint32 {
	starts := make([]uint32, 0, len(fi.probes))
	for s := range fi.probes {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts
}
