package verify

import (
	"traceback/internal/module"
)

// mapConsistency is the map-consistency pass: the mapfile must
// describe exactly this module (the PR-1 "mapfile drift" class), and
// its DAG/block/edge structure must be a faithful image of the real
// CFG — every map block is one CFG block, map edges equal the in-DAG
// CFG successor edges, blocks are listed in forward topological order
// (ExpandPath only walks forward), and every reachable CFG block
// belongs to exactly one DAG. Reconstruction trusts all of this
// blindly: a dangling edge sends path expansion through code that
// cannot execute; a missing block silently drops source lines.
func (ctx *context) mapConsistency() {
	m, mf := ctx.m, ctx.mf

	if mf.ModuleName != m.Name {
		ctx.errorf(PassMap, -1, -1, "mapfile names module %q, checking %q", mf.ModuleName, m.Name)
	}
	if sum := m.ChecksumHex(); mf.Checksum != sum {
		ctx.errorf(PassMap, -1, -1,
			"mapfile checksum %s does not match module checksum %s (mapfile drift: built from different code)",
			mf.Checksum, sum)
	}
	if mf.DAGBase != m.DAGBase {
		ctx.errorf(PassMap, -1, -1, "mapfile DAGBase %d != module DAGBase %d", mf.DAGBase, m.DAGBase)
	}
	if mf.DAGCount != m.DAGCount {
		ctx.errorf(PassMap, -1, -1, "mapfile DAGCount %d != module DAGCount %d", mf.DAGCount, m.DAGCount)
	}
	for id := uint32(0); id < mf.DAGCount; id++ {
		if _, ok := mf.DAGByID(id); !ok {
			ctx.errorf(PassMap, int(id), -1, "DAGByID not total: DAG %d unresolvable", id)
		}
	}

	// Occupancy: how many map blocks claim each block start.
	occ := map[uint32]int{}
	for di := range mf.DAGs {
		for bi := range mf.DAGs[di].Blocks {
			occ[mf.DAGs[di].Blocks[bi].Start]++
		}
	}

	for di := range mf.DAGs {
		ctx.checkDAG(&mf.DAGs[di])
	}

	// Every reachable region head must be described by exactly one map
	// block; unreachable blocks should not appear at all. Heavy-probe
	// continuation blocks are CFG artifacts of the probe's own helper
	// CALL, not regions of their own.
	for _, fi := range ctx.funcs {
		for _, b := range fi.g.Blocks {
			if ctx.isContinuation(b.Start) {
				continue
			}
			n := occ[b.Start]
			switch {
			case fi.reach[b.ID] && n == 0:
				ctx.errorf(PassMap, -1, int(b.Start),
					"reachable block not described by any DAG: its execution would vanish from reconstruction")
			case n > 1:
				ctx.errorf(PassMap, -1, int(b.Start),
					"block claimed by %d map blocks (ambiguous ownership)", n)
			case !fi.reach[b.ID] && n > 0:
				ctx.warnf(PassMap, -1, int(b.Start),
					"unreachable block appears in the mapfile")
			}
		}
	}
}

// checkDAG verifies one MapDAG's block alignment, edge set, and
// annotations against the CFG.
func (ctx *context) checkDAG(d *module.MapDAG) {
	dagID := int(d.ID)
	startIdx := make(map[uint32]int, len(d.Blocks))
	for bi := range d.Blocks {
		startIdx[d.Blocks[bi].Start] = bi
	}
	headerStart := d.Blocks[0].Start

	var owner *fnInfo
	aligned := make([]bool, len(d.Blocks))
	for bi := range d.Blocks {
		mb := &d.Blocks[bi]
		if ctx.inHelper(mb.Start) {
			ctx.errorf(PassMap, dagID, int(mb.Start), "map block inside the probe helper")
			continue
		}
		fi, ok := ctx.funcContaining(mb.Start)
		if !ok {
			ctx.errorf(PassMap, dagID, int(mb.Start), "map block outside any analyzed function")
			continue
		}
		if owner == nil {
			owner = fi
		} else if fi != owner {
			ctx.errorf(PassMap, dagID, int(mb.Start),
				"DAG %d spans functions %s and %s (tiles are per-function)", d.ID, owner.fn.Name, fi.fn.Name)
			continue
		}
		first, last, ok := ctx.regionFor(fi, mb.Start)
		if !ok {
			ctx.errorf(PassMap, dagID, int(mb.Start),
				"map block start %d is not a basic-block boundary", mb.Start)
			continue
		}
		if last.End != mb.End {
			ctx.errorf(PassMap, dagID, int(mb.Start),
				"map block [%d,%d) misaligned with CFG region [%d,%d): line spans and exception trimming would use wrong code ranges",
				mb.Start, mb.End, first.Start, last.End)
			continue
		}
		aligned[bi] = true
		if first.IsJTABSlot && mb.Bit >= 0 {
			ctx.errorf(PassMap, dagID, int(mb.Start),
				"jump-table slot assigned path bit %d (slots are never probed)", mb.Bit)
		}
		// Display annotations: wrong values degrade the call-hierarchy
		// view, not correctness, so warn.
		wantCall := module.CallNone
		if last.EndsInCall {
			wantCall = last.CallKind
		}
		if mb.Call != wantCall {
			ctx.warnf(PassMap, dagID, int(mb.Start),
				"map block call annotation %v, CFG says %v", mb.Call, wantCall)
		}
		if mb.FuncExit != last.HasRet {
			ctx.warnf(PassMap, dagID, int(mb.Start),
				"map block funcExit=%v, CFG says %v", mb.FuncExit, last.HasRet)
		}
	}
	if owner == nil {
		return
	}

	// Edge sets: map Succs must equal the in-DAG CFG successor edges
	// of the region's last block (the header is never a successor:
	// re-entering it emits a fresh record), and must run forward so
	// path expansion terminates.
	g := owner.g
	for bi := range d.Blocks {
		if !aligned[bi] {
			continue
		}
		mb := &d.Blocks[bi]
		_, blk, _ := ctx.regionFor(owner, mb.Start)
		prev := -1
		for _, s := range mb.Succs {
			if s <= bi {
				ctx.errorf(PassMap, dagID, int(mb.Start),
					"map successor %d is not topologically after block %d: path expansion walks forward only", s, bi)
			}
			if s <= prev {
				ctx.errorf(PassMap, dagID, int(mb.Start),
					"map successors not in ascending order at %d: expansion picks the earliest marked successor", s)
			}
			prev = s
			target := d.Blocks[s].Start
			found := false
			for _, cs := range blk.Succs {
				if g.Blocks[cs].Start == target {
					found = true
					break
				}
			}
			if !found {
				ctx.errorf(PassMap, dagID, int(mb.Start),
					"dangling DAG edge %d->%d: no CFG edge from block %d to block at %d", bi, s, mb.Start, target)
			}
		}
		for _, cs := range blk.Succs {
			ss := g.Blocks[cs].Start
			j, in := startIdx[ss]
			if !in || ss == headerStart {
				continue // leaves the DAG, or loops back to the header
			}
			present := false
			for _, s := range mb.Succs {
				if s == j {
					present = true
					break
				}
			}
			if !present {
				ctx.errorf(PassMap, dagID, int(mb.Start),
					"CFG edge from block %d to in-DAG block at %d missing from the mapfile: that path could never be expanded", mb.Start, ss)
			}
		}
	}
}
