package fleet

import (
	"sort"
	"strconv"
	"strings"

	"traceback/internal/isa"
)

// rpcEndpoints builds the static distributed call graph and checks it
// for unserved endpoints. The VM's dispatch (RPCServerFault when no
// process has registered the endpoint) makes a constant call endpoint
// with no recv in the set a guaranteed runtime fault, so that is an
// error; endpoints the analysis cannot resolve only warn. A recv
// whose own endpoint is unresolvable is treated as a wildcard server:
// it downgrades every unserved-endpoint finding to a warning, since
// it may serve any id at runtime.
func (ctx *fleetCtx) rpcEndpoints() {
	served := map[int64][]string{}
	wildcard := false
	totalCalls, totalRecvs := 0, 0
	for _, m := range ctx.mods {
		totalRecvs += len(m.recvs)
		for _, s := range m.recvs {
			if s.known {
				if !contains(served[s.ep], m.name) {
					served[s.ep] = append(served[s.ep], m.name)
				}
				continue
			}
			wildcard = true
			ctx.warnf(PassRPC, s.mi, "", int(s.instr),
				"cannot resolve this rpc-recv's endpoint id statically; treating it as serving any endpoint (unserved-endpoint findings are downgraded to warnings)")
		}
	}

	for _, m := range ctx.mods {
		totalCalls += len(m.calls)
		for _, s := range m.calls {
			if !s.known {
				ctx.warnf(PassRPC, s.mi, "", int(s.instr),
					"cannot resolve this rpc-call's endpoint id statically; the fleet-level service check is skipped for this site")
				continue
			}
			if len(served[s.ep]) > 0 {
				continue
			}
			if wildcard {
				ctx.warnf(PassRPC, s.mi, "", int(s.instr),
					"rpc-call endpoint %d matches no statically-resolved rpc-recv in the fleet; only an unresolved recv could serve it", s.ep)
				continue
			}
			ctx.errorf(PassRPC, s.mi, "", int(s.instr),
				"rpc-call endpoint %d is served by no module in the fleet: the call raises %s at runtime (sys %s)",
				s.ep, "RPCServerFault", isa.SysName(isa.SysRPCCall))
		}
	}

	if totalCalls+totalRecvs > 0 {
		eps := make([]int64, 0, len(served))
		for e := range served {
			eps = append(eps, e)
		}
		sort.Slice(eps, func(i, j int) bool { return eps[i] < eps[j] })
		var parts []string
		for _, e := range eps {
			parts = append(parts, serveDesc(e, served[e]))
		}
		desc := "none"
		if len(parts) > 0 {
			desc = strings.Join(parts, ", ")
		}
		ctx.infof(PassRPC, "static RPC graph: %d call site(s), %d recv site(s); served endpoints: %s",
			totalCalls, totalRecvs, desc)
	}
}

func serveDesc(ep int64, by []string) string {
	return "endpoint " + strconv.FormatInt(ep, 10) + " by " + strings.Join(by, "+")
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
