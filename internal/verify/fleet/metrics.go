package fleet

import "traceback/internal/telemetry"

// Metrics is the fleet-verification counter set, registered under the
// verify_fleet_ prefix so the service and CLIs report the same names.
type Metrics struct {
	Runs       *telemetry.Counter
	Clean      *telemetry.Counter
	Failed     *telemetry.Counter
	DiagErrors *telemetry.Counter
	DiagWarns  *telemetry.Counter
}

// NewMetrics registers (or re-binds) the fleet counters on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Runs:       reg.Counter("verify_fleet_runs_total", "cross-module verification runs over module sets"),
		Clean:      reg.Counter("verify_fleet_clean_total", "fleet runs with zero error-level diagnostics"),
		Failed:     reg.Counter("verify_fleet_failed_total", "fleet runs with at least one error-level diagnostic"),
		DiagErrors: reg.Counter("verify_fleet_diags_error_total", "error-level fleet diagnostics emitted"),
		DiagWarns:  reg.Counter("verify_fleet_diags_warn_total", "warning-level fleet diagnostics emitted"),
	}
}

// Observe records one fleet Verify result.
func (mt *Metrics) Observe(res *Result) {
	mt.Runs.Inc()
	if res.Ok() {
		mt.Clean.Inc()
	} else {
		mt.Failed.Inc()
	}
	mt.DiagErrors.Add(uint64(res.NumError))
	mt.DiagWarns.Add(uint64(res.NumWarn))
}
