package fleet_test

import (
	"bytes"
	"testing"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/module"
	"traceback/internal/verify"
	"traceback/internal/verify/fleet"
)

const clientSrc = `int main() {
	int req = alloc(64);
	int resp = alloc(64);
	poke(req, 1);
	rpc_call(77, req, 32, resp);
	exit(0);
}`

const serverSrc = `int main() {
	int buf = alloc(64);
	int out = alloc(64);
	int i = 0;
	while (i < 3) {
		rpc_recv(77, buf, 64);
		int kind = peek(buf);
		if (kind == 1) {
			rpc_reply(77, 0, out, 8);
		} else {
			rpc_reply(77, 1, out, 0);
		}
		i = i + 1;
	}
	exit(0);
}`

// build compiles and instruments one MiniC source into a fleet input.
func build(t *testing.T, name, src string) fleet.Input {
	t.Helper()
	mod, err := minic.Compile(name, name+".mc", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fleet.Input{Module: res.Module}
}

// minicBytes compiles, instruments, and serializes one MiniC source —
// the raw .tbm form the fuzz target and genbroken work with.
func minicBytes(name, src string) ([]byte, error) {
	mod, err := minic.Compile(name, name+".mc", src)
	if err != nil {
		return nil, err
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := res.Module.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func textOf(t *testing.T, res *fleet.Result) string {
	t.Helper()
	var b bytes.Buffer
	if err := res.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// countSev tallies error/warning diagnostics attributed to pass.
func countSev(res *fleet.Result, pass string, sev verify.Severity) int {
	n := 0
	for _, d := range res.Diags {
		if d.Pass == pass && d.Severity == sev {
			n++
		}
	}
	return n
}

func TestFleetCleanPair(t *testing.T) {
	res := fleet.Verify([]fleet.Input{
		build(t, "client", clientSrc),
		build(t, "server", serverSrc),
	}, fleet.Options{})
	if !res.Ok() || res.NumWarn != 0 {
		t.Fatalf("expected clean fleet, got %d errors, %d warnings:\n%s",
			res.NumError, res.NumWarn, textOf(t, res))
	}
	// The RPC graph summary must attribute endpoint 77 to the server.
	txt := textOf(t, res)
	if !bytes.Contains([]byte(txt), []byte("endpoint 77 by server")) {
		t.Errorf("missing served-endpoint summary in:\n%s", txt)
	}
}

func TestFleetUnservedEndpoint(t *testing.T) {
	lost := `int main() {
		int req = alloc(64);
		int resp = alloc(64);
		rpc_call(78, req, 8, resp);
		exit(0);
	}`
	res := fleet.Verify([]fleet.Input{
		build(t, "client", lost),
		build(t, "server", serverSrc),
	}, fleet.Options{})
	if !res.HasError(fleet.PassRPC) {
		t.Fatalf("expected %s error for endpoint 78, got:\n%s", fleet.PassRPC, textOf(t, res))
	}
	for _, p := range []string{fleet.PassSync, fleet.PassAmbiguity} {
		if res.HasError(p) {
			t.Errorf("unexpected %s error:\n%s", p, textOf(t, res))
		}
	}
	// The error must be attributed to the calling module.
	found := false
	for _, d := range res.Diags {
		if d.Pass == fleet.PassRPC && d.Severity == verify.SevError {
			found = true
			if d.Module != "client" {
				t.Errorf("unserved-endpoint error attributed to %q, want client", d.Module)
			}
		}
	}
	if !found {
		t.Fatal("no rpc-endpoints error diagnostic")
	}
}

func TestFleetMissingReplyPath(t *testing.T) {
	leaky := `int main() {
		int buf = alloc(64);
		int out = alloc(64);
		rpc_recv(77, buf, 64);
		int kind = peek(buf);
		if (kind == 0) {
			rpc_reply(77, 0, out, 8);
		}
		exit(0);
	}`
	res := fleet.Verify([]fleet.Input{
		build(t, "client", clientSrc),
		build(t, "server", leaky),
	}, fleet.Options{})
	if !res.HasError(fleet.PassSync) {
		t.Fatalf("expected %s error for the reply-skipping path, got:\n%s",
			fleet.PassSync, textOf(t, res))
	}
	if res.HasError(fleet.PassRPC) || res.HasError(fleet.PassAmbiguity) {
		t.Errorf("unexpected non-sync errors:\n%s", textOf(t, res))
	}
}

func TestFleetRecvLoopWithoutReplyIsError(t *testing.T) {
	// The loop back-edge reaches the next recv with the previous
	// request still pending — as much a protocol break as returning.
	silent := `int main() {
		int buf = alloc(64);
		int i = 0;
		while (i < 3) {
			rpc_recv(77, buf, 64);
			i = i + 1;
		}
		exit(0);
	}`
	res := fleet.Verify([]fleet.Input{
		build(t, "client", clientSrc),
		build(t, "server", silent),
	}, fleet.Options{})
	if !res.HasError(fleet.PassSync) {
		t.Fatalf("expected %s error for reply-less serve loop, got:\n%s",
			fleet.PassSync, textOf(t, res))
	}
}

func TestFleetCrossModuleReplier(t *testing.T) {
	// The reply happens inside an imported helper in another module;
	// the repliers fixpoint must resolve the CALX edge.
	srv := `extern "replylib" int do_reply(int out);
	int main() {
		int buf = alloc(64);
		int out = alloc(64);
		rpc_recv(77, buf, 64);
		do_reply(out);
		exit(0);
	}`
	lib := `int do_reply(int out) {
		rpc_reply(77, 0, out, 8);
		return 0;
	}`
	res := fleet.Verify([]fleet.Input{
		build(t, "client", clientSrc),
		build(t, "server", srv),
		build(t, "replylib", lib),
	}, fleet.Options{})
	if res.HasError(fleet.PassSync) {
		t.Fatalf("cross-module reply helper not recognized:\n%s", textOf(t, res))
	}
	if !res.Ok() {
		t.Fatalf("expected clean fleet, got:\n%s", textOf(t, res))
	}
}

func TestFleetAmbiguousTrailerWord(t *testing.T) {
	in := build(t, "server", serverSrc)
	m := in.Module
	if len(m.DAGFixups) == 0 {
		t.Fatal("instrumented module has no DAG fixups")
	}
	// A word with tag 0x7F and bit 31 clear parses as an
	// extended-record trailer during backward mining.
	m.Code[m.DAGFixups[0]].Imm = int32(0x7F080002)
	res := fleet.Verify([]fleet.Input{
		build(t, "client", clientSrc),
		{Module: m},
	}, fleet.Options{})
	if !res.HasError(fleet.PassAmbiguity) {
		t.Fatalf("expected %s error for trailer-shaped probe word, got:\n%s",
			fleet.PassAmbiguity, textOf(t, res))
	}
	if res.HasError(fleet.PassRPC) || res.HasError(fleet.PassSync) {
		t.Errorf("unexpected non-ambiguity errors:\n%s", textOf(t, res))
	}
}

func TestFleetInvalidWord(t *testing.T) {
	in := build(t, "server", serverSrc)
	m := in.Module
	m.Code[m.DAGFixups[0]].Imm = 0
	res := fleet.Verify([]fleet.Input{{Module: m}}, fleet.Options{})
	if !res.HasError(fleet.PassAmbiguity) {
		t.Fatalf("expected %s error for Invalid probe word, got:\n%s",
			fleet.PassAmbiguity, textOf(t, res))
	}
}

func TestFleetWildcardRecvDowngrade(t *testing.T) {
	wild := `int ep;
	int main() {
		int buf = alloc(64);
		ep = peek(buf);
		rpc_recv(ep, buf, 64);
		rpc_reply(ep, 0, buf, 8);
		exit(0);
	}`
	lost := `int main() {
		int req = alloc(64);
		int resp = alloc(64);
		rpc_call(123, req, 8, resp);
		exit(0);
	}`
	res := fleet.Verify([]fleet.Input{
		build(t, "client", lost),
		build(t, "server", wild),
	}, fleet.Options{})
	if res.NumError != 0 {
		t.Fatalf("wildcard recv must downgrade unserved endpoints to warnings, got:\n%s",
			textOf(t, res))
	}
	if got := countSev(res, fleet.PassRPC, verify.SevWarn); got < 2 {
		t.Fatalf("expected wildcard-recv and unserved-call warnings, got %d:\n%s",
			got, textOf(t, res))
	}
}

func TestFleetPassSelection(t *testing.T) {
	lost := `int main() {
		int req = alloc(64);
		int resp = alloc(64);
		rpc_call(78, req, 8, resp);
		exit(0);
	}`
	inputs := []fleet.Input{build(t, "client", lost)}
	res := fleet.Verify(inputs, fleet.Options{Passes: []string{fleet.PassAmbiguity}})
	if len(res.Diags) != 0 {
		t.Fatalf("disabled passes still reported:\n%s", textOf(t, res))
	}
	res = fleet.Verify(inputs, fleet.Options{Passes: []string{fleet.PassRPC}})
	if !res.HasError(fleet.PassRPC) {
		t.Fatalf("selected pass did not run:\n%s", textOf(t, res))
	}
}

func TestFleetStructureFailures(t *testing.T) {
	bad := &module.Module{Name: "bad",
		Funcs: []module.Func{{Name: "main", Entry: 5, End: 2}}}
	res := fleet.Verify([]fleet.Input{
		{Module: nil, Path: "missing.tbm"},
		{Module: bad},
		build(t, "server", serverSrc),
	}, fleet.Options{})
	n := countSev(res, verify.PassStructure, verify.SevError)
	if n != 2 {
		t.Fatalf("expected 2 structure errors (nil + invalid), got %d:\n%s", n, textOf(t, res))
	}
	// The valid module must still be analyzed despite the bad peers.
	if len(res.Modules) != 3 {
		t.Fatalf("Modules = %v", res.Modules)
	}
}

func TestFleetDeterministic(t *testing.T) {
	inputs := []fleet.Input{
		build(t, "client", clientSrc),
		build(t, "server", serverSrc),
	}
	a := fleet.Verify(inputs, fleet.Options{})
	b := fleet.Verify(inputs, fleet.Options{})
	if textOf(t, a) != textOf(t, b) {
		t.Fatal("fleet verification output is not deterministic")
	}
}

func TestFleetAllPassesSorted(t *testing.T) {
	names := fleet.AllPasses()
	if len(names) != 3 {
		t.Fatalf("AllPasses = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("AllPasses not sorted: %v", names)
		}
	}
}
