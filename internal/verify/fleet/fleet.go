// Package fleet statically verifies cross-module invariants over a
// *set* of modules — the whole-fleet complement to internal/verify's
// per-module pass suite. A fleet can pass every per-module check and
// still be undiagnosable: module A calls an RPC endpoint no module
// serves (an RPCServerFault mystery at runtime), a serve loop takes a
// path that skips the reply half of the four-SYNC record sequence the
// causal stitcher needs (paper §5.1), or a module's probe words make a
// wrapped-buffer suffix minable two ways. The passes here prove those
// absent at instrument/load time, over the distributed call graph the
// paper reconstructs dynamically.
//
// Passes:
//
//   - rpc-endpoints: constant-propagate SysRPCCall/SysRPCRecv endpoint
//     ids (through MiniC's stack-marshaled syscall arguments) and
//     require every resolvable call endpoint to be served by some
//     module's recv in the set. Unresolvable endpoints warn; a
//     resolvable endpoint nobody serves is an error, because the VM
//     raises RPCServerFault for it.
//   - sync-protocol: path-sensitive per-recv check that every path
//     from a successful rpc-recv reaches an rpc-reply (directly or via
//     a call to a function proven to always reply, resolved
//     transitively and across modules) before the function returns,
//     the process exits, or another recv overwrites the pending
//     request. Also warns, via the dominator tree, about replies no
//     recv dominates.
//   - decode-ambiguity: every word a module's probes can emit (heavy
//     STI4 immediates, optionally OR-ed with any union of its ORM4
//     masks) must backward-mine as exactly one one-word DAG record —
//     the static proof of the trailer-kind 0x00/0x7F ambiguity class
//     that the miner rejects dynamically.
//
// The engine under the passes lives in internal/cfg: dominator trees,
// a generic forward dataflow solver, and constant propagation with an
// abstract operand stack. Soundness limits (what "unresolvable" hides)
// are discussed in DESIGN.md §13.
package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"traceback/internal/cfg"
	"traceback/internal/core"
	"traceback/internal/isa"
	"traceback/internal/module"
	"traceback/internal/verify"
)

// Pass names, usable in Options.Passes.
const (
	PassAmbiguity = "decode-ambiguity"
	PassRPC       = "rpc-endpoints"
	PassSync      = "sync-protocol"
)

// AllPasses lists every fleet pass name in sorted order.
func AllPasses() []string {
	names := []string{PassAmbiguity, PassRPC, PassSync}
	sort.Strings(names)
	return names
}

// Input is one module of the fleet under verification. Path, when
// set, is the display name used for diagnostic attribution (e.g. the
// file the module was read from); it defaults to the module name.
type Input struct {
	Module *module.Module
	Path   string
}

func (in Input) display() string {
	if in.Path != "" {
		return in.Path
	}
	if in.Module != nil {
		return in.Module.Name
	}
	return "<nil>"
}

// Options tune a fleet Verify run.
type Options struct {
	// Passes selects which fleet passes run; nil means all.
	Passes []string
}

func (o Options) enabled(pass string) bool {
	if len(o.Passes) == 0 {
		return true
	}
	for _, p := range o.Passes {
		if p == pass {
			return true
		}
	}
	return false
}

// Result is the outcome of one fleet Verify run. Diagnostics carry
// their module in Diagnostic.Module.
type Result struct {
	Modules  []string            `json:"modules"`
	Diags    []verify.Diagnostic `json:"diags"`
	NumError int                 `json:"errors"`
	NumWarn  int                 `json:"warnings"`
	NumInfo  int                 `json:"infos"`
}

func (r *Result) add(d verify.Diagnostic) {
	r.Diags = append(r.Diags, d)
	switch d.Severity {
	case verify.SevError:
		r.NumError++
	case verify.SevWarn:
		r.NumWarn++
	default:
		r.NumInfo++
	}
}

// Ok reports whether the run produced no error-level diagnostics.
func (r *Result) Ok() bool { return r.NumError == 0 }

// HasError reports whether the named pass produced an error.
func (r *Result) HasError(pass string) bool {
	for _, d := range r.Diags {
		if d.Pass == pass && d.Severity == verify.SevError {
			return true
		}
	}
	return false
}

// WriteText prints one diagnostic per line.
func (r *Result) WriteText(w io.Writer) error {
	for _, d := range r.Diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON prints the whole result as one JSON object.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// rpcSite is one RPC syscall site: a SYS instruction whose endpoint
// argument has (maybe) been resolved by constant propagation.
type rpcSite struct {
	mi    int // module index into ctx.mods
	fi    int // function index into mods[mi].funcs
	instr uint32
	block int
	sys   int
	ep    int64
	known bool
}

// fnInfo is the per-function analysis state.
type fnInfo struct {
	fn  module.Func
	g   *cfg.Graph
	cp  *cfg.ConstProp
	dom *cfg.DomTree
}

// modInfo is the per-module analysis state.
type modInfo struct {
	name       string
	m          *module.Module
	funcs      []*fnInfo
	helper     module.Func
	hasHelper  bool
	calls      []rpcSite
	recvs      []rpcSite
	replies    []rpcSite
	analyzable bool
}

type fnKey struct{ mi, fi int }

type fleetCtx struct {
	mods     []*modInfo
	opts     Options
	res      *Result
	repliers map[fnKey]bool
}

func (ctx *fleetCtx) report(d verify.Diagnostic) { ctx.res.add(d) }

func (ctx *fleetCtx) diagf(pass string, sev verify.Severity, mi int, fn string, instr int, format string, a ...any) {
	d := verify.Diagnostic{Pass: pass, Severity: sev, DAG: -1, Instr: instr,
		Msg: fmt.Sprintf(format, a...)}
	if mi >= 0 {
		m := ctx.mods[mi]
		d.Module = m.name
		if instr >= 0 && m.m != nil {
			if file, line, ok := m.m.LineFor(uint32(instr)); ok {
				d.File, d.Line = file, line
			}
			if fn == "" {
				if f, ok := m.m.FindFunc(uint32(instr)); ok {
					fn = f.Name
				}
			}
		}
	}
	d.Func = fn
	ctx.report(d)
}

func (ctx *fleetCtx) errorf(pass string, mi int, fn string, instr int, format string, a ...any) {
	ctx.diagf(pass, verify.SevError, mi, fn, instr, format, a...)
}

func (ctx *fleetCtx) warnf(pass string, mi int, fn string, instr int, format string, a ...any) {
	ctx.diagf(pass, verify.SevWarn, mi, fn, instr, format, a...)
}

func (ctx *fleetCtx) infof(pass string, format string, a ...any) {
	ctx.diagf(pass, verify.SevInfo, -1, "", -1, format, a...)
}

// Verify runs the cross-module pass suite over the fleet. It never
// panics on structurally valid inputs; malformed modules produce
// error diagnostics (attributed to the structure pass) and are
// excluded from the cross-module analysis.
func Verify(inputs []Input, opts Options) *Result {
	res := &Result{}
	ctx := &fleetCtx{opts: opts, res: res}
	for _, in := range inputs {
		res.Modules = append(res.Modules, in.display())
		ctx.mods = append(ctx.mods, ctx.prepare(in, len(ctx.mods)))
	}
	if opts.enabled(PassAmbiguity) {
		ctx.decodeAmbiguity()
	}
	if opts.enabled(PassRPC) {
		ctx.rpcEndpoints()
	}
	if opts.enabled(PassSync) {
		ctx.syncProtocol()
	}
	return res
}

// prepare builds one module's analysis state: CFGs, constant
// propagation (probe-helper aware), dominator trees, and the RPC
// syscall site lists. Sites in code unreachable from their function's
// entry are dropped — an unreachable recv serves nothing.
func (ctx *fleetCtx) prepare(in Input, mi int) *modInfo {
	info := &modInfo{name: in.display(), m: in.Module}
	if in.Module == nil {
		ctx.errorf(verify.PassStructure, -1, "", -1, "fleet input %s: no module", info.name)
		return info
	}
	m := in.Module
	if err := m.Validate(); err != nil {
		d := verify.Diagnostic{Pass: verify.PassStructure, Severity: verify.SevError,
			Module: info.name, DAG: -1, Instr: -1,
			Msg: fmt.Sprintf("module invalid, excluded from fleet analysis: %v", err)}
		ctx.report(d)
		return info
	}
	info.analyzable = true
	info.helper, info.hasHelper = m.FuncByName(core.HelperName)
	helperEntries := map[uint32]bool{}
	if info.hasHelper {
		helperEntries[info.helper.Entry] = true
	}

	for _, fn := range m.Funcs {
		if info.hasHelper && fn.Name == core.HelperName && fn.Entry == info.helper.Entry {
			continue
		}
		g, err := cfg.Build(m.Code, fn)
		if err != nil {
			d := verify.Diagnostic{Pass: verify.PassStructure, Severity: verify.SevWarn,
				Module: info.name, Func: fn.Name, DAG: -1, Instr: -1,
				Msg: fmt.Sprintf("CFG construction failed, function excluded from fleet analysis: %v", err)}
			ctx.report(d)
			continue
		}
		fi := &fnInfo{fn: fn, g: g,
			cp:  cfg.NewConstProp(g, helperEntries),
			dom: g.Dominators()}
		fidx := len(info.funcs)
		info.funcs = append(info.funcs, fi)

		for idx := fn.Entry; idx < fn.End; idx++ {
			inr := m.Code[idx]
			if inr.Op != isa.SYS {
				continue
			}
			num := int(inr.Imm)
			if num != isa.SysRPCCall && num != isa.SysRPCRecv && num != isa.SysRPCReply {
				continue
			}
			b, ok := g.BlockContaining(idx)
			if !ok || !fi.dom.Reachable(b.ID) {
				continue
			}
			s := rpcSite{mi: mi, fi: fidx, instr: idx, block: b.ID, sys: num}
			if reg, ok := isa.SysEndpointArg(num); ok {
				s.ep, s.known = fi.cp.RegBefore(idx, reg)
			}
			switch num {
			case isa.SysRPCCall:
				info.calls = append(info.calls, s)
			case isa.SysRPCRecv:
				info.recvs = append(info.recvs, s)
			case isa.SysRPCReply:
				info.replies = append(info.replies, s)
			}
		}
	}
	return info
}

// funcAt returns the fnInfo of module mi whose entry is exactly
// entry, or nil.
func (ctx *fleetCtx) funcAt(mi int, entry uint32) (int, *fnInfo) {
	for fi, f := range ctx.mods[mi].funcs {
		if f.fn.Entry == entry {
			return fi, f
		}
	}
	return -1, nil
}

// resolveCall resolves the call terminating block b of function f in
// module mi to a fleet function, following CALX imports across
// modules. Indirect calls and unresolvable imports return nil.
func (ctx *fleetCtx) resolveCall(mi int, b *cfg.Block) (fnKey, *fnInfo, bool) {
	m := ctx.mods[mi]
	switch b.CallKind {
	case module.CallDirect:
		if fi, f := ctx.funcAt(mi, uint32(b.CallImm)); f != nil {
			return fnKey{mi, fi}, f, true
		}
	case module.CallImport:
		if m.m == nil || int(b.CallImm) >= len(m.m.Imports) {
			return fnKey{}, nil, false
		}
		im := m.m.Imports[b.CallImm]
		for omi, om := range ctx.mods {
			if omi == mi || !om.analyzable {
				continue
			}
			if im.Module != "" && om.m.Name != im.Module {
				continue
			}
			for ofi, of := range om.funcs {
				if of.fn.Exported && of.fn.Name == im.Name {
					return fnKey{omi, ofi}, of, true
				}
			}
		}
	}
	return fnKey{}, nil, false
}
