package fleet

import (
	"strconv"

	"traceback/internal/cfg"
	"traceback/internal/isa"
)

// syncProtocol checks the callee half of the four-SYNC record
// sequence (paper §5.1). The VM emits SyncCallSend/SyncReplyRecv in
// the caller's buffer at the SysRPCCall itself, and SyncCallRecv at
// the SysRPCRecv — those cannot be skipped. SyncReplySend, though, is
// emitted only when the server code actually executes SysRPCReply, so
// the statically checkable property is: every path from an rpc-recv
// reaches an rpc-reply before the function returns, the process
// exits, or another rpc-recv overwrites the thread's pending request.
// A path that escapes leaves the caller's exchange with three SYNCs —
// reconstruction cannot stitch the cross-runtime reply edge and the
// caller side of the snap dangles.
//
// Calls to functions proven to always reply (reply on every path
// before any recv of their own — their reply answers the caller's
// pending request) count as replies; the proof is a fixpoint over the
// whole fleet, following CALX imports across modules.
//
// The dominator tree adds a precision warning in the other direction:
// in a function that receives, a reply no recv dominates can execute
// with no pending request on some path.
func (ctx *fleetCtx) syncProtocol() {
	ctx.solveRepliers()

	for _, m := range ctx.mods {
		for _, s := range m.recvs {
			f := m.funcs[s.fi]
			v, _ := ctx.walkFrom(s.mi, f, s.block, s.instr+1)
			if v != nil {
				ctx.errorf(PassSync, s.mi, "", int(s.instr),
					"a path from this rpc-recv %s without an intervening rpc-reply: the SyncReplySend record is never emitted and the caller's RPC exchange cannot be stitched", v.desc)
			}
		}
		for _, s := range m.replies {
			f := m.funcs[s.fi]
			if !ctx.fnHasRecv(m, s.fi) {
				// Reply-only helpers are replied *through* (see the
				// repliers fixpoint); the binding recv lives in a caller.
				continue
			}
			if !ctx.replyDominated(m, f, s) {
				ctx.warnf(PassSync, s.mi, "", int(s.instr),
					"rpc-reply is not dominated by any rpc-recv: on some path it executes with no pending request to answer")
			}
		}
	}
}

func (ctx *fleetCtx) fnHasRecv(m *modInfo, fi int) bool {
	for _, r := range m.recvs {
		if r.fi == fi {
			return true
		}
	}
	return false
}

// replyDominated reports whether some recv in the same function
// dominates the reply site s (same-block sites compare by index).
func (ctx *fleetCtx) replyDominated(m *modInfo, f *fnInfo, s rpcSite) bool {
	for _, r := range m.recvs {
		if r.fi != s.fi {
			continue
		}
		if r.block == s.block {
			if r.instr < s.instr {
				return true
			}
			continue
		}
		if f.dom.Dominates(r.block, s.block) {
			return true
		}
	}
	return false
}

// solveRepliers computes the always-replies set: functions where
// every path from entry reaches a reply before any recv or exit, and
// at least one reply is reachable. Iterates to fixpoint so chains of
// helpers (and cross-module CALX wrappers) resolve.
func (ctx *fleetCtx) solveRepliers() {
	ctx.repliers = map[fnKey]bool{}
	for changed := true; changed; {
		changed = false
		for mi, m := range ctx.mods {
			for fi, f := range m.funcs {
				k := fnKey{mi, fi}
				if ctx.repliers[k] {
					continue
				}
				v, sawReply := ctx.walkFrom(mi, f, f.g.Entry, f.fn.Entry)
				if v == nil && sawReply {
					ctx.repliers[k] = true
					changed = true
				}
			}
		}
	}
}

// violation describes how a path escaped the recv→reply obligation.
type violation struct{ desc string }

// walkFrom explores every path of f (in module mi) from instruction
// startIdx inside block startBlock, looking for an escape: a path
// that reaches another rpc-recv, a return, a process exit, or a halt
// before an rpc-reply. It returns the first violation in BFS order
// (deterministic) and whether any path reached a reply.
func (ctx *fleetCtx) walkFrom(mi int, f *fnInfo, startBlock int, startIdx uint32) (*violation, bool) {
	sawReply := false
	visited := make([]bool, len(f.g.Blocks))
	type item struct {
		block int
		from  uint32
	}
	queue := []item{{startBlock, startIdx}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		b := f.g.Blocks[it.block]
		outcome, at := ctx.blockOutcome(mi, f, b, it.from)
		switch outcome {
		case outcomeReply:
			sawReply = true
			continue
		case outcomeRecv:
			return &violation{desc: "reaches another rpc-recv (instr " + strconv.FormatUint(uint64(at), 10) + ")"}, sawReply
		}
		if len(b.Succs) == 0 {
			return &violation{desc: escapeDesc(f, b)}, sawReply
		}
		for _, s := range b.Succs {
			if !visited[s] {
				visited[s] = true
				queue = append(queue, item{s, f.g.Blocks[s].Start})
			}
		}
	}
	return nil, sawReply
}

func escapeDesc(f *fnInfo, b *cfg.Block) string {
	last := f.g.Code[b.End-1]
	switch {
	case last.Op == isa.RET:
		return "returns from the function"
	case last.NoReturn():
		return "exits the process"
	case last.Op == isa.HLT:
		return "halts"
	}
	return "leaves the function"
}

type outcome uint8

const (
	outcomeNeutral outcome = iota
	outcomeReply
	outcomeRecv
)

// blockOutcome scans block b from instruction index from for the
// first protocol event: an rpc-reply (or a block-terminating call to
// a proven always-replier, possibly in another module) closes the
// obligation; an rpc-recv re-opens it. Anything else is neutral and
// the walk continues through the successors.
func (ctx *fleetCtx) blockOutcome(mi int, f *fnInfo, b *cfg.Block, from uint32) (outcome, uint32) {
	if from < b.Start {
		from = b.Start
	}
	for idx := from; idx < b.End; idx++ {
		in := f.g.Code[idx]
		if in.Op != isa.SYS {
			continue
		}
		switch int(in.Imm) {
		case isa.SysRPCReply:
			return outcomeReply, idx
		case isa.SysRPCRecv:
			return outcomeRecv, idx
		}
	}
	if b.EndsInCall && from < b.End {
		if k, _, ok := ctx.resolveCall(mi, b); ok && ctx.repliers[k] {
			return outcomeReply, b.End - 1
		}
	}
	return outcomeNeutral, 0
}
