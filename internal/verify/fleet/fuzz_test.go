package fleet_test

import (
	"bytes"
	"testing"

	"traceback/internal/module"
	"traceback/internal/verify/fleet"
)

// FuzzFleetVerify drives the cross-module verifier with an arbitrary
// serialized module alongside a fixed known-good client. The contract:
// Verify never panics and never loops on loader-supplied modules —
// malformed inputs must come back as diagnostics, because tbcheck
// -fleet and the service load path feed .tbm files straight into it —
// and its diagnostics are deterministic for identical inputs. Seed
// corpus: the clean pair plus every fleet corpus mutation (committed
// under testdata/fuzz by tools/genbroken).
func FuzzFleetVerify(f *testing.F) {
	for _, src := range []struct{ name, src string }{
		{"client", clientSrc},
		{"server", serverSrc},
	} {
		mod, err := minicBytes(src.name, src.src)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(mod)
	}
	f.Add([]byte("TBMOD1\x00\x00"))
	f.Add([]byte{})

	var fixed fleet.Input
	{
		raw, err := minicBytes("client", clientSrc)
		if err != nil {
			f.Fatal(err)
		}
		m, err := module.Read(bytes.NewReader(raw))
		if err != nil {
			f.Fatal(err)
		}
		fixed = fleet.Input{Module: m}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := module.Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		inputs := []fleet.Input{fixed, {Module: m, Path: "fuzzed"}}
		res := fleet.Verify(inputs, fleet.Options{})
		if res == nil {
			t.Fatal("Verify returned nil result")
		}
		again := fleet.Verify(inputs, fleet.Options{})
		var a, b bytes.Buffer
		if err := res.WriteText(&a); err != nil {
			t.Fatal(err)
		}
		if err := again.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("nondeterministic diagnostics:\n--- first\n%s--- second\n%s", a.String(), b.String())
		}
	})
}
