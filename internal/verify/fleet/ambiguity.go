package fleet

import (
	"traceback/internal/isa"
	"traceback/internal/trace"
)

// decodeAmbiguity proves, per module, that every word its probes can
// place in a trace buffer backward-mines as exactly one one-word DAG
// record. The miner walks a wrapped-buffer suffix newest-to-oldest
// and classifies each word by its top bits, so one bad immediate
// poisons decoding of everything older than it:
//
//   - 0x00000000 reads as Invalid: mining stops and silently drops
//     every older record (the dynamic trailer-kind-0x00 bug PR 1
//     rejected in the miner — here proven never emitted).
//   - top byte 0x7F with bit 31 clear reads as an extended-record
//     trailer: the suffix has two valid minings, one treating the
//     probe word as a DAG record and one swallowing the preceding
//     words as a phantom extended record (the 0x7F class).
//   - any other word with bit 31 clear is neither a DAG record nor a
//     trailer: mining stops (torn-record rule).
//   - a DAG word whose lightweight bits can overflow the path field
//     changes its own DAG ID mid-flight, and one whose ID lands in
//     the reserved top of the space collides with BadDAGID/Sentinel.
//
// The check is the closed set {every STI4 immediate} OR-ed with the
// union of the module's ORM4 masks — every word the instrumented code
// can materialize, including across buffer wrap points.
func (ctx *fleetCtx) decodeAmbiguity() {
	for mi, m := range ctx.mods {
		if !m.analyzable {
			continue
		}
		ctx.moduleAmbiguity(mi, m)
	}
}

func (ctx *fleetCtx) moduleAmbiguity(mi int, m *modInfo) {
	// Union of every lightweight mask the module can OR into a record.
	// Any subset of these bits can be present when the buffer wraps,
	// so every heavy word is checked with and without them.
	var masks trace.Word
	for idx, in := range m.m.Code {
		if m.hasHelper && uint32(idx) >= m.helper.Entry && uint32(idx) < m.helper.End {
			continue // the helper's own stores are runtime-managed control words
		}
		if in.Op == isa.ORM4 {
			masks |= trace.Word(in.Imm)
		}
	}

	for idx, in := range m.m.Code {
		if in.Op != isa.STI4 {
			continue
		}
		if m.hasHelper && uint32(idx) >= m.helper.Entry && uint32(idx) < m.helper.End {
			continue
		}
		ctx.checkWord(mi, uint32(idx), trace.Word(in.Imm), masks)
	}
}

func (ctx *fleetCtx) checkWord(mi int, idx uint32, w, masks trace.Word) {
	switch {
	case w == trace.Invalid:
		ctx.errorf(PassAmbiguity, mi, "", int(idx),
			"probe stores 0x00000000 (the Invalid word): backward mining stops at it and silently drops every older record in the buffer")
		return
	case w == trace.Sentinel:
		ctx.errorf(PassAmbiguity, mi, "", int(idx),
			"probe stores 0xFFFFFFFF (the Sentinel): mining mistakes it for the buffer frontier")
		return
	case !trace.IsDAG(w) && w>>24 == 0x7F:
		ctx.errorf(PassAmbiguity, mi, "", int(idx),
			"probe word %#08x parses as an extended-record trailer (tag 0x7F, kind %d, len %d): a wrapped-buffer suffix ending at it has two valid backward minings",
			uint32(w), w&0xFF, w>>16&0xFF)
		return
	case !trace.IsDAG(w):
		ctx.errorf(PassAmbiguity, mi, "", int(idx),
			"probe word %#08x is not a DAG record (bit 31 clear): mining cannot continue past it and every older record is dropped", uint32(w))
		return
	}

	gid := trace.DAGID(w)
	if gid >= trace.BadDAGID {
		ctx.errorf(PassAmbiguity, mi, "", int(idx),
			"probe word %#08x carries reserved DAG ID %d (>= BadDAGID %d): it is indistinguishable from the runtime's orphan/sentinel encodings",
			uint32(w), gid, trace.BadDAGID)
		return
	}
	wm := w | masks
	if wm == trace.Sentinel {
		ctx.errorf(PassAmbiguity, mi, "", int(idx),
			"probe word %#08x equals the Sentinel once all lightweight masks are OR-ed in", uint32(w))
		return
	}
	if trace.DAGID(wm) != gid {
		ctx.errorf(PassAmbiguity, mi, "", int(idx),
			"lightweight masks (union %#x) spill past the %d path bits and rewrite DAG ID %d as %d: records change identity as bits accrue",
			uint32(masks), trace.NumPathBits, gid, trace.DAGID(wm))
	}
}
