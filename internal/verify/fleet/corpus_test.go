package fleet_test

import (
	"bytes"
	"testing"

	"traceback/internal/verify/fleet"
	"traceback/internal/verify/seed"
)

// TestFleetCorpusRecall is the cross-module recall guarantee, asserted
// in both directions: the clean fleet verifies with zero errors, and
// every seeded cross-module defect is flagged by exactly the pass
// designed to catch it — no other fleet pass fires error-level, so a
// regression in precision shows up as loudly as one in recall.
func TestFleetCorpusRecall(t *testing.T) {
	cases, err := seed.FleetCases()
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < 4 {
		t.Fatalf("fleet corpus has %d cases, want at least 4", len(cases))
	}
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			var inputs []fleet.Input
			for _, fm := range c.Modules {
				inputs = append(inputs, fleet.Input{Module: fm.Module, Path: fm.Name})
			}
			res := fleet.Verify(inputs, fleet.Options{})
			var b bytes.Buffer
			res.WriteText(&b)
			if c.Pass == "" {
				if !res.Ok() {
					t.Fatalf("baseline fleet must verify clean, got %d errors:\n%s", res.NumError, b.String())
				}
				return
			}
			if !res.HasError(c.Pass) {
				t.Fatalf("seeded defect (%s) missed by pass %q; diagnostics:\n%s", c.Desc, c.Pass, b.String())
			}
			for _, other := range fleet.AllPasses() {
				if other != c.Pass && res.HasError(other) {
					t.Errorf("pass %q fired error-level on a %q-class defect:\n%s", other, c.Pass, b.String())
				}
			}
		})
	}
}
