package verify

import (
	"traceback/internal/module"
	"traceback/internal/trace"
)

// encoding is the decodability pass: the record words probes emit must
// decode unambiguously. Three layers of the contract:
//
//  1. ID-range hygiene — the module's [DAGBase, DAGBase+DAGCount)
//     window must avoid the reserved top of the 21-bit ID space.
//     DAGWord(0x1FFFFF, all-bits) equals the Sentinel and BadDAGID is
//     the snap writer's orphan marker, so a window that overruns
//     MaxDAGID makes some probe words collide with control words —
//     including at buffer wrap points, where backward mining leans on
//     the Sentinel to find the write frontier.
//  2. Word well-formedness — every heavyweight probe stores a fresh
//     DAG record (DAG flag set, path bits clear, in-window ID), the
//     window is covered exactly once, and every lightweight mask is a
//     single in-range bit matching the mapfile's assignment.
//  3. Path injectivity — within each DAG, every maximal block path
//     must round-trip through the recon expansion rule: OR together
//     the path's bits, expand that bitset, and require the original
//     path back. Two paths sharing a bitset, or a branch target with
//     no bit, fail here.
func (ctx *context) encoding() {
	ctx.idRange()
	ctx.probeWords()
	if ctx.mf != nil {
		ctx.pathInjectivity()
	} else {
		ctx.infof(PassEncoding, "no mapfile: path-injectivity check skipped")
	}
}

// idRange checks layer 1: the module's DAG ID window against the
// reserved IDs at the top of the 21-bit space.
func (ctx *context) idRange() {
	m := ctx.m
	if m.DAGCount == 0 {
		return
	}
	top := uint64(m.DAGBase) + uint64(m.DAGCount) - 1
	if top > uint64(trace.MaxDAGID) {
		ctx.errorf(PassEncoding, -1, -1,
			"DAG ID window [%d,%d] overruns MaxDAGID %d: the top IDs collide with BadDAGID/Sentinel encodings and become undecodable",
			m.DAGBase, top, trace.MaxDAGID)
	}
}

// probeWords checks layer 2: every parsed probe's stored word/mask.
func (ctx *context) probeWords() {
	m := ctx.m
	// seen maps module-relative DAG ID -> instr index of the STI4 that
	// claims it.
	seen := make(map[uint32]uint32)
	heavies := 0
	for _, fi := range ctx.funcs {
		for _, start := range sortedProbeStarts(fi) {
			p := fi.probes[start]
			switch p.kind {
			case probeHeavy:
				heavies++
				ctx.heavyWord(fi, p, seen)
			case probeLight:
				ctx.lightMask(p)
			}
		}
	}
	if uint32(heavies) != m.DAGCount {
		ctx.errorf(PassEncoding, -1, -1,
			"module declares %d DAGs but holds %d heavyweight probes: some DAG IDs can never appear in a trace", m.DAGCount, heavies)
	}
}

// heavyWord validates one heavyweight probe's STI4 immediate: a
// well-formed, fresh, in-window DAG record whose ID matches the
// mapfile block it sits in, claimed by no other probe.
func (ctx *context) heavyWord(fi *fnInfo, p *probeInfo, seen map[uint32]uint32) {
	m := ctx.m
	w := trace.Word(p.word)
	if w == trace.Sentinel {
		ctx.errorf(PassEncoding, -1, int(p.sti),
			"heavyweight probe stores the Sentinel word: backward mining would mistake it for the buffer frontier")
		return
	}
	if !trace.IsDAG(w) {
		ctx.errorf(PassEncoding, -1, int(p.sti),
			"heavyweight probe stores %#08x, which does not decode as a DAG record", p.word)
		return
	}
	if bits := trace.PathBits(w); bits != 0 {
		ctx.errorf(PassEncoding, -1, int(p.sti),
			"freshly-emitted DAG word carries preset path bits %#x: phantom blocks would appear on every traversal", uint32(bits))
	}
	gid := trace.DAGID(w)
	if gid < m.DAGBase || gid >= m.DAGBase+m.DAGCount {
		ctx.errorf(PassEncoding, -1, int(p.sti),
			"probe emits DAG ID %d outside the module window [%d,%d)", gid, m.DAGBase, m.DAGBase+m.DAGCount)
		return
	}
	local := gid - m.DAGBase
	if prev, dup := seen[local]; dup {
		ctx.errorf(PassEncoding, int(local), int(p.sti),
			"DAG ID %d already emitted by the probe at instr %d: their traversals are indistinguishable in a trace", local, prev)
	} else {
		seen[local] = p.sti
	}
	if ctx.mf == nil {
		return
	}
	if ref, ok := ctx.place[p.start]; ok && ref.idx == 0 {
		if want := ctx.mf.DAGs[ref.dag].ID; local != want {
			ctx.errorf(PassEncoding, int(want), int(p.sti),
				"header probe emits DAG ID %d but the mapfile names this DAG %d: records would be expanded with the wrong map", local, want)
		}
	}
}

// lightMask validates one lightweight probe's ORM4 immediate: a single
// bit within the record's path-bit capacity, agreeing with the
// mapfile's bit assignment for the block.
func (ctx *context) lightMask(p *probeInfo) {
	mask := p.mask
	switch {
	case mask == 0:
		ctx.errorf(PassEncoding, -1, int(p.start),
			"lightweight probe ORs an empty mask: the block leaves no mark in the record")
		return
	case mask&(mask-1) != 0:
		ctx.errorf(PassEncoding, -1, int(p.start),
			"lightweight probe mask %#x sets more than one bit: it would impersonate other blocks", mask)
		return
	case trace.Word(mask)&^trace.PathMask != 0:
		ctx.errorf(PassEncoding, -1, int(p.start),
			"lightweight probe mask %#x lies outside the %d-bit path field: the OR corrupts the record's DAG ID", mask, trace.NumPathBits)
		return
	}
	if ctx.mf == nil {
		return
	}
	if ref, ok := ctx.place[p.start]; ok {
		mb := &ctx.mf.DAGs[ref.dag].Blocks[ref.idx]
		if mb.Bit >= 0 && mask != 1<<uint(mb.Bit) {
			ctx.errorf(PassEncoding, int(ctx.mf.DAGs[ref.dag].ID), int(p.start),
				"probe sets path bit %#x but the mapfile assigns bit %d: reconstruction would mark the wrong block", mask, mb.Bit)
		}
	}
}

// pathInjectivity checks layer 3 per DAG: headers carry no bit, every
// successor of a branching block is marked, and each maximal path
// round-trips through the expansion rule.
func (ctx *context) pathInjectivity() {
	for di := range ctx.mf.DAGs {
		ctx.dagInjectivity(di)
	}
}

func (ctx *context) dagInjectivity(di int) {
	d := &ctx.mf.DAGs[di]
	dagID := int(d.ID)
	if d.Blocks[0].Bit >= 0 {
		ctx.errorf(PassEncoding, dagID, int(d.Blocks[0].Start),
			"DAG header assigned path bit %d: the header is implied by the record itself and must carry no bit", d.Blocks[0].Bit)
	}

	// Rule: whenever the CFG can branch, the taken in-DAG successor
	// must be observable. A bit-less successor of a branching block is
	// invisible to expansion — the path through it decodes as if the
	// DAG were exited at the branch. Jump-table slots are the one
	// designed exception: they are bit-less trampolines whose targets
	// are always fresh DAG headers, so the next record identifies
	// which slot ran.
	for bi := range d.Blocks {
		mb := &d.Blocks[bi]
		fi, ok := ctx.funcContaining(mb.Start)
		if !ok {
			continue
		}
		_, last, ok := ctx.regionFor(fi, mb.Start)
		if !ok || last.End != mb.End || len(last.Succs) < 2 {
			continue
		}
		for _, s := range mb.Succs {
			if s <= bi || s >= len(d.Blocks) || d.Blocks[s].Bit >= 0 {
				continue
			}
			if sb, ok := fi.g.BlockAt(d.Blocks[s].Start); ok && sb.IsJTABSlot {
				continue
			}
			ctx.errorf(PassEncoding, dagID, int(d.Blocks[s].Start),
				"successor of a branching block has no path bit: expansion cannot tell whether it executed")
		}
	}

	// Maximal-path round-trip. Skip DAGs whose edge structure is
	// already broken (backward or out-of-range edges) — map-consistency
	// owns those, and enumeration must not loop on them.
	for bi := range d.Blocks {
		for _, s := range d.Blocks[bi].Succs {
			if s <= bi || s >= len(d.Blocks) {
				return
			}
		}
	}
	budget := ctx.opts.MaxPaths
	path := []int{0}
	complete := ctx.walkPaths(d, dagID, path, &budget)
	if !complete {
		ctx.warnf(PassEncoding, dagID, int(d.Blocks[0].Start),
			"DAG has more than %d maximal paths; decodability proved only for the enumerated prefix", ctx.opts.MaxPaths)
	}
}

// walkPaths DFS-enumerates maximal paths from the last element of
// path, round-tripping each completed path through expandBits. It
// returns false once the budget is exhausted.
func (ctx *context) walkPaths(d *module.MapDAG, dagID int, path []int, budget *int) bool {
	cur := path[len(path)-1]
	succs := d.Blocks[cur].Succs
	if len(succs) == 0 {
		if *budget <= 0 {
			return false
		}
		*budget--
		var bits uint32
		for _, b := range path {
			if bit := d.Blocks[b].Bit; bit >= 0 {
				bits |= 1 << uint(bit)
			}
		}
		got := expandBits(d, bits)
		want := observablePrefix(d, path)
		if !equalPath(got, want) {
			ctx.errorf(PassEncoding, dagID, int(d.Blocks[path[len(path)-1]].Start),
				"path %v encodes to bits %#x but those bits expand to %v (want %v): the record is ambiguous", path, bits, got, want)
		}
		return true
	}
	for _, s := range succs {
		if !ctx.walkPaths(d, dagID, append(path, s), budget) {
			return false
		}
	}
	return true
}

// expandBits mirrors recon's ExpandPath over the in-memory DAG: start
// at the header, follow the single bit-less successor implicitly,
// otherwise the first (lowest-index) successor whose bit is set; stop
// when nothing is marked or the walk would go backward.
func expandBits(d *module.MapDAG, bits uint32) []int {
	path := []int{0}
	cur := 0
	for {
		succs := d.Blocks[cur].Succs
		next := -1
		if len(succs) == 1 && d.Blocks[succs[0]].Bit < 0 {
			next = succs[0]
		} else {
			for _, s := range succs {
				if bit := d.Blocks[s].Bit; bit >= 0 && bits&(1<<uint(bit)) != 0 {
					next = s
					break
				}
			}
		}
		if next < 0 || next <= cur {
			return path
		}
		path = append(path, next)
		cur = next
	}
}

// observablePrefix is the portion of an executed path the record can
// represent: each step is kept while it is either implied (single
// bit-less successor) or marked by the taken block's bit; the first
// unmarked branch target ends the visible path. For well-formed maps
// this drops only trailing jump-table slots (the next record names
// the target); the branching-successor rule above flags every other
// invisible step.
func observablePrefix(d *module.MapDAG, path []int) []int {
	out := []int{0}
	for i := 1; i < len(path); i++ {
		cur, nxt := path[i-1], path[i]
		succs := d.Blocks[cur].Succs
		if (len(succs) == 1 && d.Blocks[succs[0]].Bit < 0) || d.Blocks[nxt].Bit >= 0 {
			out = append(out, nxt)
			continue
		}
		break
	}
	return out
}

func equalPath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
