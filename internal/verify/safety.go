package verify

import (
	"sort"

	"traceback/internal/cfg"
	"traceback/internal/isa"
)

// safety is the probe-safety pass: an injected probe must be
// invisible to the program it instruments. It may not clobber a
// register that is live at its resume point (the instruction after
// the probe sequence), must address the trace buffer through the
// reserved TLS slot, may never move the buffer pointer outside the
// helper (TLSST), and every probe instruction the loader must rebase
// has to appear in the fixup tables — a missing fixup means the
// runtime rebases every probe but this one, corrupting the trace at
// runtime with no static symptom elsewhere.
func (ctx *context) safety() {
	for _, fi := range ctx.funcs {
		for _, start := range sortedProbeStarts(fi) {
			ctx.probeSafety(fi, fi.probes[start])
		}
	}
	ctx.tlsDiscipline()
	ctx.fixupTotality()
}

// probeSafety checks one probe's register discipline against the
// helper-aware liveness at its resume point.
func (ctx *context) probeSafety(fi *fnInfo, p *probeInfo) {
	live := ctx.liveAfterProbe(fi, p)
	switch p.kind {
	case probeHeavy:
		if !p.save && live.Has(isa.RV) {
			ctx.errorf(PassSafety, -1, int(p.start),
				"heavyweight probe clobbers r0 (the helper's return register) while it is live at the resume point, without save/restore")
		}
	case probeLight:
		if p.reg == isa.SP || p.reg == isa.FP {
			ctx.errorf(PassSafety, -1, int(p.start),
				"lightweight probe uses r%d (%s) as scratch", p.reg, regName(p.reg))
			return
		}
		if !p.save && live.Has(p.reg) {
			ctx.errorf(PassSafety, -1, int(p.start),
				"lightweight probe scavenges r%d, which is live at the probe's resume point", p.reg)
		}
	}
}

// liveAfterProbe computes the registers live immediately after probe
// p (its resume point): the live-out of the block holding the first
// original instruction, propagated backward to p.end. A heavyweight
// probe's tail lives in the continuation block its helper CALL split
// off, so the block is found by containment, not by probe start. The
// result equals the liveness the instrumenter consulted on the
// original (probe-free) code, so the scavenging decision can be
// re-judged exactly.
func (ctx *context) liveAfterProbe(fi *fnInfo, p *probeInfo) cfg.RegSet {
	b, ok := fi.g.BlockContaining(p.end)
	if !ok {
		return 0
	}
	live := fi.liveOut[b.ID]
	for idx := b.End; idx > p.end; idx-- {
		u, d := ctx.effect(ctx.m.Code[idx-1])
		live = (live &^ d) | u
	}
	return live
}

// tlsDiscipline checks the TLS-slot contract: probe TLSLDs address
// the reserved slot, and TLSST — which moves the per-thread buffer
// pointer — appears only inside the helper.
func (ctx *context) tlsDiscipline() {
	for i, in := range ctx.m.Code {
		idx := uint32(i)
		if in.Op == isa.TLSST && !ctx.inHelper(idx) {
			ctx.errorf(PassSafety, -1, i,
				"TLSST outside the probe helper: only the helper may move the trace buffer pointer")
		}
		if (in.Op == isa.TLSLD || in.Op == isa.TLSST) && ctx.inHelper(idx) && in.C != isa.TLSSlot {
			ctx.errorf(PassSafety, -1, i,
				"helper TLS access uses slot %d, want the reserved slot %d", in.C, isa.TLSSlot)
		}
	}
	for _, fi := range ctx.funcs {
		for _, start := range sortedProbeStarts(fi) {
			p := fi.probes[start]
			if p.kind != probeLight {
				continue
			}
			if c := ctx.m.Code[p.tls].C; c != isa.TLSSlot {
				ctx.errorf(PassSafety, -1, int(p.tls),
					"lightweight probe loads TLS slot %d, want the reserved slot %d", c, isa.TLSSlot)
			}
		}
	}
}

// fixupTotality checks both directions of the fixup tables: every
// probe instruction the loader must rebase (heavy STI4s for DAG IDs,
// TLSLD/TLSST for the TLS index) is listed, and every listed index is
// a real probe instruction.
func (ctx *context) fixupTotality() {
	heavySTI := map[uint32]bool{}
	probeTLS := map[uint32]bool{}
	for _, fi := range ctx.funcs {
		for _, p := range fi.probes {
			switch p.kind {
			case probeHeavy:
				heavySTI[p.sti] = true
			case probeLight:
				probeTLS[p.tls] = true
			}
		}
	}
	for i := ctx.helper.Entry; i < ctx.helper.End; i++ {
		op := ctx.m.Code[i].Op
		if op == isa.TLSLD || op == isa.TLSST {
			probeTLS[i] = true
		}
	}

	dagFix := map[uint32]bool{}
	for _, fx := range ctx.m.DAGFixups {
		dagFix[fx] = true
	}
	tlsFix := map[uint32]bool{}
	for _, fx := range ctx.m.TLSFixups {
		tlsFix[fx] = true
	}

	for _, idx := range sortedKeys(heavySTI) {
		if !dagFix[idx] {
			ctx.errorf(PassSafety, -1, int(idx),
				"heavyweight probe STI4 missing from DAGFixups: load-time DAG rebasing would skip it")
		}
	}
	for _, idx := range sortedKeys(dagFix) {
		if !heavySTI[idx] {
			ctx.errorf(PassSafety, -1, int(idx),
				"DAG fixup points at an STI4 that is not part of a heavyweight probe")
		}
	}
	for _, idx := range sortedKeys(probeTLS) {
		if !tlsFix[idx] {
			ctx.errorf(PassSafety, -1, int(idx),
				"probe TLS access missing from TLSFixups: load-time TLS re-slotting would skip it")
		}
	}
	for _, idx := range sortedKeys(tlsFix) {
		if !probeTLS[idx] {
			ctx.errorf(PassSafety, -1, int(idx),
				"TLS fixup points at a TLS access that is not part of a probe or the helper")
		}
	}
}

func sortedKeys(set map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func regName(r uint8) string {
	switch r {
	case isa.SP:
		return "stack pointer"
	case isa.FP:
		return "frame pointer"
	case isa.RV:
		return "return value"
	}
	return "general"
}
