package verify_test

import (
	"encoding/json"
	"testing"

	"traceback/internal/module"
	"traceback/internal/verify"
	"traceback/internal/verify/seed"
)

// FuzzMapFileVerify drives the verifier with arbitrary mapfiles
// against a fixed instrumented module. The contract under test: Verify
// never panics and never loops — malformed or adversarial maps must
// come back as diagnostics, because tbrun and the snap service feed
// loader-supplied mapfiles straight into it. Seed corpus: the real
// clean mapfile plus every corpus mutation (committed under
// testdata/fuzz by tools/genbroken).
func FuzzMapFileVerify(f *testing.F) {
	m, mf, err := seed.Base()
	if err != nil {
		f.Fatal(err)
	}
	raw, err := json.Marshal(mf)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"module":"seedapp","dagCount":1,"dags":[{"id":0,"blocks":[{"start":0,"end":2,"bit":-1}]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		fz := &module.MapFile{}
		if err := json.Unmarshal(data, fz); err != nil {
			return
		}
		res := verify.Verify(m, fz, verify.Options{MaxPaths: 64})
		if res == nil {
			t.Fatal("Verify returned nil result")
		}
	})
}
