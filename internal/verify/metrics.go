package verify

import (
	"traceback/internal/telemetry"
)

// Metrics is the verification provenance counter set, registered under
// the verify_ prefix so tbinstr, tbrun, and the snap service all
// report the same names: how many modules were checked, how many came
// back clean, and the diagnostic volume by severity.
type Metrics struct {
	Runs       *telemetry.Counter
	Clean      *telemetry.Counter
	Failed     *telemetry.Counter
	DiagErrors *telemetry.Counter
	DiagWarns  *telemetry.Counter
}

// NewMetrics registers (or re-binds) the verification counters on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Runs:       reg.Counter("verify_runs_total", "verification runs over modules"),
		Clean:      reg.Counter("verify_modules_clean_total", "modules verified with zero error-level diagnostics"),
		Failed:     reg.Counter("verify_modules_failed_total", "modules with at least one error-level diagnostic"),
		DiagErrors: reg.Counter("verify_diags_error_total", "error-level diagnostics emitted"),
		DiagWarns:  reg.Counter("verify_diags_warn_total", "warning-level diagnostics emitted"),
	}
}

// Observe records one Verify result.
func (mt *Metrics) Observe(res *Result) {
	mt.Runs.Inc()
	if res.Ok() {
		mt.Clean.Inc()
	} else {
		mt.Failed.Inc()
	}
	mt.DiagErrors.Add(uint64(res.NumError))
	mt.DiagWarns.Add(uint64(res.NumWarn))
}
