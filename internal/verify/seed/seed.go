// Package seed builds the negative corpus for the verifier: a known
// clean instrumented module plus one deliberately broken variant per
// defect class, each tagged with the pass that must flag it. The
// corpus is both recall-tested (internal/verify's corpus_test) and
// exported to testdata by tools/genbroken so tbcheck -broken can run
// over it in make check.
package seed

import (
	"fmt"

	"traceback/internal/cfg"
	"traceback/internal/core"
	"traceback/internal/isa"
	"traceback/internal/minic"
	"traceback/internal/module"
	"traceback/internal/trace"
)

// baseSrc has the shapes the mutations need: if/else diamonds (bit
// assignment, multi-successor blocks), a loop (cycle cutting), and
// calls (return-point headers).
const baseSrc = `int total;
int scale(int v) {
	if (v > 10) {
		v = v - 10;
	} else {
		v = v + 3;
	}
	if (v % 2 == 0) {
		v = v * 2;
	}
	return v;
}
int main() {
	int i = 0;
	while (i < 6) {
		total = total + scale(i * 7);
		i = i + 1;
	}
	print_int(total);
	exit(0);
}`

// Case is one corpus entry: a module/mapfile pair and the verifier
// pass that must report at least one error-level diagnostic for it.
// Pass is empty for the clean baseline.
type Case struct {
	Name   string
	Pass   string // verify pass name expected to flag it; "" = clean
	Desc   string
	Module *module.Module
	Map    *module.MapFile
}

// Base compiles and instruments the baseline program.
func Base() (*module.Module, *module.MapFile, error) {
	mod, err := minic.Compile("seedapp", "seedapp.mc", baseSrc)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		return nil, nil, err
	}
	return res.Module, res.Map, nil
}

// Cases builds the full corpus. Each broken case starts from a fresh
// Base() build so mutations never interact.
func Cases() ([]Case, error) {
	mutations := []struct {
		name, pass, desc string
		apply            func(*module.Module, *module.MapFile) error
	}{
		{"clean", "", "unmutated baseline; must verify with zero errors", func(*module.Module, *module.MapFile) error { return nil }},
		{"missing-probe", "probe-coverage",
			"a lightweight probe NOPed out of the code; its block's executions vanish from the trace", missingProbe},
		{"clobbering-probe", "probe-safety",
			"a lightweight probe retargeted onto a register that is live at its resume point", clobberingProbe},
		{"dangling-dag-edge", "map-consistency",
			"a mapfile DAG edge with no corresponding CFG edge; expansion could walk an impossible path", danglingEdge},
		{"ambiguous-encoding", "decodability",
			"DAG ID window rebased past MaxDAGID; top records collide with Sentinel/BadDAGID encodings", ambiguousEncoding},
		{"misaligned-map-block", "map-consistency",
			"a map block End shrunk by one instruction; line attribution uses the wrong code range", misalignedBlock},
		{"missing-bit", "decodability",
			"a branch target's path bit cleared in the mapfile; expansion cannot see that branch taken", missingBit},
	}
	out := make([]Case, 0, len(mutations))
	for _, mut := range mutations {
		m, mf, err := Base()
		if err != nil {
			return nil, err
		}
		if err := mut.apply(m, mf); err != nil {
			return nil, fmt.Errorf("seed case %s: %w", mut.name, err)
		}
		out = append(out, Case{Name: mut.name, Pass: mut.pass, Desc: mut.desc, Module: m, Map: mf})
	}
	return out, nil
}

// findLightProbe locates a no-spill lightweight probe: TLSLD rS
// followed by ORM4 rS, outside the helper, not preceded by a PUSH.
func findLightProbe(m *module.Module) (uint32, error) {
	helper, ok := m.FuncByName(core.HelperName)
	if !ok {
		return 0, fmt.Errorf("no probe helper")
	}
	for i := 0; i+1 < len(m.Code); i++ {
		if uint32(i) >= helper.Entry {
			break
		}
		if m.Code[i].Op == isa.TLSLD && m.Code[i+1].Op == isa.ORM4 &&
			m.Code[i].A == m.Code[i+1].A &&
			(i == 0 || m.Code[i-1].Op != isa.PUSH) {
			return uint32(i), nil
		}
	}
	return 0, fmt.Errorf("no no-spill lightweight probe found")
}

func missingProbe(m *module.Module, mf *module.MapFile) error {
	i, err := findLightProbe(m)
	if err != nil {
		return err
	}
	m.Code[i] = isa.Instr{Op: isa.NOP}
	m.Code[i+1] = isa.Instr{Op: isa.NOP}
	fixups := m.TLSFixups[:0]
	for _, fx := range m.TLSFixups {
		if fx != i {
			fixups = append(fixups, fx)
		}
	}
	m.TLSFixups = fixups
	mf.Checksum = m.ChecksumHex()
	return nil
}

func clobberingProbe(m *module.Module, mf *module.MapFile) error {
	helper, _ := m.FuncByName(core.HelperName)
	for i := 0; i+2 < int(helper.Entry); i++ {
		if m.Code[i].Op != isa.TLSLD || m.Code[i+1].Op != isa.ORM4 ||
			m.Code[i].A != m.Code[i+1].A ||
			(i > 0 && m.Code[i-1].Op == isa.PUSH) {
			continue
		}
		// The instruction at the probe's resume point reads its uses,
		// so any of them is live there; retargeting the scratch onto
		// one clobbers the program.
		uses, _ := cfg.InstrEffect(m.Code[i+2])
		for r := uint8(0); r < isa.FP; r++ {
			if !uses.Has(r) || r == m.Code[i].A {
				continue
			}
			m.Code[i].A = r
			m.Code[i+1].A = r
			mf.Checksum = m.ChecksumHex()
			return nil
		}
	}
	return fmt.Errorf("no probe with a live register at its resume point found")
}

func danglingEdge(m *module.Module, mf *module.MapFile) error {
	for di := range mf.DAGs {
		d := &mf.DAGs[di]
		for a := range d.Blocks {
			have := map[int]bool{}
			for _, s := range d.Blocks[a].Succs {
				have[s] = true
			}
			for b := a + 1; b < len(d.Blocks); b++ {
				if have[b] || b == 0 {
					continue
				}
				// Map edges mirror the CFG exactly on a clean build, so
				// an absent map edge is an absent CFG edge: adding it
				// dangles.
				succs := append(d.Blocks[a].Succs, b)
				for i := len(succs) - 1; i > 0 && succs[i] < succs[i-1]; i-- {
					succs[i], succs[i-1] = succs[i-1], succs[i]
				}
				d.Blocks[a].Succs = succs
				return nil
			}
		}
	}
	return fmt.Errorf("no DAG block pair without an edge found")
}

func ambiguousEncoding(m *module.Module, mf *module.MapFile) error {
	if m.DAGCount < 2 {
		return fmt.Errorf("need at least 2 DAGs")
	}
	// Rebase so the window's top ID lands one past MaxDAGID, colliding
	// with the reserved encodings.
	oldBase := m.DAGBase
	newBase := trace.MaxDAGID - m.DAGCount + 2
	for _, fx := range m.DAGFixups {
		in := &m.Code[fx]
		if in.Op != isa.STI4 {
			return fmt.Errorf("DAG fixup %d is not an STI4", fx)
		}
		local := trace.DAGID(trace.Word(in.Imm)) - oldBase
		in.Imm = int32(trace.DAGWord(newBase+local, 0))
	}
	m.DAGBase = newBase
	mf.DAGBase = newBase
	mf.Checksum = m.ChecksumHex()
	return nil
}

func misalignedBlock(m *module.Module, mf *module.MapFile) error {
	for di := range mf.DAGs {
		d := &mf.DAGs[di]
		for bi := range d.Blocks {
			mb := &d.Blocks[bi]
			if mb.End-mb.Start < 2 {
				continue
			}
			mb.End--
			spans := mb.Lines[:0]
			for _, sp := range mb.Lines {
				if sp.End > mb.End {
					sp.End = mb.End
				}
				if sp.Start < sp.End {
					spans = append(spans, sp)
				}
			}
			mb.Lines = spans
			return nil
		}
	}
	return fmt.Errorf("no multi-instruction map block found")
}

func missingBit(m *module.Module, mf *module.MapFile) error {
	for di := range mf.DAGs {
		d := &mf.DAGs[di]
		for a := range d.Blocks {
			if len(d.Blocks[a].Succs) < 2 {
				continue
			}
			for _, b := range d.Blocks[a].Succs {
				if d.Blocks[b].Bit >= 0 {
					d.Blocks[b].Bit = -1
					return nil
				}
			}
		}
	}
	return fmt.Errorf("no bit-carrying branch target found")
}
