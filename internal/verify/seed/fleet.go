package seed

import (
	"fmt"

	"traceback/internal/core"
	"traceback/internal/isa"
	"traceback/internal/minic"
	"traceback/internal/module"
	"traceback/internal/verify/fleet"
)

// The fleet baseline is the smallest interesting distributed shape:
// one client calling endpoint 77, one server looping recv/reply on it
// with a branch (so sync mutations can break a single path).
const fleetClientSrc = `int main() {
	int req = alloc(64);
	int resp = alloc(64);
	poke(req, 1);
	rpc_call(77, req, 32, resp);
	exit(0);
}`

const fleetServerSrc = `int main() {
	int buf = alloc(64);
	int out = alloc(64);
	int i = 0;
	while (i < 3) {
		rpc_recv(77, buf, 64);
		int kind = peek(buf);
		if (kind == 1) {
			rpc_reply(77, 0, out, 8);
		} else {
			rpc_reply(77, 1, out, 0);
		}
		i = i + 1;
	}
	exit(0);
}`

// FleetModule is one named module of a fleet corpus case.
type FleetModule struct {
	Name   string
	Module *module.Module
}

// FleetCase is one cross-module corpus entry: a module set and the
// fleet pass that must report at least one error-level diagnostic for
// it. Pass is empty for the clean baseline.
type FleetCase struct {
	Name    string
	Pass    string // fleet pass name expected to flag it; "" = clean
	Desc    string
	Modules []FleetModule
}

// FleetBase compiles and instruments the baseline client/server pair.
func FleetBase() ([]FleetModule, error) {
	out := make([]FleetModule, 0, 2)
	for _, s := range []struct{ name, src string }{
		{"fleetclient", fleetClientSrc},
		{"fleetserver", fleetServerSrc},
	} {
		mod, err := minic.Compile(s.name, s.name+".mc", s.src)
		if err != nil {
			return nil, err
		}
		res, err := core.Instrument(mod, core.Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, FleetModule{Name: s.name, Module: res.Module})
	}
	return out, nil
}

// FleetCases builds the cross-module corpus. Each broken case starts
// from a fresh FleetBase build so mutations never interact.
func FleetCases() ([]FleetCase, error) {
	mutations := []struct {
		name, pass, desc string
		apply            func([]FleetModule) error
	}{
		{"fleet-clean", "", "unmutated client/server pair; must fleet-verify with zero errors",
			func([]FleetModule) error { return nil }},
		{"unserved-endpoint", fleet.PassRPC,
			"client's call endpoint constant rewritten 77->78; no module serves 78, so the call raises RPCServerFault at runtime", unservedEndpoint},
		{"missing-sync", fleet.PassSync,
			"one branch's rpc-reply NOPed out of the server; a path from recv escapes without emitting SyncReplySend", missingSync},
		{"ambiguous-trailer", fleet.PassAmbiguity,
			"a heavy probe word rewritten to an extended-record trailer shape (tag 0x7F, bit 31 clear); wrapped-buffer suffixes gain a second valid backward mining", ambiguousTrailer},
	}
	out := make([]FleetCase, 0, len(mutations))
	for _, mut := range mutations {
		mods, err := FleetBase()
		if err != nil {
			return nil, err
		}
		if err := mut.apply(mods); err != nil {
			return nil, fmt.Errorf("fleet case %s: %w", mut.name, err)
		}
		out = append(out, FleetCase{Name: mut.name, Pass: mut.pass, Desc: mut.desc, Modules: mods})
	}
	return out, nil
}

// fleetModule finds the named module in a FleetBase build.
func fleetModule(mods []FleetModule, name string) (*module.Module, error) {
	for _, fm := range mods {
		if fm.Name == name {
			return fm.Module, nil
		}
	}
	return nil, fmt.Errorf("no module %s in fleet base", name)
}

// unservedEndpoint retargets the client's single endpoint-id constant
// (MOVI 77, stack-marshaled into the rpc_call's first argument) onto
// an endpoint no recv in the fleet serves.
func unservedEndpoint(mods []FleetModule) error {
	m, err := fleetModule(mods, "fleetclient")
	if err != nil {
		return err
	}
	for i := range m.Code {
		if m.Code[i].Op == isa.MOVI && m.Code[i].Imm == 77 {
			m.Code[i].Imm = 78
			return nil
		}
	}
	return fmt.Errorf("no MOVI 77 endpoint constant in client")
}

// missingSync NOPs the server's last rpc-reply syscall — the
// else-branch reply — leaving a path on which the recv's pending
// request is never answered. The marshaling PUSH/POPs stay balanced;
// only the SYS itself disappears.
func missingSync(mods []FleetModule) error {
	m, err := fleetModule(mods, "fleetserver")
	if err != nil {
		return err
	}
	helper, ok := m.FuncByName(core.HelperName)
	if !ok {
		return fmt.Errorf("no probe helper in server")
	}
	for i := int(helper.Entry) - 1; i >= 0; i-- {
		if m.Code[i].Op == isa.SYS && int(m.Code[i].Imm) == isa.SysRPCReply {
			m.Code[i] = isa.Instr{Op: isa.NOP}
			return nil
		}
	}
	return fmt.Errorf("no rpc-reply syscall in server")
}

// ambiguousTrailer rewrites the server's first heavy probe word into
// the 0x7F trailer shape: bit 31 clear, top byte the extended-record
// trailer tag, so backward mining can also read it as closing a
// phantom extended record.
func ambiguousTrailer(mods []FleetModule) error {
	m, err := fleetModule(mods, "fleetserver")
	if err != nil {
		return err
	}
	if len(m.DAGFixups) == 0 {
		return fmt.Errorf("no DAG fixups in server")
	}
	m.Code[m.DAGFixups[0]].Imm = int32(0x7F<<24 | 8<<16 | 2)
	return nil
}
