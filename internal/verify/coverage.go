package verify

import (
	"traceback/internal/isa"
)

// coverage is the probe-coverage pass: every block that must carry a
// probe does (and with the right weight), no block carries one it
// should not, and the paper's mandatory header placements hold. A
// missing probe silently drops control flow from the trace — the
// reconstructed path walks past blocks that never report — so every
// finding here is error-level.
func (ctx *context) coverage() {
	ctx.strayProbeScan()
	for _, fi := range ctx.funcs {
		ctx.coveragePlacement(fi)
	}
	if ctx.mf != nil {
		ctx.coverageMap()
	}
}

// strayProbeScan flags probe-only opcodes (STI4/ORM4/TLSLD/TLSST) and
// helper calls that are not part of a well-formed probe sequence at a
// block head. Compilers never emit these ops, so a stray one means
// the probe around it was damaged (partially overwritten, split by a
// bad relayout, or a branch target landing mid-probe).
func (ctx *context) strayProbeScan() {
	for i, in := range ctx.m.Code {
		idx := uint32(i)
		if ctx.inHelper(idx) {
			continue
		}
		if isProbeOp(in.Op) {
			if _, ok := ctx.probeSpanContaining(idx); !ok {
				ctx.errorf(PassCoverage, -1, i,
					"probe instruction %v outside any well-formed probe sequence", in)
			}
			continue
		}
		if in.Op == isa.CALL && ctx.hasHelper && uint32(in.Imm) == ctx.helper.Entry {
			if p, ok := ctx.probeSpanContaining(idx); !ok || p.kind != probeHeavy {
				ctx.errorf(PassCoverage, -1, i,
					"call to the probe helper outside a heavyweight probe sequence")
			}
		}
	}
}

// coveragePlacement checks the structural header rules of paper
// §2.1–§2.2 against the parsed probes, independent of the mapfile:
// function entries, call return points, and multiway-branch targets
// hold heavyweight probes; every reachable cycle contains one;
// jump-table slots and unreachable blocks hold none.
func (ctx *context) coveragePlacement(fi *fnInfo) {
	g := fi.g
	heavyAt := func(id int) bool {
		p, ok := fi.probes[g.Blocks[id].Start]
		return ok && p.kind == probeHeavy
	}

	if !heavyAt(g.Entry) {
		ctx.errorf(PassCoverage, -1, int(g.Blocks[g.Entry].Start),
			"function entry lacks a heavyweight probe")
	}
	for _, b := range g.Blocks {
		p, hasProbe := fi.probes[b.Start]
		if !fi.reach[b.ID] {
			if hasProbe {
				ctx.errorf(PassCoverage, -1, int(b.Start),
					"%s probe in unreachable block", p.kind)
			}
			continue
		}
		if b.IsJTABSlot {
			if hasProbe {
				ctx.errorf(PassCoverage, -1, int(b.Start),
					"jump-table slot carries a %s probe (slots must stay contiguous)", p.kind)
			}
			continue
		}
		if b.IsMultiwayTarget && !heavyAt(b.ID) {
			ctx.errorf(PassCoverage, -1, int(b.Start),
				"multiway-branch target lacks a heavyweight probe")
		}
		// Real calls must return into a heavyweight probe. A probe's
		// own helper CALL is exempt: its "return point" is the probe's
		// STI4 tail, not a header.
		if b.EndsInCall && !ctx.isHelperCallBlock(b) {
			for _, s := range b.Succs {
				sb := g.Blocks[s]
				if !sb.IsJTABSlot && !heavyAt(s) {
					ctx.errorf(PassCoverage, -1, int(sb.Start),
						"call return point lacks a heavyweight probe (exceptions in the callee would be misattributed)")
				}
			}
		}
	}

	// Every reachable cycle must contain a heavyweight probe, or a
	// loop's iterations all OR into one record and collapse to a
	// single traversal. Unreachable cycles are exempt: they must hold
	// no probes at all (flagged above).
	for _, scc := range g.NontrivialSCCs(func(id int) bool { return heavyAt(id) }) {
		if !fi.reach[scc[0]] {
			continue
		}
		ctx.errorf(PassCoverage, -1, int(g.Blocks[scc[0]].Start),
			"cycle of %d block(s) contains no heavyweight probe", len(scc))
	}
}

// coverageMap checks the parsed probes against what the mapfile
// promises reconstruction: the header block of each DAG carries the
// heavyweight probe, each bit-carrying block carries a lightweight
// probe, and bit-less blocks carry none. Block-alignment problems are
// left to the map-consistency pass; misaligned blocks are skipped
// here so one defect yields one diagnosis.
func (ctx *context) coverageMap() {
	for di := range ctx.mf.DAGs {
		d := &ctx.mf.DAGs[di]
		for bi := range d.Blocks {
			mb := &d.Blocks[bi]
			fi, ok := ctx.funcContaining(mb.Start)
			if !ok {
				continue
			}
			_, last, ok := ctx.regionFor(fi, mb.Start)
			if !ok || last.End != mb.End {
				continue
			}
			p, has := fi.probes[mb.Start]
			switch {
			case bi == 0:
				if !has || p.kind != probeHeavy {
					ctx.errorf(PassCoverage, int(d.ID), int(mb.Start),
						"DAG %d header block lacks its heavyweight probe", d.ID)
				}
			case mb.Bit >= 0:
				if !has {
					ctx.errorf(PassCoverage, int(d.ID), int(mb.Start),
						"block assigned path bit %d carries no lightweight probe (its executions would vanish from the trace)", mb.Bit)
				} else if p.kind != probeLight {
					ctx.errorf(PassCoverage, int(d.ID), int(mb.Start),
						"block assigned path bit %d carries a %s probe, want lightweight", mb.Bit, p.kind)
				}
			default:
				if has {
					ctx.errorf(PassCoverage, int(d.ID), int(mb.Start),
						"block mapped with no path bit carries a %s probe", p.kind)
				}
			}
		}
	}
}
