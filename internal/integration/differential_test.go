package integration_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/module"
	"traceback/internal/recon"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
	"traceback/internal/workload"
)

// Differential oracle: for randomly generated programs, the line
// sequence TraceBack reconstructs from an INSTRUMENTED run must equal
// the line sequence a perfect per-instruction tracer observes on the
// UNINSTRUMENTED run. This validates the whole pipeline — tiling, bit
// assignment, probe injection, runtime buffering, record mining, and
// path expansion — against ground truth.

// oracleLines runs mod uninstrumented with a per-step tracer and
// returns the consecutive-duplicate-collapsed (line) sequence of
// thread 1.
func oracleLines(t *testing.T, mod *module.Module, arg uint64) ([]uint32, int) {
	t.Helper()
	w := vm.NewWorld(99)
	mach := w.NewMachine("oracle", 0)
	p := mach.NewProcess("app", nil)
	lm, err := p.Load(mod)
	if err != nil {
		t.Fatal(err)
	}
	var seq []uint32
	mach.OnStep = func(th *vm.Thread) {
		if th.TID != 1 {
			return
		}
		rel := uint32(th.PC) - lm.CodeBase
		_, line, ok := mod.LineFor(rel)
		if !ok {
			return
		}
		if n := len(seq); n == 0 || seq[n-1] != line {
			seq = append(seq, line)
		}
	}
	if _, err := p.StartMain(arg); err != nil {
		t.Fatal(err)
	}
	if err := vm.RunProcess(p, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if p.FatalSignal != 0 {
		t.Fatalf("oracle run faulted: %s", vm.SignalName(p.FatalSignal))
	}
	return seq, p.ExitCode
}

// reconLines runs the instrumented module and returns the
// reconstructed, consecutive-duplicate-collapsed line sequence of
// thread 1.
func reconLines(t *testing.T, mod *module.Module, arg uint64) ([]uint32, int) {
	t.Helper()
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(99)
	mach := w.NewMachine("dut", 0)
	// Buffers large enough that nothing wraps: the oracle sees the
	// whole history, so reconstruction must too.
	p, rt, err := tbrt.NewProcess(mach, "app", tbrt.Config{BufferWords: 1 << 19, NumBuffers: 1, SubBuffers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Load(res.Module); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartMain(arg); err != nil {
		t.Fatal(err)
	}
	if err := vm.RunProcess(p, 20_000_000); err != nil {
		t.Fatal(err)
	}
	if p.FatalSignal != 0 {
		t.Fatalf("instrumented run faulted: %s", vm.SignalName(p.FatalSignal))
	}
	pt, err := recon.Reconstruct(rt.PostMortemSnap(), recon.NewMapSet(res.Map))
	if err != nil {
		t.Fatal(err)
	}
	tt, ok := pt.ThreadByTID(1)
	if !ok {
		t.Fatal("no thread 1")
	}
	if tt.Truncated {
		t.Fatal("trace truncated despite huge buffer")
	}
	var seq []uint32
	for _, e := range tt.Events {
		if e.Kind != recon.EvLine {
			continue
		}
		// A Repeat>0 event stands for consecutive re-executions of
		// one line; collapsed it is a single entry, exactly like the
		// oracle's duplicate collapsing — except when the repeats
		// were separated in the oracle by the loop-header line. The
		// oracle collapses only adjacent duplicates, so a repeat of a
		// single-line loop body appears once there too.
		if n := len(seq); n == 0 || seq[n-1] != e.Line {
			seq = append(seq, e.Line)
		}
	}
	return seq, p.ExitCode
}

func diffSeqs(a, b []uint32) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 4
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first divergence at %d: oracle ...%v..., recon ...%v...",
				i, a[lo:min(i+4, len(a))], b[lo:min(i+4, len(b))])
		}
	}
	if len(a) != len(b) {
		return fmt.Sprintf("length mismatch: oracle %d, recon %d", len(a), len(b))
	}
	return ""
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// progGen emits random but well-formed, terminating MiniC programs.
type progGen struct {
	rng   *rand.Rand
	sb    strings.Builder
	depth int
}

func (g *progGen) linef(format string, args ...interface{}) {
	fmt.Fprintf(&g.sb, format+"\n", args...)
}

// genExpr builds an expression over the locals a,b,c and globals.
func (g *progGen) genExpr(depth int) string {
	if depth > 2 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(100)+1)
		case 1:
			return []string{"a", "b", "c"}[g.rng.Intn(3)]
		case 2:
			return fmt.Sprintf("gdata[%s & 15]", []string{"a", "b", "c"}[g.rng.Intn(3)])
		default:
			return fmt.Sprintf("helper%d(%s)", g.rng.Intn(3), []string{"a", "b", "c"}[g.rng.Intn(3)])
		}
	}
	op := []string{"+", "-", "*", "&", "|", "^"}[g.rng.Intn(6)]
	return fmt.Sprintf("(%s %s %s)", g.genExpr(depth+1), op, g.genExpr(depth+1))
}

func (g *progGen) genStmt(depth int) {
	switch g.rng.Intn(7) {
	case 0, 1:
		v := []string{"a", "b", "c"}[g.rng.Intn(3)]
		g.linef("%s = %s %% 1000;", v, g.genExpr(0))
	case 2:
		g.linef("gdata[%s & 15] = %s %% 997;", []string{"a", "b"}[g.rng.Intn(2)], g.genExpr(0))
	case 3:
		g.linef("if (%s %% 3 == %d) {", g.genExpr(1), g.rng.Intn(3))
		g.genStmt(depth + 1)
		if g.rng.Intn(2) == 0 {
			g.linef("} else {")
			g.genStmt(depth + 1)
		}
		g.linef("}")
	case 4:
		if depth < 2 {
			n := g.rng.Intn(6) + 2
			// A unique loop counter avoids shadowing issues.
			g.linef("for (int i%d = 0; i%d < %d; i%d = i%d + 1) {", depth, depth, n, depth, depth)
			g.genStmt(depth + 1)
			g.linef("}")
		} else {
			g.linef("c = c + 1;")
		}
	case 5:
		g.linef("switch (%s & 3) {", []string{"a", "b", "c"}[g.rng.Intn(3)])
		for k := 0; k < 4; k++ {
			g.linef("case %d: a = a + %d;", k, k+1)
		}
		g.linef("}")
	default:
		g.linef("b = helper%d(%s %% 50);", g.rng.Intn(3), g.genExpr(1))
	}
}

func (g *progGen) generate(seed int64) string {
	g.rng = rand.New(rand.NewSource(seed))
	g.sb.Reset()
	g.linef("int gdata[16];")
	for h := 0; h < 3; h++ {
		g.linef("int helper%d(int x) {", h)
		g.linef("int r = x * %d + %d;", h+2, h*7+1)
		g.linef("if (x > %d) { r = r - x; }", g.rng.Intn(40))
		g.linef("return r %% 211;")
		g.linef("}")
	}
	g.linef("int main(int a) {")
	g.linef("int b = %d;", g.rng.Intn(50))
	g.linef("int c = 1;")
	nStmts := g.rng.Intn(8) + 4
	for i := 0; i < nStmts; i++ {
		g.genStmt(0)
	}
	g.linef("exit((a + b + c) %% 251);")
	g.linef("}")
	return g.sb.String()
}

// TestDifferentialLineTrace is the oracle comparison over many random
// programs and inputs.
func TestDifferentialLineTrace(t *testing.T) {
	gen := &progGen{}
	programs := 40
	if testing.Short() {
		programs = 8
	}
	for seed := int64(0); seed < int64(programs); seed++ {
		src := gen.generate(seed * 7717)
		mod, err := minic.Compile("fuzz", "fuzz.mc", src)
		if err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
		}
		for _, arg := range []uint64{0, 3, 17} {
			want, exitO := oracleLines(t, mod, arg)
			got, exitR := reconLines(t, mod, arg)
			if exitO != exitR {
				t.Fatalf("seed %d arg %d: exit codes differ: oracle %d, instrumented %d",
					seed, arg, exitO, exitR)
			}
			if d := diffSeqs(want, got); d != "" {
				t.Fatalf("seed %d arg %d: %s\nsource:\n%s", seed, arg, d, src)
			}
		}
	}
}

// TestDifferentialSpecKernels applies the same oracle to the real
// benchmark kernels at a small scale — the most complex CFGs we have.
func TestDifferentialSpecKernels(t *testing.T) {
	kernels := []struct {
		name string
		arg  uint64
	}{
		{"gzip", 3}, {"gcc", 2}, {"parser", 5}, {"perlbmk", 6},
		{"vortex", 2}, {"crafty", 4}, {"vpr", 2}, {"bzip2", 1},
	}
	for _, k := range kernels {
		k := k
		t.Run(k.name, func(t *testing.T) {
			src := specSource(t, k.name)
			mod, err := minic.Compile(k.name, k.name+".c", src)
			if err != nil {
				t.Fatal(err)
			}
			want, exitO := oracleLines(t, mod, k.arg)
			got, exitR := reconLines(t, mod, k.arg)
			if exitO != exitR {
				t.Fatalf("exit codes differ: %d vs %d", exitO, exitR)
			}
			if d := diffSeqs(want, got); d != "" {
				t.Fatal(d)
			}
		})
	}
}

// specSource fetches a workload kernel's source by name.
func specSource(t *testing.T, name string) string {
	t.Helper()
	p, ok := workload.SpecByName(name)
	if !ok {
		t.Fatalf("no kernel %s", name)
	}
	return p.Src
}
