// Package integration_test exercises the whole TraceBack pipeline:
// MiniC source -> compiled module -> static instrumentation -> VM
// execution with the runtime attached -> snap -> reconstruction ->
// rendered source trace. These are the "does first fault diagnosis
// actually work" tests.
package integration_test

import (
	"strings"
	"testing"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/module"
	"traceback/internal/recon"
	"traceback/internal/snap"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
)

// pipeline compiles src, instruments it, runs it, and reconstructs.
func pipeline(t *testing.T, src string, arg uint64, cfg tbrt.Config) (*recon.ProcessTrace, *vm.Process, *tbrt.Runtime) {
	t.Helper()
	mod, err := minic.Compile("app", "app.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(21)
	mach := w.NewMachine("host", 0)
	p, rt, err := tbrt.NewProcess(mach, "app", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Load(res.Module); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartMain(arg); err != nil {
		t.Fatal(err)
	}
	vm.RunProcess(p, 20_000_000)
	var s *snap.Snap
	if snaps := rt.Snaps(); len(snaps) > 0 {
		s = snaps[0]
	} else {
		s = rt.PostMortemSnap()
	}
	pt, err := recon.Reconstruct(s, recon.NewMapSet(res.Map))
	if err != nil {
		t.Fatal(err)
	}
	return pt, p, rt
}

// TestCrashTraceShowsPathToFault: the canonical first-fault scenario.
// A function corrupts state long before the crash; the trace shows
// the whole path, ending exactly at the faulting line.
func TestCrashTraceShowsPathToFault(t *testing.T) {
	src := `int denom;
int setup(int mode) {
	if (mode == 1) {
		denom = 0;
	} else {
		denom = 4;
	}
	return 0;
}
int compute(int x) {
	int r = x / denom;
	return r;
}
int main() {
	setup(getarg());
	int v = compute(12);
	print_int(v);
	exit(0);
}`
	pt, p, _ := pipeline(t, src, 1, tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if p.FatalSignal != vm.SigFpe {
		t.Fatalf("signal = %s, want SIGFPE", vm.SignalName(p.FatalSignal))
	}
	tt, ok := pt.ThreadByTID(1)
	if !ok {
		t.Fatal("no thread trace")
	}
	if !tt.Faulted {
		t.Error("trace not marked faulted")
	}
	// The trace must show: main called setup, the mode==1 arm ran
	// (denom = 0 on line 4), and the fault is on line 11 (x / denom).
	var sawDenomZero, sawFaultLine bool
	var faultEv *recon.Event
	for i := range tt.Events {
		e := &tt.Events[i]
		if e.Kind != recon.EvLine {
			continue
		}
		if e.Line == 4 && e.Func == "setup" {
			sawDenomZero = true
		}
		if e.Fault {
			faultEv = e
		}
		if e.Line == 11 && e.Func == "compute" {
			sawFaultLine = true
		}
	}
	if !sawDenomZero {
		t.Error("trace does not show the denom=0 assignment that caused the fault")
	}
	if !sawFaultLine {
		t.Error("trace does not reach the faulting line")
	}
	if faultEv == nil || faultEv.Line != 11 {
		t.Errorf("fault marked at %+v, want line 11", faultEv)
	}
	// The healthy path (else arm, line 6) must NOT appear.
	for _, e := range tt.Events {
		if e.Kind == recon.EvLine && e.Line == 6 {
			t.Error("trace shows the arm that did not execute")
		}
	}
}

// TestHealthyRunTakesOtherArm: same program, mode 0: the else arm
// shows and no fault occurs.
func TestHealthyRunTakesOtherArm(t *testing.T) {
	src := `int denom;
int setup(int mode) {
	if (mode == 1) {
		denom = 0;
	} else {
		denom = 4;
	}
	return 0;
}
int main() {
	setup(getarg());
	exit(12 / denom);
}`
	pt, p, _ := pipeline(t, src, 0, tbrt.Config{})
	if p.FatalSignal != 0 || p.ExitCode != 3 {
		t.Fatalf("sig=%s exit=%d", vm.SignalName(p.FatalSignal), p.ExitCode)
	}
	tt, _ := pt.ThreadByTID(1)
	saw4, saw6 := false, false
	for _, e := range tt.Events {
		if e.Kind == recon.EvLine && e.Line == 4 {
			saw4 = true
		}
		if e.Kind == recon.EvLine && e.Line == 6 {
			saw6 = true
		}
	}
	if saw4 || !saw6 {
		t.Errorf("arms: line4=%v line6=%v, want only the else arm", saw4, saw6)
	}
}

// TestRecursionDepthInTrace: recursive calls nest in the call
// hierarchy and unwind correctly.
func TestRecursionDepthInTrace(t *testing.T) {
	src := `int f(int n) {
	if (n == 0) return 0;
	return f(n - 1);
}
int main() {
	f(3);
	exit(0);
}`
	pt, _, _ := pipeline(t, src, 0, tbrt.Config{})
	tt, _ := pt.ThreadByTID(1)
	maxDepth := 0
	for _, e := range tt.Events {
		if e.Depth > maxDepth {
			maxDepth = e.Depth
		}
	}
	// main at depth 1, f(3)..f(0) at depths 2..5.
	if maxDepth != 5 {
		t.Errorf("max depth = %d, want 5", maxDepth)
	}
	// The final event of the trace should be back at main's depth.
	var lastLine *recon.Event
	for i := range tt.Events {
		if tt.Events[i].Kind == recon.EvLine {
			lastLine = &tt.Events[i]
		}
	}
	if lastLine == nil || lastLine.Depth != 1 {
		t.Errorf("last line depth = %+v, want 1", lastLine)
	}
}

// TestMultiThreadedTraces: each thread gets its own history; the
// interleaved view contains both.
func TestMultiThreadedTraces(t *testing.T) {
	src := `int work(int n) {
	int s = 0;
	for (int i = 0; i < n; i = i + 1) s = s + i;
	return s;
}
int worker() {
	return work(getarg() + 10);
}
int main() {
	int t1 = thread_create(&worker, 5);
	int t2 = thread_create(&worker, 9);
	int a = join(t1);
	int b = join(t2);
	exit(a + b);
}`
	pt, p, _ := pipeline(t, src, 0, tbrt.Config{})
	if p.FatalSignal != 0 {
		t.Fatalf("faulted: %s", vm.SignalName(p.FatalSignal))
	}
	tids := map[uint32]bool{}
	for _, tt := range pt.Threads {
		if len(tt.Events) > 0 {
			tids[tt.TID] = true
		}
	}
	for _, tid := range []uint32{1, 2, 3} {
		if !tids[tid] {
			t.Errorf("no trace for thread %d (have %v)", tid, tids)
		}
	}
	merged := recon.Interleave(pt.Threads)
	if len(merged) < 10 {
		t.Errorf("interleaved view has only %d events", len(merged))
	}
}

// TestSwitchViaJumpTable: a dense switch compiles to a JTAB; its
// multiway targets are DAG headers and the taken case reconstructs.
func TestSwitchViaJumpTable(t *testing.T) {
	src := `int main() {
	int r = 0;
	switch (getarg()) {
	case 0: r = 10;
	case 1: r = 20;
	case 2: r = 30;
	case 3: r = 40;
	}
	exit(r);
}`
	pt, p, _ := pipeline(t, src, 2, tbrt.Config{})
	if p.ExitCode != 30 {
		t.Fatalf("exit = %d, want 30", p.ExitCode)
	}
	tt, _ := pt.ThreadByTID(1)
	saw5 := false
	for _, e := range tt.Events {
		if e.Kind == recon.EvLine && e.Line == 6 { // case 2 line
			saw5 = true
		}
		if e.Kind == recon.EvLine && (e.Line == 4 || e.Line == 5 || e.Line == 7) {
			// Lines of cases 0, 1, 3: only the header lines of the
			// switch may repeat; the assignments must not appear.
			if strings.Contains(e.Note, "call") {
				continue
			}
			t.Errorf("untaken case line %d in trace", e.Line)
		}
	}
	if !saw5 {
		t.Error("taken case line missing from trace")
	}
}

// TestMemcpyOverrunThenWildCrash reproduces the Fidelity scenario
// (paper §6.1): a memcpy overruns a buffer, corrupting a neighboring
// structure; the crash comes much later, but the trace still shows
// the overrun site within its history.
func TestMemcpyOverrunThenWildCrash(t *testing.T) {
	src := `int header[4];
int table[4];
int copy_blob(int src, int n) {
	memcpy(&header, src, n);
	return 0;
}
int lookup(int i) {
	int f = table[0];
	return f(i);
}
int main() {
	table[0] = &step;
	int blob = alloc(128);
	for (int i = 0; i < 16; i = i + 1) poke(blob + i * 8, 1000000 + i);
	copy_blob(blob, 96);
	exit(lookup(3));
}
int step(int x) { return x + 1; }`
	pt, p, _ := pipeline(t, src, 0, tbrt.Config{Policy: tbrt.DefaultPolicy()})
	// The overrun smashed table[0]; the indirect call goes wild.
	if p.FatalSignal != vm.SigSegv {
		t.Fatalf("signal = %s, want SIGSEGV from the wild call", vm.SignalName(p.FatalSignal))
	}
	tt, _ := pt.ThreadByTID(1)
	sawMemcpy := false
	for _, e := range tt.Events {
		if e.Kind == recon.EvLine && e.Func == "copy_blob" {
			sawMemcpy = true
		}
	}
	if !sawMemcpy {
		t.Error("trace history does not include the memcpy overrun site")
	}
}

// TestNegativeSleepException reproduces the Oracle scenario (paper
// §6.1): sleep() fed from a random source throws on a negative value;
// the trace shows the call site.
func TestNegativeSleepException(t *testing.T) {
	src := `int snooze(int d) {
	sleep(d);
	return 0;
}
int main() {
	int r = rand() % 100 - 200;
	snooze(r);
	exit(0);
}`
	pt, p, _ := pipeline(t, src, 0, tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if p.FatalSignal != vm.SigArg {
		t.Fatalf("signal = %s, want SIGARG", vm.SignalName(p.FatalSignal))
	}
	tt, _ := pt.ThreadByTID(1)
	var fault *recon.Event
	for i := range tt.Events {
		if tt.Events[i].Fault {
			fault = &tt.Events[i]
		}
	}
	if fault == nil || fault.Func != "snooze" || fault.Line != 2 {
		t.Errorf("fault = %+v, want line 2 in snooze", fault)
	}
}

// TestRenderEndToEnd: the rendered trace is human-usable: shows the
// fault, the source positions, and the call hierarchy.
func TestRenderEndToEnd(t *testing.T) {
	src := `int boom() {
	int z = 0;
	return 1 / z;
}
int main() {
	boom();
	exit(0);
}`
	pt, _, _ := pipeline(t, src, 0, tbrt.Config{Policy: tbrt.DefaultPolicy()})
	var sb strings.Builder
	recon.Render(&sb, pt, recon.RenderOptions{})
	out := sb.String()
	for _, want := range []string{"exception SIGFPE", "app.mc:3", "app.mc:6", "call boom"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered trace missing %q:\n%s", want, out)
		}
	}
}

// TestDynamicModuleLoadAndTrace: a module loaded at runtime via the
// loader hook is rebased and traced like any other.
func TestDynamicModuleLoadAndTrace(t *testing.T) {
	libSrc := `int transform(int x) { return x * 3 + 1; }`
	appSrc := `extern "plugin" int transform(int x);
int main() {
	exit(transform(5));
}`
	lib, err := minic.Compile("plugin", "plugin.mc", libSrc)
	if err != nil {
		t.Fatal(err)
	}
	app, err := minic.Compile("app", "app.mc", appSrc)
	if err != nil {
		t.Fatal(err)
	}
	libRes, err := core.Instrument(lib, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	appRes, err := core.Instrument(app, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(2)
	mach := w.NewMachine("host", 0)
	p, rt, err := tbrt.NewProcess(mach, "app", tbrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Load(libRes.Module); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Load(appRes.Module); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartMain(0); err != nil {
		t.Fatal(err)
	}
	vm.RunProcess(p, 1_000_000)
	if p.ExitCode != 16 {
		t.Fatalf("exit = %d, want 16", p.ExitCode)
	}
	pt, err := recon.Reconstruct(rt.PostMortemSnap(), recon.NewMapSet(libRes.Map, appRes.Map))
	if err != nil {
		t.Fatal(err)
	}
	tt, _ := pt.ThreadByTID(1)
	sawPlugin := false
	for _, e := range tt.Events {
		if e.Kind == recon.EvLine && e.Module == "plugin" {
			sawPlugin = true
		}
	}
	if !sawPlugin {
		t.Error("cross-module trace missing the plugin's lines")
	}
}

// TestUninstrumentedCalleeAttribution (paper §2.4): an exception
// inside an UNINSTRUMENTED callee is attributed to the instrumented
// call site that led there.
func TestUninstrumentedCalleeAttribution(t *testing.T) {
	libSrc := `int risky(int x) {
	int z = 0;
	return x / z;
}`
	appSrc := `extern "rawlib" int risky(int x);
int safe_so_far() {
	return risky(7);
}
int main() {
	safe_so_far();
	exit(0);
}`
	lib, err := minic.Compile("rawlib", "rawlib.mc", libSrc)
	if err != nil {
		t.Fatal(err)
	}
	app, err := minic.Compile("app", "app.mc", appSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Only the app is instrumented; rawlib runs native/untraced.
	appRes, err := core.Instrument(app, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(2)
	mach := w.NewMachine("host", 0)
	p, rt, err := tbrt.NewProcess(mach, "app", tbrt.Config{Policy: tbrt.DefaultPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Load(lib); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Load(appRes.Module); err != nil {
		t.Fatal(err)
	}
	p.StartMain(0)
	vm.RunProcess(p, 1_000_000)
	if p.FatalSignal != vm.SigFpe {
		t.Fatalf("signal = %s", vm.SignalName(p.FatalSignal))
	}
	var s *snap.Snap
	if sn := rt.Snaps(); len(sn) > 0 {
		s = sn[0]
	}
	pt, err := recon.Reconstruct(s, recon.NewMapSet(appRes.Map))
	if err != nil {
		t.Fatal(err)
	}
	tt, _ := pt.ThreadByTID(1)
	var fault *recon.Event
	for i := range tt.Events {
		if tt.Events[i].Fault {
			fault = &tt.Events[i]
		}
	}
	// The fault attributes to app.mc line 3 — the risky(7) call.
	if fault == nil || fault.File != "app.mc" || fault.Line != 3 {
		t.Errorf("fault = %+v, want the call at app.mc:3", fault)
	}
}

// TestOverheadSanity: instrumentation costs cycles but not
// correctness, and overhead lands in a plausible band.
func TestOverheadSanity(t *testing.T) {
	src := `int main() {
	int s = 0;
	for (int i = 0; i < 20000; i = i + 1) {
		if (i % 3 == 0) s = s + i;
		else s = s - 1;
	}
	exit(s % 251);
}`
	mod, err := minic.Compile("bench", "bench.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	runCycles := func(m *module.Module, instrumented bool) (uint64, int) {
		w := vm.NewWorld(1)
		mach := w.NewMachine("m", 0)
		var p *vm.Process
		if instrumented {
			p, _, err = tbrt.NewProcess(mach, "bench", tbrt.Config{})
			if err != nil {
				t.Fatal(err)
			}
		} else {
			p = mach.NewProcess("bench", nil)
		}
		if _, err := p.Load(m); err != nil {
			t.Fatal(err)
		}
		p.StartMain(0)
		if err := vm.RunProcess(p, 50_000_000); err != nil {
			t.Fatal(err)
		}
		return p.Cycles, p.ExitCode
	}
	base, exitA := runCycles(mod, false)
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inst, exitB := runCycles(res.Module, true)
	if exitA != exitB {
		t.Fatalf("instrumentation changed the answer: %d vs %d", exitA, exitB)
	}
	ratio := float64(inst) / float64(base)
	if ratio < 1.05 || ratio > 4.0 {
		t.Errorf("overhead ratio = %.2f, want within [1.05, 4.0]", ratio)
	}
	t.Logf("overhead ratio: %.2f (text growth %.0f%%)", ratio, res.Stats.CodeGrowth()*100)
}
