package integration_test

import (
	"testing"

	"traceback/internal/minic"
	"traceback/internal/mvm"
	"traceback/internal/vm"
)

// TestDualBackendDifferential: the same random MiniC source compiled
// by the native backend and the managed backend computes the same
// result — the paper's §3.3 multiple-source-technology story, checked
// mechanically. Both are additionally run INSTRUMENTED to confirm
// neither instrumenter perturbs semantics.
func TestDualBackendDifferential(t *testing.T) {
	gen := &progGen{}
	n := 25
	if testing.Short() {
		n = 6
	}
	for seed := int64(0); seed < int64(n); seed++ {
		src := gen.generate(seed*3391 + 5)
		for _, arg := range []int64{0, 9, 42} {
			native := runNativeExit(t, src, uint64(arg), seed)
			managed := runManagedExit(t, src, arg, false, seed)
			managedI := runManagedExit(t, src, arg, true, seed)
			if native != managed {
				t.Fatalf("seed %d arg %d: native %d vs managed %d\n%s",
					seed, arg, native, managed, src)
			}
			if managed != managedI {
				t.Fatalf("seed %d arg %d: managed instrumentation changed result: %d vs %d",
					seed, arg, managed, managedI)
			}
		}
	}
}

func runNativeExit(t *testing.T, src string, arg uint64, seed int64) int64 {
	t.Helper()
	mod, err := minic.Compile("dual", "dual.mc", src)
	if err != nil {
		t.Fatalf("seed %d native compile: %v\n%s", seed, err, src)
	}
	w := vm.NewWorld(1)
	mach := w.NewMachine("n", 0)
	p := mach.NewProcess("dual", nil)
	if _, err := p.Load(mod); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartMain(arg); err != nil {
		t.Fatal(err)
	}
	if err := vm.RunProcess(p, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if p.FatalSignal != 0 {
		t.Fatalf("seed %d: native faulted: %s\n%s", seed, vm.SignalName(p.FatalSignal), src)
	}
	return int64(p.ExitCode)
}

func runManagedExit(t *testing.T, src string, arg int64, instrumented bool, seed int64) int64 {
	t.Helper()
	mod, err := minic.CompileManaged("dual", "Dual.cs", src)
	if err != nil {
		t.Fatalf("seed %d managed compile: %v\n%s", seed, err, src)
	}
	if instrumented {
		mod, _, err = mvm.Instrument(mod, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	w := vm.NewWorld(1)
	mach := w.NewMachine("m", 0)
	v := mvm.New(mach, nil, "dual", mvm.RuntimeConfig{})
	if _, err := v.Load(mod); err != nil {
		t.Fatal(err)
	}
	th, err := v.Start("main", arg)
	if err != nil {
		t.Fatal(err)
	}
	v.Run(10_000_000, nil)
	if th.Uncaught != 0 {
		t.Fatalf("seed %d: managed threw %s\n%s", seed, mvm.ExcName(th.Uncaught), src)
	}
	if !v.Halted {
		t.Fatalf("seed %d: managed program never exited", seed)
	}
	return v.HaltCode
}
