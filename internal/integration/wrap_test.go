package integration_test

import (
	"testing"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/recon"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
)

// TestWrappedBufferSuffix: with a small trace buffer the oldest
// history is overwritten, but what remains must be an exact SUFFIX of
// the ground-truth line sequence — the flight recorder may forget the
// distant past, never garble the recent past.
func TestWrappedBufferSuffix(t *testing.T) {
	src := `int gdata[8];
int step(int x) {
	if (x % 3 == 0) {
		gdata[x & 7] = x;
		return x * 2;
	}
	return x + 1;
}
int main(int a) {
	int acc = 0;
	for (int i = 0; i < 600; i = i + 1) {
		acc = (acc + step(i + a)) % 10007;
	}
	exit(acc % 251);
}`
	mod, err := minic.Compile("wrap", "wrap.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	oracle, exitO := oracleLines(t, mod, 3)

	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bufWords := range []int{512, 2048, 8192} {
		w := vm.NewWorld(99)
		mach := w.NewMachine("dut", 0)
		p, rt, err := tbrt.NewProcess(mach, "wrap", tbrt.Config{
			BufferWords: bufWords, NumBuffers: 1, SubBuffers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Load(res.Module)
		p.StartMain(3)
		if err := vm.RunProcess(p, 50_000_000); err != nil {
			t.Fatal(err)
		}
		if p.ExitCode != exitO {
			t.Fatalf("bufWords %d: exit %d vs oracle %d", bufWords, p.ExitCode, exitO)
		}
		pt, err := recon.Reconstruct(rt.PostMortemSnap(), recon.NewMapSet(res.Map))
		if err != nil {
			t.Fatal(err)
		}
		tt, ok := pt.ThreadByTID(1)
		if !ok {
			t.Fatal("no thread")
		}
		var got []uint32
		for _, e := range tt.Events {
			if e.Kind != recon.EvLine {
				continue
			}
			if n := len(got); n == 0 || got[n-1] != e.Line {
				got = append(got, e.Line)
			}
		}
		if len(got) < 5 {
			t.Fatalf("bufWords %d: only %d lines recovered", bufWords, len(got))
		}
		// After truncation the first reconstructed block may be a
		// partial run (a DAG record whose earlier context is gone);
		// skip up to one leading line when matching the suffix.
		if !isSuffixWithSlack(oracle, got, 2) {
			t.Errorf("bufWords %d: reconstruction is not a suffix of ground truth\nlast oracle: %v\nrecovered head: %v",
				bufWords, tail(oracle, 12), head(got, 12))
		}
		if bufWords == 512 && !tt.Truncated {
			t.Errorf("bufWords %d: small buffer not marked truncated", bufWords)
		}
	}
}

// isSuffixWithSlack reports whether got (minus up to slack leading
// entries) appears as a suffix of oracle.
func isSuffixWithSlack(oracle, got []uint32, slack int) bool {
	for skip := 0; skip <= slack && skip < len(got); skip++ {
		g := got[skip:]
		if len(g) > len(oracle) {
			continue
		}
		o := oracle[len(oracle)-len(g):]
		match := true
		for i := range g {
			if g[i] != o[i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func head(s []uint32, n int) []uint32 {
	if len(s) < n {
		return s
	}
	return s[:n]
}

func tail(s []uint32, n int) []uint32 {
	if len(s) < n {
		return s
	}
	return s[len(s)-n:]
}
