package integration_test

import (
	"fmt"
	"testing"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/recon"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
)

// TestDynamicCodeGenerationCache reproduces paper §3.4: a web-host
// process generates page modules at runtime (the ASP.NET/.jsp path).
// The runtime hooks module creation, instruments each page before
// use, and caches the instrumented image by checksum so later loads
// (including by later "processes") skip re-instrumentation; editing a
// page changes its checksum and triggers re-instrumentation.
func TestDynamicCodeGenerationCache(t *testing.T) {
	cache := core.NewCache(core.Options{})

	// The "page compiler": generates MiniC for a page on demand.
	pageSource := func(name string, version int) string {
		return fmt.Sprintf(`int render_%s() {
	int total = 0;
	for (int i = 0; i < 10; i = i + 1) {
		total = total + i * %d;
	}
	return total;
}
int main() { exit(render_%s()); }`, name, version+2, name)
	}

	// The host application loads pages dynamically by name.
	hostSrc := `int main() {
	int h1 = load_module("page_index");
	int h2 = load_module("page_cart");
	int h3 = load_module("page_index");
	exit((h1 != 0) + (h2 != 0) * 10 + (h3 != 0) * 100);
}`
	hostMod, err := minic.Compile("host", "host.mc", hostSrc)
	if err != nil {
		t.Fatal(err)
	}
	hostRes, err := cache.Instrument(hostMod)
	if err != nil {
		t.Fatal(err)
	}

	runHost := func() (*vm.Process, *tbrt.Runtime) {
		w := vm.NewWorld(31)
		mach := w.NewMachine("webhost", 0)
		p, rt, err := tbrt.NewProcess(mach, "aspnet", tbrt.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Load(hostRes.Module); err != nil {
			t.Fatal(err)
		}
		p.SetModuleResolver(func(name string) *vm.LoadedModule {
			page, err := minic.Compile(name, name+".mc", pageSource(name, 1))
			if err != nil {
				t.Fatal(err)
				return nil
			}
			res, err := cache.Instrument(page)
			if err != nil {
				t.Fatal(err)
				return nil
			}
			lm, err := p.Load(res.Module)
			if err != nil {
				t.Fatal(err)
				return nil
			}
			return lm
		})
		if _, err := p.StartMain(0); err != nil {
			t.Fatal(err)
		}
		if err := vm.RunProcess(p, 1_000_000); err != nil {
			t.Fatal(err)
		}
		return p, rt
	}

	p1, _ := runHost()
	if p1.ExitCode != 111 {
		t.Fatalf("host exit = %d, want 111 (all three loads succeed)", p1.ExitCode)
	}
	// Two distinct pages instrumented; the duplicate load of
	// page_index hit the cache (same checksum).
	if cache.Misses != 3 || cache.Hits != 1 { // host + 2 pages; 1 hit
		t.Errorf("cache: %d misses %d hits, want 3/1", cache.Misses, cache.Hits)
	}

	// A second host process (the "subsequent ASP.NET process")
	// benefits from the cache entirely.
	p2, rt2 := runHost()
	if p2.ExitCode != 111 {
		t.Fatalf("second host exit = %d", p2.ExitCode)
	}
	if cache.Misses != 3 {
		t.Errorf("second process re-instrumented: %d misses", cache.Misses)
	}

	// The dynamically loaded pages are fully traced: both modules'
	// DAG ranges appear in the snap and reconstruct.
	// host + page_index + page_cart + the second page_index load
	// (each load is a distinct mapping, like LoadLibrary twice).
	s := rt2.PostMortemSnap()
	if len(s.Modules) != 4 {
		t.Fatalf("%d modules in snap, want 4", len(s.Modules))
	}
	// The duplicate load of the same image was rebased to a distinct
	// DAG range so its records remain attributable.
	var idxBases []uint32
	for _, mi := range s.Modules {
		if mi.Name == "page_index" {
			idxBases = append(idxBases, mi.ActualDAGBase)
		}
	}
	if len(idxBases) != 2 || idxBases[0] == idxBases[1] {
		t.Errorf("duplicate loads share a DAG base: %v", idxBases)
	}
	maps := recon.NewMapSet(hostRes.Map)
	for _, name := range []string{"page_index", "page_cart"} {
		page, _ := minic.Compile(name, name+".mc", pageSource(name, 1))
		res, _ := cache.Instrument(page)
		maps.Add(res.Map)
	}
	pt, err := recon.Reconstruct(s, maps)
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic loads happen after the last page's main would run; only
	// the host main thread exists, and its trace is recoverable.
	if len(pt.Threads) == 0 {
		t.Fatal("nothing reconstructed")
	}

	// "When a module is rebuilt due to changes in the .aspx source,
	// the runtime notices a modified checksum and re-instruments."
	edited, err := minic.Compile("page_index", "page_index.mc", pageSource("page_index", 9))
	if err != nil {
		t.Fatal(err)
	}
	before := cache.Misses
	if _, err := cache.Instrument(edited); err != nil {
		t.Fatal(err)
	}
	if cache.Misses != before+1 {
		t.Error("edited page was not re-instrumented")
	}
	if cache.Len() != 4 {
		t.Errorf("cache has %d entries, want 4", cache.Len())
	}
}
