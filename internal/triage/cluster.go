// Similarity clustering: exact signature bucketing fragments
// near-duplicate faults — the same root cause reached with a
// different wrap point, loop depth, or thread interleaving hashes to
// a different signature because one block of the hashed path moved.
// This file merges those fragments back together by comparing the
// fault-directed views themselves: each bucket's exemplar (its
// representative snap) is reconstructed once through the recon
// pipeline, its frame/block sequence extracted
// (archive.FaultViewOf), and buckets whose sequences sit within a
// weighted-edit-distance threshold are unioned into one cluster.
//
// The distance is a weighted Levenshtein over the fault-directed
// token sequence, fault end first: call-hierarchy frames weigh
// frameWeight (a changed caller is strong evidence of a different
// fault) and block-path tokens weigh pathWeight decayed by distance
// from the fault (a changed block far up the path is weak evidence —
// exactly where wrap points and interleavings differ). Distances are
// normalized to [0, 1] by total sequence weight and cached keyed by
// the pair of exemplar content addresses, so repeated queries over a
// growing warehouse only pay for new content.
package triage

import (
	"sort"
	"time"

	"traceback/internal/archive"
	"traceback/internal/recon"
)

const (
	frameWeight = 3.0
	pathWeight  = 1.0
	// pathDecay halves a path token's weight every pathDecay steps
	// away from the fault.
	pathDecay = 8
)

// token is one comparable element of a fault-directed sequence.
type token struct {
	s string
	w float64
}

// viewEntry caches one bucket's extracted sequence, keyed by the
// representative blob so a changed rep (GC, new earliest snap)
// invalidates it.
type viewEntry struct {
	rep  string
	toks []token
	sumW float64
	ok   bool
}

// tokensOf flattens a fault view into the weighted token sequence.
func tokensOf(fv archive.FaultView) ([]token, float64) {
	var toks []token
	var sum float64
	for _, f := range fv.Frames {
		t := token{s: "f " + f.String(), w: frameWeight}
		toks = append(toks, t)
		sum += t.w
	}
	for i, p := range fv.Path {
		w := pathWeight / float64(uint(1)<<uint(i/pathDecay))
		toks = append(toks, token{s: "p " + p, w: w})
		sum += w
	}
	return toks, sum
}

// distance is the normalized weighted edit distance between two token
// sequences: delete/insert cost a token's weight, substitution the
// max of the two, normalized by the summed weight of both sequences.
// 0 means identical; disjoint sequences approach 1.
func distance(a, b []token, sumA, sumB float64) float64 {
	if sumA+sumB == 0 {
		return 0
	}
	n, m := len(a), len(b)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + b[j-1].w
	}
	for i := 1; i <= n; i++ {
		cur[0] = prev[0] + a[i-1].w
		for j := 1; j <= m; j++ {
			del := prev[j] + a[i-1].w
			ins := cur[j-1] + b[j-1].w
			sub := prev[j-1]
			if a[i-1].s != b[j-1].s {
				if a[i-1].w > b[j-1].w {
					sub += a[i-1].w
				} else {
					sub += b[j-1].w
				}
			}
			d := del
			if ins < d {
				d = ins
			}
			if sub < d {
				d = sub
			}
			cur[j] = d
		}
		prev, cur = cur, prev
	}
	return prev[m] / (sumA + sumB)
}

// Member is one bucket inside a cluster.
type Member struct {
	Sig   string `json:"sig"`
	Title string `json:"title"`
	Count uint64 `json:"count"`
	// Distance is the normalized fault-view distance to the cluster
	// lead (0 for the lead itself; -1 when no view was comparable).
	Distance float64 `json:"distance"`
}

// Cluster groups near-duplicate signatures around a lead exemplar.
type Cluster struct {
	// Lead is the signature of the highest-count member (ties broken
	// by signature) — the exemplar `tbstore show` should start from.
	Lead  string `json:"lead"`
	Title string `json:"title"`
	// Count sums every member's occurrences.
	Count   uint64   `json:"count"`
	Members []Member `json:"members"`
	// Unclustered marks a singleton whose exemplar could not be
	// reconstructed (weak bucket, evicted rep, or no maps): it was
	// never compared, not proven unique.
	Unclustered bool `json:"unclustered,omitempty"`
}

// ClusterReport is one clustering pass over the warehouse.
type ClusterReport struct {
	V int `json:"v"`
	// Threshold echoes the merge distance used.
	Threshold float64 `json:"threshold"`
	// Clusters is ordered by summed count desc, then lead asc.
	Clusters []Cluster `json:"clusters"`
}

// Clusters groups the warehouse's buckets by fault-view similarity.
// Deterministic given the index and the blobs it references.
func (a *Analyzer) Clusters() (*ClusterReport, error) {
	t0 := time.Now()
	defer func() { a.met.clusterNanos.Observe(uint64(time.Since(t0))) }()
	a.met.clusterBuilds.Inc()

	buckets := a.arch.Buckets()
	// Pair enumeration in signature order so cache keys and union
	// order are stable; the final report order is imposed at the end.
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].Sig < buckets[j].Sig })

	views := make([]*viewEntry, len(buckets))
	for i := range buckets {
		views[i] = a.viewFor(&buckets[i])
	}

	// Single-linkage union-find over comparable pairs.
	parent := make([]int, len(buckets))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < len(buckets); i++ {
		if !views[i].ok {
			continue
		}
		for j := i + 1; j < len(buckets); j++ {
			if !views[j].ok {
				continue
			}
			if a.pairDistance(views[i], views[j]) <= a.cfg.ClusterDistance {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[rj] = ri
				}
			}
		}
	}

	groups := map[int][]int{}
	for i := range buckets {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	rep := &ClusterReport{V: 1, Threshold: a.cfg.ClusterDistance}
	for _, idxs := range groups {
		c := buildCluster(buckets, views, idxs)
		// Recompute member distances against the chosen lead.
		lead := -1
		for _, i := range idxs {
			if buckets[i].Sig == c.Lead {
				lead = i
			}
		}
		for mi := range c.Members {
			c.Members[mi].Distance = -1
			if lead < 0 || !views[lead].ok {
				continue
			}
			for _, i := range idxs {
				if buckets[i].Sig == c.Members[mi].Sig && views[i].ok {
					c.Members[mi].Distance = a.pairDistance(views[lead], views[i])
				}
			}
		}
		rep.Clusters = append(rep.Clusters, c)
	}
	sort.Slice(rep.Clusters, func(i, j int) bool {
		if rep.Clusters[i].Count != rep.Clusters[j].Count {
			return rep.Clusters[i].Count > rep.Clusters[j].Count
		}
		return rep.Clusters[i].Lead < rep.Clusters[j].Lead
	})
	return rep, nil
}

// buildCluster assembles one cluster from member indexes.
func buildCluster(buckets []archive.Bucket, views []*viewEntry, idxs []int) Cluster {
	var c Cluster
	for _, i := range idxs {
		b := &buckets[i]
		c.Count += b.Count
		c.Members = append(c.Members, Member{Sig: b.Sig, Title: b.Title, Count: b.Count})
	}
	sort.Slice(c.Members, func(i, j int) bool {
		if c.Members[i].Count != c.Members[j].Count {
			return c.Members[i].Count > c.Members[j].Count
		}
		return c.Members[i].Sig < c.Members[j].Sig
	})
	c.Lead = c.Members[0].Sig
	c.Title = c.Members[0].Title
	if len(idxs) == 1 {
		for _, i := range idxs {
			c.Unclustered = !views[i].ok
		}
	}
	return c
}

// viewFor returns (computing and caching if needed) a bucket's
// fault-view tokens. A bucket with no resident rep, a weak signature,
// or a failed reconstruction yields ok=false.
func (a *Analyzer) viewFor(b *archive.Bucket) *viewEntry {
	a.mu.Lock()
	if e, hit := a.views[b.Sig]; hit && e.rep == b.Rep {
		a.mu.Unlock()
		return e
	}
	a.mu.Unlock()

	e := &viewEntry{rep: b.Rep}
	if b.Rep != "" && !b.Weak && a.maps != nil {
		if s, err := a.arch.LoadSnap(b.Rep); err == nil {
			if pt, err := recon.Reconstruct(s, a.maps); err == nil {
				if fv, ok := archive.FaultViewOf(pt); ok {
					e.toks, e.sumW = tokensOf(fv)
					e.ok = true
					a.met.exemplars.Inc()
				}
			}
		}
	}
	a.mu.Lock()
	a.views[b.Sig] = e
	a.mu.Unlock()
	return e
}

// pairDistance computes (or serves from cache) the normalized
// distance between two cached views, keyed by exemplar content
// addresses so the cache survives bucket growth.
func (a *Analyzer) pairDistance(x, y *viewEntry) float64 {
	ka, kb := x.rep, y.rep
	if ka > kb {
		ka, kb = kb, ka
	}
	key := ka + "|" + kb
	a.mu.Lock()
	if d, hit := a.dists[key]; hit {
		a.mu.Unlock()
		a.met.distHits.Inc()
		return d
	}
	a.mu.Unlock()
	d := distance(x.toks, y.toks, x.sumW, y.sumW)
	a.met.distMisses.Inc()
	a.mu.Lock()
	a.dists[key] = d
	a.mu.Unlock()
	return d
}
