package triage

import (
	"path/filepath"
	"testing"

	"traceback/internal/archive"
	"traceback/internal/snap"
)

func tok(s string, w float64) token { return token{s: s, w: w} }

// TestDistanceProperties: the metric's anchor points — identity is 0,
// one changed caller frame on a short stack is a large move, a single
// far-from-fault path divergence is a small one, disjoint sequences
// approach 1.
func TestDistanceProperties(t *testing.T) {
	a := []token{tok("f main", frameWeight), tok("f handler", frameWeight),
		tok("p m:f.c:10", pathWeight), tok("p m:f.c:20", pathWeight)}
	sum := func(ts []token) float64 {
		var s float64
		for _, x := range ts {
			s += x.w
		}
		return s
	}
	if d := distance(a, a, sum(a), sum(a)); d != 0 {
		t.Errorf("self distance = %v, want 0", d)
	}

	// Same frames, one differing path block: small distance.
	b := append([]token(nil), a...)
	b[3] = tok("p m:f.c:99", pathWeight)
	if d := distance(a, b, sum(a), sum(b)); d <= 0 || d > 0.2 {
		t.Errorf("near-dup distance = %v, want (0, 0.2]", d)
	}

	// Different caller frame: well above the near-dup move.
	c := append([]token(nil), a...)
	c[1] = tok("f other", frameWeight)
	dNear := distance(a, b, sum(a), sum(b))
	dFrame := distance(a, c, sum(a), sum(c))
	if dFrame <= dNear {
		t.Errorf("changed frame (%v) should out-distance changed path block (%v)", dFrame, dNear)
	}

	// Disjoint sequences: everything substituted.
	d2 := []token{tok("f x", frameWeight), tok("f y", frameWeight),
		tok("p q:1", pathWeight), tok("p q:2", pathWeight)}
	if d := distance(a, d2, sum(a), sum(d2)); d < 0.4 {
		t.Errorf("disjoint distance = %v, want >= 0.4", d)
	}

	// Symmetry.
	if d1, d3 := distance(a, c, sum(a), sum(c)), distance(c, a, sum(c), sum(a)); d1 != d3 {
		t.Errorf("distance not symmetric: %v vs %v", d1, d3)
	}
}

// TestPathDecay: tokens far from the fault weigh less, so a
// divergence pathDecay*2 steps up the path moves the distance less
// than the same divergence adjacent to the fault.
func TestPathDecay(t *testing.T) {
	long := func(diverge int) []token {
		ts := []token{tok("f main", frameWeight)}
		for i := 0; i < pathDecay*3; i++ {
			s := "p m:f.c:10"
			if i == diverge {
				s = "p m:f.c:666"
			}
			w := pathWeight / float64(uint(1)<<uint(i/pathDecay))
			ts = append(ts, tok(s, w))
		}
		return ts
	}
	sum := func(ts []token) float64 {
		var s float64
		for _, x := range ts {
			s += x.w
		}
		return s
	}
	base := long(-1)
	nearFault := long(0)
	farFault := long(pathDecay * 2)
	dn := distance(base, nearFault, sum(base), sum(nearFault))
	df := distance(base, farFault, sum(base), sum(farFault))
	if df >= dn {
		t.Errorf("far-from-fault divergence (%v) should move less than near-fault (%v)", df, dn)
	}
}

// TestClustersWeakUnclustered: weak buckets (no reconstructable
// exemplar) come back as Unclustered singletons rather than being
// merged or dropped.
func TestClustersWeakUnclustered(t *testing.T) {
	arch, err := archive.Open(filepath.Join(t.TempDir(), "wh"))
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	for i, sig := range []string{"aaaa000000000000", "bbbb000000000000"} {
		s := &snap.Snap{Host: "h", Process: "app", Reason: "exception SIGSEGV", PID: i + 1}
		if _, err := arch.Ingest(s, archive.Signature{ID: sig, Title: "weak " + sig, Weak: true}); err != nil {
			t.Fatal(err)
		}
	}
	an := New(arch, nil, Config{}, nil)
	rep, err := an.Clusters()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Clusters) != 2 {
		t.Fatalf("got %d clusters, want 2 singletons", len(rep.Clusters))
	}
	for _, c := range rep.Clusters {
		if !c.Unclustered {
			t.Errorf("weak singleton %s not marked unclustered", c.Lead)
		}
		if len(c.Members) != 1 || c.Members[0].Distance != -1 {
			t.Errorf("weak singleton %s members = %+v", c.Lead, c.Members)
		}
	}
}
