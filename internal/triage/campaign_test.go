// Campaign-backed triage tests. These live in an external test
// package because they drive internal/fault, which reaches triage
// through the collection plane — an import cycle from inside
// package triage. Metric assertions go through the shared registry
// (Registry.Counter dedupes by name).
package triage_test

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"traceback/internal/archive"
	"traceback/internal/fault"
	"traceback/internal/scenario"
	"traceback/internal/snap"
	"traceback/internal/telemetry"
	"traceback/internal/triage"
)

const W = archive.WindowWidth

func counter(an *triage.Analyzer, name string) uint64 {
	return an.Metrics().Counter(name, "").Load()
}

// TestClassifyCampaignTwoPhase: the acceptance scenario on real
// traffic — a seeded tbfault campaign supplies the fault snaps, phase
// one replays baseline signatures across the horizon, phase two
// injects a campaign-only signature in the newest window. The
// injected signature must be flagged; the steady ones must not.
func TestClassifyCampaignTwoPhase(t *testing.T) {
	// Baseline traffic: the uninjected scenarios.
	builts, err := scenario.All()
	if err != nil {
		t.Fatal(err)
	}
	maps := scenario.MapSet(builts...)

	// The injected fault: one seeded campaign trial. Seed 3's kill of
	// the quickstart app yields a signature the baseline never
	// produces (asserted below, deterministically).
	camp, err := fault.New(fault.Config{Seed: 3, Kinds: []string{fault.KindKill}, Scenarios: []string{"quickstart"}})
	if err != nil {
		t.Fatal(err)
	}
	_, faultSnaps, faultMaps, err := camp.Trial(fault.KindKill, "quickstart")
	if err != nil {
		t.Fatal(err)
	}
	if len(faultSnaps) == 0 {
		t.Fatal("campaign trial produced no snaps")
	}
	for _, mf := range faultMaps {
		maps.Add(mf)
	}

	steadySigs := map[string]bool{}
	arch, err := archive.Open(filepath.Join(t.TempDir(), "wh"))
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()

	// Phase 1: every baseline snap in every window 0..9.
	for win := uint64(0); win < 10; win++ {
		for _, b := range builts {
			for _, s := range b.Snaps {
				cp := *s
				cp.Time = win*W + W/4
				sig := archive.SignSnap(&cp, maps)
				steadySigs[sig.ID] = true
				if _, err := arch.Ingest(&cp, sig); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Phase 2: the campaign's snaps, newest window only.
	injected := map[string]bool{}
	for _, s := range faultSnaps {
		cp := *s
		cp.Time = 9*W + W/2
		sig := archive.SignSnap(&cp, maps)
		if !steadySigs[sig.ID] {
			injected[sig.ID] = true
		}
		if _, err := arch.Ingest(&cp, sig); err != nil {
			t.Fatal(err)
		}
	}
	if len(injected) == 0 {
		t.Fatal("campaign signatures all collide with the baseline; pick another seed")
	}

	an := triage.New(arch, maps, triage.Config{}, telemetry.New())
	rep := an.Regressions()
	classes := map[string]triage.Class{}
	for _, a := range rep.Assessments {
		classes[a.Sig] = a.Class
	}
	for sig := range injected {
		if got := classes[sig]; got != triage.ClassNew {
			t.Errorf("injected campaign signature %s = %s, want new", sig, got)
		}
	}
	for sig := range steadySigs {
		if got := classes[sig]; got.Flagged() {
			t.Errorf("steady baseline signature %s flagged %s", sig, got)
		}
	}
	if got := counter(an, "triage_scans_total"); got != 1 {
		t.Errorf("triage_scans_total = %d, want 1", got)
	}
	if want := uint64(len(injected)); counter(an, "triage_flagged_total") != want {
		t.Errorf("triage_flagged_total = %d, want %d", counter(an, "triage_flagged_total"), want)
	}
}

// clusterFleet ingests baseline crossmachine + quickstart traffic and
// a wrap-stressed crossmachine campaign trial into a fresh archive,
// returning the analyzer and the sets of signatures per origin.
func clusterFleet(t *testing.T) (*triage.Analyzer, map[string]bool, map[string]bool, map[string]bool) {
	t.Helper()
	builts, err := scenario.All()
	if err != nil {
		t.Fatal(err)
	}
	maps := scenario.MapSet(builts...)

	camp, err := fault.New(fault.Config{Seed: 11, Kinds: []string{fault.KindWrap}, Scenarios: []string{"crossmachine"}})
	if err != nil {
		t.Fatal(err)
	}
	_, wrapSnaps, wrapMaps, err := camp.Trial(fault.KindWrap, "crossmachine")
	if err != nil {
		t.Fatal(err)
	}
	for _, mf := range wrapMaps {
		maps.Add(mf)
	}

	arch, err := archive.Open(filepath.Join(t.TempDir(), "wh"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { arch.Close() })

	ingest := func(snaps []*snap.Snap, into map[string]bool) {
		for _, s := range snaps {
			sig := archive.SignSnap(s, maps)
			into[sig.ID] = true
			if _, err := arch.Ingest(s, sig); err != nil {
				t.Fatal(err)
			}
		}
	}
	cross, quick, wrap := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for _, b := range builts {
		switch b.Name {
		case "crossmachine":
			ingest(b.Snaps, cross)
		case "quickstart":
			ingest(b.Snaps, quick)
		}
	}
	ingest(wrapSnaps, wrap)
	return triage.New(arch, maps, triage.Config{}, telemetry.New()), cross, quick, wrap
}

// TestClustersSemantics: a wrap-stressed crossmachine fault lands in
// the same cluster as the baseline crossmachine fault (same root
// cause, truncated view), while quickstart faults — a different root
// cause entirely — never share a cluster with crossmachine ones.
func TestClustersSemantics(t *testing.T) {
	an, cross, quick, wrap := clusterFleet(t)
	rep, err := an.Clusters()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Clusters) == 0 {
		t.Fatal("no clusters")
	}
	clusterOf := map[string]int{}
	for ci, c := range rep.Clusters {
		for _, m := range c.Members {
			clusterOf[m.Sig] = ci
		}
	}
	// Every ingested signature appears exactly once.
	for sig := range cross {
		if _, ok := clusterOf[sig]; !ok {
			t.Errorf("crossmachine sig %s missing from report", sig)
		}
	}

	// No quickstart signature shares a cluster with a crossmachine one.
	for qs := range quick {
		for cs := range cross {
			if clusterOf[qs] == clusterOf[cs] {
				t.Errorf("quickstart %s clustered with crossmachine %s", qs, cs)
			}
		}
	}

	// Each wrap-trial signature either IS a baseline crossmachine
	// signature (wrap didn't change the hashed tail) or joined a
	// cluster containing one.
	for ws := range wrap {
		if cross[ws] {
			continue
		}
		joined := false
		for cs := range cross {
			if clusterOf[ws] == clusterOf[cs] {
				joined = true
			}
		}
		if !joined {
			t.Errorf("wrap-variant sig %s did not cluster with any baseline crossmachine sig", ws)
		}
	}
}

// TestClustersDeterministicAndCached: a second pass returns
// byte-identical JSON and serves every pairwise distance from cache.
func TestClustersDeterministicAndCached(t *testing.T) {
	an, _, _, _ := clusterFleet(t)
	r1, err := an.Clusters()
	if err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := counter(an, "triage_dist_cache_misses_total")
	r2, err := an.Clusters()
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	if string(j1) != string(j2) {
		t.Errorf("clustering not deterministic:\n%s\nvs\n%s", j1, j2)
	}
	if got := counter(an, "triage_dist_cache_misses_total"); got != missesAfterFirst {
		t.Errorf("second pass recomputed %d distances; want all served from cache", got-missesAfterFirst)
	}
	if counter(an, "triage_dist_cache_hits_total") == 0 {
		t.Error("second pass recorded no cache hits")
	}
	if got := counter(an, "triage_cluster_builds_total"); got != 2 {
		t.Errorf("triage_cluster_builds_total = %d, want 2", got)
	}
}
