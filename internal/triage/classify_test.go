package triage

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"traceback/internal/archive"
	"traceback/internal/snap"
	"traceback/internal/telemetry"
)

const W = archive.WindowWidth

// mkBucket builds a synthetic bucket whose histogram holds count[i]
// occurrences in window i (first/last seen derived accordingly).
func mkBucket(sig string, counts []uint64) archive.Bucket {
	b := archive.Bucket{Sig: sig, Title: "bucket " + sig}
	first, last := uint64(0), uint64(0)
	seenFirst := false
	for i, c := range counts {
		if c == 0 {
			continue
		}
		start := uint64(i) * W
		b.Windows = append(b.Windows, archive.RateWindow{Start: start, Count: c})
		b.Count += c
		if !seenFirst {
			first = start
			seenFirst = true
		}
		last = start
	}
	b.FirstSeen, b.LastSeen = first, last
	return b
}

func classOf(t *testing.T, rep *Report, sig string) Class {
	t.Helper()
	for _, a := range rep.Assessments {
		if a.Sig == sig {
			return a.Class
		}
	}
	t.Fatalf("signature %s missing from report", sig)
	return ""
}

// TestClassifySyntheticRamp: the four verdicts on hand-built
// histograms over a 10-window horizon (now = window 9).
func TestClassifySyntheticRamp(t *testing.T) {
	buckets := []archive.Bucket{
		// Flat background noise: 1 per window throughout.
		mkBucket("steady00", []uint64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}),
		// Ramp: quiet background then 12 in the newest window.
		mkBucket("spiker00", []uint64{1, 1, 1, 1, 1, 1, 1, 1, 1, 12}),
		// First ever seen in the newest window.
		mkBucket("newsig00", []uint64{0, 0, 0, 0, 0, 0, 0, 0, 0, 3}),
		// Went dark seven windows ago.
		mkBucket("quiet000", []uint64{5, 5, 1, 0, 0, 0, 0, 0, 0, 0}),
	}
	rep := Classify(buckets, 9*W+W/2, Config{})
	if got := classOf(t, rep, "steady00"); got != ClassSteady {
		t.Errorf("steady00 = %s, want steady", got)
	}
	if got := classOf(t, rep, "spiker00"); got != ClassSpiking {
		t.Errorf("spiker00 = %s, want spiking", got)
	}
	if got := classOf(t, rep, "newsig00"); got != ClassNew {
		t.Errorf("newsig00 = %s, want new", got)
	}
	if got := classOf(t, rep, "quiet000"); got != ClassQuiet {
		t.Errorf("quiet000 = %s, want quiet", got)
	}

	// Urgency ordering: new, spiking, steady, quiet — deterministic.
	wantOrder := []string{"newsig00", "spiker00", "steady00", "quiet000"}
	for i, want := range wantOrder {
		if rep.Assessments[i].Sig != want {
			t.Fatalf("assessment[%d] = %s, want %s", i, rep.Assessments[i].Sig, want)
		}
	}
	if got := rep.Flagged(); len(got) != 2 {
		t.Errorf("flagged = %d assessments, want 2 (new + spiking)", len(got))
	}
}

// TestClassifyYoungSteadyNotSpiking: a bucket first seen 4 windows
// ago at a flat rate is neither new (horizon 2) nor spiking — the
// baseline divisor shrinks to the bucket's actual age.
func TestClassifyYoungSteadyNotSpiking(t *testing.T) {
	b := mkBucket("young000", []uint64{0, 0, 0, 0, 0, 0, 2, 2, 2, 2})
	rep := Classify([]archive.Bucket{b}, 9*W, Config{})
	if got := classOf(t, rep, "young000"); got != ClassSteady {
		t.Errorf("young steady bucket = %s, want steady", got)
	}
}

// TestClassifySingleCrashNotSpike: MinRecent keeps a lone recent
// crash of an old signature from being called a spike.
func TestClassifySingleCrashNotSpike(t *testing.T) {
	b := mkBucket("lone0000", []uint64{3, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	rep := Classify([]archive.Bucket{b}, 9*W, Config{})
	if got := classOf(t, rep, "lone0000"); got != ClassSteady {
		t.Errorf("single recent crash = %s, want steady", got)
	}
}

// TestClassifyPure: Classify is a pure function — identical inputs
// give byte-identical JSON, and input order does not matter.
func TestClassifyPure(t *testing.T) {
	buckets := []archive.Bucket{
		mkBucket("aa", []uint64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}),
		mkBucket("bb", []uint64{0, 0, 0, 0, 0, 0, 0, 0, 0, 5}),
		mkBucket("cc", []uint64{2, 2, 2, 2, 2, 2, 2, 2, 2, 2}),
	}
	reversed := []archive.Bucket{buckets[2], buckets[1], buckets[0]}
	j1, err := json.Marshal(Classify(buckets, 9*W, Config{}))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(Classify(reversed, 9*W, Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Errorf("classification depends on input order:\n%s\nvs\n%s", j1, j2)
	}
}

// TestRegressionsMetrics: Regressions over a real archive feeds the
// triage_* counters (scan count and flagged total).
func TestRegressionsMetrics(t *testing.T) {
	arch, err := archive.Open(filepath.Join(t.TempDir(), "wh"))
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	// One steady signature across 10 windows, one newest-window-only.
	for win := uint64(0); win < 10; win++ {
		s := &snap.Snap{Host: "h", Process: "app", Reason: "exception SIGSEGV",
			Time: win*W + 5, PID: 1, RuntimeID: win}
		if _, err := arch.Ingest(s, archive.Signature{ID: "aaaa000000000000", Title: "steady", Weak: true}); err != nil {
			t.Fatal(err)
		}
	}
	s := &snap.Snap{Host: "h", Process: "app", Reason: "exception SIGSEGV",
		Time: 9*W + 50, PID: 2}
	if _, err := arch.Ingest(s, archive.Signature{ID: "bbbb000000000000", Title: "fresh", Weak: true}); err != nil {
		t.Fatal(err)
	}

	an := New(arch, nil, Config{}, telemetry.New())
	rep := an.Regressions()
	if got := classOf(t, rep, "bbbb000000000000"); got != ClassNew {
		t.Errorf("newest-window signature = %s, want new", got)
	}
	if got := classOf(t, rep, "aaaa000000000000"); got.Flagged() {
		t.Errorf("steady signature flagged %s", got)
	}
	if an.met.scans.Load() != 1 {
		t.Errorf("triage_scans_total = %d, want 1", an.met.scans.Load())
	}
	if an.met.flagged.Load() != 1 {
		t.Errorf("triage_flagged_total = %d, want 1", an.met.flagged.Load())
	}
}

// TestRatesReport: the per-signature window view agrees with the
// classifier and resolves prefixes.
func TestRatesReport(t *testing.T) {
	arch, err := archive.Open(filepath.Join(t.TempDir(), "wh"))
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	for win := uint64(0); win < 4; win++ {
		s := &snap.Snap{Host: "h", Process: "app", Reason: "exception SIGSEGV",
			Time: win * W, PID: int(win)}
		if _, err := arch.Ingest(s, archive.Signature{ID: "feedface00000000", Title: "t", Weak: true}); err != nil {
			t.Fatal(err)
		}
	}
	an := New(arch, nil, Config{}, nil)
	rr, err := an.Rates("feed")
	if err != nil {
		t.Fatal(err)
	}
	if rr.Assessment.Sig != "feedface00000000" || len(rr.Windows) != 4 {
		t.Errorf("rates = %+v, want 4 windows for feedface", rr)
	}
	if _, err := an.Rates("nope"); err == nil {
		t.Error("unknown signature prefix did not error")
	}
}
