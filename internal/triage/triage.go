// Package triage is the fleet-health analysis layer over the snap
// warehouse: given an archive whose index carries crash-rate windows
// (internal/archive), it answers the three questions an operator asks
// before diving into any one trace — what is *new*, what is
// *spiking*, and which buckets are really the *same fault* wearing
// different wrap points or interleavings.
//
// Everything here is deterministic given the index. The classifier
// (classify.go) is a pure function of the buckets and the newest snap
// time; the similarity clustering (cluster.go) compares fault-directed
// views extracted by the deterministic reconstruction pipeline. The
// same warehouse therefore triages identically whether queried
// through `tbstore` on the archive directory or through a tbcollectd
// daemon's /v1/regressions — the property tools/triagecheck gates on.
package triage

import (
	"fmt"
	"sync"
	"time"

	"traceback/internal/archive"
	"traceback/internal/recon"
	"traceback/internal/snap"
	"traceback/internal/telemetry"
)

// Config parameterizes the classifier and the clustering threshold.
// The zero value means "use the default" for every field; windows are
// in archive.WindowWidth units.
type Config struct {
	// RecentWindows is the width R of the "now" span: the newest R
	// rate windows, inclusive of the window holding the newest snap
	// (default 2).
	RecentWindows int
	// BaselineWindows is the width B of the trailing baseline span
	// immediately before the recent span (default 6).
	BaselineWindows int
	// SpikeFactor flags a signature as spiking when its recent
	// per-window rate reaches SpikeFactor × its baseline rate
	// (default 4).
	SpikeFactor float64
	// MinRecent is the minimum occurrence count inside the recent
	// span before a spike verdict is possible — a single crash is
	// never a spike (default 3).
	MinRecent uint64
	// NewWindows: a signature first seen within the newest N windows
	// is new (default 2).
	NewWindows int
	// QuietWindows: a signature with no occurrence in the newest N
	// windows is quiet (default 6).
	QuietWindows int
	// ClusterDistance is the maximum normalized fault-view distance
	// at which two buckets merge into one cluster (default 0.25).
	ClusterDistance float64
}

// Defaults returns the default thresholds.
func Defaults() Config { return Config{}.withDefaults() }

func (c Config) withDefaults() Config {
	if c.RecentWindows <= 0 {
		c.RecentWindows = 2
	}
	if c.BaselineWindows <= 0 {
		c.BaselineWindows = 6
	}
	if c.SpikeFactor <= 0 {
		c.SpikeFactor = 4
	}
	if c.MinRecent == 0 {
		c.MinRecent = 3
	}
	if c.NewWindows <= 0 {
		c.NewWindows = 2
	}
	if c.QuietWindows <= 0 {
		c.QuietWindows = 6
	}
	if c.ClusterDistance <= 0 {
		c.ClusterDistance = 0.25
	}
	return c
}

// Warehouse is the index surface triage analyzes: the bucket list in
// canonical order, prefix resolution, the newest snap time, and
// exemplar retrieval. *archive.Archive is the single-node
// implementation; the fan-out gate (internal/shard/gate) satisfies it
// with merged shard state, so the same analyzer triages a whole fleet.
type Warehouse interface {
	Buckets() []archive.Bucket
	Bucket(sigPrefix string) (archive.Bucket, error)
	NewestTime() uint64
	LoadSnap(sum string) (*snap.Snap, error)
}

var _ Warehouse = (*archive.Archive)(nil)

// Analyzer computes triage views over one warehouse, caching the
// expensive parts (exemplar fault views, pairwise distances) across
// queries. Safe for concurrent use.
type Analyzer struct {
	arch Warehouse
	maps recon.MapResolver
	cfg  Config

	reg *telemetry.Registry
	met metrics

	mu    sync.Mutex
	views map[string]*viewEntry // bucket sig → cached fault view
	dists map[string]float64    // "repA|repB" → normalized distance
}

type metrics struct {
	scans         *telemetry.Counter
	flagged       *telemetry.Counter
	clusterBuilds *telemetry.Counter
	exemplars     *telemetry.Counter
	distHits      *telemetry.Counter
	distMisses    *telemetry.Counter
	scanNanos     *telemetry.Histogram
	clusterNanos  *telemetry.Histogram
}

// New builds an analyzer over a warehouse (a single-node
// *archive.Archive or a fleet-merging gate). maps resolves the
// mapfiles exemplar reconstruction needs; nil disables clustering by
// fault view (every bucket becomes its own cluster). reg receives the
// triage_* metrics (nil: a private registry).
func New(arch Warehouse, maps recon.MapResolver, cfg Config, reg *telemetry.Registry) *Analyzer {
	if reg == nil {
		reg = telemetry.New()
	}
	a := &Analyzer{
		arch:  arch,
		maps:  maps,
		cfg:   cfg.withDefaults(),
		reg:   reg,
		views: map[string]*viewEntry{},
		dists: map[string]float64{},
	}
	a.met = metrics{
		scans:         reg.Counter("triage_scans_total", "regression classification scans executed"),
		flagged:       reg.Counter("triage_flagged_total", "signatures flagged new or spiking across scans"),
		clusterBuilds: reg.Counter("triage_cluster_builds_total", "similarity clusterings computed"),
		exemplars:     reg.Counter("triage_exemplar_recons_total", "bucket exemplars reconstructed for clustering"),
		distHits:      reg.Counter("triage_dist_cache_hits_total", "pairwise distances served from cache"),
		distMisses:    reg.Counter("triage_dist_cache_misses_total", "pairwise distances computed"),
		scanNanos:     reg.Histogram("triage_scan_nanos", "per-scan classification latency (ns)", telemetry.DurationBuckets()),
		clusterNanos:  reg.Histogram("triage_cluster_nanos", "per-clustering latency (ns)", telemetry.DurationBuckets()),
	}
	return a
}

// Metrics returns the analyzer's registry.
func (a *Analyzer) Metrics() *telemetry.Registry { return a.reg }

// Config returns the thresholds in effect (defaults applied).
func (a *Analyzer) Config() Config { return a.cfg }

// Regressions classifies every bucket against the archive's newest
// snap time. The result is deterministic given the index.
func (a *Analyzer) Regressions() *Report {
	t0 := time.Now()
	defer func() { a.met.scanNanos.Observe(uint64(time.Since(t0))) }()
	rep := Classify(a.arch.Buckets(), a.arch.NewestTime(), a.cfg)
	a.met.scans.Inc()
	a.met.flagged.Add(uint64(len(rep.Flagged())))
	return rep
}

// Rates reports one signature's crash-rate windows and verdict. The
// prefix is resolved like `tbstore show` resolves bucket signatures.
func (a *Analyzer) Rates(sigPrefix string) (*RateReport, error) {
	b, err := a.arch.Bucket(sigPrefix)
	if err != nil {
		return nil, err
	}
	now := a.arch.NewestTime()
	rep := Classify([]archive.Bucket{b}, now, a.cfg)
	return &RateReport{
		V: 1, Now: now, Window: archive.WindowWidth,
		Windows:    b.Windows,
		Assessment: rep.Assessments[0],
	}, nil
}

// RateReport is one signature's windowed crash-rate view.
type RateReport struct {
	V      int                  `json:"v"`
	Now    uint64               `json:"now"`
	Window uint64               `json:"window"`
	Windows []archive.RateWindow `json:"windows"`
	Assessment Assessment       `json:"assessment"`
}

func (r *RateReport) String() string {
	return fmt.Sprintf("%s %s: %d window(s), recent %.2f/win vs base %.2f/win",
		r.Assessment.Sig, r.Assessment.Class, len(r.Windows),
		r.Assessment.RecentRate, r.Assessment.BaseRate)
}
