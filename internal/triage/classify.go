// The regression classifier: a pure, deterministic function from
// (buckets, newest snap time, thresholds) to a verdict per signature.
// All arithmetic is in whole rate windows (archive.WindowWidth
// cycles), anchored at the window holding the newest snap the
// warehouse has seen — the system has no wall clock, and using the
// index's own horizon keeps the verdicts identical across journal
// replay, -jobs widths, and the wire path.
package triage

import (
	"sort"

	"traceback/internal/archive"
)

// Class is a signature's triage verdict.
type Class string

const (
	// ClassNew: first seen within the newest NewWindows windows — a
	// fault the fleet has not produced before (inside the horizon).
	ClassNew Class = "new"
	// ClassSpiking: the recent per-window rate exceeds SpikeFactor ×
	// the trailing baseline rate with at least MinRecent occurrences.
	ClassSpiking Class = "spiking"
	// ClassSteady: present both recently and in the baseline, with no
	// significant rate change.
	ClassSteady Class = "steady"
	// ClassQuiet: no occurrence within the newest QuietWindows
	// windows.
	ClassQuiet Class = "quiet"
)

// rank orders classes by triage urgency (for deterministic output).
func (c Class) rank() int {
	switch c {
	case ClassNew:
		return 0
	case ClassSpiking:
		return 1
	case ClassSteady:
		return 2
	default:
		return 3
	}
}

// Flagged reports whether the class demands operator attention.
func (c Class) Flagged() bool { return c == ClassNew || c == ClassSpiking }

// Assessment is one signature's verdict with the numbers behind it.
type Assessment struct {
	Sig   string `json:"sig"`
	Title string `json:"title"`
	Weak  bool   `json:"weak,omitempty"`
	Class Class  `json:"class"`
	// Count is the bucket's all-time occurrence total.
	Count uint64 `json:"count"`
	// Recent counts occurrences inside the recent span.
	Recent uint64 `json:"recent"`
	// RecentRate and BaseRate are per-window occurrence rates over
	// the recent and baseline spans.
	RecentRate float64 `json:"recentRate"`
	BaseRate   float64 `json:"baseRate"`
	FirstSeen  uint64  `json:"firstSeen"`
	LastSeen   uint64  `json:"lastSeen"`
}

// Report is one classification scan over every bucket.
type Report struct {
	V int `json:"v"`
	// Now is the newest snap time in the index — the deterministic
	// anchor the spans were measured from.
	Now uint64 `json:"now"`
	// Window echoes archive.WindowWidth so clients can interpret the
	// spans.
	Window uint64 `json:"window"`
	// Assessments is every signature's verdict, most urgent first
	// (class rank, then recent count desc, then signature asc — fully
	// deterministic).
	Assessments []Assessment `json:"assessments"`
}

// Flagged returns the new and spiking assessments, in report order.
func (r *Report) Flagged() []Assessment {
	var out []Assessment
	for _, a := range r.Assessments {
		if a.Class.Flagged() {
			out = append(out, a)
		}
	}
	return out
}

// Classify runs the classifier over a bucket set against the given
// newest snap time (normally archive.NewestTime()). It is a pure
// function: the same inputs always produce the same report.
func Classify(buckets []archive.Bucket, now uint64, cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{V: 1, Now: now, Window: archive.WindowWidth}
	nowWin := now / archive.WindowWidth
	for i := range buckets {
		rep.Assessments = append(rep.Assessments, assess(&buckets[i], nowWin, cfg))
	}
	sort.Slice(rep.Assessments, func(i, j int) bool {
		ai, aj := &rep.Assessments[i], &rep.Assessments[j]
		if ri, rj := ai.Class.rank(), aj.Class.rank(); ri != rj {
			return ri < rj
		}
		if ai.Recent != aj.Recent {
			return ai.Recent > aj.Recent
		}
		return ai.Sig < aj.Sig
	})
	return rep
}

// assess classifies one bucket. nowWin is the newest window index.
func assess(b *archive.Bucket, nowWin uint64, cfg Config) Assessment {
	a := Assessment{
		Sig: b.Sig, Title: b.Title, Weak: b.Weak,
		Count: b.Count, FirstSeen: b.FirstSeen, LastSeen: b.LastSeen,
	}
	w := archive.WindowWidth
	firstWin := b.FirstSeen / w
	lastWin := b.LastSeen / w
	R := uint64(cfg.RecentWindows)
	B := uint64(cfg.BaselineWindows)

	// Recent span: the newest R windows, indexes (nowWin-R, nowWin].
	recentFrom := uint64(0)
	if nowWin+1 > R {
		recentFrom = (nowWin + 1 - R) * w
	}
	a.Recent = b.WindowCount(recentFrom, nowWin*w)
	a.RecentRate = float64(a.Recent) / float64(R)

	// Baseline span: the B windows before the recent span, indexes
	// (nowWin-R-B, nowWin-R]. The effective divisor shrinks when the
	// bucket is younger than the span, so a young-but-steady bucket's
	// baseline is not diluted toward zero.
	var base uint64
	effB := uint64(0)
	if nowWin+1 > R {
		baseTo := nowWin - R // newest baseline window index
		baseFromWin := uint64(0)
		if baseTo+1 > B {
			baseFromWin = baseTo + 1 - B
		}
		base = b.WindowCount(baseFromWin*w, baseTo*w)
		effB = baseTo - baseFromWin + 1
		if firstWin > baseFromWin {
			if firstWin > baseTo {
				effB = 1
			} else {
				effB = baseTo - firstWin + 1
			}
		}
	}
	if effB == 0 {
		effB = 1
	}
	a.BaseRate = float64(base) / float64(effB)

	switch {
	case lastWin+uint64(cfg.QuietWindows) <= nowWin:
		a.Class = ClassQuiet
	case firstWin+uint64(cfg.NewWindows) > nowWin:
		a.Class = ClassNew
	case a.Recent >= cfg.MinRecent && a.RecentRate >= cfg.SpikeFactor*a.BaseRate:
		a.Class = ClassSpiking
	default:
		a.Class = ClassSteady
	}
	return a
}
