// Crash signatures: a stable fingerprint of *which fault* a snap
// captured, so that duplicate crashes from different hosts, processes,
// and days land in the same warehouse bucket. The fingerprint is
// computed from the reconstructed fault-directed view (paper §4.3.3):
// the faulting module's checksum, the block path of line events
// leading into the fault, and the top of the call hierarchy above it.
// Reconstruction is deterministic (the parallel pipeline is
// byte-identical to the sequential oracle), so the same crash
// fingerprints identically no matter how or where it was ingested.
package archive

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"traceback/internal/recon"
	"traceback/internal/snap"
)

// sigPathLen is how many line events leading into the fault feed the
// fingerprint — long enough to separate faults reached through
// different block paths, short enough that loop-count jitter far from
// the fault cannot split a bucket (Repeat counts are excluded for the
// same reason).
const sigPathLen = 16

// sigFrameLen caps the call-hierarchy frames hashed.
const sigFrameLen = 8

// Frame is one call-hierarchy entry of a signature, outermost last.
type Frame struct {
	Module string `json:"module"`
	File   string `json:"file"`
	Line   uint32 `json:"line"`
	Func   string `json:"func,omitempty"`
}

func (f Frame) String() string {
	return fmt.Sprintf("%s %s:%d %s", f.Module, f.File, f.Line, f.Func)
}

// Signature is a computed crash fingerprint. ID is the bucket key.
type Signature struct {
	ID    string  `json:"id"`
	Title string  `json:"title"`
	// Weak marks a metadata-only fallback fingerprint, used when the
	// snap could not be reconstructed (mapfiles missing or corrupt).
	Weak   bool    `json:"weak,omitempty"`
	Frames []Frame `json:"frames,omitempty"`
}

// reasonKind reduces a snap's Reason ("exception SIGSEGV", "group
// fault in petstore", ...) to its trigger class, the part that is
// stable across occurrences of the same fault.
func reasonKind(reason string) string {
	if i := strings.IndexByte(reason, ' '); i >= 0 {
		return reason[:i]
	}
	return reason
}

// FaultView is the fault-directed sequence a signature hashes and the
// triage clustering distance compares: the call hierarchy above the
// fault (innermost first) and the block path of line events leading
// into it (fault first, Repeat counts excluded).
type FaultView struct {
	Frames []Frame
	// Path entries are "module:file:line" block identities, newest
	// (faulting) first.
	Path []string
}

// FaultViewOf extracts the fault-directed view from a reconstructed
// snap. The thread chosen is the trigger thread when the snap names
// one, else the first faulted thread, else the first thread with
// history — the same priority the fault-directed display uses. ok is
// false when no line history exists (weak-signature territory).
func FaultViewOf(pt *recon.ProcessTrace) (FaultView, bool) {
	t := pickThread(pt)
	if t == nil || len(t.Events) == 0 {
		return FaultView{}, false
	}

	v := recon.NewView(t)
	// Walk back to the newest line event — the faulting line when the
	// history ends in an exception record.
	for v.Current() != nil && v.Current().Kind != recon.EvLine {
		if !v.StepBack() {
			break
		}
	}
	cur := v.Current()
	if cur == nil || cur.Kind != recon.EvLine {
		return FaultView{}, false
	}

	// Call hierarchy above the fault: step back out repeatedly, taking
	// the caller's line each time.
	frames := []Frame{frameOf(cur)}
	for len(frames) < sigFrameLen {
		if !v.StepBackOut() {
			break
		}
		if e := v.Current(); e != nil && e.Kind == recon.EvLine {
			frames = append(frames, frameOf(e))
		}
	}

	// Block path into the fault: the last sigPathLen line events.
	var path []string
	for i := len(t.Events) - 1; i >= 0 && len(path) < sigPathLen; i-- {
		e := &t.Events[i]
		if e.Kind == recon.EvLine {
			path = append(path, fmt.Sprintf("%s:%s:%d", e.Module, e.File, e.Line))
		}
	}
	return FaultView{Frames: frames, Path: path}, true
}

// FromTrace fingerprints a reconstructed snap from its fault-directed
// view, falling back to the weak metadata signature when the snap has
// no line history.
func FromTrace(pt *recon.ProcessTrace) Signature {
	s := pt.Snap
	fv, ok := FaultViewOf(pt)
	if !ok {
		return weakSignature(s)
	}
	cur := fv.Frames[0]

	h := sha256.New()
	fmt.Fprintf(h, "kind=%s signal=%d\n", reasonKind(s.Reason), s.Signal)
	fmt.Fprintf(h, "module=%s checksum=%s\n", cur.Module, checksumOf(s, cur.Module))
	for _, p := range fv.Path {
		fmt.Fprintf(h, "path %s\n", p)
	}
	for _, f := range fv.Frames {
		fmt.Fprintf(h, "frame %s\n", f)
	}

	title := fmt.Sprintf("%s at %s:%d", reasonKind(s.Reason), cur.File, cur.Line)
	if cur.Func != "" {
		title += " in " + cur.Func
	}
	title += " (" + cur.Module + ")"
	return Signature{
		ID:     hex.EncodeToString(h.Sum(nil))[:16],
		Title:  title,
		Frames: fv.Frames,
	}
}

// SignSnap is the single signing funnel shared by every ingest path —
// `tbstore ingest`, the tbcollectd upload handler, and the service's
// auto-archive: reconstruct s on maps (pass a *recon.MapCache to share
// parses across snaps) and fingerprint the fault-directed view,
// degrading to the weak metadata signature when reconstruction is
// impossible (maps nil or missing the snap's modules). Reconstruction
// is deterministic, so a snap signs identically no matter which path
// ingested it — the property the loopback parity gates assert byte
// for byte.
func SignSnap(s *snap.Snap, maps recon.MapResolver) Signature {
	if maps != nil {
		if pt, err := recon.Reconstruct(s, maps); err == nil {
			return FromTrace(pt)
		}
	}
	return weakSignature(s)
}

// weakSignature buckets by snap metadata alone: trigger class, signal,
// and the loaded-module checksum set. It cannot separate two distinct
// faults with identical metadata, but it keeps un-reconstructable
// snaps grouped rather than lost.
func weakSignature(s *snap.Snap) Signature {
	sums := make([]string, 0, len(s.Modules))
	for _, mi := range s.Modules {
		sums = append(sums, mi.Checksum)
	}
	sort.Strings(sums)
	h := sha256.New()
	fmt.Fprintf(h, "weak kind=%s signal=%d proc=%s\n", reasonKind(s.Reason), s.Signal, s.Process)
	for _, sum := range sums {
		fmt.Fprintf(h, "module %s\n", sum)
	}
	return Signature{
		ID:    hex.EncodeToString(h.Sum(nil))[:16],
		Title: fmt.Sprintf("%s (%s, unreconstructed)", s.Reason, s.Process),
		Weak:  true,
	}
}

func pickThread(pt *recon.ProcessTrace) *recon.ThreadTrace {
	if pt.Snap.TriggerTID != 0 {
		if t, ok := pt.ThreadByTID(pt.Snap.TriggerTID); ok && len(t.Events) > 0 {
			return t
		}
	}
	for _, t := range pt.Threads {
		if t.Faulted && len(t.Events) > 0 {
			return t
		}
	}
	for _, t := range pt.Threads {
		if len(t.Events) > 0 {
			return t
		}
	}
	return nil
}

func frameOf(e *recon.Event) Frame {
	return Frame{Module: e.Module, File: e.File, Line: e.Line, Func: e.Func}
}

func checksumOf(s *snap.Snap, moduleName string) string {
	for _, mi := range s.Modules {
		if mi.Name == moduleName {
			return mi.Checksum
		}
	}
	return ""
}
