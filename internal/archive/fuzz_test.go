package archive

import (
	"bytes"
	"testing"
)

// FuzzArchiveIndex feeds arbitrary bytes to both warehouse decoders —
// the journal scanner (strict and crash-tolerant) and the index
// parser. Neither may panic. Any journal the strict decoder accepts
// must reduce to an index that encodes, re-decodes, and re-encodes to
// the same bytes (the reduction is the recovery path; it cannot be
// lossy over its own output), and the tolerant scanner must accept at
// least everything the strict one does.
func FuzzArchiveIndex(f *testing.F) {
	// Seed with the real shapes: journal lines as Ingest/GC write them,
	// a reduced index, and the torn/corrupt variants the decoders exist
	// to classify. These also live under testdata/fuzz/FuzzArchiveIndex
	// so `go test` replays them as regression inputs.
	ing := JournalRecord{
		V: formatVersion, Op: OpIngest,
		Sum: "8f2e77aea6370000", Sig: "ee2180a7c9368aee",
		Title: "exception at app.mc:14 in average (app)",
		Host:  "prod-host", Process: "app", Reason: "exception SIGFPE",
		Time: 4242, Bytes: 512,
	}
	line1, err := encodeJournal(&ing)
	if err != nil {
		f.Fatal(err)
	}
	ing2 := ing
	ing2.Sum, ing2.Host, ing2.Time = "0880a607c3790000", "host-b", 9000
	line2, err := encodeJournal(&ing2)
	if err != nil {
		f.Fatal(err)
	}
	gc := JournalRecord{V: formatVersion, Op: OpGC, Removed: []string{ing.Sum}}
	line3, err := encodeJournal(&gc)
	if err != nil {
		f.Fatal(err)
	}
	journal := append(append(append([]byte(nil), line1...), line2...), line3...)
	f.Add(journal)
	f.Add(line1)
	// Torn tail: the crash-mid-append footprint.
	f.Add(journal[:len(journal)-7])
	// The reduced index of that journal.
	idx, err := encodeIndex(reduceJournal([]JournalRecord{ing, ing2, gc}).index())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(idx)
	// Wrong version, unknown op, bare junk, empty.
	f.Add([]byte(`{"v":99,"op":"ingest","sum":"x","sig":"y"}` + "\n"))
	f.Add([]byte(`{"v":1,"op":"shred","sum":"x"}` + "\n"))
	f.Add([]byte(`{"v":1,"op":"gc"}` + "\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeIndex(data)

		strict, serr := DecodeJournal(bytes.NewReader(data))
		tolerant, goodLen, torn, terr := decodeJournalLines(bytes.NewReader(data), true)
		if goodLen < 0 || goodLen > int64(len(data)) {
			t.Fatalf("goodLen %d outside input [0,%d]", goodLen, len(data))
		}
		if torn && goodLen < int64(len(data)) && data[goodLen] == '\n' {
			t.Fatalf("torn journal's good prefix %d stops before a newline", goodLen)
		}
		if serr == nil {
			if terr != nil {
				t.Fatalf("strict decode accepted what tolerant rejected: %v", terr)
			}
			if !torn && len(tolerant) != len(strict) {
				t.Fatalf("tolerant dropped %d records from an untorn journal", len(strict)-len(tolerant))
			}

			// Reduction fixed point: reduce → encode → decode → encode
			// must be byte-stable.
			first, err := encodeIndex(reduceJournal(strict).index())
			if err != nil {
				t.Fatalf("valid journal fails to encode: %v", err)
			}
			parsed, err := DecodeIndex(first)
			if err != nil {
				t.Fatalf("encoded index fails to re-decode: %v", err)
			}
			second, err := encodeIndex(parsed)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("index encode is not a fixed point:\n%s\nvs\n%s", first, second)
			}
		}

		// Every record either scanner returns must re-encode as a valid
		// single journal line that parses back.
		for i := range tolerant {
			line, err := encodeJournal(&tolerant[i])
			if err != nil {
				t.Fatalf("accepted record %d fails to re-encode: %v", i, err)
			}
			back, err := DecodeJournal(bytes.NewReader(line))
			if err != nil || len(back) != 1 {
				t.Fatalf("re-encoded record %d fails to re-decode: %v", i, err)
			}
		}
	})
}
