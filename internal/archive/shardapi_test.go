package archive

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"testing"

	"traceback/internal/snap"
)

// TestOpenBlobStreamsStoredBytes: OpenBlob hands back the gzip blob
// exactly as stored (size and content), and refuses non-resident sums
// — including a GC'd blob whose file is already gone.
func TestOpenBlobStreamsStoredBytes(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	r, err := a.Ingest(mkSnap("h1", 1), sigFor("aa"))
	if err != nil {
		t.Fatal(err)
	}
	rc, size, err := a.OpenBlob(r.Sum)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	raw, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != size {
		t.Errorf("OpenBlob size = %d, stream yielded %d bytes", size, len(raw))
	}
	onDisk, err := os.ReadFile(a.blobPath(r.Sum))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, onDisk) {
		t.Error("OpenBlob stream differs from the stored blob file")
	}
	if _, err := gzip.NewReader(bytes.NewReader(raw)); err != nil {
		t.Fatalf("stream is not gzip: %v", err)
	}
	got, err := snap.LoadAuto(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("stream does not decode as a snap: %v", err)
	}
	sum, _, err := ChecksumSnap(got)
	if err != nil {
		t.Fatal(err)
	}
	if sum != r.Sum {
		t.Errorf("streamed snap re-checksums to %s, want %s", sum[:8], r.Sum[:8])
	}

	if _, _, err := a.OpenBlob("0000000000000000000000000000000000000000000000000000000000000000"); err == nil {
		t.Error("OpenBlob of an unknown sum succeeded")
	}
}

// TestIndexBytesOfUnionEqualsSingleNode: concatenating the journals of
// two archives that split one fleet reduces to byte-identical index
// bytes as the archive that ingested everything — the pure-fold
// property the sharded warehouse is built on.
func TestIndexBytesOfUnionEqualsSingleNode(t *testing.T) {
	single, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	parts := make([]*Archive, 2)
	for i := range parts {
		p, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		parts[i] = p
	}

	for n := 0; n < 12; n++ {
		s := mkSnap("h1", n)
		sig := sigFor([]string{"aa", "bb", "cc"}[n%3])
		if _, err := single.Ingest(s, sig); err != nil {
			t.Fatal(err)
		}
		if _, err := parts[n%2].Ingest(s, sig); err != nil {
			t.Fatal(err)
		}
	}

	var union []JournalRecord
	for _, p := range parts {
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(p.JournalPath())
		if err != nil {
			t.Fatal(err)
		}
		recs, err := DecodeJournal(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		union = append(union, recs...)
	}

	got, err := IndexBytesOf(union)
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.IndexBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("union reduction differs from single-node index:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
