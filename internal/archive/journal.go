// The warehouse's durability story: an append-only journal of ingest
// and GC events (the system of record, one JSON object per line,
// written with O_APPEND single-write appends) and an index file that
// is a pure, deterministic reduction of the journal. Opening an
// archive replays the journal; the index file exists for external
// inspection and as a cross-check (`tbstore`'s rebuild verification
// re-reduces the journal and compares bytes). Both decoders are
// fuzzed (FuzzArchiveIndex) and return wrapped, inspectable errors.
package archive

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Journal/index format version. A bump means the reduction rules
// changed and old indexes must be rebuilt from their journal.
const formatVersion = 1

// Journal error classes, matchable with errors.Is.
var (
	ErrJournalSyntax  = errors.New("archive: malformed journal record")
	ErrJournalVersion = errors.New("archive: unsupported journal version")
	ErrIndexSyntax    = errors.New("archive: malformed index")
)

// JournalOp enumerates journal record kinds.
type JournalOp string

const (
	OpIngest JournalOp = "ingest"
	OpGC     JournalOp = "gc"
)

// JournalRecord is one journal line. Ingest records carry the blob
// identity and the bucket-relevant snap metadata; GC records list the
// blob checksums removed so replay reproduces the removal exactly.
type JournalRecord struct {
	V   int       `json:"v"`
	Op  JournalOp `json:"op"`
	Sum string    `json:"sum,omitempty"` // blob checksum (ingest)

	// Bucket identity (ingest).
	Sig   string `json:"sig,omitempty"`
	Title string `json:"title,omitempty"`
	Weak  bool   `json:"weak,omitempty"`

	// Snap metadata (ingest).
	Host    string `json:"host,omitempty"`
	Process string `json:"proc,omitempty"`
	Reason  string `json:"reason,omitempty"`
	Time    uint64 `json:"time,omitempty"`
	Bytes   int64  `json:"bytes,omitempty"` // stored blob size (gzip)

	// Removed blob checksums (gc).
	Removed []string `json:"removed,omitempty"`
}

func (r *JournalRecord) validate() error {
	if r.V != formatVersion {
		return fmt.Errorf("%w: v=%d (want %d)", ErrJournalVersion, r.V, formatVersion)
	}
	switch r.Op {
	case OpIngest:
		if r.Sum == "" || r.Sig == "" {
			return fmt.Errorf("%w: ingest record missing sum or sig", ErrJournalSyntax)
		}
	case OpGC:
		if len(r.Removed) == 0 {
			return fmt.Errorf("%w: gc record removes nothing", ErrJournalSyntax)
		}
	default:
		return fmt.Errorf("%w: unknown op %q", ErrJournalSyntax, r.Op)
	}
	return nil
}

// encodeJournal renders one record as a single journal line
// (newline-terminated, no internal newlines — json.Marshal escapes
// them), so an append is one write.
func encodeJournal(r *JournalRecord) ([]byte, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	b, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeJournal parses a complete journal stream. Every line must be
// a valid record; errors identify the offending line number and wrap
// ErrJournalSyntax / ErrJournalVersion for errors.Is dispatch.
func DecodeJournal(r io.Reader) ([]JournalRecord, error) {
	recs, _, _, err := decodeJournalLines(r, false)
	return recs, err
}

// decodeJournalLines is the shared scanner. With tolerateTail set, an
// unterminated final line (the footprint of a crash mid-append under
// O_APPEND) is dropped rather than rejected; the returned bool
// reports whether that happened. goodLen is the byte length of the
// newline-terminated prefix — the offset the journal file must be
// truncated to before appending again, so the next record does not
// glue onto the torn tail.
func decodeJournalLines(r io.Reader, tolerateTail bool) (recs []JournalRecord, goodLen int64, torn bool, err error) {
	br := bufio.NewReader(r)
	line := 0
	for {
		raw, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return recs, goodLen, false, fmt.Errorf("archive: journal read: %w", rerr)
		}
		if len(raw) > 0 {
			line++
			complete := raw[len(raw)-1] == '\n'
			if !complete && tolerateTail {
				return recs, goodLen, true, nil
			}
			trimmed := bytes.TrimSpace(raw)
			if len(trimmed) > 0 {
				var rec JournalRecord
				if jerr := json.Unmarshal(trimmed, &rec); jerr != nil {
					return recs, goodLen, false, fmt.Errorf("%w: line %d: %v", ErrJournalSyntax, line, jerr)
				}
				if verr := rec.validate(); verr != nil {
					return recs, goodLen, false, fmt.Errorf("archive: journal line %d: %w", line, verr)
				}
				recs = append(recs, rec)
			}
			if complete {
				goodLen += int64(len(raw))
			}
		}
		if rerr == io.EOF {
			return recs, goodLen, false, nil
		}
	}
}

// BlobRef is one stored snap within a bucket.
type BlobRef struct {
	Sum     string `json:"sum"`
	Bytes   int64  `json:"bytes"`
	Host    string `json:"host"`
	Process string `json:"proc"`
	Reason  string `json:"reason"`
	Time    uint64 `json:"time"`
}

// Bucket aggregates every occurrence of one crash signature.
type Bucket struct {
	Sig   string `json:"sig"`
	Title string `json:"title"`
	Weak  bool   `json:"weak,omitempty"`
	// Count is the number of ingest events (occurrences), which can
	// exceed len(Snaps): identical snaps dedupe to one blob.
	Count     uint64   `json:"count"`
	FirstSeen uint64   `json:"firstSeen"`
	LastSeen  uint64   `json:"lastSeen"`
	Hosts     []string `json:"hosts"`
	// Windows is the bucket's crash-rate histogram: one entry per
	// WindowWidth-cycle window that saw an ingest, sorted by Start,
	// bounded to the WindowCap newest windows (see windows.go). Like
	// Count, it tallies ingest events, so duplicates count every
	// occurrence; unlike Snaps, GC never rewrites history here.
	Windows []RateWindow `json:"windows,omitempty"`
	// Rep is the representative blob: the earliest-seen snap (ties
	// broken by checksum), the one `tbstore show` reconstructs.
	Rep   string    `json:"rep,omitempty"`
	Snaps []BlobRef `json:"snaps,omitempty"`
}

// Index is the serialized reduction of the journal.
type Index struct {
	V       int      `json:"v"`
	Buckets []Bucket `json:"buckets"`
}

// DecodeIndex parses an index file.
func DecodeIndex(data []byte) (*Index, error) {
	var idx Index
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrIndexSyntax, err)
	}
	if idx.V != formatVersion {
		return nil, fmt.Errorf("%w: v=%d (want %d)", ErrIndexSyntax, idx.V, formatVersion)
	}
	for i := range idx.Buckets {
		if idx.Buckets[i].Sig == "" {
			return nil, fmt.Errorf("%w: bucket %d has no signature", ErrIndexSyntax, i)
		}
	}
	return &idx, nil
}

// state is the in-memory reduction the journal replays into. All
// ordering inside it is normalized (see normalize), which is what
// makes the index deterministic regardless of ingest concurrency.
type state struct {
	buckets map[string]*Bucket
	blobs   map[string]*BlobRef // sum → ref (one bucket owns each blob)
	owner   map[string]string   // sum → sig
	bytes   int64               // resident blob bytes
}

func newState() *state {
	return &state{
		buckets: map[string]*Bucket{},
		blobs:   map[string]*BlobRef{},
		owner:   map[string]string{},
	}
}

// apply folds one journal record into the state. newBucket reports an
// ingest that created its bucket.
func (st *state) apply(rec *JournalRecord) (newBucket bool) {
	switch rec.Op {
	case OpIngest:
		b, ok := st.buckets[rec.Sig]
		if !ok {
			b = &Bucket{
				Sig: rec.Sig, Title: rec.Title, Weak: rec.Weak,
				FirstSeen: rec.Time, LastSeen: rec.Time,
			}
			st.buckets[rec.Sig] = b
			newBucket = true
		}
		b.Count++
		if rec.Time < b.FirstSeen {
			b.FirstSeen = rec.Time
		}
		if rec.Time > b.LastSeen {
			b.LastSeen = rec.Time
		}
		b.Windows = addWindow(b.Windows, rec.Time)
		b.Hosts = insertSorted(b.Hosts, rec.Host)
		if _, dup := st.blobs[rec.Sum]; !dup {
			ref := BlobRef{
				Sum: rec.Sum, Bytes: rec.Bytes,
				Host: rec.Host, Process: rec.Process,
				Reason: rec.Reason, Time: rec.Time,
			}
			st.blobs[rec.Sum] = &ref
			st.owner[rec.Sum] = rec.Sig
			st.bytes += rec.Bytes
			b.Snaps = append(b.Snaps, ref)
			sortRefs(b.Snaps)
			b.Rep = b.Snaps[0].Sum
		}
	case OpGC:
		for _, sum := range rec.Removed {
			ref, ok := st.blobs[sum]
			if !ok {
				continue
			}
			st.bytes -= ref.Bytes
			delete(st.blobs, sum)
			sig := st.owner[sum]
			delete(st.owner, sum)
			b := st.buckets[sig]
			if b == nil {
				continue
			}
			for i := range b.Snaps {
				if b.Snaps[i].Sum == sum {
					b.Snaps = append(b.Snaps[:i], b.Snaps[i+1:]...)
					break
				}
			}
			// The bucket's history (count, seen range, hosts) survives
			// the eviction of its blobs; only Rep tracks what remains.
			if len(b.Snaps) > 0 {
				b.Rep = b.Snaps[0].Sum
			} else {
				b.Rep = ""
			}
		}
	}
	return newBucket
}

// index serializes the state in its canonical order: buckets by
// signature, hosts sorted, snaps by (time, sum), windows by start.
// Buckets are deep-copied so the caller can encode the result after
// releasing the archive lock.
func (st *state) index() *Index {
	idx := &Index{V: formatVersion, Buckets: make([]Bucket, 0, len(st.buckets))}
	for _, b := range st.buckets {
		idx.Buckets = append(idx.Buckets, cloneBucket(b))
	}
	sort.Slice(idx.Buckets, func(i, j int) bool { return idx.Buckets[i].Sig < idx.Buckets[j].Sig })
	return idx
}

// encodeIndex renders the canonical index bytes (indented JSON with a
// trailing newline). Two states with the same content encode
// identically — the property the journal-rebuild check relies on.
func encodeIndex(idx *Index) ([]byte, error) {
	b, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// IndexBytesOf reduces an arbitrary batch of journal records to
// canonical index bytes. The reduction is order-independent, so the
// concatenated journals of N shards reduce to exactly the bytes a
// single node ingesting the same events would produce — the
// byte-equivalence that tools/shardcheck gates the sharded warehouse
// on.
func IndexBytesOf(recs []JournalRecord) ([]byte, error) {
	return encodeIndex(reduceJournal(recs).index())
}

// reduceJournal replays records into a fresh state.
func reduceJournal(recs []JournalRecord) *state {
	st := newState()
	for i := range recs {
		st.apply(&recs[i])
	}
	return st
}

func sortRefs(refs []BlobRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Time != refs[j].Time {
			return refs[i].Time < refs[j].Time
		}
		return refs[i].Sum < refs[j].Sum
	})
}

func insertSorted(hosts []string, h string) []string {
	if h == "" {
		return hosts
	}
	i := sort.SearchStrings(hosts, h)
	if i < len(hosts) && hosts[i] == h {
		return hosts
	}
	hosts = append(hosts, "")
	copy(hosts[i+1:], hosts[i:])
	hosts[i] = h
	return hosts
}
