// Crash-rate windows: each bucket carries a time-bucketed occurrence
// histogram alongside its total count, so the triage layer
// (internal/triage) can tell a steady background fault from one that
// is new or spiking without re-reading the journal. Time is the
// snap's VM-cycle clock (the only clock the system has), chopped into
// fixed-width windows; a bucket retains its most recent WindowCap
// windows.
//
// The histogram is part of the index, so it must share the index's
// central property: the reduction is order-independent. That holds
// because the retained set is a pure function of the multiset of
// ingest times — window w survives iff w lies within WindowCap
// windows of the newest window the bucket ever saw — and a record is
// counted iff its window survives. Whether a stale record is dropped
// on arrival (the newest window was already known) or folded in and
// evicted later (the newest window arrived afterwards), the final
// windows are identical, so any -jobs width and any journal replay
// yield byte-identical indexes.
package archive

import "sort"

const (
	// WindowWidth is the rate-window span in snap-time cycles. The
	// example scenarios run 0.2–5M cycles, so 100k-cycle windows give
	// a fleet run tens of windows of resolution.
	WindowWidth uint64 = 100_000
	// WindowCap bounds the windows a bucket retains: occurrences older
	// than WindowCap windows behind the bucket's newest window fall
	// out of the histogram (the total Count still remembers them).
	WindowCap = 64
)

// RateWindow is one fixed-width time bucket of ingest occurrences.
// Start is the window's inclusive start time, a multiple of
// WindowWidth; Count is how many ingest events landed in
// [Start, Start+WindowWidth).
type RateWindow struct {
	Start uint64 `json:"start"`
	Count uint64 `json:"count"`
}

// windowStart floors a snap time to its window's start.
func windowStart(t uint64) uint64 { return t - t%WindowWidth }

// horizonStart is the oldest window start still retained given the
// newest window start seen — windows strictly older than
// newest-(WindowCap-1) windows are evicted.
func horizonStart(newest uint64) uint64 {
	span := uint64(WindowCap-1) * WindowWidth
	if newest < span {
		return 0
	}
	return newest - span
}

// addWindow folds one ingest occurrence at time t into a sorted
// window list, evicting anything that falls off the horizon. The
// result depends only on the multiset of times folded in, never on
// their order (see the package comment of this file).
func addWindow(ws []RateWindow, t uint64) []RateWindow {
	w := windowStart(t)
	newest := w
	if n := len(ws); n > 0 && ws[n-1].Start > newest {
		newest = ws[n-1].Start
	}
	if w >= horizonStart(newest) {
		i := sort.Search(len(ws), func(i int) bool { return ws[i].Start >= w })
		if i < len(ws) && ws[i].Start == w {
			ws[i].Count++
		} else {
			ws = append(ws, RateWindow{})
			copy(ws[i+1:], ws[i:])
			ws[i] = RateWindow{Start: w, Count: 1}
		}
	}
	// Evict from the old end; the list is sorted by Start.
	h := horizonStart(newest)
	drop := 0
	for drop < len(ws) && ws[drop].Start < h {
		drop++
	}
	if drop > 0 {
		ws = append(ws[:0], ws[drop:]...)
	}
	return ws
}

// WindowCount sums a bucket's occurrences in windows whose start lies
// in [from, to] (inclusive on both ends, in window-start units).
func (b *Bucket) WindowCount(from, to uint64) uint64 {
	var n uint64
	for _, w := range b.Windows {
		if w.Start >= from && w.Start <= to {
			n += w.Count
		}
	}
	return n
}

// NewestTime reports the newest snap time any bucket has seen — the
// deterministic "now" every rate and regression computation measures
// against (0 when the archive is empty).
func (a *Archive) NewestTime() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var newest uint64
	for _, b := range a.st.buckets {
		if b.LastSeen > newest {
			newest = b.LastSeen
		}
	}
	return newest
}
