package archive

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"traceback/internal/snap"
	"traceback/internal/telemetry"
)

// mkSnap builds a distinct synthetic snap; the same (host, n) always
// yields byte-identical content, so dedup is testable.
func mkSnap(host string, n int) *snap.Snap {
	return &snap.Snap{
		Host: host, Process: "app", PID: 100 + n, RuntimeID: uint64(n),
		Reason: "exception SIGSEGV", Signal: 11, Time: uint64(1000 * (n + 1)),
		Modules: []snap.ModuleInfo{{Name: "app", Checksum: fmt.Sprintf("c%02d", n), DAGCount: 1}},
		Buffers: []snap.BufferDump{{Kind: snap.BufMain, OwnerTID: 1, LastKnown: true,
			SubWords: 4, Raw: []byte{byte(n), 0, 0, 0}}},
	}
}

func sigFor(id string) Signature {
	return Signature{ID: id, Title: "bucket " + id, Weak: true}
}

func TestIngestDedupOneBlobTwoCounts(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	s := mkSnap("h1", 1)
	r1, err := a.Ingest(s, sigFor("aa"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Dup || !r1.NewBucket {
		t.Fatalf("first ingest: %+v, want stored + new bucket", r1)
	}
	r2, err := a.Ingest(s, sigFor("aa"))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Dup || r2.NewBucket {
		t.Fatalf("second ingest: %+v, want dup, no new bucket", r2)
	}
	if r1.Sum != r2.Sum {
		t.Fatalf("content address changed: %s vs %s", r1.Sum, r2.Sum)
	}

	if got := a.NumBlobs(); got != 1 {
		t.Errorf("NumBlobs = %d, want 1", got)
	}
	b, err := a.Bucket("aa")
	if err != nil {
		t.Fatal(err)
	}
	if b.Count != 2 || len(b.Snaps) != 1 || b.Rep != r1.Sum {
		t.Errorf("bucket = %+v, want count 2, one blob, rep %s", b, r1.Sum[:8])
	}

	// The blob round-trips to an identical snap.
	got, err := a.LoadSnap(r1.Sum)
	if err != nil {
		t.Fatal(err)
	}
	sum2, _, err := ChecksumSnap(got)
	if err != nil {
		t.Fatal(err)
	}
	if sum2 != r1.Sum {
		t.Errorf("reloaded snap re-checksums to %s, want %s", sum2[:8], r1.Sum[:8])
	}
}

func TestBucketAggregation(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Three occurrences of one fault from two hosts, one of another.
	for _, in := range []struct {
		s   *snap.Snap
		sig string
	}{
		{mkSnap("host-b", 1), "aa"},
		{mkSnap("host-a", 2), "aa"},
		{mkSnap("host-a", 2), "aa"}, // identical → dedup
		{mkSnap("host-c", 3), "bb"},
	} {
		if _, err := a.Ingest(in.s, sigFor(in.sig)); err != nil {
			t.Fatal(err)
		}
	}

	buckets := a.Buckets()
	if len(buckets) != 2 {
		t.Fatalf("%d buckets, want 2", len(buckets))
	}
	// Sorted by count desc: "aa" (3) first.
	if buckets[0].Sig != "aa" || buckets[0].Count != 3 {
		t.Errorf("top bucket = %s x%d, want aa x3", buckets[0].Sig, buckets[0].Count)
	}
	if got := strings.Join(buckets[0].Hosts, ","); got != "host-a,host-b" {
		t.Errorf("hosts = %q, want sorted unique host-a,host-b", got)
	}
	if buckets[0].FirstSeen != 2000 || buckets[0].LastSeen != 3000 {
		t.Errorf("seen range = %d..%d, want 2000..3000", buckets[0].FirstSeen, buckets[0].LastSeen)
	}
	// Rep is the earliest-seen blob (host-b at 2000 beats host-a at 3000).
	if len(buckets[0].Snaps) != 2 || buckets[0].Rep != buckets[0].Snaps[0].Sum {
		t.Errorf("rep %s is not the oldest blob", buckets[0].Rep[:8])
	}

	// Prefix resolution.
	if _, err := a.Bucket("a"); err != nil {
		t.Errorf("prefix a: %v", err)
	}
	if _, err := a.Bucket("zz"); err == nil {
		t.Error("unknown bucket resolved")
	}
}

// TestConcurrentIngestMatchesSequential is the warehouse's core
// determinism guarantee: 16-way concurrent ingest of a batch (with
// duplicates) produces byte-identical index state to one-by-one
// ingest, and exactly one blob per distinct snap.
func TestConcurrentIngestMatchesSequential(t *testing.T) {
	batch := make([]*snap.Snap, 0, 64)
	sigs := make([]Signature, 0, 64)
	for i := 0; i < 64; i++ {
		n := i % 8 // 8 distinct snaps, each 8 times
		batch = append(batch, mkSnap("h", n))
		sigs = append(sigs, sigFor(fmt.Sprintf("s%d", n%4))) // 4 buckets
	}

	seq, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	for i, s := range batch {
		if _, err := seq.Ingest(s, sigs[i]); err != nil {
			t.Fatal(err)
		}
	}

	conc, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer conc.Close()
	var wg sync.WaitGroup
	sem := make(chan struct{}, 16)
	errs := make([]error, len(batch))
	for i := range batch {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			_, errs[i] = conc.Ingest(batch[i], sigs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	seqIdx, err := seq.IndexBytes()
	if err != nil {
		t.Fatal(err)
	}
	concIdx, err := conc.IndexBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqIdx, concIdx) {
		t.Errorf("concurrent index differs from sequential:\n--- seq ---\n%s\n--- conc ---\n%s", seqIdx, concIdx)
	}
	if got := conc.NumBlobs(); got != 8 {
		t.Errorf("NumBlobs = %d, want 8", got)
	}
}

// TestIngestRevalidatesStaleDedup pins the dedup-vs-GC interleaving
// deterministically: ensureBlob reports a dup (here forced through a
// pre-seeded completed flight entry, as if another ingest had just
// written the blob) but by the time the journal lock is taken the
// blob is neither in the state nor on disk — a GC sweep got between
// the two. Ingest must detect the stale hit and rewrite the blob
// before journaling a reference to it.
func TestIngestRevalidatesStaleDedup(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	s := mkSnap("h", 1)
	sum, _, err := ChecksumSnap(s)
	if err != nil {
		t.Fatal(err)
	}
	c := &flightCall{done: make(chan struct{}), size: 123}
	close(c.done)
	a.flight[sum] = c

	r, err := a.Ingest(s, sigFor("aa"))
	if err != nil {
		t.Fatal(err)
	}
	delete(a.flight, sum)
	if r.Dup {
		t.Error("stale dedup hit reported as dup; blob was gone")
	}
	if _, err := os.Stat(a.blobPath(sum)); err != nil {
		t.Errorf("blob not rewritten after stale dedup: %v", err)
	}
	if _, err := a.LoadSnap(sum); err != nil {
		t.Errorf("ingested snap unloadable: %v", err)
	}
}

// TestConcurrentIngestGCKeepsIndexResident hammers ingest of a small
// recurring snap set against sweeps that evict almost everything. An
// ingest can dedup onto a blob a concurrent sweep is condemning; the
// archive must resolve that race so the final index never references
// a blob that is gone from disk.
func TestConcurrentIngestGCKeepsIndexResident(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := a.Ingest(mkSnap("h", i%3), sigFor(fmt.Sprintf("s%d", i%3))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := a.GC(GCPolicy{MaxBlobs: 1}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	for _, b := range a.Buckets() {
		for _, ref := range b.Snaps {
			if _, err := os.Stat(a.blobPath(ref.Sum)); err != nil {
				t.Errorf("index references missing blob %s: %v", ref.Sum[:12], err)
			}
		}
	}
	live, err := a.IndexBytes()
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := a.RebuildIndexBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, rebuilt) {
		t.Error("journal rebuild differs from live index after ingest/gc races")
	}
}

func TestJournalRebuildAndReopen(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := a.Ingest(mkSnap("h", i), sigFor(fmt.Sprintf("s%d", i%3))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.GC(GCPolicy{MaxBlobs: 4}); err != nil {
		t.Fatal(err)
	}

	live, err := a.IndexBytes()
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := a.RebuildIndexBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, rebuilt) {
		t.Errorf("journal rebuild differs from live index:\n--- live ---\n%s\n--- rebuilt ---\n%s", live, rebuilt)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: replay must reproduce the same index; the flushed
	// index.json must already hold those bytes.
	onDisk, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, live) {
		t.Error("flushed index.json differs from live index bytes")
	}
	a2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	reopened, err := a2.IndexBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reopened, live) {
		t.Error("reopened index differs from pre-close index")
	}

	// A crash mid-append (unterminated trailing line) must not stop
	// the archive from opening; complete records all replay.
	j, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.WriteString(`{"v":1,"op":"ingest","sum":"deadbeef","sig":"s9"`); err != nil {
		t.Fatal(err)
	}
	j.Close()
	a3, err := Open(dir)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	tolerant, err := a3.IndexBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tolerant, live) {
		t.Error("torn journal tail changed the replayed index")
	}

	// The torn tail must be truncated away, not just skipped on replay:
	// the journal reopens with O_APPEND, so a surviving partial line
	// would glue onto the next ingest's record and leave the journal
	// permanently unparseable.
	if _, err := a3.Ingest(mkSnap("h", 9), sigFor("s9")); err != nil {
		t.Fatal(err)
	}
	afterCrash, err := a3.IndexBytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := a3.Close(); err != nil {
		t.Fatal(err)
	}
	a4, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after post-crash ingest: %v", err)
	}
	defer a4.Close()
	reopened2, err := a4.IndexBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reopened2, afterCrash) {
		t.Error("post-crash ingest lost on reopen")
	}
}

func TestGCPolicies(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var sums []string
	for i := 0; i < 6; i++ { // times 1000..6000
		r, err := a.Ingest(mkSnap("h", i), sigFor(fmt.Sprintf("s%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, r.Sum)
	}

	// Age: newest is 6000; MaxAge 3000 evicts times 1000 and 2000.
	res, err := a.GC(GCPolicy{MaxAge: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 2 {
		t.Fatalf("age gc removed %d, want 2", res.Removed)
	}
	if _, err := a.LoadSnap(sums[0]); err == nil {
		t.Error("evicted blob still loadable")
	}
	if _, err := a.LoadSnap(sums[5]); err != nil {
		t.Errorf("surviving blob unloadable: %v", err)
	}
	// Evicted buckets keep their history but lose their rep.
	b, err := a.Bucket("s0")
	if err != nil {
		t.Fatal(err)
	}
	if b.Count != 1 || b.Rep != "" || len(b.Snaps) != 0 {
		t.Errorf("evicted bucket = %+v, want count kept, rep cleared", b)
	}

	// Count bound: keep 2 of the remaining 4.
	if res, err = a.GC(GCPolicy{MaxBlobs: 2}); err != nil || res.Removed != 2 {
		t.Fatalf("count gc = %+v, %v; want 2 removed", res, err)
	}
	if got := a.NumBlobs(); got != 2 {
		t.Fatalf("NumBlobs = %d, want 2", got)
	}

	// Bytes bound: shrink to at most one blob's bytes.
	refs := a.Buckets()
	var oneBlob int64
	for _, b := range refs {
		for _, r := range b.Snaps {
			oneBlob = r.Bytes
		}
	}
	if _, err := a.GC(GCPolicy{MaxBytes: oneBlob}); err != nil {
		t.Fatal(err)
	}
	if got := a.StoredBytes(); got > oneBlob {
		t.Errorf("StoredBytes = %d, want <= %d", got, oneBlob)
	}

	// Rebuild equivalence survives all the GC records.
	live, _ := a.IndexBytes()
	rebuilt, err := a.RebuildIndexBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, rebuilt) {
		t.Error("rebuild differs after gc records")
	}
}

func TestGCKeepReps(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 4; i++ {
		if _, err := a.Ingest(mkSnap("h", i), sigFor("only")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.GC(GCPolicy{MaxBlobs: 1, KeepReps: true}); err != nil {
		t.Fatal(err)
	}
	b, err := a.Bucket("only")
	if err != nil {
		t.Fatal(err)
	}
	if b.Rep == "" {
		t.Fatal("representative evicted despite KeepReps")
	}
	if _, err := a.LoadSnap(b.Rep); err != nil {
		t.Errorf("representative unloadable: %v", err)
	}
}

func TestTelemetry(t *testing.T) {
	reg := telemetry.New()
	a, err := OpenWith(t.TempDir(), Options{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	s := mkSnap("h", 1)
	if _, err := a.Ingest(s, sigFor("aa")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Ingest(s, sigFor("aa")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.GC(GCPolicy{MaxBlobs: 0}); err != nil { // no-op sweep
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	for _, want := range []string{
		"arch_ingested_total 2",
		"arch_deduped_total 1",
		"arch_buckets 1",
		"arch_blobs 1",
		"arch_gc_runs_total 1",
		"arch_ingest_nanos_count 2",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q:\n%s", want, expo)
		}
	}
	// New buckets land in the flight recorder.
	evs := reg.FlightRecorder().Events()
	found := false
	for _, e := range evs {
		if e.Kind == "bucket-new" {
			found = true
		}
	}
	if !found {
		t.Errorf("no bucket-new flight event in %+v", evs)
	}
}

func TestJournalDecodeErrors(t *testing.T) {
	// Strict decode: a malformed line is an inspectable error.
	_, err := DecodeJournal(strings.NewReader("{\"v\":1,\"op\":\"ingest\"\n"))
	if !errors.Is(err, ErrJournalSyntax) {
		t.Errorf("syntax err = %v, want ErrJournalSyntax", err)
	}
	_, err = DecodeJournal(strings.NewReader("{\"v\":9,\"op\":\"ingest\",\"sum\":\"x\",\"sig\":\"y\"}\n"))
	if !errors.Is(err, ErrJournalVersion) {
		t.Errorf("version err = %v, want ErrJournalVersion", err)
	}
	_, err = DecodeJournal(strings.NewReader("{\"v\":1,\"op\":\"bogus\"}\n"))
	if !errors.Is(err, ErrJournalSyntax) {
		t.Errorf("op err = %v, want ErrJournalSyntax", err)
	}
	if _, err := DecodeIndex([]byte("{")); !errors.Is(err, ErrIndexSyntax) {
		t.Errorf("index err = %v, want ErrIndexSyntax", err)
	}
}

// TestIngestUniqueIdempotent: re-ingesting identical content through
// IngestUnique journals exactly once — the collection plane's retry
// safety — while plain Ingest keeps counting occurrences.
func TestIngestUniqueIdempotent(t *testing.T) {
	root := t.TempDir()
	a, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	s := mkSnap("h1", 1)
	r1, err := a.IngestUnique(s, sigFor("sig-a"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Dup {
		t.Error("first IngestUnique reported dup")
	}
	if !a.Has(r1.Sum) {
		t.Errorf("Has(%s) false after ingest", r1.Sum[:12])
	}
	for i := 0; i < 3; i++ {
		r, err := a.IngestUnique(s, sigFor("sig-a"))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Dup || r.Sum != r1.Sum || r.Bytes != r1.Bytes {
			t.Errorf("replay %d: got %+v, want dup of %s (%d bytes)", i, r, r1.Sum[:12], r1.Bytes)
		}
	}
	f, err := os.Open(filepath.Join(root, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := DecodeJournal(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("journal holds %d record(s), want exactly 1", len(recs))
	}
	b, err := a.Bucket("sig-a")
	if err != nil {
		t.Fatal(err)
	}
	if b.Count != 1 {
		t.Errorf("bucket count %d, want 1", b.Count)
	}
}

// TestIngestUniqueConcurrentSameContent: N racing IngestUnique calls
// for one snap land one blob and one journal entry, no matter how the
// blob write and the journal lock interleave.
func TestIngestUniqueConcurrentSameContent(t *testing.T) {
	root := t.TempDir()
	a, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	s := mkSnap("h9", 9)
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = a.IngestUnique(s, sigFor("sig-r"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("racer %d: %v", i, err)
		}
	}
	if got := a.NumBlobs(); got != 1 {
		t.Errorf("%d blobs resident, want 1", got)
	}
	f, err := os.Open(filepath.Join(root, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := DecodeJournal(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("journal holds %d record(s), want exactly 1", len(recs))
	}
	if b, err := a.Bucket("sig-r"); err != nil || b.Count != 1 {
		t.Errorf("bucket = %+v, %v; want count 1", b, err)
	}
}

// TestHasAfterGC: a GC'd blob is no longer Has — the precheck answers
// 404 and the fleet re-uploads the evidence.
func TestHasAfterGC(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	r1, err := a.Ingest(mkSnap("h1", 1), sigFor("s1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Ingest(mkSnap("h1", 2), sigFor("s2")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.GC(GCPolicy{MaxBlobs: 1}); err != nil {
		t.Fatal(err)
	}
	if a.Has(r1.Sum) {
		t.Errorf("oldest blob %s still Has after gc to 1 blob", r1.Sum[:12])
	}
	// Re-ingesting after eviction journals again (the evidence returns).
	r2, err := a.IngestUnique(mkSnap("h1", 1), sigFor("s1"))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Dup {
		t.Error("re-ingest after gc reported dup")
	}
	if !a.Has(r1.Sum) {
		t.Error("blob not resident after re-ingest")
	}
}
