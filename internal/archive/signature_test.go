// Signature stability is what makes warehouse buckets meaningful:
// the same fault must fingerprint identically across re-runs and
// across ingest concurrency, and distinct faults must not collide.
// These tests drive the real example workloads through
// internal/scenario (the deterministic VM reproduces each crash
// byte-for-byte), so they cover the exact snaps the quickstart and
// crossmachine examples ship. External test package: scenario pulls
// in internal/service, which itself depends on archive.
package archive_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"traceback/internal/archive"
	"traceback/internal/scenario"
	"traceback/internal/snap"
)

func sigsOf(t *testing.T, b *scenario.Built) []archive.Signature {
	t.Helper()
	maps := scenario.MapSet(b)
	out := make([]archive.Signature, len(b.Snaps))
	for i, s := range b.Snaps {
		out[i] = archive.SignSnap(s, maps)
		if out[i].Weak {
			t.Errorf("%s snap %d (%s): weak signature %q — reconstruction failed",
				b.Name, i, s.Reason, out[i].Title)
		}
	}
	return out
}

// TestSignatureStableAcrossRuns re-runs each example twice and
// requires identical fingerprints (and identical snap content — the
// dedup premise) both times.
func TestSignatureStableAcrossRuns(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func() (*scenario.Built, error)
	}{
		{"quickstart", scenario.Quickstart},
		{"crossmachine", scenario.CrossMachine},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b1, err := tc.fn()
			if err != nil {
				t.Fatal(err)
			}
			b2, err := tc.fn()
			if err != nil {
				t.Fatal(err)
			}
			if len(b1.Snaps) != len(b2.Snaps) {
				t.Fatalf("run 1 took %d snaps, run 2 %d", len(b1.Snaps), len(b2.Snaps))
			}
			s1, s2 := sigsOf(t, b1), sigsOf(t, b2)
			for i := range s1 {
				if s1[i].ID != s2[i].ID {
					t.Errorf("snap %d: signature changed across runs: %s (%s) vs %s (%s)",
						i, s1[i].ID, s1[i].Title, s2[i].ID, s2[i].Title)
				}
			}
			for i := range b1.Snaps {
				c1, _, err := archive.ChecksumSnap(b1.Snaps[i])
				if err != nil {
					t.Fatal(err)
				}
				c2, _, err := archive.ChecksumSnap(b2.Snaps[i])
				if err != nil {
					t.Fatal(err)
				}
				if c1 != c2 {
					t.Errorf("snap %d: content not reproducible across runs (%s vs %s)", i, c1[:8], c2[:8])
				}
			}
		})
	}
}

// TestDistinctFaultsDistinctSignatures: every snap the three examples
// produce captures a different fault (divide-by-zero, wcscpy SIGSEGV,
// two post-mortems, a deadlock hang) — none may share a bucket.
func TestDistinctFaultsDistinctSignatures(t *testing.T) {
	builts, err := scenario.All()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{} // sig → "scenario/title"
	total := 0
	for _, b := range builts {
		for i, sig := range sigsOf(t, b) {
			total++
			key := fmt.Sprintf("%s snap %d (%s)", b.Name, i, sig.Title)
			if prev, dup := seen[sig.ID]; dup {
				t.Errorf("signature collision %s: %s and %s", sig.ID, prev, key)
			}
			seen[sig.ID] = key
		}
	}
	if total < 5 {
		t.Errorf("examples produced %d snaps, want >= 5 distinct faults", total)
	}
}

// TestIngestStableAcrossConcurrency ingests the full example fleet —
// each snap three times over — at worker widths 1, 4, and 16, and
// requires byte-identical indexes from all three stores.
func TestIngestStableAcrossConcurrency(t *testing.T) {
	builts, err := scenario.All()
	if err != nil {
		t.Fatal(err)
	}
	type item struct {
		s   *snap.Snap
		sig archive.Signature
	}
	var batch []item
	for _, b := range builts {
		maps := scenario.MapSet(b)
		for _, s := range b.Snaps {
			sig := archive.SignSnap(s, maps)
			for rep := 0; rep < 3; rep++ {
				batch = append(batch, item{s, sig})
			}
		}
	}

	var indexes [][]byte
	for _, jobs := range []int{1, 4, 16} {
		a, err := archive.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		sem := make(chan struct{}, jobs)
		errs := make([]error, len(batch))
		for i := range batch {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer func() { <-sem; wg.Done() }()
				_, errs[i] = a.Ingest(batch[i].s, batch[i].sig)
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		idx, err := a.IndexBytes()
		if err != nil {
			t.Fatal(err)
		}
		rebuilt, err := a.RebuildIndexBytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(idx, rebuilt) {
			t.Errorf("jobs=%d: journal rebuild differs from live index", jobs)
		}
		// Triplicated ingest dedupes to one blob per distinct snap.
		for _, b := range a.Buckets() {
			if b.Count != 3*uint64(len(b.Snaps)) {
				t.Errorf("jobs=%d: bucket %s count %d with %d blobs, want 3x", jobs, b.Sig, b.Count, len(b.Snaps))
			}
		}
		indexes = append(indexes, idx)
		a.Close()
	}
	if !bytes.Equal(indexes[0], indexes[1]) || !bytes.Equal(indexes[0], indexes[2]) {
		t.Errorf("index bytes differ across jobs widths:\n--- jobs 1 ---\n%s\n--- jobs 4 ---\n%s\n--- jobs 16 ---\n%s",
			indexes[0], indexes[1], indexes[2])
	}
}
