package archive

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// mkTimedSnap builds an ingest journal record pinned to an explicit
// snap time, so it lands in a chosen rate window.
func mkTimedSnap(n int, at uint64) *JournalRecord {
	return &JournalRecord{
		V: formatVersion, Op: OpIngest,
		Sum: fmt.Sprintf("%064d", n), Sig: "aa", Title: "bucket aa",
		Host: "h1", Process: "app", Reason: "exception SIGSEGV",
		Time: at, Bytes: 10,
	}
}

// TestWindowsOrderIndependent: the retained histogram is a pure
// function of the multiset of ingest times — shuffled journal orders
// reduce to byte-identical indexes, including when stragglers arrive
// after the horizon has already moved past them.
func TestWindowsOrderIndependent(t *testing.T) {
	var recs []JournalRecord
	// Times spanning well past WindowCap windows, with duplicates per
	// window and a straggler far behind the final horizon.
	times := []uint64{
		0, 1, WindowWidth - 1, // window 0 (evicted by the end)
		WindowWidth * 5, // window 5 (evicted)
		WindowWidth * 70, WindowWidth*70 + 7, // retained
		WindowWidth * 99, WindowWidth * 99, WindowWidth*99 + 1, // retained, count 3
		WindowWidth * 120,
	}
	for i, at := range times {
		recs = append(recs, *mkTimedSnap(i, at))
	}

	var want []byte
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]JournalRecord(nil), recs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got, err := encodeIndex(reduceJournal(shuffled).index())
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: shuffled reduction differs:\n%s\nvs\n%s", trial, got, want)
		}
	}

	// The final histogram: stragglers behind the horizon are gone, the
	// retained windows carry exact per-window counts.
	st := reduceJournal(recs)
	b := st.buckets["aa"]
	wantWin := []RateWindow{
		{Start: WindowWidth * 70, Count: 2},
		{Start: WindowWidth * 99, Count: 3},
		{Start: WindowWidth * 120, Count: 1},
	}
	if len(b.Windows) != len(wantWin) {
		t.Fatalf("windows = %+v, want %+v", b.Windows, wantWin)
	}
	for i, w := range wantWin {
		if b.Windows[i] != w {
			t.Errorf("window %d = %+v, want %+v", i, b.Windows[i], w)
		}
	}
	if b.Count != uint64(len(recs)) {
		t.Errorf("Count = %d, want %d (eviction must not touch totals)", b.Count, len(recs))
	}
}

// TestWindowsEvictionBound: a bucket never retains more than
// WindowCap windows, and retention is measured against the bucket's
// newest window.
func TestWindowsEvictionBound(t *testing.T) {
	var ws []RateWindow
	for i := 0; i < WindowCap*3; i++ {
		ws = addWindow(ws, uint64(i)*WindowWidth)
	}
	if len(ws) != WindowCap {
		t.Fatalf("retained %d windows, want %d", len(ws), WindowCap)
	}
	newest := uint64(WindowCap*3-1) * WindowWidth
	if ws[0].Start != horizonStart(newest) {
		t.Errorf("oldest retained window %d, want %d", ws[0].Start, horizonStart(newest))
	}
	// A record exactly on the horizon is retained; one window older is
	// dropped without disturbing the rest.
	before := append([]RateWindow(nil), ws...)
	ws = addWindow(ws, horizonStart(newest)-WindowWidth)
	if len(ws) != len(before) {
		t.Errorf("behind-horizon record changed the histogram: %d vs %d windows", len(ws), len(before))
	}
	ws = addWindow(ws, horizonStart(newest))
	if ws[0].Count != before[0].Count+1 {
		t.Errorf("on-horizon record not counted: %+v", ws[0])
	}
}

// TestWindowsConcurrentIngestParity: concurrent ingest at worker
// widths 1/4/16 yields byte-identical indexes including the rate
// windows, and a torn-journal-tail reopen reproduces them exactly.
func TestWindowsConcurrentIngestParity(t *testing.T) {
	// A fleet whose snaps scatter across many windows, several per
	// window, two signatures.
	type item struct {
		n   int
		at  uint64
		sig Signature
	}
	var items []item
	for i := 0; i < 48; i++ {
		sig := sigFor("aa")
		if i%3 == 0 {
			sig = sigFor("bb")
		}
		items = append(items, item{n: i, at: uint64(i%12) * WindowWidth, sig: sig})
	}

	var indexes [][]byte
	var roots []string
	for _, jobs := range []int{1, 4, 16} {
		root := filepath.Join(t.TempDir(), "wh")
		a, err := Open(root)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		sem := make(chan struct{}, jobs)
		for _, it := range items {
			wg.Add(1)
			sem <- struct{}{}
			go func(it item) {
				defer func() { <-sem; wg.Done() }()
				s := mkSnap("h1", it.n)
				s.Time = it.at
				if _, err := a.Ingest(s, it.sig); err != nil {
					t.Error(err)
				}
			}(it)
		}
		wg.Wait()
		idx, err := a.IndexBytes()
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		indexes = append(indexes, idx)
		roots = append(roots, root)
	}
	if !bytes.Equal(indexes[0], indexes[1]) || !bytes.Equal(indexes[0], indexes[2]) {
		t.Fatalf("rate windows differ across -jobs widths:\n%s\nvs\n%s\nvs\n%s",
			indexes[0], indexes[1], indexes[2])
	}

	// Torn tail: a crash mid-append leaves a partial final line; the
	// reopen must truncate it and reduce to the identical histogram.
	jpath := filepath.Join(roots[0], journalName)
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"op":"ingest","sum":"beef`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	a, err := Open(roots[0])
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	got, err := a.IndexBytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, indexes[0]) {
		t.Errorf("index after torn-tail reopen differs:\n%s\nvs\n%s", got, indexes[0])
	}
}

// TestWindowsSurviveGC: GC rewrites blob residency but never the rate
// history — a bucket whose snaps were evicted keeps its histogram.
func TestWindowsSurviveGC(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 4; i++ {
		s := mkSnap("h1", i)
		s.Time = uint64(i) * WindowWidth
		if _, err := a.Ingest(s, sigFor("aa")); err != nil {
			t.Fatal(err)
		}
	}
	before, err := a.Bucket("aa")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.GC(GCPolicy{MaxBlobs: 1}); err != nil {
		t.Fatal(err)
	}
	after, err := a.Bucket("aa")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Snaps) != 1 {
		t.Fatalf("gc left %d snaps, want 1", len(after.Snaps))
	}
	if len(after.Windows) != len(before.Windows) {
		t.Errorf("gc rewrote rate history: %+v vs %+v", after.Windows, before.Windows)
	}
}
