// Package archive is the snap warehouse: durable, deduplicated,
// fleet-queryable storage for TraceBack snapshots. The paper's §6
// observes snaps compress ~10x "for ease of archiving or
// transmission" precisely so support organizations can keep them;
// this package is that support-side store. Snaps are held as
// content-addressed gzip blobs (checksummed over their canonical JSON
// so identical crashes from different hosts store once), every ingest
// is journaled append-only, and each snap is fingerprinted by its
// crash signature (signature.go) into a bucket — the unit of triage:
// "which fault is hurting the fleet most" is a sort of the buckets by
// occurrence count.
package archive

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"traceback/internal/snap"
	"traceback/internal/telemetry"
)

const (
	journalName = "journal.jsonl"
	indexName   = "index.json"
	blobDirName = "blobs"
	blobSuffix  = ".snap.json.gz"
)

// Options configures an archive.
type Options struct {
	// Telemetry is the registry arch_ metrics land in (nil: private
	// registry).
	Telemetry *telemetry.Registry
}

// Archive is an open snap warehouse rooted at a directory:
//
//	root/journal.jsonl          append-only system of record
//	root/index.json             deterministic reduction (Flush/Close)
//	root/blobs/ab/<sum>.snap.json.gz  content-addressed snaps
type Archive struct {
	root    string
	journal *os.File

	mu sync.Mutex // guards st and journal appends
	st *state

	fmu    sync.Mutex // guards flight
	flight map[string]*flightCall

	reg *telemetry.Registry
	rec *telemetry.Recorder
	met metrics
}

// flightCall coalesces concurrent blob writes for one checksum.
type flightCall struct {
	done chan struct{}
	size int64
	err  error
}

type metrics struct {
	ingested    *telemetry.Counter
	deduped     *telemetry.Counter
	gcRuns      *telemetry.Counter
	gcRemoved   *telemetry.Counter
	bytesOut    *telemetry.Counter
	ingestNanos *telemetry.Histogram
}

// Open opens (creating if needed) the archive at root and replays its
// journal. An unterminated final journal line — the footprint of a
// crash mid-append — is dropped and truncated away; everything before
// it is intact, and the matching blob is simply re-ingestable.
func Open(root string) (*Archive, error) { return OpenWith(root, Options{}) }

// OpenWith opens the archive with explicit options.
func OpenWith(root string, opts Options) (*Archive, error) {
	if err := os.MkdirAll(filepath.Join(root, blobDirName), 0o755); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	jpath := filepath.Join(root, journalName)
	st := newState()
	if f, err := os.Open(jpath); err == nil {
		recs, goodLen, torn, derr := decodeJournalLines(f, true)
		f.Close()
		if derr != nil {
			return nil, fmt.Errorf("archive: replaying %s: %w", jpath, derr)
		}
		if torn {
			// Cut the torn tail off the file, not just the replay: the
			// journal reopens with O_APPEND below, and appending after a
			// partial line would glue two records into one invalid line
			// that every later Open rejects.
			if terr := os.Truncate(jpath, goodLen); terr != nil {
				return nil, fmt.Errorf("archive: truncating torn journal tail: %w", terr)
			}
		}
		st = reduceJournal(recs)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("archive: %w", err)
	}
	j, err := os.OpenFile(jpath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	a := &Archive{
		root:    root,
		journal: j,
		st:      st,
		flight:  map[string]*flightCall{},
	}
	a.bindTelemetry(opts.Telemetry)
	return a, nil
}

func (a *Archive) bindTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		reg = telemetry.New()
	}
	a.reg = reg
	a.rec = reg.Recorder(256)
	a.met = metrics{
		ingested:    reg.Counter("arch_ingested_total", "snaps ingested into the warehouse"),
		deduped:     reg.Counter("arch_deduped_total", "ingests deduplicated onto an existing blob"),
		gcRuns:      reg.Counter("arch_gc_runs_total", "retention sweeps executed"),
		gcRemoved:   reg.Counter("arch_gc_removed_total", "blobs removed by retention sweeps"),
		bytesOut:    reg.Counter("arch_bytes_written_total", "compressed blob bytes written"),
		ingestNanos: reg.Histogram("arch_ingest_nanos", "per-snap ingest latency (ns)", telemetry.DurationBuckets()),
	}
	reg.GaugeFunc("arch_buckets", "distinct crash-signature buckets", func() int64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return int64(len(a.st.buckets))
	})
	reg.GaugeFunc("arch_blobs", "content-addressed blobs resident", func() int64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return int64(len(a.st.blobs))
	})
	reg.GaugeFunc("arch_bytes_stored", "compressed blob bytes resident", func() int64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return a.st.bytes
	})
}

// Metrics returns the archive's registry.
func (a *Archive) Metrics() *telemetry.Registry { return a.reg }

// Root returns the archive's directory.
func (a *Archive) Root() string { return a.root }

func (a *Archive) blobPath(sum string) string {
	return filepath.Join(a.root, blobDirName, sum[:2], sum+blobSuffix)
}

// ChecksumSnap computes a snap's content address: SHA-256 over its
// canonical (uncompressed) JSON, so the key is independent of the
// compression level the blob happens to be stored at.
func ChecksumSnap(s *snap.Snap) (sum string, canonical []byte, err error) {
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return "", nil, fmt.Errorf("archive: encoding snap: %w", err)
	}
	h := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(h[:]), buf.Bytes(), nil
}

// IngestResult reports what one ingest did.
type IngestResult struct {
	Sum       string
	Sig       Signature
	Dup       bool // blob already present; only the bucket count moved
	NewBucket bool // first occurrence of this crash signature
	Bytes     int64
}

// Ingest stores one snap under its crash signature: content-address,
// write the blob if it is new (single-flight across goroutines,
// atomic rename on disk), journal the event, fold it into the bucket.
// Safe for concurrent use; concurrent ingest of identical snaps
// stores exactly one blob and counts every occurrence.
func (a *Archive) Ingest(s *snap.Snap, sig Signature) (IngestResult, error) {
	return a.ingest(s, sig, false)
}

// IngestUnique ingests s only if its content is not already resident:
// a snap whose checksum matches a stored blob returns Dup without
// touching the journal. This is the network collection plane's
// idempotency primitive — an agent that re-uploads after a lost
// response (or N agents racing on the same crash) lands exactly one
// journal entry, so retry is always safe. Race-free against
// concurrent IngestUnique of the same new content: the residency
// check happens under the same lock that orders journal appends.
func (a *Archive) IngestUnique(s *snap.Snap, sig Signature) (IngestResult, error) {
	return a.ingest(s, sig, true)
}

func (a *Archive) ingest(s *snap.Snap, sig Signature, unique bool) (IngestResult, error) {
	t0 := time.Now()
	defer func() { a.met.ingestNanos.Observe(uint64(time.Since(t0))) }()

	sum, canonical, err := ChecksumSnap(s)
	if err != nil {
		return IngestResult{}, err
	}
	if unique {
		// Fast path: already resident means nothing to write or journal.
		if ref, ok := a.ref(sum); ok {
			return IngestResult{Sum: sum, Sig: sig, Dup: true, Bytes: ref.Bytes}, nil
		}
	}
	dup, size, err := a.ensureBlob(sum, canonical)
	if err != nil {
		return IngestResult{}, err
	}

	a.mu.Lock()
	if ref, resident := a.st.blobs[sum]; unique && resident {
		// A concurrent ingest journaled this content between the fast
		// path and here; this call must not add a second entry.
		size = ref.Bytes
		a.mu.Unlock()
		return IngestResult{Sum: sum, Sig: sig, Dup: true, Bytes: size}, nil
	} else if dup && !resident {
		// The dedup hit may be stale: between ensureBlob's check and
		// this critical section a GC sweep — which journals, drops
		// state, and unlinks all under a.mu — can have condemned and
		// removed the blob. Re-validate on disk and rewrite while
		// holding the lock: the race is rare enough that the write
		// under a.mu is fine, and holding it keeps the next sweep from
		// condemning the blob before the journal records this ingest.
		if _, serr := os.Stat(a.blobPath(sum)); serr != nil {
			sz, werr := a.writeBlob(a.blobPath(sum), canonical)
			if werr != nil {
				a.mu.Unlock()
				return IngestResult{}, werr
			}
			dup, size = false, sz
			a.met.bytesOut.Add(uint64(sz))
		}
	}
	rec := JournalRecord{
		V: formatVersion, Op: OpIngest, Sum: sum,
		Sig: sig.ID, Title: sig.Title, Weak: sig.Weak,
		Host: s.Host, Process: s.Process, Reason: s.Reason,
		Time: s.Time, Bytes: size,
	}
	line, err := encodeJournal(&rec)
	if err != nil {
		a.mu.Unlock()
		return IngestResult{}, err
	}
	if _, werr := a.journal.Write(line); werr != nil {
		a.mu.Unlock()
		return IngestResult{}, fmt.Errorf("archive: journal append: %w", werr)
	}
	newBucket := a.st.apply(&rec)
	a.mu.Unlock()

	a.met.ingested.Inc()
	if dup {
		a.met.deduped.Inc()
	}
	if newBucket {
		a.rec.Record(s.Time, "bucket-new", sig.ID+" "+sig.Title)
	}
	return IngestResult{Sum: sum, Sig: sig, Dup: dup, NewBucket: newBucket, Bytes: size}, nil
}

// ensureBlob materializes the blob for sum unless it already exists.
// The first caller for a given sum compresses and writes (tmp file +
// rename, so a crash never leaves a partial blob at the final path);
// concurrent callers for the same sum wait for it and report a dup.
func (a *Archive) ensureBlob(sum string, canonical []byte) (dup bool, size int64, err error) {
	path := a.blobPath(sum)
	a.fmu.Lock()
	if c, ok := a.flight[sum]; ok {
		a.fmu.Unlock()
		<-c.done
		if c.err != nil {
			return false, 0, c.err
		}
		return true, c.size, nil
	}
	if fi, serr := os.Stat(path); serr == nil {
		a.fmu.Unlock()
		return true, fi.Size(), nil
	}
	c := &flightCall{done: make(chan struct{})}
	a.flight[sum] = c
	a.fmu.Unlock()

	c.size, c.err = a.writeBlob(path, canonical)
	a.fmu.Lock()
	delete(a.flight, sum)
	a.fmu.Unlock()
	close(c.done)
	if c.err == nil {
		a.met.bytesOut.Add(uint64(c.size))
	}
	return false, c.size, c.err
}

// writeBlob gzips the exact canonical bytes the content address was
// computed over (LoadAuto reads it back), via tmp file + rename.
func (a *Archive) writeBlob(path string, canonical []byte) (int64, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return 0, fmt.Errorf("archive: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".blob-*")
	if err != nil {
		return 0, fmt.Errorf("archive: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	zw, err := gzip.NewWriterLevel(tmp, gzip.BestCompression)
	if err != nil {
		tmp.Close()
		return 0, fmt.Errorf("archive: %w", err)
	}
	if _, err := zw.Write(canonical); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("archive: writing blob: %w", err)
	}
	if err := zw.Close(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("archive: writing blob: %w", err)
	}
	fi, err := tmp.Stat()
	if err != nil {
		tmp.Close()
		return 0, fmt.Errorf("archive: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("archive: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("archive: %w", err)
	}
	return fi.Size(), nil
}

// LoadSnap reads a stored snap back by its content address.
func (a *Archive) LoadSnap(sum string) (*snap.Snap, error) {
	f, err := os.Open(a.blobPath(sum))
	if err != nil {
		return nil, fmt.Errorf("archive: blob %s: %w", sum, err)
	}
	defer f.Close()
	return snap.LoadAuto(f)
}

// OpenBlob opens the stored gzip blob for sum as-is, for streaming it
// over the wire without a decode/re-encode round trip (the collection
// daemon's GET /v1/blob path, which the fan-out gate uses to pull
// exemplars off their home shard). The blob must be resident; a
// GC-removed or never-stored sum is an error even if a stale file
// lingers on disk.
func (a *Archive) OpenBlob(sum string) (io.ReadCloser, int64, error) {
	r, ok := a.ref(sum)
	if !ok {
		return nil, 0, fmt.Errorf("archive: blob %s is not resident", sum)
	}
	f, err := os.Open(a.blobPath(sum))
	if err != nil {
		return nil, 0, fmt.Errorf("archive: blob %s: %w", sum, err)
	}
	return f, r.Bytes, nil
}

// JournalPath is the on-disk location of the append-only journal —
// exposed so fleet-level checkers can union shard journals and compare
// the reduction against a single node's (see IndexBytesOf).
func (a *Archive) JournalPath() string {
	return filepath.Join(a.root, journalName)
}

// Buckets returns every bucket, most occurrences first (count desc,
// signature asc) — the `tbstore top` order.
func (a *Archive) Buckets() []Bucket {
	a.mu.Lock()
	out := make([]Bucket, 0, len(a.st.buckets))
	for _, b := range a.st.buckets {
		out = append(out, cloneBucket(b))
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Sig < out[j].Sig
	})
	return out
}

// Bucket resolves a signature, accepting any unambiguous prefix (CLI
// convenience, like abbreviated git hashes).
func (a *Archive) Bucket(sigPrefix string) (Bucket, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if b, ok := a.st.buckets[sigPrefix]; ok {
		return cloneBucket(b), nil
	}
	var found *Bucket
	for sig, b := range a.st.buckets {
		if strings.HasPrefix(sig, sigPrefix) {
			if found != nil {
				return Bucket{}, fmt.Errorf("archive: signature prefix %q is ambiguous", sigPrefix)
			}
			found = b
		}
	}
	if found == nil {
		return Bucket{}, fmt.Errorf("archive: no bucket %q", sigPrefix)
	}
	return cloneBucket(found), nil
}

// Has reports whether the blob for sum is resident (stored and not
// removed by GC) — the dedup precheck the collection daemon answers
// with HEAD /v1/blob/{sum}.
func (a *Archive) Has(sum string) bool {
	_, ok := a.ref(sum)
	return ok
}

// ref copies the resident BlobRef for sum, if any.
func (a *Archive) ref(sum string) (BlobRef, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r, ok := a.st.blobs[sum]; ok {
		return *r, true
	}
	return BlobRef{}, false
}

// NumBuckets reports the number of distinct crash signatures.
func (a *Archive) NumBuckets() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.st.buckets)
}

// NumBlobs reports resident blob count.
func (a *Archive) NumBlobs() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.st.blobs)
}

// StoredBytes reports resident compressed bytes.
func (a *Archive) StoredBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.st.bytes
}

// IndexBytes renders the live index in its canonical byte form.
func (a *Archive) IndexBytes() ([]byte, error) {
	a.mu.Lock()
	idx := a.st.index()
	a.mu.Unlock()
	return encodeIndex(idx)
}

// RebuildIndexBytes re-reads the journal from disk and reduces it
// from scratch — the recovery path, and the cross-check that the live
// index and the journal agree byte for byte.
func (a *Archive) RebuildIndexBytes() ([]byte, error) {
	f, err := os.Open(filepath.Join(a.root, journalName))
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	defer f.Close()
	recs, _, _, err := decodeJournalLines(f, true)
	if err != nil {
		return nil, err
	}
	return encodeIndex(reduceJournal(recs).index())
}

// Flush writes index.json atomically from the live state.
func (a *Archive) Flush() error {
	b, err := a.IndexBytes()
	if err != nil {
		return err
	}
	path := filepath.Join(a.root, indexName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	return nil
}

// Close flushes the index and closes the journal.
func (a *Archive) Close() error {
	if err := a.Flush(); err != nil {
		a.journal.Close()
		return err
	}
	return a.journal.Close()
}

// GCPolicy bounds the store. Zero fields mean "no bound". Ages are in
// snap-time units (VM cycles), measured against the newest snap held.
type GCPolicy struct {
	MaxAge   uint64 // evict blobs older than newest-MaxAge
	MaxBlobs int    // keep at most this many blobs
	MaxBytes int64  // keep at most this many compressed bytes
	// KeepReps protects each bucket's representative snap from
	// count/byte eviction (age still wins), so `show` keeps working
	// for every known fault.
	KeepReps bool
}

// GCResult reports one sweep.
type GCResult struct {
	Removed int
	Bytes   int64
}

// GC applies the retention policy: oldest blobs first (by snap time,
// then checksum — fully deterministic), journaled as a single gc
// record so replay reproduces the exact removal.
func (a *Archive) GC(pol GCPolicy) (GCResult, error) {
	a.mu.Lock()
	victims := a.planGC(pol)
	var res GCResult
	if len(victims) == 0 {
		a.mu.Unlock()
		a.met.gcRuns.Inc()
		return res, nil
	}
	sums := make([]string, len(victims))
	for i, v := range victims {
		sums[i] = v.Sum
		res.Bytes += v.Bytes
	}
	res.Removed = len(victims)
	rec := JournalRecord{V: formatVersion, Op: OpGC, Removed: sums}
	line, err := encodeJournal(&rec)
	if err != nil {
		a.mu.Unlock()
		return GCResult{}, err
	}
	if _, werr := a.journal.Write(line); werr != nil {
		a.mu.Unlock()
		return GCResult{}, fmt.Errorf("archive: journal append: %w", werr)
	}
	a.st.apply(&rec)

	// Blob unlink after the journal records the decision (a crash
	// between the two leaves only an already-condemned blob behind,
	// which replay removes from the index anyway) but still under
	// a.mu, so an ingest that stat'd one of these blobs alive cannot
	// journal a reference to it before it disappears — Ingest
	// re-validates its dedup hit under the same lock. Unlink failures
	// do not stop the sweep: every victim is already journaled as
	// removed and gone from the state, so skipping the rest would leak
	// them permanently (planGC can never select them again).
	var unlinkErrs []error
	for _, sum := range sums {
		if err := os.Remove(a.blobPath(sum)); err != nil && !os.IsNotExist(err) {
			unlinkErrs = append(unlinkErrs, fmt.Errorf("archive: %w", err))
		}
	}
	a.mu.Unlock()

	a.met.gcRuns.Inc()
	a.met.gcRemoved.Add(uint64(res.Removed))
	a.rec.Record(0, "gc", fmt.Sprintf("removed %d blob(s), %d bytes", res.Removed, res.Bytes))
	return res, errors.Join(unlinkErrs...)
}

// planGC selects victims under a.mu.
func (a *Archive) planGC(pol GCPolicy) []BlobRef {
	refs := make([]BlobRef, 0, len(a.st.blobs))
	var newest uint64
	for _, r := range a.st.blobs {
		refs = append(refs, *r)
		if r.Time > newest {
			newest = r.Time
		}
	}
	sortRefs(refs) // oldest first
	reps := map[string]bool{}
	if pol.KeepReps {
		for _, b := range a.st.buckets {
			if b.Rep != "" {
				reps[b.Rep] = true
			}
		}
	}

	victims := map[string]bool{}
	count := len(refs)
	bytes := a.st.bytes
	evict := func(r BlobRef) {
		if victims[r.Sum] {
			return
		}
		victims[r.Sum] = true
		count--
		bytes -= r.Bytes
	}
	if pol.MaxAge > 0 {
		for _, r := range refs {
			if newest-r.Time > pol.MaxAge {
				evict(r)
			}
		}
	}
	for _, r := range refs {
		overCount := pol.MaxBlobs > 0 && count > pol.MaxBlobs
		overBytes := pol.MaxBytes > 0 && bytes > pol.MaxBytes
		if !overCount && !overBytes {
			break
		}
		if victims[r.Sum] || reps[r.Sum] {
			continue
		}
		evict(r)
	}

	out := make([]BlobRef, 0, len(victims))
	for _, r := range refs {
		if victims[r.Sum] {
			out = append(out, r)
		}
	}
	return out
}

func cloneBucket(b *Bucket) Bucket {
	c := *b
	c.Hosts = append([]string(nil), b.Hosts...)
	c.Snaps = append([]BlobRef(nil), b.Snaps...)
	c.Windows = append([]RateWindow(nil), b.Windows...)
	return c
}
