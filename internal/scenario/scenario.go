// Package scenario re-runs the example workloads (examples/quickstart,
// examples/crossmachine, examples/deadlock) in-process and hands back
// the snaps and mapfiles they produce. The examples double as the
// repository's fleet simulator: the VM is deterministic, so every
// re-run reproduces byte-identical snaps — which is exactly what the
// warehouse's signature-stability and dedup guarantees are tested
// against (and what tools/gensnaps commits under snaps/).
//
// Each scenario is split into build (compile, create the world,
// start threads) and run (drive the world, harvest snaps) so that
// harnesses can perturb the built world before running it — the
// fault-injection campaign (internal/fault) installs a vm.Injector
// and shrinks trace buffers between the two phases. The one-call
// Quickstart/CrossMachine/Deadlock wrappers preserve the original
// deterministic behavior byte for byte.
package scenario

import (
	"fmt"
	"os"
	"path/filepath"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/module"
	"traceback/internal/recon"
	"traceback/internal/service"
	"traceback/internal/snap"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
)

// Built is one scenario's output.
type Built struct {
	Name  string
	Snaps []*snap.Snap
	Maps  []*module.MapFile
}

// Options perturbs how a scenario is built. The zero value reproduces
// the committed fleet exactly.
type Options struct {
	// Config overrides the runtime configuration of every process in
	// the scenario (nil: tbrt.Config{Policy: tbrt.DefaultPolicy()},
	// the original). Fault campaigns use tiny BufferWords here for
	// wrap stress.
	Config *tbrt.Config
}

func (o Options) config() tbrt.Config {
	if o.Config != nil {
		return *o.Config
	}
	return tbrt.Config{Policy: tbrt.DefaultPolicy()}
}

// Setup is a built-but-not-yet-run scenario: the world exists, every
// process's main thread is started, and nothing has executed. A
// harness may install a vm.Injector on World (or otherwise perturb
// state) before calling Run.
type Setup struct {
	Name  string
	World *vm.World
	// Procs and Runtimes key the scenario's processes by role name
	// (e.g. "app", "petstore", "petclient", "bank").
	Procs    map[string]*vm.Process
	Runtimes map[string]*tbrt.Runtime
	Maps     []*module.MapFile
	// MaxSteps is the default quantum budget for Run.
	MaxSteps int
	// Service is the machine-local watchdog (deadlock scenario only).
	Service *service.Service

	done    func(*Setup) bool
	collect func(*Setup) *Built
}

// Run drives the world until the scenario's completion condition,
// nothing can run, or maxSteps quanta pass (0: the scenario default).
func (s *Setup) Run(maxSteps int) {
	if maxSteps <= 0 {
		maxSteps = s.MaxSteps
	}
	s.World.Run(maxSteps, func() bool { return s.done(s) })
}

// Collect harvests the scenario's snaps per its original semantics
// (hang checks included). Call after Run.
func (s *Setup) Collect() (*Built, error) {
	b := s.collect(s)
	if len(b.Snaps) == 0 {
		return nil, fmt.Errorf("scenario: %s produced no snap", s.Name)
	}
	return b, nil
}

// Root locates the repository root (the directory holding go.mod) by
// walking up from the current directory, so scenarios can read the
// examples' MiniC sources whether the caller is a test (cwd = package
// dir) or a tool run from the repo root.
func Root() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("scenario: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func compile(root, name, file, relPath string) (*module.Module, *core.Result, error) {
	src, err := os.ReadFile(filepath.Join(root, relPath))
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: %w", err)
	}
	mod, err := minic.Compile(name, file, string(src))
	if err != nil {
		return nil, nil, err
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		return nil, nil, err
	}
	return mod, res, nil
}

// BuildQuickstart builds examples/quickstart: a latent divide-by-zero
// triggered in production mode, snapped at the first-chance exception.
func BuildQuickstart(opts Options) (*Setup, error) {
	root, err := Root()
	if err != nil {
		return nil, err
	}
	_, res, err := compile(root, "app", "app.mc", "examples/quickstart/app.mc")
	if err != nil {
		return nil, err
	}
	world := vm.NewWorld(1)
	machine := world.NewMachine("prod-host", 0)
	proc, rt, err := tbrt.NewProcess(machine, "app", opts.config())
	if err != nil {
		return nil, err
	}
	if _, err := proc.Load(res.Module); err != nil {
		return nil, err
	}
	if _, err := proc.StartMain(1); err != nil {
		return nil, err
	}
	return &Setup{
		Name:     "quickstart",
		World:    world,
		Procs:    map[string]*vm.Process{"app": proc},
		Runtimes: map[string]*tbrt.Runtime{"app": rt},
		Maps:     []*module.MapFile{res.Map},
		MaxSteps: 1_000_000,
		done:     func(*Setup) bool { return proc.Exited },
		collect: func(s *Setup) *Built {
			return &Built{Name: s.Name, Snaps: rt.Snaps(), Maps: s.Maps}
		},
	}, nil
}

// Quickstart reproduces examples/quickstart end to end.
func Quickstart() (*Built, error) {
	s, err := BuildQuickstart(Options{})
	if err != nil {
		return nil, err
	}
	s.Run(0)
	return s.Collect()
}

// BuildCrossMachine builds examples/crossmachine: a pet-store server
// faulting inside a string library while serving a client on another
// machine.
func BuildCrossMachine(opts Options) (*Setup, error) {
	root, err := Root()
	if err != nil {
		return nil, err
	}
	_, strlibRes, err := compile(root, "strlib", "strlib.c", "examples/crossmachine/strlib.mc")
	if err != nil {
		return nil, err
	}
	_, serverRes, err := compile(root, "server", "server.c", "examples/crossmachine/server.mc")
	if err != nil {
		return nil, err
	}
	_, clientRes, err := compile(root, "client", "client.c", "examples/crossmachine/client.mc")
	if err != nil {
		return nil, err
	}

	world := vm.NewWorld(6)
	clientBox := world.NewMachine("client-box", 0)
	serverBox := world.NewMachine("server-box", 7500)
	serverProc, serverRT, err := tbrt.NewProcess(serverBox, "petstore", opts.config())
	if err != nil {
		return nil, err
	}
	if _, err := serverProc.Load(strlibRes.Module); err != nil {
		return nil, err
	}
	if _, err := serverProc.Load(serverRes.Module); err != nil {
		return nil, err
	}
	clientProc, clientRT, err := tbrt.NewProcess(clientBox, "petclient", opts.config())
	if err != nil {
		return nil, err
	}
	if _, err := clientProc.Load(clientRes.Module); err != nil {
		return nil, err
	}
	world.RegisterEndpoint(9, serverProc)
	if _, err := serverProc.StartMain(0); err != nil {
		return nil, err
	}
	if _, err := clientProc.StartMain(0); err != nil {
		return nil, err
	}
	return &Setup{
		Name:  "crossmachine",
		World: world,
		Procs: map[string]*vm.Process{
			"petstore": serverProc, "petclient": clientProc,
		},
		Runtimes: map[string]*tbrt.Runtime{
			"petstore": serverRT, "petclient": clientRT,
		},
		Maps:     []*module.MapFile{strlibRes.Map, serverRes.Map, clientRes.Map},
		MaxSteps: 5_000_000,
		done:     func(*Setup) bool { return clientProc.Exited && serverProc.Exited },
		collect: func(s *Setup) *Built {
			b := &Built{Name: s.Name, Maps: s.Maps}
			// The server snapped at its first-chance SIGSEGV during
			// the run; the post-mortem pulls add each side's final
			// state.
			exc := append([]*snap.Snap(nil), serverRT.Snaps()...)
			b.Snaps = append(exc, serverRT.PostMortemSnap(), clientRT.PostMortemSnap())
			return b
		},
	}, nil
}

// CrossMachine reproduces examples/crossmachine end to end; both
// sides' post-mortem snaps are returned (the server's exception snap
// too, if taken).
func CrossMachine() (*Built, error) {
	s, err := BuildCrossMachine(Options{})
	if err != nil {
		return nil, err
	}
	s.Run(0)
	return s.Collect()
}

// BuildDeadlock builds examples/deadlock: a lock-order inversion with
// no crash, detected by the service heartbeat and snapped as a hang.
func BuildDeadlock(opts Options) (*Setup, error) {
	root, err := Root()
	if err != nil {
		return nil, err
	}
	_, res, err := compile(root, "bank", "bank.mc", "examples/deadlock/bank.mc")
	if err != nil {
		return nil, err
	}
	world := vm.NewWorld(4)
	mach := world.NewMachine("prod-host", 0)
	proc, rt, err := tbrt.NewProcess(mach, "bank", opts.config())
	if err != nil {
		return nil, err
	}
	if _, err := proc.Load(res.Module); err != nil {
		return nil, err
	}
	svc := service.New(mach, 100_000)
	svc.Register(rt)
	if _, err := proc.StartMain(0); err != nil {
		return nil, err
	}
	return &Setup{
		Name:     "deadlock",
		World:    world,
		Procs:    map[string]*vm.Process{"bank": proc},
		Runtimes: map[string]*tbrt.Runtime{"bank": rt},
		Maps:     []*module.MapFile{res.Map},
		MaxSteps: 200_000,
		Service:  svc,
		done:     func(*Setup) bool { return proc.Exited },
		collect: func(s *Setup) *Built {
			mach.SetClock(mach.Clock() + 200_000)
			svc.CheckStatus()
			return &Built{Name: s.Name, Snaps: svc.Snaps, Maps: s.Maps}
		},
	}, nil
}

// Deadlock reproduces examples/deadlock end to end.
func Deadlock() (*Built, error) {
	s, err := BuildDeadlock(Options{})
	if err != nil {
		return nil, err
	}
	s.Run(0)
	b, err := s.Collect()
	if err != nil {
		return nil, fmt.Errorf("scenario: deadlock hang not detected")
	}
	return b, nil
}

// Builders lists every scenario builder by name, in the committed
// fleet's canonical order.
var Builders = []struct {
	Name  string
	Build func(Options) (*Setup, error)
}{
	{"quickstart", BuildQuickstart},
	{"crossmachine", BuildCrossMachine},
	{"deadlock", BuildDeadlock},
}

// All runs every scenario and merges the outputs.
func All() ([]*Built, error) {
	var out []*Built
	for _, fn := range []func() (*Built, error){Quickstart, CrossMachine, Deadlock} {
		b, err := fn()
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// MapSet bundles a scenario set's mapfiles into one resolver.
func MapSet(builts ...*Built) *recon.MapSet {
	var maps []*module.MapFile
	for _, b := range builts {
		maps = append(maps, b.Maps...)
	}
	return recon.NewMapSet(maps...)
}

// Write persists a scenario's snaps (gzip) and mapfiles into dir and
// dir/maps, with deterministic names, returning the snap paths.
func (b *Built) Write(dir string) ([]string, error) {
	mapDir := filepath.Join(dir, "maps")
	if err := os.MkdirAll(mapDir, 0o755); err != nil {
		return nil, err
	}
	for _, mf := range b.Maps {
		f, err := os.Create(filepath.Join(mapDir, mf.ModuleName+".map.json"))
		if err != nil {
			return nil, err
		}
		if err := mf.Save(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	var paths []string
	for i, s := range b.Snaps {
		p := filepath.Join(dir, fmt.Sprintf("%s-%s-%d.snap.json.gz", b.Name, s.Process, i+1))
		f, err := os.Create(p)
		if err != nil {
			return nil, err
		}
		if err := s.SaveCompressed(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}
