// The gate's merge semantics: folding N shard indexes into the index
// a single node would have built. The warehouse index is already an
// order-independent reduction of ingest events (internal/archive), so
// a shard's bucket is just that reduction restricted to the events the
// shard saw — and merging is re-running the same fold over the union:
//
//   - Count sums (every ingest event counts once somewhere);
//   - FirstSeen/LastSeen take min/max;
//   - Hosts is the sorted union;
//   - Windows sum per start, then re-evict against the merged newest
//     window — a shard retains a superset of what the merged horizon
//     allows (its local newest is never ahead of the merged newest),
//     so eviction is the only correction merging ever needs;
//   - Snaps dedup by content address (the same blob can be resident on
//     two shards after an agent failover) and re-sort by (time, sum);
//   - Rep is the earliest-seen resident snap, exactly the single-node
//     rule.
//
// When placement held (no failovers), every unique sum was journaled
// on exactly one shard and the merged buckets are byte-identical to
// the single-node reduction — the property tools/shardcheck gates on.
// After a failover the same content may have journaled on two shards;
// Count then exceeds the single-node count (each landing was a real
// ingest event), but no snap and no bucket is ever lost.
package shard

import (
	"fmt"
	"sort"
	"strings"

	"traceback/internal/archive"
)

// MergeBuckets folds per-shard bucket lists into the fleet-wide
// bucket list, in the canonical triage order (count desc, signature
// asc) that archive.Buckets and the daemon's /v1/buckets use.
func MergeBuckets(shards ...[]archive.Bucket) []archive.Bucket {
	merged := map[string]*archive.Bucket{}
	for _, buckets := range shards {
		for i := range buckets {
			b := &buckets[i]
			m, ok := merged[b.Sig]
			if !ok {
				c := cloneBucket(b)
				merged[b.Sig] = &c
				continue
			}
			m.Count += b.Count
			if b.FirstSeen < m.FirstSeen {
				m.FirstSeen = b.FirstSeen
			}
			if b.LastSeen > m.LastSeen {
				m.LastSeen = b.LastSeen
			}
			m.Hosts = unionSorted(m.Hosts, b.Hosts)
			m.Windows = sumWindows(m.Windows, b.Windows)
			m.Snaps = unionRefs(m.Snaps, b.Snaps)
		}
	}

	out := make([]archive.Bucket, 0, len(merged))
	for _, m := range merged {
		m.Windows = evictWindows(m.Windows)
		if len(m.Snaps) > 0 {
			m.Rep = m.Snaps[0].Sum
		} else {
			m.Rep = ""
		}
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Sig < out[j].Sig
	})
	return out
}

// NewestTime reports the newest snap time across a merged bucket
// list — the merged analogue of archive.Archive.NewestTime, and the
// deterministic "now" the gate classifies regressions against.
func NewestTime(buckets []archive.Bucket) uint64 {
	var newest uint64
	for i := range buckets {
		if buckets[i].LastSeen > newest {
			newest = buckets[i].LastSeen
		}
	}
	return newest
}

// FindBucket resolves a signature prefix against a merged bucket
// list, with the same unambiguous-prefix convenience as
// archive.Archive.Bucket.
func FindBucket(buckets []archive.Bucket, sigPrefix string) (archive.Bucket, error) {
	found := -1
	for i := range buckets {
		if buckets[i].Sig == sigPrefix {
			return buckets[i], nil
		}
		if strings.HasPrefix(buckets[i].Sig, sigPrefix) {
			if found >= 0 {
				return archive.Bucket{}, fmt.Errorf("shard: signature prefix %q is ambiguous", sigPrefix)
			}
			found = i
		}
	}
	if found < 0 {
		return archive.Bucket{}, fmt.Errorf("shard: no bucket %q", sigPrefix)
	}
	return buckets[found], nil
}

func cloneBucket(b *archive.Bucket) archive.Bucket {
	c := *b
	c.Hosts = append([]string(nil), b.Hosts...)
	c.Snaps = append([]archive.BlobRef(nil), b.Snaps...)
	c.Windows = append([]archive.RateWindow(nil), b.Windows...)
	return c
}

func unionSorted(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, h := range b {
		i := sort.SearchStrings(out, h)
		if i < len(out) && out[i] == h {
			continue
		}
		out = append(out, "")
		copy(out[i+1:], out[i:])
		out[i] = h
	}
	return out
}

// sumWindows merges two sorted window lists by summing counts per
// start; eviction against the merged newest happens once at the end
// of the fold (evictWindows).
func sumWindows(a, b []archive.RateWindow) []archive.RateWindow {
	out := make([]archive.RateWindow, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Start < b[j].Start:
			out = append(out, a[i])
			i++
		case a[i].Start > b[j].Start:
			out = append(out, b[j])
			j++
		default:
			out = append(out, archive.RateWindow{Start: a[i].Start, Count: a[i].Count + b[j].Count})
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// evictWindows re-applies the single-node retention rule to a merged
// window list: only windows within WindowCap windows of the merged
// newest survive. A shard's local horizon is never ahead of the merged
// one, so merging can only ever need to drop windows, never resurrect
// them.
func evictWindows(ws []archive.RateWindow) []archive.RateWindow {
	if len(ws) == 0 {
		return ws
	}
	newest := ws[len(ws)-1].Start
	span := uint64(archive.WindowCap-1) * archive.WindowWidth
	h := uint64(0)
	if newest > span {
		h = newest - span
	}
	drop := 0
	for drop < len(ws) && ws[drop].Start < h {
		drop++
	}
	return ws[drop:]
}

func unionRefs(a, b []archive.BlobRef) []archive.BlobRef {
	seen := make(map[string]bool, len(a))
	for i := range a {
		seen[a[i].Sum] = true
	}
	out := a
	for i := range b {
		if !seen[b[i].Sum] {
			seen[b[i].Sum] = true
			out = append(out, b[i])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Sum < out[j].Sum
	})
	return out
}
