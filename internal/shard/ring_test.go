package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

func mustRing(t *testing.T, n int) *Ring {
	t.Helper()
	r, err := NewRing(n)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// sumOf fabricates a realistic content address deterministically.
func sumOf(i int) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("snap-%d", i)))
	return hex.EncodeToString(h[:])
}

func TestNewRingBounds(t *testing.T) {
	for _, n := range []int{0, -1, maxShards + 1} {
		if _, err := NewRing(n); err == nil {
			t.Errorf("NewRing(%d) succeeded", n)
		}
	}
	if _, err := NewRing(1); err != nil {
		t.Errorf("NewRing(1): %v", err)
	}
}

func TestPlaceRejectsBadSums(t *testing.T) {
	r := mustRing(t, 3)
	for _, sum := range []string{"", "ab", "zzzzzzzz" + sumOf(0)[8:]} {
		if _, err := r.Place(sum); err == nil {
			t.Errorf("Place(%q) succeeded", sum)
		}
	}
}

// TestRangesTileTheSpace: every shard owns one contiguous interval,
// the intervals cover [0, 2^32) without gap or overlap, and Place
// agrees with Range ownership at and around every boundary.
func TestRangesTileTheSpace(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7, 16, 33} {
		r := mustRing(t, n)
		var prevHi uint64
		for s := 0; s < n; s++ {
			lo, hi := r.Range(s)
			if lo != prevHi {
				t.Fatalf("n=%d shard %d: range starts at %d, want %d", n, s, lo, prevHi)
			}
			if hi <= lo {
				t.Fatalf("n=%d shard %d: empty or inverted range [%d, %d)", n, s, lo, hi)
			}
			for _, p := range []uint64{lo, hi - 1, (lo + hi) / 2} {
				if got := r.place(p); got != s {
					t.Fatalf("n=%d: place(%d) = %d, want %d (range [%d, %d))", n, p, got, s, lo, hi)
				}
			}
			prevHi = hi
		}
		if prevHi != prefixSpace {
			t.Fatalf("n=%d: ranges end at %d, want %d", n, prevHi, prefixSpace)
		}
	}
}

// TestPlacementStabilityOnGrowth: growing the ring from N to N+1
// moves exactly the prefixes inside Ring.Moved's ranges — everything
// else keeps its shard. Checked by brute force across the prefix
// space (sampled densely around every boundary, sparsely elsewhere).
func TestPlacementStabilityOnGrowth(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		old := mustRing(t, n)
		next := mustRing(t, n+1)
		moved := old.Moved(next)

		inMoved := func(p uint64) (MovedRange, bool) {
			for _, m := range moved {
				if p >= m.Lo && p < m.Hi {
					return m, true
				}
			}
			return MovedRange{}, false
		}

		// Probe set: every boundary of both rings ±1, plus a uniform
		// sweep of the space.
		probes := map[uint64]bool{}
		for s := 0; s <= n; s++ {
			for _, ring := range []*Ring{old, next} {
				if s < ring.n {
					lo, hi := ring.Range(s)
					for _, p := range []uint64{lo, lo + 1, hi - 1} {
						probes[p%prefixSpace] = true
					}
				}
			}
		}
		for p := uint64(0); p < prefixSpace; p += prefixSpace / 4096 {
			probes[p] = true
		}

		movedCount := 0
		for p := range probes {
			from, to := old.place(p), next.place(p)
			m, isMoved := inMoved(p)
			if (from != to) != isMoved {
				t.Fatalf("n=%d->%d: prefix %#x placed %d->%d but Moved says %v",
					n, n+1, p, from, to, isMoved)
			}
			if isMoved {
				movedCount++
				if m.From != from || m.To != to {
					t.Fatalf("n=%d->%d: prefix %#x moved %d->%d, Moved range says %d->%d",
						n, n+1, p, from, to, m.From, m.To)
				}
			}
		}
		if movedCount == 0 {
			t.Fatalf("n=%d->%d: growth moved nothing (ring is not rebalancing)", n, n+1)
		}

		// Growth must leave a real stable region. Shard 0's leading
		// range survives any growth (both partitions start at 0), so at
		// least 1/(n+1) of the space never moves.
		var movedSpan uint64
		for _, m := range moved {
			movedSpan += m.Hi - m.Lo
		}
		if stable := prefixSpace - movedSpan; stable < prefixSpace/uint64(n+1) {
			t.Errorf("n=%d->%d: only %d of %d prefixes kept their shard — less than the guaranteed 1/%d",
				n, n+1, stable, prefixSpace, n+1)
		}
	}
}

// TestPlacementByteDeterministic: the same sums place identically
// across runs, goroutines, and GOMAXPROCS settings — placement is a
// pure function with no hidden iteration-order or scheduling input.
func TestPlacementByteDeterministic(t *testing.T) {
	const n = 5
	sums := make([]string, 2000)
	for i := range sums {
		sums[i] = sumOf(i)
	}
	placeAll := func(r *Ring) []byte {
		out := make([]byte, len(sums))
		for i, sum := range sums {
			s, err := r.Place(sum)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = byte(s)
		}
		return out
	}
	want := placeAll(mustRing(t, n))

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		var wg sync.WaitGroup
		results := make([][]byte, 8)
		for g := range results {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				results[g] = placeAll(mustRing(t, n))
			}(g)
		}
		wg.Wait()
		for g, got := range results {
			if string(got) != string(want) {
				t.Fatalf("GOMAXPROCS=%d goroutine %d: placement differs from baseline", procs, g)
			}
		}
	}
}

// TestPlacementBalance: SHA-256 prefixes are uniform, so a real fleet
// spreads across shards — no shard may be empty or hold a gross
// majority at 2000 snaps over 3 shards.
func TestPlacementBalance(t *testing.T) {
	r := mustRing(t, 3)
	counts := make([]int, 3)
	for i := 0; i < 2000; i++ {
		s, err := r.Place(sumOf(i))
		if err != nil {
			t.Fatal(err)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received nothing: %v", s, counts)
		}
		if c > 2000*2/3 {
			t.Fatalf("shard %d holds %d of 2000 snaps: %v", s, c, counts)
		}
	}
}
