// Package shard is the placement and merge layer of the multi-node
// snap warehouse: the pure, coordination-free core that lets N
// tbcollectd instances act as one fleet-scale archive.
//
// Placement (ring.go) is computed from the SHA-256 content address
// every agent already holds: the first 32 bits of the hex sum index a
// range-partitioned ring, so any process that knows the shard count
// derives the same owner for the same snap — no directory service, no
// rendezvous round trip, no coordination of any kind. Growing the ring
// from N to N+1 shards moves only the prefix ranges that the new
// partition boundaries cut through (see Ring.Moved), which is what
// keeps resharding a bounded blob copy rather than a full reshuffle.
//
// Merging (merge.go) is the read side of the same bet: the warehouse
// index is an order-independent reduction of journal records, so the
// union of N shard indexes is itself a pure fold — MergeBuckets
// reproduces, bucket for bucket and byte for byte, the index a single
// node would have built from the same ingest events. The fan-out query
// tier (internal/shard/gate) is thin precisely because this fold does
// all the semantic work.
package shard
