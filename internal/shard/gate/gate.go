// Package gate is the fan-out query tier of the sharded snap
// warehouse: a thin HTTP daemon that presents N tbcollectd shards as
// one. Every triage query fans out to all shards, folds their bucket
// lists with shard.MergeBuckets, and serves the result through the
// same analyzer a single daemon uses — so an operator (or tbstore)
// pointed at a gate sees exactly the views a single node holding the
// whole fleet would serve. The gate holds no warehouse state of its
// own: shards own the journals and blobs, the gate owns only a
// per-query merged snapshot and the triage caches (cluster exemplar
// views, pairwise distances) that make repeated queries cheap.
//
// The gate is deliberately strict about partial views: a triage
// answer computed from N-1 shards is silently wrong (a missing shard
// hides counts, windows, and whole buckets), so any unreachable shard
// fails the query with 502 rather than degrading the math. /healthz
// is where degradation is reported: it aggregates per-shard states
// and answers 503 "degraded" while any shard is down or draining.
package gate

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"traceback/internal/archive"
	"traceback/internal/collect"
	"traceback/internal/recon"
	"traceback/internal/shard"
	"traceback/internal/snap"
	"traceback/internal/telemetry"
	"traceback/internal/triage"
)

// Health states the gate reports, alongside collect.HealthOK.
const (
	// HealthDegraded: at least one shard is down or draining; queries
	// are failing 502 until the fleet is whole again (HTTP 503).
	HealthDegraded = "degraded"
)

// ShardHealth is one shard's state as seen from the gate.
type ShardHealth struct {
	URL   string `json:"url"`
	State string `json:"state"` // collect.HealthOK, collect.HealthDraining, or "down"
}

// HealthResponse is the gate's answer to GET /healthz.
type HealthResponse struct {
	V      int           `json:"v"`
	State  string        `json:"state"` // "ok" or "degraded"
	Shards []ShardHealth `json:"shards"`
}

// Options configures a gate.
type Options struct {
	// Client is the HTTP client used for shard fan-out (default:
	// 30s-timeout client).
	Client *http.Client
	// Maps resolves mapfiles for cluster exemplar reconstruction; nil
	// degrades clustering exactly as it does on a single daemon.
	Maps recon.MapResolver
	// Triage overrides the fleet-health thresholds (zero: defaults).
	Triage triage.Config
	// Telemetry is the registry gate_ metrics land in (nil: private).
	Telemetry *telemetry.Registry
}

// Gate fans triage queries out across the shard fleet and merges
// deterministically. Safe for concurrent use.
type Gate struct {
	shards []string
	ring   *shard.Ring
	client *http.Client

	mux     *http.ServeMux
	hs      *http.Server
	started time.Time
	triage  *triage.Analyzer

	mu      sync.Mutex
	buckets []archive.Bucket // last merged snapshot
	newest  uint64

	reg *telemetry.Registry
	rec *telemetry.Recorder
	met metrics
}

type metrics struct {
	fanouts     *telemetry.Counter
	fanoutFails *telemetry.Counter
	blobFetches *telemetry.Counter
	blobScans   *telemetry.Counter
	mergeNanos  *telemetry.Histogram
}

// New builds a gate over the fleet's shard base URLs, listed in the
// same ring order the agents use.
func New(shards []string, opts Options) (*Gate, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("gate: need at least one shard")
	}
	ring, err := shard.NewRing(len(shards))
	if err != nil {
		return nil, err
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 30 * time.Second}
	}
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	bases := make([]string, len(shards))
	for i, s := range shards {
		bases[i] = strings.TrimRight(s, "/")
	}
	g := &Gate{
		shards:  bases,
		ring:    ring,
		client:  opts.Client,
		started: time.Now(),
		reg:     reg,
		rec:     reg.Recorder(256),
	}
	g.met = metrics{
		fanouts:     reg.Counter("gate_fanouts_total", "shard fan-out rounds executed"),
		fanoutFails: reg.Counter("gate_fanout_errors_total", "fan-out rounds failed by an unreachable shard"),
		blobFetches: reg.Counter("gate_blob_fetches_total", "exemplar blobs fetched from shards"),
		blobScans:   reg.Counter("gate_blob_fallback_scans_total", "blob fetches that scanned past the home shard (failover residue)"),
		mergeNanos:  reg.Histogram("gate_merge_nanos", "per-round shard index merge latency (ns)", telemetry.DurationBuckets()),
	}
	g.triage = triage.New(g, opts.Maps, opts.Triage, reg)

	mux := http.NewServeMux()
	mux.HandleFunc("GET "+collect.PathBuckets, g.handleBuckets)
	mux.HandleFunc("GET "+collect.PathTop, g.handleTop)
	mux.HandleFunc("GET "+collect.PathRegressions, g.handleRegressions)
	mux.HandleFunc("GET "+collect.PathRates, g.handleRates)
	mux.HandleFunc("GET "+collect.PathClusters, g.handleClusters)
	mux.HandleFunc("GET "+collect.PathMetrics, g.handleMetrics)
	mux.HandleFunc("GET "+collect.PathHealth, g.handleHealth)
	g.mux = mux
	return g, nil
}

// Handler exposes the gate's routes (httptest-friendly).
func (g *Gate) Handler() http.Handler { return g.mux }

// Metrics returns the gate's registry.
func (g *Gate) Metrics() *telemetry.Registry { return g.reg }

// Serve accepts connections on l until Shutdown.
func (g *Gate) Serve(l net.Listener) error {
	g.hs = &http.Server{Handler: g.mux}
	return g.hs.Serve(l)
}

// Shutdown stops the gate. It owns no warehouse state, so shutdown is
// just the listener.
func (g *Gate) Shutdown(ctx context.Context) error {
	if g.hs == nil {
		return nil
	}
	return g.hs.Shutdown(ctx)
}

// refresh fans /v1/buckets out to every shard and swaps in the merged
// snapshot. Any unreachable shard fails the whole refresh — a partial
// merge would serve wrong answers, not stale ones.
func (g *Gate) refresh(ctx context.Context) error {
	g.met.fanouts.Inc()
	lists := make([][]archive.Bucket, len(g.shards))
	errs := make([]error, len(g.shards))
	var wg sync.WaitGroup
	for i, base := range g.shards {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			lists[i], errs[i] = g.fetchBuckets(ctx, base)
		}(i, base)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			g.met.fanoutFails.Inc()
			g.rec.Record(0, "gate-fanout-error", fmt.Sprintf("shard %d (%s): %v", i, g.shards[i], err))
			return fmt.Errorf("gate: shard %d (%s): %w", i, g.shards[i], err)
		}
	}
	t0 := time.Now()
	merged := shard.MergeBuckets(lists...)
	g.met.mergeNanos.Observe(uint64(time.Since(t0)))

	g.mu.Lock()
	g.buckets = merged
	g.newest = shard.NewestTime(merged)
	g.mu.Unlock()
	return nil
}

func (g *Gate) fetchBuckets(ctx context.Context, base string) ([]archive.Bucket, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+collect.PathBuckets, nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("buckets: unexpected status %s", resp.Status)
	}
	var tr collect.TopResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return nil, fmt.Errorf("buckets: %w", err)
	}
	return tr.Buckets, nil
}

// Buckets, Bucket, NewestTime, and LoadSnap satisfy triage.Warehouse
// over the last merged snapshot, so the single-node analyzer triages
// the whole fleet unchanged.
var _ triage.Warehouse = (*Gate)(nil)

func (g *Gate) Buckets() []archive.Bucket {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]archive.Bucket, len(g.buckets))
	copy(out, g.buckets)
	return out
}

func (g *Gate) Bucket(sigPrefix string) (archive.Bucket, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return shard.FindBucket(g.buckets, sigPrefix)
}

func (g *Gate) NewestTime() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.newest
}

// LoadSnap fetches a blob from its ring-home shard, falling back to a
// scan of the others: after an agent failover the blob may be
// resident off-home, and the gate must still find it.
func (g *Gate) LoadSnap(sum string) (*snap.Snap, error) {
	home, err := g.ring.Place(sum)
	if err != nil {
		return nil, err
	}
	g.met.blobFetches.Inc()
	var lastErr error
	for i := 0; i < len(g.shards); i++ {
		s := (home + i) % len(g.shards)
		if i > 0 {
			g.met.blobScans.Inc()
		}
		sn, err := g.fetchSnap(g.shards[s], sum)
		if err == nil {
			return sn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("gate: blob %s: %w", sum[:12], lastErr)
}

func (g *Gate) fetchSnap(base, sum string) (*snap.Snap, error) {
	resp, err := g.client.Get(base + collect.PathBlobPrefix + sum)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("blob: unexpected status %s", resp.Status)
	}
	return snap.LoadAuto(resp.Body)
}

func (g *Gate) handleBuckets(w http.ResponseWriter, r *http.Request) {
	if !g.refreshOr502(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, collect.TopResponse{V: 1, Buckets: g.Buckets()})
}

func (g *Gate) handleTop(w http.ResponseWriter, r *http.Request) {
	if !g.refreshOr502(w, r) {
		return
	}
	n := 10
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	buckets := g.Buckets()
	if n > 0 && len(buckets) > n {
		buckets = buckets[:n]
	}
	writeJSON(w, http.StatusOK, collect.TopResponse{V: 1, Buckets: buckets})
}

func (g *Gate) handleRegressions(w http.ResponseWriter, r *http.Request) {
	if !g.refreshOr502(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, g.triage.Regressions())
}

func (g *Gate) handleRates(w http.ResponseWriter, r *http.Request) {
	sig := r.URL.Query().Get("sig")
	if sig == "" {
		http.Error(w, "missing sig parameter", http.StatusBadRequest)
		return
	}
	if !g.refreshOr502(w, r) {
		return
	}
	rep, err := g.triage.Rates(sig)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (g *Gate) handleClusters(w http.ResponseWriter, r *http.Request) {
	if !g.refreshOr502(w, r) {
		return
	}
	rep, err := g.triage.Clusters()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (g *Gate) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := g.reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := g.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleHealth probes every shard and aggregates: "ok" only when the
// whole fleet is serving.
func (g *Gate) handleHealth(w http.ResponseWriter, r *http.Request) {
	states := make([]ShardHealth, len(g.shards))
	var wg sync.WaitGroup
	for i, base := range g.shards {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			states[i] = ShardHealth{URL: base, State: g.probeShard(r.Context(), base)}
		}(i, base)
	}
	wg.Wait()
	state, code := collect.HealthOK, http.StatusOK
	for _, s := range states {
		if s.State != collect.HealthOK {
			state, code = HealthDegraded, http.StatusServiceUnavailable
			break
		}
	}
	writeJSON(w, code, HealthResponse{V: 1, State: state, Shards: states})
}

func (g *Gate) probeShard(ctx context.Context, base string) string {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+collect.PathHealth, nil)
	if err != nil {
		return "down"
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return "down"
	}
	defer resp.Body.Close()
	var hr collect.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil || hr.State == "" {
		return "down"
	}
	return hr.State
}

func (g *Gate) refreshOr502(w http.ResponseWriter, r *http.Request) bool {
	if err := g.refresh(r.Context()); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
