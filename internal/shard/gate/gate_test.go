package gate

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"traceback/internal/archive"
	"traceback/internal/collect"
	"traceback/internal/shard"
	"traceback/internal/snap"
)

func mkSnap(bucket int, host string, tm uint64) *snap.Snap {
	return &snap.Snap{
		Host: host, Process: "app", PID: 100, RuntimeID: 1,
		Reason: "exception SIGSEGV", Signal: 11, Time: tm,
		Modules: []snap.ModuleInfo{{Name: "app", Checksum: fmt.Sprintf("c%02d", bucket), DAGCount: 1}},
		Buffers: []snap.BufferDump{{Kind: snap.BufMain, OwnerTID: 1, LastKnown: true,
			SubWords: 4, Raw: []byte{byte(bucket), 0, 0, 0}}},
	}
}

func openArch(t *testing.T, dir string) *archive.Archive {
	t.Helper()
	a, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

// newFleet builds n shard daemons plus a single-node daemon holding
// the same fleet, ingesting snaps split by ring placement.
func newFleet(t *testing.T, n, snaps int) (bases []string, archs []*archive.Archive, srvs []*collect.Server, single *httptest.Server) {
	t.Helper()
	ring, err := shard.NewRing(n)
	if err != nil {
		t.Fatal(err)
	}
	singleArch := openArch(t, filepath.Join(t.TempDir(), "single"))
	for i := 0; i < n; i++ {
		arch := openArch(t, filepath.Join(t.TempDir(), fmt.Sprintf("s%d", i)))
		srv := collect.NewServer(arch, collect.ServerOptions{})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		bases = append(bases, ts.URL)
		archs = append(archs, arch)
		srvs = append(srvs, srv)
	}
	for i := 0; i < snaps; i++ {
		s := mkSnap(i%4, fmt.Sprintf("h%d", i%3), uint64(1+i)*archive.WindowWidth/2)
		sig := archive.SignSnap(s, nil)
		if _, err := singleArch.IngestUnique(s, sig); err != nil {
			t.Fatal(err)
		}
		sum, _, err := archive.ChecksumSnap(s)
		if err != nil {
			t.Fatal(err)
		}
		home, err := ring.Place(sum)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := archs[home].IngestUnique(s, sig); err != nil {
			t.Fatal(err)
		}
	}
	singleSrv := collect.NewServer(singleArch, collect.ServerOptions{})
	single = httptest.NewServer(singleSrv.Handler())
	t.Cleanup(single.Close)
	return bases, archs, srvs, single
}

func newGate(t *testing.T, bases []string) *httptest.Server {
	t.Helper()
	g, err := New(bases, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestGateMatchesSingleNode: every triage route through the gate
// answers byte-identically to a single daemon that ingested the whole
// fleet — the merge-as-pure-fold property, end to end over the wire.
func TestGateMatchesSingleNode(t *testing.T) {
	bases, _, _, single := newFleet(t, 3, 24)
	gw := newGate(t, bases)

	var sig string
	{
		_, body := get(t, single.URL+collect.PathBuckets)
		var tr collect.TopResponse
		if err := json.Unmarshal(body, &tr); err != nil {
			t.Fatal(err)
		}
		if len(tr.Buckets) < 2 {
			t.Fatalf("fleet built only %d bucket(s)", len(tr.Buckets))
		}
		sig = tr.Buckets[0].Sig
	}

	routes := []string{
		collect.PathBuckets,
		collect.PathTop + "?n=2",
		collect.PathRegressions,
		collect.PathRates + "?sig=" + sig[:8],
		collect.PathClusters,
	}
	for _, route := range routes {
		wantCode, want := get(t, single.URL+route)
		gotCode, got := get(t, gw.URL+route)
		if gotCode != wantCode {
			t.Errorf("%s: gate answered %d, single node %d", route, gotCode, wantCode)
			continue
		}
		if string(got) != string(want) {
			t.Errorf("%s: gate response differs from single node\ngate:\n%s\nsingle:\n%s", route, got, want)
		}
	}
}

// TestGateLoadSnapFindsFailoverResidue: a blob resident only off its
// home shard (the footprint of an agent failover) is still found by
// the gate's fallback scan.
func TestGateLoadSnapFindsFailoverResidue(t *testing.T) {
	bases, archs, _, _ := newFleet(t, 2, 0)
	ring, err := shard.NewRing(2)
	if err != nil {
		t.Fatal(err)
	}

	s := mkSnap(1, "h1", 1000)
	sum, _, err := archive.ChecksumSnap(s)
	if err != nil {
		t.Fatal(err)
	}
	home, err := ring.Place(sum)
	if err != nil {
		t.Fatal(err)
	}
	away := (home + 1) % 2
	if _, err := archs[away].IngestUnique(s, archive.SignSnap(s, nil)); err != nil {
		t.Fatal(err)
	}

	g, err := New(bases, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.LoadSnap(sum)
	if err != nil {
		t.Fatalf("LoadSnap across shards: %v", err)
	}
	gotSum, _, err := archive.ChecksumSnap(got)
	if err != nil {
		t.Fatal(err)
	}
	if gotSum != sum {
		t.Errorf("fetched snap re-checksums to %s, want %s", gotSum[:8], sum[:8])
	}
}

// TestGateShardDownFailsClosed: with one shard unreachable, queries
// answer 502 (a partial merge would be silently wrong) and /healthz
// reports degraded with the per-shard breakdown.
func TestGateShardDownFailsClosed(t *testing.T) {
	bases, _, srvs, _ := newFleet(t, 3, 12)
	// Rebind shard 2's URL to a dead server.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	bases[2] = dead.URL
	gw := newGate(t, bases)

	if code, _ := get(t, gw.URL+collect.PathBuckets); code != http.StatusBadGateway {
		t.Errorf("buckets with a dead shard: %d, want 502", code)
	}
	code, body := get(t, gw.URL+collect.PathHealth)
	if code != http.StatusServiceUnavailable {
		t.Errorf("healthz with a dead shard: %d, want 503", code)
	}
	var hr HealthResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.State != HealthDegraded {
		t.Errorf("state %q, want %q", hr.State, HealthDegraded)
	}
	if len(hr.Shards) != 3 || hr.Shards[2].State != "down" {
		t.Errorf("per-shard states %+v, want shard 2 down", hr.Shards)
	}

	// A draining shard also degrades the gate, with its own state.
	srvs[1].BeginDrain()
	_, body = get(t, gw.URL+collect.PathHealth)
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Shards[1].State != collect.HealthDraining {
		t.Errorf("draining shard reports %q, want %q", hr.Shards[1].State, collect.HealthDraining)
	}
}
