package shard

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"traceback/internal/archive"
	"traceback/internal/snap"
)

// mkSnap builds a synthetic snap. bucket selects the (weak) crash
// signature, host and tm vary the content so each call is a distinct
// blob inside its bucket.
func mkSnap(bucket int, host string, tm uint64) *snap.Snap {
	return &snap.Snap{
		Host: host, Process: "app", PID: 100, RuntimeID: 1,
		Reason: "exception SIGSEGV", Signal: 11, Time: tm,
		Modules: []snap.ModuleInfo{{Name: "app", Checksum: fmt.Sprintf("c%02d", bucket), DAGCount: 1}},
		Buffers: []snap.BufferDump{{Kind: snap.BufMain, OwnerTID: 1, LastKnown: true,
			SubWords: 4, Raw: []byte{byte(bucket), 0, 0, 0}}},
	}
}

func openArch(t *testing.T, dir string) *archive.Archive {
	t.Helper()
	a, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

// fleetSnaps builds a varied fleet: several buckets, several hosts,
// times spanning more than WindowCap windows so merge must re-apply
// window eviction.
func fleetSnaps() []*snap.Snap {
	var out []*snap.Snap
	W := archive.WindowWidth
	for i := 0; i < 40; i++ {
		bucket := i % 4
		host := fmt.Sprintf("h%d", i%5)
		tm := uint64(i) * 3 * W / 2 // every 1.5 windows
		out = append(out, mkSnap(bucket, host, tm))
	}
	// A late burst far past the horizon, so bucket 0's earliest windows
	// must be evicted from the merged view exactly as a single node
	// would have evicted them.
	late := uint64(archive.WindowCap+8) * W
	for i := 0; i < 4; i++ {
		out = append(out, mkSnap(0, "late", late+uint64(i)*W))
	}
	return out
}

// TestMergeEqualsSingleNodeReduction splits a fleet across 3 shard
// archives by ring placement and checks MergeBuckets reproduces the
// single-node bucket list exactly — the pure-fold property the gate
// relies on.
func TestMergeEqualsSingleNodeReduction(t *testing.T) {
	snaps := fleetSnaps()
	ring := mustRing(t, 3)

	single := openArch(t, filepath.Join(t.TempDir(), "single"))
	shards := make([]*archive.Archive, 3)
	for i := range shards {
		shards[i] = openArch(t, filepath.Join(t.TempDir(), fmt.Sprintf("s%d", i)))
	}
	for _, s := range snaps {
		sig := archive.SignSnap(s, nil)
		if _, err := single.IngestUnique(s, sig); err != nil {
			t.Fatal(err)
		}
		sum, _, err := archive.ChecksumSnap(s)
		if err != nil {
			t.Fatal(err)
		}
		home, err := ring.Place(sum)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := shards[home].IngestUnique(s, sig); err != nil {
			t.Fatal(err)
		}
	}

	var lists [][]archive.Bucket
	occupied := 0
	for _, sh := range shards {
		b := sh.Buckets()
		if len(b) > 0 {
			occupied++
		}
		lists = append(lists, b)
	}
	if occupied < 2 {
		t.Fatalf("placement sent the whole fleet to %d shard(s); the merge test needs a real split", occupied)
	}

	got := MergeBuckets(lists...)
	want := single.Buckets()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged buckets differ from single-node reduction:\ngot  %+v\nwant %+v", got, want)
	}
	if NewestTime(got) != single.NewestTime() {
		t.Errorf("merged NewestTime = %d, want %d", NewestTime(got), single.NewestTime())
	}
}

// TestMergeDedupsFailoverCopies: the same content resident on two
// shards (an agent failover landed it off its home shard, then a
// retry landed it home) merges to one blob ref with the occurrence
// count reflecting both journaled landings — nothing lost, nothing
// double-listed.
func TestMergeDedupsFailoverCopies(t *testing.T) {
	s := mkSnap(1, "h1", 1000)
	sig := archive.SignSnap(s, nil)
	a := openArch(t, filepath.Join(t.TempDir(), "a"))
	b := openArch(t, filepath.Join(t.TempDir(), "b"))
	if _, err := a.IngestUnique(s, sig); err != nil {
		t.Fatal(err)
	}
	if _, err := b.IngestUnique(s, sig); err != nil {
		t.Fatal(err)
	}

	merged := MergeBuckets(a.Buckets(), b.Buckets())
	if len(merged) != 1 {
		t.Fatalf("merged %d bucket(s), want 1", len(merged))
	}
	m := merged[0]
	if len(m.Snaps) != 1 {
		t.Errorf("merged bucket lists %d blob ref(s), want 1 (same content address)", len(m.Snaps))
	}
	if m.Count != 2 {
		t.Errorf("merged count = %d, want 2 (each landing was a journaled ingest)", m.Count)
	}
	if m.Rep != m.Snaps[0].Sum {
		t.Errorf("merged rep %q is not the earliest resident snap %q", m.Rep, m.Snaps[0].Sum)
	}
}

func TestFindBucketPrefixResolution(t *testing.T) {
	a := openArch(t, filepath.Join(t.TempDir(), "a"))
	for bucket := 0; bucket < 3; bucket++ {
		s := mkSnap(bucket, "h1", uint64(1000*(bucket+1)))
		if _, err := a.IngestUnique(s, archive.SignSnap(s, nil)); err != nil {
			t.Fatal(err)
		}
	}
	buckets := MergeBuckets(a.Buckets())
	full := buckets[0].Sig
	got, err := FindBucket(buckets, full[:6])
	if err != nil {
		t.Fatalf("prefix resolve: %v", err)
	}
	if got.Sig != full {
		t.Errorf("resolved %q, want %q", got.Sig, full)
	}
	if _, err := FindBucket(buckets, "nope"); err == nil {
		t.Error("unknown prefix resolved")
	}
	if _, err := FindBucket(buckets, ""); err == nil && len(buckets) > 1 {
		t.Error("empty prefix resolved despite being ambiguous")
	}
}
