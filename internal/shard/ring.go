package shard

import (
	"fmt"
	"sort"
	"strconv"
)

// PrefixBits is how much of the content address places a snap: the
// leading 32 bits (8 hex digits) of its SHA-256. SHA-256 output is
// uniform, so range-partitioning this prefix balances shards to within
// statistical noise without looking at the rest of the sum.
const PrefixBits = 32

// prefixSpace is the size of the placement key space, 2^PrefixBits.
const prefixSpace = uint64(1) << PrefixBits

// maxShards bounds the ring size so the fixed-point arithmetic in
// Place and Range stays comfortably inside uint64.
const maxShards = 1 << 16

// Ring is a fixed-size shard ring: a deterministic, stateless map
// from content addresses to shard ordinals [0, N). Two Rings built
// with the same N agree everywhere, which is the whole coordination
// story — agents, gates, and checkers each build their own.
type Ring struct {
	n int
}

// NewRing builds a ring over n shards.
func NewRing(n int) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: ring needs at least 1 shard, got %d", n)
	}
	if n > maxShards {
		return nil, fmt.Errorf("shard: ring of %d shards exceeds the supported maximum %d", n, maxShards)
	}
	return &Ring{n: n}, nil
}

// Shards reports the ring size.
func (r *Ring) Shards() int { return r.n }

// Prefix extracts the placement key from a SHA-256 hex sum: its first
// 8 hex digits as a 32-bit integer. The sum must be at least 8
// lowercase-hex characters (every content address the archive produces
// is 64).
func Prefix(sum string) (uint64, error) {
	if len(sum) < PrefixBits/4 {
		return 0, fmt.Errorf("shard: content address %q too short for placement", sum)
	}
	p, err := strconv.ParseUint(sum[:PrefixBits/4], 16, PrefixBits)
	if err != nil {
		return 0, fmt.Errorf("shard: content address %q is not hex: %v", sum, err)
	}
	return p, nil
}

// Place maps a content address onto its home shard. The partition is
// shard = prefix·N / 2^32 — each shard owns one contiguous prefix
// range, and the map is a pure function of (sum, N).
func (r *Ring) Place(sum string) (int, error) {
	p, err := Prefix(sum)
	if err != nil {
		return 0, err
	}
	return r.place(p), nil
}

func (r *Ring) place(prefix uint64) int {
	return int(prefix * uint64(r.n) / prefixSpace)
}

// Range reports the half-open prefix interval [lo, hi) shard s owns.
// The intervals tile the space: Range(0).lo == 0, Range(N-1).hi ==
// 2^32, and Range(s).hi == Range(s+1).lo.
func (r *Ring) Range(s int) (lo, hi uint64) {
	lo = ceilDiv(uint64(s)*prefixSpace, uint64(r.n))
	hi = ceilDiv(uint64(s+1)*prefixSpace, uint64(r.n))
	return lo, hi
}

func ceilDiv(a, b uint64) uint64 { return (a + b - 1) / b }

// MovedRange is one contiguous prefix interval whose ownership
// changes between two ring sizes.
type MovedRange struct {
	Lo, Hi   uint64 // half-open prefix interval
	From, To int    // owning shard before and after
}

// Moved enumerates exactly the prefix ranges that change owner when
// the ring grows (or shrinks) from r to next: the union of both rings'
// partition boundaries, filtered to intervals whose owners differ.
// Everything outside the returned ranges keeps its shard — the
// stability property the placement tests pin down.
func (r *Ring) Moved(next *Ring) []MovedRange {
	cuts := map[uint64]bool{0: true, prefixSpace: true}
	for s := 0; s < r.n; s++ {
		lo, _ := r.Range(s)
		cuts[lo] = true
	}
	for s := 0; s < next.n; s++ {
		lo, _ := next.Range(s)
		cuts[lo] = true
	}
	bounds := make([]uint64, 0, len(cuts))
	for c := range cuts {
		bounds = append(bounds, c)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })

	var out []MovedRange
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		from, to := r.place(lo), next.place(lo)
		if from != to {
			// Within [lo, hi) both placements are constant (no boundary
			// of either ring cuts it), so the whole interval moves.
			out = append(out, MovedRange{Lo: lo, Hi: hi, From: from, To: to})
		}
	}
	return out
}
