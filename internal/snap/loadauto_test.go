package snap

import (
	"bytes"
	"compress/gzip"
	"errors"
	"strings"
	"testing"
)

func testSnap() *Snap {
	return &Snap{
		Host: "h", Process: "p", PID: 1, RuntimeID: 42, Reason: "api", Time: 99,
		Buffers: []BufferDump{{Kind: BufMain, OwnerTID: 1, LastPtr: 0, LastKnown: true,
			SubWords: 4, Raw: []byte{1, 0, 0, 0}}},
	}
}

func gzipped(t *testing.T, s *Snap) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.SaveCompressed(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadAutoEmptyInput(t *testing.T) {
	_, err := LoadAuto(strings.NewReader(""))
	if !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestLoadAutoTruncatedGzip(t *testing.T) {
	z := gzipped(t, testSnap())
	// Cut at several depths: inside the header, inside the deflate
	// body, and inside the 8-byte CRC/size trailer.
	for _, cut := range []int{3, len(z) / 2, len(z) - 4} {
		_, err := LoadAuto(bytes.NewReader(z[:cut]))
		if err == nil {
			t.Fatalf("cut at %d: no error", cut)
		}
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestLoadAutoTrailingGarbage(t *testing.T) {
	z := gzipped(t, testSnap())
	for name, tail := range map[string][]byte{
		"junk":          []byte("EXTRA BYTES"),
		"second-member": gzipped(t, testSnap()),
	} {
		_, err := LoadAuto(bytes.NewReader(append(append([]byte(nil), z...), tail...)))
		if !errors.Is(err, ErrTrailingData) {
			t.Errorf("%s: err = %v, want ErrTrailingData", name, err)
		}
	}
}

func TestLoadAutoGzipNonJSON(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte("not json at all"))
	zw.Close()
	_, err := LoadAuto(&buf)
	if err == nil {
		t.Fatal("no error for gzip-wrapped non-JSON")
	}
	if errors.Is(err, ErrTruncated) || errors.Is(err, ErrTrailingData) || errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v misclassified; want a plain decode failure", err)
	}
}

func TestLoadAutoCompleteMemberStillLoads(t *testing.T) {
	s, err := LoadAuto(bytes.NewReader(gzipped(t, testSnap())))
	if err != nil {
		t.Fatal(err)
	}
	if s.RuntimeID != 42 {
		t.Fatalf("RuntimeID = %d, want 42", s.RuntimeID)
	}
}

func TestLoadAutoOneBytePlain(t *testing.T) {
	// A single non-gzip byte is not empty, not gzip: it must fall to
	// the plain-JSON path and fail there without panicking.
	_, err := LoadAuto(strings.NewReader("{"))
	if err == nil {
		t.Fatal("no error for bare '{'")
	}
	if errors.Is(err, ErrEmpty) {
		t.Error("bare '{' misclassified as empty")
	}
}
