package snap

import (
	"bytes"
	"compress/gzip"
	"reflect"
	"testing"
)

// FuzzSnapReader feeds arbitrary bytes — including valid snaps,
// gzipped snaps, and truncated gzip streams — to the snap reader.
// LoadAuto must either return a snap or an error, never panic, and
// any snap it accepts must survive save→load round trips in both
// plain and compressed form.
func FuzzSnapReader(f *testing.F) {
	valid := &Snap{
		Host: "h", Process: "p", PID: 7, RuntimeID: 0xabcdef, Reason: "api",
		Time: 123456,
		Modules: []ModuleInfo{{
			Name: "m", Checksum: "00ff", ActualDAGBase: 1, DAGCount: 2,
			CodeBase: 0x1000, CodeLen: 64, DataBase: 0x2000, DataDump: []byte{1, 2, 3},
		}},
		Buffers: []BufferDump{{
			Kind: BufMain, OwnerTID: 1, LastPtr: 3, LastKnown: true,
			CommittedSub: 0, SubWords: 4, Raw: []byte{0xAA, 0, 0, 0x80, 0xFF, 0xFF, 0xFF, 0xFF},
		}},
		Partners: []uint64{9},
	}
	var plain bytes.Buffer
	if err := valid.Save(&plain); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes())

	var zipped bytes.Buffer
	if err := valid.SaveCompressed(&zipped); err != nil {
		f.Fatal(err)
	}
	f.Add(zipped.Bytes())
	// Truncated gzip: valid magic and header, body cut mid-stream.
	f.Add(zipped.Bytes()[:len(zipped.Bytes())/2])
	// Gzip magic with nothing behind it.
	f.Add([]byte{0x1f, 0x8b})
	// Gzip wrapping non-JSON.
	var junkz bytes.Buffer
	zw := gzip.NewWriter(&junkz)
	zw.Write([]byte("not json"))
	zw.Close()
	f.Add(junkz.Bytes())
	// Plain junk and empty-ish inputs.
	f.Add([]byte("{"))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"buffers":[{"raw":"AAAA"}]}`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := LoadAuto(bytes.NewReader(data))
		if err != nil {
			return // rejecting is always fine; panicking is not
		}
		// One save canonicalizes (fuzzer inputs may carry forms Save
		// never emits, e.g. present-but-empty omitempty fields); from
		// then on save→load→save must be a byte-for-byte fixed point.
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("accepted snap fails to save: %v", err)
		}
		canonical := append([]byte(nil), buf.Bytes()...)
		s2, err := Load(&buf)
		if err != nil {
			t.Fatalf("saved snap fails to reload: %v", err)
		}
		var buf2 bytes.Buffer
		if err := s2.Save(&buf2); err != nil {
			t.Fatalf("resave: %v", err)
		}
		if !bytes.Equal(canonical, buf2.Bytes()) {
			t.Fatalf("save is not a fixed point after canonicalization:\n%s\nvs\n%s", canonical, buf2.Bytes())
		}
		var zbuf bytes.Buffer
		if err := s2.SaveCompressed(&zbuf); err != nil {
			t.Fatalf("compressed save: %v", err)
		}
		s3, err := LoadAuto(bytes.NewReader(zbuf.Bytes()))
		if err != nil {
			t.Fatalf("compressed reload: %v", err)
		}
		if !reflect.DeepEqual(s2, s3) {
			t.Fatalf("compressed round trip changed the snap")
		}
		// Decoding buffer words must tolerate whatever Raw came in
		// (including lengths that are not word multiples).
		for i := range s.Buffers {
			_ = s.Buffers[i].Words()
		}
	})
}
