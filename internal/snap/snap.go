// Package snap defines the TraceBack snapshot file: the collection of
// raw trace buffers and process metadata from which reconstruction
// rebuilds an execution history (paper §3.6). A snap records the
// process and host identity, the loaded-module list with checksums
// and the DAG ID ranges actually in use (after any load-time
// rebasing), the trigger, and every trace buffer's contents.
package snap

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// BufferKind classifies a dumped buffer.
type BufferKind uint8

const (
	BufMain BufferKind = iota
	BufStatic
	BufProbation
	BufDesperation
)

func (k BufferKind) String() string {
	switch k {
	case BufMain:
		return "main"
	case BufStatic:
		return "static"
	case BufProbation:
		return "probation"
	case BufDesperation:
		return "desperation"
	}
	return fmt.Sprintf("bufkind(%d)", uint8(k))
}

// ModuleInfo describes one module load as reconstruction needs it:
// the checksum keys the matching mapfile, ActualDAGBase maps DAG IDs
// in trace records back to module-relative IDs, and CodeBase maps
// exception addresses back into the module.
type ModuleInfo struct {
	Name          string `json:"name"`
	Checksum      string `json:"checksum"`
	ActualDAGBase uint32 `json:"dagBase"`
	DAGCount      uint32 `json:"dagCount"`
	CodeBase      uint32 `json:"codeBase"`
	CodeLen       uint32 `json:"codeLen"`
	Unloaded      bool   `json:"unloaded,omitempty"`
	BadDAG        bool   `json:"badDag,omitempty"` // runtime exhausted the ID space for this module
	// DataBase and DataDump capture the module's data segment at
	// snap time (the paper's §3.6 memory dump, letting the viewer
	// display variable values).
	DataBase uint32 `json:"dataBase,omitempty"`
	DataDump []byte `json:"dataDump,omitempty"`
}

// BufferDump is one trace buffer's raw contents.
type BufferDump struct {
	Kind BufferKind `json:"kind"`
	// OwnerTID is the thread using the buffer at snap time (0: free).
	OwnerTID uint32 `json:"ownerTid"`
	// LastPtr is the word index of the last written record, when the
	// runtime knows it (live thread TLS, or saved at orderly release).
	// LastKnown is false after abrupt termination: reconstruction
	// must fall back to the committed-sub-buffer scan (paper §3.2).
	LastPtr   uint32 `json:"lastPtr"`
	LastKnown bool   `json:"lastKnown"`
	// CommittedSub is the index of the last committed sub-buffer from
	// the buffer header, and SubWords the sub-buffer size in words.
	CommittedSub uint32 `json:"committedSub"`
	SubWords     uint32 `json:"subWords"`
	// Raw holds the buffer words, little-endian.
	Raw []byte `json:"raw"`
}

// Words decodes the raw bytes into trace words.
func (b *BufferDump) Words() []uint32 {
	out := make([]uint32, len(b.Raw)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b.Raw[i*4:])
	}
	return out
}

// SetWords encodes words into Raw.
func (b *BufferDump) SetWords(words []uint32) {
	b.Raw = make([]byte, len(words)*4)
	for i, w := range words {
		binary.LittleEndian.PutUint32(b.Raw[i*4:], w)
	}
}

// NondetLog is the optional record-and-replay section: the encoded
// nondeterminism log (trace.EncodeNondet words, little-endian) of the
// run that produced the snap, plus the provenance internal/replay
// needs to rebuild the same world. The section is format-versioned
// and optional — snaps written before it existed decode with Nondet
// nil and replay is simply unavailable for them.
type NondetLog struct {
	// V is the section format version (bump on layout change).
	V int `json:"v"`
	// Scenario names the world builder that produced the run (a
	// scenario.Builders entry, or "petshop" for the managed runtime).
	Scenario string `json:"scenario"`
	// Wrap marks a run under the tiny-buffer wrap-stress runtime
	// config; Trial marks a fault-campaign-style harvest (service
	// heartbeat + per-role post-mortem) rather than the scenario's
	// own Collect path.
	Wrap  bool `json:"wrap,omitempty"`
	Trial bool `json:"trial,omitempty"`
	// Interval is the quantum-checkpoint period the recording used.
	Interval uint64 `json:"interval"`
	// Raw holds the encoded log words, little-endian.
	Raw []byte `json:"raw"`
}

// Words decodes the raw bytes into log words.
func (n *NondetLog) Words() []uint32 {
	out := make([]uint32, len(n.Raw)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(n.Raw[i*4:])
	}
	return out
}

// SetWords encodes words into Raw.
func (n *NondetLog) SetWords(words []uint32) {
	n.Raw = make([]byte, len(words)*4)
	for i, w := range words {
		binary.LittleEndian.PutUint32(n.Raw[i*4:], w)
	}
}

// Snap is a complete snapshot.
type Snap struct {
	Host      string `json:"host"`
	Process   string `json:"process"`
	PID       int    `json:"pid"`
	RuntimeID uint64 `json:"runtimeId"`
	// Reason is the trigger description ("exception SIGSEGV", "api",
	// "hang", "group", "external").
	Reason     string `json:"reason"`
	TriggerTID uint32 `json:"triggerTid,omitempty"`
	Signal     int    `json:"signal,omitempty"`
	FaultAddr  uint64 `json:"faultAddr,omitempty"`
	Time       uint64 `json:"time"`

	Modules []ModuleInfo `json:"modules"`
	Buffers []BufferDump `json:"buffers"`

	// Partners lists peer runtime IDs this runtime exchanged RPCs
	// with; the distributed reconstructor uses it to find related
	// snaps.
	Partners []uint64 `json:"partners,omitempty"`

	// Nondet, when present, carries the recorded nondeterminism log
	// of the run that produced this snap (see NondetLog); tbreplay
	// re-executes from it. Optional: old snaps load unchanged.
	Nondet *NondetLog `json:"nondet,omitempty"`
}

// ModuleForDAG resolves a (rebased) DAG ID to its module and the
// module-relative ID, per the actual ranges recorded at snap time.
func (s *Snap) ModuleForDAG(id uint32) (ModuleInfo, uint32, bool) {
	for _, mi := range s.Modules {
		if mi.BadDAG {
			continue
		}
		if id >= mi.ActualDAGBase && id < mi.ActualDAGBase+mi.DAGCount {
			return mi, id - mi.ActualDAGBase, true
		}
	}
	return ModuleInfo{}, 0, false
}

// ModuleForAddr resolves an absolute code address to its module.
func (s *Snap) ModuleForAddr(addr uint64) (ModuleInfo, bool) {
	for _, mi := range s.Modules {
		if addr >= uint64(mi.CodeBase) && addr < uint64(mi.CodeBase)+uint64(mi.CodeLen) {
			return mi, true
		}
	}
	return ModuleInfo{}, false
}

// Save writes the snap as JSON.
func (s *Snap) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// Load reads a snap.
func Load(r io.Reader) (*Snap, error) {
	var s Snap
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	return &s, nil
}
