package snap

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// The paper notes that trace buffers are "readily compressible by a
// factor of 10 or more for ease of archiving or transmission": DAG
// records repeat heavily (hot loops re-record the same header word).
// SaveCompressed/LoadAuto provide that archival form.

// Load-error classes, matchable with errors.Is. Archival tooling
// (the snap warehouse, batch reconstruction) dispatches on these to
// tell a corrupt transfer from an empty file from a snap with junk
// appended, instead of pattern-matching raw decoder messages.
var (
	// ErrEmpty: the input held no bytes at all.
	ErrEmpty = errors.New("empty snap input")
	// ErrTruncated: the input ended mid-stream (cut-short gzip body or
	// JSON document — the footprint of an interrupted copy).
	ErrTruncated = errors.New("truncated snap input")
	// ErrTrailingData: a complete gzip member was followed by further
	// bytes (a second member or appended garbage); the snap archival
	// form is exactly one member.
	ErrTrailingData = errors.New("trailing data after snap")
)

// SaveCompressed writes the snap as gzip-compressed JSON.
func (s *Snap) SaveCompressed(w io.Writer) error {
	zw, err := gzip.NewWriterLevel(w, gzip.BestCompression)
	if err != nil {
		return err
	}
	if err := s.Save(zw); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}

// LoadAuto reads a snap in either plain-JSON or gzip form, sniffing
// the magic bytes. Gzip input must be a single complete member:
// truncation and trailing garbage are reported as wrapped ErrTruncated
// / ErrTrailingData rather than raw decoder failures.
func LoadAuto(r io.Reader) (*Snap, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err != nil && len(magic) == 0 {
		if err == io.EOF {
			return nil, fmt.Errorf("snap: %w", ErrEmpty)
		}
		return nil, fmt.Errorf("snap: %w", err)
	}
	if len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		return loadGzip(br)
	}
	return Load(br)
}

func loadGzip(br *bufio.Reader) (*Snap, error) {
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("snap: %w", classifyGzipErr(err))
	}
	defer zr.Close()
	// One member only: appended garbage (or a second member) must not
	// be silently swallowed by gzip's multistream default.
	zr.Multistream(false)
	s, err := Load(zr)
	if err != nil {
		return nil, fmt.Errorf("gzip member: %w", classifyGzipErr(err))
	}
	// Drain the member to force the trailer (CRC/length) check, which
	// is where a truncated body surfaces.
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return nil, fmt.Errorf("snap: %w", classifyGzipErr(err))
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("snap: %w", ErrTrailingData)
	}
	return s, nil
}

// classifyGzipErr folds the decoder's raw end-of-stream errors into
// the inspectable ErrTruncated class; anything else (bad header,
// corrupt flate data, invalid JSON) passes through wrapped as-is.
func classifyGzipErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return fmt.Errorf("%w (%v)", ErrTruncated, err)
	}
	return err
}
