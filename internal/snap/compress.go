package snap

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
)

// The paper notes that trace buffers are "readily compressible by a
// factor of 10 or more for ease of archiving or transmission": DAG
// records repeat heavily (hot loops re-record the same header word).
// SaveCompressed/LoadAuto provide that archival form.

// SaveCompressed writes the snap as gzip-compressed JSON.
func (s *Snap) SaveCompressed(w io.Writer) error {
	zw, err := gzip.NewWriterLevel(w, gzip.BestCompression)
	if err != nil {
		return err
	}
	if err := s.Save(zw); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}

// LoadAuto reads a snap in either plain-JSON or gzip form, sniffing
// the magic bytes.
func LoadAuto(r io.Reader) (*Snap, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	if magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("snap: %w", err)
		}
		defer zr.Close()
		return Load(zr)
	}
	return Load(br)
}
