package snap

import (
	"bytes"
	"testing"

	"traceback/internal/trace"
)

// TestNondetSectionRoundTrip: a snap carrying the optional
// record-and-replay section round-trips it byte for byte, provenance
// included.
func TestNondetSectionRoundTrip(t *testing.T) {
	s := sample()
	words := trace.EncodeNondet([]trace.NondetRecord{
		{Kind: trace.NDQuantum, Quantum: 64, PID: 1, TID: 1, Clock: 4096},
		{Kind: trace.NDKill, Quantum: 120, PID: 1, Clock: 9999},
	})
	n := &NondetLog{V: 1, Scenario: "quickstart", Trial: true, Interval: 64}
	n.SetWords(wordsOfNondet(words))
	s.Nondet = n

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nondet == nil {
		t.Fatal("nondet section lost")
	}
	if got.Nondet.V != 1 || got.Nondet.Scenario != "quickstart" || !got.Nondet.Trial || got.Nondet.Interval != 64 {
		t.Fatalf("provenance changed: %+v", got.Nondet)
	}
	w2 := got.Nondet.Words()
	if len(w2) != len(words) {
		t.Fatalf("section length %d, want %d", len(w2), len(words))
	}
	for i := range words {
		if trace.Word(w2[i]) != words[i] {
			t.Fatalf("word %d: %#x != %#x", i, w2[i], words[i])
		}
	}
	recs, err := trace.DecodeNondet(wordsToNondet(w2))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Kind != trace.NDKill {
		t.Fatalf("decoded %+v", recs)
	}
}

// TestSnapWithoutNondet: the section is optional and versioned —
// snaps saved before it existed (or with it stripped) load with
// Nondet nil, and saving such a snap emits no nondet key at all.
func TestSnapWithoutNondet(t *testing.T) {
	s := sample()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"nondet"`)) {
		t.Fatal("recording-free snap serialized a nondet key")
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Nondet != nil {
		t.Fatalf("nondet section materialized from nothing: %+v", got.Nondet)
	}
}

func wordsOfNondet(ws []trace.Word) []uint32 {
	out := make([]uint32, len(ws))
	for i, w := range ws {
		out[i] = uint32(w)
	}
	return out
}

func wordsToNondet(ws []uint32) []trace.Word {
	out := make([]trace.Word, len(ws))
	for i, w := range ws {
		out[i] = trace.Word(w)
	}
	return out
}
