package snap

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"traceback/internal/trace"
)

func sample() *Snap {
	s := &Snap{
		Host: "h", Process: "p", PID: 3, RuntimeID: 77,
		Reason: "exception SIGSEGV", TriggerTID: 1, Signal: 11, FaultAddr: 42, Time: 1000,
		Modules: []ModuleInfo{
			{Name: "app", Checksum: "aa", ActualDAGBase: 0, DAGCount: 5, CodeBase: 0, CodeLen: 100},
			{Name: "lib", Checksum: "bb", ActualDAGBase: 5, DAGCount: 3, CodeBase: 100, CodeLen: 50},
			{Name: "bad", Checksum: "cc", ActualDAGBase: 0, DAGCount: 9, BadDAG: true},
		},
		Partners: []uint64{5, 6},
	}
	var words []uint32
	// A realistic hot-loop buffer: the same DAG header re-recorded.
	for i := 0; i < 4000; i++ {
		words = append(words, trace.DAGWord(uint32(i%7), uint32(i%3)))
	}
	d := BufferDump{Kind: BufMain, OwnerTID: 1, LastPtr: uint32(len(words) - 1), LastKnown: true, SubWords: 1024}
	d.SetWords(words)
	s.Buffers = append(s.Buffers, d)
	return s
}

func TestSnapRoundTrip(t *testing.T) {
	s := sample()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.RuntimeID != 77 || got.Reason != s.Reason || len(got.Buffers) != 1 {
		t.Fatalf("got %+v", got)
	}
	w1 := s.Buffers[0].Words()
	w2 := got.Buffers[0].Words()
	if len(w1) != len(w2) {
		t.Fatal("buffer length changed")
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("word %d: %#x != %#x", i, w1[i], w2[i])
		}
	}
}

func TestModuleForDAG(t *testing.T) {
	s := sample()
	if mi, rel, ok := s.ModuleForDAG(6); !ok || mi.Name != "lib" || rel != 1 {
		t.Errorf("ModuleForDAG(6) = %v %d %v", mi.Name, rel, ok)
	}
	if _, _, ok := s.ModuleForDAG(100); ok {
		t.Error("out-of-range DAG resolved")
	}
	// Bad-DAG modules never match.
	if mi, _, ok := s.ModuleForDAG(2); !ok || mi.Name != "app" {
		t.Errorf("DAG 2 resolved to %v, want app (not the bad module)", mi.Name)
	}
}

func TestModuleForAddr(t *testing.T) {
	s := sample()
	if mi, ok := s.ModuleForAddr(120); !ok || mi.Name != "lib" {
		t.Errorf("ModuleForAddr(120) = %v %v", mi.Name, ok)
	}
	if _, ok := s.ModuleForAddr(99999); ok {
		t.Error("out-of-range address resolved")
	}
}

// TestCompressionFactor verifies the paper's claim that trace buffers
// compress by a factor of 10 or more.
func TestCompressionFactor(t *testing.T) {
	s := sample()
	var plain, comp bytes.Buffer
	if err := s.Save(&plain); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCompressed(&comp); err != nil {
		t.Fatal(err)
	}
	factor := float64(plain.Len()) / float64(comp.Len())
	if factor < 10 {
		t.Errorf("compression factor = %.1fx, paper claims 10x+", factor)
	}
	got, err := LoadAuto(&comp)
	if err != nil {
		t.Fatal(err)
	}
	if got.RuntimeID != s.RuntimeID || len(got.Buffers) != len(s.Buffers) {
		t.Error("compressed snap did not round-trip")
	}
}

func TestLoadAutoPlain(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.PID != 3 {
		t.Error("plain auto-load failed")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadAuto(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

// Property: buffer word encoding round-trips arbitrary words.
func TestBufferWordsQuick(t *testing.T) {
	f := func(words []uint32) bool {
		var d BufferDump
		d.SetWords(words)
		got := d.Words()
		if len(got) != len(words) {
			return false
		}
		for i := range words {
			if got[i] != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferKindStrings(t *testing.T) {
	for k := BufMain; k <= BufDesperation; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
