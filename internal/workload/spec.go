package workload

import (
	"fmt"
	"math"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/module"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
)

// SpecResult is one Table 1 row, measured.
type SpecResult struct {
	Name         string
	Normal       uint64 // cycles uninstrumented
	TraceBack    uint64 // cycles instrumented
	Ratio        float64
	PaperRatio   float64
	CodeGrowth   float64
	Spills       int
	ExitChecksum int
}

// compileSpec compiles one kernel.
func compileSpec(p SpecProgram) (*module.Module, error) {
	return minic.Compile(p.Name, p.Name+".c", p.Src)
}

// runModule executes a module to completion and returns cycles+exit.
func runModule(m *module.Module, instrumented bool, arg uint64, seed int64) (uint64, int, error) {
	w := vm.NewWorld(seed)
	mach := w.NewMachine("bench", 0)
	var p *vm.Process
	var err error
	if instrumented {
		p, _, err = tbrt.NewProcess(mach, m.Name, tbrt.Config{})
		if err != nil {
			return 0, 0, err
		}
	} else {
		p = mach.NewProcess(m.Name, nil)
	}
	if _, err := p.Load(m); err != nil {
		return 0, 0, err
	}
	if _, err := p.StartMain(arg); err != nil {
		return 0, 0, err
	}
	if err := vm.RunProcess(p, 1<<31); err != nil {
		return 0, 0, err
	}
	if p.FatalSignal != 0 {
		return 0, 0, fmt.Errorf("workload %s faulted: signal %d", m.Name, p.FatalSignal)
	}
	return p.Cycles, p.ExitCode, nil
}

// RunSpec measures one Table 1 program. scale multiplies the
// reference argument (use < 1 for quick runs).
func RunSpec(p SpecProgram, scale float64, opts core.Options) (SpecResult, error) {
	mod, err := compileSpec(p)
	if err != nil {
		return SpecResult{}, err
	}
	arg := uint64(float64(p.Arg) * scale)
	if arg == 0 {
		arg = 1
	}
	normal, exitN, err := runModule(mod, false, arg, 42)
	if err != nil {
		return SpecResult{}, err
	}
	res, err := core.Instrument(mod, opts)
	if err != nil {
		return SpecResult{}, err
	}
	tb, exitT, err := runModule(res.Module, true, arg, 42)
	if err != nil {
		return SpecResult{}, err
	}
	if exitN != exitT {
		return SpecResult{}, fmt.Errorf("%s: instrumentation changed the result: %d vs %d", p.Name, exitN, exitT)
	}
	return SpecResult{
		Name:         p.Name,
		Normal:       normal,
		TraceBack:    tb,
		Ratio:        float64(tb) / float64(normal),
		PaperRatio:   p.PaperRatio,
		CodeGrowth:   res.Stats.CodeGrowth(),
		Spills:       res.Stats.Spills,
		ExitChecksum: exitN,
	}, nil
}

// RunSpecSuite measures the whole Table 1 suite and appends the
// geometric mean row.
func RunSpecSuite(scale float64) ([]SpecResult, float64, float64, error) {
	var out []SpecResult
	logSum, paperLogSum := 0.0, 0.0
	for _, p := range SpecInt {
		r, err := RunSpec(p, scale, core.Options{})
		if err != nil {
			return nil, 0, 0, err
		}
		out = append(out, r)
		logSum += math.Log(r.Ratio)
		paperLogSum += math.Log(r.PaperRatio)
	}
	geo := math.Exp(logSum / float64(len(out)))
	paperGeo := math.Exp(paperLogSum / float64(len(out)))
	return out, geo, paperGeo, nil
}

// AblationResult compares instrumentation variants on one kernel.
type AblationResult struct {
	Name     string
	Variant  string
	Ratio    float64
	Baseline float64 // default-options ratio
}

// RunAblations measures the design-choice ablations DESIGN.md §4
// calls out, on the kernels where each matters most.
func RunAblations(scale float64) ([]AblationResult, error) {
	var out []AblationResult
	add := func(progName, variant string, opts core.Options) error {
		p, ok := SpecByName(progName)
		if !ok {
			return fmt.Errorf("no spec program %s", progName)
		}
		base, err := RunSpec(p, scale, core.Options{})
		if err != nil {
			return err
		}
		r, err := RunSpec(p, scale, opts)
		if err != nil {
			return err
		}
		out = append(out, AblationResult{Name: progName, Variant: variant, Ratio: r.Ratio, Baseline: base.Ratio})
		return nil
	}
	// Probe register scavenging vs forced spills (the gzip story).
	if err := add("gzip", "force-spill", core.Options{ForceSpill: true}); err != nil {
		return nil, err
	}
	// DAG breaks at calls (the §2.2 requirement) on the call-dense
	// kernel. NOTE: reconstruction is unsound without the breaks;
	// this measures their cost only.
	if err := add("perlbmk", "no-break-at-calls", core.Options{NoBreakAtCalls: true}); err != nil {
		return nil, err
	}
	// Path-bit budget: fewer bits => more heavyweight probes.
	if err := add("gcc", "max-path-bits-4", core.Options{MaxPathBits: 4}); err != nil {
		return nil, err
	}
	if err := add("gcc", "max-path-bits-2", core.Options{MaxPathBits: 2}); err != nil {
		return nil, err
	}
	return out, nil
}

// SubBufferOverhead measures the runtime cost of sub-buffering
// (paper §3.2) on a probe-heavy kernel: the same instrumented binary
// with 1 (off) vs n sub-buffers.
func SubBufferOverhead(scale float64, subs int) (off, on uint64, err error) {
	p, _ := SpecByName("gzip")
	mod, err := compileSpec(p)
	if err != nil {
		return 0, 0, err
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		return 0, 0, err
	}
	arg := uint64(float64(p.Arg) * scale)
	if arg == 0 {
		arg = 1
	}
	run := func(subBuffers int) (uint64, error) {
		w := vm.NewWorld(42)
		mach := w.NewMachine("bench", 0)
		proc, _, err := tbrt.NewProcess(mach, "gzip", tbrt.Config{
			BufferWords: 4096, SubBuffers: subBuffers,
		})
		if err != nil {
			return 0, err
		}
		if _, err := proc.Load(res.Module); err != nil {
			return 0, err
		}
		if _, err := proc.StartMain(arg); err != nil {
			return 0, err
		}
		if err := vm.RunProcess(proc, 1<<31); err != nil {
			return 0, err
		}
		return proc.Cycles, nil
	}
	if off, err = run(1); err != nil {
		return 0, 0, err
	}
	if on, err = run(subs); err != nil {
		return 0, 0, err
	}
	return off, on, nil
}
