package workload

import (
	"fmt"

	"traceback/internal/mvm"
	"traceback/internal/vm"
)

// The PetShop paragraph (paper §6): a managed (.NET-analog) web
// application under request load. Each request parses (bytecode
// work), performs a "database query" (disk I/O cycles), renders
// (bytecode work), and sends the page (network cycles). With device
// time dominating and only line-boundary probes in the managed code,
// the throughput drop lands near the paper's 1%.

func buildPetShop() *mvm.Module {
	b := mvm.NewBuilder("PetShop", "PetShop.java")

	// handle(id) -> bytes sent
	h := b.Method("handle", 1, 4)
	// parse: small hash loop
	h.Line(5).I(mvm.CONST, 0).I(mvm.STOREL, 1, 0)
	h.Line(6).I(mvm.CONST, 0).I(mvm.STOREL, 2, 0)
	h.Label("parse")
	h.I(mvm.LOADL, 2, 0).I(mvm.CONST, 12).I(mvm.CMPLT).Br(mvm.IFZ, "parsed")
	h.Line(7).I(mvm.LOADL, 1, 0).I(mvm.CONST, 31).I(mvm.MUL).I(mvm.LOADL, 0, 0).I(mvm.ADD).
		I(mvm.CONST, 65536).I(mvm.MOD).I(mvm.STOREL, 1, 0)
	h.Line(8).I(mvm.LOADL, 2, 0).I(mvm.CONST, 1).I(mvm.ADD).I(mvm.STOREL, 2, 0).Br(mvm.GOTO, "parse")
	h.Label("parsed")
	// db query: read product row (disk)
	h.Line(10).I(mvm.CONST, 4096).I(mvm.IOREAD).I(mvm.POP)
	// render: arithmetic over the "row"
	h.Line(11).I(mvm.LOADL, 1, 0).I(mvm.CONST, 97).I(mvm.MOD).I(mvm.CONST, 2048).I(mvm.ADD).I(mvm.STOREL, 3, 0)
	// send page
	h.Line(12).I(mvm.LOADL, 3, 0).I(mvm.NETSENDB).I(mvm.POP)
	h.Line(13).I(mvm.LOADL, 3, 0).I(mvm.RET)
	h.Done()

	// worker(n) -> bytes
	wkr := b.Method("worker", 1, 3)
	wkr.Line(20).I(mvm.CONST, 0).I(mvm.STOREL, 1, 0)
	wkr.Line(21).I(mvm.CONST, 0).I(mvm.STOREL, 2, 0)
	wkr.Label("loop")
	wkr.I(mvm.LOADL, 2, 0).I(mvm.LOADL, 0, 0).I(mvm.CMPLT).Br(mvm.IFZ, "end")
	wkr.Line(22).I(mvm.LOADL, 1, 0).I(mvm.LOADL, 2, 0).I(mvm.CALL, 0).I(mvm.ADD).I(mvm.STOREL, 1, 0)
	wkr.Line(23).I(mvm.LOADL, 2, 0).I(mvm.CONST, 1).I(mvm.ADD).I(mvm.STOREL, 2, 0).Br(mvm.GOTO, "loop")
	wkr.Label("end")
	wkr.Line(24).I(mvm.LOADL, 1, 0).I(mvm.RET)
	wkr.Done()
	return b.MustBuild()
}

// PetShopModule exposes the PetShop managed module so harnesses
// outside the workload tables (the fault-injection campaign) can
// instrument it and drive it under perturbation.
func PetShopModule() *mvm.Module { return buildPetShop() }

// PetShopResult compares request throughput.
type PetShopResult struct {
	ReqPerSecNormal float64
	ReqPerSecTB     float64
	Drop            float64 // fractional throughput reduction
}

// RunPetShop measures the PetShop-like workload with the given
// number of worker threads and requests per worker.
func RunPetShop(workers, requests int) (PetShopResult, error) {
	mod := buildPetShop()
	run := func(instrumented bool) (float64, error) {
		m := mod
		var err error
		if instrumented {
			m, _, err = mvm.Instrument(mod, 0)
			if err != nil {
				return 0, err
			}
		}
		w := vm.NewWorld(88)
		mach := w.NewMachine("dell600sc", 0)
		v := mvm.New(mach, nil, "petshop", mvm.RuntimeConfig{})
		if _, err := v.Load(m); err != nil {
			return 0, err
		}
		var threads []*mvm.MThread
		for i := 0; i < workers; i++ {
			th, err := v.Start("worker", int64(requests))
			if err != nil {
				return 0, err
			}
			threads = append(threads, th)
		}
		v.Run(1<<30, func() bool {
			for _, th := range threads {
				if th.State != mvm.MDone {
					return false
				}
			}
			return true
		})
		for _, th := range threads {
			if th.Uncaught != 0 {
				return 0, fmt.Errorf("petshop worker threw %s", mvm.ExcName(th.Uncaught))
			}
		}
		total := workers * requests
		secs := float64(mach.Clock()) / (cyclesPerMs * 1000)
		return float64(total) / secs, nil
	}
	normal, err := run(false)
	if err != nil {
		return PetShopResult{}, err
	}
	tb, err := run(true)
	if err != nil {
		return PetShopResult{}, err
	}
	return PetShopResult{
		ReqPerSecNormal: normal,
		ReqPerSecTB:     tb,
		Drop:            1 - tb/normal,
	}, nil
}
