package workload

import (
	"fmt"

	"traceback/internal/mvm"
	"traceback/internal/vm"
)

// Table 3: SPECjbb — a server-side managed (Java) benchmark. Each
// warehouse is a managed thread running the TPC-C-flavored
// transaction mix (new-order, payment, order-status, delivery,
// stock-level) over in-memory arrays. Instrumentation overhead comes
// from line-boundary probes in pure bytecode execution, landing in
// the paper's 16–25% band — between the I/O-dominated web workloads
// (~5%) and native SPECint (~60%).

// JbbSystem describes one of Table 3's three platforms. The Mix knob
// varies the hot transaction's line density, standing in for the
// JIT/architecture differences that made the three systems' ratios
// differ (1.16 on Win to 1.25 on Sun).
type JbbSystem struct {
	Name string
	// Mix selects the transaction blend (0..2).
	Mix int
	// ProbeHCost/ProbeLCost model the platform's probe expense (TLS
	// and memory-system speed differ across Win/Lin/Sun).
	ProbeHCost uint64
	ProbeLCost uint64
	// PaperRatio1W/5W from Table 3.
	PaperRatio1W float64
	PaperRatio5W float64
}

// JbbSystems lists the paper's three systems.
var JbbSystems = []JbbSystem{
	{Name: "Win", Mix: 0, ProbeHCost: 6, ProbeLCost: 2, PaperRatio1W: 1.164, PaperRatio5W: 1.207},
	{Name: "Lin", Mix: 1, ProbeHCost: 7, ProbeLCost: 3, PaperRatio1W: 1.223, PaperRatio5W: 1.229},
	{Name: "Sun", Mix: 2, ProbeHCost: 8, ProbeLCost: 3, PaperRatio1W: 1.240, PaperRatio5W: 1.249},
}

// buildJbb assembles the managed warehouse program.
//
// Methods: newOrder, payment, stockLevel, warehouse (the per-thread
// transaction loop). Locals are indexed constants for readability.
func buildJbb(mix int) *mvm.Module {
	b := mvm.NewBuilder("SPECjbb", "Warehouse.java")

	// newOrder(whBase, count) -> value. Walks order lines updating
	// stock-like arrays.
	no := b.Method("newOrder", 2, 6) // wh, count, i, ref, acc, t
	no.Line(10).I(mvm.CONST, 256).I(mvm.NEWARR).I(mvm.STOREL, 3, 0)
	no.Line(11).I(mvm.CONST, 0).I(mvm.STOREL, 4, 0)
	no.Line(12).I(mvm.CONST, 0).I(mvm.STOREL, 2, 0)
	no.Label("loop")
	no.Line(13).I(mvm.LOADL, 2, 0).I(mvm.LOADL, 1, 0).I(mvm.CMPLT).Br(mvm.IFZ, "end")
	no.Line(14).
		I(mvm.LOADL, 3, 0).
		I(mvm.LOADL, 2, 0).I(mvm.CONST, 255).I(mvm.AND).
		I(mvm.LOADL, 0, 0).I(mvm.LOADL, 2, 0).I(mvm.MUL).I(mvm.CONST, 97).I(mvm.MOD).
		I(mvm.ASTORE)
	no.Line(15).
		I(mvm.LOADL, 4, 0).
		I(mvm.LOADL, 3, 0).I(mvm.LOADL, 2, 0).I(mvm.CONST, 255).I(mvm.AND).I(mvm.ALOAD).
		I(mvm.ADD).I(mvm.STOREL, 4, 0)
	no.Line(16).I(mvm.LOADL, 2, 0).I(mvm.CONST, 1).I(mvm.ADD).I(mvm.STOREL, 2, 0).Br(mvm.GOTO, "loop")
	no.Label("end")
	no.Line(17).I(mvm.LOADL, 4, 0).I(mvm.RET)
	no.Done()

	// payment(wh, amount) -> new balance, arithmetic-dense.
	pay := b.Method("payment", 2, 4)
	pay.Line(21).I(mvm.LOADL, 0, 0).I(mvm.LOADL, 1, 0).I(mvm.MUL).I(mvm.CONST, 10007).I(mvm.MOD).I(mvm.STOREL, 2, 0)
	pay.Line(22).I(mvm.LOADL, 2, 0).I(mvm.CONST, 3).I(mvm.MUL).I(mvm.CONST, 7).I(mvm.ADD).I(mvm.STOREL, 3, 0)
	pay.Line(23).I(mvm.LOADL, 3, 0).I(mvm.CONST, 100).I(mvm.MOD).Br(mvm.IFZ, "zero")
	pay.Line(24).I(mvm.LOADL, 3, 0).I(mvm.RET)
	pay.Label("zero")
	pay.Line(25).I(mvm.LOADL, 2, 0).I(mvm.RET)
	pay.Done()

	// stockLevel(wh, n): array-scan flavored.
	sl := b.Method("stockLevel", 2, 5)
	sl.Line(31).I(mvm.CONST, 128).I(mvm.NEWARR).I(mvm.STOREL, 2, 0)
	sl.Line(32).I(mvm.CONST, 0).I(mvm.STOREL, 3, 0)
	sl.Line(33).I(mvm.CONST, 0).I(mvm.STOREL, 4, 0)
	sl.Label("loop")
	sl.I(mvm.LOADL, 4, 0).I(mvm.CONST, 128).I(mvm.CMPLT).Br(mvm.IFZ, "end")
	sl.Line(34).
		I(mvm.LOADL, 3, 0).
		I(mvm.LOADL, 2, 0).I(mvm.LOADL, 4, 0).I(mvm.ALOAD).
		I(mvm.LOADL, 0, 0).I(mvm.ADD).I(mvm.ADD).I(mvm.STOREL, 3, 0)
	sl.Line(35).I(mvm.LOADL, 4, 0).I(mvm.CONST, 1).I(mvm.ADD).I(mvm.STOREL, 4, 0).Br(mvm.GOTO, "loop")
	sl.Label("end")
	sl.Line(36).I(mvm.LOADL, 3, 0).I(mvm.RET)
	sl.Done()

	// warehouse(id, txns) -> score: the transaction mix loop.
	wh := b.Method("warehouse", 2, 6)
	wh.Line(41).I(mvm.CONST, 0).I(mvm.STOREL, 2, 0) // score
	wh.Line(42).I(mvm.CONST, 0).I(mvm.STOREL, 3, 0) // t
	wh.Label("loop")
	wh.I(mvm.LOADL, 3, 0).I(mvm.LOADL, 1, 0).I(mvm.CMPLT).Br(mvm.IFZ, "end")
	// kind = (t*7 + id) % 4 (mix 0) or % 3 / with different blends.
	div := int32(4 - mix)
	if div < 2 {
		div = 2
	}
	wh.Line(43).I(mvm.LOADL, 3, 0).I(mvm.CONST, 7).I(mvm.MUL).I(mvm.LOADL, 0, 0).I(mvm.ADD).
		I(mvm.CONST, div).I(mvm.MOD).I(mvm.STOREL, 4, 0)
	wh.Line(44).I(mvm.LOADL, 4, 0).Br(mvm.IFZ, "tNew")
	wh.Line(45).I(mvm.LOADL, 4, 0).I(mvm.CONST, 1).I(mvm.CMPEQ).Br(mvm.IFNZ, "tPay")
	wh.Line(46).I(mvm.LOADL, 0, 0).I(mvm.CONST, 40).I(mvm.CALL, 2).I(mvm.STOREL, 5, 0).Br(mvm.GOTO, "score")
	wh.Label("tNew")
	wh.Line(47).I(mvm.LOADL, 0, 0).I(mvm.CONST, 24).I(mvm.CALL, 0).I(mvm.STOREL, 5, 0).Br(mvm.GOTO, "score")
	wh.Label("tPay")
	wh.Line(48).I(mvm.LOADL, 0, 0).I(mvm.LOADL, 3, 0).I(mvm.CALL, 1).I(mvm.STOREL, 5, 0)
	wh.Label("score")
	wh.Line(49).I(mvm.LOADL, 2, 0).I(mvm.LOADL, 5, 0).I(mvm.CONST, 1024).I(mvm.MOD).I(mvm.ADD).I(mvm.STOREL, 2, 0)
	wh.Line(50).I(mvm.LOADL, 3, 0).I(mvm.CONST, 1).I(mvm.ADD).I(mvm.STOREL, 3, 0).Br(mvm.GOTO, "loop")
	wh.Label("end")
	wh.Line(51).I(mvm.LOADL, 2, 0).I(mvm.RET)
	wh.Done()

	return b.MustBuild()
}

// JbbResult is one Table 3 row.
type JbbResult struct {
	System     string
	Warehouses int
	// Normal and TraceBack are throughput scores (transactions per
	// million cycles).
	Normal, TraceBack float64
	Ratio             float64
	PaperRatio        float64
}

// RunJbb measures one system/warehouse-count cell of Table 3.
func RunJbb(sys JbbSystem, warehouses, txnsPerWarehouse int) (JbbResult, error) {
	mod := buildJbb(sys.Mix)
	run := func(instrumented bool) (float64, error) {
		m := mod
		var err error
		if instrumented {
			m, _, err = mvm.Instrument(mod, 0)
			if err != nil {
				return 0, err
			}
		}
		w := vm.NewWorld(55)
		mach := w.NewMachine(sys.Name, 0)
		v := mvm.New(mach, nil, "specjbb", mvm.RuntimeConfig{
			ProbeHCost:     sys.ProbeHCost,
			ProbeLCost:     sys.ProbeLCost,
			MTProbePenalty: 2,
		})
		if _, err := v.Load(m); err != nil {
			return 0, err
		}
		var threads []*mvm.MThread
		for i := 0; i < warehouses; i++ {
			th, err := v.Start("warehouse", int64(i+1), int64(txnsPerWarehouse))
			if err != nil {
				return 0, err
			}
			threads = append(threads, th)
		}
		v.Run(1<<30, func() bool {
			for _, th := range threads {
				if th.State != mvm.MDone {
					return false
				}
			}
			return true
		})
		total := 0
		for _, th := range threads {
			if th.Uncaught != 0 {
				return 0, fmt.Errorf("jbb warehouse threw %s", mvm.ExcName(th.Uncaught))
			}
			total += txnsPerWarehouse
		}
		return float64(total) / (float64(v.Cycles) / 1e6), nil
	}
	normal, err := run(false)
	if err != nil {
		return JbbResult{}, err
	}
	tb, err := run(true)
	if err != nil {
		return JbbResult{}, err
	}
	paper := sys.PaperRatio1W
	if warehouses > 1 {
		paper = sys.PaperRatio5W
	}
	return JbbResult{
		System:     sys.Name,
		Warehouses: warehouses,
		Normal:     normal,
		TraceBack:  tb,
		Ratio:      normal / tb, // throughput ratio, as Table 3 reports
		PaperRatio: paper,
	}, nil
}
