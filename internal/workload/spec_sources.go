// Package workload contains the evaluation workloads: MiniC kernels
// shaped after the SPECint2000 suite (Table 1), a web-server workload
// (Table 2, SPECweb99 on Apache), a managed warehouse benchmark
// (Table 3, SPECjbb), and a managed web application (the PetShop
// paragraph). The kernels are not the SPEC programs — they are
// synthetic stand-ins whose CODE SHAPE reproduces what made each SPEC
// program cheap or expensive to instrument: tight loops with high
// register pressure (gzip's longest_match), call-dense interpreters
// (perlbmk), branchy translation units (gcc), and memory-latency-
// bound kernels (mcf, art, equake, mesa, ammp) whose probe cost is
// hidden behind data access.
package workload

// SpecProgram describes one Table 1 row.
type SpecProgram struct {
	Name string
	Src  string
	// Arg scales the reference run.
	Arg uint64
	// PaperRatio is the TraceBack/Normal ratio Table 1 reports.
	PaperRatio float64
}

// SpecInt lists the Table 1 programs in the paper's order.
var SpecInt = []SpecProgram{
	{"ammp", srcAmmp, 60, 1.23},
	{"art", srcArt, 40, 1.10},
	{"bzip2", srcBzip2, 24, 1.72},
	{"crafty", srcCrafty, 500, 1.77},
	{"eon", srcEon, 400, 1.70},
	{"equake", srcEquake, 40, 1.12},
	{"gap", srcGap, 300, 1.74},
	{"gcc", srcGcc, 300, 1.98},
	{"gzip", srcGzip, 60, 1.97},
	{"mcf", srcMcf, 50, 1.21},
	{"mesa", srcMesa, 48, 1.18},
	{"parser", srcParser, 120, 1.84},
	{"perlbmk", srcPerlbmk, 250, 2.50},
	{"vortex", srcVortex, 200, 2.13},
	{"vpr", srcVpr, 80, 1.48},
}

// SpecByName returns a program by name.
func SpecByName(name string) (SpecProgram, bool) {
	for _, p := range SpecInt {
		if p.Name == name {
			return p, true
		}
	}
	return SpecProgram{}, false
}

// gzip: the longest_match shape — a tight inner loop comparing
// windows, with enough simultaneously-live scalars that the probe
// inserter finds no dead register and must spill (paper §6's 30%-of-
// slowdown analysis).
const srcGzip = `int window[4096];
int wmask;
int nice;
int longest_match(int cur, int prevlen, int maxchain) {
	int best = prevlen;
	int chain = maxchain;
	int scan = cur;
	int match = (cur * 61 + 17) & wmask;
	while (chain > 0) {
		int m = match;
		int s = scan;
		int len = 0;
		while (len < 64) {
			if (window[s + len] != window[m + len]) { break; }
			len = len + 1;
		}
		if (len > best) {
			best = len;
			if (best >= nice) { return best; }
		}
		match = (match * 31 + 7) & wmask;
		chain = chain - 1;
	}
	return best;
}
int main() {
	int n = getarg();
	wmask = 2047;
	nice = 58;
	for (int i = 0; i < 4096; i = i + 1) window[i] = (i * i + 3) % 17;
	int total = 0;
	for (int pos = 0; pos < n; pos = pos + 1) {
		total = total + longest_match((pos * 7) & 2047, 2, 32);
	}
	exit(total % 251);
}`

// perlbmk: an opcode-dispatch interpreter with many tiny functions —
// call-dense code breaks DAGs at every return point, the paper's
// worst case (ratio 2.50).
const srcPerlbmk = `int stackv[64];
int sp;
int op_push(int v) { stackv[sp] = v; sp = sp + 1; return 0; }
int op_pop() { sp = sp - 1; return stackv[sp]; }
int op_add() { if (sp < 2) return 0; int b = op_pop(); int a = op_pop(); op_push(a + b); return 0; }
int op_sub() { if (sp < 2) return 0; int b = op_pop(); int a = op_pop(); op_push(a - b); return 0; }
int op_mul() { if (sp < 2) return 0; int b = op_pop(); int a = op_pop(); op_push(a * b % 65536); return 0; }
int op_dup() { if (sp < 1) return 0; int a = op_pop(); op_push(a); op_push(a); return 0; }
int op_mod() { if (sp < 2) return 0; int b = op_pop(); int a = op_pop(); op_push(a % (b + 1)); return 0; }
int dispatch(int op, int v) {
	switch (op) {
	case 0: op_push(v);
	case 1: op_add();
	case 2: op_sub();
	case 3: op_mul();
	case 4: op_dup();
	case 5: op_mod();
	}
	return 0;
}
int main() {
	int n = getarg();
	int acc = 0;
	for (int i = 0; i < n; i = i + 1) {
		sp = 0;
		op_push(i);
		for (int k = 0; k < 12; k = k + 1) {
			dispatch((i + k * 5) % 6, k + 1);
			if (sp < 2) { op_push(k + 3); }
			if (sp > 48) { sp = 2; }
		}
		acc = acc + stackv[0];
	}
	exit(acc % 251);
}`

// gcc: many small branchy functions over a token stream — dense
// control flow, small blocks, near-worst-case probe density.
const srcGcc = `int toks[512];
int fold(int a, int b, int op) {
	if (op == 0) return a + b;
	if (op == 1) return a - b;
	if (op == 2) { if (b != 0) return a / b; return a; }
	return a * b % 4096;
}
int classify(int t) {
	if (t < 16) return 0;
	if (t < 64) { if (t % 3 == 0) return 1; return 2; }
	if (t % 7 < 3) return 3;
	return 4;
}
int propagate(int i) {
	int t = toks[i];
	int c = classify(t);
	if (c == 0) { toks[i] = fold(t, i, 0); return 1; }
	if (c == 1) { toks[i] = fold(t, 3, 1); return 1; }
	if (c == 2) { toks[i] = fold(t, i + 1, 2); return 0; }
	if (c == 3) { toks[i] = fold(t, 5, 3); return 0; }
	return 0;
}
int main() {
	int n = getarg();
	for (int i = 0; i < 512; i = i + 1) toks[i] = (i * 37 + 11) % 509;
	int changed = 0;
	for (int pass = 0; pass < n; pass = pass + 1) {
		for (int i = 0; i < 512; i = i + 1) {
			changed = changed + propagate(i);
		}
	}
	exit(changed % 251);
}`

// vortex: an object-store: insert/lookup/delete over hashed slots,
// call-heavy with moderate memory traffic.
const srcVortex = `int keys[1024];
int vals[1024];
int hash(int k) { return (k * 40503) & 1023; }
int insert(int k, int v) {
	int h = hash(k);
	int probes = 0;
	while (keys[h] != 0 && probes < 64) { h = (h + 1) & 1023; probes = probes + 1; }
	keys[h] = k;
	vals[h] = v;
	return probes;
}
int lookup(int k) {
	int h = hash(k);
	int probes = 0;
	while (probes < 64) {
		if (keys[h] == k) return vals[h];
		h = (h + 1) & 1023;
		probes = probes + 1;
	}
	return 0;
}
int remove_key(int k) {
	int h = hash(k);
	int probes = 0;
	while (probes < 64) {
		if (keys[h] == k) { keys[h] = 0; return 1; }
		h = (h + 1) & 1023;
		probes = probes + 1;
	}
	return 0;
}
int main() {
	int n = getarg();
	int acc = 0;
	for (int r = 0; r < n; r = r + 1) {
		for (int i = 1; i <= 40; i = i + 1) {
			insert(r * 40 + i, i * 3);
		}
		for (int i = 1; i <= 40; i = i + 1) {
			acc = acc + lookup(r * 40 + i);
		}
		for (int i = 1; i <= 40; i = i + 1) {
			remove_key(r * 40 + i);
		}
	}
	exit(acc % 251);
}`

// parser: recursive-descent expression evaluation over a synthetic
// token tape — recursion plus branching.
const srcParser = `int tape[256];
int pos;
int parse_atom(int depth) {
	int t = tape[pos & 255];
	pos = pos + 1;
	if (t % 5 == 0 && depth < 8) {
		return parse_expr(depth + 1);
	}
	return t % 97;
}
int parse_term(int depth) {
	int v = parse_atom(depth);
	while (tape[pos & 255] % 3 == 0 && pos % 7 != 0) {
		pos = pos + 1;
		v = v * parse_atom(depth) % 991;
	}
	return v;
}
int parse_expr(int depth) {
	int v = parse_term(depth);
	while (tape[pos & 255] % 2 == 0 && pos % 11 != 0) {
		pos = pos + 1;
		v = v + parse_term(depth);
	}
	return v;
}
int main() {
	int n = getarg();
	for (int i = 0; i < 256; i = i + 1) tape[i] = (i * 13 + 7) % 101;
	int acc = 0;
	for (int r = 0; r < n; r = r + 1) {
		pos = r;
		acc = acc + parse_expr(0);
	}
	exit(acc % 251);
}`

// bzip2: block-sort inner loops — comparison-heavy with array
// shuffles.
const srcBzip2 = `int block[512];
int work[512];
int sortrun(int lo, int hi) {
	for (int i = lo + 1; i < hi; i = i + 1) {
		int v = block[i];
		int j = i - 1;
		while (j >= lo && block[j] > v) {
			block[j + 1] = block[j];
			j = j - 1;
		}
		block[j + 1] = v;
	}
	return 0;
}
int mtf(int n) {
	int sum = 0;
	for (int i = 0; i < n; i = i + 1) {
		int v = block[i];
		work[i] = (v * 3 + sum) % 256;
		sum = sum + work[i];
	}
	return sum;
}
int main() {
	int n = getarg();
	int acc = 0;
	for (int r = 0; r < n; r = r + 1) {
		for (int i = 0; i < 512; i = i + 1) block[i] = (i * 29 + r * 7) % 251;
		sortrun(0, 512);
		acc = acc + mtf(512);
	}
	exit(acc % 251);
}`

// crafty: bitboard-style shifting and masking in longer straight-line
// blocks with several live temporaries.
const srcCrafty = `int evaluate(int w, int b, int occ) {
	int score = 0;
	int attacks = (w << 9) & ~occ;
	int defends = (w >> 7) & b;
	int center = occ & (3855 << 24);
	int mobile = attacks | (attacks << 1) | (attacks >> 1);
	if (attacks % 2 == 0) { score = score + (attacks % 64) * 3; }
	else { score = score + (attacks % 64) * 2; }
	if (defends > attacks) { score = score + (defends % 32) * 5; }
	else { score = score + (defends % 32) * 4; }
	if (center != 0) { score = score - (center % 16) * 2; }
	if (mobile % 4 < 2) { score = score + (mobile % 128); }
	else { score = score + (mobile % 64); }
	return score;
}
int search(int pos, int depth, int alpha) {
	if (depth == 0) return evaluate(pos * 3, pos * 5, pos * 7);
	int best = alpha;
	for (int m = 0; m < 4; m = m + 1) {
		int s = 0 - search(pos ^ (m * 73 + 1), depth - 1, 0 - best);
		if (s > best) best = s;
	}
	return best;
}
int main() {
	int n = getarg();
	int acc = 0;
	for (int i = 0; i < n; i = i + 1) {
		acc = acc + search(i * 40503 % 65536, 3, -30000);
	}
	exit(acc % 251);
}`

// eon: fixed-point ray-march style arithmetic, medium blocks.
const srcEon = `int trace_ray(int ox, int oy, int dx, int dy) {
	int x = ox * 256;
	int y = oy * 256;
	int acc = 0;
	for (int s = 0; s < 24; s = s + 1) {
		x = x + dx;
		y = y + dy;
		int d2 = (x / 256) * (x / 256) + (y / 256) * (y / 256);
		if (d2 < 900) {
			if (d2 < 100) { acc = acc + 200; }
			else { acc = acc + 90 - d2 / 10; }
		} else {
			if (x > y) { acc = acc + 2; }
			else { acc = acc + 1; }
		}
		if (dx > 0) { dx = (dx * 127) / 128; }
		else { dx = (dx * 125) / 128; }
		if (dy > 0) { dy = (dy * 129) / 128; }
		else { dy = (dy * 131) / 128; }
	}
	return acc;
}
int main() {
	int n = getarg();
	int acc = 0;
	for (int px = 0; px < n; px = px + 1) {
		for (int py = 0; py < 24; py = py + 1) {
			acc = acc + trace_ray(px % 31, py, (px % 11) - 5, (py % 9) - 4);
		}
	}
	exit(acc % 251);
}`

// gap: computational group theory flavor — modular arithmetic with
// helper calls inside loops.
const srcGap = `int powmod(int b, int e, int m) {
	int r = 1;
	while (e > 0) {
		if (e % 2 == 1) r = r * b % m;
		b = b * b % m;
		e = e / 2;
	}
	return r;
}
int orderof(int g, int m) {
	int x = g;
	int k = 1;
	while (x != 1 && k < 200) {
		x = x * g % m;
		k = k + 1;
	}
	return k;
}
int main() {
	int n = getarg();
	int acc = 0;
	for (int i = 2; i < n + 2; i = i + 1) {
		acc = acc + powmod(i, i % 19 + 2, 1009);
		acc = acc + orderof(i % 1007 + 2, 1009);
	}
	exit(acc % 251);
}`

// mcf: network-simplex flavor — pointer-chasing through successor
// arrays; memory latency dominates, so probes are comparatively
// cheap (ratio 1.21).
const srcMcf = `int nextn[8192];
int costs[8192];
int flows[8192];
int chase(int start, int steps) {
	int node = start;
	int total = 0;
	for (int s = 0; s < steps; s = s + 2) {
		total = total + costs[node] - flows[node];
		flows[node] = flows[node] + 1;
		node = nextn[node];
		total = total + costs[node] - flows[node];
		flows[node] = flows[node] + 1;
		node = nextn[node];
	}
	return total;
}
int main() {
	int n = getarg();
	for (int i = 0; i < 8192; i = i + 1) {
		nextn[i] = (i * 40503) & 8191;
		costs[i] = i % 97;
		flows[i] = 0;
	}
	int acc = 0;
	for (int r = 0; r < n; r = r + 1) {
		acc = acc + chase(r & 8191, 512);
	}
	exit(acc % 251);
}`

// ammp: molecular-dynamics flavor — neighbor-list sweeps, memory
// heavy.
const srcAmmp = `int px[2048];
int py[2048];
int fx[2048];
int fy[2048];
int forces(int n, int cut) {
	int e = 0;
	for (int i = 0; i < n; i = i + 1) {
		int j = (i * 167 + 13) % n;
		int ddx = px[i] - px[j];
		int ddy = py[i] - py[j];
		int d2 = ddx * ddx + ddy * ddy + 1;
		if (d2 < cut) {
			fx[i] = fx[i] + ddx * 64 / d2;
			fy[i] = fy[i] + ddy * 64 / d2;
			e = e + 1024 / d2;
		}
	}
	return e;
}
int main() {
	int n = getarg();
	for (int i = 0; i < 2048; i = i + 1) {
		px[i] = (i * 37) % 509;
		py[i] = (i * 73) % 521;
	}
	int acc = 0;
	for (int step = 0; step < n; step = step + 1) {
		acc = acc + forces(2048, 90000);
	}
	exit(acc % 251);
}`

// mesa: scanline rasterizer flavor — long memory-streaming loops.
const srcMesa = `int fb[4096];
int zb[4096];
int dz;
int color;
int span(int y, int x0, int x1, int z) {
	int drawn = 0;
	for (int x = x0; x < x1; x = x + 4) {
		int idx = (y * 64 + x) & 4092;
		int z2 = z + dz;
		int z3 = z2 + dz;
		int z4 = z3 + dz;
		int m1 = (z - zb[idx]) >> 63;
		int m2 = (z2 - zb[idx + 1]) >> 63;
		int m3 = (z3 - zb[idx + 2]) >> 63;
		int m4 = (z4 - zb[idx + 3]) >> 63;
		zb[idx] = (zb[idx] & ~m1) | (z & m1);
		fb[idx] = (fb[idx] & ~m1) | (color & m1);
		zb[idx + 1] = (zb[idx + 1] & ~m2) | (z2 & m2);
		fb[idx + 1] = (fb[idx + 1] & ~m2) | (color & m2);
		zb[idx + 2] = (zb[idx + 2] & ~m3) | (z3 & m3);
		fb[idx + 2] = (fb[idx + 2] & ~m3) | (color & m3);
		zb[idx + 3] = (zb[idx + 3] & ~m4) | (z4 & m4);
		fb[idx + 3] = (fb[idx + 3] & ~m4) | (color & m4);
		drawn = drawn + ((m1 & 1) + (m2 & 1) + (m3 & 1) + (m4 & 1));
		z = z4 + dz;
	}
	return drawn;
}
int main() {
	int n = getarg();
	int acc = 0;
	for (int f = 0; f < n; f = f + 1) {
		for (int i = 0; i < 4096; i = i + 1) zb[i] = 100000;
		for (int t = 0; t < 48; t = t + 1) {
			dz = (t % 7) - 3;
			color = t;
			acc = acc + span(t % 64, t % 17, 40 + t % 23, t * 100 % 90000);
		}
	}
	exit(acc % 251);
}`

// equake: sparse matrix-vector flavor — indirection-heavy streaming.
const srcEquake = `int colidx[6144];
int aval[6144];
int x[2048];
int y[2048];
int spmv(int rows) {
	int checksum = 0;
	for (int r = 0; r < rows; r = r + 1) {
		int sum = 0;
		int base = r * 3;
		sum = sum + aval[base] * x[colidx[base]];
		sum = sum + aval[base + 1] * x[colidx[base + 1]];
		sum = sum + aval[base + 2] * x[colidx[base + 2]];
		y[r] = sum;
		checksum = checksum + sum;
	}
	return checksum;
}
int main() {
	int n = getarg();
	for (int i = 0; i < 6144; i = i + 1) {
		colidx[i] = (i * 389) % 2048;
		aval[i] = i % 13 - 6;
	}
	for (int i = 0; i < 2048; i = i + 1) x[i] = i % 29;
	int acc = 0;
	for (int r = 0; r < n; r = r + 1) {
		acc = acc + spmv(2048);
		x[r % 2048] = acc % 31;
	}
	exit(acc % 251);
}`

// art: neural-net match loop — regular array sweeps, few branches.
const srcArt = `int weights[4096];
int input[64];
int match(int cat) {
	int sum = 0;
	int base = cat * 64;
	for (int i = 0; i < 64; i = i + 8) {
		sum = sum + weights[base + i] * input[i];
		sum = sum + weights[base + i + 1] * input[i + 1];
		sum = sum + weights[base + i + 2] * input[i + 2];
		sum = sum + weights[base + i + 3] * input[i + 3];
		sum = sum + weights[base + i + 4] * input[i + 4];
		sum = sum + weights[base + i + 5] * input[i + 5];
		sum = sum + weights[base + i + 6] * input[i + 6];
		sum = sum + weights[base + i + 7] * input[i + 7];
	}
	return sum;
}
int main() {
	int n = getarg();
	for (int i = 0; i < 4096; i = i + 1) weights[i] = (i % 17) - 8;
	int acc = 0;
	for (int r = 0; r < n; r = r + 1) {
		for (int i = 0; i < 64; i = i + 1) input[i] = (r + i) % 11;
		int best = -1000000;
		for (int c = 0; c < 64; c = c + 1) {
			int s = match(c);
			if (s > best) best = s;
		}
		acc = acc + best;
	}
	exit(acc % 251);
}`

// vpr: placement annealing flavor — moderate mix of arithmetic,
// branching, and array access.
const srcVpr = `int cellx[512];
int celly[512];
int netcost(int a, int b) {
	int ddx = cellx[a] - cellx[b];
	int ddy = celly[a] - celly[b];
	if (ddx < 0) ddx = 0 - ddx;
	if (ddy < 0) ddy = 0 - ddy;
	return ddx + ddy;
}
int try_swap(int a, int b, int temp) {
	int before = netcost(a, b) + netcost(a, (a + 7) % 512) + netcost(b, (b + 11) % 512);
	int tx = cellx[a]; int ty = celly[a];
	cellx[a] = cellx[b]; celly[a] = celly[b];
	cellx[b] = tx; celly[b] = ty;
	int after = netcost(a, b) + netcost(a, (a + 7) % 512) + netcost(b, (b + 11) % 512);
	if (after > before + temp) {
		tx = cellx[a]; ty = celly[a];
		cellx[a] = cellx[b]; celly[a] = celly[b];
		cellx[b] = tx; celly[b] = ty;
		return 0;
	}
	return 1;
}
int main() {
	int n = getarg();
	for (int i = 0; i < 512; i = i + 1) {
		cellx[i] = (i * 37) % 64;
		celly[i] = (i * 53) % 64;
	}
	int accepted = 0;
	for (int pass = 0; pass < n; pass = pass + 1) {
		int temp = 32 - (pass * 32) / (n + 1);
		for (int i = 0; i < 256; i = i + 1) {
			accepted = accepted + try_swap((i * 3) % 512, (i * 5 + pass) % 512, temp);
		}
	}
	exit(accepted % 251);
}`
