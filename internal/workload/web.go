package workload

import (
	"fmt"

	"traceback/internal/core"
	"traceback/internal/minic"
	"traceback/internal/tbrt"
	"traceback/internal/vm"
)

// Table 2: SPECweb99 against an Apache-like server. The server is a
// thread-per-connection MiniC program: each connection thread parses
// a request (CPU), reads the file (simulated disk I/O), and sends the
// response (simulated network I/O). Because device time dominates,
// the instrumentation overhead lands near the paper's 5% instead of
// SPECint's 60% — the same mechanism the paper credits ("more system
// calls, more disk accesses ... reduce the impact of instrumentation
// on performance").
const srcWebServer = `int served;
int bytes;
int served_mu;
int parse_request(int seed) {
	int h = seed;
	for (int i = 0; i < 40; i = i + 1) {
		h = (h * 31 + i) % 65536;
		if (h % 7 == 0) { h = h + 3; }
	}
	return h;
}
int pick_file(int h) {
	int class = h % 4;
	if (class == 0) return 1024;
	if (class == 1) return 5120;
	if (class == 2) return 51200;
	return 102400;
}
int generate(int size) {
	int sum = 0;
	int words = size / 56;
	for (int i = 0; i < words; i = i + 1) {
		sum = (sum * 33 + i) % 65536;
		if (sum % 64 == 0) { sum = sum + 7; }
	}
	return sum;
}
int log_access(int size) {
	iowrite(64);
	return size;
}
int connection() {
	int reqs = getarg();
	for (int r = 0; r < reqs; r = r + 1) {
		int h = parse_request(tid() * 1000 + r);
		int size = pick_file(h);
		ioread(size);
		int body = size + generate(size) % 64;
		netsend(body);
		log_access(body);
		mutex_lock(&served_mu);
		served = served + 1;
		bytes = bytes + body;
		mutex_unlock(&served_mu);
	}
	return 0;
}
int main() {
	int conns = 21;
	int tids[32];
	for (int c = 0; c < conns; c = c + 1) {
		tids[c] = thread_create(&connection, getarg());
	}
	for (int c = 0; c < conns; c = c + 1) {
		join(tids[c]);
	}
	exit(served % 251);
}`

// WebResult is the Table 2 comparison.
type WebResult struct {
	// Per paper Table 2: response time, operations/sec, Kbits/sec.
	ResponseNormal, ResponseTB float64 // ms
	OpsNormal, OpsTB           float64
	KbitsNormal, KbitsTB       float64
	Ratio                      float64 // response-time ratio
}

// cyclesPerMs converts machine cycles to simulated milliseconds.
const cyclesPerMs = 50_000

// RunWeb runs the SPECweb99-like load with the given per-connection
// request count (the paper's full test uses 21 connections; that is
// fixed in the workload).
func RunWeb(requestsPerConn int) (WebResult, error) {
	mod, err := minic.Compile("apache", "httpd.c", srcWebServer)
	if err != nil {
		return WebResult{}, err
	}
	run := func(instrumented bool) (cycles uint64, served int, err error) {
		m := mod
		if instrumented {
			res, err := core.Instrument(mod, core.Options{})
			if err != nil {
				return 0, 0, err
			}
			m = res.Module
		}
		w := vm.NewWorld(77)
		mach := w.NewMachine("server", 0)
		var p *vm.Process
		if instrumented {
			p, _, err = tbrt.NewProcess(mach, "apache", tbrt.Config{NumBuffers: 24})
			if err != nil {
				return 0, 0, err
			}
		} else {
			p = mach.NewProcess("apache", nil)
		}
		if _, err := p.Load(m); err != nil {
			return 0, 0, err
		}
		if _, err := p.StartMain(uint64(requestsPerConn)); err != nil {
			return 0, 0, err
		}
		if err := vm.RunProcess(p, 1<<31); err != nil {
			return 0, 0, err
		}
		if p.FatalSignal != 0 {
			return 0, 0, fmt.Errorf("web server faulted: %s", vm.SignalName(p.FatalSignal))
		}
		return mach.Clock(), requestsPerConn * 21, nil
	}
	normCycles, nReq, err := run(false)
	if err != nil {
		return WebResult{}, err
	}
	tbCycles, _, err := run(true)
	if err != nil {
		return WebResult{}, err
	}
	// Average bytes per request from the file-size mix.
	const avgBytes = (1024 + 5120 + 51200 + 102400) / 4
	mkRow := func(cycles uint64) (resp, ops, kbits float64) {
		ms := float64(cycles) / cyclesPerMs
		resp = ms / float64(nReq) * 21 // per-request latency at 21 concurrent conns
		ops = float64(nReq) / (ms / 1000)
		kbits = ops * avgBytes * 8 / 1024
		return
	}
	var r WebResult
	r.ResponseNormal, r.OpsNormal, r.KbitsNormal = mkRow(normCycles)
	r.ResponseTB, r.OpsTB, r.KbitsTB = mkRow(tbCycles)
	r.Ratio = r.ResponseTB / r.ResponseNormal
	return r, nil
}
