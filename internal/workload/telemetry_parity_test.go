package workload

import (
	"testing"

	"traceback/internal/core"
	"traceback/internal/tbrt"
	"traceback/internal/telemetry"
	"traceback/internal/vm"
)

// runInstrumented mirrors runModule's instrumented path with VM+rt
// telemetry optionally enabled on a shared registry.
func runInstrumented(t *testing.T, p SpecProgram, scale float64, withTelemetry bool) (uint64, *telemetry.Registry) {
	t.Helper()
	mod, err := compileSpec(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Instrument(mod, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	arg := uint64(float64(p.Arg) * scale)
	if arg == 0 {
		arg = 1
	}
	w := vm.NewWorld(42)
	mach := w.NewMachine("bench", 0)
	cfg := tbrt.Config{}
	var reg *telemetry.Registry
	if withTelemetry {
		reg = telemetry.New()
		cfg.Telemetry = reg
		mach.EnableTelemetry(reg)
	}
	proc, _, err := tbrt.NewProcess(mach, mod.Name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Load(res.Module); err != nil {
		t.Fatal(err)
	}
	if _, err := proc.StartMain(arg); err != nil {
		t.Fatal(err)
	}
	if err := vm.RunProcess(proc, 1<<31); err != nil {
		t.Fatal(err)
	}
	return proc.Cycles, reg
}

// TestTelemetryCycleParity is the deployability guarantee behind the
// self-telemetry layer: metrics and flight events are host-side only,
// so enabling them must not change a single deterministic VM cycle —
// every Table 1 ratio derived from these runs is identical with
// telemetry on or off.
func TestTelemetryCycleParity(t *testing.T) {
	scale := 0.05
	for _, p := range SpecInt {
		plain, _ := runInstrumented(t, p, scale, false)
		traced, reg := runInstrumented(t, p, scale, true)
		if plain != traced {
			t.Errorf("%s: telemetry changed cycles: %d vs %d", p.Name, plain, traced)
		}
		// The telemetry run actually observed the workload: the VM
		// counted syscalls (exit is a thread-class one).
		if got := reg.Counter("vm_syscalls_thread_total", "").Load(); got == 0 {
			t.Errorf("%s: no thread-class syscalls counted", p.Name)
		}
	}
}
