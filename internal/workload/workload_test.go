package workload

import (
	"math"
	"testing"

	"traceback/internal/core"
)

// Quick-scale factor for unit tests (benchmarks use 1.0).
const quick = 0.25

func TestSpecProgramsCompileAndRun(t *testing.T) {
	for _, p := range SpecInt {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			r, err := RunSpec(p, quick, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if r.Ratio <= 1.0 {
				t.Errorf("ratio = %.2f, instrumentation should cost something", r.Ratio)
			}
			if r.Ratio > 3.5 {
				t.Errorf("ratio = %.2f, implausibly high", r.Ratio)
			}
		})
	}
}

// TestTable1Shape verifies the qualitative claims of Table 1: the
// call-dense programs are the most expensive, the memory-bound
// programs the cheapest, and the geometric mean sits in the paper's
// neighborhood (1.59).
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	rs, geo, paperGeo, err := RunSpecSuite(quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SpecResult{}
	for _, r := range rs {
		byName[r.Name] = r
	}
	// perlbmk is the most expensive program, as in the paper.
	for _, other := range []string{"art", "equake", "mcf", "ammp", "vpr", "gzip"} {
		if byName["perlbmk"].Ratio <= byName[other].Ratio {
			t.Errorf("perlbmk (%.2f) should exceed %s (%.2f)",
				byName["perlbmk"].Ratio, other, byName[other].Ratio)
		}
	}
	// The memory-bound group is cheaper than the call/branch group.
	memBound := []string{"art", "equake", "ammp", "mcf"}
	dense := []string{"perlbmk", "vortex", "gcc", "parser"}
	for _, m := range memBound {
		for _, d := range dense {
			if byName[m].Ratio >= byName[d].Ratio {
				t.Errorf("memory-bound %s (%.2f) should be cheaper than %s (%.2f)",
					m, byName[m].Ratio, d, byName[d].Ratio)
			}
		}
	}
	if math.Abs(geo-paperGeo) > 0.35 {
		t.Errorf("geomean = %.2f, paper = %.2f; want within 0.35", geo, paperGeo)
	}
	// The paper reports ~60% text growth; ours is more modest but
	// must be substantial.
	for _, r := range rs {
		if r.CodeGrowth <= 0.05 || r.CodeGrowth > 1.0 {
			t.Errorf("%s: code growth %.0f%% out of band", r.Name, r.CodeGrowth*100)
		}
	}
}

// TestTable2Shape: web-server overhead lands near the paper's 5%,
// an order of magnitude below SPECint.
func TestTable2Shape(t *testing.T) {
	r, err := RunWeb(12)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio < 1.005 || r.Ratio > 1.15 {
		t.Errorf("web response ratio = %.3f, want ~1.05 (paper 1.049)", r.Ratio)
	}
	if r.OpsTB >= r.OpsNormal {
		t.Error("instrumentation should reduce throughput")
	}
	if r.KbitsTB >= r.KbitsNormal {
		t.Error("instrumentation should reduce Kbits/sec")
	}
}

// TestTable3Shape: managed warehouse overhead in the 16-25%-ish
// band, higher with 5 warehouses than 1, ordered Win < Lin, Sun.
func TestTable3Shape(t *testing.T) {
	results := map[string]map[int]JbbResult{}
	for _, sys := range JbbSystems {
		results[sys.Name] = map[int]JbbResult{}
		for _, wh := range []int{1, 5} {
			r, err := RunJbb(sys, wh, 1500)
			if err != nil {
				t.Fatal(err)
			}
			results[sys.Name][wh] = r
			if r.Ratio < 1.10 || r.Ratio > 1.40 {
				t.Errorf("%s %dW: ratio %.3f outside the managed band", sys.Name, wh, r.Ratio)
			}
		}
		if results[sys.Name][5].Ratio <= results[sys.Name][1].Ratio {
			t.Errorf("%s: 5W (%.3f) should exceed 1W (%.3f)",
				sys.Name, results[sys.Name][5].Ratio, results[sys.Name][1].Ratio)
		}
	}
	if results["Win"][1].Ratio >= results["Sun"][1].Ratio {
		t.Errorf("Win 1W (%.3f) should be below Sun 1W (%.3f), as in Table 3",
			results["Win"][1].Ratio, results["Sun"][1].Ratio)
	}
}

// TestPetShopShape: the managed web app loses only ~1% throughput.
func TestPetShopShape(t *testing.T) {
	r, err := RunPetShop(4, 150)
	if err != nil {
		t.Fatal(err)
	}
	if r.Drop < 0 || r.Drop > 0.05 {
		t.Errorf("petshop drop = %.2f%%, want ~1%% (paper 0.97%%)", r.Drop*100)
	}
}

// TestAblations: the design-choice costs move in the documented
// directions.
func TestAblations(t *testing.T) {
	rs, err := RunAblations(quick)
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[string]AblationResult{}
	for _, r := range rs {
		byVariant[r.Variant] = r
	}
	if r := byVariant["force-spill"]; r.Ratio <= r.Baseline {
		t.Errorf("forced spills (%.2f) should cost more than scavenged registers (%.2f)",
			r.Ratio, r.Baseline)
	}
	if r := byVariant["no-break-at-calls"]; r.Ratio >= r.Baseline {
		t.Errorf("removing call-return probes (%.2f) should be cheaper than the sound default (%.2f)",
			r.Ratio, r.Baseline)
	}
	if b2, b4 := byVariant["max-path-bits-2"], byVariant["max-path-bits-4"]; b2.Ratio <= b4.Ratio {
		t.Errorf("2 path bits (%.2f) should cost more than 4 (%.2f)", b2.Ratio, b4.Ratio)
	}
}

// TestSubBufferOverhead: sub-buffering costs something but not much.
func TestSubBufferOverhead(t *testing.T) {
	off, on, err := SubBufferOverhead(quick, 4)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(on) / float64(off)
	if ratio < 0.99 || ratio > 1.25 {
		t.Errorf("sub-buffering overhead ratio = %.3f, want small but nonnegative", ratio)
	}
}

// TestSpecDeterminism: identical runs give identical cycle counts.
func TestSpecDeterminism(t *testing.T) {
	p, _ := SpecByName("gzip")
	a, err := RunSpec(p, quick, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpec(p, quick, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Normal != b.Normal || a.TraceBack != b.TraceBack {
		t.Error("benchmark runs are not deterministic")
	}
}
