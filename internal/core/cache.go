package core

import (
	"sync"

	"traceback/internal/module"
)

// Cache memoizes instrumentation by module checksum — the paper's
// §3.4 on-disk cache for dynamically generated code (ASP.NET .aspx /
// JSP pages): the first load of a generated module pays for
// instrumentation, subsequent loads (and subsequent processes) reuse
// the cached instrumented image; a rebuilt page changes its checksum
// and is re-instrumented.
type Cache struct {
	mu   sync.Mutex
	opts Options
	// nextBase hands each newly cached module a distinct default DAG
	// base so same-process loads rarely need rebasing.
	nextBase uint32
	entries  map[string]*Result

	// Hits/Misses are observable for tests and operations.
	Hits, Misses int
}

// NewCache creates an instrumentation cache with shared options.
func NewCache(opts Options) *Cache {
	return &Cache{opts: opts, entries: map[string]*Result{}}
}

// Instrument returns the cached instrumentation of m, instrumenting
// on first sight of its checksum.
func (c *Cache) Instrument(m *module.Module) (*Result, error) {
	key := m.ChecksumHex()
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.entries[key]; ok {
		c.Hits++
		return r, nil
	}
	c.Misses++
	opts := c.opts
	opts.DAGBase = c.nextBase
	r, err := Instrument(m, opts)
	if err != nil {
		return nil, err
	}
	c.nextBase += r.Module.DAGCount
	c.entries[key] = r
	return r, nil
}

// Len reports the number of cached modules.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
