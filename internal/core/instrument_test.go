package core

import (
	"testing"

	"traceback/internal/isa"
	"traceback/internal/module"
	"traceback/internal/trace"
)

// figure2Module builds the paper's Figure 2 shape: a function whose
// CFG is a diamond followed by an RPC-style call, which forces the
// graph to be tiled with two DAGs.
//
//	line 1: if (a == b)        block A (entry)
//	line 2:   x = 1            block B
//	line 3: else x = 2         block C
//	line 4: rpc()              block D (ends in call)
//	line 5: y = r + x          block E (call return point)
//	line 6: return             (still block E)
func figure2Module() *module.Module {
	return &module.Module{
		Name: "fig2",
		Code: []isa.Instr{
			{Op: isa.BEQ, A: 1, B: 2, Imm: 3}, // 0 A
			{Op: isa.MOVI, A: 3, Imm: 1},      // 1 B
			{Op: isa.JMP, Imm: 4},             // 2 B
			{Op: isa.MOVI, A: 3, Imm: 2},      // 3 C
			{Op: isa.CALL, Imm: 7},            // 4 D
			{Op: isa.ADD, A: 4, B: 0, C: 3},   // 5 E (reads r0: the call's result)
			{Op: isa.RET},                     // 6 E
			{Op: isa.MOVI, A: 0, Imm: 0},      // 7 rpc
			{Op: isa.RET},                     // 8 rpc
		},
		Funcs: []module.Func{
			{Name: "main", Entry: 0, End: 7, Exported: true},
			{Name: "rpc", Entry: 7, End: 9},
		},
		Files: []string{"fig2.mc"},
		Lines: []module.LineEntry{
			{Index: 0, File: 0, Line: 1},
			{Index: 1, File: 0, Line: 2},
			{Index: 3, File: 0, Line: 3},
			{Index: 4, File: 0, Line: 4},
			{Index: 5, File: 0, Line: 5},
			{Index: 6, File: 0, Line: 6},
			{Index: 7, File: 0, Line: 10},
		},
	}
}

func TestFigure2DAGTiling(t *testing.T) {
	res, err := Instrument(figure2Module(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mf := res.Map
	// The call forces main into two DAGs; rpc adds a third.
	if mf.DAGCount != 3 {
		t.Fatalf("DAGCount = %d, want 3 (two for main, one for rpc)", mf.DAGCount)
	}
	d0, _ := mf.DAGByID(0)
	if len(d0.Blocks) != 4 {
		t.Fatalf("DAG 0 has %d blocks, want 4 (A,B,C,D)", len(d0.Blocks))
	}
	// Header (A) carries no bit; B and C carry bits; D is implied
	// (all of its in-DAG predecessors branch unconditionally to it).
	if d0.Blocks[0].Bit != -1 {
		t.Error("header block must not carry a path bit")
	}
	bits := 0
	for _, b := range d0.Blocks[1:] {
		if b.Bit >= 0 {
			bits++
		}
	}
	if bits != 2 {
		t.Errorf("DAG 0 assigned %d bits, want 2 (B and C; D is implied)", bits)
	}
	// The last block of DAG 0 ends in a call.
	last := d0.Blocks[len(d0.Blocks)-1]
	if last.Call != module.CallDirect || last.CallTarget != "rpc" {
		t.Errorf("call annotation = %v %q, want direct rpc", last.Call, last.CallTarget)
	}
	// DAG 1 is the call return point.
	d1, _ := mf.DAGByID(1)
	if len(d1.Blocks) != 1 || !d1.Blocks[0].CallReturn || !d1.Blocks[0].FuncExit {
		t.Errorf("DAG 1 = %+v, want single call-return exit block", d1.Blocks)
	}
	// DAG 2 is rpc's entry.
	d2, _ := mf.DAGByID(2)
	if d2.Blocks[0].FuncEntry != "rpc" {
		t.Errorf("DAG 2 entry = %q, want rpc", d2.Blocks[0].FuncEntry)
	}
	if res.Stats.HeavyProbes != 3 || res.Stats.LightProbes != 2 {
		t.Errorf("stats = %+v, want 3 heavy / 2 light", res.Stats)
	}
	// The return-point probe must save r0: the ADD consumes the call
	// result that lives there.
	if res.Stats.SavedRV != 1 {
		t.Errorf("SavedRV = %d, want 1 (r0 live at the call return point)", res.Stats.SavedRV)
	}
}

func TestInstrumentedModuleIsValid(t *testing.T) {
	res, err := Instrument(figure2Module(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Module.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := res.Map.Validate(); err != nil {
		t.Fatal(err)
	}
	if !res.Module.Instrumented {
		t.Error("module not marked instrumented")
	}
	if _, ok := res.Module.FuncByName(HelperName); !ok {
		t.Error("probe helper not appended")
	}
	if res.Map.Checksum != res.Module.ChecksumHex() {
		t.Error("mapfile checksum does not match the instrumented module")
	}
	if len(res.Module.DAGFixups) != int(res.Module.DAGCount) {
		t.Errorf("%d DAG fixups for %d DAGs", len(res.Module.DAGFixups), res.Module.DAGCount)
	}
}

func TestInstrumentRejectsDoubleInstrumentation(t *testing.T) {
	res, err := Instrument(figure2Module(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Instrument(res.Module, Options{}); err == nil {
		t.Fatal("double instrumentation accepted")
	}
}

func TestLoopGetsHeader(t *testing.T) {
	// while (r1 > 0) r1--;  — the loop body must contain a header or
	// path records could grow without bound.
	m := &module.Module{
		Name: "loop",
		Code: []isa.Instr{
			{Op: isa.MOVI, A: 1, Imm: 100},      // 0
			{Op: isa.BLE, A: 1, B: 0, Imm: 4},   // 1 loop head
			{Op: isa.ADDI, A: 1, B: 1, Imm: -1}, // 2 body
			{Op: isa.JMP, Imm: 1},               // 3
			{Op: isa.RET},                       // 4
		},
		Funcs: []module.Func{{Name: "f", Entry: 0, End: 5}},
	}
	res, err := Instrument(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Entry DAG plus at least one header inside the cycle.
	if res.Map.DAGCount < 2 {
		t.Fatalf("DAGCount = %d, want >= 2 for a loop", res.Map.DAGCount)
	}
}

func TestPathBitBudgetForcesSplit(t *testing.T) {
	// A chain of diamonds long enough to exceed a 2-bit budget.
	var code []isa.Instr
	for i := 0; i < 4; i++ {
		base := int32(len(code))
		code = append(code,
			isa.Instr{Op: isa.BEQ, A: 1, B: 2, Imm: base + 3}, // diamond head
			isa.Instr{Op: isa.MOVI, A: 3, Imm: 1},
			isa.Instr{Op: isa.JMP, Imm: base + 4},
			isa.Instr{Op: isa.MOVI, A: 3, Imm: 2},
			isa.Instr{Op: isa.NOP}, // join
		)
	}
	code = append(code, isa.Instr{Op: isa.RET})
	m := &module.Module{Name: "wide", Code: code,
		Funcs: []module.Func{{Name: "f", Entry: 0, End: uint32(len(code))}}}

	limited, err := Instrument(m, Options{MaxPathBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	free, err := Instrument(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if limited.Map.DAGCount <= free.Map.DAGCount {
		t.Errorf("limited bits gave %d DAGs, unlimited gave %d; want more DAGs under pressure",
			limited.Map.DAGCount, free.Map.DAGCount)
	}
	for _, d := range limited.Map.DAGs {
		for _, b := range d.Blocks {
			if b.Bit >= 2 {
				t.Errorf("bit %d assigned with MaxPathBits=2", b.Bit)
			}
		}
	}
}

func TestForceSpillUsesPushPop(t *testing.T) {
	m := figure2Module()
	spill, err := Instrument(m, Options{ForceSpill: true})
	if err != nil {
		t.Fatal(err)
	}
	if spill.Stats.Spills != spill.Stats.LightProbes || spill.Stats.Spills == 0 {
		t.Errorf("ForceSpill: %d spills of %d light probes", spill.Stats.Spills, spill.Stats.LightProbes)
	}
	clean, err := Instrument(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Stats.Spills != 0 {
		t.Errorf("registers were available but %d probes spilled", clean.Stats.Spills)
	}
	if spill.Stats.NewInstrs <= clean.Stats.NewInstrs {
		t.Error("spilling probes should cost extra instructions")
	}
}

func TestNoBreakAtCallsReducesDAGs(t *testing.T) {
	m := figure2Module()
	with, err := Instrument(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Instrument(m, Options{NoBreakAtCalls: true})
	if err != nil {
		t.Fatal(err)
	}
	if without.Map.DAGCount >= with.Map.DAGCount {
		t.Errorf("NoBreakAtCalls: %d DAGs, with breaks: %d; want fewer",
			without.Map.DAGCount, with.Map.DAGCount)
	}
}

func TestJumpTableTargetsBecomeHeaders(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.JTAB, A: 1, C: 2},   // 0
		{Op: isa.JMP, Imm: 3},        // 1 slot
		{Op: isa.JMP, Imm: 5},        // 2 slot
		{Op: isa.MOVI, A: 2, Imm: 1}, // 3 case 0
		{Op: isa.RET},                // 4
		{Op: isa.MOVI, A: 2, Imm: 2}, // 5 case 1
		{Op: isa.RET},                // 6
	}
	m := &module.Module{Name: "sw", Code: code,
		Funcs: []module.Func{{Name: "f", Entry: 0, End: uint32(len(code))}}}
	res, err := Instrument(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Entry DAG + one DAG per case target.
	if res.Map.DAGCount != 3 {
		t.Fatalf("DAGCount = %d, want 3", res.Map.DAGCount)
	}
	// The jump table slots must remain contiguous with the JTAB in
	// the instrumented code: no probe between JTAB and its slots.
	var jtabAt = -1
	for i, in := range res.Module.Code {
		if in.Op == isa.JTAB {
			jtabAt = i
			break
		}
	}
	if jtabAt == -1 {
		t.Fatal("JTAB lost")
	}
	for s := 1; s <= 2; s++ {
		if res.Module.Code[jtabAt+s].Op != isa.JMP {
			t.Fatalf("instruction %d after JTAB is %v, want jmp", s, res.Module.Code[jtabAt+s].Op)
		}
	}
}

func TestDAGBaseRebasedIntoProbes(t *testing.T) {
	res, err := Instrument(figure2Module(), Options{DAGBase: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Module.DAGBase != 5000 {
		t.Fatalf("DAGBase = %d", res.Module.DAGBase)
	}
	for i, fx := range res.Module.DAGFixups {
		w := uint32(res.Module.Code[fx].Imm)
		if !trace.IsDAG(w) {
			t.Fatalf("fixup %d: imm %#x is not a DAG word", i, w)
		}
		if id := trace.DAGID(w); id < 5000 || id >= 5000+res.Module.DAGCount {
			t.Errorf("fixup %d: DAG ID %d outside [5000,%d)", i, id, 5000+res.Module.DAGCount)
		}
	}
}

func TestBranchTargetsEnterThroughProbes(t *testing.T) {
	res, err := Instrument(figure2Module(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	nm := res.Module
	// Every conditional-branch target must land on the first
	// instruction of an instrumented block (its probe), never inside
	// or past one.
	starts := map[uint32]bool{}
	for _, d := range res.Map.DAGs {
		for _, b := range d.Blocks {
			starts[b.Start] = true
		}
	}
	helper, _ := nm.FuncByName(HelperName)
	for i, in := range nm.Code {
		if uint32(i) >= helper.Entry {
			break
		}
		if in.Op.IsCondBranch() || in.Op == isa.JMP {
			if !starts[uint32(in.Imm)] {
				t.Errorf("instruction %d (%v) targets %d, which is not a block start", i, in, in.Imm)
			}
		}
	}
}

func TestCodeGrowthReasonable(t *testing.T) {
	res, err := Instrument(figure2Module(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Stats.CodeGrowth()
	if g <= 0 || g > 4 {
		t.Errorf("code growth = %.2f, want within (0, 4]", g)
	}
}

func TestHelperCodeShape(t *testing.T) {
	code, tlsOffs := helperCode(100)
	if code[0].Op != isa.PUSH || code[len(code)-1].Op != isa.RET {
		t.Error("helper must save its scratch register and return")
	}
	foundWrap := false
	for _, in := range code {
		if in.Op == isa.SYS && in.Imm == isa.SysTBWrap {
			foundWrap = true
		}
	}
	if !foundWrap {
		t.Error("helper never calls buffer_wrap")
	}
	for _, off := range tlsOffs {
		op := code[off].Op
		if op != isa.TLSLD && op != isa.TLSST {
			t.Errorf("TLS fixup offset %d points at %v", off, op)
		}
	}
}

func TestInstrumentDeterministic(t *testing.T) {
	a, err := Instrument(figure2Module(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Instrument(figure2Module(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Module.ChecksumHex() != b.Module.ChecksumHex() {
		t.Error("instrumentation is not deterministic")
	}
}
