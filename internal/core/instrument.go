// Package core implements the paper's primary contribution: static
// binary instrumentation that injects control-flow probes at basic
// block granularity.
//
// Each function's CFG is tiled into DAGs (paper §2.1): heavyweight
// probes at DAG headers record a fresh trace record carrying the DAG
// ID; lightweight probes inside the DAG OR per-block bits into that
// record. Headers are forced at function entries, loop heads, call
// return points (paper §2.2/§2.4), and multiway-branch targets, and
// further splits keep every DAG within the record's path-bit budget.
// Probe code scavenges dead registers found by liveness analysis and
// spills only when none are free (the paper's gzip longest_match
// case). The rewritten code is re-laid-out, all code targets and
// line/function tables are fixed up, the probe helper subroutine is
// appended to the module, and a mapfile is emitted for
// reconstruction.
package core

import (
	"fmt"
	"sort"

	"traceback/internal/cfg"
	"traceback/internal/isa"
	"traceback/internal/module"
	"traceback/internal/trace"
)

// Options control instrumentation.
type Options struct {
	// DAGBase is the default (instrumentation-time) base of the
	// module's DAG ID range; the runtime may rebase it at load.
	DAGBase uint32
	// MaxPathBits caps the lightweight-probe bits per DAG record.
	// 0 means trace.NumPathBits. Lower values force more heavyweight
	// probes (an ablation knob).
	MaxPathBits int
	// NoBreakAtCalls disables the heavyweight probe at call return
	// points. This removes the guarantee that exceptions in callees
	// are attributed to the right call (and, for instrumented
	// callees, corrupts path bits), but shows the cost the paper's
	// §2.2 requirement imposes. Benchmark/ablation use only.
	NoBreakAtCalls bool
	// ForceSpill makes every lightweight probe use the spill/restore
	// form even when a dead register is available, isolating the
	// register-scavenging benefit (paper §6 gzip analysis).
	ForceSpill bool
}

// Stats summarizes what instrumentation did to a module.
type Stats struct {
	Funcs       int
	Blocks      int
	DAGs        int
	HeavyProbes int
	LightProbes int
	Spills      int // lightweight probes that had to spill a register
	SavedRV     int // heavyweight probes that had to save/restore r0
	OrigInstrs  int
	NewInstrs   int
}

// CodeGrowth is the fractional text-size increase (paper §6 reports
// about 60% for SPECint binaries).
func (s Stats) CodeGrowth() float64 {
	if s.OrigInstrs == 0 {
		return 0
	}
	return float64(s.NewInstrs-s.OrigInstrs) / float64(s.OrigInstrs)
}

// Result is the output of Instrument.
type Result struct {
	Module *module.Module
	Map    *module.MapFile
	Stats  Stats
}

// HelperName is the probe helper subroutine injected into every
// instrumented module (the analog of the paper's 0x7000 subroutine).
const HelperName = "__tb_probe_helper"

// Instrument rewrites m into an instrumented module and its mapfile.
// m is not modified.
func Instrument(m *module.Module, opts Options) (*Result, error) {
	if m.Instrumented {
		return nil, fmt.Errorf("core: module %s is already instrumented", m.Name)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	maxBits := opts.MaxPathBits
	if maxBits <= 0 || maxBits > trace.NumPathBits {
		maxBits = trace.NumPathBits
	}

	ins := &instrumenter{m: m, opts: opts, maxBits: maxBits}
	return ins.run()
}

type instrumenter struct {
	m       *module.Module
	opts    Options
	maxBits int

	stats Stats

	// Per-function tiling results, in function order.
	tilings []*tiling

	nextDAG uint32
}

// tiling is the DAG tiling of one function.
type tiling struct {
	fn     module.Func
	g      *cfg.Graph
	header map[int]bool // block ID -> is DAG header
	owner  []int        // block ID -> owning header block ID (-1 if none)
	// dags maps header block ID -> DAG descriptor.
	dags map[int]*dag
	// headersByStart lists headers ordered by block start.
	headersByStart []int
}

// dag describes one tile: blocks in topological order, header first.
type dag struct {
	id     uint32 // module-relative DAG ID
	blocks []int  // block IDs, topological order, blocks[0] = header
	pos    map[int]int
	bits   map[int]int8 // block ID -> assigned bit (absent = none)
}

func (ins *instrumenter) run() (*Result, error) {
	m := ins.m
	for _, fn := range m.Funcs {
		g, err := cfg.Build(m.Code, fn)
		if err != nil {
			return nil, err
		}
		t, err := ins.tile(g, fn)
		if err != nil {
			return nil, err
		}
		ins.tilings = append(ins.tilings, t)
		ins.stats.Funcs++
		ins.stats.Blocks += len(g.Blocks)
	}
	if ins.nextDAG > trace.MaxDAGID {
		return nil, fmt.Errorf("core: module %s needs %d DAG IDs, exceeding the %d-bit ID space",
			m.Name, ins.nextDAG, trace.DAGIDBits)
	}
	return ins.emit()
}

// tile computes the DAG tiling of one function (paper §2.1–§2.2).
func (ins *instrumenter) tile(g *cfg.Graph, fn module.Func) (*tiling, error) {
	t := &tiling{fn: fn, g: g, header: map[int]bool{}}

	// Mandatory headers.
	t.header[g.Entry] = true
	for _, b := range g.Blocks {
		if b.IsMultiwayTarget && !b.IsJTABSlot {
			t.header[b.ID] = true
		}
		if b.EndsInCall && !ins.opts.NoBreakAtCalls {
			// The call's return point is a fresh entry (paper §2.2).
			for _, s := range b.Succs {
				if !g.Blocks[s].IsJTABSlot {
					t.header[s] = true
				}
			}
		}
	}

	for iter := 0; ; iter++ {
		if iter > 4*len(g.Blocks)+16 {
			return nil, fmt.Errorf("core: tiling of %s did not converge", fn.Name)
		}
		changed := false

		// 1. Break cycles: every loop must contain a header.
		cut := func(id int) bool { return t.header[id] }
		for _, scc := range g.NontrivialSCCs(cut) {
			pick := -1
			for _, id := range scc {
				if g.Blocks[id].IsJTABSlot {
					continue
				}
				if pick == -1 || g.Blocks[id].Start < g.Blocks[pick].Start {
					pick = id
				}
			}
			if pick == -1 {
				return nil, fmt.Errorf("core: %s: cycle through jump-table slots only", fn.Name)
			}
			t.header[pick] = true
			changed = true
		}
		if changed {
			continue
		}

		// 2. Partition: a block reachable from two headers without
		// crossing a header would need two different bit assignments,
		// so promote it.
		owner := make([]int, len(g.Blocks))
		for i := range owner {
			owner[i] = -1
		}
		conflict := false
		for _, hid := range sortedHeaders(t.header, g) {
			queue := []int{hid}
			owner[hid] = hid
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				for _, s := range g.Blocks[v].Succs {
					if t.header[s] {
						continue
					}
					switch owner[s] {
					case -1:
						owner[s] = hid
						queue = append(queue, s)
					case hid:
						// already visited from this header
					default:
						if !g.Blocks[s].IsJTABSlot {
							t.header[s] = true
							conflict = true
						}
					}
				}
			}
		}
		if conflict {
			continue
		}
		t.owner = owner

		// 3. Build DAGs and assign bits; split DAGs that exceed the
		// path-bit budget.
		t.dags = map[int]*dag{}
		split := false
		for _, hid := range sortedHeaders(t.header, g) {
			d := buildDAG(g, t, hid)
			over := assignBits(g, t, d, ins.maxBits)
			if over != -1 {
				t.header[over] = true
				split = true
				break
			}
			t.dags[hid] = d
		}
		if split {
			continue
		}
		break
	}

	// Stable DAG ID assignment: headers in address order.
	for hid := range t.header {
		t.headersByStart = append(t.headersByStart, hid)
	}
	sort.Slice(t.headersByStart, func(i, j int) bool {
		return g.Blocks[t.headersByStart[i]].Start < g.Blocks[t.headersByStart[j]].Start
	})
	for _, hid := range t.headersByStart {
		t.dags[hid].id = ins.nextDAG
		ins.nextDAG++
	}
	ins.stats.DAGs += len(t.headersByStart)
	return t, nil
}

// sortedHeaders returns the header block IDs in address order so that
// tiling decisions (and therefore DAG IDs, probe layout, and the
// module checksum) are deterministic.
func sortedHeaders(header map[int]bool, g *cfg.Graph) []int {
	ids := make([]int, 0, len(header))
	for id := range header {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return g.Blocks[ids[i]].Start < g.Blocks[ids[j]].Start })
	return ids
}

// buildDAG collects the blocks owned by header hid in topological
// order (header first).
func buildDAG(g *cfg.Graph, t *tiling, hid int) *dag {
	member := map[int]bool{hid: true}
	for id, o := range t.owner {
		if o == hid && !t.header[id] {
			member[id] = true
		}
	}
	// Kahn topological sort over in-DAG edges.
	indeg := map[int]int{}
	for id := range member {
		indeg[id] += 0
		for _, s := range g.Blocks[id].Succs {
			if member[s] && s != hid {
				indeg[s]++
			}
		}
	}
	queue := []int{hid}
	var order []int
	seen := map[int]bool{hid: true}
	for len(queue) > 0 {
		// Deterministic order: pick smallest start among ready nodes.
		best := 0
		for i := 1; i < len(queue); i++ {
			if g.Blocks[queue[i]].Start < g.Blocks[queue[best]].Start {
				best = i
			}
		}
		v := queue[best]
		queue = append(queue[:best], queue[best+1:]...)
		order = append(order, v)
		for _, s := range g.Blocks[v].Succs {
			if !member[s] || s == hid || seen[s] {
				continue
			}
			indeg[s]--
			if indeg[s] == 0 {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	d := &dag{blocks: order, pos: make(map[int]int, len(order)), bits: map[int]int8{}}
	for i, id := range order {
		d.pos[id] = i
	}
	return d
}

// assignBits gives each block that needs one a path bit, in
// topological order. A block needs a bit when some in-DAG predecessor
// has more than one successor (otherwise its execution is implied;
// paper §2.1: blocks reached only by unconditional control need no
// probe). Jump-table slots never get probes. Returns the block ID to
// promote to header if the budget is exceeded, or -1.
func assignBits(g *cfg.Graph, t *tiling, d *dag, maxBits int) int {
	next := int8(0)
	for _, id := range d.blocks[1:] {
		b := g.Blocks[id]
		if b.IsJTABSlot {
			continue
		}
		need := false
		for _, p := range b.Preds {
			if _, in := d.pos[p]; in && len(g.Blocks[p].Succs) > 1 {
				need = true
				break
			}
		}
		if !need {
			continue
		}
		if int(next) >= maxBits {
			return id
		}
		d.bits[id] = next
		next++
	}
	return -1
}

// emit rewrites the module: inserts probe sequences, re-lays-out the
// code, fixes up all code targets and tables, appends the probe
// helper, and produces the mapfile.
func (ins *instrumenter) emit() (*Result, error) {
	m := ins.m
	old := m.Code
	ins.stats.OrigInstrs = len(old)

	// probesAt[oldIdx] is the probe sequence to inject before the
	// instruction at oldIdx.
	probesAt := make(map[uint32][]isa.Instr)
	// dagStoreOffsets[oldIdx] lists offsets (within the injected
	// sequence) of STI4 DAG writes, for the fixup table.
	type probeMeta struct {
		stiOffsets []int
		tlsOffsets []int
	}
	meta := make(map[uint32]*probeMeta)

	for fi, t := range ins.tilings {
		liveIn, _ := t.g.Liveness()
		for _, hid := range t.headersByStart {
			d := t.dags[hid]
			for pi, id := range d.blocks {
				b := t.g.Blocks[id]
				var seq []isa.Instr
				pm := &probeMeta{}
				if pi == 0 {
					// Heavyweight probe: call helper (buffer pointer
					// returned in r0), then store the pre-shifted DAG
					// record. r0 is saved/restored when live-in.
					word := trace.DAGWord(m.DAGBase+d.id, 0)
					saveRV := liveIn[id].Has(isa.RV)
					if saveRV {
						seq = append(seq, isa.Instr{Op: isa.PUSH, A: isa.RV})
						ins.stats.SavedRV++
					}
					seq = append(seq, isa.Instr{Op: isa.CALL, Imm: helperCallPlaceholder})
					pm.stiOffsets = append(pm.stiOffsets, len(seq))
					seq = append(seq, isa.Instr{Op: isa.STI4, A: isa.RV, Imm: int32(word)})
					if saveRV {
						seq = append(seq, isa.Instr{Op: isa.POP, A: isa.RV})
					}
					ins.stats.HeavyProbes++
				} else if bit, ok := d.bits[id]; ok {
					// Lightweight probe: load the buffer pointer from
					// TLS into a scavenged dead register and OR the
					// block's bit into the current record.
					scratch := -1
					if !ins.opts.ForceSpill {
						for r := 0; r < isa.NumRegs; r++ {
							if r == isa.SP || r == isa.FP {
								continue
							}
							if !liveIn[id].Has(uint8(r)) {
								scratch = r
								break
							}
						}
					}
					bitsImm := int32(1) << uint(bit)
					if scratch >= 0 {
						pm.tlsOffsets = append(pm.tlsOffsets, len(seq))
						seq = append(seq,
							isa.Instr{Op: isa.TLSLD, A: uint8(scratch), C: isa.TLSSlot},
							isa.Instr{Op: isa.ORM4, A: uint8(scratch), Imm: bitsImm})
					} else {
						// No dead register: spill/restore (the gzip
						// longest_match case, paper §6).
						const spillReg = 5
						seq = append(seq, isa.Instr{Op: isa.PUSH, A: spillReg})
						pm.tlsOffsets = append(pm.tlsOffsets, len(seq))
						seq = append(seq,
							isa.Instr{Op: isa.TLSLD, A: spillReg, C: isa.TLSSlot},
							isa.Instr{Op: isa.ORM4, A: spillReg, Imm: bitsImm},
							isa.Instr{Op: isa.POP, A: spillReg})
						ins.stats.Spills++
					}
					ins.stats.LightProbes++
				}
				if len(seq) > 0 {
					probesAt[b.Start] = seq
					meta[b.Start] = pm
				}
			}
		}
		_ = fi
	}

	// Relayout: build new code with probes injected, tracking the
	// old->new index map (new index of the first injected instruction,
	// so branches to a block enter through its probe).
	newCode := make([]isa.Instr, 0, len(old)+len(probesAt)*3)
	oldToNew := make([]uint32, len(old)+1)
	newMod := &module.Module{
		Name:         m.Name,
		Data:         append([]byte(nil), m.Data...),
		BSS:          m.BSS,
		Imports:      append([]module.Import(nil), m.Imports...),
		Globals:      append([]module.Global(nil), m.Globals...),
		Files:        append([]string(nil), m.Files...),
		Instrumented: true,
		DAGBase:      m.DAGBase,
		DAGCount:     ins.nextDAG,
	}
	if ins.opts.DAGBase != 0 {
		// Caller-specified default base (e.g. from a DAG base file).
		newMod.DAGBase = ins.opts.DAGBase
	}
	for i, in := range old {
		oldToNew[i] = uint32(len(newCode))
		if seq, ok := probesAt[uint32(i)]; ok {
			pm := meta[uint32(i)]
			base := len(newCode)
			for _, off := range pm.stiOffsets {
				newMod.DAGFixups = append(newMod.DAGFixups, uint32(base+off))
			}
			for _, off := range pm.tlsOffsets {
				newMod.TLSFixups = append(newMod.TLSFixups, uint32(base+off))
			}
			newCode = append(newCode, seq...)
		}
		newCode = append(newCode, in)
	}
	oldToNew[len(old)] = uint32(len(newCode))

	// Rebase the caller-specified DAG base into the probe stores.
	if newMod.DAGBase != m.DAGBase {
		for _, fx := range newMod.DAGFixups {
			w := uint32(newCode[fx].Imm)
			local := trace.DAGID(w) - m.DAGBase
			newCode[fx].Imm = int32(trace.DAGWord(newMod.DAGBase+local, 0))
		}
	}

	// Append the probe helper subroutine.
	helperEntry := uint32(len(newCode))
	helper, helperTLS := helperCode(helperEntry)
	newCode = append(newCode, helper...)
	for _, off := range helperTLS {
		newMod.TLSFixups = append(newMod.TLSFixups, helperEntry+off)
	}

	// Fix up code targets.
	for i := range newCode {
		in := &newCode[i]
		if uint32(i) >= helperEntry {
			break
		}
		if in.Op == isa.CALL && in.Imm == helperCallPlaceholder {
			in.Imm = int32(helperEntry)
			continue
		}
		if in.Op.HasCodeTarget() {
			in.Imm = int32(oldToNew[in.Imm])
		}
	}

	// Rebuild the function and line tables.
	for _, f := range m.Funcs {
		newMod.Funcs = append(newMod.Funcs, module.Func{
			Name:     f.Name,
			Entry:    oldToNew[f.Entry],
			End:      oldToNew[f.End],
			Exported: f.Exported,
		})
	}
	newMod.Funcs = append(newMod.Funcs, module.Func{
		Name:  HelperName,
		Entry: helperEntry,
		End:   uint32(len(newCode)),
	})
	for _, e := range m.Lines {
		newMod.Lines = append(newMod.Lines, module.LineEntry{
			Index: oldToNew[e.Index], File: e.File, Line: e.Line,
		})
	}
	newMod.Code = newCode
	ins.stats.NewInstrs = len(newCode)
	if err := newMod.Validate(); err != nil {
		return nil, fmt.Errorf("core: instrumented module invalid: %w", err)
	}

	mf, err := ins.buildMapFile(newMod, oldToNew)
	if err != nil {
		return nil, err
	}
	return &Result{Module: newMod, Map: mf, Stats: ins.stats}, nil
}

const helperCallPlaceholder = -1 << 24

// helperCode generates the probe helper (paper §2.1's subroutine):
//
//	push r1
//	tlsld r0, 60        ; buffer pointer (last written record)
//	addi r0, r0, 4      ; advance to the next slot
//	ld4  r1, [r0]       ; sign-extending load
//	beqi r1, -1, wrap   ; sentinel? call into the runtime
//	tlsst 60, r0
//	pop r1
//	ret
//	wrap: sys TBWrap    ; runtime assigns a slot, sets TLS, r0 = slot
//	pop r1
//	ret
//
// Returned offsets identify the TLS instructions for the fixup table.
func helperCode(entry uint32) ([]isa.Instr, []uint32) {
	wrap := entry + 8
	code := []isa.Instr{
		{Op: isa.PUSH, A: 1},
		{Op: isa.TLSLD, A: isa.RV, C: isa.TLSSlot},
		{Op: isa.ADDI, A: isa.RV, B: isa.RV, Imm: 4},
		{Op: isa.LD4, A: 1, B: isa.RV},
		{Op: isa.BEQI, A: 1, C: 0xFF /* -1 */, Imm: int32(wrap)},
		{Op: isa.TLSST, A: isa.RV, C: isa.TLSSlot},
		{Op: isa.POP, A: 1},
		{Op: isa.RET},
		{Op: isa.SYS, Imm: isa.SysTBWrap}, // wrap:
		{Op: isa.POP, A: 1},
		{Op: isa.RET},
	}
	return code, []uint32{1, 5}
}

// buildMapFile emits the reconstruction sidecar for the instrumented
// module (paper §2.1: DAG->blocks and bit->successor tables, plus the
// per-block line spans and call annotations §4.3 needs).
func (ins *instrumenter) buildMapFile(nm *module.Module, oldToNew []uint32) (*module.MapFile, error) {
	mf := &module.MapFile{
		ModuleName: nm.Name,
		Checksum:   nm.ChecksumHex(),
		DAGBase:    nm.DAGBase,
		DAGCount:   nm.DAGCount,
		DAGs:       make([]module.MapDAG, nm.DAGCount),
		Globals:    append([]module.Global(nil), nm.Globals...),
	}
	for _, t := range ins.tilings {
		for _, hid := range t.headersByStart {
			d := t.dags[hid]
			md := module.MapDAG{ID: d.id}
			for _, id := range d.blocks {
				b := t.g.Blocks[id]
				nb := module.MapBlock{
					Start: oldToNew[b.Start],
					End:   oldToNew[b.End],
					Bit:   -1,
				}
				if bit, ok := d.bits[id]; ok {
					nb.Bit = bit
				}
				for _, s := range b.Succs {
					if p, in := d.pos[s]; in && s != hid {
						nb.Succs = append(nb.Succs, p)
					}
				}
				sort.Ints(nb.Succs)
				nb.Lines = lineSpans(nm, nb.Start, nb.End)
				if b.EndsInCall {
					nb.Call = b.CallKind
					nb.CallTarget = ins.callTargetName(t, b)
				}
				if f, ok := nm.FindFunc(nb.Start); ok && f.Entry == nb.Start {
					nb.FuncEntry = f.Name
				}
				nb.FuncExit = b.HasRet
				nb.CallReturn = isCallReturn(t.g, b)
				md.Blocks = append(md.Blocks, nb)
			}
			mf.DAGs[d.id] = md
		}
	}
	return mf, mf.Validate()
}

func isCallReturn(g *cfg.Graph, b *cfg.Block) bool {
	for _, p := range b.Preds {
		if g.Blocks[p].EndsInCall {
			return true
		}
	}
	return false
}

// callTargetName resolves a human-readable name for the call ending
// block b.
func (ins *instrumenter) callTargetName(t *tiling, b *cfg.Block) string {
	switch b.CallKind {
	case module.CallDirect:
		for _, f := range ins.m.Funcs {
			if f.Entry == uint32(b.CallImm) {
				return f.Name
			}
		}
		return fmt.Sprintf("@%d", b.CallImm)
	case module.CallImport:
		if int(b.CallImm) < len(ins.m.Imports) {
			im := ins.m.Imports[b.CallImm]
			if im.Module != "" {
				return im.Module + "!" + im.Name
			}
			return im.Name
		}
	case module.CallIndirect:
		return fmt.Sprintf("(*r%d)", b.CallImm)
	}
	return ""
}

// lineSpans slices [start, end) of the instrumented module into
// per-source-line spans.
func lineSpans(nm *module.Module, start, end uint32) []module.LineSpan {
	var spans []module.LineSpan
	for i := start; i < end; i++ {
		file, line, ok := nm.LineFor(i)
		if !ok {
			continue
		}
		n := len(spans)
		if n > 0 && spans[n-1].File == file && spans[n-1].Line == line && spans[n-1].End == i {
			spans[n-1].End = i + 1
			continue
		}
		spans = append(spans, module.LineSpan{File: file, Line: line, Start: i, End: i + 1})
	}
	return spans
}
