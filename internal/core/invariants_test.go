package core

import (
	"fmt"
	"math/rand"
	"testing"

	"traceback/internal/cfg"
	"traceback/internal/minic"
	"traceback/internal/module"
	"traceback/internal/tbrt"
	"traceback/internal/trace"
	"traceback/internal/vm"
)

// genProgram emits a random MiniC program (loops, branches, switches,
// calls) for invariant checking.
func genProgram(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	src := "int g[8];\n"
	nf := r.Intn(3) + 1
	for f := 0; f < nf; f++ {
		src += fmt.Sprintf("int fn%d(int x) {\n", f)
		for s := 0; s < r.Intn(5)+2; s++ {
			switch r.Intn(5) {
			case 0:
				src += fmt.Sprintf("x = x * %d + g[x & 7];\n", r.Intn(9)+1)
			case 1:
				src += fmt.Sprintf("if (x %% %d == 0) { x = x + 1; } else { g[x & 7] = x; }\n", r.Intn(5)+2)
			case 2:
				src += fmt.Sprintf("for (int i = 0; i < %d; i = i + 1) { x = x + i; }\n", r.Intn(9)+1)
			case 3:
				src += "switch (x & 3) { case 0: x = x + 1; case 1: x = x - 1; case 2: x = x * 2; case 3: x = 0 - x; }\n"
			case 4:
				if f > 0 {
					src += fmt.Sprintf("x = x + fn%d(x %% 13);\n", r.Intn(f))
				} else {
					src += "x = x ^ 5;\n"
				}
			}
		}
		src += "return x % 1009;\n}\n"
	}
	src += fmt.Sprintf("int main() { exit(fn%d(getarg()) %% 251); }\n", nf-1)
	return src
}

// TestTilingInvariants checks, over many random programs, the
// properties the instrumentation scheme depends on:
//
//  1. every cycle of the instrumented CFG contains a DAG header
//     (so runs are bounded and loops re-record);
//  2. DAGs partition: no block belongs to two DAGs;
//  3. per-DAG bits are unique and within the record's bit budget;
//  4. every DAG's probe store carries the right pre-shifted ID;
//  5. block successor lists are topologically ordered (decode walks
//     pick the earliest marked successor).
func TestTilingInvariants(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		src := genProgram(seed * 311)
		mod, err := minic.Compile("inv", "inv.mc", src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		res, err := Instrument(mod, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		nm, mf := res.Module, res.Map

		headerStarts := map[uint32]uint32{} // header start -> DAG id
		blockOwner := map[uint32]uint32{}   // block start -> DAG id
		for _, d := range mf.DAGs {
			if len(d.Blocks) == 0 {
				t.Fatalf("seed %d: empty DAG %d", seed, d.ID)
			}
			headerStarts[d.Blocks[0].Start] = d.ID
			for bi, b := range d.Blocks {
				if prev, dup := blockOwner[b.Start]; dup {
					t.Fatalf("seed %d: block %d in DAGs %d and %d", seed, b.Start, prev, d.ID)
				}
				blockOwner[b.Start] = d.ID
				if b.Bit >= trace.NumPathBits {
					t.Fatalf("seed %d: bit %d out of budget", seed, b.Bit)
				}
				for _, s := range b.Succs {
					if s <= bi {
						t.Fatalf("seed %d: DAG %d successor %d not after block %d (not topological)",
							seed, d.ID, s, bi)
					}
				}
			}
		}

		// Every probe store's DAG word matches a mapfile DAG.
		for _, fx := range nm.DAGFixups {
			w := uint32(nm.Code[fx].Imm)
			if !trace.IsDAG(w) {
				t.Fatalf("seed %d: fixup not a DAG word", seed)
			}
			id := trace.DAGID(w) - nm.DAGBase
			if _, ok := mf.DAGByID(id); !ok {
				t.Fatalf("seed %d: probe writes unknown DAG %d", seed, id)
			}
		}

		// Cycle check on the instrumented code: cutting the headers
		// must break every cycle in every function.
		for _, fn := range nm.Funcs {
			if fn.Name == HelperName {
				continue
			}
			g, err := cfg.Build(nm.Code, fn)
			if err != nil {
				t.Fatalf("seed %d: rebuilding CFG of %s: %v", seed, fn.Name, err)
			}
			cut := func(id int) bool {
				_, isHeader := headerStarts[g.Blocks[id].Start]
				return isHeader
			}
			if sccs := g.NontrivialSCCs(cut); len(sccs) != 0 {
				t.Fatalf("seed %d: %s has a cycle with no DAG header: %v", seed, fn.Name, sccs)
			}
		}
	}
}

// TestInstrumentPreservesBehaviorRandom: instrumentation must never
// change program output, across random programs and inputs (the
// execution-level check; the line-trace check lives in the
// integration differential test).
func TestInstrumentPreservesBehaviorRandom(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		src := genProgram(seed * 733)
		mod, err := minic.Compile("beh", "beh.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Instrument(mod, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, arg := range []uint64{0, 7, 123} {
			a := runExit(t, mod, arg, false)
			b := runExit(t, res.Module, arg, true)
			if a != b {
				t.Fatalf("seed %d arg %d: exit %d vs %d\n%s", seed, arg, a, b, src)
			}
		}
	}
}

// runExit executes a module and returns its exit code.
func runExit(t *testing.T, m *module.Module, arg uint64, instrumented bool) int {
	t.Helper()
	w := vm.NewWorld(5)
	mach := w.NewMachine("m", 0)
	var p *vm.Process
	var err error
	if instrumented {
		p, _, err = tbrt.NewProcess(mach, "x", tbrt.Config{})
		if err != nil {
			t.Fatal(err)
		}
	} else {
		p = mach.NewProcess("x", nil)
	}
	if _, err := p.Load(m); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartMain(arg); err != nil {
		t.Fatal(err)
	}
	if err := vm.RunProcess(p, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if p.FatalSignal != 0 {
		t.Fatalf("faulted: %d", p.FatalSignal)
	}
	return p.ExitCode
}
