package minic

import (
	"traceback/internal/isa"
)

// block generates a statement block.
func (g *gen) block(b *blockStmt) error {
	for _, s := range b.stmts {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) stmt(s stmt) error {
	g.atLine(s.stmtLine())
	switch st := s.(type) {
	case *blockStmt:
		return g.block(st)

	case *localDecl:
		if st.array {
			off := g.allocStack(st.size)
			g.locals[st.name] = localInfo{reg: -1, off: off, size: st.size, array: true}
			return nil
		}
		li, ok := g.locals[st.name]
		if !ok {
			off := g.allocStack(1)
			li = localInfo{reg: -1, off: off, size: 1}
			g.locals[st.name] = li
		}
		if st.init == nil {
			return nil
		}
		return g.assignScalar(st.name, st.init, st.line)

	case *assignStmt:
		if st.target.index == nil {
			return g.assignScalar(st.target.name, st.value, st.line)
		}
		// Array element store.
		addr, err := g.elemAddr(st.target.name, st.target.index, st.line)
		if err != nil {
			return err
		}
		v, err := g.expr(st.value)
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.ST, A: addr, B: v})
		g.freeTemp(addr)
		g.freeTemp(v)
		return nil

	case *ifStmt:
		cond, err := g.expr(st.cond)
		if err != nil {
			return err
		}
		jFalse := g.emit(isa.Instr{Op: isa.BEQI, A: cond, C: 0})
		g.freeTemp(cond)
		if err := g.stmt(st.then); err != nil {
			return err
		}
		if st.els == nil {
			g.mod.Code[jFalse].Imm = int32(len(g.mod.Code))
			return nil
		}
		jEnd := g.emit(isa.Instr{Op: isa.JMP})
		g.mod.Code[jFalse].Imm = int32(len(g.mod.Code))
		if err := g.stmt(st.els); err != nil {
			return err
		}
		g.mod.Code[jEnd].Imm = int32(len(g.mod.Code))
		return nil

	case *whileStmt:
		var brks, cnts []int
		g.breaks = append(g.breaks, &brks)
		g.conts = append(g.conts, &cnts)
		top := len(g.mod.Code)
		cond, err := g.expr(st.cond)
		if err != nil {
			return err
		}
		jOut := g.emit(isa.Instr{Op: isa.BEQI, A: cond, C: 0})
		g.freeTemp(cond)
		if err := g.stmt(st.body); err != nil {
			return err
		}
		g.atLine(st.line)
		g.emit(isa.Instr{Op: isa.JMP, Imm: int32(top)})
		end := int32(len(g.mod.Code))
		g.mod.Code[jOut].Imm = end
		for _, at := range brks {
			g.mod.Code[at].Imm = end
		}
		for _, at := range cnts {
			g.mod.Code[at].Imm = int32(top)
		}
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		return nil

	case *forStmt:
		if st.init != nil {
			if err := g.stmt(st.init); err != nil {
				return err
			}
		}
		var brks, cnts []int
		g.breaks = append(g.breaks, &brks)
		g.conts = append(g.conts, &cnts)
		top := len(g.mod.Code)
		var jOut int = -1
		if st.cond != nil {
			cond, err := g.expr(st.cond)
			if err != nil {
				return err
			}
			jOut = g.emit(isa.Instr{Op: isa.BEQI, A: cond, C: 0})
			g.freeTemp(cond)
		}
		if err := g.stmt(st.body); err != nil {
			return err
		}
		postAt := int32(len(g.mod.Code))
		if st.post != nil {
			g.atLine(st.line)
			if err := g.stmt(st.post); err != nil {
				return err
			}
		}
		g.emit(isa.Instr{Op: isa.JMP, Imm: int32(top)})
		end := int32(len(g.mod.Code))
		if jOut >= 0 {
			g.mod.Code[jOut].Imm = end
		}
		for _, at := range brks {
			g.mod.Code[at].Imm = end
		}
		for _, at := range cnts {
			g.mod.Code[at].Imm = postAt
		}
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		return nil

	case *switchStmt:
		return g.switchStmt(st)

	case *returnStmt:
		if st.value != nil {
			v, err := g.expr(st.value)
			if err != nil {
				return err
			}
			g.emit(isa.Instr{Op: isa.MOV, A: isa.RV, B: v})
			g.freeTemp(v)
		} else {
			g.emit(isa.Instr{Op: isa.MOVI, A: isa.RV, Imm: 0})
		}
		at := g.emit(isa.Instr{Op: isa.JMP})
		g.epilogue = append(g.epilogue, at)
		return nil

	case *breakStmt:
		if len(g.breaks) == 0 {
			return g.errf(st.line, "break outside loop/switch")
		}
		at := g.emit(isa.Instr{Op: isa.JMP})
		lst := g.breaks[len(g.breaks)-1]
		*lst = append(*lst, at)
		return nil

	case *continueStmt:
		if len(g.conts) == 0 {
			return g.errf(st.line, "continue outside loop")
		}
		at := g.emit(isa.Instr{Op: isa.JMP})
		lst := g.conts[len(g.conts)-1]
		*lst = append(*lst, at)
		return nil

	case *exprStmt:
		v, err := g.expr(st.e)
		if err != nil {
			return err
		}
		g.freeTemp(v)
		return nil
	}
	return g.errf(s.stmtLine(), "unhandled statement")
}

// assignScalar stores an expression value into a named scalar.
func (g *gen) assignScalar(name string, value expr, line int) error {
	v, err := g.expr(value)
	if err != nil {
		return err
	}
	defer g.freeTemp(v)
	if li, ok := g.locals[name]; ok {
		if li.array {
			return g.errf(line, "cannot assign to array %s", name)
		}
		if li.reg >= 0 {
			g.emit(isa.Instr{Op: isa.MOV, A: uint8(li.reg), B: v})
		} else {
			g.emit(isa.Instr{Op: isa.ST, A: isa.FP, B: v, Imm: li.off})
		}
		return nil
	}
	if gi, ok := g.globals[name]; ok {
		if gi.size > 1 {
			return g.errf(line, "cannot assign to array %s", name)
		}
		a, err := g.allocTemp(line)
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.GADDR, A: a, Imm: gi.off})
		g.emit(isa.Instr{Op: isa.ST, A: a, B: v})
		g.freeTemp(a)
		return nil
	}
	return g.errf(line, "undefined variable %s", name)
}

// elemAddr computes &name[index] into a fresh temp.
func (g *gen) elemAddr(name string, index expr, line int) (uint8, error) {
	idx, err := g.expr(index)
	if err != nil {
		return 0, err
	}
	// addr = base + idx*8
	three, err := g.allocTemp(line)
	if err != nil {
		return 0, err
	}
	g.emit(isa.Instr{Op: isa.MOVI, A: three, Imm: 3})
	g.emit(isa.Instr{Op: isa.SHL, A: idx, B: idx, C: three})
	g.freeTemp(three)
	if li, ok := g.locals[name]; ok {
		if !li.array {
			// Scalar used as a base pointer (alloc() result).
			base, err2 := g.loadScalar(name, line)
			if err2 != nil {
				return 0, err2
			}
			g.emit(isa.Instr{Op: isa.ADD, A: idx, B: idx, C: base})
			g.freeTemp(base)
			return idx, nil
		}
		g.emit(isa.Instr{Op: isa.ADDI, A: idx, B: idx, Imm: li.off})
		g.emit(isa.Instr{Op: isa.ADD, A: idx, B: idx, C: isa.FP})
		return idx, nil
	}
	if gi, ok := g.globals[name]; ok {
		base, err2 := g.allocTemp(line)
		if err2 != nil {
			return 0, err2
		}
		g.emit(isa.Instr{Op: isa.GADDR, A: base, Imm: gi.off})
		g.emit(isa.Instr{Op: isa.ADD, A: idx, B: idx, C: base})
		g.freeTemp(base)
		return idx, nil
	}
	return 0, g.errf(line, "undefined array %s", name)
}

// loadScalar loads a named scalar into a fresh temp.
func (g *gen) loadScalar(name string, line int) (uint8, error) {
	if li, ok := g.locals[name]; ok {
		if li.array {
			// Array name decays to its address.
			r, err := g.allocTemp(line)
			if err != nil {
				return 0, err
			}
			g.emit(isa.Instr{Op: isa.ADDI, A: r, B: isa.FP, Imm: li.off})
			return r, nil
		}
		r, err := g.allocTemp(line)
		if err != nil {
			return 0, err
		}
		if li.reg >= 0 {
			g.emit(isa.Instr{Op: isa.MOV, A: r, B: uint8(li.reg)})
		} else {
			g.emit(isa.Instr{Op: isa.LD, A: r, B: isa.FP, Imm: li.off})
		}
		return r, nil
	}
	if gi, ok := g.globals[name]; ok {
		r, err := g.allocTemp(line)
		if err != nil {
			return 0, err
		}
		g.emit(isa.Instr{Op: isa.GADDR, A: r, Imm: gi.off})
		if gi.size == 1 {
			g.emit(isa.Instr{Op: isa.LD, A: r, B: r})
		}
		return r, nil
	}
	return 0, g.errf(line, "undefined variable %s", name)
}

// switchStmt lowers a switch. Dense case sets over [0, 32) become a
// jump table (a multiway branch, which instrumentation must head with
// heavyweight probes); sparse sets become an if-chain.
func (g *gen) switchStmt(st *switchStmt) error {
	v, err := g.expr(st.value)
	if err != nil {
		return err
	}
	var brks []int
	g.breaks = append(g.breaks, &brks)
	defer func() { g.breaks = g.breaks[:len(g.breaks)-1] }()

	lo, hi := int64(1<<62), int64(-1<<62)
	for _, c := range st.cases {
		if c.val < lo {
			lo = c.val
		}
		if c.val > hi {
			hi = c.val
		}
	}
	dense := len(st.cases) > 0 && lo == 0 && hi < 32 && hi-lo+1 <= int64(len(st.cases))*2

	if dense {
		n := int(hi + 1)
		// Bounds check: v < 0 or v >= n routes to the default.
		limit, err := g.allocTemp(st.line)
		if err != nil {
			return err
		}
		zr, err := g.allocTemp(st.line)
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.MOVI, A: zr, Imm: 0})
		jLow := g.emit(isa.Instr{Op: isa.BLT, A: v, B: zr})
		g.emit(isa.Instr{Op: isa.MOVI, A: limit, Imm: int32(n)})
		jHigh := g.emit(isa.Instr{Op: isa.BGE, A: v, B: limit})
		g.freeTemp(zr)
		g.freeTemp(limit)
		g.emit(isa.Instr{Op: isa.JTAB, A: v, C: uint8(n)})
		g.freeTemp(v)
		slots := make([]int, n)
		for i := 0; i < n; i++ {
			slots[i] = g.emit(isa.Instr{Op: isa.JMP})
		}
		// Default target (also the low/high bounds target).
		caseAt := map[int64]int32{}
		var ends []int
		for _, c := range st.cases {
			caseAt[c.val] = int32(len(g.mod.Code))
			g.atLine(c.line)
			for _, cs := range c.stmts {
				if err := g.stmt(cs); err != nil {
					return err
				}
			}
			ends = append(ends, g.emit(isa.Instr{Op: isa.JMP}))
		}
		defAt := int32(len(g.mod.Code))
		for _, cs := range st.def {
			if err := g.stmt(cs); err != nil {
				return err
			}
		}
		end := int32(len(g.mod.Code))
		g.mod.Code[jLow].Imm = defAt
		g.mod.Code[jHigh].Imm = defAt
		for i := 0; i < n; i++ {
			if at, ok := caseAt[int64(i)]; ok {
				g.mod.Code[slots[i]].Imm = at
			} else {
				g.mod.Code[slots[i]].Imm = defAt
			}
		}
		for _, at := range ends {
			g.mod.Code[at].Imm = end
		}
		for _, at := range brks {
			g.mod.Code[at].Imm = end
		}
		return nil
	}

	// Sparse: if-chain.
	type pend struct {
		j    int
		body []stmt
		line int
	}
	var pends []pend
	cv, err := g.allocTemp(st.line)
	if err != nil {
		return err
	}
	for _, c := range st.cases {
		g.emit(isa.Instr{Op: isa.MOVI, A: cv, Imm: int32(c.val)})
		j := g.emit(isa.Instr{Op: isa.BEQ, A: v, B: cv})
		pends = append(pends, pend{j: j, body: c.stmts, line: c.line})
	}
	g.freeTemp(cv)
	g.freeTemp(v)
	// Default falls through here.
	for _, cs := range st.def {
		if err := g.stmt(cs); err != nil {
			return err
		}
	}
	jEnd := g.emit(isa.Instr{Op: isa.JMP})
	var ends []int
	for _, pd := range pends {
		g.mod.Code[pd.j].Imm = int32(len(g.mod.Code))
		g.atLine(pd.line)
		for _, cs := range pd.body {
			if err := g.stmt(cs); err != nil {
				return err
			}
		}
		ends = append(ends, g.emit(isa.Instr{Op: isa.JMP}))
	}
	end := int32(len(g.mod.Code))
	g.mod.Code[jEnd].Imm = end
	for _, at := range ends {
		g.mod.Code[at].Imm = end
	}
	for _, at := range brks {
		g.mod.Code[at].Imm = end
	}
	return nil
}
