package minic

import (
	"strings"
	"testing"

	"traceback/internal/vm"
)

// run compiles and executes src, returning the exit code and output.
func run(t *testing.T, src string, arg uint64) (*vm.Process, int) {
	t.Helper()
	mod, err := Compile("test", "test.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(11)
	m := w.NewMachine("m", 0)
	p := m.NewProcess("test", nil)
	if _, err := p.Load(mod); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartMain(arg); err != nil {
		t.Fatal(err)
	}
	if err := vm.RunProcess(p, 5_000_000); err != nil {
		t.Fatal(err)
	}
	return p, p.ExitCode
}

func TestArithmetic(t *testing.T) {
	_, code := run(t, `
int main() {
	int a = 6;
	int b = 7;
	exit(a * b - 2);
}`, 0)
	if code != 40 {
		t.Errorf("exit = %d, want 40", code)
	}
}

func TestPrecedenceAndUnary(t *testing.T) {
	_, code := run(t, `
int main() {
	exit(2 + 3 * 4 - -6 / 2 + (1 << 4) + (255 & 15) + !0 + !5 + ~(-8));
}`, 0)
	// 2+12+3+16+15+1+0+7 = 56
	if code != 56 {
		t.Errorf("exit = %d, want 56", code)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	_, code := run(t, `
int main() {
	int n = 0;
	if (3 < 5) n = n + 1;
	if (5 <= 5) n = n + 1;
	if (7 > 2) n = n + 1;
	if (2 >= 3) n = n + 100;
	if (4 == 4 && 5 != 6) n = n + 1;
	if (0 || 9) n = n + 1;
	if (1 && 0) n = n + 100;
	exit(n);
}`, 0)
	if code != 5 {
		t.Errorf("exit = %d, want 5", code)
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	_, code := run(t, `
int g;
int bump() { g = g + 1; return 1; }
int main() {
	int x = 0 && bump();
	int y = 1 || bump();
	exit(g * 10 + x + y);
}`, 0)
	if code != 1 {
		t.Errorf("exit = %d, want 1 (bump never called)", code)
	}
}

func TestWhileLoop(t *testing.T) {
	_, code := run(t, `
int main() {
	int sum = 0;
	int i = 1;
	while (i <= 100) {
		sum = sum + i;
		i = i + 1;
	}
	exit(sum % 251);
}`, 0)
	if code != 5050%251 {
		t.Errorf("exit = %d, want %d", code, 5050%251)
	}
}

func TestForLoopBreakContinue(t *testing.T) {
	_, code := run(t, `
int main() {
	int sum = 0;
	for (int i = 0; i < 20; i = i + 1) {
		if (i % 2 == 1) continue;
		if (i > 10) break;
		sum = sum + i;
	}
	exit(sum);
}`, 0)
	if code != 0+2+4+6+8+10 {
		t.Errorf("exit = %d, want 30", code)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	_, code := run(t, `
int table[16];
int total;
int main() {
	for (int i = 0; i < 16; i = i + 1) {
		table[i] = i * i;
	}
	total = 0;
	for (int i = 0; i < 16; i = i + 1) {
		total = total + table[i];
	}
	exit(total % 256);
}`, 0)
	want := 0
	for i := 0; i < 16; i++ {
		want += i * i
	}
	if code != want%256 {
		t.Errorf("exit = %d, want %d", code, want%256)
	}
}

func TestLocalArrays(t *testing.T) {
	_, code := run(t, `
int main() {
	int buf[8];
	for (int i = 0; i < 8; i = i + 1) buf[i] = i + 1;
	int s = 0;
	for (int i = 0; i < 8; i = i + 1) s = s + buf[i];
	exit(s);
}`, 0)
	if code != 36 {
		t.Errorf("exit = %d, want 36", code)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	_, code := run(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() { exit(fib(15)); }`, 0)
	if code != 610 {
		t.Errorf("fib(15) = %d, want 610", code)
	}
}

func TestFourArguments(t *testing.T) {
	_, code := run(t, `
int mix(int a, int b, int c, int d) { return a * 1000 + b * 100 + c * 10 + d; }
int main() { exit(mix(1, 2, 3, 4)); }`, 0)
	if code != 1234 {
		t.Errorf("exit = %d, want 1234", code)
	}
}

func TestNestedCallsPreserveTemps(t *testing.T) {
	_, code := run(t, `
int id(int x) { return x; }
int main() {
	exit(id(10) + id(20) * id(3) - id(id(5)));
}`, 0)
	if code != 10+60-5 {
		t.Errorf("exit = %d, want 65", code)
	}
}

func TestSwitchDenseJumpTable(t *testing.T) {
	src := `
int classify(int x) {
	switch (x) {
	case 0: return 100;
	case 1: return 200;
	case 2: return 300;
	case 3: return 400;
	default: return 999;
	}
}
int main() { exit(classify(getarg())); }`
	for arg, want := range map[uint64]int{0: 100, 1: 200, 2: 300, 3: 400, 9: 999} {
		if _, code := run(t, src, arg); code != want {
			t.Errorf("classify(%d) = %d, want %d", arg, code, want)
		}
	}
}

func TestSwitchSparse(t *testing.T) {
	src := `
int main() {
	int r = 0;
	switch (getarg()) {
	case 100: r = 1;
	case 5000: r = 2;
	default: r = 3;
	}
	exit(r);
}`
	for arg, want := range map[uint64]int{100: 1, 5000: 2, 7: 3} {
		if _, code := run(t, src, arg); code != want {
			t.Errorf("switch(%d) = %d, want %d", arg, code, want)
		}
	}
}

func TestPrintAndPrintInt(t *testing.T) {
	p, _ := run(t, `
int main() {
	print("hello\n");
	print_int(42);
	exit(0);
}`, 0)
	if got := p.OutString(); got != "hello\n42\n" {
		t.Errorf("output = %q", got)
	}
}

func TestAllocPeekPoke(t *testing.T) {
	_, code := run(t, `
int main() {
	int p = alloc(64);
	poke(p + 8, 77);
	exit(peek(p + 8));
}`, 0)
	if code != 77 {
		t.Errorf("exit = %d, want 77", code)
	}
}

func TestPointerIndexingThroughScalar(t *testing.T) {
	_, code := run(t, `
int main() {
	int p = alloc(64);
	p[3] = 21;
	exit(p[3] * 2);
}`, 0)
	if code != 42 {
		t.Errorf("exit = %d, want 42", code)
	}
}

func TestThreadsBuiltins(t *testing.T) {
	_, code := run(t, `
int worker() {
	return getarg() * 2;
}
int main() {
	int t1 = thread_create(&worker, 10);
	int t2 = thread_create(&worker, 20);
	exit(join(t1) + join(t2));
}`, 0)
	if code != 60 {
		t.Errorf("exit = %d, want 60", code)
	}
}

func TestFunctionPointerCall(t *testing.T) {
	_, code := run(t, `
int twice(int x) { return x * 2; }
int thrice(int x) { return x * 3; }
int main() {
	int f = &twice;
	if (getarg() == 1) f = &thrice;
	exit(f(7));
}`, 1)
	if code != 21 {
		t.Errorf("exit = %d, want 21", code)
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	p, _ := run(t, `
int main() {
	int z = 0;
	exit(5 / z);
}`, 0)
	if p.FatalSignal != vm.SigFpe {
		t.Errorf("signal = %s, want SIGFPE", vm.SignalName(p.FatalSignal))
	}
}

func TestLineTableAccuracy(t *testing.T) {
	mod, err := Compile("t", "t.mc", `int main() {
	int a = 1;
	int b = 2;
	exit(a + b);
}`)
	if err != nil {
		t.Fatal(err)
	}
	// The exit call is on line 4.
	found := false
	for i, in := range mod.Code {
		if in.Op.String() == "sys" && in.Imm == 1 {
			_, line, ok := mod.LineFor(uint32(i))
			if !ok || line != 4 {
				t.Errorf("exit() attributed to line %d, want 4", line)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no exit syscall generated")
	}
	if err := mod.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`int main( { }`,
		`int main() { int; }`,
		`int main() { if (1 }`,
		`int main() { x = ; }`,
		`int main() { break; }`,
		`int 3x() {}`,
		`int main() { return 1 }`,
		`int a[0];`,
		`int main(int a, int b, int c, int d, int e) {}`,
		`int f() {} int f() {}`,
		`int main() { undefined_fn(); }`,
		`int main() { exit(novar); }`,
		`int main() { case 1: ; }`,
	}
	for _, src := range bad {
		if _, err := Compile("bad", "bad.mc", src); err == nil {
			t.Errorf("compile accepted %q", src)
		}
	}
}

func TestComments(t *testing.T) {
	_, code := run(t, `
// line comment
int main() {
	/* block
	   comment */
	exit(9); // trailing
}`, 0)
	if code != 9 {
		t.Errorf("exit = %d, want 9", code)
	}
}

func TestExternCrossModule(t *testing.T) {
	lib, err := Compile("mathlib", "mathlib.mc", `
int square(int x) { return x * x; }
`)
	if err != nil {
		t.Fatal(err)
	}
	app, err := Compile("app", "app.mc", `
extern "mathlib" int square(int x);
int main() { exit(square(9)); }
`)
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(1)
	m := w.NewMachine("m", 0)
	p := m.NewProcess("app", nil)
	if _, err := p.Load(lib); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Load(app); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartMain(0); err != nil {
		t.Fatal(err)
	}
	if err := vm.RunProcess(p, 100000); err != nil {
		t.Fatal(err)
	}
	if p.ExitCode != 81 {
		t.Errorf("exit = %d, want 81", p.ExitCode)
	}
}

func TestDeepExpression(t *testing.T) {
	_, code := run(t, `
int main() {
	exit(((1 + 2) * (3 + 4)) + ((5 - 6) * (7 - 8)));
}`, 0)
	if code != 22 {
		t.Errorf("exit = %d, want 22", code)
	}
}

func TestHexLiterals(t *testing.T) {
	_, code := run(t, `int main() { exit(0xFF & 0x0F); }`, 0)
	if code != 15 {
		t.Errorf("exit = %d, want 15", code)
	}
}

func TestMutexBuiltins(t *testing.T) {
	_, code := run(t, `
int m;
int counter;
int worker() {
	for (int i = 0; i < 100; i = i + 1) {
		mutex_lock(&m);
		counter = counter + 1;
		mutex_unlock(&m);
	}
	return 0;
}
int main() {
	int t1 = thread_create(&worker, 0);
	int t2 = thread_create(&worker, 0);
	join(t1);
	join(t2);
	exit(counter);
}`, 0)
	if code != 200 {
		t.Errorf("counter = %d, want 200", code)
	}
}

func TestCompileDeterministic(t *testing.T) {
	src := `int f(int x) { return x + 1; } int main() { exit(f(1)); }`
	a, err := Compile("d", "d.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile("d", "d.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	if a.ChecksumHex() != b.ChecksumHex() {
		t.Error("compilation is not deterministic")
	}
}

func TestStringEscapes(t *testing.T) {
	p, _ := run(t, `int main() { print("a\tb\n"); exit(0); }`, 0)
	if !strings.Contains(p.OutString(), "a\tb\n") {
		t.Errorf("output = %q", p.OutString())
	}
}
