package minic

// AST node definitions. Every node carries the source line that
// produced it so codegen can emit an accurate line table.

type program struct {
	globals []*globalDecl
	externs []*externDecl
	funcs   []*funcDecl
}

type globalDecl struct {
	name string
	size int // array element count; 1 for scalars
	line int
}

type externDecl struct {
	module string // "" = resolve by name anywhere
	name   string
	line   int
}

type funcDecl struct {
	name   string
	params []string
	body   *blockStmt
	line   int
}

// Statements.

type stmt interface{ stmtLine() int }

type blockStmt struct {
	stmts []stmt
	line  int
}

type localDecl struct {
	name  string
	size  int  // element count (1 for scalars)
	array bool // declared with [N] syntax, even when N == 1
	init  expr
	line  int
}

type ifStmt struct {
	cond      expr
	then, els stmt
	line      int
}

type whileStmt struct {
	cond expr
	body stmt
	line int
}

type forStmt struct {
	init, post stmt // simple statements or nil
	cond       expr // nil = true
	body       stmt
	line       int
}

type switchStmt struct {
	value expr
	cases []switchCase
	def   []stmt
	line  int
}

type switchCase struct {
	val   int64
	stmts []stmt
	line  int
}

type returnStmt struct {
	value expr // nil = return 0
	line  int
}

type breakStmt struct{ line int }
type continueStmt struct{ line int }

type assignStmt struct {
	target *lvalue
	value  expr
	line   int
}

type exprStmt struct {
	e    expr
	line int
}

func (s *blockStmt) stmtLine() int    { return s.line }
func (s *localDecl) stmtLine() int    { return s.line }
func (s *ifStmt) stmtLine() int       { return s.line }
func (s *whileStmt) stmtLine() int    { return s.line }
func (s *forStmt) stmtLine() int      { return s.line }
func (s *switchStmt) stmtLine() int   { return s.line }
func (s *returnStmt) stmtLine() int   { return s.line }
func (s *breakStmt) stmtLine() int    { return s.line }
func (s *continueStmt) stmtLine() int { return s.line }
func (s *assignStmt) stmtLine() int   { return s.line }
func (s *exprStmt) stmtLine() int     { return s.line }

// lvalue is an assignable location: a variable or an indexed array.
type lvalue struct {
	name  string
	index expr // nil for scalars
	line  int
}

// Expressions.

type expr interface{ exprLine() int }

type numExpr struct {
	v    int64
	line int
}

type strExpr struct {
	s    string
	line int
}

type varExpr struct {
	name string
	line int
}

type indexExpr struct {
	name  string
	index expr
	line  int
}

type addrExpr struct { // &name: function or global address
	name string
	line int
}

type unaryExpr struct {
	op   string // - ! ~
	x    expr
	line int
}

type binExpr struct {
	op   string
	l, r expr
	line int
}

type callExpr struct {
	name string
	args []expr
	line int
}

func (e *numExpr) exprLine() int   { return e.line }
func (e *strExpr) exprLine() int   { return e.line }
func (e *varExpr) exprLine() int   { return e.line }
func (e *indexExpr) exprLine() int { return e.line }
func (e *addrExpr) exprLine() int  { return e.line }
func (e *unaryExpr) exprLine() int { return e.line }
func (e *binExpr) exprLine() int   { return e.line }
func (e *callExpr) exprLine() int  { return e.line }
