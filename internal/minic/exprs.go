package minic

import (
	"traceback/internal/isa"
)

// expr generates code for e and returns the temp register holding the
// result. The caller frees it.
func (g *gen) expr(e expr) (uint8, error) {
	switch ex := e.(type) {
	case *numExpr:
		if ex.v < -(1<<31) || ex.v >= 1<<31 {
			return 0, g.errf(ex.line, "constant %d out of 32-bit immediate range", ex.v)
		}
		r, err := g.allocTemp(ex.line)
		if err != nil {
			return 0, err
		}
		g.emit(isa.Instr{Op: isa.MOVI, A: r, Imm: int32(ex.v)})
		return r, nil

	case *strExpr:
		// A string literal evaluates to its data address; its length
		// is available via len("...") — handled in callExpr — or by
		// convention (builtins that take a string take addr+len
		// pairs, which the compiler expands).
		addr := g.internString(ex.s)
		r, err := g.allocTemp(ex.line)
		if err != nil {
			return 0, err
		}
		g.emit(isa.Instr{Op: isa.GADDR, A: r, Imm: addr})
		return r, nil

	case *varExpr:
		return g.loadScalar(ex.name, ex.line)

	case *indexExpr:
		addr, err := g.elemAddr(ex.name, ex.index, ex.line)
		if err != nil {
			return 0, err
		}
		g.emit(isa.Instr{Op: isa.LD, A: addr, B: addr})
		return addr, nil

	case *addrExpr:
		r, err := g.allocTemp(ex.line)
		if err != nil {
			return 0, err
		}
		if li, ok := g.locals[ex.name]; ok {
			if li.reg >= 0 {
				return 0, g.errf(ex.line, "&%s: variable lives in a register", ex.name)
			}
			g.emit(isa.Instr{Op: isa.ADDI, A: r, B: isa.FP, Imm: li.off})
			return r, nil
		}
		if fi, ok := g.funcs[ex.name]; ok {
			g.emit(isa.Instr{Op: isa.LDFN, A: r, Imm: int32(fi)})
			return r, nil
		}
		if gi, ok := g.globals[ex.name]; ok {
			g.emit(isa.Instr{Op: isa.GADDR, A: r, Imm: gi.off})
			return r, nil
		}
		return 0, g.errf(ex.line, "&%s: no such variable, function, or global", ex.name)

	case *unaryExpr:
		x, err := g.expr(ex.x)
		if err != nil {
			return 0, err
		}
		switch ex.op {
		case "-":
			g.emit(isa.Instr{Op: isa.NEG, A: x, B: x})
		case "~":
			g.emit(isa.Instr{Op: isa.NOT, A: x, B: x})
		case "!":
			z, err := g.allocTemp(ex.line)
			if err != nil {
				return 0, err
			}
			g.emit(isa.Instr{Op: isa.MOVI, A: z, Imm: 0})
			g.emit(isa.Instr{Op: isa.CMPEQ, A: x, B: x, C: z})
			g.freeTemp(z)
		}
		return x, nil

	case *binExpr:
		return g.binExpr(ex)

	case *callExpr:
		return g.call(ex)
	}
	return 0, g.errf(e.exprLine(), "unhandled expression")
}

func (g *gen) binExpr(ex *binExpr) (uint8, error) {
	// Short-circuit forms.
	if ex.op == "&&" || ex.op == "||" {
		l, err := g.expr(ex.l)
		if err != nil {
			return 0, err
		}
		// Normalize to 0/1.
		g.normBool(l, ex.line)
		var jShort int
		if ex.op == "&&" {
			jShort = g.emit(isa.Instr{Op: isa.BEQI, A: l, C: 0})
		} else {
			jShort = g.emit(isa.Instr{Op: isa.BNEI, A: l, C: 0})
		}
		r, err := g.expr(ex.r)
		if err != nil {
			return 0, err
		}
		g.normBool(r, ex.line)
		g.emit(isa.Instr{Op: isa.MOV, A: l, B: r})
		g.freeTemp(r)
		g.mod.Code[jShort].Imm = int32(len(g.mod.Code))
		return l, nil
	}

	l, err := g.expr(ex.l)
	if err != nil {
		return 0, err
	}
	r, err := g.expr(ex.r)
	if err != nil {
		return 0, err
	}
	defer g.freeTemp(r)
	var op isa.Op
	swap := false
	switch ex.op {
	case "+":
		op = isa.ADD
	case "-":
		op = isa.SUB
	case "*":
		op = isa.MUL
	case "/":
		op = isa.DIV
	case "%":
		op = isa.MOD
	case "&":
		op = isa.AND
	case "|":
		op = isa.OR
	case "^":
		op = isa.XOR
	case "<<":
		op = isa.SHL
	case ">>":
		op = isa.SHR
	case "==":
		op = isa.CMPEQ
	case "!=":
		op = isa.CMPNE
	case "<":
		op = isa.CMPLT
	case "<=":
		op = isa.CMPLE
	case ">":
		op, swap = isa.CMPLT, true
	case ">=":
		op, swap = isa.CMPLE, true
	default:
		return 0, g.errf(ex.line, "unhandled operator %q", ex.op)
	}
	if swap {
		g.emit(isa.Instr{Op: op, A: l, B: r, C: l})
	} else {
		g.emit(isa.Instr{Op: op, A: l, B: l, C: r})
	}
	return l, nil
}

// normBool clamps a value to 0/1 (x != 0).
func (g *gen) normBool(x uint8, line int) {
	z, err := g.allocTemp(line)
	if err != nil {
		// Pool exhaustion here is impossible in practice: normBool is
		// called with at most two temps live.
		return
	}
	g.emit(isa.Instr{Op: isa.MOVI, A: z, Imm: 0})
	g.emit(isa.Instr{Op: isa.CMPNE, A: x, B: x, C: z})
	g.freeTemp(z)
}

// internString places a literal in the data segment, returning its
// offset.
func (g *gen) internString(s string) int32 {
	off := int32(len(g.mod.Data))
	g.mod.Data = append(g.mod.Data, s...)
	// Pad to 8 bytes so later globals stay aligned (none are added
	// after strings, but allocs should stay tidy).
	for len(g.mod.Data)%8 != 0 {
		g.mod.Data = append(g.mod.Data, 0)
	}
	return off
}

// Builtins mapping to syscalls. Each entry lists the syscall number
// and argument count; string arguments expand to (addr, len) pairs.
var builtins = map[string]struct {
	sys  int
	args int
}{
	"exit":          {isa.SysExit, 1},
	"rand":          {isa.SysRand, 0},
	"clock":         {isa.SysClock, 0},
	"sleep":         {isa.SysSleep, 1},
	"alloc":         {isa.SysAlloc, 1},
	"memcpy":        {isa.SysMemcpy, 3},
	"tid":           {isa.SysGetTID, 0},
	"getarg":        {isa.SysGetArg, 0},
	"yield":         {isa.SysYield, 0},
	"raise":         {isa.SysRaise, 1},
	"signal":        {isa.SysSignal, 2},
	"thread_create": {isa.SysThreadCreate, 2},
	"join":          {isa.SysThreadJoin, 1},
	"mutex_lock":    {isa.SysMutexLock, 1},
	"mutex_unlock":  {isa.SysMutexUnlock, 1},
	"kill":          {isa.SysKill, 2},
	"ioread":        {isa.SysIORead, 1},
	"iowrite":       {isa.SysIOWrite, 1},
	"netsend":       {isa.SysNetSend, 1},
	"rpc_call":      {isa.SysRPCCall, 4},
	"rpc_recv":      {isa.SysRPCRecv, 3},
	"rpc_reply":     {isa.SysRPCReply, 4},
}

// call generates a call: a builtin (syscall), a peek/poke intrinsic,
// a direct call to a module function, or a cross-module extern call.
func (g *gen) call(ex *callExpr) (uint8, error) {
	switch ex.name {
	case "peek":
		if len(ex.args) != 1 {
			return 0, g.errf(ex.line, "peek takes 1 argument")
		}
		a, err := g.expr(ex.args[0])
		if err != nil {
			return 0, err
		}
		g.emit(isa.Instr{Op: isa.LD, A: a, B: a})
		return a, nil
	case "poke":
		if len(ex.args) != 2 {
			return 0, g.errf(ex.line, "poke takes 2 arguments")
		}
		a, err := g.expr(ex.args[0])
		if err != nil {
			return 0, err
		}
		v, err := g.expr(ex.args[1])
		if err != nil {
			return 0, err
		}
		g.emit(isa.Instr{Op: isa.ST, A: a, B: v})
		g.freeTemp(v)
		g.emit(isa.Instr{Op: isa.MOVI, A: a, Imm: 0})
		return a, nil
	case "len":
		s, ok := ex.args[0].(*strExpr)
		if len(ex.args) != 1 || !ok {
			return 0, g.errf(ex.line, "len takes one string literal")
		}
		r, err := g.allocTemp(ex.line)
		if err != nil {
			return 0, err
		}
		g.emit(isa.Instr{Op: isa.MOVI, A: r, Imm: int32(len(s.s))})
		return r, nil
	case "print", "snap", "load_module":
		// Builtins taking one string literal, expanded to (addr, len).
		if len(ex.args) == 1 {
			if s, ok := ex.args[0].(*strExpr); ok {
				var sys int
				var args []expr
				strLen := &numExpr{v: int64(len(s.s)), line: ex.line}
				switch ex.name {
				case "print":
					sys = isa.SysWrite
					args = []expr{&numExpr{v: 1, line: ex.line}, ex.args[0], strLen}
				case "snap":
					sys = isa.SysSnap
					args = []expr{ex.args[0], strLen}
				case "load_module":
					sys = isa.SysLoadModule
					args = []expr{ex.args[0], strLen}
				}
				return g.syscall(sys, args, ex.line)
			}
		}
		return 0, g.errf(ex.line, "%s takes one string literal", ex.name)
	case "print_int":
		if len(ex.args) != 1 {
			return 0, g.errf(ex.line, "print_int takes 1 argument")
		}
		return g.syscall(isa.SysPrintInt, ex.args, ex.line)
	}
	if b, ok := builtins[ex.name]; ok {
		if len(ex.args) != b.args {
			return 0, g.errf(ex.line, "%s takes %d argument(s), got %d", ex.name, b.args, len(ex.args))
		}
		return g.syscall(b.sys, ex.args, ex.line)
	}

	// Real calls: evaluate args to the stack, save live temps, pop
	// args into r1..r4, call, fetch r0.
	if len(ex.args) > 4 {
		return 0, g.errf(ex.line, "call to %s: max 4 arguments", ex.name)
	}
	_, isLocal := g.funcs[ex.name]
	impIdx, isExtern := g.externs[ex.name]
	isIndirect := false
	if !isLocal && !isExtern {
		// Calling through a scalar holding a function address?
		if _, ok := g.locals[ex.name]; ok {
			isIndirect = true
		} else if _, ok := g.globals[ex.name]; ok {
			isIndirect = true
		} else {
			return 0, g.errf(ex.line, "undefined function %s", ex.name)
		}
	}

	// Save live temps (freed for the duration).
	live := g.liveTemps()
	for _, r := range live {
		g.emit(isa.Instr{Op: isa.PUSH, A: r})
		g.freeTemp(r)
	}
	// Evaluate arguments left to right onto the stack.
	for _, a := range ex.args {
		r, err := g.expr(a)
		if err != nil {
			return 0, err
		}
		g.emit(isa.Instr{Op: isa.PUSH, A: r})
		g.freeTemp(r)
	}
	var target uint8
	if isIndirect {
		tr, err := g.loadScalar(ex.name, ex.line)
		if err != nil {
			return 0, err
		}
		// Hold the target in a callee-visible place across arg pops:
		// it is a temp in r1..r7 which the pops below may overwrite.
		// Pops target r1..rN; allocate the temp after them instead:
		// move it to the stack and restore into a high temp.
		g.emit(isa.Instr{Op: isa.PUSH, A: tr})
		g.freeTemp(tr)
		target = 7
	}
	if isIndirect {
		g.emit(isa.Instr{Op: isa.POP, A: target})
	}
	for i := len(ex.args) - 1; i >= 0; i-- {
		g.emit(isa.Instr{Op: isa.POP, A: uint8(isa.A1 + i)})
	}
	switch {
	case isLocal:
		at := g.emit(isa.Instr{Op: isa.CALL})
		g.callFix(at, ex.name)
	case isExtern:
		g.emit(isa.Instr{Op: isa.CALX, Imm: int32(impIdx)})
	default:
		g.emit(isa.Instr{Op: isa.CALR, A: target})
	}
	// Restore live temps, then claim the result.
	for i := len(live) - 1; i >= 0; i-- {
		g.emit(isa.Instr{Op: isa.POP, A: live[i]})
		g.pool[live[i]] = true
	}
	res, err := g.allocTemp(ex.line)
	if err != nil {
		return 0, err
	}
	g.emit(isa.Instr{Op: isa.MOV, A: res, B: isa.RV})
	return res, nil
}

// syscall evaluates args into r1..rN and emits SYS.
func (g *gen) syscall(num int, args []expr, line int) (uint8, error) {
	if len(args) > 4 {
		return 0, g.errf(line, "syscall takes at most 4 arguments")
	}
	live := g.liveTemps()
	for _, r := range live {
		g.emit(isa.Instr{Op: isa.PUSH, A: r})
		g.freeTemp(r)
	}
	for _, a := range args {
		r, err := g.expr(a)
		if err != nil {
			return 0, err
		}
		g.emit(isa.Instr{Op: isa.PUSH, A: r})
		g.freeTemp(r)
	}
	for i := len(args) - 1; i >= 0; i-- {
		g.emit(isa.Instr{Op: isa.POP, A: uint8(isa.A1 + i)})
	}
	g.emit(isa.Instr{Op: isa.SYS, Imm: int32(num)})
	for i := len(live) - 1; i >= 0; i-- {
		g.emit(isa.Instr{Op: isa.POP, A: live[i]})
		g.pool[live[i]] = true
	}
	res, err := g.allocTemp(line)
	if err != nil {
		return 0, err
	}
	g.emit(isa.Instr{Op: isa.MOV, A: res, B: isa.RV})
	return res, nil
}
