package minic

import (
	"traceback/internal/mvm"
)

// Managed-backend expression codegen: plain stack discipline.
func (g *mgen) expr(e expr) error {
	switch ex := e.(type) {
	case *numExpr:
		if ex.v < -(1<<31) || ex.v >= 1<<31 {
			return g.errf(ex.line, "constant %d out of range", ex.v)
		}
		g.mb.I(mvm.CONST, int32(ex.v))
		return nil

	case *strExpr:
		return g.errf(ex.line, "string values are only allowed in print()")

	case *varExpr:
		if slot, ok := g.locals[ex.name]; ok {
			g.mb.I(mvm.LOADL, int32(slot), 0)
			return nil
		}
		if st, ok := g.statics[ex.name]; ok {
			g.mb.I(mvm.SLOAD, int32(st.slot), 0)
			return nil
		}
		return g.errf(ex.line, "undefined variable %s", ex.name)

	case *indexExpr:
		if err := g.pushRef(ex.name, ex.line); err != nil {
			return err
		}
		if err := g.expr(ex.index); err != nil {
			return err
		}
		g.mb.I(mvm.ALOAD)
		return nil

	case *addrExpr:
		return g.errf(ex.line, "&%s: managed code cannot take addresses", ex.name)

	case *unaryExpr:
		if err := g.expr(ex.x); err != nil {
			return err
		}
		switch ex.op {
		case "-":
			g.mb.I(mvm.NEG)
		case "~":
			g.mb.I(mvm.CONST, -1).I(mvm.XOR)
		case "!":
			g.mb.I(mvm.CONST, 0).I(mvm.CMPEQ)
		}
		return nil

	case *binExpr:
		return g.binExpr(ex)

	case *callExpr:
		return g.call(ex)
	}
	return g.errf(e.exprLine(), "unhandled expression in managed backend")
}

func (g *mgen) binExpr(ex *binExpr) error {
	if ex.op == "&&" || ex.op == "||" {
		shortL, end := g.label("sc"), g.label("scend")
		if err := g.expr(ex.l); err != nil {
			return err
		}
		if ex.op == "&&" {
			g.mb.Br(mvm.IFZ, shortL)
		} else {
			g.mb.Br(mvm.IFNZ, shortL)
		}
		if err := g.expr(ex.r); err != nil {
			return err
		}
		g.mb.I(mvm.CONST, 0).I(mvm.CMPNE)
		g.mb.Br(mvm.GOTO, end)
		g.mb.Label(shortL)
		if ex.op == "&&" {
			g.mb.I(mvm.CONST, 0)
		} else {
			g.mb.I(mvm.CONST, 1)
		}
		g.mb.Label(end)
		return nil
	}

	if err := g.expr(ex.l); err != nil {
		return err
	}
	if err := g.expr(ex.r); err != nil {
		return err
	}
	switch ex.op {
	case "+":
		g.mb.I(mvm.ADD)
	case "-":
		g.mb.I(mvm.SUB)
	case "*":
		g.mb.I(mvm.MUL)
	case "/":
		g.mb.I(mvm.DIV)
	case "%":
		g.mb.I(mvm.MOD)
	case "&":
		g.mb.I(mvm.AND)
	case "|":
		g.mb.I(mvm.OR)
	case "^":
		g.mb.I(mvm.XOR)
	case "<<":
		g.mb.I(mvm.SHL)
	case ">>":
		g.mb.I(mvm.SHR)
	case "==":
		g.mb.I(mvm.CMPEQ)
	case "!=":
		g.mb.I(mvm.CMPNE)
	case "<":
		g.mb.I(mvm.CMPLT)
	case "<=":
		g.mb.I(mvm.CMPLE)
	case ">":
		g.mb.I(mvm.SWAP).I(mvm.CMPLT)
	case ">=":
		g.mb.I(mvm.SWAP).I(mvm.CMPLE)
	default:
		return g.errf(ex.line, "unhandled operator %q", ex.op)
	}
	return nil
}

// forbidden raw-memory builtins in managed code.
var managedForbidden = map[string]bool{
	"peek": true, "poke": true, "memcpy": true, "alloc": true,
	"signal": true, "raise": true, "kill": true,
	"mutex_lock": true, "mutex_unlock": true,
	"thread_create": true, "join": true, "getarg": true,
	"rpc_call": true, "rpc_recv": true, "rpc_reply": true,
	"load_module": true, "snap": true, "iowrite": true, "yield": true,
}

func (g *mgen) call(ex *callExpr) error {
	switch ex.name {
	case "print":
		if len(ex.args) == 1 {
			if s, ok := ex.args[0].(*strExpr); ok {
				g.mb.I(mvm.PRINTS, int32(g.b.Str(s.s)))
				g.mb.I(mvm.CONST, 0) // expression value
				return nil
			}
		}
		return g.errf(ex.line, "print takes one string literal")
	case "print_int":
		if len(ex.args) != 1 {
			return g.errf(ex.line, "print_int takes 1 argument")
		}
		if err := g.expr(ex.args[0]); err != nil {
			return err
		}
		g.mb.I(mvm.PRINT).I(mvm.CONST, 0)
		return nil
	case "exit":
		if len(ex.args) != 1 {
			return g.errf(ex.line, "exit takes 1 argument")
		}
		if err := g.expr(ex.args[0]); err != nil {
			return err
		}
		g.mb.I(mvm.HALT)
		g.mb.I(mvm.CONST, 0) // unreachable expression value
		return nil
	case "clock":
		g.mb.I(mvm.CLOCKB)
		return nil
	case "rand":
		g.mb.I(mvm.RANDB)
		return nil
	case "sleep":
		if len(ex.args) != 1 {
			return g.errf(ex.line, "sleep takes 1 argument")
		}
		if err := g.expr(ex.args[0]); err != nil {
			return err
		}
		g.mb.I(mvm.SLEEPB).I(mvm.CONST, 0)
		return nil
	case "ioread":
		if len(ex.args) != 1 {
			return g.errf(ex.line, "ioread takes 1 argument")
		}
		if err := g.expr(ex.args[0]); err != nil {
			return err
		}
		g.mb.I(mvm.IOREAD)
		return nil
	case "netsend":
		if len(ex.args) != 1 {
			return g.errf(ex.line, "netsend takes 1 argument")
		}
		if err := g.expr(ex.args[0]); err != nil {
			return err
		}
		g.mb.I(mvm.NETSENDB)
		return nil
	case "len":
		if len(ex.args) != 1 {
			return g.errf(ex.line, "len takes one array")
		}
		v, ok := ex.args[0].(*varExpr)
		if !ok {
			return g.errf(ex.line, "len takes an array variable")
		}
		if err := g.pushRef(v.name, ex.line); err != nil {
			return err
		}
		g.mb.I(mvm.ARRLEN)
		return nil
	case "throw":
		if len(ex.args) != 1 {
			return g.errf(ex.line, "throw takes 1 argument")
		}
		if err := g.expr(ex.args[0]); err != nil {
			return err
		}
		g.mb.I(mvm.THROW)
		g.mb.I(mvm.CONST, 0)
		return nil
	}
	if managedForbidden[ex.name] {
		return g.errf(ex.line, "%s is not available in managed code", ex.name)
	}

	// User methods.
	if mi, ok := g.methods[ex.name]; ok {
		for _, a := range ex.args {
			if err := g.expr(a); err != nil {
				return err
			}
		}
		g.mb.I(mvm.CALL, int32(mi))
		return nil
	}

	// JNI-style natives (declared extern).
	if _, ok := g.natives[ex.name]; ok {
		idx := g.natives[ex.name]
		if idx < 0 {
			// Bind lazily with the call-site arity.
			modName := ""
			for _, ed := range g.nativeMods {
				if ed.name == ex.name {
					modName = ed.module
				}
			}
			idx = g.b.Native(modName, ex.name, len(ex.args))
			g.natives[ex.name] = idx
		}
		for _, a := range ex.args {
			if err := g.expr(a); err != nil {
				return err
			}
		}
		g.mb.I(mvm.CALLNAT, int32(idx))
		return nil
	}
	return g.errf(ex.line, "undefined function %s", ex.name)
}
