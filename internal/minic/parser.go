package minic

import "fmt"

type parser struct {
	file string
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", p.file, line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.cur()
	if t.kind != tPunct || t.text != s {
		return p.errf(t.line, "expected %q, got %q", s, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) isPunct(s string) bool {
	return p.cur().kind == tPunct && p.cur().text == s
}

func (p *parser) isKeyword(s string) bool {
	return p.cur().kind == tKeyword && p.cur().text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.advance()
		return true
	}
	return false
}

// parse parses a whole translation unit.
func parse(file string, toks []token) (*program, error) {
	p := &parser{file: file, toks: toks}
	prog := &program{}
	for p.cur().kind != tEOF {
		switch {
		case p.isKeyword("extern"):
			d, err := p.parseExtern()
			if err != nil {
				return nil, err
			}
			prog.externs = append(prog.externs, d)
		case p.isKeyword("int"):
			line := p.cur().line
			p.advance()
			name := p.cur()
			if name.kind != tIdent {
				return nil, p.errf(name.line, "expected identifier after 'int'")
			}
			p.advance()
			if p.isPunct("(") {
				fn, err := p.parseFunc(name.text, line)
				if err != nil {
					return nil, err
				}
				prog.funcs = append(prog.funcs, fn)
			} else {
				gs, err := p.parseGlobalRest(name.text, line)
				if err != nil {
					return nil, err
				}
				prog.globals = append(prog.globals, gs...)
			}
		default:
			return nil, p.errf(p.cur().line, "expected declaration, got %q", p.cur().text)
		}
	}
	return prog, nil
}

func (p *parser) parseExtern() (*externDecl, error) {
	line := p.cur().line
	p.advance() // extern
	mod := ""
	if p.cur().kind == tStr {
		mod = p.advance().text
	}
	if !p.isKeyword("int") {
		return nil, p.errf(p.cur().line, "expected 'int' in extern declaration")
	}
	p.advance()
	name := p.cur()
	if name.kind != tIdent {
		return nil, p.errf(name.line, "expected extern function name")
	}
	p.advance()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	// Skip the parameter list (names and types are documentation).
	depth := 1
	for depth > 0 {
		t := p.advance()
		if t.kind == tEOF {
			return nil, p.errf(line, "unterminated extern declaration")
		}
		if t.kind == tPunct && t.text == "(" {
			depth++
		}
		if t.kind == tPunct && t.text == ")" {
			depth--
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &externDecl{module: mod, name: name.text, line: line}, nil
}

// parseGlobalRest parses "name [N]? (, name [N]?)* ;" after "int name".
func (p *parser) parseGlobalRest(first string, line int) ([]*globalDecl, error) {
	var out []*globalDecl
	name := first
	for {
		size := 1
		if p.acceptPunct("[") {
			t := p.cur()
			if t.kind != tNum || t.num <= 0 {
				return nil, p.errf(t.line, "array size must be a positive constant")
			}
			size = int(t.num)
			p.advance()
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
		}
		out = append(out, &globalDecl{name: name, size: size, line: line})
		if p.acceptPunct(",") {
			t := p.cur()
			if t.kind != tIdent {
				return nil, p.errf(t.line, "expected identifier")
			}
			name = t.text
			p.advance()
			continue
		}
		return out, p.expectPunct(";")
	}
}

func (p *parser) parseFunc(name string, line int) (*funcDecl, error) {
	fn := &funcDecl{name: name, line: line}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.isPunct(")") {
		if len(fn.params) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		if !p.isKeyword("int") {
			return nil, p.errf(p.cur().line, "expected 'int' parameter type")
		}
		p.advance()
		t := p.cur()
		if t.kind != tIdent {
			return nil, p.errf(t.line, "expected parameter name")
		}
		fn.params = append(fn.params, t.text)
		p.advance()
	}
	p.advance() // ')'
	if len(fn.params) > 4 {
		return nil, p.errf(line, "function %s has %d parameters; max 4", name, len(fn.params))
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.body = body
	return fn, nil
}

func (p *parser) parseBlock() (*blockStmt, error) {
	line := p.cur().line
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &blockStmt{line: line}
	for !p.isPunct("}") {
		if p.cur().kind == tEOF {
			return nil, p.errf(line, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.stmts = append(b.stmts, s)
	}
	p.advance()
	return b, nil
}

func (p *parser) parseStmt() (stmt, error) {
	t := p.cur()
	switch {
	case p.isPunct("{"):
		return p.parseBlock()
	case p.isKeyword("int"):
		p.advance()
		name := p.cur()
		if name.kind != tIdent {
			return nil, p.errf(name.line, "expected local variable name")
		}
		p.advance()
		d := &localDecl{name: name.text, size: 1, line: t.line}
		if p.acceptPunct("[") {
			n := p.cur()
			if n.kind != tNum || n.num <= 0 {
				return nil, p.errf(n.line, "array size must be a positive constant")
			}
			d.size = int(n.num)
			d.array = true
			p.advance()
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
		} else if p.acceptPunct("=") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.init = e
		}
		return d, p.expectPunct(";")
	case p.isKeyword("if"):
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s := &ifStmt{cond: cond, then: then, line: t.line}
		if p.isKeyword("else") {
			p.advance()
			if s.els, err = p.parseStmt(); err != nil {
				return nil, err
			}
		}
		return s, nil
	case p.isKeyword("while"):
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body, line: t.line}, nil
	case p.isKeyword("for"):
		return p.parseFor()
	case p.isKeyword("switch"):
		return p.parseSwitch()
	case p.isKeyword("return"):
		p.advance()
		s := &returnStmt{line: t.line}
		if !p.isPunct(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.value = e
		}
		return s, p.expectPunct(";")
	case p.isKeyword("break"):
		p.advance()
		return &breakStmt{line: t.line}, p.expectPunct(";")
	case p.isKeyword("continue"):
		p.advance()
		return &continueStmt{line: t.line}, p.expectPunct(";")
	default:
		s, err := p.parseSimple()
		if err != nil {
			return nil, err
		}
		return s, p.expectPunct(";")
	}
}

// parseSimple parses an assignment or expression statement (no
// trailing semicolon — for-loop headers share this).
func (p *parser) parseSimple() (stmt, error) {
	t := p.cur()
	if t.kind == tIdent {
		// Lookahead for "name =" or "name[expr] =".
		save := p.pos
		name := p.advance().text
		var idx expr
		if p.acceptPunct("[") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			idx = e
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
		}
		if p.acceptPunct("=") {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &assignStmt{
				target: &lvalue{name: name, index: idx, line: t.line},
				value:  v, line: t.line,
			}, nil
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &exprStmt{e: e, line: t.line}, nil
}

func (p *parser) parseFor() (stmt, error) {
	t := p.advance() // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	s := &forStmt{line: t.line}
	if !p.isPunct(";") {
		if p.isKeyword("int") {
			// Declaration initializer: "for (int i = 0; ...)".
			il := p.cur().line
			p.advance()
			name := p.cur()
			if name.kind != tIdent {
				return nil, p.errf(name.line, "expected variable name")
			}
			p.advance()
			d := &localDecl{name: name.text, size: 1, line: il}
			if p.acceptPunct("=") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				d.init = e
			}
			s.init = d
		} else {
			init, err := p.parseSimple()
			if err != nil {
				return nil, err
			}
			s.init = init
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.cond = cond
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		post, err := p.parseSimple()
		if err != nil {
			return nil, err
		}
		s.post = post
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s.body = body
	return s, nil
}

func (p *parser) parseSwitch() (stmt, error) {
	t := p.advance() // switch
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	s := &switchStmt{value: v, line: t.line}
	for !p.isPunct("}") {
		switch {
		case p.isKeyword("case"):
			cl := p.cur().line
			p.advance()
			n := p.cur()
			neg := false
			if n.kind == tPunct && n.text == "-" {
				neg = true
				p.advance()
				n = p.cur()
			}
			if n.kind != tNum {
				return nil, p.errf(n.line, "case value must be a constant")
			}
			val := n.num
			if neg {
				val = -val
			}
			p.advance()
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			s.cases = append(s.cases, switchCase{val: val, stmts: body, line: cl})
		case p.isKeyword("default"):
			p.advance()
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			s.def = body
		default:
			return nil, p.errf(p.cur().line, "expected case or default in switch")
		}
	}
	p.advance()
	return s, nil
}

// parseCaseBody parses statements until the next case/default/}.
// MiniC switch cases do not fall through; an implicit break ends each
// case.
func (p *parser) parseCaseBody() ([]stmt, error) {
	var out []stmt
	for !p.isKeyword("case") && !p.isKeyword("default") && !p.isPunct("}") {
		if p.cur().kind == tEOF {
			return nil, p.errf(p.cur().line, "unterminated switch")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (expr, error) { return p.parseBin(1) }

func (p *parser) parseBin(minPrec int) (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tPunct {
			return l, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return l, nil
		}
		p.advance()
		r, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: t.text, l: l, r: r, line: t.line}
	}
}

func (p *parser) parseUnary() (expr, error) {
	t := p.cur()
	if t.kind == tPunct {
		switch t.text {
		case "-", "!", "~":
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &unaryExpr{op: t.text, x: x, line: t.line}, nil
		case "&":
			p.advance()
			n := p.cur()
			if n.kind != tIdent {
				return nil, p.errf(n.line, "'&' requires a function or global name")
			}
			p.advance()
			return &addrExpr{name: n.text, line: t.line}, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tNum:
		p.advance()
		return &numExpr{v: t.num, line: t.line}, nil
	case tStr:
		p.advance()
		return &strExpr{s: t.text, line: t.line}, nil
	case tIdent:
		p.advance()
		switch {
		case p.isPunct("("):
			p.advance()
			c := &callExpr{name: t.text, line: t.line}
			for !p.isPunct(")") {
				if len(c.args) > 0 {
					if err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.args = append(c.args, a)
			}
			p.advance()
			return c, nil
		case p.isPunct("["):
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return &indexExpr{name: t.text, index: idx, line: t.line}, nil
		default:
			return &varExpr{name: t.text, line: t.line}, nil
		}
	case tPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return e, p.expectPunct(")")
		}
	}
	return nil, p.errf(t.line, "unexpected token %q in expression", t.text)
}
