package minic

import (
	"fmt"

	"traceback/internal/mvm"
)

// CompileManaged compiles MiniC source for the MANAGED runtime — the
// paper's MSIL path (§3.3): the same source technology produces
// intermediate code instead of native code, sharing a process with
// native modules. Semantics differ exactly where managed platforms
// differ:
//
//   - globals become static fields, arrays become bounds-checked
//     managed arrays (out-of-range indexes throw
//     ArrayIndexOutOfBoundsException instead of corrupting memory);
//   - division by zero throws ArithmeticException; sleep(<0) throws
//     IllegalArgumentException;
//   - raw-memory builtins (peek/poke/memcpy, &var) are compile
//     errors: managed code is type-safe;
//   - `extern "module" int fn(...)` declares a JNI-style native
//     binding invoked through the cross-runtime bridge.
func CompileManaged(modName, file, src string) (*mvm.Module, error) {
	toks, err := lexAll(file, src)
	if err != nil {
		return nil, err
	}
	prog, err := parse(file, toks)
	if err != nil {
		return nil, err
	}
	g := &mgen{
		file:    file,
		b:       mvm.NewBuilder(modName, file),
		statics: map[string]mstatic{},
		methods: map[string]int{},
		natives: map[string]int{},
	}
	return g.program(prog)
}

type mstatic struct {
	slot  int
	array bool
	size  int
}

type mgen struct {
	file string
	b    *mvm.Builder

	statics    map[string]mstatic
	methods    map[string]int
	natives    map[string]int
	nativeMods []*externDecl

	// Per-method state.
	mb        *mvm.MethodBuilder
	locals    map[string]int
	localIsAr map[string]bool
	nextLocal int
	labelN    int
	breaks    []string
	conts     []string
	fname     string
}

func (g *mgen) errf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", g.file, line, fmt.Sprintf(format, args...))
}

func (g *mgen) label(prefix string) string {
	g.labelN++
	return fmt.Sprintf("%s%d", prefix, g.labelN)
}

func (g *mgen) program(prog *program) (*mvm.Module, error) {
	// Statics (globals). Arrays get a slot holding the array ref,
	// allocated by a synthetic <clinit> run at the start of main.
	var names []string
	for _, gd := range prog.globals {
		if _, dup := g.statics[gd.name]; dup {
			return nil, g.errf(gd.line, "duplicate global %s", gd.name)
		}
		g.statics[gd.name] = mstatic{slot: len(names), array: gd.size > 1 || gdIsArray(gd), size: gd.size}
		names = append(names, gd.name)
	}

	for _, ex := range prog.externs {
		if _, dup := g.natives[ex.name]; dup {
			continue
		}
		// Arity is recovered at the call site; bindings are
		// registered lazily there (the extern's parameter list is
		// skipped by the parser).
		g.natives[ex.name] = -1 // placeholder; bound on first call
		g.nativeMods = append(g.nativeMods, ex)
	}

	// Pre-register methods for forward calls.
	for i, fn := range prog.funcs {
		if _, dup := g.methods[fn.name]; dup {
			return nil, g.errf(fn.line, "duplicate function %s", fn.name)
		}
		g.methods[fn.name] = i
	}

	g.b.SetStatics(names)
	for _, fn := range prog.funcs {
		if err := g.function(fn, prog); err != nil {
			return nil, err
		}
	}
	mod, err := g.b.Build()
	if err != nil {
		return nil, fmt.Errorf("minic managed backend: %w", err)
	}
	return mod, nil
}

func gdIsArray(gd *globalDecl) bool { return gd.size != 1 }

func (g *mgen) function(fn *funcDecl, prog *program) error {
	g.locals = map[string]int{}
	g.localIsAr = map[string]bool{}
	g.nextLocal = 0
	g.breaks, g.conts = nil, nil
	g.fname = fn.name

	// Count locals: params + declared locals.
	nLocals := len(fn.params)
	collectLocals(fn.body, func(d *localDecl) { nLocals++ })
	g.mb = g.b.Method(fn.name, len(fn.params), nLocals+2) // + scratch
	g.mb.Line(fn.line)
	for _, p := range fn.params {
		g.locals[p] = g.nextLocal
		g.nextLocal++
	}

	// main allocates the static arrays first (the <clinit> analog).
	if fn.name == "main" {
		for _, gd := range prog.globals {
			st := g.statics[gd.name]
			if st.array {
				g.mb.I(mvm.CONST, int32(st.size)).I(mvm.NEWARR).I(mvm.SSTORE, int32(st.slot), 0)
			}
		}
	}

	if err := g.block(fn.body); err != nil {
		return err
	}
	g.mb.Line(fn.line).I(mvm.CONST, 0).I(mvm.RET)
	g.mb.Done()
	return nil
}

func (g *mgen) block(b *blockStmt) error {
	for _, s := range b.stmts {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *mgen) stmt(s stmt) error {
	g.mb.Line(s.stmtLine())
	switch st := s.(type) {
	case *blockStmt:
		return g.block(st)

	case *localDecl:
		slot := g.nextLocal
		g.nextLocal++
		g.locals[st.name] = slot
		if st.array {
			g.localIsAr[st.name] = true
			g.mb.I(mvm.CONST, int32(st.size)).I(mvm.NEWARR).I(mvm.STOREL, int32(slot), 0)
			return nil
		}
		if st.init != nil {
			if err := g.expr(st.init); err != nil {
				return err
			}
			g.mb.I(mvm.STOREL, int32(slot), 0)
		}
		return nil

	case *assignStmt:
		if st.target.index != nil {
			if err := g.pushRef(st.target.name, st.line); err != nil {
				return err
			}
			if err := g.expr(st.target.index); err != nil {
				return err
			}
			if err := g.expr(st.value); err != nil {
				return err
			}
			g.mb.I(mvm.ASTORE)
			return nil
		}
		if err := g.expr(st.value); err != nil {
			return err
		}
		return g.storeScalar(st.target.name, st.line)

	case *ifStmt:
		els, end := g.label("else"), g.label("end")
		if err := g.expr(st.cond); err != nil {
			return err
		}
		g.mb.Br(mvm.IFZ, els)
		if err := g.stmt(st.then); err != nil {
			return err
		}
		g.mb.Br(mvm.GOTO, end)
		g.mb.Label(els)
		if st.els != nil {
			if err := g.stmt(st.els); err != nil {
				return err
			}
		}
		g.mb.Label(end)
		return nil

	case *whileStmt:
		top, end := g.label("while"), g.label("wend")
		g.breaks = append(g.breaks, end)
		g.conts = append(g.conts, top)
		g.mb.Label(top)
		if err := g.expr(st.cond); err != nil {
			return err
		}
		g.mb.Br(mvm.IFZ, end)
		if err := g.stmt(st.body); err != nil {
			return err
		}
		g.mb.Br(mvm.GOTO, top)
		g.mb.Label(end)
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		return nil

	case *forStmt:
		if st.init != nil {
			if err := g.stmt(st.init); err != nil {
				return err
			}
		}
		top, post, end := g.label("for"), g.label("fpost"), g.label("fend")
		g.breaks = append(g.breaks, end)
		g.conts = append(g.conts, post)
		g.mb.Label(top)
		if st.cond != nil {
			if err := g.expr(st.cond); err != nil {
				return err
			}
			g.mb.Br(mvm.IFZ, end)
		}
		if err := g.stmt(st.body); err != nil {
			return err
		}
		g.mb.Label(post)
		if st.post != nil {
			g.mb.Line(st.line)
			if err := g.stmt(st.post); err != nil {
				return err
			}
		}
		g.mb.Br(mvm.GOTO, top)
		g.mb.Label(end)
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		return nil

	case *switchStmt:
		// Managed backend lowers every switch to an if-chain.
		end := g.label("swend")
		g.breaks = append(g.breaks, end)
		scratch := g.nextLocal // reuse the scratch slot
		if err := g.expr(st.value); err != nil {
			return err
		}
		g.mb.I(mvm.STOREL, int32(scratch), 0)
		var caseLabels []string
		for range st.cases {
			caseLabels = append(caseLabels, g.label("case"))
		}
		def := g.label("default")
		for i, c := range st.cases {
			g.mb.I(mvm.LOADL, int32(scratch), 0).I(mvm.CONST, int32(c.val)).I(mvm.CMPEQ)
			g.mb.Br(mvm.IFNZ, caseLabels[i])
		}
		g.mb.Br(mvm.GOTO, def)
		for i, c := range st.cases {
			g.mb.Label(caseLabels[i])
			g.mb.Line(c.line)
			for _, cs := range c.stmts {
				if err := g.stmt(cs); err != nil {
					return err
				}
			}
			g.mb.Br(mvm.GOTO, end)
		}
		g.mb.Label(def)
		for _, cs := range st.def {
			if err := g.stmt(cs); err != nil {
				return err
			}
		}
		g.mb.Label(end)
		g.breaks = g.breaks[:len(g.breaks)-1]
		return nil

	case *returnStmt:
		if st.value != nil {
			if err := g.expr(st.value); err != nil {
				return err
			}
		} else {
			g.mb.I(mvm.CONST, 0)
		}
		g.mb.I(mvm.RET)
		return nil

	case *breakStmt:
		if len(g.breaks) == 0 {
			return g.errf(st.line, "break outside loop/switch")
		}
		g.mb.Br(mvm.GOTO, g.breaks[len(g.breaks)-1])
		return nil

	case *continueStmt:
		if len(g.conts) == 0 {
			return g.errf(st.line, "continue outside loop")
		}
		g.mb.Br(mvm.GOTO, g.conts[len(g.conts)-1])
		return nil

	case *exprStmt:
		if err := g.expr(st.e); err != nil {
			return err
		}
		g.mb.I(mvm.POP)
		return nil
	}
	return g.errf(s.stmtLine(), "unhandled statement in managed backend")
}

func (g *mgen) pushRef(name string, line int) error {
	if slot, ok := g.locals[name]; ok {
		g.mb.I(mvm.LOADL, int32(slot), 0)
		return nil
	}
	if st, ok := g.statics[name]; ok {
		g.mb.I(mvm.SLOAD, int32(st.slot), 0)
		return nil
	}
	return g.errf(line, "undefined array %s", name)
}

func (g *mgen) storeScalar(name string, line int) error {
	if slot, ok := g.locals[name]; ok {
		g.mb.I(mvm.STOREL, int32(slot), 0)
		return nil
	}
	if st, ok := g.statics[name]; ok {
		g.mb.I(mvm.SSTORE, int32(st.slot), 0)
		return nil
	}
	return g.errf(line, "undefined variable %s", name)
}
