package minic

import (
	"strings"
	"testing"

	"traceback/internal/mvm"
	"traceback/internal/recon"
	"traceback/internal/vm"
)

func runManaged(t *testing.T, src string, args ...int64) (*mvm.VM, *mvm.MThread) {
	t.Helper()
	mod, err := CompileManaged("app", "App.cs", src)
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(17)
	mach := w.NewMachine("clr", 0)
	v := mvm.New(mach, nil, "clr-app", mvm.RuntimeConfig{})
	if _, err := v.Load(mod); err != nil {
		t.Fatal(err)
	}
	th, err := v.Start("main", args...)
	if err != nil {
		t.Fatal(err)
	}
	v.Run(2_000_000, nil)
	return v, th
}

func TestManagedArithmetic(t *testing.T) {
	_, th := runManaged(t, `int main() {
	int a = 6;
	int b = 7;
	return a * b - (10 / 3) + (1 << 3) - (9 >> 1) + (15 & 9) + (8 | 1) + (5 ^ 3);
}`)
	// 42 - 3 + 8 - 4 + 9 + 9 + 6 = 67
	if th.Result != 67 {
		t.Errorf("result = %d, want 67", th.Result)
	}
}

func TestManagedControlFlow(t *testing.T) {
	_, th := runManaged(t, `int main() {
	int sum = 0;
	for (int i = 0; i < 20; i = i + 1) {
		if (i % 2 == 0) continue;
		if (i > 15) break;
		sum = sum + i;
	}
	int j = 0;
	while (j < 5) { j = j + 1; }
	switch (j) {
	case 5: sum = sum + 100;
	default: sum = 0;
	}
	return sum;
}`)
	// odds 1..15 = 64; +100 = 164
	if th.Result != 164 {
		t.Errorf("result = %d, want 164", th.Result)
	}
}

func TestManagedComparisonsAndLogic(t *testing.T) {
	_, th := runManaged(t, `int main() {
	int n = 0;
	if (3 < 5 && 5 <= 5) n = n + 1;
	if (7 > 2 || 0) n = n + 1;
	if (2 >= 3) n = n + 100;
	if (!0) n = n + 1;
	if (4 == 4 && 5 != 6) n = n + 1;
	return n;
}`)
	if th.Result != 4 {
		t.Errorf("result = %d, want 4", th.Result)
	}
}

func TestManagedShortCircuit(t *testing.T) {
	_, th := runManaged(t, `int g;
int bump() { g = g + 1; return 1; }
int main() {
	int x = 0 && bump();
	int y = 1 || bump();
	return g * 10 + x + y;
}`)
	if th.Result != 1 {
		t.Errorf("result = %d, want 1 (bump never called)", th.Result)
	}
}

func TestManagedStaticsAndArrays(t *testing.T) {
	_, th := runManaged(t, `int total;
int table[8];
int main() {
	for (int i = 0; i < 8; i = i + 1) table[i] = i * i;
	total = 0;
	for (int i = 0; i < 8; i = i + 1) total = total + table[i];
	return total + len(table);
}`)
	want := int64(0)
	for i := int64(0); i < 8; i++ {
		want += i * i
	}
	want += 8
	if th.Result != want {
		t.Errorf("result = %d, want %d", th.Result, want)
	}
}

func TestManagedLocalArrays(t *testing.T) {
	_, th := runManaged(t, `int main() {
	int buf[4];
	buf[0] = 5;
	buf[3] = 7;
	return buf[0] + buf[3] + buf[1];
}`)
	if th.Result != 12 {
		t.Errorf("result = %d, want 12", th.Result)
	}
}

func TestManagedBoundsCheckThrows(t *testing.T) {
	// The same source that would corrupt memory natively throws
	// ArrayIndexOutOfBoundsException here — the managed-platform
	// semantics difference the paper's Figure 5 turns on.
	_, th := runManaged(t, `int table[4];
int main() {
	table[9] = 1;
	return 0;
}`)
	if th.Uncaught != mvm.ExcBounds {
		t.Errorf("uncaught = %d, want ArrayIndexOutOfBounds", th.Uncaught)
	}
}

func TestManagedDivZeroThrows(t *testing.T) {
	_, th := runManaged(t, `int main() {
	int z = 0;
	return 5 / z;
}`)
	if th.Uncaught != mvm.ExcArith {
		t.Errorf("uncaught = %d, want ArithmeticException", th.Uncaught)
	}
}

func TestManagedExitHalts(t *testing.T) {
	v, _ := runManaged(t, `int main() {
	exit(42);
	return 7;
}`)
	if !v.Halted || v.HaltCode != 42 {
		t.Errorf("halted=%v code=%d", v.Halted, v.HaltCode)
	}
}

func TestManagedRecursion(t *testing.T) {
	_, th := runManaged(t, `int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }`)
	if th.Result != 144 {
		t.Errorf("fib(12) = %d, want 144", th.Result)
	}
}

func TestManagedForbidsRawMemory(t *testing.T) {
	for _, src := range []string{
		`int main() { return peek(8); }`,
		`int main() { poke(8, 1); return 0; }`,
		`int g; int main() { return &g; }`,
		`int main() { memcpy(0, 0, 8); return 0; }`,
		`int main() { return alloc(8); }`,
	} {
		if _, err := CompileManaged("bad", "bad.cs", src); err == nil {
			t.Errorf("managed backend accepted %q", src)
		}
	}
}

func TestManagedPrint(t *testing.T) {
	v, _ := runManaged(t, `int main() {
	print("managed says: ");
	print_int(99);
	return 0;
}`)
	out := string(v.Out)
	if !strings.Contains(out, "managed says: ") || !strings.Contains(out, "99") {
		t.Errorf("out = %q", out)
	}
}

// TestSameSourceBothBackends: a pure computation compiled natively
// and managed gives identical results — the MSIL/native dual of the
// paper's §3.3.
func TestSameSourceBothBackends(t *testing.T) {
	src := `int acc;
int step(int x) {
	if (x % 3 == 0) return x * 2;
	return x + 1;
}
int main() {
	acc = 0;
	for (int i = 0; i < 50; i = i + 1) {
		acc = (acc + step(i)) % 10007;
	}
	exit(acc);
}`
	// Native.
	nmod, err := Compile("both", "both.c", src)
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(17)
	mach := w.NewMachine("m", 0)
	p := mach.NewProcess("both", nil)
	p.Load(nmod)
	p.StartMain(0)
	if err := vm.RunProcess(p, 1_000_000); err != nil {
		t.Fatal(err)
	}
	// Managed.
	v, _ := runManaged(t, src)
	if !v.Halted || v.HaltCode != int64(p.ExitCode) {
		t.Errorf("native exit %d, managed halt %d", p.ExitCode, v.HaltCode)
	}
}

// TestManagedSourceTraces: the managed compilation carries line info
// through instrumentation to reconstruction.
func TestManagedSourceTraces(t *testing.T) {
	src := `int work(int n) {
	int s = 0;
	for (int i = 0; i < n; i = i + 1) {
		s = s + i;
	}
	return s;
}
int main() {
	int r = work(5);
	return r;
}`
	mod, err := CompileManaged("traced", "Traced.cs", src)
	if err != nil {
		t.Fatal(err)
	}
	inst, mf, err := mvm.Instrument(mod, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorld(17)
	mach := w.NewMachine("clr", 0)
	v := mvm.New(mach, nil, "clr", mvm.RuntimeConfig{})
	v.Load(inst)
	th, _ := v.Start("main")
	if res, err := v.Join(th, 1_000_000); err != nil || res != 10 {
		t.Fatalf("res=%d err=%v", res, err)
	}
	s := v.Runtime().TakeSnap("post")
	pt, err := recon.Reconstruct(s, recon.NewMapSet(mf))
	if err != nil {
		t.Fatal(err)
	}
	tt, _ := pt.ThreadByTID(1)
	seen := map[uint32]bool{}
	for _, e := range tt.Events {
		if e.Kind == recon.EvLine && e.File == "Traced.cs" {
			seen[e.Line] = true
		}
	}
	// Line 1 carries no code (the declaration line); the body lines
	// and the call site must all appear.
	for _, line := range []uint32{2, 3, 4, 9} {
		if !seen[line] {
			t.Errorf("line %d missing from managed trace (have %v)", line, seen)
		}
	}
}
