// Package minic implements MiniC, the small C-like language the
// workload programs are written in. It stands in for the paper's
// VC7.1/gcc toolchain: programs compile to ISA modules with accurate
// source line tables, so reconstruction displays their real source.
//
// The language: 64-bit ints, global and local scalars and arrays,
// functions (up to 4 parameters), if/else, while, for, switch (dense
// cases become jump tables), break/continue, short-circuit && and ||,
// function addresses (&f), and builtins that map onto the platform's
// syscalls (print, exit, rand, clock, sleep, alloc, memcpy, peek,
// poke, mutexes, threads, RPC, snap, I/O cost hooks).
package minic

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNum
	tStr
	tPunct
	tKeyword
)

type token struct {
	kind tokKind
	text string
	num  int64
	line int
}

var keywords = map[string]bool{
	"int": true, "if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true, "switch": true,
	"case": true, "default": true, "extern": true,
}

type lexer struct {
	src  string
	pos  int
	line int
	file string
}

func newLexer(file, src string) *lexer {
	return &lexer{src: src, line: 1, file: file}
}

func (lx *lexer) errf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", lx.file, line, fmt.Sprintf(format, args...))
}

// next scans one token.
func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.pos += 2
			for lx.pos+1 < len(lx.src) && !(lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == '/') {
				if lx.src[lx.pos] == '\n' {
					lx.line++
				}
				lx.pos++
			}
			if lx.pos+1 >= len(lx.src) {
				return token{}, lx.errf(lx.line, "unterminated comment")
			}
			lx.pos += 2
		default:
			goto scan
		}
	}
	return token{kind: tEOF, line: lx.line}, nil

scan:
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		for lx.pos < len(lx.src) && (isIdentChar(lx.src[lx.pos])) {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		k := tIdent
		if keywords[text] {
			k = tKeyword
		}
		return token{kind: k, text: text, line: lx.line}, nil
	case c >= '0' && c <= '9':
		base := int64(10)
		if strings.HasPrefix(lx.src[lx.pos:], "0x") || strings.HasPrefix(lx.src[lx.pos:], "0X") {
			base = 16
			lx.pos += 2
			start = lx.pos
		}
		var v int64
		for lx.pos < len(lx.src) {
			d := digitVal(lx.src[lx.pos])
			if d < 0 || int64(d) >= base {
				break
			}
			v = v*base + int64(d)
			lx.pos++
		}
		if lx.pos == start {
			return token{}, lx.errf(lx.line, "malformed number")
		}
		return token{kind: tNum, num: v, line: lx.line}, nil
	case c == '"':
		lx.pos++
		var sb strings.Builder
		for lx.pos < len(lx.src) && lx.src[lx.pos] != '"' {
			ch := lx.src[lx.pos]
			if ch == '\n' {
				return token{}, lx.errf(lx.line, "newline in string literal")
			}
			if ch == '\\' && lx.pos+1 < len(lx.src) {
				lx.pos++
				switch lx.src[lx.pos] {
				case 'n':
					ch = '\n'
				case 't':
					ch = '\t'
				case '\\':
					ch = '\\'
				case '"':
					ch = '"'
				default:
					return token{}, lx.errf(lx.line, "bad escape \\%c", lx.src[lx.pos])
				}
			}
			sb.WriteByte(ch)
			lx.pos++
		}
		if lx.pos >= len(lx.src) {
			return token{}, lx.errf(lx.line, "unterminated string")
		}
		lx.pos++
		return token{kind: tStr, text: sb.String(), line: lx.line}, nil
	default:
		for _, p := range []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"} {
			if strings.HasPrefix(lx.src[lx.pos:], p) {
				lx.pos += 2
				return token{kind: tPunct, text: p, line: lx.line}, nil
			}
		}
		if strings.ContainsRune("+-*/%&|^~!<>=(){}[];,:", rune(c)) {
			lx.pos++
			return token{kind: tPunct, text: string(c), line: lx.line}, nil
		}
		return token{}, lx.errf(lx.line, "unexpected character %q", c)
	}
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// lexAll scans the whole source.
func lexAll(file, src string) ([]token, error) {
	lx := newLexer(file, src)
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tEOF {
			return out, nil
		}
	}
}
