package minic

import (
	"fmt"
	"sort"

	"traceback/internal/isa"
	"traceback/internal/module"
)

// Compile translates MiniC source into a module. modName names the
// module; file names the source file in the line table.
func Compile(modName, file, src string) (*module.Module, error) {
	toks, err := lexAll(file, src)
	if err != nil {
		return nil, err
	}
	prog, err := parse(file, toks)
	if err != nil {
		return nil, err
	}
	g := &gen{
		file:    file,
		mod:     &module.Module{Name: modName, Files: []string{file}},
		globals: map[string]globalInfo{},
		funcs:   map[string]int{},
		externs: map[string]int{},
	}
	return g.program(prog)
}

// MustCompile panics on error; for registering built-in workloads.
func MustCompile(modName, file, src string) *module.Module {
	m, err := Compile(modName, file, src)
	if err != nil {
		panic(err)
	}
	return m
}

type globalInfo struct {
	off  int32 // data offset
	size int
}

// gen is the code generator. Named scalar locals and parameters live
// in callee-saved registers while they last (r8..r12), then on the
// stack frame; expression temporaries come from the caller-saved pool
// r1..r7. This deliberately mirrors a simple compiler's output: real
// register pressure exists, so instrumentation's liveness-driven
// probe placement has dead registers to scavenge — and sometimes
// doesn't (the paper's gzip spill case).
type gen struct {
	file string
	mod  *module.Module

	globals map[string]globalInfo
	funcs   map[string]int // name -> function table index
	externs map[string]int // name -> import table index
	dataOff int32

	// Per-function state.
	fname     string
	locals    map[string]localInfo
	frameSize int32
	pool      [8]bool // r1..r7 allocation (index by register number; 0 unused)
	usedCS    map[uint8]bool
	breaks    []*[]int // fixup lists for break targets
	conts     []*[]int
	epilogue  []int // fixups jumping to the epilogue
	curLine   int

	// callFix defers patching of direct-call targets until all
	// function entry points are known.
	callFix func(at int, target string)
}

type localInfo struct {
	reg   int8  // callee-saved register, or -1 if on stack
	off   int32 // FP-relative offset (negative) when on stack
	size  int
	array bool
}

func (g *gen) errf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", g.file, line, fmt.Sprintf(format, args...))
}

// emit appends an instruction, recording the line table.
func (g *gen) emit(in isa.Instr) int {
	idx := len(g.mod.Code)
	g.mod.Code = append(g.mod.Code, in)
	return idx
}

// atLine notes that subsequent instructions belong to line.
func (g *gen) atLine(line int) {
	if line == g.curLine || line == 0 {
		return
	}
	g.curLine = line
	g.mod.Lines = append(g.mod.Lines, module.LineEntry{
		Index: uint32(len(g.mod.Code)), File: 0, Line: uint32(line),
	})
}

// Temp register pool: r1..r7.

func (g *gen) allocTemp(line int) (uint8, error) {
	for r := uint8(1); r <= 7; r++ {
		if !g.pool[r] {
			g.pool[r] = true
			return r, nil
		}
	}
	return 0, g.errf(line, "expression too complex (temporary registers exhausted)")
}

func (g *gen) freeTemp(r uint8) {
	if r >= 1 && r <= 7 {
		g.pool[r] = false
	}
}

func (g *gen) liveTemps() []uint8 {
	var out []uint8
	for r := uint8(1); r <= 7; r++ {
		if g.pool[r] {
			out = append(out, r)
		}
	}
	return out
}

// program generates the whole module.
func (g *gen) program(prog *program) (*module.Module, error) {
	// Lay out globals.
	for _, gd := range prog.globals {
		if _, dup := g.globals[gd.name]; dup {
			return nil, g.errf(gd.line, "duplicate global %s", gd.name)
		}
		g.globals[gd.name] = globalInfo{off: g.dataOff, size: gd.size}
		g.mod.Globals = append(g.mod.Globals, module.Global{
			Name: gd.name, Off: uint32(g.dataOff), Size: uint32(gd.size),
		})
		g.dataOff += int32(gd.size) * 8
	}
	g.mod.Data = make([]byte, g.dataOff)

	// Register externs.
	for _, ex := range prog.externs {
		if _, dup := g.externs[ex.name]; dup {
			continue
		}
		g.externs[ex.name] = len(g.mod.Imports)
		g.mod.Imports = append(g.mod.Imports, module.Import{Module: ex.module, Name: ex.name})
	}

	// Pre-register function table indexes (for LDFN and direct calls;
	// entries are patched once bodies are placed).
	for i, fn := range prog.funcs {
		if _, dup := g.funcs[fn.name]; dup {
			return nil, g.errf(fn.line, "duplicate function %s", fn.name)
		}
		g.funcs[fn.name] = i
		g.mod.Funcs = append(g.mod.Funcs, module.Func{Name: fn.name, Exported: true})
	}

	type callFix struct {
		at     int
		target string
	}
	var callFixes []callFix
	g.callFix = func(at int, target string) {
		callFixes = append(callFixes, callFix{at, target})
	}

	for i, fn := range prog.funcs {
		entry := uint32(len(g.mod.Code))
		if err := g.function(fn); err != nil {
			return nil, err
		}
		g.mod.Funcs[i].Entry = entry
		g.mod.Funcs[i].End = uint32(len(g.mod.Code))
	}

	// Patch direct calls now that every entry is known.
	for _, cf := range callFixes {
		fi, ok := g.funcs[cf.target]
		if !ok {
			return nil, fmt.Errorf("%s: undefined function %s", g.file, cf.target)
		}
		g.mod.Code[cf.at].Imm = int32(g.mod.Funcs[fi].Entry)
	}
	if err := g.mod.Validate(); err != nil {
		return nil, fmt.Errorf("minic internal error: %w", err)
	}
	return g.mod, nil
}

func (g *gen) function(fn *funcDecl) error {
	g.fname = fn.name
	g.locals = map[string]localInfo{}
	g.frameSize = 0
	g.pool = [8]bool{}
	g.usedCS = map[uint8]bool{}
	g.breaks = nil
	g.conts = nil
	g.epilogue = nil
	g.curLine = 0
	g.atLine(fn.line)

	// Scan the body for scalar locals eligible for callee-saved
	// registers (arrays always live on the stack).
	scalars := []string{}
	counts := map[string]int{}
	collectLocals(fn.body, func(d *localDecl) {
		if !d.array {
			scalars = append(scalars, d.name)
		}
	})
	countUses(fn.body, counts)
	for _, p := range fn.params {
		scalars = append(scalars, p)
	}
	sort.SliceStable(scalars, func(i, j int) bool {
		return counts[scalars[i]] > counts[scalars[j]]
	})
	regFor := map[string]int8{}
	nextCS := int8(8)
	for _, name := range scalars {
		if nextCS > 12 {
			break
		}
		if _, taken := regFor[name]; taken {
			continue
		}
		regFor[name] = nextCS
		g.usedCS[uint8(nextCS)] = true
		nextCS++
	}

	// Prologue: save FP, set frame, save callee-saved registers we
	// will use, then home the parameters.
	g.emit(isa.Instr{Op: isa.PUSH, A: isa.FP})
	g.emit(isa.Instr{Op: isa.MOV, A: isa.FP, B: isa.SP})
	frameFix := g.emit(isa.Instr{Op: isa.ADDI, A: isa.SP, B: isa.SP, Imm: 0})
	var csRegs []uint8
	for r := uint8(8); r <= 12; r++ {
		if g.usedCS[r] {
			csRegs = append(csRegs, r)
			g.emit(isa.Instr{Op: isa.PUSH, A: r})
		}
	}
	for i, pname := range fn.params {
		if r, ok := regFor[pname]; ok {
			g.locals[pname] = localInfo{reg: r, size: 1}
			g.emit(isa.Instr{Op: isa.MOV, A: uint8(r), B: uint8(isa.A1 + i)})
		} else {
			off := g.allocStack(1)
			g.locals[pname] = localInfo{reg: -1, off: off, size: 1}
			g.emit(isa.Instr{Op: isa.ST, A: isa.FP, B: uint8(isa.A1 + i), Imm: off})
		}
	}
	// Pre-declare register homes for scalar locals (value assigned at
	// their declaration).
	collectLocals(fn.body, func(d *localDecl) {
		if !d.array {
			if r, ok := regFor[d.name]; ok {
				if _, exists := g.locals[d.name]; !exists {
					g.locals[d.name] = localInfo{reg: r, size: 1}
				}
			}
		}
	})

	if err := g.block(fn.body); err != nil {
		return err
	}

	// Implicit "return 0" and the epilogue.
	g.emit(isa.Instr{Op: isa.MOVI, A: isa.RV, Imm: 0})
	epi := len(g.mod.Code)
	for _, at := range g.epilogue {
		g.mod.Code[at].Imm = int32(epi)
	}
	for i := len(csRegs) - 1; i >= 0; i-- {
		g.emit(isa.Instr{Op: isa.POP, A: csRegs[i]})
	}
	g.emit(isa.Instr{Op: isa.MOV, A: isa.SP, B: isa.FP})
	g.emit(isa.Instr{Op: isa.POP, A: isa.FP})
	g.emit(isa.Instr{Op: isa.RET})

	// Patch the frame-size reservation. Keep the stack 16-aligned.
	size := (g.frameSize + 15) &^ 15
	g.mod.Code[frameFix].Imm = -size
	// Callee-saved pushes happen after the frame cut, so stack refs
	// are FP-relative and unaffected.
	return nil
}

func (g *gen) allocStack(words int) int32 {
	g.frameSize += int32(words) * 8
	return -g.frameSize
}

func collectLocals(s stmt, f func(*localDecl)) {
	switch st := s.(type) {
	case *blockStmt:
		for _, c := range st.stmts {
			collectLocals(c, f)
		}
	case *localDecl:
		f(st)
	case *ifStmt:
		collectLocals(st.then, f)
		if st.els != nil {
			collectLocals(st.els, f)
		}
	case *whileStmt:
		collectLocals(st.body, f)
	case *forStmt:
		if st.init != nil {
			collectLocals(st.init, f)
		}
		if st.post != nil {
			collectLocals(st.post, f)
		}
		collectLocals(st.body, f)
	case *switchStmt:
		for _, c := range st.cases {
			for _, cs := range c.stmts {
				collectLocals(cs, f)
			}
		}
		for _, cs := range st.def {
			collectLocals(cs, f)
		}
	}
}

func countUses(s stmt, counts map[string]int) {
	var walkE func(e expr)
	walkE = func(e expr) {
		switch ex := e.(type) {
		case *varExpr:
			counts[ex.name]++
		case *indexExpr:
			counts[ex.name]++
			walkE(ex.index)
		case *unaryExpr:
			walkE(ex.x)
		case *binExpr:
			walkE(ex.l)
			walkE(ex.r)
		case *callExpr:
			for _, a := range ex.args {
				walkE(a)
			}
		}
	}
	var walkS func(s stmt)
	walkS = func(s stmt) {
		switch st := s.(type) {
		case *blockStmt:
			for _, c := range st.stmts {
				walkS(c)
			}
		case *localDecl:
			if st.init != nil {
				walkE(st.init)
			}
		case *ifStmt:
			walkE(st.cond)
			walkS(st.then)
			if st.els != nil {
				walkS(st.els)
			}
		case *whileStmt:
			walkE(st.cond)
			walkS(st.body)
		case *forStmt:
			if st.init != nil {
				walkS(st.init)
			}
			if st.cond != nil {
				walkE(st.cond)
			}
			if st.post != nil {
				walkS(st.post)
			}
			walkS(st.body)
		case *switchStmt:
			walkE(st.value)
			for _, c := range st.cases {
				for _, cs := range c.stmts {
					walkS(cs)
				}
			}
			for _, cs := range st.def {
				walkS(cs)
			}
		case *returnStmt:
			if st.value != nil {
				walkE(st.value)
			}
		case *assignStmt:
			counts[st.target.name] += 2
			if st.target.index != nil {
				walkE(st.target.index)
			}
			walkE(st.value)
		case *exprStmt:
			walkE(st.e)
		}
	}
	walkS(s)
}
