package trace

import (
	"math/rand"
	"testing"
)

// genStream builds a random but well-formed record stream, returning
// the words plus each record's [start, end) word range in the stream.
// Sentinel words are sprinkled between records (the miner skips them,
// as logical-span preparation can leave value-level sentinels only
// between records, never inside one).
type genSpan struct {
	rec        Record
	start, end int
}

func genStream(rng *rand.Rand, n int) ([]Word, []genSpan) {
	var words []Word
	var spans []genSpan
	for i := 0; i < n; i++ {
		if rng.Intn(6) == 0 {
			words = append(words, Sentinel)
		}
		start := len(words)
		switch rng.Intn(9) {
		case 0, 1, 2: // DAG records dominate real buffers
			words = append(words, DAGWord(rng.Uint32()%(MaxDAGID+1), Word(rng.Uint32())&PathMask))
		case 3:
			words = AppendTimestamp(words, rng.Uint64())
		case 4:
			words = AppendSync(words, Sync{
				Point:         SyncPoint(rng.Intn(4)),
				RuntimeID:     rng.Uint64(),
				LogicalThread: rng.Uint32(),
				Seq:           rng.Uint32(),
				TS:            rng.Uint64(),
			})
		case 5:
			words = AppendException(words, Exception{
				Code: uint16(rng.Uint32()), Addr: rng.Uint64(), TS: rng.Uint64()})
		case 6:
			words = AppendThreadStart(words, rng.Uint32(), rng.Uint64())
		case 7:
			words = AppendThreadEnd(words, rng.Uint32(), rng.Uint64())
		case 8:
			words = AppendReissueMark(words)
		}
		// Recover the record we just appended so the expectation uses
		// the miner's own representation.
		mined := MineBackward(words[start:])
		if len(mined) != 1 {
			panic("genStream: appended record does not mine back")
		}
		spans = append(spans, genSpan{rec: mined[0], start: start, end: len(words)})
	}
	return words, spans
}

// TestMineBackwardWrapPointProperty: for ANY wrap point k — the
// buffer's oldest k words overwritten and lost — mining the remaining
// suffix back-to-front recovers exactly the records fully contained
// in the suffix: every committed record survives, the torn one (if k
// falls inside a record) is dropped cleanly, and nothing spurious is
// invented from its remaining payload words. This is the paper's
// claim that extended-record trailers make back-to-front mining
// unambiguous (§4.1).
func TestMineBackwardWrapPointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for stream := 0; stream < 60; stream++ {
		words, spans := genStream(rng, 3+rng.Intn(40))
		for k := 0; k <= len(words); k++ {
			var want []Record
			for _, sp := range spans {
				if sp.start >= k {
					want = append(want, sp.rec)
				}
			}
			got := MineBackward(words[k:])
			Reverse(got) // oldest first
			if err := recordsEqual(want, got); err != nil {
				t.Fatalf("stream %d wrap %d/%d: %v", stream, k, len(words), err)
			}
		}
	}
}
