package trace

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// wordsOf reinterprets fuzz bytes as little-endian trace words,
// ignoring a trailing partial word.
func wordsOf(data []byte) []Word {
	out := make([]Word, len(data)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(data[i*4:])
	}
	return out
}

// appendRecord re-encodes a mined record. Every record MineBackward
// is allowed to return must re-encode without panicking; anything
// else is a mining bug.
func appendRecord(buf []Word, r Record) []Word {
	if r.Kind == KindNone {
		return append(buf, DAGWord(r.DAGID, r.Bits))
	}
	return AppendExtended(buf, r.Kind, r.Small, r.Payload...)
}

func recordsEqual(a, b []Record) error {
	if len(a) != len(b) {
		return fmt.Errorf("record count %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Kind != y.Kind || x.DAGID != y.DAGID || x.Bits != y.Bits || x.Small != y.Small {
			return fmt.Errorf("record %d: %+v vs %+v", i, x, y)
		}
		if len(x.Payload) != len(y.Payload) {
			return fmt.Errorf("record %d payload length %d vs %d", i, len(x.Payload), len(y.Payload))
		}
		for j := range x.Payload {
			if x.Payload[j] != y.Payload[j] {
				return fmt.Errorf("record %d payload word %d: %#x vs %#x", i, j, x.Payload[j], y.Payload[j])
			}
		}
	}
	return nil
}

// FuzzTraceRecordDecode feeds arbitrary bytes to the record miner.
// Mining must never panic, and whatever it recovers must survive an
// encode→mine round trip exactly: the mined records are the complete
// description of the recovered trace suffix.
func FuzzTraceRecordDecode(f *testing.F) {
	// A well-formed stream: DAG records around a timestamp and a sync.
	var ws []Word
	ws = append(ws, DAGWord(7, 0b1011))
	ws = AppendTimestamp(ws, 0x1122334455667788)
	ws = append(ws, DAGWord(9, 0))
	ws = AppendSync(ws, Sync{Point: SyncCallSend, RuntimeID: 0xdead, LogicalThread: 3, Seq: 1, TS: 42})
	ws = AppendThreadStart(ws, 1, 100)
	f.Add(wordsToBytes(ws))
	// A torn stream: the sync's first words cut off.
	f.Add(wordsToBytes(ws[3:]))
	// Sentinels and zeroes.
	f.Add(wordsToBytes([]Word{Invalid, Sentinel, DAGWord(1, 1), Sentinel}))
	// A trailer claiming kind 0 — the ambiguous encoding MineBackward
	// must reject.
	f.Add(wordsToBytes([]Word{header(1, 2, 0) &^ (0xFF << 24), trailer(1, 2) &^ 0xFF}))
	// Unaligned garbage.
	f.Add([]byte{0x7f, 0x02, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		words := wordsOf(data)
		recs := MineBackward(words)
		Reverse(recs) // oldest first
		var enc []Word
		for _, r := range recs {
			enc = appendRecord(enc, r)
		}
		again := MineBackward(enc)
		Reverse(again)
		if err := recordsEqual(recs, again); err != nil {
			t.Fatalf("round trip: %v\nmined: %+v", err, recs)
		}
	})
}

func wordsToBytes(ws []Word) []byte {
	out := make([]byte, len(ws)*4)
	for i, w := range ws {
		binary.LittleEndian.PutUint32(out[i*4:], w)
	}
	return out
}

// TestMineBackwardRejectsAmbiguousKinds is the regression test for a
// format bug the fuzz harness exposed: a trailer word whose kind byte
// is 0x00 or 0x7F used to mine into a Record that either collided
// with the DAG-record representation (Kind==KindNone, so expansion
// would try to resolve DAG 0) or could not be re-encoded. Both are
// corruption and must stop mining instead.
func TestMineBackwardRejectsAmbiguousKinds(t *testing.T) {
	for _, kind := range []Word{0x00, 0x7F} {
		h := Word(kind)<<24 | 2<<16
		tr := Word(trailerTag)<<24 | 2<<16 | kind
		recs := MineBackward([]Word{h, tr})
		if len(recs) != 0 {
			t.Errorf("kind %#x: mined %d records from a corrupt stream, want 0: %+v", kind, len(recs), recs)
		}
		// Valid records newer than the corruption still mine.
		recs = MineBackward([]Word{h, tr, DAGWord(5, 1)})
		if len(recs) != 1 || recs[0].DAGID != 5 {
			t.Errorf("kind %#x: newer DAG record lost: %+v", kind, recs)
		}
	}
}
