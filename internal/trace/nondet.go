// Nondeterminism records: the record-and-replay extension of the
// trace format (the rr / iReplayer line of PAPERS.md). The VM owns
// every source of nondeterminism — scheduling quanta, asynchronous
// signal delivery, abrupt kills, module unloads, and RPC transport —
// so a faulted execution is exactly reproducible from a log of those
// decisions. This file defines that log's record family and its
// wire encoding; internal/vm emits the records through a Recorder
// hook and internal/replay re-executes from them.
//
// Unlike the Figure 1 trace words (mined backward out of wrapped
// ring buffers), the nondeterminism log is an append-only stream
// decoded forward: a magic/version word followed by fixed-size
// records, each a header word (kind + payload length) and a fixed
// payload. The uniform layout trades a few words per record for a
// decoder with no per-kind framing ambiguity — torn or corrupt input
// is an error, never a misparse.
package trace

import "fmt"

// NondetKind identifies one nondeterminism record type.
type NondetKind uint8

// Nondeterminism record kinds.
const (
	// NDQuantum is a periodic scheduling checkpoint: the world-global
	// quantum sequence number plus the machine, clock, and chosen
	// thread at that quantum. Replay compares checkpoints to detect
	// divergence early instead of only at the final snap.
	NDQuantum NondetKind = 1
	// NDSignal is an asynchronous signal delivery: victim thread,
	// signal number, and the pre-delivery PC (the instruction that
	// had NOT yet executed when the signal landed).
	NDSignal NondetKind = 2
	// NDKill is an abrupt process termination (kill -9).
	NDKill NondetKind = 3
	// NDUnload is a module unload; Index carries the process-local
	// module handle.
	NDUnload NondetKind = 4
	// NDRPCFault is a transport perturbation applied to one message:
	// Index is the 1-based request (or reply) ordinal on the world's
	// transport, Flags the drop/dup/reply bits, Delay the added
	// receiver-clock cycles.
	NDRPCFault NondetKind = 5
	// NDRPCDeliver is one request payload dequeued by a receiver:
	// the delivery order the replay must reproduce. PID2/TID2 name
	// the sender, Len the payload length.
	NDRPCDeliver NondetKind = 6
	// NDManaged is an asynchronous interrupt in the managed (mvm)
	// runtime: Quantum counts managed scheduling quanta, TID the
	// victim managed thread, Sig the exception code.
	NDManaged NondetKind = 7

	maxNondetKind = 7
)

func (k NondetKind) String() string {
	switch k {
	case NDQuantum:
		return "quantum"
	case NDSignal:
		return "signal"
	case NDKill:
		return "kill"
	case NDUnload:
		return "unload"
	case NDRPCFault:
		return "rpc-fault"
	case NDRPCDeliver:
		return "rpc-deliver"
	case NDManaged:
		return "managed-interrupt"
	}
	return fmt.Sprintf("nondet(%d)", uint8(k))
}

// NDRPCFault flag bits.
const (
	NDFReply = 1 << 0 // the fault applied to a reply, not a request
	NDFDrop  = 1 << 1
	NDFDup   = 1 << 2
)

// NondetMagic is the stream header word: "ND" + format version 1.
// Bump the low byte when the record layout changes; decoders reject
// unknown versions instead of guessing.
const NondetMagic Word = 0x4E440001

// NondetRecord is one decoded nondeterminism record. Fields not
// meaningful for a kind are zero (and must be zero for records to
// compare equal between a recording and its replay).
type NondetRecord struct {
	Kind    NondetKind
	Quantum uint64 // world-global scheduling quantum (managed quanta for NDManaged)
	Machine uint16 // machine index in the world
	PID     uint32
	TID     uint32
	PID2    uint32 // sender process (NDRPCDeliver)
	TID2    uint32 // sender thread (NDRPCDeliver)
	Sig     int32  // signal number / managed exception code
	PC      uint64 // pre-delivery PC (NDSignal)
	Clock   uint64 // machine clock at the event
	Endpoint uint64
	Index   uint32 // RPC ordinal (NDRPCFault) or module handle (NDUnload)
	Flags   uint32 // NDF* bits (NDRPCFault)
	Delay   uint64 // injected delay cycles (NDRPCFault)
	Len     uint32 // payload length (NDRPCDeliver)
}

// nondetPayloadWords is the fixed per-record payload size.
const nondetPayloadWords = 19

func nondetHeader(k NondetKind) Word {
	return Word(k)<<24 | nondetPayloadWords
}

// AppendNondet appends r's encoding to buf.
func AppendNondet(buf []Word, r NondetRecord) []Word {
	qlo, qhi := SplitU64(r.Quantum)
	pclo, pchi := SplitU64(r.PC)
	clo, chi := SplitU64(r.Clock)
	elo, ehi := SplitU64(r.Endpoint)
	dlo, dhi := SplitU64(r.Delay)
	return append(buf,
		nondetHeader(r.Kind),
		qlo, qhi,
		Word(r.Machine),
		Word(r.PID), Word(r.TID),
		Word(r.PID2), Word(r.TID2),
		Word(uint32(r.Sig)),
		pclo, pchi,
		clo, chi,
		elo, ehi,
		Word(r.Index), Word(r.Flags),
		dlo, dhi,
		Word(r.Len),
	)
}

// EncodeNondet encodes a whole log: magic word then every record.
func EncodeNondet(recs []NondetRecord) []Word {
	out := make([]Word, 0, 1+len(recs)*(nondetPayloadWords+1))
	out = append(out, NondetMagic)
	for _, r := range recs {
		out = AppendNondet(out, r)
	}
	return out
}

// DecodeNondet decodes a nondeterminism log. Any malformed input —
// wrong magic, unknown kind, bad length, torn record — is an error:
// a replay must never run from a log it cannot fully account for.
func DecodeNondet(words []Word) ([]NondetRecord, error) {
	if len(words) == 0 {
		return nil, fmt.Errorf("trace: nondet: empty stream")
	}
	if words[0] != NondetMagic {
		return nil, fmt.Errorf("trace: nondet: bad magic %#x (want %#x)", words[0], NondetMagic)
	}
	var out []NondetRecord
	i := 1
	for i < len(words) {
		h := words[i]
		kind := NondetKind(h >> 24)
		plen := int(h & 0xFFFFFF)
		if kind == 0 || kind > maxNondetKind {
			return nil, fmt.Errorf("trace: nondet: record %d: unknown kind %d", len(out), uint8(kind))
		}
		if plen != nondetPayloadWords {
			return nil, fmt.Errorf("trace: nondet: record %d: payload length %d (want %d)", len(out), plen, nondetPayloadWords)
		}
		if i+1+plen > len(words) {
			return nil, fmt.Errorf("trace: nondet: record %d: torn (%d of %d payload words)", len(out), len(words)-i-1, plen)
		}
		p := words[i+1 : i+1+plen]
		out = append(out, NondetRecord{
			Kind:    kind,
			Quantum: JoinU64(p[0], p[1]),
			Machine: uint16(p[2]),
			PID:     uint32(p[3]),
			TID:     uint32(p[4]),
			PID2:    uint32(p[5]),
			TID2:    uint32(p[6]),
			Sig:     int32(p[7]),
			PC:      JoinU64(p[8], p[9]),
			Clock:   JoinU64(p[10], p[11]),
			Endpoint: JoinU64(p[12], p[13]),
			Index:   uint32(p[14]),
			Flags:   uint32(p[15]),
			Delay:   JoinU64(p[16], p[17]),
			Len:     uint32(p[18]),
		})
		i += 1 + plen
	}
	return out, nil
}

// String renders the record human-readably (tbdump -nondet).
func (r NondetRecord) String() string {
	switch r.Kind {
	case NDQuantum:
		return fmt.Sprintf("q=%-8d ckpt     m%d pid=%d tid=%d clk=%d", r.Quantum, r.Machine, r.PID, r.TID, r.Clock)
	case NDSignal:
		return fmt.Sprintf("q=%-8d signal   sig=%d -> m%d pid=%d tid=%d pc=%d clk=%d", r.Quantum, r.Sig, r.Machine, r.PID, r.TID, r.PC, r.Clock)
	case NDKill:
		return fmt.Sprintf("q=%-8d kill -9  m%d pid=%d clk=%d", r.Quantum, r.Machine, r.PID, r.Clock)
	case NDUnload:
		return fmt.Sprintf("q=%-8d unload   m%d pid=%d handle=%d clk=%d", r.Quantum, r.Machine, r.PID, r.Index, r.Clock)
	case NDRPCFault:
		side, n := "req", r.Index
		if r.Flags&NDFReply != 0 {
			side = "rep"
		}
		extra := ""
		if r.Flags&NDFDrop != 0 {
			extra += " drop"
		}
		if r.Flags&NDFDup != 0 {
			extra += " dup"
		}
		if r.Delay != 0 {
			extra += fmt.Sprintf(" delay+%d", r.Delay)
		}
		return fmt.Sprintf("q=%-8d rpc-fault %s#%d ep=%d from pid=%d tid=%d%s", r.Quantum, side, n, r.Endpoint, r.PID, r.TID, extra)
	case NDRPCDeliver:
		return fmt.Sprintf("q=%-8d rpc-recv ep=%d pid=%d tid=%d <- pid=%d tid=%d len=%d clk=%d",
			r.Quantum, r.Endpoint, r.PID, r.TID, r.PID2, r.TID2, r.Len, r.Clock)
	case NDManaged:
		return fmt.Sprintf("q=%-8d managed-interrupt exc=%d -> tid=%d", r.Quantum, r.Sig, r.TID)
	}
	return fmt.Sprintf("q=%-8d %s", r.Quantum, r.Kind)
}
