package trace

import (
	"strings"
	"testing"
)

func sampleNondet() []NondetRecord {
	return []NondetRecord{
		{Kind: NDQuantum, Quantum: 1, Machine: 0, PID: 1, TID: 1, Clock: 64},
		{Kind: NDSignal, Quantum: 90, Machine: 1, PID: 2, TID: 3, Sig: 30, PC: 0x1122334455, Clock: 7788},
		{Kind: NDKill, Quantum: 120, Machine: 0, PID: 1, Clock: 9999},
		{Kind: NDUnload, Quantum: 44, Machine: 0, PID: 1, Index: 2, Clock: 500},
		{Kind: NDRPCFault, Quantum: 7, Machine: 1, PID: 2, TID: 1, Endpoint: 9, Index: 3, Flags: NDFDrop, Delay: 0},
		{Kind: NDRPCFault, Quantum: 8, Machine: 1, PID: 2, TID: 1, Endpoint: 9, Index: 4, Flags: NDFReply | NDFDup, Delay: 5000},
		{Kind: NDRPCDeliver, Quantum: 9, Machine: 0, PID: 1, TID: 2, PID2: 2, TID2: 1, Endpoint: 9, Len: 128, Clock: 1 << 40},
		{Kind: NDManaged, Quantum: 1000, TID: 2, Sig: 107},
	}
}

func TestNondetRoundTrip(t *testing.T) {
	recs := sampleNondet()
	words := EncodeNondet(recs)
	got, err := DecodeNondet(words)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestNondetEmptyLog(t *testing.T) {
	words := EncodeNondet(nil)
	got, err := DecodeNondet(words)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d records from empty log", len(got))
	}
}

func TestNondetDecodeErrors(t *testing.T) {
	valid := EncodeNondet(sampleNondet())
	cases := []struct {
		name  string
		words []Word
		want  string
	}{
		{"empty", nil, "empty"},
		{"bad-magic", []Word{0xDEADBEEF}, "bad magic"},
		{"bad-kind", append([]Word{NondetMagic}, Word(0x99)<<24|19), "unknown kind"},
		{"zero-kind", append([]Word{NondetMagic}, 19), "unknown kind"},
		{"bad-length", append([]Word{NondetMagic}, Word(NDKill)<<24|7), "payload length"},
		{"torn", valid[:len(valid)-3], "torn"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeNondet(c.words)
			if err == nil {
				t.Fatal("decoded corrupt stream without error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestNondetString(t *testing.T) {
	for _, r := range sampleNondet() {
		s := r.String()
		if s == "" || !strings.Contains(s, "q=") {
			t.Errorf("%v: unhelpful String %q", r.Kind, s)
		}
	}
	// Kind names render for tbdump.
	if NDRPCDeliver.String() != "rpc-deliver" {
		t.Errorf("kind string = %q", NDRPCDeliver.String())
	}
}

// FuzzNondetRecordDecode: decoding arbitrary bytes must never panic,
// and anything that decodes must survive an encode→decode round trip
// exactly (the log IS the replay input — lossy decode would replay a
// different run).
func FuzzNondetRecordDecode(f *testing.F) {
	f.Add(wordsToBytes(EncodeNondet(sampleNondet())))
	f.Add(wordsToBytes(EncodeNondet(nil)))
	valid := EncodeNondet(sampleNondet())
	f.Add(wordsToBytes(valid[:len(valid)-3]))                              // torn tail
	f.Add(wordsToBytes([]Word{NondetMagic, Word(0x99) << 24}))             // unknown kind
	f.Add(wordsToBytes([]Word{NondetMagic, Word(NDQuantum)<<24 | 0xFFFF})) // absurd length
	f.Add([]byte{0x01, 0x00, 0x44})                                        // unaligned garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		words := wordsOf(data)
		recs, err := DecodeNondet(words)
		if err != nil {
			return
		}
		again, err := DecodeNondet(EncodeNondet(recs))
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip count %d vs %d", len(again), len(recs))
		}
		for i := range recs {
			if recs[i] != again[i] {
				t.Fatalf("record %d: %+v vs %+v", i, recs[i], again[i])
			}
		}
	})
}
