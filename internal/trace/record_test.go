package trace

import (
	"testing"
	"testing/quick"
)

func TestDAGWordFields(t *testing.T) {
	w := DAGWord(0x12345, 0x2A5)
	if !IsDAG(w) {
		t.Fatal("DAG word not recognized")
	}
	if got := DAGID(w); got != 0x12345 {
		t.Errorf("DAGID = %#x, want 0x12345", got)
	}
	if got := PathBits(w); got != 0x2A5 {
		t.Errorf("PathBits = %#x, want 0x2a5", got)
	}
}

func TestSentinelAndInvalidAreNotRecords(t *testing.T) {
	if IsDAG(Sentinel) {
		t.Error("sentinel classified as DAG record")
	}
	if IsDAG(Invalid) {
		t.Error("invalid classified as DAG record")
	}
	// The sentinel is the all-ones DAG pattern; BadDAGID stays below it.
	if DAGWord(BadDAGID, PathMask) == Sentinel {
		t.Error("bad-DAG record collides with the sentinel")
	}
	if BadDAGID <= MaxDAGID {
		t.Error("BadDAGID must be outside the assignable range")
	}
}

// Property (Figure 1): DAG ID and path bits round-trip through the
// record word for every value in range.
func TestDAGWordQuick(t *testing.T) {
	f := func(id uint32, bits uint16) bool {
		id %= BadDAGID + 1
		b := Word(bits) & PathMask
		w := DAGWord(id, b)
		return IsDAG(w) && DAGID(w) == id && PathBits(w) == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSyncRoundTrip(t *testing.T) {
	s := Sync{Point: SyncReplySend, RuntimeID: 0xDEADBEEFCAFE, LogicalThread: 7, Seq: 3, TS: 1 << 40}
	buf := AppendSync(nil, s)
	recs := MineBackward(buf)
	if len(recs) != 1 {
		t.Fatalf("mined %d records", len(recs))
	}
	got, err := DecodeSync(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Errorf("got %+v, want %+v", got, s)
	}
}

func TestExceptionRoundTrip(t *testing.T) {
	e := Exception{Code: 11, Addr: 0x1234567890, TS: 99}
	buf := AppendException(nil, e)
	recs := MineBackward(buf)
	if len(recs) != 1 {
		t.Fatalf("mined %d records", len(recs))
	}
	got, err := DecodeException(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Errorf("got %+v, want %+v", got, e)
	}
}

func TestThreadEventRoundTrip(t *testing.T) {
	buf := AppendThreadStart(nil, 42, 1000)
	buf = AppendThreadEnd(buf, 42, 2000)
	recs := MineBackward(buf) // newest first
	if len(recs) != 2 {
		t.Fatalf("mined %d records", len(recs))
	}
	end, err := DecodeThreadEvent(recs[0])
	if err != nil || end.Start || end.TID != 42 || end.TS != 2000 {
		t.Errorf("end = %+v, err=%v", end, err)
	}
	start, err := DecodeThreadEvent(recs[1])
	if err != nil || !start.Start || start.TID != 42 || start.TS != 1000 {
		t.Errorf("start = %+v, err=%v", start, err)
	}
}

func TestTimestampRoundTrip(t *testing.T) {
	buf := AppendTimestamp(nil, 0xFFFFFFFF12345678)
	recs := MineBackward(buf)
	if len(recs) != 1 || recs[0].Kind != KindTimestamp {
		t.Fatalf("recs = %+v", recs)
	}
	ts, err := DecodeTS(recs[0])
	if err != nil || ts != 0xFFFFFFFF12345678 {
		t.Errorf("ts = %#x, err=%v", ts, err)
	}
}

func TestMineBackwardMixedStream(t *testing.T) {
	var buf []Word
	buf = AppendThreadStart(buf, 1, 10)
	buf = append(buf, DAGWord(5, 0x3))
	buf = append(buf, DAGWord(6, 0x0))
	buf = AppendSync(buf, Sync{Point: SyncCallSend, RuntimeID: 1, LogicalThread: 2, Seq: 0, TS: 20})
	buf = append(buf, DAGWord(7, 0x1))
	buf = AppendException(buf, Exception{Code: 4, Addr: 100, TS: 30})

	recs := MineBackward(buf)
	Reverse(recs) // oldest first
	wantKinds := []Kind{KindThreadStart, KindNone, KindNone, KindSync, KindNone, KindException}
	if len(recs) != len(wantKinds) {
		t.Fatalf("mined %d records, want %d", len(recs), len(wantKinds))
	}
	for i, k := range wantKinds {
		if recs[i].Kind != k {
			t.Errorf("record %d kind = %v, want %v", i, recs[i].Kind, k)
		}
	}
	if recs[1].DAGID != 5 || recs[1].Bits != 0x3 {
		t.Errorf("first DAG record = %+v", recs[1])
	}
}

func TestMineBackwardStopsAtZero(t *testing.T) {
	buf := []Word{DAGWord(1, 0), Invalid, DAGWord(2, 0), DAGWord(3, 0)}
	recs := MineBackward(buf)
	if len(recs) != 2 || recs[0].DAGID != 3 || recs[1].DAGID != 2 {
		t.Errorf("recs = %+v, want DAGs 3,2 only", recs)
	}
}

func TestMineBackwardSkipsSentinels(t *testing.T) {
	buf := []Word{DAGWord(1, 0), Sentinel, DAGWord(2, 0)}
	recs := MineBackward(buf)
	if len(recs) != 2 {
		t.Fatalf("mined %d records, want 2", len(recs))
	}
}

func TestMineBackwardStopsAtTornRecord(t *testing.T) {
	// A sync record whose head was overwritten by wrap-around: only
	// the last 3 words survive. Mining must stop without panicking
	// and without inventing records.
	full := AppendSync(nil, Sync{Point: SyncCallRecv, RuntimeID: 9, LogicalThread: 1, Seq: 2, TS: 3})
	torn := full[len(full)-3:]
	buf := append(append([]Word{}, torn...), DAGWord(10, 0x1))
	recs := MineBackward(buf)
	if len(recs) != 1 || recs[0].DAGID != 10 {
		t.Errorf("recs = %+v, want only DAG 10", recs)
	}
}

func TestMineBackwardStopsAtBareHeader(t *testing.T) {
	// Header word with its payload+trailer overwritten.
	h := header(KindSync, 8, 0)
	buf := []Word{h, DAGWord(4, 0)}
	recs := MineBackward(buf)
	if len(recs) != 1 || recs[0].DAGID != 4 {
		t.Errorf("recs = %+v", recs)
	}
}

func TestBadDAGRecord(t *testing.T) {
	buf := []Word{DAGWord(BadDAGID, 0x7)}
	recs := MineBackward(buf)
	if len(recs) != 1 || !recs[0].BadDAG() {
		t.Errorf("recs = %+v, want one bad-DAG record", recs)
	}
}

func TestDecodeErrorsOnWrongKind(t *testing.T) {
	r := Record{Kind: KindTimestamp, Payload: []Word{1, 2}}
	if _, err := DecodeSync(r); err == nil {
		t.Error("DecodeSync accepted a timestamp record")
	}
	if _, err := DecodeException(r); err == nil {
		t.Error("DecodeException accepted a timestamp record")
	}
	if _, err := DecodeThreadEvent(r); err == nil {
		t.Error("DecodeThreadEvent accepted a timestamp record")
	}
}

// Property: any sequence of well-formed records mines back in full,
// in reverse order.
func TestMineBackwardQuick(t *testing.T) {
	f := func(seed []byte) bool {
		var buf []Word
		var want int
		for _, b := range seed {
			switch b % 5 {
			case 0, 1:
				buf = append(buf, DAGWord(uint32(b), Word(b)&PathMask))
			case 2:
				buf = AppendTimestamp(buf, uint64(b)*3)
			case 3:
				buf = AppendSync(buf, Sync{RuntimeID: uint64(b), Seq: uint32(b)})
			case 4:
				buf = AppendThreadStart(buf, uint32(b), uint64(b))
			}
			want++
		}
		return len(MineBackward(buf)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindNone; k <= KindSnapMark; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
	for p := SyncCallSend; p <= SyncReplyRecv; p++ {
		if p.String() == "" {
			t.Errorf("sync point %d has empty string", p)
		}
	}
}

func TestSyscallMarkRoundTrip(t *testing.T) {
	m := SyscallMark{Num: 6, Addr: 0x123456789A, TS: 0xFFFFFFFF00000001}
	buf := AppendSyscallMark(nil, m)
	recs := MineBackward(buf)
	if len(recs) != 1 || recs[0].Kind != KindSyscallMark {
		t.Fatalf("recs = %+v", recs)
	}
	got, err := DecodeSyscallMark(recs[0])
	if err != nil || got != m {
		t.Errorf("got %+v err=%v, want %+v", got, err, m)
	}
	if _, err := DecodeSyscallMark(Record{Kind: KindTimestamp}); err == nil {
		t.Error("wrong kind accepted")
	}
}

func TestReissueMarkRoundTrip(t *testing.T) {
	buf := AppendReissueMark(nil)
	recs := MineBackward(buf)
	if len(recs) != 1 || recs[0].Kind != KindReissue {
		t.Fatalf("recs = %+v", recs)
	}
}

// Property: payload words that collide with the sentinel or invalid
// patterns survive mining (the clock-skew regression: a timestamp's
// high word can be 0xFFFFFFFF).
func TestMineBackwardSentinelPayloads(t *testing.T) {
	var buf []Word
	buf = AppendTimestamp(buf, 0xFFFFFFFF_FFF0BDCE)
	buf = AppendSync(buf, Sync{RuntimeID: 0xFFFFFFFF_00000000, TS: 0xFFFFFFFF_FFFFFFF0})
	buf = append(buf, DAGWord(3, 1))
	recs := MineBackward(buf)
	if len(recs) != 3 {
		t.Fatalf("mined %d records, want 3", len(recs))
	}
	ts, err := DecodeTS(recs[2])
	if err != nil || ts != 0xFFFFFFFF_FFF0BDCE {
		t.Errorf("timestamp payload corrupted: %x err=%v", ts, err)
	}
}
