package trace

import "fmt"

// SyncPoint identifies where in an RPC exchange a SYNC record was
// written. A full RPC produces four SYNCs with the same logical
// thread and successive sequence numbers (paper §5.1): call-send and
// reply-recv in the caller's buffer, call-recv and reply-send in the
// callee's.
type SyncPoint uint16

const (
	SyncCallSend SyncPoint = iota
	SyncCallRecv
	SyncReplySend
	SyncReplyRecv
)

func (p SyncPoint) String() string {
	switch p {
	case SyncCallSend:
		return "call-send"
	case SyncCallRecv:
		return "call-recv"
	case SyncReplySend:
		return "reply-send"
	case SyncReplyRecv:
		return "reply-recv"
	}
	return fmt.Sprintf("syncpoint(%d)", uint16(p))
}

// Sync is a decoded SYNC record binding a physical thread's trace
// segment into a logical thread.
type Sync struct {
	Point         SyncPoint
	RuntimeID     uint64 // unique ID of the runtime that wrote the record
	LogicalThread uint32
	Seq           uint32
	TS            uint64
}

// AppendSync appends an encoded SYNC record to buf.
func AppendSync(buf []Word, s Sync) []Word {
	rlo, rhi := SplitU64(s.RuntimeID)
	tlo, thi := SplitU64(s.TS)
	return AppendExtended(buf, KindSync, uint16(s.Point),
		rlo, rhi, Word(s.LogicalThread), Word(s.Seq), tlo, thi)
}

// DecodeSync decodes a KindSync record.
func DecodeSync(r Record) (Sync, error) {
	if r.Kind != KindSync || len(r.Payload) != 6 {
		return Sync{}, fmt.Errorf("trace: not a sync record: %v/%d words", r.Kind, len(r.Payload))
	}
	return Sync{
		Point:         SyncPoint(r.Small),
		RuntimeID:     JoinU64(r.Payload[0], r.Payload[1]),
		LogicalThread: r.Payload[2],
		Seq:           r.Payload[3],
		TS:            JoinU64(r.Payload[4], r.Payload[5]),
	}, nil
}

// Exception is a decoded exception/signal record. Addr is the
// absolute code address of the faulting instruction, which
// reconstruction uses to trim the last block's lines (paper §4.2).
type Exception struct {
	Code uint16 // signal / exception number
	Addr uint64
	TS   uint64
}

// AppendException appends an encoded exception record to buf.
func AppendException(buf []Word, e Exception) []Word {
	alo, ahi := SplitU64(e.Addr)
	tlo, thi := SplitU64(e.TS)
	return AppendExtended(buf, KindException, e.Code, alo, ahi, tlo, thi)
}

// DecodeException decodes a KindException record.
func DecodeException(r Record) (Exception, error) {
	if r.Kind != KindException || len(r.Payload) != 4 {
		return Exception{}, fmt.Errorf("trace: not an exception record")
	}
	return Exception{
		Code: r.Small,
		Addr: JoinU64(r.Payload[0], r.Payload[1]),
		TS:   JoinU64(r.Payload[2], r.Payload[3]),
	}, nil
}

// AppendExceptionEnd records that control returned from a signal
// handler to the interrupted code (paper §3.7.3).
func AppendExceptionEnd(buf []Word, ts uint64) []Word {
	lo, hi := SplitU64(ts)
	return AppendExtended(buf, KindExceptionEnd, 0, lo, hi)
}

// DecodeTS decodes the timestamp payload shared by KindTimestamp,
// KindExceptionEnd, and KindSnapMark records.
func DecodeTS(r Record) (uint64, error) {
	if len(r.Payload) != 2 {
		return 0, fmt.Errorf("trace: %v record has %d payload words, want 2", r.Kind, len(r.Payload))
	}
	return JoinU64(r.Payload[0], r.Payload[1]), nil
}

// AppendTimestamp appends an explicit timestamp record.
func AppendTimestamp(buf []Word, ts uint64) []Word {
	lo, hi := SplitU64(ts)
	return AppendExtended(buf, KindTimestamp, 0, lo, hi)
}

// AppendSnapMark appends a snap marker.
func AppendSnapMark(buf []Word, ts uint64) []Word {
	lo, hi := SplitU64(ts)
	return AppendExtended(buf, KindSnapMark, 0, lo, hi)
}

// AppendReissueMark appends the marker that flags the next DAG record
// as a mid-run re-issue rather than a fresh execution.
func AppendReissueMark(buf []Word) []Word {
	return AppendExtended(buf, KindReissue, 0)
}

// SyscallMark is a decoded synchronization-point timestamp probe.
type SyscallMark struct {
	Num  uint16 // syscall number
	Addr uint64 // code address of the SYS instruction
	TS   uint64
}

// AppendSyscallMark appends a synchronization-point record.
func AppendSyscallMark(buf []Word, m SyscallMark) []Word {
	alo, ahi := SplitU64(m.Addr)
	tlo, thi := SplitU64(m.TS)
	return AppendExtended(buf, KindSyscallMark, m.Num, alo, ahi, tlo, thi)
}

// DecodeSyscallMark decodes a KindSyscallMark record.
func DecodeSyscallMark(r Record) (SyscallMark, error) {
	if r.Kind != KindSyscallMark || len(r.Payload) != 4 {
		return SyscallMark{}, fmt.Errorf("trace: not a syscall-mark record")
	}
	return SyscallMark{
		Num:  r.Small,
		Addr: JoinU64(r.Payload[0], r.Payload[1]),
		TS:   JoinU64(r.Payload[2], r.Payload[3]),
	}, nil
}

// ThreadEvent is a decoded thread start/end record. Buffers can house
// several thread lifetimes in sequence (paper §3.1.2); these records
// let reconstruction split a buffer's stream by thread.
type ThreadEvent struct {
	Start bool
	TID   uint32
	TS    uint64
}

// AppendThreadStart marks buffer assignment to thread tid.
func AppendThreadStart(buf []Word, tid uint32, ts uint64) []Word {
	lo, hi := SplitU64(ts)
	return AppendExtended(buf, KindThreadStart, 0, Word(tid), lo, hi)
}

// AppendThreadEnd marks thread termination / buffer release.
func AppendThreadEnd(buf []Word, tid uint32, ts uint64) []Word {
	lo, hi := SplitU64(ts)
	return AppendExtended(buf, KindThreadEnd, 0, Word(tid), lo, hi)
}

// DecodeThreadEvent decodes a thread start/end record.
func DecodeThreadEvent(r Record) (ThreadEvent, error) {
	if (r.Kind != KindThreadStart && r.Kind != KindThreadEnd) || len(r.Payload) != 3 {
		return ThreadEvent{}, fmt.Errorf("trace: not a thread event record")
	}
	return ThreadEvent{
		Start: r.Kind == KindThreadStart,
		TID:   r.Payload[0],
		TS:    JoinU64(r.Payload[1], r.Payload[2]),
	}, nil
}
