// Package trace defines the 32-bit trace record format of Figure 1 of
// the paper and the record mining used by reconstruction.
//
// Record words:
//
//	31 30........10 9.........0
//	 1 |   DAG ID  | path bits |   DAG record
//	 1  1 1 1 ... 1 1 1 1 ... 1    buffer-end sentinel (all ones)
//	 0  0 0 0 ... 0 0 0 0 ... 0    invalid (zeroed sub-buffer)
//	 1 | 0x1FFFFE  | x x ... x |   bad-DAG record (ID space exhausted)
//	 0 | kind | len | small    |   extended record header
//	 0 | 0x7F | len | kind     |   extended record trailer
//
// A heavyweight probe writes a pre-shifted DAG record; lightweight
// probes OR their assigned bit into the low 10 bits. Extended records
// (SYNC, timestamps, exceptions, thread lifetimes) span multiple words
// and carry a trailer so that reconstruction can mine a buffer
// back-to-front — newest record to oldest — without ambiguity.
package trace

import "fmt"

// Word is one 32-bit trace buffer slot.
type Word = uint32

// Fixed words and field layout.
const (
	Sentinel Word = 0xFFFFFFFF // buffer-end / sub-buffer-end marker
	Invalid  Word = 0x00000000 // zeroed, not-yet-written slot

	// NumPathBits is the number of lightweight-probe bits per DAG
	// record; it bounds the number of probe-carrying blocks per DAG.
	NumPathBits = 10
	// PathMask extracts the path bits.
	PathMask Word = 1<<NumPathBits - 1

	// DAGIDBits is the width of the DAG ID field (paper §2.3).
	DAGIDBits = 21
	// MaxDAGID is the largest assignable DAG ID.
	MaxDAGID uint32 = BadDAGID - 1
	// BadDAGID is the reserved "bad DAG" ID used when the runtime
	// cannot find a distinct ID range for a module (paper §2.3).
	BadDAGID uint32 = 1<<DAGIDBits - 2

	dagFlag Word = 1 << 31
)

// DAGWord builds a DAG record word with the given ID and path bits.
// Heavyweight probes embed DAGWord(id, 0) as their store immediate.
func DAGWord(id uint32, bits Word) Word {
	return dagFlag | (id&(1<<DAGIDBits-1))<<NumPathBits | (bits & PathMask)
}

// IsDAG reports whether w is a DAG record (including bad-DAG).
func IsDAG(w Word) bool { return w&dagFlag != 0 && w != Sentinel }

// DAGID extracts the DAG ID of a DAG record.
func DAGID(w Word) uint32 { return uint32(w>>NumPathBits) & (1<<DAGIDBits - 1) }

// PathBits extracts the lightweight-probe bits of a DAG record.
func PathBits(w Word) Word { return w & PathMask }

// Kind identifies an extended record type.
type Kind uint8

// Extended record kinds.
const (
	KindNone         Kind = 0
	KindTimestamp    Kind = 1 // explicit timestamp probe
	KindSync         Kind = 2 // RPC / cross-runtime SYNC (paper §5.1)
	KindException    Kind = 3 // exception/signal with faulting code address
	KindExceptionEnd Kind = 4 // control returned from a signal handler
	KindThreadStart  Kind = 5 // buffer (re)assigned to a thread
	KindThreadEnd    Kind = 6 // thread terminated / buffer freed
	KindSnapMark     Kind = 7 // snap taken while the thread was live
	// KindReissue marks that the immediately following DAG record is
	// a re-issue of the in-progress run's record: the runtime wrote
	// extended records mid-run, which moved the buffer pointer, so it
	// duplicates the current DAG record (with bits accumulated so
	// far) to give the remaining lightweight probes a valid slot.
	// Reconstruction merges the re-issued record into its original
	// instead of treating it as a new execution of the DAG.
	KindReissue Kind = 8
	// KindSyscallMark is the timestamp probe the runtime inserts at
	// synchronization/OS artifacts (paper §3.5); it carries the code
	// address so hang views can name the exact blocking line.
	KindSyscallMark Kind = 9

	trailerTag = 0x7F
	maxKind    = 0x7E
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "dag"
	case KindTimestamp:
		return "timestamp"
	case KindSync:
		return "sync"
	case KindException:
		return "exception"
	case KindExceptionEnd:
		return "exception-end"
	case KindThreadStart:
		return "thread-start"
	case KindThreadEnd:
		return "thread-end"
	case KindSnapMark:
		return "snap-mark"
	case KindReissue:
		return "reissue"
	case KindSyscallMark:
		return "syscall-mark"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one mined trace record. For DAG records Kind is KindNone
// and DAGID/Bits are set; for extended records Small and Payload carry
// the kind-specific content.
type Record struct {
	Kind    Kind
	DAGID   uint32
	Bits    Word
	Small   uint16
	Payload []Word
}

// BadDAG reports whether r is a bad-DAG record.
func (r Record) BadDAG() bool { return r.Kind == KindNone && r.DAGID == BadDAGID }

func header(kind Kind, length int, small uint16) Word {
	return Word(kind)<<24 | Word(length&0xFF)<<16 | Word(small)
}

func trailer(kind Kind, length int) Word {
	return Word(trailerTag)<<24 | Word(length&0xFF)<<16 | Word(kind)
}

// AppendExtended appends an extended record (header, payload, trailer)
// to buf and returns it. Length is payload length + 2 words.
func AppendExtended(buf []Word, kind Kind, small uint16, payload ...Word) []Word {
	if kind == KindNone || kind > maxKind {
		panic(fmt.Sprintf("trace: bad extended kind %d", kind))
	}
	length := len(payload) + 2
	if length > 0xFF {
		panic("trace: extended record too long")
	}
	buf = append(buf, header(kind, length, small))
	buf = append(buf, payload...)
	return append(buf, trailer(kind, length))
}

// ExtendedLen returns the total word count of an extended record with
// the given payload size.
func ExtendedLen(payloadWords int) int { return payloadWords + 2 }

// SplitU64 splits v into (lo, hi) words.
func SplitU64(v uint64) (Word, Word) { return Word(v), Word(v >> 32) }

// JoinU64 rebuilds a uint64 from (lo, hi) words.
func JoinU64(lo, hi Word) uint64 { return uint64(hi)<<32 | uint64(lo) }

// MineBackward scans a contiguous span of trace words (oldest first,
// as prepared by reconstruction after removing sub-buffer boundaries)
// from its newest end backward, returning the recovered records
// newest-first. Mining stops at the first word that cannot be part of
// a well-formed record — typically the zeroed region of a fresh
// buffer, or the torn head of the oldest record after wrap-around
// overwrite.
func MineBackward(words []Word) []Record {
	var out []Record
	i := len(words) - 1
	for i >= 0 {
		w := words[i]
		switch {
		case w == Invalid:
			return out
		case w == Sentinel:
			i--
		case IsDAG(w):
			out = append(out, Record{Kind: KindNone, DAGID: DAGID(w), Bits: PathBits(w)})
			i--
		case w>>24 == trailerTag:
			length := int(w >> 16 & 0xFF)
			kind := Kind(w & 0xFF)
			if kind == KindNone || kind > maxKind {
				// No writer produces extended records with kind 0
				// (which would be indistinguishable from a DAG record
				// once mined) or kind 0x7F (the trailer tag itself).
				// Such a word is corruption, not a record.
				return out
			}
			hi := i - length + 1
			if length < 2 || hi < 0 {
				return out // torn record: head overwritten
			}
			h := words[hi]
			if h&dagFlag != 0 || Kind(h>>24) != kind || int(h>>16&0xFF) != length {
				return out // header does not match trailer: corruption
			}
			rec := Record{Kind: kind, Small: uint16(h)}
			if length > 2 {
				rec.Payload = append([]Word(nil), words[hi+1:i]...)
			}
			out = append(out, rec)
			i = hi - 1
		default:
			// A bare header or payload word with no trailer after it:
			// the record was torn by buffer wrap. Stop.
			return out
		}
	}
	return out
}

// StripSentinels removes sub-buffer boundary sentinels from a span,
// producing the contiguous record stream (paper §4.1: "sub-buffer
// boundaries are removed to produce a contiguous span of trace
// data"). Extended records may legitimately straddle a boundary, so
// this must run before MineBackward.
func StripSentinels(words []Word) []Word {
	out := make([]Word, 0, len(words))
	for _, w := range words {
		if w != Sentinel {
			out = append(out, w)
		}
	}
	return out
}

// Reverse reverses records in place (newest-first to oldest-first).
func Reverse(recs []Record) {
	for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
		recs[i], recs[j] = recs[j], recs[i]
	}
}
