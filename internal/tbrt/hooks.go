package tbrt

import (
	"encoding/binary"

	"traceback/internal/isa"
	"traceback/internal/trace"
	"traceback/internal/vm"
)

var _ vm.Hooks = (*Runtime)(nil)

// OnThreadStart puts the new thread on the probation buffer: its
// first probe will take a buffer_wrap and only then is a real buffer
// assigned, so threads that never execute instrumented code cost
// nothing (paper §3.1).
func (rt *Runtime) OnThreadStart(t *vm.Thread) {
	rt.byThread[t.TID] = rt.probation
	rt.setTLSPtr(t, rt.probation.dataAddr)
}

// OnThreadExit writes the thread-termination record and frees the
// buffer for reassignment. A thread serving a JNI-style in-process
// call writes its reply-side SYNC here: returning from the native
// function IS the reply (paper §3.3/§5.1).
func (rt *Runtime) OnThreadExit(t *vm.Thread) {
	if rt.jniBound[t.TID] {
		if bind := rt.bindings[t.TID]; bind != nil {
			bind.seq++
			rt.appendEvent(t, trace.AppendSync(nil, trace.Sync{
				Point: trace.SyncReplySend, RuntimeID: bind.originRT,
				LogicalThread: bind.ltid, Seq: bind.seq, TS: rt.now(),
			}))
			rt.jniReply[t.TID] = encodeExt(bind.originRT, bind.ltid, bind.seq)
		}
		delete(rt.jniBound, t.TID)
	}
	rt.releaseBuffer(t, true)
	delete(rt.bindings, t.TID)
}

// BindJNI binds a freshly spawned native thread into the managed
// caller's logical thread (the JNI analog of an RPC receive). The
// thread is about to execute instrumented code, so it leaves
// probation immediately: the call-recv SYNC must land in a real
// buffer.
func (rt *Runtime) BindJNI(t *vm.Thread, ext []byte) {
	if b := rt.byThread[t.TID]; b == nil || b.kind == bufProbation {
		rt.assignBuffer(t)
	}
	rt.OnRPCRecv(t, ext, false)
	rt.jniBound[t.TID] = true
}

// TakeJNIReply returns (and consumes) the reply-side SYNC payload the
// exited JNI thread left for the managed caller.
func (rt *Runtime) TakeJNIReply(tid int) []byte {
	ext := rt.jniReply[tid]
	delete(rt.jniReply, tid)
	return ext
}

// OnBufferWrap services the probe helper: the probe hit the sentinel,
// so commit/zero sub-buffers (or leave probation / desperation) and
// return the slot for the pending DAG record (paper §3.1).
func (rt *Runtime) OnBufferWrap(t *vm.Thread) uint64 {
	b := rt.byThread[t.TID]
	if b == nil || b.kind == bufProbation {
		b = rt.assignBuffer(t)
	}
	return rt.allocSlot(t, b)
}

// OnModuleLoad performs DAG rebasing (paper §2.3) and TLS-index
// fixups (paper §2.5) on the freshly mapped code.
func (rt *Runtime) OnModuleLoad(p *vm.Process, lm *vm.LoadedModule) {
	li := &loadedInfo{lm: lm}
	rt.modules = append(rt.modules, li)
	mod := lm.Mod
	if !mod.Instrumented || mod.DAGCount == 0 {
		return
	}

	base, ok := rt.chooseBase(mod.Name, mod.ChecksumHex(), mod.DAGBase, mod.DAGCount)
	if !ok {
		// ID space exhausted: rewrite every probe to the bad-DAG ID.
		// The module runs untraced but unharmed (paper §2.3).
		li.badDAG = true
		rt.met.badDAGs.Inc()
		rt.event("bad-dag", mod.Name)
		for _, fx := range mod.DAGFixups {
			p.Code[lm.CodeBase+fx].Imm = int32(trace.DAGWord(trace.BadDAGID, 0))
		}
		rt.fixTLS(p, lm)
		return
	}
	if base != mod.DAGBase {
		rt.met.rebased.Inc()
		for _, fx := range mod.DAGFixups {
			in := &p.Code[lm.CodeBase+fx]
			local := trace.DAGID(uint32(in.Imm)) - mod.DAGBase
			in.Imm = int32(trace.DAGWord(base+local, 0))
		}
	}
	lm.DAGBase = base
	rt.ranges = append(rt.ranges, dagRange{base: base, count: mod.DAGCount, checksum: mod.ChecksumHex()})
	rt.byChecksum[mod.ChecksumHex()] = base
	rt.fixTLS(p, lm)
}

// fixTLS rewrites probe TLS indexes when the runtime could not
// reserve the default slot (paper §2.5's fixup table).
func (rt *Runtime) fixTLS(p *vm.Process, lm *vm.LoadedModule) {
	slot := uint8(rt.cfg.TLSSlot % isa.NumTLSSlots)
	if slot == isa.TLSSlot {
		return
	}
	for _, fx := range lm.Mod.TLSFixups {
		p.Code[lm.CodeBase+fx].C = slot
	}
}

// chooseBase picks a conflict-free DAG base: the DAG base file entry,
// the checksum-remembered base from a previous load (so reload does
// not leak ID space), the module's default, or the first free gap.
func (rt *Runtime) chooseBase(name, checksum string, def, count uint32) (uint32, bool) {
	try := func(base uint32) bool {
		if base+count > trace.MaxDAGID {
			return false
		}
		for _, r := range rt.ranges {
			if base < r.base+r.count && r.base < base+count {
				return false
			}
		}
		return true
	}
	if b, ok := rt.cfg.DAGBases[name]; ok && try(b) {
		return b, true
	}
	if b, ok := rt.byChecksum[checksum]; ok && try(b) {
		return b, true
	}
	if try(def) {
		return def, true
	}
	// First-fit scan over gaps between existing ranges.
	var base uint32
	for {
		if try(base) {
			return base, true
		}
		moved := false
		for _, r := range rt.ranges {
			if base >= r.base && base < r.base+r.count {
				base = r.base + r.count
				moved = true
			}
		}
		if !moved {
			base++
		}
		if base+count > trace.MaxDAGID {
			return 0, false
		}
	}
}

// OnModuleUnload releases the module's DAG range while remembering
// its checksum->base association for a future reload (paper §2.3).
func (rt *Runtime) OnModuleUnload(p *vm.Process, lm *vm.LoadedModule) {
	sum := lm.Mod.ChecksumHex()
	for i, r := range rt.ranges {
		if r.checksum == sum && r.base == lm.DAGBase {
			rt.ranges = append(rt.ranges[:i], rt.ranges[i+1:]...)
			break
		}
	}
}

// OnException is the first-chance hook (paper §3.7.2): it records the
// exception (signal + faulting code address + timestamp) so that
// reconstruction can cut the trace at the exact source line, saves
// the in-progress DAG record for re-issue after any handler, and
// applies snap policy.
func (rt *Runtime) OnException(t *vm.Thread, sig int, addr uint64) {
	rt.lastFaultAddr[sig] = addr
	rt.savedDAG[t.TID] = nil
	if b := rt.byThread[t.TID]; b != nil && b.kind != bufProbation {
		if cur, ok := rt.proc.ReadU32(rt.tlsPtr(t)); ok && trace.IsDAG(cur) {
			rt.savedDAG[t.TID] = []trace.Word{cur}
		}
		rt.appendWordsRaw(t, b, trace.AppendException(nil, trace.Exception{
			Code: uint16(sig), Addr: addr, TS: rt.now(),
		}))
	}
	if rt.cfg.Policy.snapOnException(sig) {
		rt.TakeSnap(SnapReason{Kind: "exception", Detail: vm.SignalName(sig), TID: t.TID, Signal: sig, Addr: addr})
	}
}

// OnSignalReturn writes the exception-end record — reconstruction
// uses it to mark where control resumed (paper §3.7.3) — and
// re-issues the interrupted DAG record.
func (rt *Runtime) OnSignalReturn(t *vm.Thread) {
	b := rt.byThread[t.TID]
	if b == nil || b.kind == bufProbation {
		return
	}
	words := trace.AppendExceptionEnd(nil, rt.now())
	rt.appendWordsRaw(t, b, words)
	if saved := rt.savedDAG[t.TID]; len(saved) == 1 {
		rt.appendWordsRaw(t, b, trace.AppendReissueMark(nil))
		slot := rt.allocSlot(t, b)
		rt.proc.WriteU32(slot, saved[0])
		delete(rt.savedDAG, t.TID)
	}
}

// OnSnapRequest services the snap API (paper §3.6).
func (rt *Runtime) OnSnapRequest(t *vm.Thread, reason string) {
	if rt.cfg.Policy.API {
		rt.TakeSnap(SnapReason{Kind: "api", Detail: reason, TID: t.TID})
	}
}

// OnProcessExit fires at orderly exit and at fatal signals. Fatal
// exits snap under policy; the suppression table prevents a duplicate
// when the first-chance exception hook already snapped this fault.
func (rt *Runtime) OnProcessExit(p *vm.Process, sig int) {
	if sig != 0 && rt.cfg.Policy.Fatal {
		// Use the first-chance fault address so this snap shares its
		// suppression key with the exception snap for the same fault
		// (no duplicate snaps for one death, paper §3.6.2).
		rt.TakeSnap(SnapReason{
			Kind: "exception", Detail: "fatal " + vm.SignalName(sig),
			Signal: sig, Addr: rt.lastFaultAddr[sig],
		})
	}
	// Orderly release of all live threads' buffers.
	for tid, t := range p.Threads {
		if _, owned := rt.byThread[tid]; owned && !t.KilledAbruptly {
			rt.releaseBuffer(t, true)
		}
	}
}

// syncSyscalls lists the OS artifacts at which instrumentation
// heuristically inserts timestamp probes (paper §3.5): thread and
// synchronization operations, where cross-thread ordering matters.
var syncSyscalls = map[int]bool{
	isa.SysThreadCreate: true,
	isa.SysThreadJoin:   true,
	isa.SysSleep:        true,
	isa.SysMutexLock:    true,
	isa.SysMutexUnlock:  true,
	isa.SysYield:        true,
}

// OnSyscall inserts timestamp records at synchronization points so
// reconstruction can build a plausible cross-thread interleaving and
// hang views can name the blocking line (the record carries the SYS
// instruction's code address).
func (rt *Runtime) OnSyscall(t *vm.Thread, num int) {
	if syncSyscalls[num] {
		rt.appendEvent(t, trace.AppendSyscallMark(nil, trace.SyscallMark{
			Num: uint16(num), Addr: t.PC, TS: rt.now(),
		}))
	}
}

// rpcExt is the 16-byte trace payload extension attached to RPC
// messages: (origin runtime ID, logical thread ID, seq).
func encodeExt(rtid uint64, ltid, seq uint32) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, rtid)
	binary.LittleEndian.PutUint32(b[8:], ltid)
	binary.LittleEndian.PutUint32(b[12:], seq)
	return b
}

func decodeExt(b []byte) (rtid uint64, ltid, seq uint32, ok bool) {
	if len(b) != 16 {
		return 0, 0, 0, false
	}
	return binary.LittleEndian.Uint64(b),
		binary.LittleEndian.Uint32(b[8:]),
		binary.LittleEndian.Uint32(b[12:]), true
}

// OnRPCSend implements the caller/callee send sides of paper §5.1:
// bind (or reuse) a logical thread for the physical thread, write a
// SYNC record, and attach (runtime ID, logical thread ID, seq) to the
// payload.
func (rt *Runtime) OnRPCSend(t *vm.Thread, reply bool) []byte {
	bind := rt.bindings[t.TID]
	if bind == nil {
		if reply {
			return nil // replying to a call we never saw; nothing to stitch
		}
		rt.nextLT++
		bind = &binding{originRT: rt.ID, ltid: rt.nextLT, seq: 0}
		rt.bindings[t.TID] = bind
	} else {
		bind.seq++
	}
	point := trace.SyncCallSend
	if reply {
		point = trace.SyncReplySend
	}
	rt.appendEvent(t, trace.AppendSync(nil, trace.Sync{
		Point: point, RuntimeID: bind.originRT,
		LogicalThread: bind.ltid, Seq: bind.seq, TS: rt.now(),
	}))
	rt.met.syncs.Inc()
	rt.event("rpc-sync", point.String())
	return encodeExt(bind.originRT, bind.ltid, bind.seq)
}

// OnRPCRecv implements the receive sides: adopt the caller's logical
// thread, bump the sequence number, record the SYNC, and note the
// peer runtime in the partner list.
func (rt *Runtime) OnRPCRecv(t *vm.Thread, ext []byte, reply bool) {
	rtid, ltid, seq, ok := decodeExt(ext)
	if !ok {
		return
	}
	if rtid != rt.ID {
		rt.partners[rtid] = true
	}
	bind := &binding{originRT: rtid, ltid: ltid, seq: seq + 1}
	rt.bindings[t.TID] = bind
	point := trace.SyncCallRecv
	if reply {
		point = trace.SyncReplyRecv
	}
	rt.appendEvent(t, trace.AppendSync(nil, trace.Sync{
		Point: point, RuntimeID: rtid,
		LogicalThread: ltid, Seq: bind.seq, TS: rt.now(),
	}))
	rt.met.syncs.Inc()
	rt.event("rpc-sync", point.String())
}
