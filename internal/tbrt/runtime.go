// Package tbrt is the TraceBack runtime: the support library that
// instrumented code depends on (paper §3). It owns the trace buffers
// (main / static / probation / desperation, with sub-buffering for
// abrupt-termination recovery), performs DAG rebasing and TLS-slot
// fixups at module load, interposes on exceptions and signals,
// inserts timestamp and SYNC records, and produces snaps under policy
// control.
//
// The runtime runs as host code attached to a vm.Process through the
// vm.Hooks interface — the same relationship the paper's native
// runtime library has to the traced program (outside it, invoked at
// probes and OS events). All trace state lives inside the process's
// address space, in a region that models the paper's memory-mapped
// file: another process can copy it even after the program dies.
package tbrt

import (
	"fmt"
	"hash/fnv"

	"traceback/internal/isa"
	"traceback/internal/snap"
	"traceback/internal/telemetry"
	"traceback/internal/trace"
	"traceback/internal/vm"
)

// Config sizes the runtime and sets policy.
type Config struct {
	// BufferWords is the size of each main trace buffer in 32-bit
	// words (default 16384 = 64 KiB, the paper's typical size).
	BufferWords int
	// NumBuffers is the number of main buffers (default 8).
	NumBuffers int
	// SubBuffers partitions each main buffer for abrupt-termination
	// recovery (default 4; 1 disables sub-buffering: a plain ring
	// with no commit points).
	SubBuffers int
	// TLSSlot is the thread-local slot probes use (default
	// isa.TLSSlot). If it differs from the slot modules were
	// instrumented with, the runtime rewrites the probe TLS indexes
	// at load (paper §2.5).
	TLSSlot int
	// UseLogicalClock replaces hardware timestamps with a logical
	// clock incremented at significant events (paper §3.5, platforms
	// without a high-resolution clock).
	UseLogicalClock bool
	// DAGBases optionally pre-assigns DAG ranges by module name
	// (paper §2.3's DAG base file).
	DAGBases map[string]uint32
	// NoMemoryDump omits module data segments from snaps (they are
	// included by default so the viewer can display variable values,
	// paper §3.6).
	NoMemoryDump bool
	// Policy controls snap triggers and suppression.
	Policy Policy
	// SnapSink receives completed snaps (default: collect in memory).
	SnapSink func(*snap.Snap)
	// Telemetry is the metrics registry the runtime instruments
	// itself on (default: a private registry). Pass a shared registry
	// to aggregate runtime, VM, and service metrics into one
	// exposition. Telemetry is host-side: it never charges VM cycles.
	Telemetry *telemetry.Registry
	// EventBuffer sizes the flight recorder — the ring of the last N
	// notable events (default 256). The recorder is shared through
	// the registry, so layers on one registry share one ring.
	EventBuffer int
}

func (c Config) withDefaults() Config {
	if c.BufferWords == 0 {
		c.BufferWords = 16384
	}
	if c.NumBuffers == 0 {
		c.NumBuffers = 8
	}
	if c.SubBuffers == 0 {
		c.SubBuffers = 4
	}
	if c.TLSSlot == 0 {
		c.TLSSlot = isa.TLSSlot
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.New()
	}
	if c.EventBuffer == 0 {
		c.EventBuffer = 256
	}
	c.Policy = c.Policy.withDefaults()
	return c
}

// bufKind mirrors snap.BufferKind for in-memory headers.
const (
	bufMain = iota
	bufStatic
	bufProbation
	bufDesperation
)

// buffer is the host-side view of one trace buffer; authoritative
// state (owner, committed sub-buffer, released pointer) lives in the
// in-memory header so post-mortem snaps read pure memory.
type buffer struct {
	kind       int
	headerAddr uint64
	dataAddr   uint64
	words      int
	subWords   int // words per sub-buffer, including its sentinel
	subs       int
}

// In-memory buffer header offsets (16 bytes).
const (
	hdrOwner     = 0
	hdrCommitted = 4
	hdrLastPtr   = 8
	hdrKind      = 12
	hdrSize      = 16
)

const staticWords = 256

// Runtime is one process's TraceBack runtime instance.
type Runtime struct {
	cfg  Config
	proc *vm.Process
	// ID uniquely identifies this runtime for SYNC records.
	ID uint64

	buffers     []*buffer // main buffers
	static      *buffer
	probation   *buffer
	desperation *buffer

	byThread map[int]*buffer
	free     []*buffer

	modules    []*loadedInfo
	ranges     []dagRange
	byChecksum map[string]uint32 // checksum -> preferred base (reload stability)

	logicalClock uint64

	// Logical-thread state for distributed tracing (paper §5.1).
	bindings map[int]*binding
	nextLT   uint32
	partners map[uint64]bool

	// savedDAG holds, per thread, the interrupted DAG record pending
	// re-issue when a signal handler returns.
	savedDAG map[int][]trace.Word

	// JNI bridge state: threads bound into managed logical threads,
	// and the reply payloads they leave at exit.
	jniBound map[int]bool
	jniReply map[int][]byte

	// lastFaultAddr remembers first-chance fault addresses by signal
	// so the fatal-exit snap shares its suppression key.
	lastFaultAddr map[int]uint64

	suppress map[string]int
	snaps    []*snap.Snap

	// met holds the runtime's registry-backed self-telemetry; the
	// legacy stat accessors (Wraps, SubCommits, ...) read from it.
	met rtMetrics
	rec *telemetry.Recorder
}

type loadedInfo struct {
	lm     *vm.LoadedModule
	badDAG bool
}

type dagRange struct {
	base, count uint32
	checksum    string
}

type binding struct {
	originRT uint64
	ltid     uint32
	seq      uint32
}

// NewProcess creates a process with an attached TraceBack runtime.
func NewProcess(m *vm.Machine, name string, cfg Config) (*vm.Process, *Runtime, error) {
	rt := &Runtime{
		cfg:           cfg.withDefaults(),
		byThread:      map[int]*buffer{},
		byChecksum:    map[string]uint32{},
		bindings:      map[int]*binding{},
		partners:      map[uint64]bool{},
		savedDAG:      map[int][]trace.Word{},
		jniBound:      map[int]bool{},
		jniReply:      map[int][]byte{},
		lastFaultAddr: map[int]uint64{},
		suppress:      map[string]int{},
	}
	p := m.NewProcess(name, rt)
	rt.proc = p
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%d", m.Name, name, p.PID)
	rt.ID = h.Sum64()
	rt.initMetrics()
	if err := rt.initBuffers(); err != nil {
		return nil, nil, err
	}
	rt.met.buffersFree.Set(int64(len(rt.free)))
	rt.met.buffersTotal.Set(int64(len(rt.buffers)))
	return p, rt, nil
}

// Proc returns the attached process.
func (rt *Runtime) Proc() *vm.Process { return rt.proc }

// Snaps returns snaps collected so far (when no SnapSink is set, or
// in addition to it).
func (rt *Runtime) Snaps() []*snap.Snap { return rt.snaps }

// initBuffers carves the trace region out of the process address
// space and lays out headers, sentinels, and the special buffers.
func (rt *Runtime) initBuffers() error {
	c := rt.cfg
	per := hdrSize + c.BufferWords*4
	total := c.NumBuffers*per +
		(hdrSize + staticWords*4) + // static
		(hdrSize + 2*4) + // probation: pad + sentinel
		(hdrSize + c.BufferWords*4) // desperation
	base := rt.proc.AllocRegion(uint32(total))
	if base == 0 {
		return fmt.Errorf("tbrt: cannot allocate %d-byte trace region", total)
	}
	addr := uint64(base)
	mk := func(kind, words, subs int) *buffer {
		b := &buffer{
			kind:       kind,
			headerAddr: addr,
			dataAddr:   addr + hdrSize,
			words:      words,
			subs:       subs,
			subWords:   words / subs,
		}
		addr += uint64(hdrSize + words*4)
		rt.proc.WriteU32(b.headerAddr+hdrKind, uint32(kind))
		// "No sub-buffer committed yet" is represented as subs-1, so
		// the first uncommitted sub-buffer — where a dead thread's
		// progress is sought — is sub 0.
		rt.proc.WriteU32(b.headerAddr+hdrCommitted, uint32(subs-1))
		rt.initSentinels(b)
		return b
	}
	for i := 0; i < c.NumBuffers; i++ {
		b := mk(bufMain, c.BufferWords, c.SubBuffers)
		rt.buffers = append(rt.buffers, b)
		rt.free = append(rt.free, b)
	}
	rt.static = mk(bufStatic, staticWords, 1)
	rt.probation = mk(bufProbation, 2, 1)
	rt.desperation = mk(bufDesperation, c.BufferWords, 1)
	return nil
}

// initSentinels zeroes a buffer and writes the sub-buffer sentinels
// (every sub-buffer's final word; paper §3.1/§3.2).
func (rt *Runtime) initSentinels(b *buffer) {
	for i := 0; i < b.words; i++ {
		rt.proc.WriteU32(b.dataAddr+uint64(i)*4, trace.Invalid)
	}
	for s := 0; s < b.subs; s++ {
		end := (s+1)*b.subWords - 1
		rt.proc.WriteU32(b.dataAddr+uint64(end)*4, trace.Sentinel)
	}
	if b.kind == bufProbation {
		// Probation holds only the sentinel: the first probe of any
		// thread immediately triggers buffer_wrap (paper §3.1).
		rt.proc.WriteU32(b.dataAddr+4, trace.Sentinel)
	}
}

// now returns a timestamp: the machine clock analog of RDTSC, or the
// logical clock when configured (incremented per significant event).
func (rt *Runtime) now() uint64 {
	if rt.cfg.UseLogicalClock {
		rt.logicalClock++
		return rt.logicalClock
	}
	return rt.proc.Machine.Timestamp()
}

func (rt *Runtime) tlsPtr(t *vm.Thread) uint64 {
	return t.TLS[rt.cfg.TLSSlot%isa.NumTLSSlots]
}

func (rt *Runtime) setTLSPtr(t *vm.Thread, v uint64) {
	t.TLS[rt.cfg.TLSSlot%isa.NumTLSSlots] = v
}

func (rt *Runtime) hdrRead(b *buffer, off uint64) uint32 {
	v, _ := rt.proc.ReadU32(b.headerAddr + off)
	return v
}

func (rt *Runtime) hdrWrite(b *buffer, off uint64, v uint32) {
	rt.proc.WriteU32(b.headerAddr+off, v)
}

// wordIndex converts an address inside b's data to a word index.
func (b *buffer) wordIndex(addr uint64) (int, bool) {
	if addr < b.dataAddr || addr >= b.dataAddr+uint64(b.words)*4 {
		return 0, false
	}
	return int(addr-b.dataAddr) / 4, true
}
